/**
 * @file
 * Custom capture: build a workload through the immediate-mode
 * TraceRecorder (the way a real capture tool or engine integration
 * would), then run the full subsetting methodology on it. The scene
 * is a tiny hand-written "arena": a sky dome, walls, props, and a
 * pulsing particle effect, rendered for a few dozen frames across two
 * alternating areas so phase detection has something to find.
 *
 * Run:  ./custom_capture [--frames=60]
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_common.hh"
#include "core/subset_pipeline.hh"
#include "gpusim/gpu_simulator.hh"
#include "trace/recorder.hh"
#include "util/args.hh"
#include "util/strings.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("custom_capture",
                   "record a workload via the capture API and subset it");
    args.addInt("frames", 60, "frames to record");
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    applyThreadsOption(args);
    const auto frames = static_cast<std::uint32_t>(args.getInt("frames"));

    TraceRecorder rec("arena");
    const ShaderId vs_world = rec.createVertexShader(
        "vs_world", InstructionMix{24, 16, 1, 0, 0, 2});
    const ShaderId vs_fx = rec.createVertexShader(
        "vs_fx", InstructionMix{12, 8, 0, 0, 0, 1});
    const ShaderId ps_sky = rec.createPixelShader(
        "ps_sky", InstructionMix{8, 4, 1, 1, 4, 0});
    const ShaderId ps_wall = rec.createPixelShader(
        "ps_wall", InstructionMix{28, 14, 2, 3, 8, 2});
    const ShaderId ps_prop = rec.createPixelShader(
        "ps_prop", InstructionMix{36, 20, 2, 2, 8, 3});
    const ShaderId ps_glow = rec.createPixelShader(
        "ps_glow", InstructionMix{16, 10, 4, 1, 4, 1});
    const ShaderId ps_fx = rec.createPixelShader(
        "ps_fx", InstructionMix{10, 6, 2, 1, 4, 0});

    const TextureId tex_sky = rec.createTexture({2048, 1024, 4, true});
    const TextureId tex_wall = rec.createTexture({1024, 1024, 4, true});
    const TextureId tex_prop = rec.createTexture({512, 512, 4, true});
    const TextureId tex_fx = rec.createTexture({256, 256, 4, false});
    const RenderTargetId rt = rec.createRenderTarget({1280, 720, 4});
    rec.bindRenderTarget(rt);

    for (std::uint32_t f = 0; f < frames; ++f) {
        // Alternate between two arena halves every 15 frames — the
        // glow shader only exists in the second half, so the two
        // halves have different shader vectors (two phases).
        const bool half_b = (f / 15) % 2 == 1;
        const double pulse =
            1.0 + 0.3 * std::sin(2.0 * M_PI * f / 24.0);

        TraceRecorder::DrawParams p;

        // Sky dome.
        rec.bindShaders(vs_world, ps_sky);
        rec.bindTextures({tex_sky});
        rec.setDepthWriteEnabled(false);
        p.vertexCount = 96;
        p.shadedPixels = 1280ull * 720ull;
        p.texLocality = 0.97;
        p.materialId = 0;
        rec.draw(p);
        rec.setDepthWriteEnabled(true);

        // Walls.
        rec.bindShaders(vs_world, ps_wall);
        rec.bindTextures({tex_wall});
        for (std::uint32_t w = 0; w < 12; ++w) {
            p.vertexCount = 240 + 10 * w;
            p.shadedPixels = 18000 + 900 * w;
            p.overdraw = 1.2;
            p.texLocality = 0.9;
            p.materialId = 10 + w % 3;
            rec.draw(p);
        }

        // Props.
        rec.bindShaders(vs_world, ps_prop);
        rec.bindTextures({tex_prop, tex_wall});
        for (std::uint32_t k = 0; k < 20; ++k) {
            p.vertexCount = 500 + 25 * k;
            p.shadedPixels = 3000 + 250 * ((k * 7) % 11);
            p.overdraw = 1.4;
            p.texLocality = 0.85;
            p.materialId = 20 + k % 5;
            rec.draw(p);
        }

        // Glow strips only in half B.
        if (half_b) {
            rec.bindShaders(vs_world, ps_glow);
            rec.bindTextures({tex_fx});
            rec.setBlendEnabled(true);
            for (std::uint32_t g = 0; g < 6; ++g) {
                p.vertexCount = 60;
                p.shadedPixels = 5000 + 300 * g;
                p.overdraw = 1.0;
                p.materialId = 30 + g % 2;
                rec.draw(p);
            }
            rec.setBlendEnabled(false);
        }

        // Pulsing particles (heavy-tailed coverage).
        rec.bindShaders(vs_fx, ps_fx);
        rec.bindTextures({tex_fx});
        rec.setBlendEnabled(true);
        rec.setDepthWriteEnabled(false);
        p.vertexCount = 4 * 128;
        p.shadedPixels =
            static_cast<std::uint64_t>(40000.0 * pulse * pulse);
        p.overdraw = 2.5;
        p.texLocality = 0.6;
        p.materialId = 40;
        rec.draw(p);
        rec.setBlendEnabled(false);
        rec.setDepthWriteEnabled(true);

        rec.present();
    }

    const Trace trace = std::move(rec).finish();
    std::printf("recorded '%s': %zu frames, %llu draws\n",
                trace.name().c_str(), trace.frameCount(),
                static_cast<unsigned long long>(trace.totalDraws()));

    SubsetConfig config;
    config.phase.intervalFrames = 15; // aligned with the alternation
    const WorkloadSubset subset = buildWorkloadSubset(trace, config);
    std::printf("phases found: %u (expected 2: halves A and B)\n",
                subset.timeline.phaseCount);
    std::printf("subset: %llu draws (%s of parent)\n",
                static_cast<unsigned long long>(subset.subsetDraws()),
                formatPercent(subset.drawFraction(), 2).c_str());

    const GpuSimulator sim(makeGpuPreset("baseline"));
    const SubsetEvaluation eval = evaluateSubset(trace, subset, sim);
    std::printf("parent %.3f ms vs subset-predicted %.3f ms "
                "(error %s)\n",
                eval.parentNs * 1e-6, eval.predictedNs * 1e-6,
                formatPercent(eval.relError(), 2).c_str());
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
