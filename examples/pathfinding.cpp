/**
 * @file
 * Architecture pathfinding on a workload subset — the use case in the
 * paper's title. Five candidate GPU design points are priced two
 * ways: fully simulating the parent workload, and simulating only the
 * subset (< a few percent of the draws). The example prints both
 * rankings side by side and the ranking/speedup agreement.
 *
 * Run:  ./pathfinding [--game=shockinf] [--scale=ci]
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "core/pathfinding.hh"
#include "synth/generator.hh"
#include "util/args.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("pathfinding",
                   "rank GPU design points on a workload subset");
    args.addString("game", "shockinf", "built-in game to generate");
    args.addString("scale", "ci", "suite scale: ci or paper");
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    applyThreadsOption(args);

    const Trace trace =
        GameGenerator(builtinProfile(args.getString("game"),
                                     parseSuiteScale(
                                         args.getString("scale"))))
            .generate();
    const WorkloadSubset subset =
        buildWorkloadSubset(trace, SubsetConfig{});
    std::printf("workload '%s': %llu draws; subset carries %llu (%.2f%%)\n\n",
                trace.name().c_str(),
                static_cast<unsigned long long>(subset.parentDraws),
                static_cast<unsigned long long>(subset.subsetDraws()),
                subset.drawFraction() * 100.0);

    std::vector<GpuConfig> designs;
    for (const auto &name : gpuPresetNames())
        designs.push_back(makeGpuPreset(name));

    const PathfindingResult result =
        runPathfinding(trace, subset, designs);

    Table table({"design", "full sim (ms)", "subset (ms)", "full rank",
                 "subset rank", "full speedup", "subset speedup"});
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const auto &p = result.points[i];
        table.newRow();
        table.cell(p.name);
        table.cell(p.parentNs * 1e-6, 2);
        table.cell(p.subsetNs * 1e-6, 2);
        table.cell(result.parentRanking[i]);
        table.cell(result.subsetRanking[i]);
        table.cell(p.parentSpeedup, 3);
        table.cell(p.subsetSpeedup, 3);
    }
    std::fputs(table.renderAscii().c_str(), stdout);
    std::printf("\nranking preserved:    %s\n",
                result.rankingPreserved ? "yes" : "NO");
    std::printf("speedup correlation:  %.4f\n", result.speedupCorrelation);
    std::printf("rank correlation:     %.4f\n", result.rankCorrelation);
    return result.rankingPreserved ? 0 : 1;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
