/**
 * @file
 * Trace tool: generate, save, load, and inspect workload traces and
 * their subsets in the gws binary formats — the capture-file workflow
 * a real deployment would use.
 *
 * Run:
 *   ./trace_tool --mode=generate --game=shock2 --out=shock2.trace
 *   ./trace_tool --mode=info --in=shock2.trace
 *   ./trace_tool --mode=roundtrip --game=circuit
 *   ./trace_tool --mode=subset --in=shock2.trace --out=shock2.subset
 *   ./trace_tool --mode=subset-info --in=shock2.subset
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "core/subset_io.hh"
#include "synth/generator.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace {

void
printInfo(const gws::Trace &trace)
{
    using namespace gws;
    const TraceStats s = computeTraceStats(trace);
    std::printf("name:               %s\n", trace.name().c_str());
    std::printf("frames:             %llu\n",
                static_cast<unsigned long long>(s.frames));
    std::printf("draw calls:         %s (%.0f per frame)\n",
                humanCount(static_cast<double>(s.draws)).c_str(),
                s.drawsPerFrame);
    std::printf("vertices:           %s\n",
                humanCount(static_cast<double>(s.vertices)).c_str());
    std::printf("shaded pixels:      %s\n",
                humanCount(static_cast<double>(s.shadedPixels)).c_str());
    std::printf("shader programs:    %llu (%llu pixel)\n",
                static_cast<unsigned long long>(s.shaderPrograms),
                static_cast<unsigned long long>(s.pixelShaderPrograms));
    std::printf("pixel shaders/frame: %.1f\n", s.pixelShadersPerFrame);
    std::printf("texture footprint:  %s\n",
                humanBytes(static_cast<double>(s.textureBytes)).c_str());
    std::printf("mean overdraw:      %.2f\n", s.meanOverdraw);
}

} // namespace

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("trace_tool",
                   "generate / save / inspect gws traces and subsets");
    args.addString("mode", "info",
                   "one of: generate, info, roundtrip, subset, "
                   "subset-info");
    args.addString("game", "shock1", "built-in game (generate/roundtrip)");
    args.addString("scale", "ci", "suite scale: ci or paper");
    args.addString("in", "", "input trace file (info)");
    args.addString("out", "", "output trace file (generate)");
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    applyThreadsOption(args);

    const std::string mode = args.getString("mode");
    try {
        if (mode == "generate") {
            const std::string out = args.getString("out");
            if (out.empty())
                GWS_FATAL("--mode=generate needs --out=<file>");
            const Trace trace =
                GameGenerator(builtinProfile(
                                  args.getString("game"),
                                  parseSuiteScale(args.getString("scale"))))
                    .generate();
            writeTraceFile(trace, out);
            std::printf("wrote '%s'\n", out.c_str());
            printInfo(trace);
        } else if (mode == "info") {
            const std::string in = args.getString("in");
            if (in.empty())
                GWS_FATAL("--mode=info needs --in=<file>");
            printInfo(readTraceFile(in));
        } else if (mode == "roundtrip") {
            const Trace trace =
                GameGenerator(builtinProfile(
                                  args.getString("game"),
                                  parseSuiteScale(args.getString("scale"))))
                    .generate();
            const std::string path = "/tmp/gws_roundtrip.trace";
            writeTraceFile(trace, path);
            const Trace copy = readTraceFile(path);
            copy.validate();
            const bool equal = trace == copy;
            std::printf("roundtrip through %s: %s\n", path.c_str(),
                        equal ? "identical" : "MISMATCH");
            std::remove(path.c_str());
            return equal ? 0 : 1;
        } else if (mode == "subset") {
            const std::string in = args.getString("in");
            const std::string out = args.getString("out");
            if (in.empty() || out.empty())
                GWS_FATAL("--mode=subset needs --in=<trace> and "
                          "--out=<subset>");
            const Trace trace = readTraceFile(in);
            const WorkloadSubset subset =
                buildWorkloadSubset(trace, SubsetConfig{});
            writeSubsetFile(subset, out);
            std::printf("wrote '%s': %u phases, %llu of %llu draws "
                        "(%s)\n",
                        out.c_str(), subset.timeline.phaseCount,
                        static_cast<unsigned long long>(
                            subset.subsetDraws()),
                        static_cast<unsigned long long>(
                            subset.parentDraws),
                        formatPercent(subset.drawFraction(), 2).c_str());
        } else if (mode == "subset-info") {
            const std::string in = args.getString("in");
            if (in.empty())
                GWS_FATAL("--mode=subset-info needs --in=<subset>");
            const WorkloadSubset s = readSubsetFile(in);
            std::printf("parent:        %s (%llu frames, %llu draws)\n",
                        s.parentName.c_str(),
                        static_cast<unsigned long long>(s.parentFrames),
                        static_cast<unsigned long long>(s.parentDraws));
            std::printf("prediction:    %s\n", toString(s.prediction));
            std::printf("phases:        %u over %zu intervals\n",
                        s.timeline.phaseCount, s.timeline.intervals.size());
            std::printf("units:         %zu\n", s.units.size());
            std::printf("subset draws:  %llu (%s of parent)\n",
                        static_cast<unsigned long long>(s.subsetDraws()),
                        formatPercent(s.drawFraction(), 3).c_str());
        } else {
            GWS_FATAL("unknown --mode '", mode, "'");
        }
    } catch (const TraceIoError &e) {
        std::fprintf(stderr, "trace I/O error: %s\n", e.what());
        return 1;
    } catch (const SubsetIoError &e) {
        std::fprintf(stderr, "subset I/O error: %s\n", e.what());
        return 1;
    }
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
