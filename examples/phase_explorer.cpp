/**
 * @file
 * Phase explorer: visualize a game's phase timeline as a letter strip
 * (A, B, C, ... per phase), dump each phase's shader-vector size,
 * occurrence count, and representative interval, and show how the
 * interval length knob changes the picture.
 *
 * Run:  ./phase_explorer [--game=shock1] [--scale=ci] [--interval=10]
 *       [--similarity=1.0]
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "phase/phase_detect.hh"
#include "synth/generator.hh"
#include "util/args.hh"
#include "util/table.hh"

namespace {

char
phaseLetter(std::uint32_t phase)
{
    if (phase < 26)
        return static_cast<char>('A' + phase);
    return '?';
}

} // namespace

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("phase_explorer",
                   "shader-vector phase timeline of a game");
    args.addString("game", "shock1", "built-in game to generate");
    args.addString("scale", "ci", "suite scale: ci or paper");
    args.addInt("interval", 10, "frames per interval");
    args.addDouble("similarity", 1.0,
                   "Jaccard threshold (1.0 = exact equality)");
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    applyThreadsOption(args);

    const GameGenerator gen(builtinProfile(
        args.getString("game"), parseSuiteScale(args.getString("scale"))));
    const Trace trace = gen.generate();

    PhaseConfig config;
    config.intervalFrames =
        static_cast<std::uint32_t>(args.getInt("interval"));
    config.similarityThreshold = args.getDouble("similarity");
    const PhaseTimeline timeline = detectPhases(trace, config);

    std::printf("game '%s': %zu frames -> %zu intervals of %u frames\n",
                trace.name().c_str(), trace.frameCount(),
                timeline.intervals.size(), config.intervalFrames);

    std::printf("\ntimeline: ");
    for (const auto &iv : timeline.intervals)
        std::putchar(phaseLetter(iv.phaseId));
    std::printf("\n  (ground-truth level schedule:");
    for (std::uint32_t level : gen.levelSchedule())
        std::printf(" %u", level);
    std::printf(")\n\n");

    Table table({"phase", "occurrences", "frames", "shaders",
                 "rep interval", "rep frames"});
    const auto occurrences = timeline.occurrenceCounts();
    for (std::uint32_t p = 0; p < timeline.phaseCount; ++p) {
        std::uint64_t frames = 0;
        for (std::size_t iv : timeline.phaseIntervals[p])
            frames += timeline.intervals[iv].frames();
        const Interval &rep =
            timeline.intervals[timeline.representatives[p]];
        table.newRow();
        table.cell(std::string(1, phaseLetter(p)));
        table.cell(occurrences[p]);
        table.cell(frames);
        table.cell(rep.shaders.count());
        table.cell("[" + std::to_string(rep.beginFrame) + ", " +
                   std::to_string(rep.endFrame) + ")");
        table.cell(static_cast<std::size_t>(rep.frames()));
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    std::printf("\nphases: %u  recurring: %s  representative fraction: "
                "%.1f%%\n",
                timeline.phaseCount,
                timeline.hasRecurringPhase() ? "yes" : "no",
                timeline.representativeFraction() * 100.0);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
