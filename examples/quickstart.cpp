/**
 * @file
 * Quickstart: the whole methodology on one synthetic game in ~60
 * lines of user code.
 *
 *   1. Generate a BioShock-like playthrough trace.
 *   2. Build its workload subset (phase detection + per-frame
 *      draw-call clustering).
 *   3. Price the parent and the subset on a GPU design point and
 *      compare.
 *
 * Run:  ./quickstart [--game=shock1] [--scale=ci] [--radius=0.95]
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "core/subset_pipeline.hh"
#include "gpusim/gpu_simulator.hh"
#include "synth/generator.hh"
#include "util/args.hh"
#include "util/strings.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("quickstart", "3D workload subsetting in a nutshell");
    args.addString("game", "shock1", "built-in game to generate");
    args.addString("scale", "ci", "suite scale: ci or paper");
    args.addDouble("radius", 0.95, "draw-clustering radius");
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    applyThreadsOption(args);

    // 1. Generate a synthetic playthrough.
    const GameProfile profile = builtinProfile(
        args.getString("game"), parseSuiteScale(args.getString("scale")));
    const Trace trace = GameGenerator(profile).generate();
    std::printf("trace '%s': %zu frames, %llu draw calls\n",
                trace.name().c_str(), trace.frameCount(),
                static_cast<unsigned long long>(trace.totalDraws()));

    // 2. Build the workload subset.
    SubsetConfig config;
    config.draws.leader.radius = args.getDouble("radius");
    const WorkloadSubset subset = buildWorkloadSubset(trace, config);
    std::printf("phases: %u over %zu intervals (interval = %u frames)\n",
                subset.timeline.phaseCount,
                subset.timeline.intervals.size(),
                config.phase.intervalFrames);
    std::printf("subset: %llu of %llu draws (%s of the parent)\n",
                static_cast<unsigned long long>(subset.subsetDraws()),
                static_cast<unsigned long long>(subset.parentDraws),
                formatPercent(subset.drawFraction(), 2).c_str());

    // 3. Compare full simulation against subset prediction.
    const GpuSimulator simulator(makeGpuPreset("baseline"));
    const SubsetEvaluation eval = evaluateSubset(trace, subset, simulator);
    std::printf("parent (full sim):   %.3f ms\n", eval.parentNs * 1e-6);
    std::printf("subset (predicted):  %.3f ms\n",
                eval.predictedNs * 1e-6);
    std::printf("prediction error:    %s\n",
                formatPercent(eval.relError(), 2).c_str());
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
