/**
 * @file
 * Unit tests for the parallel execution runtime: configuration
 * resolution, range/grain edge cases, ordered reduction, exception
 * propagation, nested (reentrant) loops, pool shutdown/restart, and
 * the observability counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/runtime.hh"
#include "util/rng.hh"

namespace gws {
namespace {

/**
 * Every test runs against an explicit configuration and restores the
 * previous one, so the suite is immune to the GWS_THREADS environment
 * it happens to be launched under.
 */
class RuntimeTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = runtimeConfig(); }

    void TearDown() override
    {
        setRuntimeConfig(saved);
        shutdownGlobalThreadPool();
    }

    void
    useThreads(std::size_t threads, std::size_t grain = 0)
    {
        RuntimeConfig cfg = saved;
        cfg.threads = threads;
        if (grain > 0)
            cfg.grainSize = grain;
        setRuntimeConfig(cfg);
    }

    RuntimeConfig saved;
};

// ------------------------------------------------------------- config --

TEST_F(RuntimeTest, ResolvedThreadCountNeverZero)
{
    useThreads(0);
    EXPECT_GE(resolvedThreadCount(), 1u);
    EXPECT_EQ(resolvedThreadCount(), hardwareThreads());
    useThreads(5);
    EXPECT_EQ(resolvedThreadCount(), 5u);
}

TEST_F(RuntimeTest, ResolvedGrainFallsBackToConfig)
{
    useThreads(1, 77);
    EXPECT_EQ(resolvedGrain(0), 77u);
    EXPECT_EQ(resolvedGrain(9), 9u);
}

TEST_F(RuntimeTest, ChunkCountMath)
{
    EXPECT_EQ(chunkCountFor(0, 8), 0u);
    EXPECT_EQ(chunkCountFor(1, 8), 1u);
    EXPECT_EQ(chunkCountFor(8, 8), 1u);
    EXPECT_EQ(chunkCountFor(9, 8), 2u);
    EXPECT_EQ(chunkCountFor(17, 8), 3u);
}

// -------------------------------------------------------- parallelFor --

TEST_F(RuntimeTest, EmptyRangeRunsNothing)
{
    useThreads(4);
    std::atomic<int> calls{0};
    parallelFor(5, 5, 1, [&](std::size_t) { ++calls; });
    parallelFor(7, 3, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST_F(RuntimeTest, SingleElementRange)
{
    useThreads(4);
    std::vector<int> hit(1, 0);
    parallelFor(0, 1, 1, [&](std::size_t i) { hit[i] = 1; });
    EXPECT_EQ(hit[0], 1);
}

TEST_F(RuntimeTest, CoversEveryIndexExactlyOnce)
{
    for (std::size_t grain : {1ul, 3ul, 64ul, 1000ul, 5000ul}) {
        useThreads(4);
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        parallelFor(0, n, grain, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " g=" << grain;
    }
}

TEST_F(RuntimeTest, GrainLargerThanRangeRunsInline)
{
    useThreads(8);
    resetRuntimeCounters();
    std::atomic<int> calls{0};
    parallelFor(0, 10, 1000, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 10);
    const RuntimeCounters c = runtimeCounters();
    EXPECT_EQ(c.parallelRegions, 0u);
    EXPECT_EQ(c.inlineRegions, 1u);
    EXPECT_EQ(c.chunksExecuted, 1u);
}

TEST_F(RuntimeTest, FansOutWhenChunksAndThreadsAllow)
{
    useThreads(4);
    resetRuntimeCounters();
    std::atomic<int> calls{0};
    parallelFor(0, 100, 10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 100);
    const RuntimeCounters c = runtimeCounters();
    EXPECT_EQ(c.parallelRegions, 1u);
    EXPECT_EQ(c.chunksExecuted, 10u);
    EXPECT_EQ(c.tasksSubmitted, 3u);
}

TEST_F(RuntimeTest, ThreadsOneRunsInlineWithSameChunking)
{
    useThreads(1);
    resetRuntimeCounters();
    std::atomic<int> calls{0};
    parallelFor(0, 100, 10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 100);
    const RuntimeCounters c = runtimeCounters();
    EXPECT_EQ(c.parallelRegions, 0u);
    EXPECT_EQ(c.inlineRegions, 1u);
    EXPECT_EQ(c.chunksExecuted, 10u);
}

// -------------------------------------------------- map & reduction --

TEST_F(RuntimeTest, ParallelMapIsIndexOrdered)
{
    useThreads(8);
    const std::vector<std::size_t> out = parallelMap<std::size_t>(
        10, 1010, 7, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], (i + 10) * (i + 10));
}

TEST_F(RuntimeTest, ReductionIsBitIdenticalAcrossThreadCounts)
{
    // Floating-point sums at a fixed grain must not depend on the
    // thread count — the runtime's core determinism contract.
    Rng rng(123);
    std::vector<double> xs(10000);
    for (double &x : xs)
        x = rng.uniform() * 1e6 - 5e5;

    auto sum = [&]() {
        return parallelReduce<double>(
            0, xs.size(), 64, 0.0,
            [&](std::size_t b, std::size_t e) {
                double s = 0.0;
                for (std::size_t i = b; i < e; ++i)
                    s += xs[i];
                return s;
            },
            [](double a, double b) { return a + b; });
    };

    useThreads(1);
    const double s1 = sum();
    useThreads(2);
    const double s2 = sum();
    useThreads(8);
    const double s8 = sum();
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s8);
}

TEST_F(RuntimeTest, ReduceEmptyRangeReturnsInit)
{
    useThreads(4);
    const double r = parallelReduce<double>(
        3, 3, 8, 42.0,
        [](std::size_t, std::size_t) { return 1.0; },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(r, 42.0);
}

// --------------------------------------------------------- exceptions --

TEST_F(RuntimeTest, ExceptionPropagatesToSubmitter)
{
    useThreads(4);
    EXPECT_THROW(
        parallelFor(0, 1000, 10,
                    [](std::size_t i) {
                        if (i == 777)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST_F(RuntimeTest, LowestChunkExceptionWinsRegardlessOfSchedule)
{
    useThreads(8);
    for (int round = 0; round < 5; ++round) {
        try {
            parallelFor(0, 800, 10, [](std::size_t i) {
                if (i == 111)
                    throw std::runtime_error("first");
                if (i == 700)
                    throw std::runtime_error("second");
            });
            FAIL() << "no exception propagated";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "first");
        }
    }
}

TEST_F(RuntimeTest, PoolSurvivesAnException)
{
    useThreads(4);
    EXPECT_THROW(parallelFor(0, 100, 1,
                             [](std::size_t) {
                                 throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    // The pool must still schedule follow-up work correctly.
    std::atomic<int> calls{0};
    parallelFor(0, 100, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 100);
}

// ------------------------------------------------------------ nesting --

TEST_F(RuntimeTest, NestedLoopsRunInlineAndStayCorrect)
{
    useThreads(4);
    const std::size_t rows = 32, cols = 100;
    std::vector<std::vector<int>> grid(rows, std::vector<int>(cols, 0));
    parallelFor(0, rows, 1, [&](std::size_t r) {
        // Inner loop: on a pool worker this degrades to inline
        // execution instead of deadlocking on the queue.
        parallelFor(0, cols, 8, [&](std::size_t c) { grid[r][c] = 1; });
    });
    for (const auto &row : grid)
        for (int v : row)
            ASSERT_EQ(v, 1);
}

TEST_F(RuntimeTest, NestedReduceMatchesSerial)
{
    useThreads(4);
    const std::vector<double> sums = parallelMap<double>(
        0, 16, 1, [](std::size_t r) {
            return parallelReduce<double>(
                0, 1000, 64, 0.0,
                [r](std::size_t b, std::size_t e) {
                    double s = 0.0;
                    for (std::size_t i = b; i < e; ++i)
                        s += static_cast<double>(i * (r + 1));
                    return s;
                },
                [](double a, double b) { return a + b; });
        });
    for (std::size_t r = 0; r < sums.size(); ++r)
        EXPECT_EQ(sums[r], 499500.0 * static_cast<double>(r + 1));
}

// --------------------------------------------------- pool lifecycle --

TEST_F(RuntimeTest, PoolStartsLazily)
{
    useThreads(4);
    shutdownGlobalThreadPool();
    EXPECT_FALSE(globalThreadPool().started());
    parallelFor(0, 100, 10, [](std::size_t) {});
    EXPECT_TRUE(globalThreadPool().started());
}

TEST_F(RuntimeTest, ShutdownAndRestart)
{
    useThreads(4);
    std::atomic<int> calls{0};
    parallelFor(0, 100, 10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 100);

    shutdownGlobalThreadPool();

    // Next loop restarts a fresh crew transparently.
    parallelFor(0, 100, 10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 200);
    EXPECT_TRUE(globalThreadPool().started());
}

TEST_F(RuntimeTest, ReconfiguringThreadCountResizesPool)
{
    useThreads(2);
    parallelFor(0, 100, 10, [](std::size_t) {});
    EXPECT_EQ(globalThreadPool().workerCount(), 2u);
    useThreads(6);
    EXPECT_EQ(globalThreadPool().workerCount(), 6u);
}

TEST_F(RuntimeTest, WorkActuallyRunsOffThread)
{
    useThreads(4);
    std::mutex m;
    std::set<std::thread::id> ids;
    parallelFor(0, 64, 1, [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard<std::mutex> lock(m);
        ids.insert(std::this_thread::get_id());
    });
    // At least the submitter participated; on multi-core hosts the
    // helpers do too. Never *more* threads than configured.
    EXPECT_GE(ids.size(), 1u);
    EXPECT_LE(ids.size(), 5u);
}

// ----------------------------------------------------------- counters --

TEST(RuntimeCountersMath, RateHelpersGuardZeroDenominators)
{
    // A freshly-reset (all-zero) snapshot must not divide by zero in
    // any derived-rate helper.
    const RuntimeCounters zero;
    EXPECT_EQ(zero.drawCacheHitRate(), 0.0);
    EXPECT_EQ(zero.kmeansBoundsSkipRate(), 0.0);
    EXPECT_EQ(zero.sweepConfigsPerPass(), 0.0);
    EXPECT_EQ(zero.sweepDrawsRetimedPerSec(), 0.0);
}

TEST(RuntimeCountersMath, DrawCacheHitRate)
{
    RuntimeCounters c;
    c.drawCacheHits = 3;
    c.drawCacheMisses = 1;
    EXPECT_DOUBLE_EQ(c.drawCacheHitRate(), 0.75);
    c.drawCacheMisses = 0;
    EXPECT_DOUBLE_EQ(c.drawCacheHitRate(), 1.0);
}

TEST(RuntimeCountersMath, KmeansBoundsSkipRate)
{
    RuntimeCounters c;
    c.kmeansBoundsSkipped = 9;
    c.kmeansFullScans = 1;
    EXPECT_DOUBLE_EQ(c.kmeansBoundsSkipRate(), 0.9);
    c.kmeansBoundsSkipped = 0;
    EXPECT_DOUBLE_EQ(c.kmeansBoundsSkipRate(), 0.0);
}

TEST(RuntimeCountersMath, SweepConfigsPerPass)
{
    RuntimeCounters c;
    c.sweepPasses = 4;
    c.sweepConfigs = 10;
    EXPECT_DOUBLE_EQ(c.sweepConfigsPerPass(), 2.5);
}

TEST(RuntimeCountersMath, SweepDrawsRetimedPerSec)
{
    RuntimeCounters c;
    c.sweepDrawsRetimed = 500;
    c.sweepRetimeNs = 1000000000; // one second
    EXPECT_DOUBLE_EQ(c.sweepDrawsRetimedPerSec(), 500.0);
}

TEST_F(RuntimeTest, RegionTimerAccumulates)
{
    resetRuntimeCounters();
    {
        ScopedRegion r("test.region");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    {
        ScopedRegion r("test.region");
    }
    const auto stats = runtimeRegionStats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].name, "test.region");
    EXPECT_EQ(stats[0].count, 2u);
    EXPECT_GT(stats[0].ns, 1000000u);
    EXPECT_NE(runtimeCountersReport().find("test.region"),
              std::string::npos);
}

TEST_F(RuntimeTest, ResetClearsCountersAndRegions)
{
    useThreads(4);
    parallelFor(0, 100, 10, [](std::size_t) {});
    {
        ScopedRegion r("test.reset");
    }
    resetRuntimeCounters();
    const RuntimeCounters c = runtimeCounters();
    EXPECT_EQ(c.parallelRegions + c.inlineRegions, 0u);
    EXPECT_EQ(c.chunksExecuted, 0u);
    EXPECT_TRUE(runtimeRegionStats().empty());
}

} // namespace
} // namespace gws
