/**
 * @file
 * Unit tests for the shader model: instruction mixes, programs, and
 * the library's dense-ID invariants.
 */

#include <gtest/gtest.h>

#include "shader/shader_library.hh"

namespace gws {
namespace {

TEST(InstructionMix, TotalsAddUp)
{
    InstructionMix m{10, 5, 2, 3, 4, 1};
    EXPECT_EQ(m.totalOps(), 25u);
    EXPECT_EQ(m.arithmeticOps(), 22u); // everything but texOps
}

TEST(InstructionMix, ZeroMix)
{
    InstructionMix m;
    EXPECT_EQ(m.totalOps(), 0u);
    EXPECT_EQ(m.arithmeticOps(), 0u);
}

TEST(InstructionMix, EqualityIsFieldwise)
{
    InstructionMix a{1, 2, 3, 4, 5, 6};
    InstructionMix b{1, 2, 3, 4, 5, 6};
    EXPECT_EQ(a, b);
    b.texOps = 9;
    EXPECT_FALSE(a == b);
}

TEST(ShaderStage, Names)
{
    EXPECT_STREQ(toString(ShaderStage::Vertex), "vertex");
    EXPECT_STREQ(toString(ShaderStage::Pixel), "pixel");
}

TEST(ShaderProgram, DefaultIsInvalid)
{
    ShaderProgram p;
    EXPECT_FALSE(p.valid());
}

TEST(ShaderProgram, ConstructedFieldsStick)
{
    ShaderProgram p(3, ShaderStage::Pixel, "ps_metal",
                    InstructionMix{8, 4, 1, 2, 6, 0}, 12);
    EXPECT_TRUE(p.valid());
    EXPECT_EQ(p.id(), 3u);
    EXPECT_EQ(p.stage(), ShaderStage::Pixel);
    EXPECT_EQ(p.name(), "ps_metal");
    EXPECT_EQ(p.mix().texOps, 2u);
    EXPECT_EQ(p.tempRegisters(), 12u);
}

TEST(ShaderLibrary, IdsAreDenseAndSequential)
{
    ShaderLibrary lib;
    EXPECT_TRUE(lib.empty());
    const ShaderId a = lib.add(ShaderStage::Vertex, "vs0", {});
    const ShaderId b = lib.add(ShaderStage::Pixel, "ps0", {});
    const ShaderId c = lib.add(ShaderStage::Pixel, "ps1", {});
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(c, 2u);
    EXPECT_EQ(lib.size(), 3u);
    EXPECT_EQ(lib.get(1).name(), "ps0");
}

TEST(ShaderLibrary, ContainsMatchesRange)
{
    ShaderLibrary lib;
    lib.add(ShaderStage::Vertex, "v", {});
    EXPECT_TRUE(lib.contains(0));
    EXPECT_FALSE(lib.contains(1));
    EXPECT_FALSE(lib.contains(invalidShaderId));
}

TEST(ShaderLibrary, CountStage)
{
    ShaderLibrary lib;
    lib.add(ShaderStage::Vertex, "v0", {});
    lib.add(ShaderStage::Pixel, "p0", {});
    lib.add(ShaderStage::Pixel, "p1", {});
    EXPECT_EQ(lib.countStage(ShaderStage::Vertex), 1u);
    EXPECT_EQ(lib.countStage(ShaderStage::Pixel), 2u);
}

TEST(ShaderLibrary, GetOutOfRangeDies)
{
    ShaderLibrary lib;
    EXPECT_DEATH(lib.get(0), "out of range");
}

TEST(ShaderLibrary, IterationVisitsInIdOrder)
{
    ShaderLibrary lib;
    lib.add(ShaderStage::Vertex, "a", {});
    lib.add(ShaderStage::Pixel, "b", {});
    ShaderId expect = 0;
    for (const auto &p : lib)
        EXPECT_EQ(p.id(), expect++);
}

} // namespace
} // namespace gws
