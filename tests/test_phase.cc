/**
 * @file
 * Tests of shader vectors and phase detection: bitset semantics,
 * interval partitioning, equality/similarity matching, timelines, and
 * agreement with the generator's ground-truth level schedule.
 */

#include <gtest/gtest.h>

#include <set>

#include "phase/feature_phases.hh"
#include "phase/phase_detect.hh"
#include "synth/generator.hh"

namespace gws {
namespace {

// ----------------------------------------------------------- shader vector --

TEST(ShaderVector, SetTestCount)
{
    ShaderVector v(200);
    EXPECT_EQ(v.count(), 0u);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(199);
    EXPECT_EQ(v.count(), 4u);
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_FALSE(v.test(1));
    EXPECT_FALSE(v.test(500)); // out of universe: absent, not fatal
}

TEST(ShaderVector, SetOutOfUniverseDies)
{
    ShaderVector v(10);
    EXPECT_DEATH(v.set(10), "outside universe");
}

TEST(ShaderVector, IdsAscending)
{
    ShaderVector v(130);
    v.set(129);
    v.set(5);
    v.set(64);
    EXPECT_EQ(v.ids(), (std::vector<ShaderId>{5, 64, 129}));
}

TEST(ShaderVector, SetIsIdempotent)
{
    ShaderVector v(16);
    v.set(3);
    v.set(3);
    EXPECT_EQ(v.count(), 1u);
}

TEST(ShaderVector, IntersectionUnionJaccard)
{
    ShaderVector a(100), b(100);
    a.set(1);
    a.set(2);
    a.set(70);
    b.set(2);
    b.set(70);
    b.set(99);
    EXPECT_EQ(a.intersectionCount(b), 2u);
    EXPECT_EQ(a.unionCount(b), 4u);
    EXPECT_DOUBLE_EQ(a.jaccard(b), 0.5);
}

TEST(ShaderVector, JaccardOfEmptiesIsOne)
{
    ShaderVector a(10), b(10);
    EXPECT_DOUBLE_EQ(a.jaccard(b), 1.0);
}

TEST(ShaderVector, EqualityIsExact)
{
    ShaderVector a(64), b(64);
    a.set(7);
    b.set(7);
    EXPECT_EQ(a, b);
    b.set(8);
    EXPECT_FALSE(a == b);
}

TEST(ShaderVector, FrameVectorPixelOnly)
{
    Trace t("sv");
    const ShaderId vs = t.shaders().add(ShaderStage::Vertex, "vs", {});
    const ShaderId ps = t.shaders().add(ShaderStage::Pixel, "ps", {});
    const RenderTargetId rt = t.addRenderTarget({64, 64, 4});
    Frame f(0);
    DrawCall d;
    d.state.vertexShader = vs;
    d.state.pixelShader = ps;
    d.state.renderTarget = rt;
    d.shadedPixels = 5;
    f.addDraw(d);

    const ShaderVector pixel_only =
        frameShaderVector(f, t.shaders().size(), true);
    EXPECT_TRUE(pixel_only.test(ps));
    EXPECT_FALSE(pixel_only.test(vs));
    const ShaderVector both =
        frameShaderVector(f, t.shaders().size(), false);
    EXPECT_TRUE(both.test(vs));
    EXPECT_EQ(both.count(), 2u);
}

// ------------------------------------------------------------ detection --

GameGenerator
phaseGen()
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.levels = 3;
    p.segments = 8;
    p.segmentFramesMin = 12;
    p.segmentFramesMax = 12; // segment = exactly 12 frames
    p.drawsPerFrame = 50.0;
    return GameGenerator(p);
}

TEST(PhaseDetect, IntervalPartitionCoversAllFrames)
{
    const Trace t = phaseGen().generate();
    PhaseConfig cfg;
    cfg.intervalFrames = 10;
    const PhaseTimeline tl = detectPhases(t, cfg);
    std::uint32_t covered = 0;
    std::uint32_t expect_begin = 0;
    for (const auto &iv : tl.intervals) {
        EXPECT_EQ(iv.beginFrame, expect_begin);
        EXPECT_GT(iv.endFrame, iv.beginFrame);
        covered += iv.frames();
        expect_begin = iv.endFrame;
    }
    EXPECT_EQ(covered, t.frameCount());
}

TEST(PhaseDetect, LastPartialIntervalKept)
{
    const Trace t = phaseGen().generate(); // 96 frames
    PhaseConfig cfg;
    cfg.intervalFrames = 36;
    const PhaseTimeline tl = detectPhases(t, cfg);
    ASSERT_EQ(tl.intervals.size(), 3u);
    EXPECT_EQ(tl.intervals.back().frames(), 96u - 2 * 36);
}

TEST(PhaseDetect, PhaseIdsAreDenseFirstAppearance)
{
    const Trace t = phaseGen().generate();
    PhaseConfig cfg;
    cfg.intervalFrames = 12;
    const PhaseTimeline tl = detectPhases(t, cfg);
    std::uint32_t next_new = 0;
    for (const auto &iv : tl.intervals) {
        ASSERT_LE(iv.phaseId, next_new);
        if (iv.phaseId == next_new)
            ++next_new;
    }
    EXPECT_EQ(next_new, tl.phaseCount);
}

TEST(PhaseDetect, EqualVectorsShareAPhase)
{
    const Trace t = phaseGen().generate();
    PhaseConfig cfg;
    cfg.intervalFrames = 12;
    const PhaseTimeline tl = detectPhases(t, cfg);
    for (std::size_t i = 0; i < tl.intervals.size(); ++i) {
        for (std::size_t j = i + 1; j < tl.intervals.size(); ++j) {
            if (tl.intervals[i].shaders == tl.intervals[j].shaders)
                ASSERT_EQ(tl.intervals[i].phaseId,
                          tl.intervals[j].phaseId);
            else
                ASSERT_NE(tl.intervals[i].phaseId,
                          tl.intervals[j].phaseId);
        }
    }
}

TEST(PhaseDetect, AlignedIntervalsMatchLevelSchedule)
{
    // With intervals aligned to the 12-frame segments, two intervals
    // belong to the same phase iff their segments render the same
    // level (the generator's ground truth).
    const GameGenerator gen = phaseGen();
    const Trace t = gen.generate();
    const auto schedule = gen.levelSchedule();
    PhaseConfig cfg;
    cfg.intervalFrames = 12;
    const PhaseTimeline tl = detectPhases(t, cfg);
    ASSERT_EQ(tl.intervals.size(), schedule.size());
    for (std::size_t a = 0; a < schedule.size(); ++a) {
        for (std::size_t b = a + 1; b < schedule.size(); ++b) {
            ASSERT_EQ(schedule[a] == schedule[b],
                      tl.intervals[a].phaseId == tl.intervals[b].phaseId)
                << "segments " << a << " and " << b;
        }
    }
}

TEST(PhaseDetect, RecurringPhasesExist)
{
    const Trace t = phaseGen().generate();
    PhaseConfig cfg;
    cfg.intervalFrames = 12;
    const PhaseTimeline tl = detectPhases(t, cfg);
    EXPECT_TRUE(tl.hasRecurringPhase());
    EXPECT_LT(tl.phaseCount, tl.intervals.size());
    EXPECT_LT(tl.representativeFraction(), 1.0);
}

TEST(PhaseDetect, RepresentativeIsFirstOccurrence)
{
    const Trace t = phaseGen().generate();
    PhaseConfig cfg;
    cfg.intervalFrames = 12;
    const PhaseTimeline tl = detectPhases(t, cfg);
    for (std::uint32_t p = 0; p < tl.phaseCount; ++p) {
        const std::size_t rep = tl.representatives[p];
        EXPECT_EQ(tl.intervals[rep].phaseId, p);
        EXPECT_EQ(rep, tl.phaseIntervals[p].front());
        for (std::size_t iv : tl.phaseIntervals[p])
            EXPECT_GE(iv, rep);
    }
}

TEST(PhaseDetect, OccurrenceCountsSumToIntervals)
{
    const Trace t = phaseGen().generate();
    const PhaseTimeline tl = detectPhases(t, PhaseConfig{});
    std::size_t total = 0;
    for (std::size_t n : tl.occurrenceCounts())
        total += n;
    EXPECT_EQ(total, tl.intervals.size());
}

TEST(PhaseDetect, SimilarityThresholdMergesNearMatches)
{
    const Trace t = phaseGen().generate();
    PhaseConfig exact, fuzzy;
    exact.intervalFrames = fuzzy.intervalFrames = 8; // straddles segments
    exact.similarityThreshold = 1.0;
    fuzzy.similarityThreshold = 0.6;
    const PhaseTimeline tl_exact = detectPhases(t, exact);
    const PhaseTimeline tl_fuzzy = detectPhases(t, fuzzy);
    EXPECT_LE(tl_fuzzy.phaseCount, tl_exact.phaseCount);
}

TEST(PhaseDetect, SingleIntervalTrace)
{
    GameProfile p = builtinProfile("circuit", SuiteScale::Ci);
    p.segments = 1;
    p.segmentFramesMin = p.segmentFramesMax = 4;
    const Trace t = GameGenerator(p).generate();
    PhaseConfig cfg;
    cfg.intervalFrames = 100;
    const PhaseTimeline tl = detectPhases(t, cfg);
    EXPECT_EQ(tl.intervals.size(), 1u);
    EXPECT_EQ(tl.phaseCount, 1u);
    EXPECT_FALSE(tl.hasRecurringPhase());
}

TEST(PhaseDetect, PhaseSequenceMatchesIntervals)
{
    const Trace t = phaseGen().generate();
    const PhaseTimeline tl = detectPhases(t, PhaseConfig{});
    const auto seq = tl.phaseSequence();
    ASSERT_EQ(seq.size(), tl.intervals.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], tl.intervals[i].phaseId);
}

// ---------------------------------------------------- feature clustering --

TEST(FeaturePhases, SameStructureAsShaderVectorTimeline)
{
    const Trace t = phaseGen().generate();
    FeaturePhaseConfig cfg;
    cfg.intervalFrames = 12;
    const PhaseTimeline tl = detectPhasesByFeatures(t, cfg);
    // Structural invariants shared with detectPhases().
    std::uint32_t covered = 0;
    for (const auto &iv : tl.intervals)
        covered += iv.frames();
    EXPECT_EQ(covered, t.frameCount());
    std::size_t total = 0;
    for (std::size_t n : tl.occurrenceCounts())
        total += n;
    EXPECT_EQ(total, tl.intervals.size());
    for (std::uint32_t p = 0; p < tl.phaseCount; ++p) {
        EXPECT_EQ(tl.intervals[tl.representatives[p]].phaseId, p);
        EXPECT_EQ(tl.representatives[p], tl.phaseIntervals[p].front());
    }
}

TEST(FeaturePhases, PhaseIdsDenseFirstAppearance)
{
    const Trace t = phaseGen().generate();
    const PhaseTimeline tl =
        detectPhasesByFeatures(t, FeaturePhaseConfig{});
    std::uint32_t next_new = 0;
    for (const auto &iv : tl.intervals) {
        ASSERT_LE(iv.phaseId, next_new);
        if (iv.phaseId == next_new)
            ++next_new;
    }
    EXPECT_EQ(next_new, tl.phaseCount);
}

TEST(FeaturePhases, FindsRecurringStructureAtWiderRadius)
{
    // Camera-swing drift pushes revisited-level centroids apart, so
    // feature clustering needs a wider radius than draw clustering to
    // see the recurrence shader vectors match exactly — precisely the
    // sensitivity the F13 ablation quantifies.
    const Trace t = phaseGen().generate();
    FeaturePhaseConfig cfg;
    cfg.intervalFrames = 12;
    cfg.radius = 2.5;
    const PhaseTimeline tl = detectPhasesByFeatures(t, cfg);
    EXPECT_TRUE(tl.hasRecurringPhase());
    EXPECT_LT(tl.phaseCount, tl.intervals.size());
}

TEST(FeaturePhases, TighterRadiusNeverFewerPhases)
{
    const Trace t = phaseGen().generate();
    FeaturePhaseConfig wide, narrow;
    wide.radius = 2.0;
    narrow.radius = 0.5;
    EXPECT_GE(detectPhasesByFeatures(t, narrow).phaseCount,
              detectPhasesByFeatures(t, wide).phaseCount);
}

TEST(PhaseDetect, EveryBuiltinGameHasPhases)
{
    // The paper's claim for the BioShock series, extended to the whole
    // suite: phases exist (recur) in each game. The open-world
    // streaming profile (nomad) grows its shader pool every segment,
    // which breaks exact shader-vector recurrence by design — Jaccard
    // matching at a relaxed threshold still finds the level revisits.
    for (const auto &name : builtinGameNames()) {
        const Trace t =
            GameGenerator(builtinProfile(name, SuiteScale::Ci)).generate();
        PhaseConfig cfg;
        if (name == "nomad")
            cfg.similarityThreshold = 0.6;
        const PhaseTimeline tl = detectPhases(t, cfg);
        EXPECT_TRUE(tl.hasRecurringPhase()) << name;
        EXPECT_GT(tl.phaseCount, 1u) << name;
    }
}

TEST(PhaseDetect, StreamedContentBreaksExactRecurrence)
{
    // The property the relaxed threshold above exists for: under exact
    // shader-vector equality, nomad's ever-growing pool means no two
    // intervals ever match.
    const Trace t =
        GameGenerator(builtinProfile("nomad", SuiteScale::Ci)).generate();
    const PhaseTimeline tl = detectPhases(t, PhaseConfig{});
    EXPECT_FALSE(tl.hasRecurringPhase());
}

} // namespace
} // namespace gws
