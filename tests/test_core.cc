/**
 * @file
 * Tests of the core subsetting pipeline: per-frame draw subsets,
 * frame prediction, the end-to-end workload subset, baselines, the
 * frequency-scaling study, and the pathfinding study.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/baselines.hh"
#include "core/energy_study.hh"
#include "core/freq_scaling.hh"
#include "core/pathfinding.hh"
#include "core/predictor.hh"
#include "core/subset_pipeline.hh"
#include "core/suite_subset.hh"
#include "core/temporal_subset.hh"
#include "synth/generator.hh"

namespace gws {
namespace {

Trace
coreTrace()
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.levels = 3;
    p.segments = 6;
    p.segmentFramesMin = 8;
    p.segmentFramesMax = 10;
    p.drawsPerFrame = 60.0;
    return GameGenerator(p).generate();
}

const Trace &
sharedTrace()
{
    static const Trace t = coreTrace();
    return t;
}

// ------------------------------------------------------------ draw subset --

TEST(DrawSubset, LeaderSubsetIsValidAndCompresses)
{
    const Trace &t = sharedTrace();
    const FrameSubset s =
        buildFrameSubset(t, t.frame(0), DrawSubsetConfig{});
    s.clustering.validate();
    EXPECT_EQ(s.clustering.items(), t.frame(0).drawCount());
    EXPECT_LT(s.representativeCount(), t.frame(0).drawCount());
    EXPECT_EQ(s.workUnits.size(), t.frame(0).drawCount());
}

TEST(DrawSubset, KMeansBicVariantWorks)
{
    const Trace &t = sharedTrace();
    DrawSubsetConfig cfg;
    cfg.algo = ClusterAlgo::KMeansBic;
    cfg.kselect.maxK = 24;
    cfg.kselect.step = 4;
    const FrameSubset s = buildFrameSubset(t, t.frame(0), cfg);
    s.clustering.validate();
    EXPECT_GE(s.clustering.k, 1u);
    EXPECT_LE(s.clustering.k, 24u);
}

TEST(DrawSubset, WorkUnitsArePositiveAndScaleWithWork)
{
    const Trace &t = sharedTrace();
    DrawCall small = t.frame(0).draws()[0];
    small.shadedPixels = 100;
    DrawCall big = small;
    big.shadedPixels = 100000;
    EXPECT_GT(drawWorkUnits(t, small), 0.0);
    EXPECT_GT(drawWorkUnits(t, big), drawWorkUnits(t, small));
}

TEST(DrawSubset, SameMaterialDrawsUsuallyShareClusters)
{
    // Count how often two draws of the same material land in the same
    // cluster; the generator's jitter is small so this should be the
    // overwhelming majority.
    const Trace &t = sharedTrace();
    const FrameSubset s =
        buildFrameSubset(t, t.frame(0), DrawSubsetConfig{});
    const auto &draws = t.frame(0).draws();
    std::size_t pairs = 0, together = 0;
    for (std::size_t i = 0; i < draws.size(); ++i) {
        for (std::size_t j = i + 1; j < draws.size(); ++j) {
            if (draws[i].materialId != draws[j].materialId)
                continue;
            ++pairs;
            together += s.clustering.assignment[i] ==
                                s.clustering.assignment[j]
                            ? 1
                            : 0;
        }
    }
    ASSERT_GT(pairs, 0u);
    EXPECT_GT(static_cast<double>(together) / pairs, 0.9);
}

TEST(DrawSubset, AlgoNames)
{
    EXPECT_STREQ(toString(ClusterAlgo::Leader), "leader");
    EXPECT_STREQ(toString(ClusterAlgo::KMeansBic), "kmeans_bic");
}

// -------------------------------------------------------------- predictor --

TEST(Predictor, EvaluationErrorIsSmall)
{
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const FramePredictionReport r =
        evaluateFramePrediction(t, t.frame(2), sim, DrawSubsetConfig{});
    EXPECT_GT(r.actualNs, 0.0);
    EXPECT_GT(r.predictedNs, 0.0);
    EXPECT_LT(r.relError(), 0.10);
    EXPECT_GT(r.efficiency, 0.2);
    EXPECT_EQ(r.drawsTotal, t.frame(2).drawCount());
    EXPECT_LT(r.drawsSimulated, r.drawsTotal);
}

TEST(Predictor, PredictFrameMatchesEvaluationPrediction)
{
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const DrawSubsetConfig cfg;
    const FrameSubset subset = buildFrameSubset(t, t.frame(1), cfg);
    const double production =
        predictFrameNs(t, t.frame(1), subset, sim, cfg.prediction);
    const FramePredictionReport r =
        evaluateFramePrediction(t, t.frame(1), sim, cfg);
    EXPECT_NEAR(production, r.predictedNs, 1e-6);
}

TEST(Predictor, WorkScaledBeatsUniformOnAverage)
{
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    DrawSubsetConfig uniform, scaled;
    scaled.prediction = PredictionMode::WorkScaled;
    double uniform_err = 0.0, scaled_err = 0.0;
    for (std::uint32_t f = 0; f < 8; ++f) {
        uniform_err +=
            evaluateFramePrediction(t, t.frame(f), sim, uniform)
                .quality.meanIntraError;
        scaled_err +=
            evaluateFramePrediction(t, t.frame(f), sim, scaled)
                .quality.meanIntraError;
    }
    EXPECT_LT(scaled_err, uniform_err);
}

TEST(Predictor, AccumulateAggregates)
{
    CorpusPredictionReport agg;
    FramePredictionReport a;
    a.actualNs = 100.0;
    a.predictedNs = 110.0;
    a.drawsTotal = 50;
    a.drawsSimulated = 10;
    a.efficiency = 0.8;
    a.quality.intraError = {0.1, 0.3};
    a.quality.outliers = 1;
    FramePredictionReport b = a;
    b.predictedNs = 100.0; // zero error
    b.efficiency = 0.6;
    b.quality.outliers = 0;
    accumulate(agg, a);
    accumulate(agg, b);
    EXPECT_EQ(agg.frames, 2u);
    EXPECT_EQ(agg.draws, 100u);
    EXPECT_NEAR(agg.meanError, 0.05, 1e-12);
    EXPECT_NEAR(agg.meanEfficiency, 0.7, 1e-12);
    EXPECT_NEAR(agg.maxError, 0.1, 1e-12);
    EXPECT_EQ(agg.clusters, 4u);
    EXPECT_EQ(agg.outlierClusters, 1u);
    EXPECT_DOUBLE_EQ(agg.outlierFraction(), 0.25);
}

// --------------------------------------------------------- subset pipeline --

TEST(SubsetPipeline, SubsetCoversParentAndIsSmall)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    EXPECT_EQ(s.parentFrames, t.frameCount());
    EXPECT_EQ(s.parentDraws, t.totalDraws());
    EXPECT_EQ(s.units.size(), s.timeline.phaseCount);
    EXPECT_NEAR(s.totalFrameWeight(),
                static_cast<double>(t.frameCount()), 1e-9);
    EXPECT_LT(s.drawFraction(), 0.2); // small even on a tiny CI trace
    EXPECT_GT(s.subsetDraws(), 0u);
}

TEST(SubsetPipeline, UnitsReferenceDistinctPhases)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    std::set<std::uint32_t> phases;
    for (const auto &u : s.units) {
        EXPECT_TRUE(phases.insert(u.phaseId).second);
        EXPECT_LT(u.frameIndex, t.frameCount());
        u.frameSubset.clustering.validate();
    }
}

TEST(SubsetPipeline, RepresentativeFrameLiesInsideItsInterval)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    for (const auto &u : s.units) {
        const Interval &iv =
            s.timeline.intervals[s.timeline.representatives[u.phaseId]];
        EXPECT_GE(u.frameIndex, iv.beginFrame);
        EXPECT_LT(u.frameIndex, iv.endFrame);
    }
}

TEST(SubsetPipeline, MultipleFramesPerPhase)
{
    const Trace &t = sharedTrace();
    SubsetConfig cfg;
    cfg.framesPerPhase = 3;
    const WorkloadSubset s = buildWorkloadSubset(t, cfg);
    // Weights still cover the parent exactly.
    EXPECT_NEAR(s.totalFrameWeight(),
                static_cast<double>(t.frameCount()), 1e-9);
    // Up to 3 units per phase, all within the phase's rep interval,
    // at distinct frames.
    ASSERT_EQ(s.unitsOfPhase.size(), s.timeline.phaseCount);
    for (std::uint32_t p = 0; p < s.timeline.phaseCount; ++p) {
        const Interval &iv =
            s.timeline.intervals[s.timeline.representatives[p]];
        const auto &unit_ids = s.unitsOfPhase[p];
        EXPECT_GE(unit_ids.size(), 1u);
        EXPECT_LE(unit_ids.size(), 3u);
        std::set<std::uint32_t> frames;
        for (std::size_t ui : unit_ids) {
            const SubsetUnit &u = s.units[ui];
            EXPECT_EQ(u.phaseId, p);
            EXPECT_GE(u.frameIndex, iv.beginFrame);
            EXPECT_LT(u.frameIndex, iv.endFrame);
            EXPECT_TRUE(frames.insert(u.frameIndex).second)
                << "duplicate rep frame in phase " << p;
        }
    }
}

TEST(SubsetPipeline, MoreFramesPerPhaseNeverHurtMuch)
{
    // Averaging several frames per phase should not make total-time
    // prediction meaningfully worse, and typically improves it.
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    SubsetConfig one, four;
    four.framesPerPhase = 4;
    const double err1 =
        evaluateSubset(t, buildWorkloadSubset(t, one), sim).relError();
    const double err4 =
        evaluateSubset(t, buildWorkloadSubset(t, four), sim).relError();
    EXPECT_LT(err4, err1 + 0.02);
}

TEST(SubsetPipeline, MultipleOccurrencesPerPhase)
{
    const Trace &t = sharedTrace();
    SubsetConfig cfg;
    cfg.occurrencesPerPhase = 3;
    const WorkloadSubset s = buildWorkloadSubset(t, cfg);
    EXPECT_NEAR(s.totalFrameWeight(),
                static_cast<double>(t.frameCount()), 1e-9);
    const auto occ = s.timeline.occurrenceCounts();
    for (std::uint32_t p = 0; p < s.timeline.phaseCount; ++p) {
        // One unit per sampled occurrence, capped by the occurrence
        // count; frames must be distinct and inside phase intervals.
        const std::size_t expect =
            std::min<std::size_t>(3, occ[p]);
        EXPECT_EQ(s.unitsOfPhase[p].size(), expect) << "phase " << p;
        std::set<std::uint32_t> seen;
        for (std::size_t ui : s.unitsOfPhase[p]) {
            const SubsetUnit &u = s.units[ui];
            EXPECT_TRUE(seen.insert(u.frameIndex).second);
            bool inside = false;
            for (std::size_t iv : s.timeline.phaseIntervals[p]) {
                inside = inside ||
                         (u.frameIndex >=
                              s.timeline.intervals[iv].beginFrame &&
                          u.frameIndex <
                              s.timeline.intervals[iv].endFrame);
            }
            EXPECT_TRUE(inside) << "frame " << u.frameIndex;
        }
    }
}

TEST(SubsetPipeline, SingleOccurrenceMatchesDefaultExactly)
{
    const Trace &t = sharedTrace();
    SubsetConfig explicit_one;
    explicit_one.occurrencesPerPhase = 1;
    const WorkloadSubset a = buildWorkloadSubset(t, SubsetConfig{});
    const WorkloadSubset b = buildWorkloadSubset(t, explicit_one);
    ASSERT_EQ(a.units.size(), b.units.size());
    for (std::size_t i = 0; i < a.units.size(); ++i)
        EXPECT_EQ(a.units[i].frameIndex, b.units[i].frameIndex);
}

TEST(SubsetPipeline, FramesPerPhaseClampedToIntervalLength)
{
    const Trace &t = sharedTrace();
    SubsetConfig cfg;
    cfg.framesPerPhase = 1000; // longer than any interval
    const WorkloadSubset s = buildWorkloadSubset(t, cfg);
    for (std::uint32_t p = 0; p < s.timeline.phaseCount; ++p) {
        const Interval &iv =
            s.timeline.intervals[s.timeline.representatives[p]];
        EXPECT_EQ(s.unitsOfPhase[p].size(), iv.frames());
    }
    EXPECT_NEAR(s.totalFrameWeight(),
                static_cast<double>(t.frameCount()), 1e-9);
}

TEST(SubsetPipeline, PredictionTracksParent)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const SubsetEvaluation eval = evaluateSubset(t, s, sim);
    EXPECT_GT(eval.parentNs, 0.0);
    EXPECT_GT(eval.predictedNs, 0.0);
    EXPECT_LT(eval.relError(), 0.15);
}

// ------------------------------------------------ cross-config invariance --

TEST(SubsetPipeline, SubsetConstructionNeverSeesAGpuConfig)
{
    // The headline micro-architecture-independence property: one
    // subset serves every design point. Construction takes no
    // simulator, so two builds are bit-identical and a single build
    // prices consistently across presets (mobile slowest everywhere).
    const Trace &t = sharedTrace();
    const WorkloadSubset a = buildWorkloadSubset(t, SubsetConfig{});
    const WorkloadSubset b = buildWorkloadSubset(t, SubsetConfig{});
    ASSERT_EQ(a.units.size(), b.units.size());
    for (std::size_t i = 0; i < a.units.size(); ++i) {
        EXPECT_EQ(a.units[i].frameIndex, b.units[i].frameIndex);
        EXPECT_EQ(a.units[i].frameSubset.clustering.assignment,
                  b.units[i].frameSubset.clustering.assignment);
    }
}

TEST(FreqScaling, CustomScaleListAndBaseline)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    FreqScalingConfig cfg;
    cfg.scales = {1.0, 0.5};
    cfg.baselineIndex = 0;
    const FreqScalingResult r =
        runFreqScaling(t, s, makeGpuPreset("baseline"), cfg);
    EXPECT_DOUBLE_EQ(r.parentImprovement[0], 1.0);
    EXPECT_LT(r.parentImprovement[1], 1.0); // 0.5x clock is slower
}

TEST(FreqScaling, DegenerateSweepDies)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    FreqScalingConfig cfg;
    cfg.scales = {1.0};
    cfg.baselineIndex = 3; // out of range
    EXPECT_DEATH(runFreqScaling(t, s, makeGpuPreset("baseline"), cfg),
                 "baseline index");
}

TEST(Quality, LooserOutlierThresholdFindsFewer)
{
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const FrameSubset subset =
        buildFrameSubset(t, t.frame(0), DrawSubsetConfig{});
    std::vector<double> costs;
    for (const auto &d : t.frame(0).draws())
        costs.push_back(sim.simulateDraw(t, d).totalNs);
    const ClusterQuality strict = assessClusterQuality(
        subset.clustering, costs, PredictionMode::Uniform, {}, 0.05);
    const ClusterQuality loose = assessClusterQuality(
        subset.clustering, costs, PredictionMode::Uniform, {}, 0.50);
    EXPECT_GE(strict.outliers, loose.outliers);
}

// ------------------------------------------------------------ suite subset --

TEST(SuiteSubset, StructureAndWeights)
{
    const std::vector<Trace> suite = {sharedTrace(), coreTrace()};
    std::vector<CorpusFrame> corpus;
    for (std::size_t t = 0; t < suite.size(); ++t) {
        for (std::uint32_t f = 0; f < 10; ++f)
            corpus.push_back({t, f});
    }
    const SuiteSubset s =
        buildSuiteSubset(suite, corpus, SuiteSubsetConfig{});
    EXPECT_EQ(s.corpusFrames, corpus.size());
    EXPECT_NEAR(s.totalWeight(), static_cast<double>(corpus.size()),
                1e-9);
    EXPECT_LE(s.frames.size(), corpus.size());
    EXPECT_GE(s.frames.size(), 1u);
    EXPECT_EQ(s.assignment.size(), corpus.size());
    for (const auto &ref : s.frames) {
        ASSERT_LT(ref.traceIndex, suite.size());
        ASSERT_LT(ref.frameIndex,
                  suite[ref.traceIndex].frameCount());
    }
}

TEST(SuiteSubset, IdenticalTracesCollapseAcrossGames)
{
    // Two copies of the same game produce pairwise-identical frames;
    // clustering must find cross-game clusters and compress >= 2x.
    const std::vector<Trace> suite = {sharedTrace(), sharedTrace()};
    std::vector<CorpusFrame> corpus;
    for (std::size_t t = 0; t < 2; ++t) {
        for (std::uint32_t f = 0; f < 12; ++f)
            corpus.push_back({t, f});
    }
    const SuiteSubset s =
        buildSuiteSubset(suite, corpus, SuiteSubsetConfig{});
    EXPECT_LE(s.frames.size(), corpus.size() / 2);
    EXPECT_GT(s.crossGameClusters, 0u);
}

TEST(SuiteSubset, PredictionTracksCorpus)
{
    const std::vector<Trace> suite = {sharedTrace()};
    std::vector<CorpusFrame> corpus;
    for (std::uint32_t f = 0; f < suite[0].frameCount(); f += 2)
        corpus.push_back({0, f});
    const SuiteSubset s =
        buildSuiteSubset(suite, corpus, SuiteSubsetConfig{});
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const double actual = measureCorpusNs(suite, corpus, sim);
    const double predicted = predictCorpusNs(suite, s, sim);
    EXPECT_GT(actual, 0.0);
    EXPECT_LT(std::fabs(predicted - actual) / actual, 0.15);
}

TEST(SuiteSubset, FrameDescriptorScalesWithContent)
{
    const Trace &t = sharedTrace();
    const FeatureVector a = frameDescriptor(t, t.frame(0));
    // An empty frame descriptor is all zeros; a real frame is not.
    Frame empty(0);
    const FeatureVector e = frameDescriptor(t, empty);
    EXPECT_GT(a[FeatureDim::LogPixels], 0.0);
    EXPECT_DOUBLE_EQ(e[FeatureDim::LogPixels], 0.0);
    EXPECT_DOUBLE_EQ(e[FeatureDim::Overdraw], 0.0);
}

TEST(SuiteSubset, TighterRadiusKeepsMoreFrames)
{
    const std::vector<Trace> suite = {sharedTrace()};
    std::vector<CorpusFrame> corpus;
    for (std::uint32_t f = 0; f < suite[0].frameCount(); ++f)
        corpus.push_back({0, f});
    SuiteSubsetConfig tight, loose;
    tight.radius = 0.3;
    loose.radius = 2.0;
    EXPECT_GE(buildSuiteSubset(suite, corpus, tight).frames.size(),
              buildSuiteSubset(suite, corpus, loose).frames.size());
}

// ------------------------------------------------------------- energy study --

TEST(PowerModel, VoltageAndPowerCurves)
{
    PowerConfig p;
    p.validate();
    EXPECT_DOUBLE_EQ(p.voltageAt(1.0), p.voltageAt1Ghz);
    EXPECT_GT(p.voltageAt(2.0), p.voltageAt(1.0));
    EXPECT_GE(p.voltageAt(0.1), p.minVoltage);
    // Dynamic power superlinear in f (V rises with f).
    EXPECT_GT(p.dynamicWatts(2.0), 2.0 * p.dynamicWatts(1.0));
    EXPECT_GT(p.leakageWatts(2.0), p.leakageWatts(1.0));
}

TEST(PowerModel, EnergyBreakdownAddsUp)
{
    PowerConfig p;
    const GpuConfig cfg = makeGpuPreset("baseline");
    const EnergyReport r = estimateEnergy({1e9, 1e9}, cfg, p); // 1 s, 1 GB
    EXPECT_NEAR(r.seconds, 1.0, 1e-12);
    EXPECT_NEAR(r.totalJ(),
                r.dynamicJ + r.leakageJ + r.dramJ + r.boardJ, 1e-12);
    EXPECT_NEAR(r.dramJ, 1e9 * p.dramPicojoulesPerByte * 1e-12, 1e-9);
    EXPECT_NEAR(r.averageWatts(), r.totalJ(), 1e-9); // 1 s run
    EXPECT_NEAR(r.energyDelay(), r.totalJ(), 1e-9);
}

TEST(DvfsStudy, SubsetReproducesParentEnergyBehavior)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    const DvfsResult r =
        runDvfsStudy(t, s, makeGpuPreset("baseline"), DvfsConfig{});
    ASSERT_EQ(r.points.size(), 8u);
    EXPECT_TRUE(r.optimumWithinOneStep());
    EXPECT_GT(r.energyCorrelation, 0.99);
    EXPECT_GT(r.edpCorrelation, 0.99);
    // The EDP optimum is interior or at an edge but well-defined.
    EXPECT_LT(r.parentOptimal, r.points.size());
}

TEST(DvfsStudy, EnergyRisesAtHighClocksTimeFallsMonotonically)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    const DvfsResult r =
        runDvfsStudy(t, s, makeGpuPreset("baseline"), DvfsConfig{});
    // Time strictly decreases with clock; the top-end point must burn
    // more energy than the EDP optimum (superlinear dynamic power).
    for (std::size_t i = 1; i < r.points.size(); ++i)
        EXPECT_LT(r.points[i].parent.seconds,
                  r.points[i - 1].parent.seconds);
    EXPECT_GT(r.points.back().parent.totalJ(),
              r.points[r.parentOptimal].parent.totalJ());
}

// ---------------------------------------------------------- temporal subset --

TEST(TemporalSubset, EfficiencyExceedsPerFrameClustering)
{
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const TemporalReport tr =
        runTemporalSubsetting(t, sim, TemporalSubsetConfig{});
    EXPECT_EQ(tr.frames, t.frameCount());
    EXPECT_EQ(tr.draws, t.totalDraws());
    EXPECT_GT(tr.efficiency(), 0.85);
    EXPECT_LT(tr.meanFrameError(), 0.08);
}

TEST(TemporalSubset, ClusterDiscoveryDecays)
{
    // Almost all clusters are founded in the first frame of each
    // level; later frames of the same level found few.
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const TemporalReport tr =
        runTemporalSubsetting(t, sim, TemporalSubsetConfig{});
    ASSERT_GE(tr.newClustersPerFrame.size(), 2u);
    EXPECT_GT(tr.newClustersPerFrame[0], tr.newClustersPerFrame[1]);
    EXPECT_LT(tr.newClustersPerFrame[1],
              tr.newClustersPerFrame[0] / 2);
}

TEST(TemporalSubset, MaxFramesCapsProcessing)
{
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    TemporalSubsetConfig cfg;
    cfg.maxFrames = 5;
    const TemporalReport tr = runTemporalSubsetting(t, sim, cfg);
    EXPECT_EQ(tr.frames, 5u);
    EXPECT_EQ(tr.frameErrors.size(), 5u);
}

TEST(TemporalSubset, ZeroRadiusDegeneratesTowardPerDraw)
{
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    TemporalSubsetConfig tight, wide;
    tight.radius = 0.0;
    tight.maxFrames = wide.maxFrames = 4;
    wide.radius = 2.0;
    const TemporalReport a = runTemporalSubsetting(t, sim, tight);
    const TemporalReport b = runTemporalSubsetting(t, sim, wide);
    EXPECT_GT(a.clusters, b.clusters);
    EXPECT_LE(a.meanFrameError(), b.meanFrameError() + 1e-9);
}

// ---------------------------------------------------------------- baselines --

TEST(Baselines, KindsAndNames)
{
    EXPECT_EQ(allBaselineKinds().size(), 3u);
    EXPECT_STREQ(toString(BaselineKind::Random), "random");
    EXPECT_STREQ(toString(BaselineKind::Uniform), "uniform");
    EXPECT_STREQ(toString(BaselineKind::StratifiedShader), "stratified");
}

TEST(Baselines, SampleSizesAndWeights)
{
    const Trace &t = sharedTrace();
    const Frame &f = t.frame(0);
    for (BaselineKind kind : allBaselineKinds()) {
        const BaselineSample s =
            selectBaselineSample(f, 10, kind, 42);
        ASSERT_EQ(s.draws.size(), s.weights.size());
        ASSERT_FALSE(s.draws.empty());
        double weight_sum = 0.0;
        for (std::size_t i = 0; i < s.draws.size(); ++i) {
            ASSERT_LT(s.draws[i], f.drawCount());
            ASSERT_GT(s.weights[i], 0.0);
            weight_sum += s.weights[i];
        }
        EXPECT_NEAR(weight_sum, static_cast<double>(f.drawCount()),
                    static_cast<double>(f.drawCount()) * 0.35)
            << toString(kind);
    }
}

TEST(Baselines, RandomSampleIsDeterministicPerSeed)
{
    const Trace &t = sharedTrace();
    const auto a = selectBaselineSample(t.frame(0), 8,
                                        BaselineKind::Random, 7);
    const auto b = selectBaselineSample(t.frame(0), 8,
                                        BaselineKind::Random, 7);
    const auto c = selectBaselineSample(t.frame(0), 8,
                                        BaselineKind::Random, 8);
    EXPECT_EQ(a.draws, b.draws);
    EXPECT_NE(a.draws, c.draws);
}

TEST(Baselines, UniformSampleIsEvenlySpaced)
{
    const Trace &t = sharedTrace();
    const auto s = selectBaselineSample(t.frame(0), 5,
                                        BaselineKind::Uniform, 0);
    const std::size_t n = t.frame(0).drawCount();
    ASSERT_EQ(s.draws.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(s.draws[i], i * n / 5);
}

TEST(Baselines, BudgetClampedToFrame)
{
    const Trace &t = sharedTrace();
    const std::size_t n = t.frame(0).drawCount();
    const auto s = selectBaselineSample(t.frame(0), n * 10,
                                        BaselineKind::Random, 1);
    EXPECT_EQ(s.draws.size(), n);
}

TEST(Baselines, StratifiedCoversEveryShader)
{
    const Trace &t = sharedTrace();
    const Frame &f = t.frame(0);
    const auto s = selectBaselineSample(
        f, f.drawCount() / 3, BaselineKind::StratifiedShader, 3);
    std::set<ShaderId> sampled;
    for (std::size_t i : s.draws)
        sampled.insert(f.draws()[i].state.pixelShader);
    EXPECT_EQ(sampled, f.pixelShaderSet());
}

TEST(Baselines, PredictionIsPositiveAndBounded)
{
    // Baselines are allowed to be bad (that is the point of the
    // comparison bench) but must stay positive and sane.
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const Frame &f = t.frame(0);
    const double actual = sim.simulateFrame(t, f).totalNs;
    for (BaselineKind kind : allBaselineKinds()) {
        const auto s = selectBaselineSample(f, f.drawCount() / 3,
                                            kind, 11);
        const double predicted = predictFrameFromSample(t, f, sim, s);
        EXPECT_GT(predicted, 0.0);
        EXPECT_LT(std::fabs(predicted - actual) / actual, 5.0)
            << toString(kind);
    }
}

TEST(Baselines, ClusteringBeatsEveryBaselineAtEqualBudget)
{
    // The paper's implicit comparison: at the budget the clustering
    // chose, similarity-blind sampling predicts frames far worse —
    // none of the baselines isolates the heavy full-screen draws the
    // way performance-similarity clustering does.
    const Trace &t = sharedTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    double cluster_err = 0.0;
    std::map<BaselineKind, double> baseline_err;
    int frames = 0;
    for (std::uint32_t fi = 0; fi < 6; ++fi, ++frames) {
        const Frame &f = t.frame(fi);
        const double actual = sim.simulateFrame(t, f).totalNs;
        const FramePredictionReport rep =
            evaluateFramePrediction(t, f, sim, DrawSubsetConfig{});
        cluster_err += rep.relError();
        for (BaselineKind kind : allBaselineKinds()) {
            double err = 0.0;
            for (std::uint64_t seed = 1; seed <= 4; ++seed) {
                const auto s = selectBaselineSample(
                    f, rep.drawsSimulated, kind, seed);
                err += std::fabs(predictFrameFromSample(t, f, sim, s) -
                                 actual) /
                       actual;
            }
            baseline_err[kind] += err / 4.0;
        }
    }
    for (BaselineKind kind : allBaselineKinds()) {
        EXPECT_LT(cluster_err, baseline_err[kind])
            << "clustering vs " << toString(kind) << " over " << frames
            << " frames";
    }
}

// ------------------------------------------------------------ freq scaling --

TEST(FreqScaling, ImprovementCurvesAndCorrelation)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    FreqScalingConfig cfg;
    cfg.scales = {0.5, 1.0, 2.0};
    cfg.baselineIndex = 1;
    const FreqScalingResult r =
        runFreqScaling(t, s, makeGpuPreset("baseline"), cfg);
    ASSERT_EQ(r.parentNs.size(), 3u);
    // Baseline point normalizes to exactly 1.
    EXPECT_DOUBLE_EQ(r.parentImprovement[1], 1.0);
    EXPECT_DOUBLE_EQ(r.subsetImprovement[1], 1.0);
    // Higher clock -> more improvement, but sublinear (memory floor).
    EXPECT_LT(r.parentImprovement[0], 1.0);
    EXPECT_GT(r.parentImprovement[2], 1.0);
    EXPECT_LT(r.parentImprovement[2], 2.0);
    // The headline claim: near-perfect correlation.
    EXPECT_GT(r.correlation, 0.997);
}

TEST(FreqScaling, ParentCostsDecreaseMonotonically)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    const FreqScalingResult r = runFreqScaling(
        t, s, makeGpuPreset("baseline"), FreqScalingConfig{});
    for (std::size_t i = 1; i < r.parentNs.size(); ++i) {
        EXPECT_LT(r.parentNs[i], r.parentNs[i - 1]);
        EXPECT_LT(r.subsetNs[i], r.subsetNs[i - 1]);
    }
}

TEST(FreqScaling, FastPathMatchesDirectSimulation)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    FreqScalingConfig cfg;
    cfg.scales = {1.0, 1.5};
    cfg.baselineIndex = 0;
    const GpuConfig base = makeGpuPreset("baseline");
    const FreqScalingResult r = runFreqScaling(t, s, base, cfg);
    const GpuSimulator direct(base.withCoreClockScale(1.5));
    EXPECT_NEAR(r.parentNs[1], direct.simulateTrace(t).totalNs,
                r.parentNs[1] * 1e-9);
    EXPECT_NEAR(r.subsetNs[1], s.predictTotalNs(t, direct),
                r.subsetNs[1] * 1e-9);
}

// ------------------------------------------------------------- pathfinding --

TEST(Pathfinding, RankingPreservedAcrossPresets)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    std::vector<GpuConfig> designs;
    for (const auto &name : gpuPresetNames())
        designs.push_back(makeGpuPreset(name));
    const PathfindingResult r = runPathfinding(t, s, designs);
    ASSERT_EQ(r.points.size(), designs.size());
    EXPECT_TRUE(r.rankingPreserved);
    EXPECT_GT(r.speedupCorrelation, 0.99);
    EXPECT_GT(r.rankCorrelation, 0.99);
    // Speedups are relative to the first design point.
    EXPECT_DOUBLE_EQ(r.points[0].parentSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(r.points[0].subsetSpeedup, 1.0);
}

TEST(Pathfinding, RankingsAreValidPermutations)
{
    const Trace &t = sharedTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    const PathfindingResult r = runPathfinding(
        t, s, {makeGpuPreset("baseline"), makeGpuPreset("mobile")});
    std::set<std::size_t> pr(r.parentRanking.begin(),
                             r.parentRanking.end());
    EXPECT_EQ(pr.size(), 2u);
    // mobile is strictly slower than baseline.
    EXPECT_EQ(r.parentRanking[0], 0u);
    EXPECT_EQ(r.parentRanking[1], 1u);
}

} // namespace
} // namespace gws
