/**
 * @file
 * Tests of the serving subsystem: protocol round-trips and strict
 * decode rejection, malformed-wire-frame handling (driven by the
 * fuzz-harness mutations), session eviction under the resident-byte
 * bound, concurrent multi-session clients, and the online-vs-batch
 * bit-identity contract the Query reply guarantees.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/subset_io.hh"
#include "core/subset_pipeline.hh"
#include "report/ingest.hh"
#include "runtime/runtime.hh"
#include "serve/client.hh"
#include "serve/online_cluster.hh"
#include "serve/server.hh"
#include "serve/session_registry.hh"
#include "synth/generator.hh"
#include "testing/fuzz_harness.hh"
#include "trace/trace_io.hh"
#include "util/codec.hh"

namespace gws {
namespace serve {
namespace {

Trace
smallTrace(const std::string &profile = "circuit")
{
    GameProfile p = builtinProfile(profile, SuiteScale::Ci);
    p.segments = 3;
    p.segmentFramesMin = 5;
    p.segmentFramesMax = 7;
    p.drawsPerFrame = 30.0;
    return GameGenerator(p).generate();
}

std::string
localSubsetBlob(const Trace &trace)
{
    std::ostringstream out(std::ios::binary);
    writeSubset(buildWorkloadSubset(trace, SubsetConfig{}), out);
    return out.str();
}

/** A server on an ephemeral loopback port, stopped on scope exit. */
struct ServerFixture
{
    explicit ServerFixture(ServerConfig config = {})
        : server(std::move(config))
    {
        server.start();
    }

    ~ServerFixture() { server.stop(); }

    ServeClient client()
    {
        return ServeClient::connectTcp(server.boundPort());
    }

    Server server;
};

// ------------------------------------------------- protocol unit ----

TEST(ServeProtocol, PingRoundTrip)
{
    const std::string payload = encode(PingMsg{});
    EXPECT_EQ(peekKind(payload), MsgKind::Ping);
    decodePing(payload); // must not throw
}

TEST(ServeProtocol, PongRoundTrip)
{
    PongMsg m;
    m.protocol = "gws.serve.v1";
    m.uptimeNs = 123456789;
    m.sessions = 7;
    const PongMsg back = decodePong(encode(m));
    EXPECT_EQ(back.protocol, m.protocol);
    EXPECT_EQ(back.uptimeNs, m.uptimeNs);
    EXPECT_EQ(back.sessions, m.sessions);
}

TEST(ServeProtocol, OpenSessionRoundTrip)
{
    OpenSessionMsg m;
    m.name = "workload-a";
    EXPECT_EQ(decodeOpenSession(encode(m)).name, m.name);

    SessionOpenedMsg r;
    r.sessionId = 42;
    EXPECT_EQ(decodeSessionOpened(encode(r)).sessionId, 42u);
}

TEST(ServeProtocol, UploadFramesRoundTrip)
{
    UploadFramesMsg m;
    m.sessionId = 9;
    m.traceBlob = std::string("\x01\x02\x03\xff", 4);
    const UploadFramesMsg back = decodeUploadFrames(encode(m));
    EXPECT_EQ(back.sessionId, m.sessionId);
    EXPECT_EQ(back.traceBlob, m.traceBlob);

    FramesAcceptedMsg r;
    r.totalFrames = 100;
    r.totalDraws = 4000;
    r.onlineClusters = 12;
    r.refinements = 3;
    const FramesAcceptedMsg rb = decodeFramesAccepted(encode(r));
    EXPECT_EQ(rb.totalFrames, r.totalFrames);
    EXPECT_EQ(rb.totalDraws, r.totalDraws);
    EXPECT_EQ(rb.onlineClusters, r.onlineClusters);
    EXPECT_EQ(rb.refinements, r.refinements);
}

TEST(ServeProtocol, QueryAndRepresentativesRoundTrip)
{
    QueryMsg m;
    m.sessionId = 3;
    EXPECT_EQ(decodeQuery(encode(m)).sessionId, 3u);

    RepresentativesMsg r;
    r.subsetBlob = std::string(1024, '\x5a');
    EXPECT_EQ(decodeRepresentatives(encode(r)).subsetBlob,
              r.subsetBlob);
}

TEST(ServeProtocol, StatsRoundTrip)
{
    StatsMsg m;
    m.sessionId = 11;
    EXPECT_EQ(decodeStats(encode(m)).sessionId, 11u);

    StatsReplyMsg r;
    r.frames = 50;
    r.draws = 1500;
    r.residentBytes = 1 << 20;
    r.onlineClusters = 6;
    r.refinements = 1;
    r.drift = 0.125;
    r.efficiency = 0.88;
    const StatsReplyMsg rb = decodeStatsReply(encode(r));
    EXPECT_EQ(rb.frames, r.frames);
    EXPECT_EQ(rb.draws, r.draws);
    EXPECT_EQ(rb.residentBytes, r.residentBytes);
    EXPECT_EQ(rb.onlineClusters, r.onlineClusters);
    EXPECT_EQ(rb.refinements, r.refinements);
    EXPECT_DOUBLE_EQ(rb.drift, r.drift);
    EXPECT_DOUBLE_EQ(rb.efficiency, r.efficiency);
}

TEST(ServeProtocol, CloseMetricsErrorRoundTrip)
{
    CloseSessionMsg m;
    m.sessionId = 5;
    EXPECT_EQ(decodeCloseSession(encode(m)).sessionId, 5u);
    decodeClosed(encode(ClosedMsg{}));

    MetricsScrapeMsg s;
    s.format = MetricsFormat::PrometheusText;
    EXPECT_EQ(decodeMetricsScrape(encode(s)).format,
              MetricsFormat::PrometheusText);

    MetricsReplyMsg r;
    r.text = "{\"schema\":\"gws.metrics.v1\"}";
    EXPECT_EQ(decodeMetricsReply(encode(r)).text, r.text);

    ErrorReplyMsg e;
    e.code = ErrorCode::SessionEvicted;
    e.message = "gone";
    const ErrorReplyMsg eb = decodeErrorReply(encode(e));
    EXPECT_EQ(eb.code, ErrorCode::SessionEvicted);
    EXPECT_EQ(eb.message, "gone");
}

TEST(ServeProtocol, StrictDecodeRejects)
{
    // Empty payload.
    EXPECT_THROW(peekKind(std::string()), ServeError);

    // Unknown kind byte.
    EXPECT_THROW(peekKind(std::string(1, '\x63')), ServeError);

    // Kind mismatch.
    EXPECT_THROW(decodePong(encode(PingMsg{})), ServeError);

    // Trailing bytes after a well-formed body.
    std::string padded = encode(PingMsg{});
    padded.push_back('\x00');
    EXPECT_THROW(decodePing(padded), ServeError);

    // Out-of-range enum in an ErrorReply.
    std::string err = encode(ErrorReplyMsg{});
    err[1] = '\x77'; // the code byte follows the kind byte
    EXPECT_THROW(decodeErrorReply(err), ServeError);

    // Empty session name / empty upload blob are semantic errors
    // caught on decode (the server-side trust boundary).
    EXPECT_THROW(decodeOpenSession(encode(OpenSessionMsg{})),
                 ServeError);
    EXPECT_THROW(decodeUploadFrames(encode(UploadFramesMsg{})),
                 ServeError);
}

// ------------------------------------------------ live lifecycle ----

TEST(ServeServer, PingReportsProtocol)
{
    ServerFixture fx;
    ServeClient client = fx.client();
    const PongMsg pong = client.ping();
    EXPECT_EQ(pong.protocol, "gws.serve.v1");
    EXPECT_EQ(pong.sessions, 0u);
}

TEST(ServeServer, LifecycleAndBatchBitIdentity)
{
    ServerFixture fx;
    ServeClient client = fx.client();

    const Trace trace = smallTrace();
    const std::uint64_t id = client.open(trace.name());
    ASSERT_NE(id, 0u);

    // Stream in chunks of 4 frames; query after every chunk and
    // verify the reply is bit-identical to the batch pipeline over
    // the prefix uploaded so far — the A/B contract.
    const std::size_t step = 4;
    for (std::size_t begin = 0; begin < trace.frameCount();
         begin += step) {
        const std::size_t end =
            std::min(begin + step, trace.frameCount());
        const FramesAcceptedMsg accepted =
            client.uploadFrames(id, sliceTrace(trace, begin, end));
        EXPECT_EQ(accepted.totalFrames, end);

        const std::string remote = client.query(id);
        const std::string local =
            localSubsetBlob(sliceTrace(trace, 0, end));
        EXPECT_EQ(remote, local)
            << "subset diverged from the batch pipeline at frame "
            << end;
    }

    const StatsReplyMsg stats = client.stats(id);
    EXPECT_EQ(stats.frames, trace.frameCount());
    EXPECT_GT(stats.onlineClusters, 0u);
    EXPECT_GT(stats.residentBytes, 0u);

    // An explicit close is distinct from eviction: the id is simply
    // unknown afterwards (Evicted is reserved for TTL/LRU pressure).
    client.close(id);
    EXPECT_THROW(
        {
            try {
                client.stats(id);
            } catch (const ServeRemoteError &e) {
                EXPECT_EQ(e.code(), ErrorCode::UnknownSession);
                throw;
            }
        },
        ServeRemoteError);
}

TEST(ServeServer, UnknownSessionIsTyped)
{
    ServerFixture fx;
    ServeClient client = fx.client();
    try {
        client.query(999);
        FAIL() << "expected ServeRemoteError";
    } catch (const ServeRemoteError &e) {
        EXPECT_EQ(e.code(), ErrorCode::UnknownSession);
    }
}

TEST(ServeServer, RejectsChunkWithMismatchedTables)
{
    ServerFixture fx;
    ServeClient client = fx.client();
    const Trace a = smallTrace("circuit");
    const Trace b = smallTrace("vanguard");

    const std::uint64_t id = client.open(a.name());
    client.uploadFrames(id, sliceTrace(a, 0, 4));
    try {
        client.uploadFrames(id, sliceTrace(b, 0, 4));
        FAIL() << "expected BadRequest for foreign resource tables";
    } catch (const ServeRemoteError &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadRequest);
    }

    // The session survives the rejected chunk.
    const StatsReplyMsg stats = client.stats(id);
    EXPECT_EQ(stats.frames, 4u);
}

// --------------------------------------------- malformed frames ----

/** Connect a raw loopback socket (no client-side validation). */
int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

TEST(ServeServer, SurvivesMutatedWireFrames)
{
    ServerFixture fx;

    // The good wire image of a Ping: header exactly as sendFrame
    // builds it, then the payload.
    const std::string payload = encode(PingMsg{});
    ByteWriter header;
    header.u32(serveMagic);
    header.u32(serveProtocolVersion);
    header.u32(static_cast<std::uint32_t>(payload.size()));
    header.u32(fnv1a32(payload));
    const std::string good = header.data() + payload;

    for (std::size_t kind = 0; kind < fuzz::numMutationKinds;
         ++kind) {
        for (std::uint64_t iter = 0; iter < 16; ++iter) {
            const std::string bad = fuzz::applyMutation(
                good, static_cast<fuzz::Mutation>(kind), 0xc0de,
                iter);

            // Push the mutated bytes through a raw connection (the
            // typed client would reject them before they hit the
            // wire). The server must answer (Pong or ErrorReply) or
            // drop the connection — never crash or hang.
            const int fd = rawConnect(fx.server.boundPort());
            ASSERT_GE(fd, 0);
            ASSERT_EQ(::send(fd, bad.data(), bad.size(),
                             MSG_NOSIGNAL),
                      static_cast<ssize_t>(bad.size()));
            ::shutdown(fd, SHUT_WR);
            char sink[4096];
            while (::recv(fd, sink, sizeof(sink), 0) > 0) {
            }
            ::close(fd);
        }
    }

    // The daemon is still alive and sane after the barrage.
    ServeClient client = fx.client();
    EXPECT_EQ(client.ping().protocol, "gws.serve.v1");
}

// ------------------------------------------------- eviction bound ----

TEST(ServeServer, EvictsLruSessionUnderMemoryBound)
{
    const Trace trace = smallTrace();
    const std::string blob =
        traceToBlob(sliceTrace(trace, 0, trace.frameCount()));

    ServerConfig cfg;
    // Two uploads of this trace fit; three do not.
    cfg.registry.maxResidentBytes = blob.size() * 5 / 2;

    ServerFixture fx(cfg);
    ServeClient client = fx.client();

    const std::uint64_t a = client.open("tenant-a");
    const std::uint64_t b = client.open("tenant-b");
    const std::uint64_t c = client.open("tenant-c");
    client.uploadFrames(a, blob);
    client.uploadFrames(b, blob);
    client.uploadFrames(c, blob); // must evict a, the LRU tenant

    EXPECT_LE(fx.server.residentBytes(),
              cfg.registry.maxResidentBytes);
    try {
        client.stats(a);
        FAIL() << "expected the LRU session to be evicted";
    } catch (const ServeRemoteError &e) {
        EXPECT_EQ(e.code(), ErrorCode::SessionEvicted);
    }

    // The newer tenants are intact.
    EXPECT_EQ(client.stats(b).frames, trace.frameCount());
    EXPECT_EQ(client.stats(c).frames, trace.frameCount());
}

// --------------------------------------------- concurrent tenants ----

TEST(ServeServer, ConcurrentSessionsStayIsolated)
{
    RuntimeConfig saved = runtimeConfig();
    RuntimeConfig rc = saved;
    rc.threads = 4;
    setRuntimeConfig(rc);

    ServerFixture fx;
    const char *profiles[2] = {"circuit", "vanguard"};

    std::vector<std::thread> tenants;
    std::vector<std::string> failures(2);
    for (int t = 0; t < 2; ++t) {
        tenants.emplace_back([&fx, &profiles, &failures, t] {
            try {
                const Trace trace = smallTrace(profiles[t]);
                ServeClient client = fx.client();
                const std::uint64_t id = client.open(trace.name());
                const std::size_t step = 5;
                for (std::size_t begin = 0;
                     begin < trace.frameCount(); begin += step)
                    client.uploadFrames(
                        id, sliceTrace(trace, begin, begin + step));

                const std::string remote = client.query(id);
                const std::string local = localSubsetBlob(trace);
                if (remote != local)
                    failures[t] = "subset not bit-identical";
                client.close(id);
            } catch (const std::exception &e) {
                failures[t] = e.what();
            }
        });
    }
    for (std::thread &t : tenants)
        t.join();
    setRuntimeConfig(saved);

    EXPECT_EQ(failures[0], "");
    EXPECT_EQ(failures[1], "");
}

// ------------------------------------------------ online cluster ----

TEST(OnlineCluster, LeaderAssignmentAndRefinement)
{
    OnlineClusterConfig cfg;
    cfg.refineEveryFrames = 8;
    OnlineClusterer online(cfg);

    // Two well-separated bands of frame features.
    for (int i = 0; i < 24; ++i) {
        FeatureVector v;
        v.at(0) = (i % 2 == 0) ? 0.0 : 20.0;
        v.at(1) = 0.01 * static_cast<double>(i);
        online.addFrame(v);
    }

    EXPECT_EQ(online.frames(), 24u);
    EXPECT_EQ(online.clusters(), 2u);
    EXPECT_GE(online.refinements(), 1u);
    EXPECT_GT(online.efficiency(), 0.9);
    EXPECT_LE(online.lastDrift(), 1.0);

    // Assignments separate the two bands.
    const std::vector<std::uint32_t> &assign = online.assignment();
    ASSERT_EQ(assign.size(), 24u);
    for (std::size_t i = 2; i < assign.size(); ++i)
        EXPECT_EQ(assign[i], assign[i % 2]);
}

TEST(Server, ScrapeExportsUptimeAndBuildInfo)
{
    ServerFixture fx;
    ServeClient c = fx.client();

    const std::string json = c.scrapeMetrics(MetricsFormat::Json);
    const report::MetricsData data =
        report::readMetricsJsonText(json);

    const report::MetricRow *up =
        data.find("gws.serve.uptime_seconds");
    ASSERT_NE(up, nullptr);
    EXPECT_EQ(up->type, "gauge");
    EXPECT_GE(up->value, 0.0);

    const report::MetricRow *build =
        data.find("gws.serve.build_info");
    ASSERT_NE(build, nullptr);
    EXPECT_EQ(build->type, "info");
    EXPECT_FALSE(build->info.empty());

    const std::string prom =
        c.scrapeMetrics(MetricsFormat::PrometheusText);
    EXPECT_NE(prom.find("gws_serve_uptime_seconds "),
              std::string::npos);
    EXPECT_NE(prom.find("gws_serve_build_info{value=\""),
              std::string::npos);
}

} // namespace
} // namespace serve
} // namespace gws
