/**
 * @file
 * Tests of the report pipeline: the strict JSON reader (grammar
 * rejection, truncation, byte-flip fuzzing), trace ingest with
 * flow-id fold-back, golden span-forest / utilization / attribution
 * numbers for a hand-built fan-out trace, both metrics wire formats
 * round-tripped through the real exporters, bench-envelope loading,
 * and the rendered dashboard's structural contract (every panel id
 * present, zero external references).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "obs/metrics.hh"
#include "obs/metrics_text.hh"
#include "report/analysis.hh"
#include "report/ingest.hh"
#include "report/json.hh"
#include "report/report.hh"

namespace gws {
namespace report {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << text;
}

/**
 * The golden trace: main [0, 100ms) on tid 0 contains submit
 * [10, 50ms), which fans out flow 7 at t=20ms to two chunk spans on
 * tids 1 and 2 (30ms and 20ms). Written exactly the way
 * obs::writeChromeTrace() spells it, companion "f" records included.
 * Timestamps in the file are microseconds.
 */
const char *kGoldenTrace = R"({"displayTimeUnit": "ms", "traceEvents": [
  {"name": "main", "pid": 1, "tid": 0, "ts": 0, "ph": "X", "cat": "gws", "dur": 100000},
  {"name": "submit", "pid": 1, "tid": 0, "ts": 10000, "ph": "X", "cat": "gws", "dur": 40000},
  {"name": "submit", "pid": 1, "tid": 0, "ts": 20000, "ph": "s", "cat": "flow", "id": 7},
  {"name": "runtime.chunk", "pid": 1, "tid": 1, "ts": 21000, "ph": "X", "cat": "gws", "dur": 30000},
  {"name": "runtime.chunk", "pid": 1, "tid": 1, "ts": 21000, "ph": "f", "bp": "e", "cat": "flow", "id": 7},
  {"name": "runtime.chunk", "pid": 1, "tid": 2, "ts": 22000, "ph": "X", "cat": "gws", "dur": 20000},
  {"name": "runtime.chunk", "pid": 1, "tid": 2, "ts": 22000, "ph": "f", "bp": "e", "cat": "flow", "id": 7}
]})";

constexpr std::uint64_t kMs = 1000000; // ns per ms

// ------------------------------------------------- strict JSON core --

TEST(ReportJson, ParsesScalarsAndStructure)
{
    EXPECT_DOUBLE_EQ(parseJson("-12.5e2").number(), -1250.0);
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_EQ(parseJson("true").boolean(), true);
    EXPECT_EQ(parseJson("\"a\\u0041\\n\"").string(), "aA\n");

    const JsonValue v = parseJson(
        "{\"a\": [1, 2], \"b\": {\"c\": \"x\"}}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("a").array().size(), 2u);
    EXPECT_EQ(v.at("b").at("c").string(), "x");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), ReportError);
    EXPECT_THROW(v.at("a").string(), ReportError);
}

TEST(ReportJson, RejectsGrammarViolations)
{
    const char *bad[] = {
        "",            // empty input
        "{",           // unterminated object
        "[1, 2",       // unterminated array
        "[1,]",        // trailing comma
        "{\"a\": 1,}", // trailing comma (object)
        "{\"a\" 1}",   // missing colon
        "{1: 2}",      // non-string key
        "01",          // leading zero
        "-01",         // leading zero, negative
        "1.",          // bare decimal point
        ".5",          // missing integer part
        "+1",          // explicit plus
        "1e",          // empty exponent
        "nul",         // truncated literal
        "TRUE",        // wrong case
        "'x'",         // single quotes
        "\"\\x\"",     // bad escape
        "\"\\u12\"",   // short unicode escape
        "\"a\nb\"",    // raw control char in string
        "1 2",         // trailing tokens
        "{} {}",       // two roots
    };
    for (const char *text : bad)
        EXPECT_THROW(parseJson(text), ReportError)
            << "accepted: " << text;
}

TEST(ReportJson, ErrorsCarryByteOffsets)
{
    try {
        parseJson("{\"a\": 01}");
        FAIL() << "leading zero accepted";
    } catch (const ReportError &e) {
        EXPECT_GE(e.byteOffset(), 0);
        EXPECT_LT(e.byteOffset(), 10);
    }
}

TEST(ReportJson, RejectsDepthBomb)
{
    std::string bomb(200, '[');
    EXPECT_THROW(parseJson(bomb), ReportError);
    // A nesting level under the cap parses fine.
    std::string ok;
    for (int i = 0; i < 40; ++i)
        ok += '[';
    for (int i = 0; i < 40; ++i)
        ok += ']';
    EXPECT_NO_THROW(parseJson(ok));
}

TEST(ReportJson, EveryTruncationOfAValidDocIsRejected)
{
    std::string doc = kGoldenTrace;
    while (!doc.empty() &&
           (doc.back() == '\n' || doc.back() == ' '))
        doc.pop_back();
    ASSERT_NO_THROW(parseJson(doc));
    // The root is an object, so no strict prefix can be complete.
    for (std::size_t len = 1; len < doc.size(); ++len)
        EXPECT_THROW(parseJson(doc.substr(0, len)), ReportError)
            << "accepted prefix of length " << len;
}

TEST(ReportJson, ByteFlipFuzzNeverEscapesTypedErrors)
{
    const std::string doc = kGoldenTrace;
    const char flips[] = {'\x01', '"', '}', '[', ':', '9', '\\'};
    // Every single-byte corruption either still parses (a digit swap
    // can stay grammatical) or fails with the typed ReportError —
    // never UB, never a foreign exception.
    for (std::size_t i = 0; i < doc.size(); ++i) {
        for (char flip : flips) {
            if (doc[i] == flip)
                continue;
            std::string mutant = doc;
            mutant[i] = flip;
            try {
                readPerfettoTraceText(mutant);
            } catch (const ReportError &) {
                // expected for most mutants
            }
        }
    }
}

TEST(ReportJson, ReadFileBoundedReportsMissingFiles)
{
    EXPECT_THROW(readFileBounded(tmpPath("does_not_exist.json")),
                 ReportError);
}

// ------------------------------------------------------ trace ingest --

TEST(ReportIngest, ReadsGoldenTraceAndFoldsFlowIds)
{
    const TraceData trace = readPerfettoTraceText(kGoldenTrace);
    ASSERT_EQ(trace.events.size(), 7u);
    EXPECT_EQ(trace.countPhase('X'), 4u);
    EXPECT_EQ(trace.countPhase('s'), 1u);
    EXPECT_EQ(trace.countPhase('f'), 2u);

    // µs on the wire, ns in the model.
    EXPECT_EQ(trace.events[0].startNs, 0u);
    EXPECT_EQ(trace.events[0].durationNs, 100 * kMs);
    EXPECT_EQ(trace.events[1].startNs, 10 * kMs);

    // The companion "f" records folded onto their "X" twins.
    EXPECT_EQ(trace.events[3].flowId, 7u);
    EXPECT_EQ(trace.events[5].flowId, 7u);
    EXPECT_EQ(trace.events[0].flowId, 0u);
    EXPECT_EQ(trace.events[1].flowId, 0u);
}

TEST(ReportIngest, RejectsMalformedTraces)
{
    EXPECT_THROW(readPerfettoTraceText("{\"traceEvents\": 3}"),
                 ReportError);
    EXPECT_THROW(readPerfettoTraceText(
                     "{\"traceEvents\": [{\"ph\": \"XY\", \"name\": "
                     "\"a\", \"tid\": 0, \"ts\": 0}]}"),
                 ReportError);
    // An 'X' span without a duration is a schema violation.
    EXPECT_THROW(readPerfettoTraceText(
                     "{\"traceEvents\": [{\"ph\": \"X\", \"name\": "
                     "\"a\", \"tid\": 0, \"ts\": 0}]}"),
                 ReportError);
    // Negative ids are rejected rather than wrapped.
    EXPECT_THROW(readPerfettoTraceText(
                     "{\"traceEvents\": [{\"ph\": \"s\", \"name\": "
                     "\"a\", \"tid\": 0, \"ts\": 0, \"id\": -1}]}"),
                 ReportError);
}

// ---------------------------------------------------- span analytics --

TEST(ReportAnalysis, GoldenSpanForest)
{
    const SpanForest forest =
        buildSpanForest(readPerfettoTraceText(kGoldenTrace));

    ASSERT_EQ(forest.nodes.size(), 4u);
    EXPECT_EQ(forest.threads, 3u);
    EXPECT_EQ(forest.minStartNs, 0u);
    EXPECT_EQ(forest.maxEndNs, 100 * kMs);

    // Roots in start order: main, then the two chunks.
    ASSERT_EQ(forest.roots.size(), 3u);
    EXPECT_EQ(forest.nodes[forest.roots[0]].name, "main");
    EXPECT_EQ(forest.nodes[forest.roots[1]].name, "runtime.chunk");
    EXPECT_EQ(forest.nodes[forest.roots[2]].name, "runtime.chunk");

    const SpanNode &main = forest.nodes[forest.roots[0]];
    ASSERT_EQ(main.children.size(), 1u);
    const SpanNode &submit = forest.nodes[main.children[0]];
    EXPECT_EQ(submit.name, "submit");
    EXPECT_EQ(submit.depth, 1u);
    EXPECT_EQ(submit.parent, forest.roots[0]);

    // Self time excludes direct children.
    EXPECT_EQ(main.selfNs, 60 * kMs);
    EXPECT_EQ(submit.selfNs, 40 * kMs);

    ASSERT_EQ(forest.flowStarts.size(), 1u);
    EXPECT_EQ(forest.flowStarts[0].flowId, 7u);
    EXPECT_EQ(forest.flowStarts[0].tsNs, 20 * kMs);
    EXPECT_EQ(forest.flowStarts[0].tid, 0u);
}

TEST(ReportAnalysis, GoldenUtilization)
{
    const SpanForest forest =
        buildSpanForest(readPerfettoTraceText(kGoldenTrace));
    const UtilizationTimeline tl = computeUtilization(forest, 10, 8);

    EXPECT_EQ(tl.binNs, 10 * kMs);
    ASSERT_EQ(tl.perThread.size(), 3u);
    ASSERT_EQ(tl.perThread[0].size(), 10u);

    // tid 0 is covered by `main` for the whole extent.
    for (double v : tl.perThread[0])
        EXPECT_DOUBLE_EQ(v, 1.0);
    // tid 1's chunk [21, 51) ms: 0.9 of bin 2, all of bins 3-4,
    // 0.1 of bin 5.
    EXPECT_DOUBLE_EQ(tl.perThread[1][1], 0.0);
    EXPECT_DOUBLE_EQ(tl.perThread[1][2], 0.9);
    EXPECT_DOUBLE_EQ(tl.perThread[1][3], 1.0);
    EXPECT_DOUBLE_EQ(tl.perThread[1][4], 1.0);
    EXPECT_DOUBLE_EQ(tl.perThread[1][5], 0.1);
    // tid 2's chunk [22, 42) ms.
    EXPECT_DOUBLE_EQ(tl.perThread[2][2], 0.8);
    EXPECT_DOUBLE_EQ(tl.perThread[2][4], 0.2);

    // Stages ranked by total self time: main 60, chunks 50, submit 40.
    ASSERT_EQ(tl.stageNames.size(), 3u);
    EXPECT_EQ(tl.stageNames[0], "main");
    EXPECT_EQ(tl.stageNames[1], "runtime.chunk");
    EXPECT_EQ(tl.stageNames[2], "submit");

    // Total stage self-time mass equals the forest's self time.
    double mass = 0.0;
    for (const std::vector<double> &track : tl.perStage)
        for (double v : track)
            mass += v;
    EXPECT_NEAR(mass, static_cast<double>(150 * kMs),
                static_cast<double>(kMs) * 1e-3);
}

TEST(ReportAnalysis, GoldenAttributionStitchesFlows)
{
    const SpanForest forest =
        buildSpanForest(readPerfettoTraceText(kGoldenTrace));
    const Attribution attr = computeAttribution(forest);

    EXPECT_EQ(attr.wallNs, 100 * kMs);
    EXPECT_EQ(attr.fanOuts, 1u);
    EXPECT_EQ(attr.orphanChunks, 0u);

    // cp(main) = self(main) + self(submit) + max(chunk cps)
    //          = 60 + 40 + 30 ms.
    EXPECT_EQ(attr.criticalPathNs, 130 * kMs);
    // The 20 ms chunk ran in the 30 ms chunk's shadow.
    EXPECT_EQ(attr.parallelSavedNs, 20 * kMs);

    ASSERT_EQ(attr.rows.size(), 3u);
    EXPECT_EQ(attr.rows[0].name, "main");
    EXPECT_EQ(attr.rows[0].criticalNs, 60 * kMs);
    EXPECT_EQ(attr.rows[1].name, "submit");
    EXPECT_EQ(attr.rows[1].criticalNs, 40 * kMs);
    // Only the longer chunk sits on the path; both roll up per name.
    EXPECT_EQ(attr.rows[2].name, "runtime.chunk");
    EXPECT_EQ(attr.rows[2].count, 2u);
    EXPECT_EQ(attr.rows[2].selfNs, 50 * kMs);
    EXPECT_EQ(attr.rows[2].criticalNs, 30 * kMs);
}

TEST(ReportAnalysis, ChunksWithoutFlowStartAreOrphans)
{
    // Same trace minus the "s" record: the chunks keep their flow
    // ids but nothing can be stitched.
    std::string noStart = kGoldenTrace;
    const std::size_t at = noStart.find("\"ph\": \"s\"");
    ASSERT_NE(at, std::string::npos);
    const std::size_t lineStart = noStart.rfind('{', at);
    const std::size_t lineEnd = noStart.find('\n', at);
    // The record's trailing comma goes with it, so the document
    // stays grammatical.
    noStart.erase(lineStart, lineEnd - lineStart + 1);

    const SpanForest forest =
        buildSpanForest(readPerfettoTraceText(noStart));
    const Attribution attr = computeAttribution(forest);
    EXPECT_EQ(attr.fanOuts, 0u);
    EXPECT_EQ(attr.orphanChunks, 2u);
    // Ownerless chunks fall back to plain roots, which compose
    // sequentially: 100 (main) + 30 + 20 ms. Without the flow start
    // nothing proves the chunks overlapped.
    EXPECT_EQ(attr.criticalPathNs, 150 * kMs);
    EXPECT_EQ(attr.parallelSavedNs, 0u);
}

// -------------------------------------------------- metrics formats --

TEST(ReportMetrics, JsonRoundTripThroughRegistryExporter)
{
    obs::metricsRegistry().resetPrefix("test.report.");
    obs::metricsRegistry().counter("test.report.hits").add(42);
    obs::metricsRegistry().gauge("test.report.load").set(1.5);
    obs::Histogram &h =
        obs::metricsRegistry().histogram("test.report.lat");
    for (std::uint64_t v : {3u, 5u, 9u, 17u, 900u})
        h.record(v);
    obs::metricsRegistry().setInfo("test.report.build", "abc-dirty");

    const MetricsData data =
        readMetricsJsonText(obs::metricsRegistry().toJson());
    obs::metricsRegistry().resetPrefix("test.report.");

    const MetricRow *hits = data.find("test.report.hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->type, "counter");
    EXPECT_DOUBLE_EQ(hits->value, 42.0);

    const MetricRow *load = data.find("test.report.load");
    ASSERT_NE(load, nullptr);
    EXPECT_DOUBLE_EQ(load->value, 1.5);

    const MetricRow *lat = data.find("test.report.lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->type, "histogram");
    EXPECT_EQ(lat->count, 5u);
    EXPECT_DOUBLE_EQ(lat->sum, 934.0);
    EXPECT_FALSE(lat->buckets.empty());
    EXPECT_GT(lat->p50, 0.0);
    EXPECT_GE(lat->p99, lat->p50);

    const MetricRow *build = data.find("test.report.build");
    ASSERT_NE(build, nullptr);
    EXPECT_EQ(build->type, "info");
    EXPECT_EQ(build->info, "abc-dirty");

    EXPECT_EQ(data.withPrefix("test.report.").size(), 4u);
}

TEST(ReportMetrics, PrometheusRoundTripThroughTextExporter)
{
    std::vector<obs::MetricSnapshot> snapshot(4);
    snapshot[0].name = "gws.test.hits";
    snapshot[0].type = obs::MetricType::Counter;
    snapshot[0].counterValue = 42;
    snapshot[1].name = "gws.test.load";
    snapshot[1].type = obs::MetricType::Gauge;
    snapshot[1].gaugeValue = 1.5;
    snapshot[2].name = "gws.test.lat";
    snapshot[2].type = obs::MetricType::Histogram;
    snapshot[2].histCount = 3;
    snapshot[2].histSum = 700;
    snapshot[2].buckets = {{0, 100, 2}, {100, 1000, 1}};
    snapshot[3].name = "gws.test.build";
    snapshot[3].type = obs::MetricType::Info;
    snapshot[3].infoValue = "v1 \"x\"";

    const MetricsData data = readMetricsText(
        obs::metricsPrometheusText(snapshot));

    // Dotted lookups resolve through the exporter's name mapping.
    const MetricRow *hits = data.find("gws.test.hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->type, "counter");
    EXPECT_DOUBLE_EQ(hits->value, 42.0);

    const MetricRow *load = data.find("gws.test.load");
    ASSERT_NE(load, nullptr);
    EXPECT_EQ(load->type, "gauge");
    EXPECT_DOUBLE_EQ(load->value, 1.5);

    const MetricRow *lat = data.find("gws.test.lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->type, "histogram");
    EXPECT_EQ(lat->count, 3u);
    EXPECT_DOUBLE_EQ(lat->sum, 700.0);
    // De-cumulated back to per-bucket counts.
    ASSERT_EQ(lat->buckets.size(), 2u);
    EXPECT_EQ(lat->buckets[0].count, 2u);
    EXPECT_EQ(lat->buckets[1].count, 1u);
    EXPECT_EQ(lat->buckets[1].hi, 1000u);

    const MetricRow *build = data.find("gws.test.build");
    ASSERT_NE(build, nullptr);
    EXPECT_EQ(build->type, "info");
    EXPECT_EQ(build->info, "v1 \"x\"");
}

TEST(ReportMetrics, RejectsWrongSchemaAndEmptyInput)
{
    EXPECT_THROW(readMetricsJsonText(
                     "{\"schema\": \"other.v9\", \"metrics\": []}"),
                 ReportError);
    EXPECT_THROW(readMetricsText("   \n "), ReportError);
    EXPECT_THROW(readMetricsText("{\"schema\": \"gws.metrics.v1\""),
                 ReportError);
}

// -------------------------------------------------- bench envelopes --

const char *kEnvelope = R"({"schema": "gws.bench.v1",
  "bench": "fig_test", "git": "deadbeef", "threads": 4,
  "wall_ms": 12.5, "peak_rss_bytes": 1048576,
  "results": {
    "family_kmeans_mean_error_pct": 4.2,
    "family_kmeans_mean_efficiency_pct": 93.0,
    "family_kmeans_clusters": 12,
    "family_dbscan_mean_error_pct": 6.5,
    "family_dbscan_outlier_pct": 2.25,
    "heatmap": {"title": "improvement vs scale",
      "rows": ["game_a", "game_b"],
      "cols": ["0.5x", "0.8x", "1.0x"],
      "values": [[1.5, 1.2, 1.0], [1.4, 1.1, 1.0]]}}})";

TEST(ReportBench, LoadsDirSkippingMalformedFiles)
{
    const std::string dir = tmpPath("bench_dir");
    ::mkdir(dir.c_str(), 0755);
    writeFile(dir + "/BENCH_fig_test.json", kEnvelope);
    writeFile(dir + "/BENCH_broken.json", "{\"schema\": \"gws.be");
    writeFile(dir + "/not_a_bench.json", "{}");

    const std::vector<BenchEnvelope> benches = loadBenchDir(dir);
    ASSERT_EQ(benches.size(), 1u);
    EXPECT_EQ(benches[0].bench, "fig_test");
    EXPECT_EQ(benches[0].git, "deadbeef");
    EXPECT_EQ(benches[0].threads, 4u);
    EXPECT_DOUBLE_EQ(benches[0].wallMs, 12.5);
    EXPECT_EQ(benches[0].peakRssBytes, 1048576u);

    EXPECT_THROW(loadBenchDir(tmpPath("no_such_dir")), ReportError);
}

TEST(ReportBench, ExtractsHeatmapAndClusterQuality)
{
    const std::vector<BenchEnvelope> benches{
        readBenchEnvelopeText(kEnvelope, "<test>")};

    const std::vector<Heatmap> maps = extractHeatmaps(benches);
    ASSERT_EQ(maps.size(), 1u);
    EXPECT_EQ(maps[0].title, "improvement vs scale");
    EXPECT_EQ(maps[0].source, "fig_test");
    ASSERT_EQ(maps[0].rowLabels.size(), 2u);
    ASSERT_EQ(maps[0].colLabels.size(), 3u);
    EXPECT_DOUBLE_EQ(maps[0].values[0][0], 1.5);
    EXPECT_DOUBLE_EQ(maps[0].values[1][2], 1.0);

    const std::vector<ClusterQualityRow> rows =
        extractClusterQuality(benches);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].family, "kmeans");
    EXPECT_DOUBLE_EQ(rows[0].meanErrorPct, 4.2);
    EXPECT_DOUBLE_EQ(rows[0].meanEfficiencyPct, 93.0);
    EXPECT_DOUBLE_EQ(rows[0].clusters, 12.0);
    EXPECT_TRUE(std::isnan(rows[0].outlierPct));
    EXPECT_EQ(rows[1].family, "dbscan");
    EXPECT_DOUBLE_EQ(rows[1].outlierPct, 2.25);
    EXPECT_TRUE(std::isnan(rows[1].meanEfficiencyPct));
}

TEST(ReportBench, RaggedHeatmapIsRejected)
{
    const std::string ragged =
        std::string("{\"schema\": \"gws.bench.v1\", \"bench\": \"x\","
                    " \"git\": \"g\", \"threads\": 1, \"wall_ms\": 1,"
                    " \"peak_rss_bytes\": 0, \"results\": {\"heatmap\":"
                    " {\"title\": \"t\", \"rows\": [\"a\"],"
                    " \"cols\": [\"x\", \"y\"],"
                    " \"values\": [[1]]}}}");
    const std::vector<BenchEnvelope> benches{
        readBenchEnvelopeText(ragged, "<test>")};
    EXPECT_THROW(extractHeatmaps(benches), ReportError);
}

// --------------------------------------------------- rendered page --

/** Every panel the dashboard contract promises. */
const char *kPanelIds[] = {
    "panel-meta",      "panel-utilization",
    "panel-bottlenecks", "panel-heatmap",
    "panel-cluster-quality", "panel-shards",
    "panel-streams",   "panel-serve",
    "panel-benches",
};

void
expectSelfContained(const std::string &html)
{
    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    for (const char *id : kPanelIds)
        EXPECT_NE(html.find(std::string("<section id=\"") + id),
                  std::string::npos)
            << "missing " << id;
    // Self-containment: nothing the browser could try to fetch.
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("<script"), std::string::npos);
}

TEST(ReportPage, OfflineModelRendersAllPanelsSelfContained)
{
    obs::metricsRegistry().resetPrefix("test.report.");
    const std::string dir = tmpPath("page_dir");
    ::mkdir(dir.c_str(), 0755);
    writeFile(dir + "/BENCH_fig_test.json", kEnvelope);
    const std::string tracePath = tmpPath("golden_trace.json");
    writeFile(tracePath, kGoldenTrace);
    const std::string metricsPath = tmpPath("golden_metrics.json");
    obs::metricsRegistry().counter("gws.part.cut_edges").add(3);
    writeFile(metricsPath, obs::metricsRegistry().toJson());
    obs::metricsRegistry().resetPrefix("gws.part.");

    ReportInputs inputs;
    inputs.tracePath = tracePath;
    inputs.metricsPath = metricsPath;
    inputs.benchDir = dir;
    const ReportModel model = buildReportModel(inputs);
    EXPECT_TRUE(model.hasTrace);
    EXPECT_TRUE(model.hasMetrics);
    ASSERT_EQ(model.benches.size(), 1u);

    const std::string html = renderReportHtml(model);
    expectSelfContained(html);
    // The analysis numbers made it onto the page.
    EXPECT_NE(html.find("runtime.chunk"), std::string::npos);
    EXPECT_NE(html.find("improvement vs scale"), std::string::npos);
    EXPECT_NE(html.find("kmeans"), std::string::npos);
}

TEST(ReportPage, LiveModelRendersSamePanelShape)
{
    std::vector<obs::MetricSnapshot> snapshot(1);
    snapshot[0].name = "gws.serve.uptime_seconds";
    snapshot[0].type = obs::MetricType::Gauge;
    snapshot[0].gaugeValue = 12.0;
    const MetricsData metrics =
        readMetricsText(obs::metricsPrometheusText(snapshot));

    const ReportModel model =
        buildLiveReportModel(metrics, "unix:/tmp/gws.sock");
    EXPECT_TRUE(model.live);
    const std::string html = renderReportHtml(model);
    expectSelfContained(html);
    EXPECT_NE(html.find("unix:/tmp/gws.sock"), std::string::npos);
}

TEST(ReportPage, WriteIsAtomicAndLeavesNoTempFile)
{
    ReportModel model;
    model.sources.push_back("<none>");
    const std::string out = tmpPath("atomic_report.html");
    writeReportHtml(model, out);

    std::ifstream in(out, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string html((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    expectSelfContained(html);

    struct stat st;
    EXPECT_NE(::stat((out + ".tmp").c_str(), &st), 0)
        << "temp file left behind";
    std::remove(out.c_str());
}

TEST(ReportPage, ModelWithNoInputsIsRejected)
{
    EXPECT_THROW(buildReportModel(ReportInputs{}), ReportError);
}

} // namespace
} // namespace report
} // namespace gws
