/**
 * @file
 * Unit and property tests of the set-associative LRU cache, including
 * a cross-check against a brute-force reference model.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "gpusim/cache.hh"
#include "util/rng.hh"

namespace gws {
namespace {

// ----------------------------------------------------------- geometry --

TEST(CacheConfig, SetsFromGeometry)
{
    CacheConfig c{16 * 1024, 64, 4};
    EXPECT_EQ(c.sets(), 64u);
    CacheConfig direct{1024, 64, 1};
    EXPECT_EQ(direct.sets(), 16u);
}

TEST(CacheConfig, SetsNeverZero)
{
    CacheConfig tiny{64, 64, 4}; // smaller than one full set
    EXPECT_EQ(tiny.sets(), 1u);
}

TEST(CacheConfig, ScaledDownPreservesWaysAndLine)
{
    CacheConfig c{1024 * 1024, 64, 16};
    const CacheConfig mini = c.scaledDown(64.0);
    EXPECT_EQ(mini.ways, 16u);
    EXPECT_EQ(mini.lineBytes, 64u);
    EXPECT_EQ(mini.sizeBytes, 16u * 1024);
}

TEST(CacheConfig, ScaledDownFloorsAtOneSet)
{
    CacheConfig c{4096, 64, 4};
    const CacheConfig mini = c.scaledDown(1e9);
    EXPECT_GE(mini.sizeBytes, 64u * 4u);
    EXPECT_EQ(mini.sets(), 1u);
}

// ------------------------------------------------------------- behavior --

TEST(Cache, ColdMissThenHit)
{
    Cache c(CacheConfig{1024, 64, 2});
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(63));   // same line
    EXPECT_FALSE(c.access(64));  // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // Direct construction of a 1-set, 2-way cache.
    Cache c(CacheConfig{128, 64, 2});
    ASSERT_EQ(c.config().sets(), 1u);
    c.access(0);    // A miss
    c.access(64);   // B miss
    c.access(0);    // A hit (B is now LRU)
    c.access(128);  // C miss, evicts B
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(64));
    EXPECT_TRUE(c.probe(128));
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(CacheConfig{128, 64, 2});
    c.access(0);
    const auto before = c.stats().accesses;
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(4096));
    EXPECT_EQ(c.stats().accesses, before);
}

TEST(Cache, ResetClearsLinesAndStats)
{
    Cache c(CacheConfig{1024, 64, 4});
    c.access(0);
    c.access(0);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.probe(0));
    EXPECT_FALSE(c.access(0)); // cold again
}

TEST(Cache, WorkingSetWithinCapacityAlwaysHitsAfterWarmup)
{
    // 4 KiB, 64 B lines, 4-way: 64 lines capacity.
    Cache c(CacheConfig{4096, 64, 4});
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t line = 0; line < 64; ++line) {
            const bool hit = c.access(line * 64);
            if (round > 0) {
                ASSERT_TRUE(hit) << "line " << line << " round " << round;
            }
        }
    }
}

TEST(Cache, StreamingOverCapacityAlwaysMisses)
{
    Cache c(CacheConfig{4096, 64, 4});
    // Touch 4x capacity twice; second pass still misses everything
    // under LRU (classic streaming worst case).
    for (int round = 0; round < 2; ++round) {
        for (std::uint64_t line = 0; line < 256; ++line)
            ASSERT_FALSE(c.access(line * 64));
    }
}

TEST(CacheStats, HitRateEdgeCases)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.hitRate(), 1.0); // vacuous
    s.accesses = 10;
    s.hits = 4;
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.4);
}

// ------------------------------------------------- reference cross-check --

/** Brute-force set-associative LRU reference. */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const CacheConfig &c) : cfg(c), sets(c.sets()) {}

    bool
    access(std::uint64_t addr)
    {
        const std::uint64_t line = addr / cfg.lineBytes;
        const std::uint64_t set = line % sets;
        auto &lru = content[set]; // front = MRU
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == line) {
                lru.erase(it);
                lru.push_front(line);
                return true;
            }
        }
        lru.push_front(line);
        if (lru.size() > cfg.ways)
            lru.pop_back();
        return false;
    }

  private:
    CacheConfig cfg;
    std::uint64_t sets;
    std::map<std::uint64_t, std::list<std::uint64_t>> content;
};

struct CrossCheckCase
{
    CacheConfig config;
    double locality;
};

class CacheCrossCheck : public ::testing::TestWithParam<CrossCheckCase>
{
};

TEST_P(CacheCrossCheck, MatchesReferenceOnRandomStream)
{
    const auto &[config, locality] = GetParam();
    Cache dut(config);
    ReferenceCache ref(config);
    Rng rng(0xc0ffee);
    std::uint64_t cursor = 0;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t addr;
        if (rng.bernoulli(locality)) {
            addr = cursor + rng.uniformInt(0, 127);
        } else {
            addr = rng.uniformInt(0, 1 << 20);
            cursor = addr;
        }
        ASSERT_EQ(dut.access(addr), ref.access(addr))
            << "diverged at access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheCrossCheck,
    ::testing::Values(
        CrossCheckCase{{1024, 64, 1}, 0.5},     // direct mapped
        CrossCheckCase{{4096, 64, 4}, 0.8},     // typical L1
        CrossCheckCase{{4096, 64, 4}, 0.0},     // pure random
        CrossCheckCase{{16 * 1024, 128, 8}, 0.7},
        CrossCheckCase{{64 * 1024, 64, 16}, 0.9},
        CrossCheckCase{{256, 64, 4}, 0.5}));    // single set

} // namespace
} // namespace gws
