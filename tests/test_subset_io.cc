/**
 * @file
 * Tests of workload-subset serialization: round-trips, pricing
 * equivalence after reload, corruption detection, and the
 * parent-pairing cross-check.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/subset_io.hh"
#include "synth/generator.hh"

namespace gws {
namespace {

Trace
ioTrace()
{
    GameProfile p = builtinProfile("circuit", SuiteScale::Ci);
    p.segments = 4;
    p.segmentFramesMin = 6;
    p.segmentFramesMax = 8;
    p.drawsPerFrame = 40.0;
    return GameGenerator(p).generate();
}

std::string
serialize(const WorkloadSubset &s)
{
    std::ostringstream oss(std::ios::binary);
    writeSubset(s, oss);
    return oss.str();
}

TEST(SubsetIo, RoundTripPreservesStructure)
{
    const Trace t = ioTrace();
    const WorkloadSubset original = buildWorkloadSubset(t, SubsetConfig{});
    std::istringstream iss(serialize(original), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);

    EXPECT_EQ(copy.parentName, original.parentName);
    EXPECT_EQ(copy.prediction, original.prediction);
    EXPECT_EQ(copy.parentFrames, original.parentFrames);
    EXPECT_EQ(copy.parentDraws, original.parentDraws);
    ASSERT_EQ(copy.units.size(), original.units.size());
    for (std::size_t i = 0; i < copy.units.size(); ++i) {
        EXPECT_EQ(copy.units[i].phaseId, original.units[i].phaseId);
        EXPECT_EQ(copy.units[i].frameIndex,
                  original.units[i].frameIndex);
        EXPECT_DOUBLE_EQ(copy.units[i].frameWeight,
                         original.units[i].frameWeight);
        EXPECT_EQ(copy.units[i].frameSubset.clustering.assignment,
                  original.units[i].frameSubset.clustering.assignment);
        EXPECT_EQ(copy.units[i].frameSubset.workUnits,
                  original.units[i].frameSubset.workUnits);
    }
    EXPECT_EQ(copy.timeline.phaseCount, original.timeline.phaseCount);
    EXPECT_EQ(copy.timeline.phaseSequence(),
              original.timeline.phaseSequence());
    EXPECT_EQ(copy.unitsOfPhase, original.unitsOfPhase);
}

TEST(SubsetIo, ReloadedSubsetPricesIdentically)
{
    const Trace t = ioTrace();
    const WorkloadSubset original = buildWorkloadSubset(t, SubsetConfig{});
    std::istringstream iss(serialize(original), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);

    for (const auto &preset : {"baseline", "wide", "mobile"}) {
        const GpuSimulator sim(makeGpuPreset(preset));
        ASSERT_DOUBLE_EQ(copy.predictTotalNs(t, sim),
                         original.predictTotalNs(t, sim))
            << preset;
    }
}

TEST(SubsetIo, WorkScaledSubsetRoundTrips)
{
    const Trace t = ioTrace();
    SubsetConfig cfg;
    cfg.draws.prediction = PredictionMode::WorkScaled;
    const WorkloadSubset original = buildWorkloadSubset(t, cfg);
    std::istringstream iss(serialize(original), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);
    EXPECT_EQ(copy.prediction, PredictionMode::WorkScaled);
    const GpuSimulator sim(makeGpuPreset("baseline"));
    EXPECT_DOUBLE_EQ(copy.predictTotalNs(t, sim),
                     original.predictTotalNs(t, sim));
}

TEST(SubsetIo, ChecksumCatchesCorruption)
{
    const Trace t = ioTrace();
    std::string data = serialize(buildWorkloadSubset(t, SubsetConfig{}));
    data[data.size() / 2] ^= 0x40;
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readSubset(iss), SubsetIoError);
}

TEST(SubsetIo, BadMagicAndTruncationThrow)
{
    const Trace t = ioTrace();
    std::string data = serialize(buildWorkloadSubset(t, SubsetConfig{}));
    std::string bad = data;
    bad[0] = 'X';
    std::istringstream iss1(bad, std::ios::binary);
    EXPECT_THROW(readSubset(iss1), SubsetIoError);
    std::istringstream iss2(data.substr(0, data.size() - 5),
                            std::ios::binary);
    EXPECT_THROW(readSubset(iss2), SubsetIoError);
    std::istringstream iss3(std::string("GW"), std::ios::binary);
    EXPECT_THROW(readSubset(iss3), SubsetIoError);
}

TEST(SubsetIo, FileRoundTrip)
{
    const Trace t = ioTrace();
    const WorkloadSubset original = buildWorkloadSubset(t, SubsetConfig{});
    const std::string path = ::testing::TempDir() + "/gws_subset_test.gws";
    writeSubsetFile(original, path);
    const WorkloadSubset copy = readSubsetFile(path);
    EXPECT_EQ(copy.parentName, original.parentName);
    EXPECT_EQ(copy.subsetDraws(), original.subsetDraws());
    std::remove(path.c_str());
}

TEST(SubsetIo, CheckAgainstAcceptsItsParent)
{
    const Trace t = ioTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    std::istringstream iss(serialize(s), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);
    EXPECT_NO_THROW(checkSubsetAgainst(copy, t));
}

TEST(SubsetIo, CheckAgainstRejectsWrongParent)
{
    const Trace t = ioTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});

    // Different game entirely.
    GameProfile other = builtinProfile("shock1", SuiteScale::Ci);
    other.segments = 2;
    other.segmentFramesMin = other.segmentFramesMax = 4;
    const Trace wrong = GameGenerator(other).generate();
    EXPECT_THROW(checkSubsetAgainst(s, wrong), SubsetIoError);

    // Same name, different content.
    Trace renamed = wrong;
    renamed.setName(t.name());
    EXPECT_THROW(checkSubsetAgainst(s, renamed), SubsetIoError);
}

TEST(SubsetIo, SerializationIsDeterministic)
{
    const Trace t = ioTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    EXPECT_EQ(serialize(s), serialize(s));
}

} // namespace
} // namespace gws
