/**
 * @file
 * Tests of workload-subset serialization: round-trips, pricing
 * equivalence after reload, corruption detection, and the
 * parent-pairing cross-check.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/subset_io.hh"
#include "features/feature_vector.hh"
#include "synth/generator.hh"
#include "util/codec.hh"

namespace gws {
namespace {

Trace
ioTrace()
{
    GameProfile p = builtinProfile("circuit", SuiteScale::Ci);
    p.segments = 4;
    p.segmentFramesMin = 6;
    p.segmentFramesMax = 8;
    p.drawsPerFrame = 40.0;
    return GameGenerator(p).generate();
}

std::string
serialize(const WorkloadSubset &s)
{
    std::ostringstream oss(std::ios::binary);
    writeSubset(s, oss);
    return oss.str();
}

TEST(SubsetIo, RoundTripPreservesStructure)
{
    const Trace t = ioTrace();
    const WorkloadSubset original = buildWorkloadSubset(t, SubsetConfig{});
    std::istringstream iss(serialize(original), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);

    EXPECT_EQ(copy.parentName, original.parentName);
    EXPECT_EQ(copy.prediction, original.prediction);
    EXPECT_EQ(copy.parentFrames, original.parentFrames);
    EXPECT_EQ(copy.parentDraws, original.parentDraws);
    ASSERT_EQ(copy.units.size(), original.units.size());
    for (std::size_t i = 0; i < copy.units.size(); ++i) {
        EXPECT_EQ(copy.units[i].phaseId, original.units[i].phaseId);
        EXPECT_EQ(copy.units[i].frameIndex,
                  original.units[i].frameIndex);
        EXPECT_DOUBLE_EQ(copy.units[i].frameWeight,
                         original.units[i].frameWeight);
        EXPECT_EQ(copy.units[i].frameSubset.clustering.assignment,
                  original.units[i].frameSubset.clustering.assignment);
        EXPECT_EQ(copy.units[i].frameSubset.workUnits,
                  original.units[i].frameSubset.workUnits);
    }
    EXPECT_EQ(copy.timeline.phaseCount, original.timeline.phaseCount);
    EXPECT_EQ(copy.timeline.phaseSequence(),
              original.timeline.phaseSequence());
    EXPECT_EQ(copy.unitsOfPhase, original.unitsOfPhase);
}

TEST(SubsetIo, ReloadedSubsetPricesIdentically)
{
    const Trace t = ioTrace();
    const WorkloadSubset original = buildWorkloadSubset(t, SubsetConfig{});
    std::istringstream iss(serialize(original), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);

    for (const auto &preset : {"baseline", "wide", "mobile"}) {
        const GpuSimulator sim(makeGpuPreset(preset));
        ASSERT_DOUBLE_EQ(copy.predictTotalNs(t, sim),
                         original.predictTotalNs(t, sim))
            << preset;
    }
}

TEST(SubsetIo, WorkScaledSubsetRoundTrips)
{
    const Trace t = ioTrace();
    SubsetConfig cfg;
    cfg.draws.prediction = PredictionMode::WorkScaled;
    const WorkloadSubset original = buildWorkloadSubset(t, cfg);
    std::istringstream iss(serialize(original), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);
    EXPECT_EQ(copy.prediction, PredictionMode::WorkScaled);
    const GpuSimulator sim(makeGpuPreset("baseline"));
    EXPECT_DOUBLE_EQ(copy.predictTotalNs(t, sim),
                     original.predictTotalNs(t, sim));
}

TEST(SubsetIo, ChecksumCatchesCorruption)
{
    const Trace t = ioTrace();
    std::string data = serialize(buildWorkloadSubset(t, SubsetConfig{}));
    data[data.size() / 2] ^= 0x40;
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readSubset(iss), SubsetIoError);
}

TEST(SubsetIo, BadMagicAndTruncationThrow)
{
    const Trace t = ioTrace();
    std::string data = serialize(buildWorkloadSubset(t, SubsetConfig{}));
    std::string bad = data;
    bad[0] = 'X';
    std::istringstream iss1(bad, std::ios::binary);
    EXPECT_THROW(readSubset(iss1), SubsetIoError);
    std::istringstream iss2(data.substr(0, data.size() - 5),
                            std::ios::binary);
    EXPECT_THROW(readSubset(iss2), SubsetIoError);
    std::istringstream iss3(std::string("GW"), std::ios::binary);
    EXPECT_THROW(readSubset(iss3), SubsetIoError);
}

TEST(SubsetIo, FileRoundTrip)
{
    const Trace t = ioTrace();
    const WorkloadSubset original = buildWorkloadSubset(t, SubsetConfig{});
    const std::string path = ::testing::TempDir() + "/gws_subset_test.gws";
    writeSubsetFile(original, path);
    const WorkloadSubset copy = readSubsetFile(path);
    EXPECT_EQ(copy.parentName, original.parentName);
    EXPECT_EQ(copy.subsetDraws(), original.subsetDraws());
    std::remove(path.c_str());
}

TEST(SubsetIo, CheckAgainstAcceptsItsParent)
{
    const Trace t = ioTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    std::istringstream iss(serialize(s), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);
    EXPECT_NO_THROW(checkSubsetAgainst(copy, t));
}

TEST(SubsetIo, CheckAgainstRejectsWrongParent)
{
    const Trace t = ioTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});

    // Different game entirely.
    GameProfile other = builtinProfile("shock1", SuiteScale::Ci);
    other.segments = 2;
    other.segmentFramesMin = other.segmentFramesMax = 4;
    const Trace wrong = GameGenerator(other).generate();
    EXPECT_THROW(checkSubsetAgainst(s, wrong), SubsetIoError);

    // Same name, different content.
    Trace renamed = wrong;
    renamed.setName(t.name());
    EXPECT_THROW(checkSubsetAgainst(s, renamed), SubsetIoError);
}

// --- Table-driven structural-error tests -----------------------------
//
// Each case hand-crafts a checksum-valid file whose payload violates
// exactly one decoder rule, pinning the individual throw sites that a
// checksum-breaking corruption would never reach.

constexpr std::uint32_t kSubsetMagic = 0x53535747; // "GWSS"

/** Frame a hand-built payload as a subset file image. */
std::string
frameSubsetPayload(const std::string &payload)
{
    std::ostringstream oss(std::ios::binary);
    writeFramed<SubsetIoError>(oss, kSubsetMagic, subsetFormatVersion,
                               payload, "subset", "crafted");
    return oss.str();
}

/** Write a 1-cluster / 1-item clustering, optionally flawed. */
void
putClustering(ByteWriter &e, const std::string &flaw)
{
    if (flaw == "degenerate-k-zero") {
        e.u32(0); // k
        e.u32(1); // items
        return;
    }
    if (flaw == "degenerate-k-gt-items") {
        e.u32(2);
        e.u32(1);
        return;
    }
    if (flaw == "clustering-count-lie") {
        e.u32(1);
        e.u32(0xffffff); // items: lies past the end of the payload
        return;
    }
    e.u32(1); // k
    e.u32(1); // items
    e.u32(flaw == "assign-oob" ? 5 : 0);
    if (flaw == "rep-oob") {
        e.u32(9);
        return;
    }
    e.u32(0); // representative
    for (std::size_t d = 0; d < numFeatureDims; ++d)
        e.f64(0.0);
}

/**
 * Minimal well-formed subset payload: one phase, one interval, one
 * unit over a 1-frame / 1-draw parent. `flaw` selects the single rule
 * a table case violates.
 */
std::string
craftSubsetPayload(const std::string &flaw)
{
    ByteWriter e;
    e.str("p");
    e.u8(flaw == "bad-mode" ? 9 : 0);
    e.u64(1); // parent frames
    e.u64(1); // parent draws

    // Timeline.
    const bool two_phases = flaw == "phase-no-interval";
    e.u32(flaw == "phasecount-lie" ? 5 : (two_phases ? 2 : 1));
    if (flaw == "interval-count-lie") {
        e.u32(0xffffff);
        return e.data();
    }
    e.u32(two_phases ? 2 : 1);
    for (int iv = 0; iv < (two_phases ? 2 : 1); ++iv) {
        e.u32(flaw == "empty-interval" ? 1 : 0); // begin
        e.u32(1);                                // end
        e.u32(flaw == "interval-phase-oob" ? 5 : 0);
        if (flaw == "bad-universe") {
            e.u32(0x2000000); // above the 16M cap
            return e.data();
        }
        e.u32(4); // universe
        if (flaw == "shaderid-count-lie") {
            e.u32(0xffffff);
            return e.data();
        }
        if (flaw == "ids-not-ascending") {
            e.u32(2);
            e.u32(2);
            e.u32(2);
            return e.data();
        }
        e.u32(1);                                  // bits
        e.u32(flaw == "shader-id-oob" ? 7 : 2);    // id
    }

    // Units.
    if (flaw == "unit-count-lie") {
        e.u32(0xffffff);
        return e.data();
    }
    e.u32(1);
    e.u32(flaw == "unit-phase-oob" ? 7 : 0);  // phase id
    e.u32(flaw == "unit-frame-oob" ? 9 : 0);  // frame index
    e.f64(1.0);                               // frame weight
    putClustering(e, flaw);
    if (flaw == "degenerate-k-zero" || flaw == "degenerate-k-gt-items" ||
        flaw == "clustering-count-lie" || flaw == "rep-oob")
        return e.data();
    e.u32(flaw == "work-count-mismatch" ? 2 : 1);
    e.f64(1.0);
    if (flaw == "work-count-mismatch")
        e.f64(1.0);

    // Unit groups.
    if (flaw == "group-count-lie") {
        e.u32(0xffffff);
        return e.data();
    }
    e.u32(1);
    if (flaw == "group-index-count-lie") {
        e.u32(0xffffff);
        return e.data();
    }
    e.u32(1);
    e.u32(flaw == "group-index-oob" ? 5 : 0);
    if (flaw == "trailing-bytes")
        e.u8(0);
    return e.data();
}

TEST(SubsetIo, CraftedMinimalPayloadRoundTrips)
{
    const std::string file = frameSubsetPayload(craftSubsetPayload(""));
    std::istringstream iss(file, std::ios::binary);
    const WorkloadSubset s = readSubset(iss);
    EXPECT_EQ(s.parentName, "p");
    ASSERT_EQ(s.units.size(), 1u);
    EXPECT_EQ(serialize(s), file);
}

TEST(SubsetIo, EveryStructuralThrowSiteFires)
{
    const char *flaws[] = {
        "bad-mode",           "phasecount-lie",
        "interval-count-lie", "bad-universe",
        "shaderid-count-lie", "shader-id-oob",
        "ids-not-ascending",  "interval-phase-oob",
        "empty-interval",     "phase-no-interval",
        "unit-count-lie",     "degenerate-k-zero",
        "degenerate-k-gt-items", "clustering-count-lie",
        "assign-oob",         "rep-oob",
        "work-count-mismatch", "unit-phase-oob",
        "unit-frame-oob",     "group-count-lie",
        "group-index-count-lie", "group-index-oob",
        "trailing-bytes",
    };
    for (const char *flaw : flaws) {
        SCOPED_TRACE(flaw);
        const std::string file =
            frameSubsetPayload(craftSubsetPayload(flaw));
        std::istringstream iss(file, std::ios::binary);
        try {
            readSubset(iss);
            FAIL() << "decoder accepted flaw " << flaw;
        } catch (const SubsetIoError &e) {
            EXPECT_GE(e.byteOffset(), 0) << e.what();
        }
    }
}

TEST(SubsetIo, UnsupportedVersionThrows)
{
    std::string data = frameSubsetPayload(craftSubsetPayload(""));
    data[4] = static_cast<char>(subsetFormatVersion + 1);
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readSubset(iss), SubsetIoError);
}

TEST(SubsetIo, ImplausiblePayloadSizeThrows)
{
    ByteWriter header;
    header.u32(kSubsetMagic);
    header.u32(subsetFormatVersion);
    header.u32(0xffffffffu);
    header.u32(0);
    std::istringstream iss(header.data(), std::ios::binary);
    EXPECT_THROW(readSubset(iss), SubsetIoError);
}

TEST(SubsetIo, EmptySubsetRoundTrips)
{
    // The size-0 edge: no phases, no units, no groups.
    const WorkloadSubset empty;
    std::istringstream iss(serialize(empty), std::ios::binary);
    const WorkloadSubset copy = readSubset(iss);
    EXPECT_EQ(copy.parentName, empty.parentName);
    EXPECT_EQ(copy.units.size(), 0u);
    EXPECT_EQ(serialize(copy), serialize(empty));
}

TEST(SubsetIo, SerializationIsDeterministic)
{
    const Trace t = ioTrace();
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    EXPECT_EQ(serialize(s), serialize(s));
}

} // namespace
} // namespace gws
