/**
 * @file
 * Serialization tests: round-trips, header validation, checksum and
 * truncation detection, file I/O errors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <sstream>

#include "synth/generator.hh"
#include "trace/trace_io.hh"
#include "util/codec.hh"

namespace gws {
namespace {

Trace
sampleTrace()
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.segments = 2;
    p.segmentFramesMin = 2;
    p.segmentFramesMax = 3;
    p.drawsPerFrame = 20.0;
    return GameGenerator(p).generate();
}

std::string
serializeToString(const Trace &t)
{
    std::ostringstream oss(std::ios::binary);
    writeTrace(t, oss);
    return oss.str();
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const Trace original = sampleTrace();
    std::istringstream iss(serializeToString(original),
                           std::ios::binary);
    const Trace copy = readTrace(iss);
    EXPECT_EQ(original, copy);
    copy.validate();
}

TEST(TraceIo, RoundTripOfEmptyTrace)
{
    Trace original("nothing");
    std::istringstream iss(serializeToString(original),
                           std::ios::binary);
    const Trace copy = readTrace(iss);
    EXPECT_EQ(copy.name(), "nothing");
    EXPECT_EQ(copy.frameCount(), 0u);
    EXPECT_EQ(original, copy);
}

TEST(TraceIo, RoundTripPreservesStateFlags)
{
    Trace t("flags");
    const ShaderId vs = t.shaders().add(ShaderStage::Vertex, "vs", {});
    const ShaderId ps = t.shaders().add(ShaderStage::Pixel, "ps", {});
    const RenderTargetId rt = t.addRenderTarget({64, 64, 4});
    Frame f(0);
    DrawCall d;
    d.state.vertexShader = vs;
    d.state.pixelShader = ps;
    d.state.renderTarget = rt;
    d.state.blendEnabled = true;
    d.state.depthTestEnabled = false;
    d.state.depthWriteEnabled = false;
    d.topology = PrimitiveTopology::LineStrip;
    d.shadedPixels = 12;
    d.overdraw = 1.5;
    d.texLocality = 0.25;
    f.addDraw(d);
    t.addFrame(std::move(f));

    std::istringstream iss(serializeToString(t), std::ios::binary);
    const Trace copy = readTrace(iss);
    const DrawCall &rd = copy.frame(0).draws()[0];
    EXPECT_TRUE(rd.state.blendEnabled);
    EXPECT_FALSE(rd.state.depthTestEnabled);
    EXPECT_FALSE(rd.state.depthWriteEnabled);
    EXPECT_EQ(rd.topology, PrimitiveTopology::LineStrip);
    EXPECT_DOUBLE_EQ(rd.overdraw, 1.5);
    EXPECT_DOUBLE_EQ(rd.texLocality, 0.25);
}

TEST(TraceIo, BadMagicThrows)
{
    std::string data = serializeToString(sampleTrace());
    data[0] = 'X';
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, UnsupportedVersionThrows)
{
    std::string data = serializeToString(sampleTrace());
    data[4] = static_cast<char>(traceFormatVersion + 1);
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, CorruptPayloadFailsChecksum)
{
    std::string data = serializeToString(sampleTrace());
    data[data.size() / 2] ^= 0x5a;
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, TruncatedPayloadThrows)
{
    std::string data = serializeToString(sampleTrace());
    data.resize(data.size() - 10);
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, TruncatedHeaderThrows)
{
    std::istringstream iss(std::string("GWST"), std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, EmptyStreamThrows)
{
    std::istringstream iss(std::string(), std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, FileRoundTrip)
{
    const Trace original = sampleTrace();
    const std::string path = ::testing::TempDir() + "/gws_io_test.trace";
    writeTraceFile(original, path);
    const Trace copy = readTraceFile(path);
    EXPECT_EQ(original, copy);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/dir/x.trace"), TraceIoError);
}

TEST(TraceIo, UnwritablePathThrows)
{
    const Trace t = sampleTrace();
    EXPECT_THROW(writeTraceFile(t, "/nonexistent/dir/x.trace"),
                 TraceIoError);
}

TEST(TraceIo, SerializationIsDeterministic)
{
    const Trace t = sampleTrace();
    EXPECT_EQ(serializeToString(t), serializeToString(t));
}

TEST(TraceIo, FuzzSingleByteCorruptionNeverCrashes)
{
    // Flip one byte at 200 positions spread over the file: the reader
    // must either throw TraceIoError (checksum or structure) or —
    // never — crash / hand back a trace that fails validation.
    const Trace original = sampleTrace();
    const std::string good = serializeToString(original);
    for (std::size_t i = 0; i < 200; ++i) {
        const std::size_t pos = i * good.size() / 200;
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ (0x01 << (i % 8)));
        if (bad == good)
            continue;
        std::istringstream iss(bad, std::ios::binary);
        try {
            const Trace t = readTrace(iss);
            // Only reachable if the flip missed every checked field
            // (cannot happen: payload is checksummed; header flips
            // break magic/version/size).
            t.validate();
        } catch (const TraceIoError &) {
            // expected path
        }
    }
}

TEST(TraceIo, FuzzRandomTruncationAlwaysThrows)
{
    const Trace original = sampleTrace();
    const std::string good = serializeToString(original);
    for (std::size_t len : {0ul, 1ul, 7ul, 15ul, 16ul, 17ul,
                            good.size() / 2, good.size() - 1}) {
        std::istringstream iss(good.substr(0, len), std::ios::binary);
        EXPECT_THROW(readTrace(iss), TraceIoError) << "length " << len;
    }
}

// --- Table-driven structural-error tests -----------------------------
//
// Each case hand-crafts a checksum-valid file whose payload violates
// exactly one decoder rule, so the test pins the specific throw site
// rather than riding on the checksum.

constexpr std::uint32_t kTraceMagic = 0x54535747; // "GWST"

/** Write one well-formed shader record. */
void
putShader(ByteWriter &e, std::uint8_t stage = 0)
{
    e.u8(stage);
    e.str("sh");
    for (int i = 0; i < 7; ++i) // mix fields + registers
        e.u32(1);
}

/** Write one well-formed draw record. */
void
putDraw(ByteWriter &e, std::uint8_t bool_byte = 1,
        std::uint8_t topo = 0)
{
    e.u32(0); // vertex shader
    e.u32(1); // pixel shader
    e.u32(0); // texture count
    e.u32(0); // render target
    e.u8(bool_byte);
    e.u8(0);
    e.u8(0);
    e.u32(3);  // vertices
    e.u32(1);  // instances
    e.u8(topo);
    e.u32(16); // stride
    e.u64(10); // shaded pixels
    e.f64(1.0);
    e.f64(0.5);
    e.u32(0); // material
}

/** Frame a hand-built payload as a trace file image. */
std::string
frameTracePayload(const std::string &payload)
{
    std::ostringstream oss(std::ios::binary);
    writeFramed<TraceIoError>(oss, kTraceMagic, traceFormatVersion,
                              payload, "trace", "crafted");
    return oss.str();
}

/**
 * A minimal well-formed payload: one vertex + one pixel shader, one
 * texture, one render target, one frame with one draw. `flaw` numbers
 * select the single rule each table case violates.
 */
std::string
craftTracePayload(const std::string &flaw)
{
    ByteWriter e;
    e.str("t");
    if (flaw == "shader-count-lie") {
        e.u32(0xffffff);
        return e.data();
    }
    e.u32(2);
    putShader(e, flaw == "bad-stage" ? 9 : 0);
    putShader(e, 1);
    e.u32(flaw == "texture-count-lie" ? 0xffffff : 1);
    e.u32(64); // width
    e.u32(64); // height
    e.u32(4);  // bytes per texel
    e.u8(flaw == "bad-mip-bool" ? 7 : 1);
    e.u32(flaw == "rt-count-lie" ? 0xffffff : 1);
    e.u32(64);
    e.u32(64);
    e.u32(4);
    e.u32(flaw == "frame-count-lie" ? 0xffffff : 1);
    e.u32(flaw == "draw-count-lie" ? 0xffffff : 1);
    if (flaw == "texbind-count-lie") {
        e.u32(0);
        e.u32(1);
        e.u32(0xffffff); // texture-binding count
        return e.data();
    }
    putDraw(e, flaw == "bad-blend-bool" ? 2 : 1,
            flaw == "bad-topology" ? 9 : 0);
    if (flaw == "trailing-bytes")
        e.u8(0);
    return e.data();
}

TEST(TraceIo, CraftedMinimalPayloadRoundTrips)
{
    // The flawless crafted payload must decode and re-encode
    // byte-identically — otherwise the table below could be throwing
    // from the wrong site.
    const std::string file = frameTracePayload(craftTracePayload(""));
    std::istringstream iss(file, std::ios::binary);
    const Trace t = readTrace(iss);
    EXPECT_EQ(t.name(), "t");
    EXPECT_EQ(t.frameCount(), 1u);
    EXPECT_EQ(serializeToString(t), file);
}

TEST(TraceIo, EveryStructuralThrowSiteFires)
{
    const char *flaws[] = {
        "shader-count-lie", "bad-stage",      "texture-count-lie",
        "bad-mip-bool",     "rt-count-lie",   "frame-count-lie",
        "draw-count-lie",   "texbind-count-lie", "bad-blend-bool",
        "bad-topology",     "trailing-bytes",
    };
    for (const char *flaw : flaws) {
        SCOPED_TRACE(flaw);
        const std::string file =
            frameTracePayload(craftTracePayload(flaw));
        std::istringstream iss(file, std::ios::binary);
        try {
            readTrace(iss);
            FAIL() << "decoder accepted flaw " << flaw;
        } catch (const TraceIoError &e) {
            // Structural errors point into the payload, i.e. past the
            // 16-byte header the framing validates.
            EXPECT_GE(e.byteOffset(), 0) << e.what();
        }
    }
}

TEST(TraceIo, StringLengthLieThrows)
{
    // A name whose u32 length runs past the end of the payload.
    ByteWriter e;
    e.u32(1000);
    e.u8('x');
    std::istringstream iss(frameTracePayload(e.data()),
                           std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, ImplausiblePayloadSizeThrows)
{
    // Size field above the 1 GiB cap must be rejected before any
    // allocation, even though the stream ends immediately after.
    ByteWriter header;
    header.u32(kTraceMagic);
    header.u32(traceFormatVersion);
    header.u32(0xffffffffu); // implausible payload size
    header.u32(0);
    std::istringstream iss(header.data(), std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, ErrorsCarryByteOffsets)
{
    std::string data = serializeToString(sampleTrace());
    data[0] = 'X';
    std::istringstream iss(data, std::ios::binary);
    try {
        readTrace(iss);
        FAIL() << "bad magic accepted";
    } catch (const TraceIoError &e) {
        EXPECT_EQ(e.byteOffset(), 0);
        EXPECT_NE(std::string(e.what()).find("byte 0"),
                  std::string::npos);
    }
}

TEST(TraceIo, AllBuiltinGamesRoundTrip)
{
    for (const auto &name : builtinGameNames()) {
        GameProfile p = builtinProfile(name, SuiteScale::Ci);
        p.segments = 2;
        p.segmentFramesMin = 2;
        p.segmentFramesMax = 2;
        p.drawsPerFrame = 15.0;
        const Trace t = GameGenerator(p).generate();
        std::istringstream iss(serializeToString(t), std::ios::binary);
        EXPECT_EQ(readTrace(iss), t) << name;
    }
}

} // namespace
} // namespace gws
