/**
 * @file
 * Serialization tests: round-trips, header validation, checksum and
 * truncation detection, file I/O errors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "synth/generator.hh"
#include "trace/trace_io.hh"

namespace gws {
namespace {

Trace
sampleTrace()
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.segments = 2;
    p.segmentFramesMin = 2;
    p.segmentFramesMax = 3;
    p.drawsPerFrame = 20.0;
    return GameGenerator(p).generate();
}

std::string
serializeToString(const Trace &t)
{
    std::ostringstream oss(std::ios::binary);
    writeTrace(t, oss);
    return oss.str();
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const Trace original = sampleTrace();
    std::istringstream iss(serializeToString(original),
                           std::ios::binary);
    const Trace copy = readTrace(iss);
    EXPECT_EQ(original, copy);
    copy.validate();
}

TEST(TraceIo, RoundTripOfEmptyTrace)
{
    Trace original("nothing");
    std::istringstream iss(serializeToString(original),
                           std::ios::binary);
    const Trace copy = readTrace(iss);
    EXPECT_EQ(copy.name(), "nothing");
    EXPECT_EQ(copy.frameCount(), 0u);
    EXPECT_EQ(original, copy);
}

TEST(TraceIo, RoundTripPreservesStateFlags)
{
    Trace t("flags");
    const ShaderId vs = t.shaders().add(ShaderStage::Vertex, "vs", {});
    const ShaderId ps = t.shaders().add(ShaderStage::Pixel, "ps", {});
    const RenderTargetId rt = t.addRenderTarget({64, 64, 4});
    Frame f(0);
    DrawCall d;
    d.state.vertexShader = vs;
    d.state.pixelShader = ps;
    d.state.renderTarget = rt;
    d.state.blendEnabled = true;
    d.state.depthTestEnabled = false;
    d.state.depthWriteEnabled = false;
    d.topology = PrimitiveTopology::LineStrip;
    d.shadedPixels = 12;
    d.overdraw = 1.5;
    d.texLocality = 0.25;
    f.addDraw(d);
    t.addFrame(std::move(f));

    std::istringstream iss(serializeToString(t), std::ios::binary);
    const Trace copy = readTrace(iss);
    const DrawCall &rd = copy.frame(0).draws()[0];
    EXPECT_TRUE(rd.state.blendEnabled);
    EXPECT_FALSE(rd.state.depthTestEnabled);
    EXPECT_FALSE(rd.state.depthWriteEnabled);
    EXPECT_EQ(rd.topology, PrimitiveTopology::LineStrip);
    EXPECT_DOUBLE_EQ(rd.overdraw, 1.5);
    EXPECT_DOUBLE_EQ(rd.texLocality, 0.25);
}

TEST(TraceIo, BadMagicThrows)
{
    std::string data = serializeToString(sampleTrace());
    data[0] = 'X';
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, UnsupportedVersionThrows)
{
    std::string data = serializeToString(sampleTrace());
    data[4] = static_cast<char>(traceFormatVersion + 1);
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, CorruptPayloadFailsChecksum)
{
    std::string data = serializeToString(sampleTrace());
    data[data.size() / 2] ^= 0x5a;
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, TruncatedPayloadThrows)
{
    std::string data = serializeToString(sampleTrace());
    data.resize(data.size() - 10);
    std::istringstream iss(data, std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, TruncatedHeaderThrows)
{
    std::istringstream iss(std::string("GWST"), std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, EmptyStreamThrows)
{
    std::istringstream iss(std::string(), std::ios::binary);
    EXPECT_THROW(readTrace(iss), TraceIoError);
}

TEST(TraceIo, FileRoundTrip)
{
    const Trace original = sampleTrace();
    const std::string path = ::testing::TempDir() + "/gws_io_test.trace";
    writeTraceFile(original, path);
    const Trace copy = readTraceFile(path);
    EXPECT_EQ(original, copy);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/dir/x.trace"), TraceIoError);
}

TEST(TraceIo, UnwritablePathThrows)
{
    const Trace t = sampleTrace();
    EXPECT_THROW(writeTraceFile(t, "/nonexistent/dir/x.trace"),
                 TraceIoError);
}

TEST(TraceIo, SerializationIsDeterministic)
{
    const Trace t = sampleTrace();
    EXPECT_EQ(serializeToString(t), serializeToString(t));
}

TEST(TraceIo, FuzzSingleByteCorruptionNeverCrashes)
{
    // Flip one byte at 200 positions spread over the file: the reader
    // must either throw TraceIoError (checksum or structure) or —
    // never — crash / hand back a trace that fails validation.
    const Trace original = sampleTrace();
    const std::string good = serializeToString(original);
    for (std::size_t i = 0; i < 200; ++i) {
        const std::size_t pos = i * good.size() / 200;
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ (0x01 << (i % 8)));
        if (bad == good)
            continue;
        std::istringstream iss(bad, std::ios::binary);
        try {
            const Trace t = readTrace(iss);
            // Only reachable if the flip missed every checked field
            // (cannot happen: payload is checksummed; header flips
            // break magic/version/size).
            t.validate();
        } catch (const TraceIoError &) {
            // expected path
        }
    }
}

TEST(TraceIo, FuzzRandomTruncationAlwaysThrows)
{
    const Trace original = sampleTrace();
    const std::string good = serializeToString(original);
    for (std::size_t len : {0ul, 1ul, 7ul, 15ul, 16ul, 17ul,
                            good.size() / 2, good.size() - 1}) {
        std::istringstream iss(good.substr(0, len), std::ios::binary);
        EXPECT_THROW(readTrace(iss), TraceIoError) << "length " << len;
    }
}

TEST(TraceIo, AllBuiltinGamesRoundTrip)
{
    for (const auto &name : builtinGameNames()) {
        GameProfile p = builtinProfile(name, SuiteScale::Ci);
        p.segments = 2;
        p.segmentFramesMin = 2;
        p.segmentFramesMax = 2;
        p.drawsPerFrame = 15.0;
        const Trace t = GameGenerator(p).generate();
        std::istringstream iss(serializeToString(t), std::ios::binary);
        EXPECT_EQ(readTrace(iss), t) << name;
    }
}

} // namespace
} // namespace gws
