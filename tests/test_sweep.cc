/**
 * @file
 * Bit-identity tests of the compute-once / retime-many sweep engine:
 * the flattened WorkTrace must reproduce computeDrawWork exactly, the
 * blocked retiming kernel must match both the naive per-design loops
 * and simulateTrace bit for bit (totals, per-group costs, per-draw
 * costs, bottleneck histograms) at every thread count, and the three
 * rewired studies (frequency scaling, pathfinding, DVFS) must produce
 * identical results on either path. Also covers the bound-texture
 * memo in MemorySystem and the texture-table epoch that keys it.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/energy_study.hh"
#include "core/freq_scaling.hh"
#include "core/pathfinding.hh"
#include "core/subset_pipeline.hh"
#include "core/sweep.hh"
#include "gpusim/draw_work_cache.hh"
#include "gpusim/work_trace.hh"
#include "runtime/counters.hh"
#include "runtime/runtime.hh"
#include "synth/generator.hh"

namespace gws {
namespace {

/** One CI-scale playthrough shared by every test in this suite. */
const Trace &
testTrace()
{
    static const Trace t =
        GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
            .generate();
    return t;
}

/** The trace's workload subset (built once). */
const WorkloadSubset &
testSubset()
{
    static const WorkloadSubset s =
        buildWorkloadSubset(testTrace(), SubsetConfig{});
    return s;
}

/** The sweep points every retiming test uses. */
std::vector<GpuConfig>
sweepPoints()
{
    return clockSweepConfigs(makeGpuPreset("baseline"),
                             {0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0});
}

bool
sameSweepResult(const SweepResult &a, const SweepResult &b)
{
    return a.configCount == b.configCount &&
           a.groupCount == b.groupCount && a.drawCount == b.drawCount &&
           a.totalNs == b.totalNs && a.groupNs == b.groupNs &&
           a.bottleneckNs == b.bottleneckNs &&
           a.bottleneckCount == b.bottleneckCount && a.drawNs == b.drawNs;
}

class SweepTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = runtimeConfig(); }

    void TearDown() override
    {
        setRuntimeConfig(saved);
        shutdownGlobalThreadPool();
    }

    /** Run fn() under an explicit thread count. */
    template <typename Fn>
    auto
    at(std::size_t threads, Fn &&fn)
    {
        RuntimeConfig cfg = saved;
        cfg.threads = threads;
        setRuntimeConfig(cfg);
        return fn();
    }

    RuntimeConfig saved;
};

// ------------------------------------------------------------- work trace --

TEST_F(SweepTest, WorkTraceReproducesComputeDrawWork)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const WorkTrace wt = buildWorkTrace(trace, sim);

    ASSERT_EQ(wt.groupCount(), trace.frameCount());
    ASSERT_EQ(wt.drawCount(), trace.totalDraws());
    EXPECT_EQ(wt.capacityKey(), capacityConfigHash(sim.config()));

    for (std::size_t f = 0; f < trace.frameCount(); f += 7) {
        const Frame &frame = trace.frame(f);
        ASSERT_EQ(wt.groupEnd(f) - wt.groupBegin(f), frame.drawCount());
        for (std::size_t d = 0; d < frame.drawCount(); d += 5) {
            const DrawWork expect =
                sim.computeDrawWork(trace, frame.draws()[d]);
            const std::size_t i = wt.groupBegin(f) + d;
            const DrawWork got = wt.work(i);
            EXPECT_EQ(got.vertices, expect.vertices);
            EXPECT_EQ(got.primitives, expect.primitives);
            EXPECT_EQ(got.pixels, expect.pixels);
            EXPECT_EQ(got.vertexFetchBytes, expect.vertexFetchBytes);
            EXPECT_EQ(got.vsWeightedOps, expect.vsWeightedOps);
            EXPECT_EQ(got.psWeightedOps, expect.psWeightedOps);
            EXPECT_EQ(got.ropPixels, expect.ropPixels);
            EXPECT_EQ(got.traffic.texSamples, expect.traffic.texSamples);
            EXPECT_EQ(got.traffic.texL2FillBytes,
                      expect.traffic.texL2FillBytes);
            EXPECT_EQ(got.traffic.texDramBytes,
                      expect.traffic.texDramBytes);
            EXPECT_EQ(got.traffic.vertexDramBytes,
                      expect.traffic.vertexDramBytes);
            EXPECT_EQ(got.traffic.rtDramBytes, expect.traffic.rtDramBytes);
            // Derived columns must equal the recomputed expressions.
            EXPECT_EQ(wt.l2Bytes()[i], expect.traffic.totalL2Bytes());
            EXPECT_EQ(wt.dramBytes()[i], expect.traffic.totalDramBytes());
            EXPECT_EQ(wt.vsOpsTotal()[i],
                      expect.vertices * expect.vsWeightedOps);
            EXPECT_EQ(wt.psOpsTotal()[i],
                      expect.pixels * expect.psWeightedOps);
        }
    }
}

TEST_F(SweepTest, WorkTraceBuildIsThreadCountInvariant)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const WorkTrace a = at(1, [&] { return buildWorkTrace(trace, sim); });
    const WorkTrace b = at(8, [&] { return buildWorkTrace(trace, sim); });
    ASSERT_EQ(a.drawCount(), b.drawCount());
    for (std::size_t i = 0; i < a.drawCount(); ++i)
        EXPECT_EQ(a.dramBytes()[i], b.dramBytes()[i]);
    EXPECT_EQ(a.totalDramBytes(), b.totalDramBytes());
}

TEST_F(SweepTest, SubsetWorkTraceMatchesRepresentatives)
{
    const Trace &trace = testTrace();
    const WorkloadSubset &subset = testSubset();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const WorkTrace wt = buildSubsetWorkTrace(trace, subset, sim);

    ASSERT_EQ(wt.groupCount(), subset.units.size());
    for (std::size_t u = 0; u < subset.units.size(); ++u) {
        const SubsetUnit &unit = subset.units[u];
        const Clustering &c = unit.frameSubset.clustering;
        ASSERT_EQ(wt.groupEnd(u) - wt.groupBegin(u), c.k);
        const Frame &frame = trace.frame(unit.frameIndex);
        for (std::size_t cl = 0; cl < c.k; ++cl) {
            const DrawWork expect = sim.computeDrawWork(
                trace, frame.draws()[c.representatives[cl]]);
            const DrawWork got = wt.work(wt.groupBegin(u) + cl);
            EXPECT_EQ(got.pixels, expect.pixels);
            EXPECT_EQ(got.traffic.totalDramBytes(),
                      expect.traffic.totalDramBytes());
        }
    }
}

// -------------------------------------------------------------- retimeAll --

TEST_F(SweepTest, EngineMatchesNaiveBitwise)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const WorkTrace wt = buildWorkTrace(trace, sim);
    const std::vector<GpuConfig> points = sweepPoints();

    SweepConfig naive_cfg;
    naive_cfg.path = SweepPath::Naive;
    naive_cfg.perDraw = true;
    SweepConfig engine_cfg = naive_cfg;
    engine_cfg.path = SweepPath::Engine;

    const SweepResult naive = retimeAll(wt, points, naive_cfg);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
        const SweepResult engine = at(
            threads, [&] { return retimeAll(wt, points, engine_cfg); });
        EXPECT_TRUE(sameSweepResult(naive, engine))
            << "engine diverges from naive at threads=" << threads;
    }
}

TEST_F(SweepTest, EngineMatchesSimulateTrace)
{
    const Trace &trace = testTrace();
    const GpuSimulator base_sim(makeGpuPreset("baseline"));
    const WorkTrace wt = buildWorkTrace(trace, base_sim);
    const std::vector<GpuConfig> points = sweepPoints();

    SweepConfig engine_cfg;
    engine_cfg.path = SweepPath::Engine;
    const SweepResult engine = retimeAll(wt, points, engine_cfg);

    for (std::size_t c = 0; c < points.size(); ++c) {
        const GpuSimulator sim(points[c]);
        const TraceCost cost = sim.simulateTrace(trace);
        EXPECT_EQ(engine.totalNs[c], cost.totalNs);
        ASSERT_EQ(engine.groupCount, cost.frames.size());
        std::array<double, numStages> hist_ns{};
        std::array<std::uint64_t, numStages> hist_count{};
        for (std::size_t f = 0; f < cost.frames.size(); ++f) {
            EXPECT_EQ(engine.groupNsAt(c, f), cost.frames[f].totalNs);
            for (std::size_t s = 0; s < numStages; ++s) {
                hist_ns[s] += cost.frames[f].bottleneckNs[s];
                hist_count[s] += cost.frames[f].bottleneckCount[s];
            }
        }
        for (std::size_t s = 0; s < numStages; ++s) {
            EXPECT_EQ(engine.bottleneckNsAt(c, static_cast<Stage>(s)),
                      hist_ns[s]);
            EXPECT_EQ(engine.bottleneckCountAt(c, static_cast<Stage>(s)),
                      hist_count[s]);
        }
    }
}

// ---------------------------------------------------------------- studies --

TEST_F(SweepTest, FreqScalingPathsAreBitIdentical)
{
    const Trace &trace = testTrace();
    const WorkloadSubset &subset = testSubset();
    const GpuConfig base = makeGpuPreset("baseline");

    FreqScalingConfig naive_cfg;
    naive_cfg.path = SweepPath::Naive;
    FreqScalingConfig engine_cfg;
    engine_cfg.path = SweepPath::Engine;

    const FreqScalingResult naive =
        runFreqScaling(trace, subset, base, naive_cfg);
    const FreqScalingResult engine =
        runFreqScaling(trace, subset, base, engine_cfg);

    EXPECT_EQ(naive.parentNs, engine.parentNs);
    EXPECT_EQ(naive.subsetNs, engine.subsetNs);
    EXPECT_EQ(naive.parentImprovement, engine.parentImprovement);
    EXPECT_EQ(naive.subsetImprovement, engine.subsetImprovement);
    EXPECT_EQ(naive.correlation, engine.correlation);
    EXPECT_EQ(naive.maxImprovementGap, engine.maxImprovementGap);
    EXPECT_GT(engine.correlation, 0.9);
}

TEST_F(SweepTest, PathfindingPathsAreBitIdentical)
{
    const Trace &trace = testTrace();
    const WorkloadSubset &subset = testSubset();
    std::vector<GpuConfig> designs;
    for (const std::string &name : gpuPresetNames())
        designs.push_back(makeGpuPreset(name));

    const PathfindingResult naive =
        runPathfinding(trace, subset, designs, SweepPath::Naive);
    const PathfindingResult engine =
        runPathfinding(trace, subset, designs, SweepPath::Engine);

    ASSERT_EQ(naive.points.size(), engine.points.size());
    for (std::size_t i = 0; i < naive.points.size(); ++i) {
        EXPECT_EQ(naive.points[i].parentNs, engine.points[i].parentNs);
        EXPECT_EQ(naive.points[i].subsetNs, engine.points[i].subsetNs);
        EXPECT_EQ(naive.points[i].parentSpeedup,
                  engine.points[i].parentSpeedup);
        EXPECT_EQ(naive.points[i].subsetSpeedup,
                  engine.points[i].subsetSpeedup);
    }
    EXPECT_EQ(naive.parentRanking, engine.parentRanking);
    EXPECT_EQ(naive.subsetRanking, engine.subsetRanking);
    EXPECT_EQ(naive.rankingPreserved, engine.rankingPreserved);
    EXPECT_EQ(naive.speedupCorrelation, engine.speedupCorrelation);
    EXPECT_EQ(naive.rankCorrelation, engine.rankCorrelation);
}

TEST_F(SweepTest, DvfsPathsAreBitIdentical)
{
    const Trace &trace = testTrace();
    const WorkloadSubset &subset = testSubset();
    const GpuConfig base = makeGpuPreset("baseline");

    DvfsConfig naive_cfg;
    naive_cfg.path = SweepPath::Naive;
    DvfsConfig engine_cfg;
    engine_cfg.path = SweepPath::Engine;

    const DvfsResult naive = runDvfsStudy(trace, subset, base, naive_cfg);
    const DvfsResult engine =
        runDvfsStudy(trace, subset, base, engine_cfg);

    ASSERT_EQ(naive.points.size(), engine.points.size());
    for (std::size_t i = 0; i < naive.points.size(); ++i) {
        EXPECT_EQ(naive.points[i].parent.totalJ(),
                  engine.points[i].parent.totalJ());
        EXPECT_EQ(naive.points[i].parent.energyDelay(),
                  engine.points[i].parent.energyDelay());
        EXPECT_EQ(naive.points[i].subset.totalJ(),
                  engine.points[i].subset.totalJ());
        EXPECT_EQ(naive.points[i].subset.energyDelay(),
                  engine.points[i].subset.energyDelay());
    }
    EXPECT_EQ(naive.parentOptimal, engine.parentOptimal);
    EXPECT_EQ(naive.subsetOptimal, engine.subsetOptimal);
    EXPECT_EQ(naive.energyCorrelation, engine.energyCorrelation);
    EXPECT_EQ(naive.edpCorrelation, engine.edpCorrelation);
}

// -------------------------------------------------- texture-bind memo -----

TEST_F(SweepTest, TextureBindMemoIsTransparent)
{
    const Trace &trace = testTrace();
    MemorySystem memory(makeGpuPreset("baseline"));
    const DrawCall &draw = trace.frame(0).draws()[0];

    const MemoryTraffic first = memory.drawTraffic(trace, draw);
    const std::uint64_t hits_before = runtimeCounters().texBindHits;
    const MemoryTraffic second = memory.drawTraffic(trace, draw);
    EXPECT_EQ(first.texSamples, second.texSamples);
    EXPECT_EQ(first.texL2FillBytes, second.texL2FillBytes);
    EXPECT_EQ(first.texDramBytes, second.texDramBytes);
    EXPECT_EQ(first.vertexDramBytes, second.vertexDramBytes);
    EXPECT_EQ(first.rtDramBytes, second.rtDramBytes);
    if (first.texSamples > 0)
        EXPECT_GT(runtimeCounters().texBindHits, hits_before);
}

TEST_F(SweepTest, TextureEpochAdvancesOnTableEdit)
{
    Trace copy = testTrace();
    const std::uint64_t before = copy.textureEpoch();
    TextureDesc desc;
    desc.width = 64;
    desc.height = 64;
    desc.bytesPerTexel = 4;
    copy.addTexture(desc);
    EXPECT_NE(copy.textureEpoch(), before);
}

} // namespace
} // namespace gws
