/**
 * @file
 * Tests of the synthetic game generator: determinism, structural
 * properties (levels, segments, shader pools, HUD), scale presets, and
 * trace validity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "synth/suite.hh"
#include "trace/trace_stats.hh"

namespace gws {
namespace {

GameProfile
smallProfile()
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.segments = 4;
    p.segmentFramesMin = 3;
    p.segmentFramesMax = 6;
    p.drawsPerFrame = 30.0;
    return p;
}

TEST(GameProfile, ScaleNamesRoundTrip)
{
    EXPECT_EQ(parseSuiteScale("ci"), SuiteScale::Ci);
    EXPECT_EQ(parseSuiteScale("paper"), SuiteScale::Paper);
    EXPECT_STREQ(toString(SuiteScale::Ci), "ci");
    EXPECT_STREQ(toString(SuiteScale::Paper), "paper");
}

TEST(GameProfile, BuiltinsValidateAtBothScales)
{
    for (const auto &name : builtinGameNames()) {
        builtinProfile(name, SuiteScale::Ci).validate();
        builtinProfile(name, SuiteScale::Paper).validate();
    }
}

TEST(GameProfile, PaperScaleIsBigger)
{
    for (const auto &name : builtinGameNames()) {
        const GameProfile ci = builtinProfile(name, SuiteScale::Ci);
        const GameProfile paper = builtinProfile(name, SuiteScale::Paper);
        EXPECT_GT(paper.drawsPerFrame, ci.drawsPerFrame);
        EXPECT_GT(paper.segmentFramesMax, ci.segmentFramesMax);
        EXPECT_GT(paper.materialsPerLevel, ci.materialsPerLevel);
    }
}

TEST(GameProfile, ValidateCatchesBadRanges)
{
    GameProfile p = smallProfile();
    p.segmentFramesMax = p.segmentFramesMin - 1;
    EXPECT_DEATH(p.validate(), "segment frame range");
}

TEST(GameGenerator, DeterministicForSameProfile)
{
    const GameProfile p = smallProfile();
    const Trace a = GameGenerator(p).generate();
    const Trace b = GameGenerator(p).generate();
    EXPECT_EQ(a, b);
}

TEST(GameGenerator, DifferentSeedsDiffer)
{
    GameProfile p = smallProfile();
    const Trace a = GameGenerator(p).generate();
    p.seed ^= 0xdeadbeef;
    const Trace b = GameGenerator(p).generate();
    EXPECT_FALSE(a == b);
}

TEST(GameGenerator, GeneratedTraceValidates)
{
    GameGenerator(smallProfile()).generate().validate();
}

TEST(GameGenerator, FrameCountMatchesSchedule)
{
    const GameGenerator gen(smallProfile());
    const auto seg_frames = gen.segmentFrames();
    std::uint64_t expect = 0;
    for (auto n : seg_frames)
        expect += n;
    EXPECT_EQ(gen.generate().frameCount(), expect);
}

TEST(GameGenerator, ScheduleVisitsEveryLevel)
{
    const GameGenerator gen(smallProfile());
    const auto schedule = gen.levelSchedule();
    EXPECT_EQ(schedule.size(), gen.profile().segments);
    std::set<std::uint32_t> levels(schedule.begin(), schedule.end());
    EXPECT_EQ(levels.size(), gen.profile().levels);
    for (std::uint32_t l : schedule)
        EXPECT_LT(l, gen.profile().levels);
}

TEST(GameGenerator, ScheduleRevisitsWhenSegmentsExceedLevels)
{
    GameProfile p = smallProfile();
    p.levels = 2;
    p.segments = 8;
    const auto schedule = GameGenerator(p).levelSchedule();
    std::set<std::uint32_t> seen;
    bool revisit = false;
    for (std::uint32_t l : schedule) {
        if (seen.count(l))
            revisit = true;
        seen.insert(l);
    }
    EXPECT_TRUE(revisit);
}

TEST(GameGenerator, EveryFrameHasSkyAndHud)
{
    const GameProfile p = smallProfile();
    const Trace t = GameGenerator(p).generate();
    for (const auto &frame : t.frames()) {
        ASSERT_GE(frame.drawCount(), 1u + p.hudMaterials);
        // HUD draws are the trailing draws and use material ids
        // below hudMaterials.
        for (std::uint32_t h = 0; h < p.hudMaterials; ++h) {
            const auto &d =
                frame.draws()[frame.drawCount() - 1 - h];
            EXPECT_LT(d.materialId, p.hudMaterials);
            EXPECT_FALSE(d.state.depthTestEnabled);
        }
        // The first draw of a frame is the full-screen sky.
        EXPECT_GE(frame.draws()[0].materialId, p.hudMaterials);
    }
}

TEST(GameGenerator, DrawRateLandsNearTarget)
{
    GameProfile p = smallProfile();
    p.segments = 6;
    p.segmentFramesMin = 10;
    p.segmentFramesMax = 10;
    p.drawsPerFrame = 80.0;
    const Trace t = GameGenerator(p).generate();
    const TraceStats s = computeTraceStats(t);
    EXPECT_NEAR(s.drawsPerFrame, 80.0, 80.0 * 0.25);
}

TEST(GameGenerator, MaterialsClusterWithinFrames)
{
    // Draws sharing a material id must share shaders and state — the
    // property draw-call clustering exploits.
    const Trace t = GameGenerator(smallProfile()).generate();
    for (const auto &frame : t.frames()) {
        std::map<std::uint32_t, const DrawCall *> first;
        for (const auto &d : frame.draws()) {
            auto [it, inserted] = first.insert({d.materialId, &d});
            if (!inserted) {
                EXPECT_EQ(d.state.pixelShader,
                          it->second->state.pixelShader);
                EXPECT_EQ(d.state.vertexShader,
                          it->second->state.vertexShader);
                EXPECT_EQ(d.state.blendEnabled,
                          it->second->state.blendEnabled);
            }
        }
    }
}

TEST(GameGenerator, LevelsUseDisjointPixelShaderPools)
{
    GameProfile p = smallProfile();
    p.levels = 3;
    p.segments = 3;
    const GameGenerator gen(p);
    const Trace t = gen.generate();
    const auto schedule = gen.levelSchedule();
    const auto seg_frames = gen.segmentFrames();

    // Collect non-HUD pixel shaders per segment and check that
    // different levels' pools do not overlap.
    std::vector<std::set<ShaderId>> pools(p.levels);
    std::uint32_t frame = 0;
    for (std::size_t seg = 0; seg < schedule.size(); ++seg) {
        for (std::uint32_t f = 0; f < seg_frames[seg]; ++f, ++frame) {
            for (const auto &d : t.frame(frame).draws()) {
                if (d.materialId >= p.hudMaterials)
                    pools[schedule[seg]].insert(d.state.pixelShader);
            }
        }
    }
    for (std::uint32_t a = 0; a < p.levels; ++a) {
        for (std::uint32_t b = a + 1; b < p.levels; ++b) {
            for (ShaderId id : pools[a])
                EXPECT_FALSE(pools[b].count(id))
                    << "levels " << a << " and " << b
                    << " share scene shader " << id;
        }
    }
}

TEST(Suite, GeneratesAllTenGames)
{
    const auto suite = generateSuite(SuiteScale::Ci);
    ASSERT_EQ(suite.size(), 10u);
    const auto names = builtinGameNames();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name(), names[i]);
        EXPECT_GT(suite[i].frameCount(), 0u);
        suite[i].validate();
    }
}

TEST(Suite, EveryGenreHasAGame)
{
    const std::vector<std::string> expect = {
        "corridor",  "openworld",   "arena",   "racing",
        "streaming", "cloudgaming", "compute", "multiuser"};
    std::set<std::string> genres;
    for (const auto &name : builtinGameNames())
        genres.insert(builtinProfile(name, SuiteScale::Ci).genre);
    for (const auto &g : expect)
        EXPECT_TRUE(genres.count(g)) << g;
}

TEST(Suite, CorpusSamplingHitsTargetExactly)
{
    const auto suite = generateSuite(SuiteScale::Ci);
    const auto corpus = sampleCorpus(suite, 72);
    EXPECT_EQ(corpus.size(), 72u);
    for (const auto &cf : corpus) {
        ASSERT_LT(cf.traceIndex, suite.size());
        ASSERT_LT(cf.frameIndex, suite[cf.traceIndex].frameCount());
    }
}

TEST(Suite, CorpusUsesAllFramesWhenTargetExceedsTotal)
{
    const auto suite = generateSuite(SuiteScale::Ci);
    std::uint64_t total = 0;
    for (const auto &t : suite)
        total += t.frameCount();
    const auto corpus = sampleCorpus(suite, total * 10);
    EXPECT_EQ(corpus.size(), total);
}

TEST(Suite, CorpusCoversEveryGame)
{
    const auto suite = generateSuite(SuiteScale::Ci);
    const auto corpus = sampleCorpus(suite, 72);
    std::set<std::size_t> games;
    for (const auto &cf : corpus)
        games.insert(cf.traceIndex);
    EXPECT_EQ(games.size(), suite.size());
}

TEST(Suite, DefaultCorpusSizes)
{
    EXPECT_EQ(defaultCorpusFrames(SuiteScale::Ci), 72u);
    EXPECT_EQ(defaultCorpusFrames(SuiteScale::Paper), 717u);
}

TEST(Suite, CorpusDrawsArePositive)
{
    const auto suite = generateSuite(SuiteScale::Ci);
    const auto corpus = sampleCorpus(suite, 10);
    EXPECT_GT(corpusDraws(suite, corpus), 0u);
}

TEST(Suite, QuotasSumExactlyToTarget)
{
    // Regression: the old clamp dropped a trace's surplus without
    // redistributing it, so mixed tiny/large traces undershot the
    // target corpus size.
    const std::vector<std::uint64_t> counts = {1000, 3, 2, 1};
    const auto q = corpusQuotas(counts, 800);
    ASSERT_EQ(q.size(), counts.size());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
        EXPECT_LE(q[i], counts[i]) << "trace " << i;
        sum += q[i];
    }
    EXPECT_EQ(sum, 800u);
    // Largest-remainder apportionment: the single-frame trace has the
    // biggest remainder (0.795) and is fully sampled; the others get
    // their proportional shares.
    const std::vector<std::uint64_t> expect = {795, 2, 2, 1};
    EXPECT_EQ(q, expect);
}

TEST(Suite, QuotasRespectCapsWithManyTinyTraces)
{
    // Seven single-frame traces against one large one: every quota
    // stays within its trace's frame count, equal remainders resolve
    // by index, and the sum still lands exactly on the target.
    const std::vector<std::uint64_t> counts = {1, 1, 1, 1, 1, 1, 1, 50};
    const auto q = corpusQuotas(counts, 40);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
        EXPECT_LE(q[i], counts[i]);
        sum += q[i];
    }
    EXPECT_EQ(sum, 40u);
    // Floors give the big trace 35; the five lowest-indexed tiny
    // traces win the remaining +1s on the remainder tie.
    const std::vector<std::uint64_t> expect = {1, 1, 1, 1, 1, 0, 0, 35};
    EXPECT_EQ(q, expect);
}

TEST(Suite, QuotasTieBreakOnTraceIndex)
{
    // Regression: equal remainders used to fall back to the sort
    // implementation's ordering, which is platform-dependent. Equal
    // remainders must resolve to the lowest trace index.
    const std::vector<std::uint64_t> counts = {10, 10, 10, 10};
    const auto q = corpusQuotas(counts, 6);
    const std::vector<std::uint64_t> expect = {2, 2, 1, 1};
    EXPECT_EQ(q, expect);
}

TEST(Suite, QuotasReturnAllFramesWhenTargetExceedsTotal)
{
    const std::vector<std::uint64_t> counts = {5, 0, 7};
    EXPECT_EQ(corpusQuotas(counts, 100), counts);
}

TEST(Suite, CorpusSizeIsExactForEveryTarget)
{
    const auto suite = generateSuite(SuiteScale::Ci);
    std::uint64_t total = 0;
    for (const auto &t : suite)
        total += t.frameCount();
    for (std::uint64_t target : {1u, 2u, 7u, 71u, 72u, 73u, 255u}) {
        const auto corpus = sampleCorpus(suite, target);
        EXPECT_EQ(corpus.size(),
                  std::min<std::uint64_t>(target, total))
            << "target " << target;
    }
}

TEST(GameGenerator, NomadShaderPoolGrowsEverySegment)
{
    // Open-world streaming: each segment adds streamed pixel shaders
    // that stay resident, so the cumulative distinct-shader count
    // rises monotonically across the playthrough instead of
    // plateauing once every level has been visited.
    const GameGenerator gen(builtinProfile("nomad", SuiteScale::Ci));
    const Trace t = gen.generate();
    const auto seg_frames = gen.segmentFrames();
    std::set<ShaderId> seen;
    std::vector<std::size_t> cumulative;
    std::uint32_t frame = 0;
    for (std::size_t seg = 0; seg < seg_frames.size(); ++seg) {
        for (std::uint32_t f = 0; f < seg_frames[seg]; ++f, ++frame)
            for (const auto &d : t.frame(frame).draws())
                seen.insert(d.state.pixelShader);
        cumulative.push_back(seen.size());
    }
    for (std::size_t seg = 1; seg < cumulative.size(); ++seg)
        EXPECT_GT(cumulative[seg], cumulative[seg - 1])
            << "segment " << seg;
}

TEST(GameGenerator, TensorEmitsDispatchStyleDraws)
{
    // Compute-heavy profile: dispatch proxies are full-screen-style
    // triangles with no blending and no depth traffic.
    const Trace t =
        GameGenerator(builtinProfile("tensor", SuiteScale::Ci))
            .generate();
    std::uint64_t dispatch = 0, total = 0;
    for (const auto &frame : t.frames()) {
        for (const auto &d : frame.draws()) {
            ++total;
            if (d.vertexCount == 3 && !d.state.blendEnabled &&
                !d.state.depthTestEnabled &&
                !d.state.depthWriteEnabled && d.overdraw == 1.0)
                ++dispatch;
        }
    }
    EXPECT_GT(dispatch, total / 5);
}

TEST(GameGenerator, SkylinkFrameLoadVariesMoreThanCorridor)
{
    // Cloud-gaming capture: the per-frame load multiplier produces a
    // draw-count coefficient of variation well above a fixed-rate
    // corridor shooter's.
    auto cv = [](const Trace &t) {
        std::vector<double> n;
        for (const auto &frame : t.frames())
            n.push_back(static_cast<double>(frame.drawCount()));
        double mean = 0.0;
        for (double x : n)
            mean += x;
        mean /= static_cast<double>(n.size());
        double var = 0.0;
        for (double x : n)
            var += (x - mean) * (x - mean);
        var /= static_cast<double>(n.size());
        return std::sqrt(var) / mean;
    };
    const double corridor = cv(
        GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
            .generate());
    const double cloud = cv(
        GameGenerator(builtinProfile("skylink", SuiteScale::Ci))
            .generate());
    EXPECT_GT(cloud, corridor * 2.0);
}

TEST(GameGenerator, LegionBlendsShaderPoolsAcrossLevels)
{
    // Multi-user mix: two user streams view different levels, so
    // single frames combine scene shaders that single-user games keep
    // in disjoint per-level pools. Detect this as frames whose scene
    // shader set exceeds one level's pool size.
    const GameProfile p = builtinProfile("legion", SuiteScale::Ci);
    ASSERT_GT(p.concurrentUsers, 1u);
    const Trace t = GameGenerator(p).generate();
    std::uint64_t mixed = 0;
    for (const auto &frame : t.frames()) {
        std::set<ShaderId> scene;
        for (const auto &d : frame.draws())
            if (d.materialId >= p.hudMaterials)
                scene.insert(d.state.pixelShader);
        // Sky + one level's scene pool bounds a single-user frame.
        if (scene.size() > p.pixelShadersPerLevel + 1)
            ++mixed;
    }
    EXPECT_GT(mixed, t.frameCount() / 4);
}

} // namespace
} // namespace gws
