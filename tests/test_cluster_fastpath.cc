/**
 * @file
 * A/B verification of the accelerated clustering core:
 *
 *  - the Hamerly-bounded + pruned-seeding k-means path is bit-identical
 *    to the naive path across seeds, degenerate inputs, and thread
 *    counts;
 *  - the FeatureMatrix batch kernel matches the scalar AoS distance
 *    bit for bit;
 *  - leader clustering with norm rejects matches a verbatim copy of
 *    the pre-matrix reference implementation;
 *  - the GpuSimulator draw-work memo cache returns exactly what a
 *    fresh simulation produces.
 */

#include <gtest/gtest.h>

#include <limits>

#include "cluster/feature_matrix.hh"
#include "cluster/kmeans.hh"
#include "cluster/leader.hh"
#include "gpusim/draw_work_cache.hh"
#include "gpusim/gpu_simulator.hh"
#include "runtime/counters.hh"
#include "runtime/runtime.hh"
#include "synth/generator.hh"
#include "util/rng.hh"

namespace gws {
namespace {

/** n random points spread over every feature dimension. */
std::vector<FeatureVector>
randomPoints(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<FeatureVector> points(n);
    for (auto &p : points)
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            p.at(d) = rng.uniform(-3.0, 3.0);
    return points;
}

/** Points with heavy duplication (clusters of identical points). */
std::vector<FeatureVector>
duplicatedPoints(std::size_t n, std::size_t distinct, std::uint64_t seed)
{
    const auto base = randomPoints(distinct, seed);
    std::vector<FeatureVector> points(n);
    for (std::size_t i = 0; i < n; ++i)
        points[i] = base[i % distinct];
    return points;
}

/** Exact (bitwise) equality of two clusterings. */
void
expectIdentical(const Clustering &a, const Clustering &b)
{
    ASSERT_EQ(a.k, b.k);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.representatives, b.representatives);
    ASSERT_EQ(a.centroids.size(), b.centroids.size());
    for (std::size_t c = 0; c < a.centroids.size(); ++c)
        EXPECT_EQ(a.centroids[c], b.centroids[c])
            << "centroid " << c << " differs";
}

Clustering
runPath(const std::vector<FeatureVector> &points, KMeansConfig cfg,
        KMeansPath path)
{
    cfg.path = path;
    return kmeans(points, cfg);
}

// ---------------------------------------------------------- feature matrix --

TEST(FeatureMatrix, BatchMatchesScalarBitwise)
{
    const auto points = randomPoints(257, 7);
    const FeatureMatrix matrix(points);
    ASSERT_EQ(matrix.size(), points.size());

    const FeatureVector q = randomPoints(1, 99)[0];
    std::vector<double> dist(points.size());
    matrix.squaredDistanceBatch(0, points.size(), q, dist.data());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(dist[i], points[i].squaredDistance(q)) << "point " << i;
        EXPECT_EQ(matrix.squaredDistanceTo(i, q),
                  points[i].squaredDistance(q));
    }
}

TEST(FeatureMatrix, NormsAndGatherRoundTrip)
{
    const auto points = randomPoints(33, 11);
    const FeatureMatrix matrix(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(matrix.point(i), points[i]);
        double n2 = 0.0;
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            n2 += points[i].at(d) * points[i].at(d);
        EXPECT_EQ(matrix.squaredNorm(i), n2);
    }
}

TEST(FeatureMatrix, SubrangeBatch)
{
    const auto points = randomPoints(100, 3);
    const FeatureMatrix matrix(points);
    const FeatureVector q = points[0];
    std::vector<double> dist(40);
    matrix.squaredDistanceBatch(30, 70, q, dist.data());
    for (std::size_t i = 30; i < 70; ++i)
        EXPECT_EQ(dist[i - 30], points[i].squaredDistance(q));
}

// ------------------------------------------------------- kmeans fast == naive

TEST(KMeansFastPath, BitIdenticalAcrossSeeds)
{
    const KMeansInit inits[] = {KMeansInit::PlusPlus, KMeansInit::Random};
    for (std::uint64_t seed : {1ULL, 42ULL, 777ULL}) {
        const auto points = randomPoints(400, seed);
        for (KMeansInit init : inits) {
            KMeansConfig cfg;
            cfg.k = 16;
            cfg.restarts = 2;
            cfg.seed = seed * 13 + 5;
            cfg.init = init;
            expectIdentical(runPath(points, cfg, KMeansPath::Naive),
                            runPath(points, cfg, KMeansPath::Fast));
        }
    }
}

TEST(KMeansFastPath, BitIdenticalOnDegenerateInputs)
{
    // k = 1, k = n, and heavy duplication (exact distance ties).
    const auto points = randomPoints(60, 21);
    for (std::size_t k : {std::size_t{1}, points.size()}) {
        KMeansConfig cfg;
        cfg.k = k;
        expectIdentical(runPath(points, cfg, KMeansPath::Naive),
                        runPath(points, cfg, KMeansPath::Fast));
    }

    const auto dupes = duplicatedPoints(120, 5, 31);
    for (std::size_t k : {std::size_t{3}, std::size_t{8}}) {
        KMeansConfig cfg;
        cfg.k = k;
        expectIdentical(runPath(dupes, cfg, KMeansPath::Naive),
                        runPath(dupes, cfg, KMeansPath::Fast));
    }

    // Single point, and all points identical.
    const auto one = randomPoints(1, 9);
    KMeansConfig cfg1;
    cfg1.k = 4;
    expectIdentical(runPath(one, cfg1, KMeansPath::Naive),
                    runPath(one, cfg1, KMeansPath::Fast));

    const auto same = duplicatedPoints(50, 1, 17);
    KMeansConfig cfg2;
    cfg2.k = 6;
    expectIdentical(runPath(same, cfg2, KMeansPath::Naive),
                    runPath(same, cfg2, KMeansPath::Fast));
}

TEST(KMeansFastPath, BitIdenticalAcrossThreadCounts)
{
    const auto points = randomPoints(500, 5);
    KMeansConfig cfg;
    cfg.k = 12;
    cfg.restarts = 2;

    const RuntimeConfig base = runtimeConfig();
    Clustering reference;
    bool first = true;
    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        RuntimeConfig rc = base;
        rc.threads = threads;
        setRuntimeConfig(rc);
        const Clustering naive =
            runPath(points, cfg, KMeansPath::Naive);
        const Clustering fast = runPath(points, cfg, KMeansPath::Fast);
        expectIdentical(naive, fast);
        if (first) {
            reference = fast;
            first = false;
        } else {
            expectIdentical(reference, fast);
        }
    }
    setRuntimeConfig(base);
}

TEST(KMeansFastPath, BoundsActuallySkipScans)
{
    // Well-separated blobs converge after few moves: the bulk of the
    // later assignment decisions must come from bound skips.
    auto points = randomPoints(2000, 15);
    for (std::size_t i = 0; i < points.size(); ++i)
        points[i].at(0) += static_cast<double>(i % 4) * 50.0;

    resetRuntimeCounters();
    KMeansConfig cfg;
    cfg.k = 4;
    cfg.restarts = 1;
    runPath(points, cfg, KMeansPath::Fast);
    const RuntimeCounters c = runtimeCounters();
    EXPECT_GT(c.kmeansBoundsSkipped, 0u);
    EXPECT_GT(c.kmeansBoundsSkipRate(), 0.5);
}

// ------------------------------------------------------------------ leader --

/** Verbatim copy of the pre-FeatureMatrix leader implementation. */
Clustering
leaderReference(const std::vector<FeatureVector> &points,
                const LeaderConfig &config)
{
    const double r2 = config.radius * config.radius;
    Clustering out;
    std::vector<std::size_t> leader_index;
    out.assignment.assign(points.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        double best_d = std::numeric_limits<double>::infinity();
        std::size_t best_c = SIZE_MAX;
        for (std::size_t c = 0; c < leader_index.size(); ++c) {
            const double d =
                points[i].squaredDistance(points[leader_index[c]]);
            if (d < best_d) {
                best_d = d;
                best_c = c;
            }
        }
        if (best_c != SIZE_MAX && best_d <= r2) {
            out.assignment[i] = static_cast<std::uint32_t>(best_c);
        } else {
            out.assignment[i] =
                static_cast<std::uint32_t>(leader_index.size());
            leader_index.push_back(i);
        }
    }
    out.k = leader_index.size();

    auto recompute_centroids = [&]() {
        out.centroids.assign(out.k, FeatureVector());
        std::vector<std::size_t> counts(out.k, 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::uint32_t c = out.assignment[i];
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                out.centroids[c].at(d) += points[i].at(d);
            ++counts[c];
        }
        for (std::size_t c = 0; c < out.k; ++c)
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                out.centroids[c].at(d) /= static_cast<double>(counts[c]);
    };
    recompute_centroids();

    if (config.refine) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            double best_d = std::numeric_limits<double>::infinity();
            std::uint32_t best_c = out.assignment[i];
            for (std::size_t c = 0; c < out.k; ++c) {
                const double d =
                    points[i].squaredDistance(out.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best_c = static_cast<std::uint32_t>(c);
                }
            }
            out.assignment[i] = best_c;
        }
        for (std::size_t c = 0; c < out.k; ++c)
            out.assignment[leader_index[c]] =
                static_cast<std::uint32_t>(c);
        recompute_centroids();
    }

    out.representatives.assign(out.k, SIZE_MAX);
    std::vector<double> best_d(out.k,
                               std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::uint32_t c = out.assignment[i];
        const double d = points[i].squaredDistance(out.centroids[c]);
        if (d < best_d[c]) {
            best_d[c] = d;
            out.representatives[c] = i;
        }
    }
    return out;
}

TEST(LeaderFastPath, MatchesReferenceImplementation)
{
    for (std::uint64_t seed : {2ULL, 19ULL, 101ULL}) {
        const auto points = randomPoints(600, seed);
        for (double radius : {0.5, 2.0, 6.0}) {
            LeaderConfig cfg;
            cfg.radius = radius;
            expectIdentical(leaderReference(points, cfg),
                            leaderCluster(points, cfg));
            cfg.refine = false;
            expectIdentical(leaderReference(points, cfg),
                            leaderCluster(points, cfg));
        }
    }
}

TEST(LeaderFastPath, NormRejectsFire)
{
    const auto points = randomPoints(800, 23);
    resetRuntimeCounters();
    LeaderConfig cfg;
    cfg.radius = 0.5;
    leaderCluster(points, cfg);
    const RuntimeCounters c = runtimeCounters();
    EXPECT_GT(c.leaderNormRejects, 0u);
}

TEST(LeaderFastPath, FirstFitModeIsValidAndCheaper)
{
    const auto points = randomPoints(500, 29);
    LeaderConfig nearest;
    nearest.radius = 2.0;
    LeaderConfig first_fit = nearest;
    first_fit.nearestLeader = false;

    const Clustering a = leaderCluster(points, nearest);
    const Clustering b = leaderCluster(points, first_fit);
    a.validate();
    b.validate();
    EXPECT_EQ(a.items(), b.items());
    // First-fit never founds fewer clusters than nearest-fit on the
    // same stream (joining early can only leave later gaps), but both
    // must cover every point within radius of some leader.
    EXPECT_GE(b.k, 1u);
}

// -------------------------------------------------------- draw-work memo --

Trace
cacheTrace()
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.segments = 2;
    p.segmentFramesMin = 3;
    p.segmentFramesMax = 4;
    p.drawsPerFrame = 40.0;
    return GameGenerator(p).generate();
}

TEST(DrawWorkCache, HitsEqualFreshSimulation)
{
    const Trace t = cacheTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));

    drawWorkCacheClear();
    resetRuntimeCounters();
    const TraceCost fresh = sim.simulateTrace(t);
    const RuntimeCounters after_fresh = runtimeCounters();

    const TraceCost memo = sim.simulateTrace(t);
    const RuntimeCounters after_memo = runtimeCounters();

    // Second run is served by the cache…
    EXPECT_GT(after_memo.drawCacheHits, after_fresh.drawCacheHits);
    // …and is bit-identical to the fresh simulation.
    EXPECT_EQ(fresh.totalNs, memo.totalNs);
    ASSERT_EQ(fresh.frames.size(), memo.frames.size());
    for (std::size_t f = 0; f < fresh.frames.size(); ++f) {
        EXPECT_EQ(fresh.frames[f].totalNs, memo.frames[f].totalNs);
        EXPECT_EQ(fresh.frames[f].drawNs, memo.frames[f].drawNs);
    }
}

TEST(DrawWorkCache, PerDrawCostsSurviveClearAndRefill)
{
    const Trace t = cacheTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const DrawCall &draw = t.frame(0).draws()[0];

    drawWorkCacheClear();
    const DrawCost cold = sim.simulateDraw(t, draw);
    const DrawCost warm = sim.simulateDraw(t, draw);
    EXPECT_EQ(cold.totalNs, warm.totalNs);
    EXPECT_EQ(cold.stageNs, warm.stageNs);
    EXPECT_EQ(cold.bottleneck, warm.bottleneck);

    drawWorkCacheClear();
    const DrawCost refilled = sim.simulateDraw(t, draw);
    EXPECT_EQ(cold.totalNs, refilled.totalNs);
    EXPECT_EQ(cold.stageNs, refilled.stageNs);
}

TEST(DrawWorkCache, CapacityConfigsShareClockChangesOnly)
{
    const GpuConfig base = makeGpuPreset("baseline");
    const GpuConfig clocked = base.withCoreClockScale(1.5);
    EXPECT_EQ(capacityConfigHash(base), capacityConfigHash(clocked));

    GpuConfig bigger = base;
    bigger.l2.sizeBytes *= 2;
    EXPECT_NE(capacityConfigHash(base), capacityConfigHash(bigger));
}

TEST(DrawWorkCache, DistinctDrawsGetDistinctKeys)
{
    const Trace t = cacheTrace();
    const std::uint64_t cap =
        capacityConfigHash(makeGpuPreset("baseline"));
    const auto &draws = t.frame(0).draws();
    ASSERT_GE(draws.size(), 2u);
    const DrawWorkKey a = drawWorkKey(t, draws[0], cap);
    const DrawWorkKey b = drawWorkKey(t, draws[1], cap);
    EXPECT_FALSE(a == b);
    // Same draw, same key (the memo contract).
    EXPECT_TRUE(a == drawWorkKey(t, draws[0], cap));
}

} // namespace
} // namespace gws
