/**
 * @file
 * Thread-count determinism regression tests — the ordered-reduction
 * contract of src/runtime applied end to end. Every pipeline layer
 * (trace simulation, k-means, the workload-subset pipeline) must
 * produce bit-identical floating-point results at threads = 1 and
 * threads = 8; any drift means a reduction started depending on
 * completion order.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cluster/kmeans.hh"
#include "core/subset_pipeline.hh"
#include "features/extractor.hh"
#include "gpusim/gpu_simulator.hh"
#include "runtime/runtime.hh"
#include "synth/generator.hh"

namespace gws {
namespace {

/** One CI-scale playthrough shared by every test in this suite. */
const Trace &
testTrace()
{
    static const Trace t =
        GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
            .generate();
    return t;
}

class DeterminismTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = runtimeConfig(); }

    void TearDown() override
    {
        setRuntimeConfig(saved);
        shutdownGlobalThreadPool();
    }

    /** Run fn() under an explicit thread count, grain untouched. */
    template <typename Fn>
    auto
    at(std::size_t threads, Fn &&fn)
    {
        RuntimeConfig cfg = saved;
        cfg.threads = threads;
        setRuntimeConfig(cfg);
        return fn();
    }

    RuntimeConfig saved;
};

TEST_F(DeterminismTest, SimulateTraceIsBitIdenticalAcrossThreadCounts)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));

    const TraceCost a = at(1, [&] { return sim.simulateTrace(trace); });
    const TraceCost b = at(8, [&] { return sim.simulateTrace(trace); });

    EXPECT_EQ(a.totalNs, b.totalNs);
    EXPECT_EQ(a.drawsSimulated, b.drawsSimulated);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
        const FrameCost &fa = a.frames[f];
        const FrameCost &fb = b.frames[f];
        ASSERT_EQ(fa.totalNs, fb.totalNs) << "frame " << f;
        ASSERT_EQ(fa.drawNs, fb.drawNs) << "frame " << f;
        ASSERT_EQ(fa.bottleneckNs, fb.bottleneckNs) << "frame " << f;
        ASSERT_EQ(fa.bottleneckCount, fb.bottleneckCount)
            << "frame " << f;
    }
}

TEST_F(DeterminismTest, KMeansIsBitIdenticalAcrossThreadCounts)
{
    // Enough points that the default grain splits the scans into
    // several chunks, so the parallel path is actually exercised.
    const Trace &trace = testTrace();
    const FeatureExtractor extractor(trace);
    std::vector<FeatureVector> points;
    for (std::size_t f = 0; f < 8 && f < trace.frameCount(); ++f)
        for (const FeatureVector &v :
             extractor.extractFrame(trace.frame(f)))
            points.push_back(v);
    ASSERT_GT(points.size(), 512u);

    KMeansConfig cfg;
    cfg.k = 12;
    cfg.restarts = 2;

    const Clustering a = at(1, [&] { return kmeans(points, cfg); });
    const Clustering b = at(8, [&] { return kmeans(points, cfg); });

    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.representatives, b.representatives);
    ASSERT_EQ(a.centroids.size(), b.centroids.size());
    for (std::size_t c = 0; c < a.centroids.size(); ++c)
        ASSERT_EQ(a.centroids[c], b.centroids[c]) << "centroid " << c;
}

TEST_F(DeterminismTest, SubsetPipelineIsBitIdenticalAcrossThreadCounts)
{
    const Trace &trace = testTrace();
    const SubsetConfig cfg;
    const GpuSimulator sim(makeGpuPreset("baseline"));

    const WorkloadSubset a =
        at(1, [&] { return buildWorkloadSubset(trace, cfg); });
    const WorkloadSubset b =
        at(8, [&] { return buildWorkloadSubset(trace, cfg); });

    EXPECT_EQ(a.subsetDraws(), b.subsetDraws());
    ASSERT_EQ(a.units.size(), b.units.size());
    for (std::size_t u = 0; u < a.units.size(); ++u) {
        const SubsetUnit &ua = a.units[u];
        const SubsetUnit &ub = b.units[u];
        ASSERT_EQ(ua.phaseId, ub.phaseId) << "unit " << u;
        ASSERT_EQ(ua.frameIndex, ub.frameIndex) << "unit " << u;
        ASSERT_EQ(ua.frameWeight, ub.frameWeight) << "unit " << u;
        ASSERT_EQ(ua.frameSubset.clustering.assignment,
                  ub.frameSubset.clustering.assignment)
            << "unit " << u;
        ASSERT_EQ(ua.frameSubset.clustering.representatives,
                  ub.frameSubset.clustering.representatives)
            << "unit " << u;
        ASSERT_EQ(ua.frameSubset.workUnits, ub.frameSubset.workUnits)
            << "unit " << u;
    }

    // Predicted and fully-simulated costs must agree bit for bit too.
    const SubsetEvaluation ea =
        at(1, [&] { return evaluateSubset(trace, a, sim); });
    const SubsetEvaluation eb =
        at(8, [&] { return evaluateSubset(trace, b, sim); });
    EXPECT_EQ(ea.parentNs, eb.parentNs);
    EXPECT_EQ(ea.predictedNs, eb.predictedNs);
    EXPECT_EQ(ea.relError(), eb.relError());
}

} // namespace
} // namespace gws
