/**
 * @file
 * Tests of the GPU performance model: clock domains, configuration
 * presets, the access-stream sampler, the memory system, and the
 * simulator's behavioral properties (monotonicity, clock scaling,
 * bottleneck classification, per-draw purity).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/access_stream.hh"
#include "gpusim/clock.hh"
#include "gpusim/gpu_simulator.hh"
#include "gpusim/report.hh"
#include "synth/generator.hh"

namespace gws {
namespace {

// ------------------------------------------------------------------ clock --

TEST(ClockDomain, ConversionsAreConsistent)
{
    ClockDomain clk(2.0);
    EXPECT_DOUBLE_EQ(clk.periodNs(), 0.5);
    EXPECT_DOUBLE_EQ(clk.cyclesToNs(10.0), 5.0);
    EXPECT_DOUBLE_EQ(clk.nsToCycles(5.0), 10.0);
}

TEST(ClockDomain, ScaledMultipliesFrequency)
{
    ClockDomain clk(1.0);
    EXPECT_DOUBLE_EQ(clk.scaled(1.5).frequencyGhz(), 1.5);
}

TEST(ClockDomain, RejectsNonPositive)
{
    EXPECT_DEATH(ClockDomain(0.0), "positive");
    EXPECT_DEATH(ClockDomain(-1.0), "positive");
}

// ------------------------------------------------------------------ config --

TEST(GpuConfig, PresetsAreValidAndDistinct)
{
    for (const auto &name : gpuPresetNames()) {
        const GpuConfig cfg = makeGpuPreset(name);
        cfg.validate();
        EXPECT_EQ(cfg.name, name);
    }
    EXPECT_GT(makeGpuPreset("wide").numCores,
              makeGpuPreset("baseline").numCores);
    EXPECT_GT(makeGpuPreset("fastmem").memClockGhz,
              makeGpuPreset("baseline").memClockGhz);
    EXPECT_GT(makeGpuPreset("bigcache").l2.sizeBytes,
              makeGpuPreset("baseline").l2.sizeBytes);
    EXPECT_LT(makeGpuPreset("mobile").coreClockGhz,
              makeGpuPreset("baseline").coreClockGhz);
}

TEST(GpuConfig, UnknownPresetDies)
{
    EXPECT_DEATH(makeGpuPreset("warp9"), "unknown GPU preset");
}

TEST(GpuConfig, WithCoreClockScaleLeavesMemoryAlone)
{
    const GpuConfig base = makeGpuPreset("baseline");
    const GpuConfig fast = base.withCoreClockScale(2.0);
    EXPECT_DOUBLE_EQ(fast.coreClockGhz, 2.0 * base.coreClockGhz);
    EXPECT_DOUBLE_EQ(fast.memClockGhz, base.memClockGhz);
}

TEST(GpuConfig, DerivedRates)
{
    GpuConfig cfg;
    cfg.numCores = 8;
    cfg.simdWidth = 16;
    EXPECT_DOUBLE_EQ(cfg.opsPerCycle(), 128.0);
    cfg.dramBusBytesPerCycle = 32.0;
    cfg.memClockGhz = 2.0;
    EXPECT_DOUBLE_EQ(cfg.dramBandwidthBytesPerNs(), 64.0);
}

TEST(GpuConfig, ValidateCatchesBadValues)
{
    GpuConfig cfg;
    cfg.numCores = 0;
    EXPECT_DEATH(cfg.validate(), "shader core");
}

// ----------------------------------------------------------- access stream --

TEST(AccessStream, EmptyStreamIsNeutral)
{
    StreamParams p;
    const StreamResult r = runTextureStream(p, {16384, 64, 4},
                                            {1 << 20, 64, 16}, 512);
    EXPECT_EQ(r.simulatedAccesses, 0u);
    EXPECT_DOUBLE_EQ(r.l1Misses, 0.0);
}

TEST(AccessStream, DeterministicForSameSeed)
{
    StreamParams p;
    p.totalAccesses = 5000;
    p.footprintBytes = 1 << 20;
    p.locality = 0.8;
    p.seed = 77;
    const CacheConfig l1{16384, 64, 4}, l2{1 << 20, 64, 16};
    const StreamResult a = runTextureStream(p, l1, l2, 512);
    const StreamResult b = runTextureStream(p, l1, l2, 512);
    EXPECT_DOUBLE_EQ(a.l1HitRate, b.l1HitRate);
    EXPECT_DOUBLE_EQ(a.l2Misses, b.l2Misses);
}

TEST(AccessStream, HigherLocalityMeansFewerMisses)
{
    StreamParams lo, hi;
    lo.totalAccesses = hi.totalAccesses = 20000;
    lo.footprintBytes = hi.footprintBytes = 4 << 20;
    lo.seed = hi.seed = 5;
    lo.locality = 0.2;
    hi.locality = 0.95;
    const CacheConfig l1{16384, 64, 4}, l2{1 << 20, 64, 16};
    const StreamResult a = runTextureStream(lo, l1, l2, 1024);
    const StreamResult b = runTextureStream(hi, l1, l2, 1024);
    EXPECT_GT(a.l1Misses, b.l1Misses);
    EXPECT_LT(a.l1HitRate, b.l1HitRate);
}

TEST(AccessStream, ScaleReflectsSampling)
{
    StreamParams p;
    p.totalAccesses = 100000;
    p.footprintBytes = 1 << 22;
    p.seed = 9;
    const StreamResult r = runTextureStream(p, {16384, 64, 4},
                                            {1 << 20, 64, 16}, 500);
    EXPECT_EQ(r.simulatedAccesses, 500u);
    EXPECT_DOUBLE_EQ(r.scale, 200.0);
    EXPECT_LE(r.l2Misses, 100000.0);
}

TEST(AccessStream, MissesNeverExceedAccesses)
{
    StreamParams p;
    p.totalAccesses = 3000;
    p.footprintBytes = 1 << 24;
    p.locality = 0.0;
    p.seed = 13;
    const StreamResult r = runTextureStream(p, {16384, 64, 4},
                                            {1 << 20, 64, 16}, 4096);
    EXPECT_LE(r.l1Misses, 3000.0);
    EXPECT_LE(r.l2Misses, r.l1Misses + 1e-9);
}

TEST(AccessStream, TinyFootprintHitsAfterWarmup)
{
    StreamParams p;
    p.totalAccesses = 4000;
    p.footprintBytes = 1024; // fits easily in L1
    p.locality = 0.5;
    p.seed = 21;
    const StreamResult r = runTextureStream(p, {16384, 64, 4},
                                            {1 << 20, 64, 16}, 4096);
    EXPECT_GT(r.l1HitRate, 0.95);
}

TEST(AccessStream, MixSeedIsStable)
{
    EXPECT_EQ(mixSeed(1, 2, 3), mixSeed(1, 2, 3));
    EXPECT_NE(mixSeed(1, 2, 3), mixSeed(1, 2, 4));
}

// ------------------------------------------------------------ helper trace --

Trace
simTrace()
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.segments = 2;
    p.segmentFramesMin = 3;
    p.segmentFramesMax = 4;
    p.drawsPerFrame = 40.0;
    return GameGenerator(p).generate();
}

// --------------------------------------------------------------- simulator --

TEST(GpuSimulator, DrawCostIsPositiveAndBottlenecked)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const DrawCall &d = t.frame(0).draws()[0];
    const DrawCost c = sim.simulateDraw(t, d);
    EXPECT_GT(c.totalNs, 0.0);
    double worst = 0.0;
    for (std::size_t s = 0; s < numStages; ++s)
        worst = std::max(worst, c.stageNs[s]);
    EXPECT_DOUBLE_EQ(c.totalNs, c.ns(Stage::Setup) + worst);
}

TEST(GpuSimulator, PerDrawPurity)
{
    // The same draw costs the same simulated twice or in any context —
    // the property subset simulation relies on.
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const DrawCall &d = t.frame(0).draws()[3];
    EXPECT_DOUBLE_EQ(sim.simulateDraw(t, d).totalNs,
                     sim.simulateDraw(t, d).totalNs);
}

TEST(GpuSimulator, MorePixelsCostMore)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    DrawCall d = t.frame(0).draws()[0];
    d.shadedPixels = 1000;
    const double small = sim.simulateDraw(t, d).totalNs;
    d.shadedPixels = 100000;
    const double big = sim.simulateDraw(t, d).totalNs;
    EXPECT_GT(big, small);
}

TEST(GpuSimulator, FasterCoreNeverSlower)
{
    const Trace t = simTrace();
    const GpuSimulator slow(makeGpuPreset("baseline"));
    const GpuSimulator fast(
        makeGpuPreset("baseline").withCoreClockScale(2.0));
    for (const auto &d : t.frame(0).draws()) {
        ASSERT_LE(fast.simulateDraw(t, d).totalNs,
                  slow.simulateDraw(t, d).totalNs * (1.0 + 1e-9));
    }
}

TEST(GpuSimulator, CoreScalingIsSublinearWhenMemoryBound)
{
    // A huge-traffic draw with trivial compute: doubling the core
    // clock must not halve its time (DRAM does not scale).
    Trace t("membound");
    const ShaderId vs = t.shaders().add(ShaderStage::Vertex, "vs",
                                        InstructionMix{1, 0, 0, 0, 0, 0});
    const ShaderId ps = t.shaders().add(ShaderStage::Pixel, "ps",
                                        InstructionMix{1, 0, 0, 4, 0, 0});
    const TextureId tex = t.addTexture(TextureDesc{4096, 4096, 4, true});
    const RenderTargetId rt = t.addRenderTarget({1920, 1080, 4});
    Frame f(0);
    DrawCall d;
    d.state.vertexShader = vs;
    d.state.pixelShader = ps;
    d.state.textures = {tex};
    d.state.renderTarget = rt;
    d.vertexCount = 3;
    d.shadedPixels = 1920u * 1080u;
    d.texLocality = 0.05; // thrash the caches
    f.addDraw(d);
    t.addFrame(std::move(f));

    const GpuSimulator base(makeGpuPreset("baseline"));
    const GpuSimulator fast(
        makeGpuPreset("baseline").withCoreClockScale(2.0));
    const double t_base = base.simulateDraw(t, t.frame(0).draws()[0])
                              .totalNs;
    const double t_fast = fast.simulateDraw(t, t.frame(0).draws()[0])
                              .totalNs;
    EXPECT_GT(t_fast, t_base * 0.55); // far from ideal 0.5x
}

TEST(GpuSimulator, ComputeBoundDrawScalesNearlyLinearly)
{
    Trace t("compute");
    const ShaderId vs = t.shaders().add(ShaderStage::Vertex, "vs",
                                        InstructionMix{30, 20, 2, 0, 0, 2});
    const ShaderId ps = t.shaders().add(
        ShaderStage::Pixel, "ps", InstructionMix{200, 100, 10, 0, 8, 4});
    const RenderTargetId rt = t.addRenderTarget({1920, 1080, 4});
    Frame f(0);
    DrawCall d;
    d.state.vertexShader = vs;
    d.state.pixelShader = ps;
    d.state.renderTarget = rt;
    d.vertexCount = 3000;
    d.shadedPixels = 500000;
    f.addDraw(d);
    t.addFrame(std::move(f));

    const GpuSimulator base(makeGpuPreset("baseline"));
    const GpuSimulator fast(
        makeGpuPreset("baseline").withCoreClockScale(2.0));
    const double t_base = base.simulateDraw(t, t.frame(0).draws()[0])
                              .totalNs;
    const double t_fast = fast.simulateDraw(t, t.frame(0).draws()[0])
                              .totalNs;
    EXPECT_NEAR(t_fast / t_base, 0.5, 0.02);
}

TEST(GpuSimulator, BlendingIncreasesCost)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    DrawCall d = t.frame(0).draws()[0];
    d.shadedPixels = 200000;
    d.state.blendEnabled = false;
    const double off = sim.simulateDraw(t, d).totalNs;
    d.state.blendEnabled = true;
    const double on = sim.simulateDraw(t, d).totalNs;
    EXPECT_GE(on, off);
    // Traffic must strictly increase even if the bottleneck hides it.
    d.state.blendEnabled = false;
    const auto tr_off = sim.simulateDraw(t, d).traffic;
    d.state.blendEnabled = true;
    const auto tr_on = sim.simulateDraw(t, d).traffic;
    EXPECT_GT(tr_on.rtDramBytes, tr_off.rtDramBytes);
}

TEST(GpuSimulator, WorkSplitMatchesDirectSimulation)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    for (const auto &d : t.frame(0).draws()) {
        const DrawWork w = sim.computeDrawWork(t, d);
        ASSERT_DOUBLE_EQ(sim.timeDrawWork(w).totalNs,
                         sim.simulateDraw(t, d).totalNs);
    }
}

TEST(GpuSimulator, WorkRetimingMatchesRescaledSimulator)
{
    // computeDrawWork under the base config + timeDrawWork under a
    // core-scaled config must equal simulating under the scaled config
    // (cache geometry unchanged).
    const Trace t = simTrace();
    const GpuConfig base = makeGpuPreset("baseline");
    const GpuSimulator base_sim(base);
    const GpuSimulator fast_sim(base.withCoreClockScale(1.7));
    for (const auto &d : t.frame(0).draws()) {
        const DrawWork w = base_sim.computeDrawWork(t, d);
        ASSERT_NEAR(fast_sim.timeDrawWork(w).totalNs,
                    fast_sim.simulateDraw(t, d).totalNs, 1e-9);
    }
}

TEST(GpuSimulator, FrameCostIsSumPlusOverhead)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const FrameCost fc = sim.simulateFrame(t, t.frame(0));
    double sum = 0.0;
    for (double ns : fc.drawNs)
        sum += ns;
    EXPECT_NEAR(fc.totalNs,
                sum + sim.config().frameOverheadUs * 1e3, 1e-6);
    EXPECT_EQ(fc.drawNs.size(), t.frame(0).drawCount());
}

TEST(GpuSimulator, FrameBottleneckCountsCoverAllDraws)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const FrameCost fc = sim.simulateFrame(t, t.frame(0));
    std::uint64_t total = 0;
    for (std::uint64_t n : fc.bottleneckCount)
        total += n;
    EXPECT_EQ(total, t.frame(0).drawCount());
}

TEST(GpuSimulator, TraceCostAggregates)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const TraceCost tc = sim.simulateTrace(t);
    EXPECT_EQ(tc.frames.size(), t.frameCount());
    EXPECT_EQ(tc.drawsSimulated, t.totalDraws());
    double sum = 0.0;
    for (const auto &fc : tc.frames)
        sum += fc.totalNs;
    EXPECT_NEAR(tc.totalNs, sum, 1e-3);
    EXPECT_GT(tc.meanFrameMs(), 0.0);
    EXPECT_GT(tc.fps(), 0.0);
}

TEST(GpuSimulator, MobilePresetIsSlowerThanBaseline)
{
    const Trace t = simTrace();
    const GpuSimulator base(makeGpuPreset("baseline"));
    const GpuSimulator mobile(makeGpuPreset("mobile"));
    EXPECT_GT(mobile.simulateTrace(t).totalNs,
              base.simulateTrace(t).totalNs);
}

// ------------------------------------------------- preset property sweeps --

class PresetProperties : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PresetProperties, AllDrawCostsPositiveAndFinite)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset(GetParam()));
    for (const auto &frame : t.frames()) {
        for (const auto &d : frame.draws()) {
            const DrawCost c = sim.simulateDraw(t, d);
            ASSERT_GT(c.totalNs, 0.0);
            ASSERT_TRUE(std::isfinite(c.totalNs));
            for (std::size_t s = 0; s < numStages; ++s) {
                ASSERT_GE(c.stageNs[s], 0.0);
                ASSERT_TRUE(std::isfinite(c.stageNs[s]));
            }
        }
    }
}

TEST_P(PresetProperties, CoreScalingBounded)
{
    // Doubling the core clock yields between 1x and 2x speedup per
    // draw on every preset: never slower, never superlinear.
    const Trace t = simTrace();
    const GpuConfig base = makeGpuPreset(GetParam());
    const GpuSimulator slow(base);
    const GpuSimulator fast(base.withCoreClockScale(2.0));
    for (const auto &d : t.frame(0).draws()) {
        const double ts = slow.simulateDraw(t, d).totalNs;
        const double tf = fast.simulateDraw(t, d).totalNs;
        ASSERT_LE(tf, ts * (1.0 + 1e-9));
        ASSERT_GE(tf, ts / 2.0 - 1e-9);
    }
}

TEST_P(PresetProperties, WorkTimeSplitConsistent)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset(GetParam()));
    for (const auto &d : t.frame(0).draws()) {
        ASSERT_DOUBLE_EQ(
            sim.timeDrawWork(sim.computeDrawWork(t, d)).totalNs,
            sim.simulateDraw(t, d).totalNs);
    }
}

TEST_P(PresetProperties, TrafficConservation)
{
    // DRAM bytes can never exceed the bytes entering the hierarchy.
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset(GetParam()));
    for (const auto &d : t.frame(0).draws()) {
        const MemoryTraffic &m = sim.simulateDraw(t, d).traffic;
        ASSERT_GE(m.texL1HitRate, 0.0);
        ASSERT_LE(m.texL1HitRate, 1.0);
        ASSERT_GE(m.texL2HitRate, 0.0);
        ASSERT_LE(m.texL2HitRate, 1.0);
        ASSERT_LE(m.texDramBytes, m.texL2FillBytes + 1e-9)
            << "more DRAM fills than L2 fills";
        ASSERT_GE(m.totalDramBytes(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetProperties,
                         ::testing::Values("baseline", "wide", "fastmem",
                                           "bigcache", "mobile"));

TEST(GpuSimulator, BiggerL2NeverMoreDramTraffic)
{
    const Trace t = simTrace();
    const GpuSimulator small(makeGpuPreset("baseline"));
    const GpuSimulator big(makeGpuPreset("bigcache"));
    double small_dram = 0.0, big_dram = 0.0;
    for (const auto &d : t.frame(0).draws()) {
        small_dram += small.simulateDraw(t, d).traffic.totalDramBytes();
        big_dram += big.simulateDraw(t, d).traffic.totalDramBytes();
    }
    EXPECT_LE(big_dram, small_dram * (1.0 + 1e-6));
}

// ------------------------------------------------------------------ report --

TEST(BottleneckProfile, FractionsSumToOne)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const BottleneckProfile p = profileTrace(sim, t);
    double draw_sum = 0.0, time_sum = 0.0;
    for (std::size_t s = 0; s < numStages; ++s) {
        draw_sum += p.drawFraction[s];
        time_sum += p.timeFraction[s];
    }
    EXPECT_NEAR(draw_sum, 1.0, 1e-9);
    EXPECT_NEAR(time_sum, 1.0, 1e-9);
    EXPECT_EQ(p.draws, t.totalDraws());
    EXPECT_GT(p.totalNs, 0.0);
}

TEST(BottleneckProfile, DominantHoldsLargestTimeShare)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const BottleneckProfile p = profileTrace(sim, t);
    const double dom = p.timeShare(p.dominant());
    for (std::size_t s = 0; s < numStages; ++s)
        EXPECT_LE(p.timeFraction[s], dom + 1e-12);
}

TEST(BottleneckProfile, FrameProfileMatchesFrameCost)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const FrameCost fc = sim.simulateFrame(t, t.frame(0));
    const BottleneckProfile p = profileFrame(fc);
    EXPECT_EQ(p.draws, t.frame(0).drawCount());
    std::uint64_t counted = 0;
    for (std::size_t s = 0; s < numStages; ++s)
        counted += fc.bottleneckCount[s];
    EXPECT_EQ(counted, p.draws);
}

TEST(BottleneckProfile, MergePreservesTotals)
{
    const Trace t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const BottleneckProfile a = profileFrame(
        sim.simulateFrame(t, t.frame(0)));
    const BottleneckProfile b = profileFrame(
        sim.simulateFrame(t, t.frame(1)));
    const BottleneckProfile m = merge(a, b);
    EXPECT_EQ(m.draws, a.draws + b.draws);
    EXPECT_NEAR(m.totalNs, a.totalNs + b.totalNs, 1.0);
    double time_sum = 0.0;
    for (std::size_t s = 0; s < numStages; ++s)
        time_sum += m.timeFraction[s];
    EXPECT_NEAR(time_sum, 1.0, 1e-9);
}

TEST(BottleneckProfile, MemoryBoundFractionGrowsWithCoreClock)
{
    // At higher core clocks more draws hit the DRAM wall, so the
    // memory-bound time share must be non-decreasing.
    const Trace t = simTrace();
    const GpuSimulator slow(makeGpuPreset("baseline"));
    const GpuSimulator fast(
        makeGpuPreset("baseline").withCoreClockScale(4.0));
    EXPECT_GE(profileTrace(fast, t).memoryBoundTimeFraction(),
              profileTrace(slow, t).memoryBoundTimeFraction());
}

TEST(GpuSimulator, StageNamesAreDistinct)
{
    EXPECT_STREQ(toString(Stage::Dram), "dram");
    EXPECT_STRNE(toString(Stage::PixelShade), toString(Stage::Texture));
}

} // namespace
} // namespace gws
