/**
 * @file
 * Unit tests for the trace data model: topology math, resources, draw
 * calls, frames, traces, statistics, and validation.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"
#include "trace/trace_stats.hh"

namespace gws {
namespace {

// -------------------------------------------------------------- topology --

struct TopologyCase
{
    PrimitiveTopology topo;
    std::uint64_t vertices;
    std::uint64_t prims;
};

class TopologyCount : public ::testing::TestWithParam<TopologyCase>
{
};

TEST_P(TopologyCount, MatchesApiSemantics)
{
    const auto &c = GetParam();
    EXPECT_EQ(primitiveCount(c.topo, c.vertices), c.prims);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologyCount,
    ::testing::Values(
        TopologyCase{PrimitiveTopology::PointList, 0, 0},
        TopologyCase{PrimitiveTopology::PointList, 7, 7},
        TopologyCase{PrimitiveTopology::LineList, 7, 3},
        TopologyCase{PrimitiveTopology::LineList, 8, 4},
        TopologyCase{PrimitiveTopology::LineStrip, 1, 0},
        TopologyCase{PrimitiveTopology::LineStrip, 8, 7},
        TopologyCase{PrimitiveTopology::TriangleList, 2, 0},
        TopologyCase{PrimitiveTopology::TriangleList, 9, 3},
        TopologyCase{PrimitiveTopology::TriangleList, 11, 3},
        TopologyCase{PrimitiveTopology::TriangleStrip, 2, 0},
        TopologyCase{PrimitiveTopology::TriangleStrip, 3, 1},
        TopologyCase{PrimitiveTopology::TriangleStrip, 10, 8}));

TEST(Topology, NamesAreDistinct)
{
    EXPECT_STREQ(toString(PrimitiveTopology::TriangleList),
                 "triangle_list");
    EXPECT_STRNE(toString(PrimitiveTopology::TriangleList),
                 toString(PrimitiveTopology::TriangleStrip));
}

TEST(Topology, VerticesPerPrimitive)
{
    EXPECT_EQ(verticesPerPrimitive(PrimitiveTopology::TriangleList), 3u);
    EXPECT_EQ(verticesPerPrimitive(PrimitiveTopology::LineList), 2u);
    EXPECT_EQ(verticesPerPrimitive(PrimitiveTopology::TriangleStrip), 1u);
}

// -------------------------------------------------------------- resources --

TEST(TextureDesc, SizeWithAndWithoutMips)
{
    TextureDesc flat{1024, 1024, 4, false};
    EXPECT_EQ(flat.sizeBytes(), 4u * 1024 * 1024);
    TextureDesc mipped{1024, 1024, 4, true};
    EXPECT_EQ(mipped.sizeBytes(),
              4u * 1024 * 1024 + (4u * 1024 * 1024) / 3);
}

TEST(RenderTargetDesc, PixelAndByteMath)
{
    RenderTargetDesc rt{1920, 1080, 4};
    EXPECT_EQ(rt.pixels(), 1920u * 1080u);
    EXPECT_EQ(rt.sizeBytes(), 1920u * 1080u * 4u);
}

// -------------------------------------------------------------- draw call --

TEST(DrawCall, DerivedQuantities)
{
    DrawCall d;
    d.vertexCount = 300;
    d.instanceCount = 4;
    d.topology = PrimitiveTopology::TriangleList;
    d.vertexStrideBytes = 32;
    d.shadedPixels = 6000;
    d.overdraw = 2.0;
    EXPECT_EQ(d.vertices(), 1200u);
    EXPECT_EQ(d.primitives(), 400u); // 100 per instance x 4
    EXPECT_EQ(d.vertexFetchBytes(), 1200u * 32u);
    EXPECT_EQ(d.coveredPixels(), 3000u);
}

TEST(DrawCall, CoveredPixelsWithUnitOverdraw)
{
    DrawCall d;
    d.shadedPixels = 777;
    d.overdraw = 1.0;
    EXPECT_EQ(d.coveredPixels(), 777u);
}

TEST(DrawCall, StripInstancingCountsPerInstance)
{
    DrawCall d;
    d.vertexCount = 10;
    d.instanceCount = 3;
    d.topology = PrimitiveTopology::TriangleStrip;
    EXPECT_EQ(d.primitives(), 24u); // 8 per instance
}

// ------------------------------------------------------------------ frame --

/** Build a minimal valid trace with the given number of frames. */
Trace
tinyTrace(std::uint32_t frames, std::uint32_t draws_per_frame)
{
    Trace t("tiny");
    const ShaderId vs = t.shaders().add(ShaderStage::Vertex, "vs",
                                        InstructionMix{10, 5, 0, 0, 0, 1});
    const ShaderId ps0 = t.shaders().add(ShaderStage::Pixel, "ps0",
                                         InstructionMix{20, 8, 1, 2, 6, 2});
    const ShaderId ps1 = t.shaders().add(ShaderStage::Pixel, "ps1",
                                         InstructionMix{30, 4, 0, 1, 4, 0});
    const TextureId tex = t.addTexture(TextureDesc{256, 256, 4, true});
    const RenderTargetId rt = t.addRenderTarget(
        RenderTargetDesc{640, 480, 4});
    for (std::uint32_t fi = 0; fi < frames; ++fi) {
        Frame f(fi);
        for (std::uint32_t di = 0; di < draws_per_frame; ++di) {
            DrawCall d;
            d.state.vertexShader = vs;
            d.state.pixelShader = di % 2 ? ps1 : ps0;
            d.state.textures = {tex};
            d.state.renderTarget = rt;
            d.vertexCount = 30 + di;
            d.shadedPixels = 1000 + 10 * di;
            d.materialId = di;
            f.addDraw(d);
        }
        t.addFrame(std::move(f));
    }
    return t;
}

TEST(Frame, TotalsAndShaderSets)
{
    const Trace t = tinyTrace(1, 4);
    const Frame &f = t.frame(0);
    EXPECT_EQ(f.drawCount(), 4u);
    EXPECT_EQ(f.totalVertices(), 30u + 31 + 32 + 33);
    EXPECT_EQ(f.totalShadedPixels(), 1000u + 1010 + 1020 + 1030);
    EXPECT_EQ(f.pixelShaderSet().size(), 2u);
    EXPECT_EQ(f.shaderSet().size(), 3u); // vs + 2 ps
}

TEST(Frame, EmptyFrameTotalsAreZero)
{
    Frame f(0);
    EXPECT_EQ(f.drawCount(), 0u);
    EXPECT_EQ(f.totalVertices(), 0u);
    EXPECT_TRUE(f.pixelShaderSet().empty());
}

// ------------------------------------------------------------------ trace --

TEST(Trace, ResourceTablesAssignDenseIds)
{
    Trace t("x");
    EXPECT_EQ(t.addTexture(TextureDesc{64, 64, 4, false}), 0u);
    EXPECT_EQ(t.addTexture(TextureDesc{128, 128, 4, false}), 1u);
    EXPECT_EQ(t.addRenderTarget(RenderTargetDesc{64, 64, 4}), 0u);
    EXPECT_EQ(t.texture(1).width, 128u);
}

TEST(Trace, TotalDrawsSumsFrames)
{
    const Trace t = tinyTrace(3, 5);
    EXPECT_EQ(t.frameCount(), 3u);
    EXPECT_EQ(t.totalDraws(), 15u);
}

TEST(Trace, ValidatePassesOnWellFormed)
{
    const Trace t = tinyTrace(2, 3);
    t.validate(); // must not panic
}

TEST(Trace, ValidateDiesOnDanglingShader)
{
    Trace t = tinyTrace(1, 1);
    Frame f(1);
    DrawCall d = t.frame(0).draws()[0];
    d.state.pixelShader = 99; // dangling
    f.addDraw(d);
    t.addFrame(std::move(f));
    EXPECT_DEATH(t.validate(), "dangling pixel shader");
}

TEST(Trace, ValidateDiesOnStageMismatch)
{
    Trace t = tinyTrace(1, 1);
    Frame f(1);
    DrawCall d = t.frame(0).draws()[0];
    d.state.pixelShader = d.state.vertexShader; // VS bound as PS
    f.addDraw(d);
    t.addFrame(std::move(f));
    EXPECT_DEATH(t.validate(), "non-pixel shader");
}

TEST(Trace, ValidateDiesOnOversizedCoverage)
{
    Trace t = tinyTrace(1, 1);
    Frame f(1);
    DrawCall d = t.frame(0).draws()[0];
    d.shadedPixels = 10u * 640 * 480; // way over the target
    d.overdraw = 1.0;
    f.addDraw(d);
    t.addFrame(std::move(f));
    EXPECT_DEATH(t.validate(), "covers");
}

TEST(Trace, AddFrameDiesOnIndexGap)
{
    Trace t("x");
    EXPECT_DEATH(t.addFrame(Frame(3)), "appended at position");
}

TEST(Trace, EqualityIsStructural)
{
    const Trace a = tinyTrace(2, 3);
    const Trace b = tinyTrace(2, 3);
    EXPECT_EQ(a, b);
    const Trace c = tinyTrace(2, 4);
    EXPECT_FALSE(a == c);
}

// ------------------------------------------------------------ trace stats --

TEST(TraceStats, AggregatesMatchHandComputation)
{
    const Trace t = tinyTrace(2, 4);
    const TraceStats s = computeTraceStats(t);
    EXPECT_EQ(s.frames, 2u);
    EXPECT_EQ(s.draws, 8u);
    EXPECT_DOUBLE_EQ(s.drawsPerFrame, 4.0);
    EXPECT_EQ(s.shaderPrograms, 3u);
    EXPECT_EQ(s.pixelShaderPrograms, 2u);
    EXPECT_EQ(s.vertices, 2u * (30 + 31 + 32 + 33));
    EXPECT_DOUBLE_EQ(s.pixelShadersPerFrame, 2.0);
    EXPECT_DOUBLE_EQ(s.meanOverdraw, 1.0);
    EXPECT_GT(s.textureBytes, 0u);
}

TEST(TraceStats, EmptyTraceIsZero)
{
    const Trace t("empty");
    const TraceStats s = computeTraceStats(t);
    EXPECT_EQ(s.frames, 0u);
    EXPECT_EQ(s.draws, 0u);
    EXPECT_DOUBLE_EQ(s.drawsPerFrame, 0.0);
}

} // namespace
} // namespace gws
