/**
 * @file
 * Tests of feature extraction: value correctness, determinism,
 * micro-architecture independence (features never vary with GPU
 * configuration), and the per-frame normalizer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "core/draw_subset.hh"
#include "features/extractor.hh"
#include "features/pca.hh"
#include "runtime/runtime_config.hh"
#include "synth/generator.hh"

namespace gws {
namespace {

Trace
featureTrace()
{
    Trace t("feat");
    const ShaderId vs = t.shaders().add(ShaderStage::Vertex, "vs",
                                        InstructionMix{10, 5, 1, 0, 0, 2});
    const ShaderId ps = t.shaders().add(ShaderStage::Pixel, "ps",
                                        InstructionMix{20, 10, 2, 3, 6, 1});
    const TextureId tex = t.addTexture(TextureDesc{512, 512, 4, false});
    const RenderTargetId rt = t.addRenderTarget({1280, 720, 4});
    Frame f(0);
    DrawCall d;
    d.state.vertexShader = vs;
    d.state.pixelShader = ps;
    d.state.textures = {tex, tex};
    d.state.renderTarget = rt;
    d.state.blendEnabled = true;
    d.state.depthTestEnabled = true;
    d.state.depthWriteEnabled = false;
    d.vertexCount = 300;
    d.instanceCount = 2;
    d.vertexStrideBytes = 40;
    d.shadedPixels = 5000;
    d.overdraw = 1.6;
    d.texLocality = 0.77;
    f.addDraw(d);

    DrawCall d2 = d;
    d2.shadedPixels = 50000;
    d2.state.blendEnabled = false;
    f.addDraw(d2);
    t.addFrame(std::move(f));
    return t;
}

TEST(FeatureExtractor, KnownValues)
{
    const Trace t = featureTrace();
    const FeatureExtractor ex(t);
    const DrawCall &d = t.frame(0).draws()[0];
    const FeatureVector f = ex.extract(d);

    EXPECT_DOUBLE_EQ(f[FeatureDim::LogVertices], std::log1p(600.0));
    EXPECT_DOUBLE_EQ(f[FeatureDim::LogPrimitives], std::log1p(200.0));
    EXPECT_DOUBLE_EQ(f[FeatureDim::LogPixels], std::log1p(5000.0));
    // VS total ops = 18, PS total ops = 42, PS tex ops = 3.
    EXPECT_DOUBLE_EQ(f[FeatureDim::LogVsOps], std::log1p(600.0 * 18.0));
    EXPECT_DOUBLE_EQ(f[FeatureDim::LogPsOps], std::log1p(5000.0 * 42.0));
    EXPECT_DOUBLE_EQ(f[FeatureDim::LogTexSamples],
                     std::log1p(5000.0 * 3.0));
    EXPECT_DOUBLE_EQ(f[FeatureDim::LogTexFootprint],
                     std::log1p(2.0 * 512 * 512 * 4));
    EXPECT_DOUBLE_EQ(f[FeatureDim::LogVertexBytes],
                     std::log1p(600.0 * 40.0));
    // blend on: 2x color; depth test on: +4B reads; no depth writes.
    EXPECT_DOUBLE_EQ(f[FeatureDim::LogRtBytes],
                     std::log1p(5000.0 * 4.0 * 2.0 + 5000.0 * 4.0));
    EXPECT_DOUBLE_EQ(f[FeatureDim::PsOpsPerPixel], 39.0);
    EXPECT_DOUBLE_EQ(f[FeatureDim::TexPerPixel], 3.0);
    EXPECT_DOUBLE_EQ(f[FeatureDim::Overdraw], 1.6);
    EXPECT_DOUBLE_EQ(f[FeatureDim::TexLocality], 0.77);
    EXPECT_DOUBLE_EQ(f[FeatureDim::BlendFlag], 1.0);
    EXPECT_DOUBLE_EQ(f[FeatureDim::DepthWriteFlag], 0.0);
}

TEST(FeatureExtractor, ExtractFrameMatchesPerDraw)
{
    const Trace t = featureTrace();
    const FeatureExtractor ex(t);
    const auto frame_features = ex.extractFrame(t.frame(0));
    ASSERT_EQ(frame_features.size(), 2u);
    EXPECT_EQ(frame_features[0], ex.extract(t.frame(0).draws()[0]));
    EXPECT_EQ(frame_features[1], ex.extract(t.frame(0).draws()[1]));
}

TEST(FeatureExtractor, Deterministic)
{
    const Trace t = featureTrace();
    const FeatureExtractor ex(t);
    EXPECT_EQ(ex.extract(t.frame(0).draws()[0]),
              ex.extract(t.frame(0).draws()[0]));
}

TEST(FeatureExtractor, DiffersAcrossDistinctDraws)
{
    const Trace t = featureTrace();
    const FeatureExtractor ex(t);
    EXPECT_FALSE(ex.extract(t.frame(0).draws()[0]) ==
                 ex.extract(t.frame(0).draws()[1]));
}

TEST(FeatureDim, NamesAreUniqueAndNonNull)
{
    std::set<std::string> names;
    for (std::size_t d = 0; d < numFeatureDims; ++d)
        names.insert(toString(static_cast<FeatureDim>(d)));
    EXPECT_EQ(names.size(), numFeatureDims);
}

TEST(FeatureVector, SquaredDistance)
{
    FeatureVector a, b;
    a[FeatureDim::Overdraw] = 3.0;
    b[FeatureDim::Overdraw] = 1.0;
    b[FeatureDim::BlendFlag] = 1.0;
    EXPECT_DOUBLE_EQ(a.squaredDistance(b), 4.0 + 1.0);
    EXPECT_DOUBLE_EQ(a.squaredDistance(a), 0.0);
}

// The headline property: features are micro-architecture independent.
// There is no GpuConfig anywhere in the extraction path, so the same
// trace yields identical features no matter what hardware would run
// it. We assert the extraction depends only on trace content.
TEST(FeatureExtractor, IndependentOfAnyGpuConfigByConstruction)
{
    GameProfile p = builtinProfile("vanguard", SuiteScale::Ci);
    p.segments = 2;
    p.segmentFramesMin = 2;
    p.segmentFramesMax = 2;
    const Trace t1 = GameGenerator(p).generate();
    const Trace t2 = GameGenerator(p).generate(); // identical content
    const FeatureExtractor e1(t1), e2(t2);
    for (std::uint32_t f = 0; f < t1.frameCount(); ++f) {
        const auto v1 = e1.extractFrame(t1.frame(f));
        const auto v2 = e2.extractFrame(t2.frame(f));
        ASSERT_EQ(v1, v2);
    }
}

// -------------------------------------------------------------- normalizer --

TEST(Normalizer, ZScoreHasZeroMeanUnitVariance)
{
    const Trace t = GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
                        .generate();
    const FeatureExtractor ex(t);
    const auto raw = ex.extractFrame(t.frame(0));
    const Normalizer n = Normalizer::fit(raw);
    const auto normed = n.applyAll(raw);

    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        double sum = 0.0, sq = 0.0;
        for (const auto &v : normed) {
            sum += v.at(d);
            sq += v.at(d) * v.at(d);
        }
        const double m = sum / static_cast<double>(normed.size());
        const double var = sq / static_cast<double>(normed.size()) - m * m;
        EXPECT_NEAR(m, 0.0, 1e-9) << toString(static_cast<FeatureDim>(d));
        // Dimensions can be constant within a frame (mapped to 0).
        EXPECT_TRUE(std::fabs(var) < 1e-9 || std::fabs(var - 1.0) < 1e-6)
            << toString(static_cast<FeatureDim>(d)) << " var=" << var;
    }
}

TEST(Normalizer, ConstantDimensionMapsToZero)
{
    std::vector<FeatureVector> sample(5);
    for (auto &v : sample)
        v[FeatureDim::Overdraw] = 2.5; // constant
    sample[0][FeatureDim::LogPixels] = 1.0; // varying
    const Normalizer n = Normalizer::fit(sample);
    for (const auto &v : sample)
        EXPECT_DOUBLE_EQ(n.apply(v)[FeatureDim::Overdraw], 0.0);
}

TEST(Normalizer, SingleSampleAllZero)
{
    std::vector<FeatureVector> sample(1);
    sample[0][FeatureDim::LogPixels] = 7.0;
    const Normalizer n = Normalizer::fit(sample);
    const FeatureVector z = n.apply(sample[0]);
    for (std::size_t d = 0; d < numFeatureDims; ++d)
        EXPECT_DOUBLE_EQ(z.at(d), 0.0);
}

TEST(Normalizer, MeanAndStddevAccessors)
{
    std::vector<FeatureVector> sample(2);
    sample[0][FeatureDim::Overdraw] = 1.0;
    sample[1][FeatureDim::Overdraw] = 3.0;
    const Normalizer n = Normalizer::fit(sample);
    EXPECT_DOUBLE_EQ(n.mean(FeatureDim::Overdraw), 2.0);
    EXPECT_DOUBLE_EQ(n.stddev(FeatureDim::Overdraw), 1.0);
}

TEST(Normalizer, ThrowsTypedErrorOnNonFiniteInput)
{
    std::vector<FeatureVector> sample(2);
    sample[1][FeatureDim::LogPixels] =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(Normalizer::fit(sample), FeatureError);
    sample[1][FeatureDim::LogPixels] =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(Normalizer::fit(sample), FeatureError);
}

TEST(Jacobi, KnownThreeByThreeEigenpairs)
{
    // [[2,1,0],[1,2,0],[0,0,5]]: eigenvalues 5, 3, 1 with
    // eigenvectors e3, (1,1,0)/sqrt2, (1,-1,0)/sqrt2 (the last made
    // sign-canonical: largest-|component| positive).
    const std::vector<double> m = {2, 1, 0, 1, 2, 0, 0, 0, 5};
    const EigenDecomposition e = jacobiEigenSymmetric(m, 3);
    ASSERT_EQ(e.values.size(), 3u);
    EXPECT_NEAR(e.values[0], 5.0, 1e-12);
    EXPECT_NEAR(e.values[1], 3.0, 1e-12);
    EXPECT_NEAR(e.values[2], 1.0, 1e-12);
    const double s = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(e.vectors[0][0], 0.0, 1e-12);
    EXPECT_NEAR(e.vectors[0][1], 0.0, 1e-12);
    EXPECT_NEAR(e.vectors[0][2], 1.0, 1e-12);
    EXPECT_NEAR(e.vectors[1][0], s, 1e-12);
    EXPECT_NEAR(e.vectors[1][1], s, 1e-12);
    EXPECT_NEAR(e.vectors[1][2], 0.0, 1e-12);
    EXPECT_NEAR(e.vectors[2][0], s, 1e-12);
    EXPECT_NEAR(e.vectors[2][1], -s, 1e-12);
    EXPECT_NEAR(e.vectors[2][2], 0.0, 1e-12);
}

TEST(Jacobi, DiagonalMatrixSortsEigenvaluesDescending)
{
    const std::vector<double> m = {1, 0, 0, 0, 4, 0, 0, 0, 2};
    const EigenDecomposition e = jacobiEigenSymmetric(m, 3);
    EXPECT_NEAR(e.values[0], 4.0, 1e-12);
    EXPECT_NEAR(e.values[1], 2.0, 1e-12);
    EXPECT_NEAR(e.values[2], 1.0, 1e-12);
    EXPECT_NEAR(e.vectors[0][1], 1.0, 1e-12);
    EXPECT_NEAR(e.vectors[1][2], 1.0, 1e-12);
    EXPECT_NEAR(e.vectors[2][0], 1.0, 1e-12);
}

std::vector<FeatureVector>
normalizedGameFrame()
{
    const Trace t = GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
                        .generate();
    const FeatureExtractor ex(t);
    const auto raw = ex.extractFrame(t.frame(0));
    return Normalizer::fit(raw).applyAll(raw);
}

TEST(Pca, FullVarianceFractionIsExactIdentity)
{
    const auto points = normalizedGameFrame();
    const PcaTransform p = PcaTransform::fit(points, PcaConfig{1.0, true});
    EXPECT_TRUE(p.isIdentity());
    EXPECT_EQ(p.componentCount(), numFeatureDims);
    for (const auto &v : points) {
        const FeatureVector w = p.apply(v);
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            EXPECT_EQ(w.at(d), v.at(d)); // bitwise, not approximate
    }
}

TEST(Pca, WhitenedComponentsHaveUnitVariance)
{
    const auto points = normalizedGameFrame();
    PcaConfig cfg;
    cfg.varianceFraction = 0.99999;
    const PcaTransform p = PcaTransform::fit(points, cfg);
    ASSERT_FALSE(p.isIdentity());
    const auto projected = p.applyAll(points);
    for (std::size_t c = 0; c < p.componentCount(); ++c) {
        // Components with eigenvalue ~0 are zeroed, not whitened.
        if (p.eigenvalue(c) < 1e-10)
            continue;
        double sum = 0.0, sq = 0.0;
        for (const auto &v : projected) {
            sum += v.at(c);
            sq += v.at(c) * v.at(c);
        }
        const double n = static_cast<double>(projected.size());
        const double mean = sum / n;
        EXPECT_NEAR(sq / n - mean * mean, 1.0, 1e-6)
            << "component " << c;
    }
}

TEST(Pca, TruncationHonorsVarianceFraction)
{
    const auto points = normalizedGameFrame();
    const PcaTransform loose =
        PcaTransform::fit(points, PcaConfig{0.80, true});
    const PcaTransform tight =
        PcaTransform::fit(points, PcaConfig{0.99, true});
    EXPECT_LT(loose.componentCount(), tight.componentCount());
    EXPECT_LT(tight.componentCount(), numFeatureDims);
    // Kept eigenvalues cover at least the requested fraction.
    const PcaTransform full =
        PcaTransform::fit(points, PcaConfig{0.99999, true});
    double total = 0.0;
    for (std::size_t c = 0; c < full.componentCount(); ++c)
        total += full.eigenvalue(c);
    double kept = 0.0;
    for (std::size_t c = 0; c < loose.componentCount(); ++c)
        kept += loose.eigenvalue(c);
    EXPECT_GE(kept, 0.80 * total - 1e-9);
}

TEST(Pca, ProjectedCoordinatesPastComponentCountAreZero)
{
    const auto points = normalizedGameFrame();
    const PcaTransform p =
        PcaTransform::fit(points, PcaConfig{0.90, true});
    ASSERT_LT(p.componentCount(), numFeatureDims);
    for (const auto &v : p.applyAll(points))
        for (std::size_t d = p.componentCount(); d < numFeatureDims;
             ++d)
            EXPECT_EQ(v.at(d), 0.0);
}

TEST(Pca, TransformIsDeterministicAcrossRepeatedFits)
{
    const auto points = normalizedGameFrame();
    const PcaConfig cfg{0.95, true};
    const auto a = PcaTransform::fit(points, cfg).applyAll(points);
    const auto b = PcaTransform::fit(points, cfg).applyAll(points);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            EXPECT_EQ(a[i].at(d), b[i].at(d)); // bitwise
}

TEST(FeatureSpace, PcaAtFullVarianceMatchesNaiveClustering)
{
    // The documented A/B anchor: --pca=1.0 must reproduce the naive
    // feature space bit for bit, so the clustering it feeds is
    // assignment-identical.
    const Trace t = GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
                        .generate();
    DrawSubsetConfig naive_cfg;
    naive_cfg.features.path = FeaturePath::Naive;
    DrawSubsetConfig pca_cfg;
    pca_cfg.features.path = FeaturePath::Pca;
    pca_cfg.features.pcaVariance = 1.0;
    for (std::uint32_t f : {0u, 5u}) {
        const FrameSubset a =
            buildFrameSubset(t, t.frame(f), naive_cfg);
        const FrameSubset b = buildFrameSubset(t, t.frame(f), pca_cfg);
        EXPECT_EQ(a.clustering.k, b.clustering.k);
        EXPECT_EQ(a.clustering.assignment, b.clustering.assignment);
    }
}

TEST(FeatureSpace, PcaSubsetBitIdenticalAcrossThreadCounts)
{
    // The Jacobi sweep order is fixed and the fit is serial, so the
    // projected space — and everything clustered in it — must not
    // depend on the runtime thread count.
    const Trace t = GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
                        .generate();
    DrawSubsetConfig cfg;
    cfg.features.path = FeaturePath::Pca;
    cfg.features.pcaVariance = 0.95;

    const RuntimeConfig base = runtimeConfig();
    FrameSubset reference;
    bool first = true;
    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        RuntimeConfig rc = base;
        rc.threads = threads;
        setRuntimeConfig(rc);
        const FrameSubset s = buildFrameSubset(t, t.frame(0), cfg);
        if (first) {
            reference = s;
            first = false;
        } else {
            EXPECT_EQ(reference.clustering.k, s.clustering.k);
            EXPECT_EQ(reference.clustering.assignment,
                      s.clustering.assignment);
        }
    }
    setRuntimeConfig(base);
}

TEST(FeatureSpace, DropDimRemovesThatDimension)
{
    FeatureSpaceConfig fs;
    fs.path = FeaturePath::Naive;
    fs.dropDim = static_cast<std::size_t>(FeatureDim::LogPixels);
    auto points = normalizedGameFrame();
    const auto projected = projectFeatures(points, fs);
    for (const auto &v : projected)
        EXPECT_EQ(v[FeatureDim::LogPixels], 0.0);
}

TEST(FeatureSpace, ResolveHonorsExplicitPathOverDefault)
{
    FeatureSpaceConfig def;
    def.path = FeaturePath::Pca;
    def.pcaVariance = 0.9;
    setDefaultFeatureSpace(def);
    FeatureSpaceConfig naive;
    naive.path = FeaturePath::Naive;
    EXPECT_EQ(resolveFeatureSpace(naive).path, FeaturePath::Naive);
    FeatureSpaceConfig autoCfg;
    const FeatureSpaceConfig r = resolveFeatureSpace(autoCfg);
    EXPECT_EQ(r.path, FeaturePath::Pca);
    EXPECT_DOUBLE_EQ(r.pcaVariance, 0.9);
    // Restore the historical default for other tests (the installed
    // default must be concrete, so re-install Naive explicitly).
    FeatureSpaceConfig restore;
    restore.path = FeaturePath::Naive;
    setDefaultFeatureSpace(restore);
}

} // namespace
} // namespace gws
