/**
 * @file
 * Cross-module integration tests: the paper's end-to-end claims at CI
 * scale (prediction error, efficiency, outliers, recurring phases,
 * subset size, frequency-scaling correlation), plus serialization of
 * generated suites and corpus bookkeeping.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/freq_scaling.hh"
#include "core/predictor.hh"
#include "core/subset_pipeline.hh"
#include "synth/suite.hh"
#include "trace/trace_io.hh"

namespace gws {
namespace {

/** Shared CI-scale suite (generated once; generation is pure). */
const std::vector<Trace> &
ciSuite()
{
    static const std::vector<Trace> suite = generateSuite(SuiteScale::Ci);
    return suite;
}

TEST(Integration, CorpusClusteringMatchesPaperShape)
{
    const auto &suite = ciSuite();
    const auto corpus = sampleCorpus(suite, 24); // 4 frames per game
    const GpuSimulator sim(makeGpuPreset("baseline"));
    CorpusPredictionReport agg;
    for (const auto &cf : corpus) {
        const Trace &t = suite[cf.traceIndex];
        accumulate(agg, evaluateFramePrediction(t, t.frame(cf.frameIndex),
                                                sim, DrawSubsetConfig{}));
    }
    EXPECT_EQ(agg.frames, 24u);
    // Paper shape: ~1% error at >50% efficiency with few outliers.
    EXPECT_LT(agg.meanError, 0.05);
    EXPECT_GT(agg.meanEfficiency, 0.45);
    EXPECT_LT(agg.outlierFraction(), 0.10);
}

TEST(Integration, EveryGameSubsetsBelowTenPercentAtCiScale)
{
    // CI playthroughs are short; the paper's < 1 % holds at paper
    // scale (see EXPERIMENTS.md). Here we check an order-of-magnitude
    // bound plus structural invariants on every game.
    for (const auto &t : ciSuite()) {
        SubsetConfig cfg;
        // nomad streams new shaders every segment, so exact shader-
        // vector recurrence never happens; Jaccard matching at 0.6
        // recovers the underlying level revisits.
        if (t.name() == "nomad")
            cfg.phase.similarityThreshold = 0.6;
        const WorkloadSubset s = buildWorkloadSubset(t, cfg);
        EXPECT_LT(s.drawFraction(), 0.10) << t.name();
        EXPECT_TRUE(s.timeline.hasRecurringPhase()) << t.name();
        EXPECT_NEAR(s.totalFrameWeight(),
                    static_cast<double>(t.frameCount()), 1e-9)
            << t.name();
    }
}

TEST(Integration, FrequencyScalingCorrelationAboveNinetyNinePointSeven)
{
    for (const auto &t : ciSuite()) {
        const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
        const FreqScalingResult r = runFreqScaling(
            t, s, makeGpuPreset("baseline"), FreqScalingConfig{});
        EXPECT_GT(r.correlation, 0.997) << t.name();
    }
}

TEST(Integration, GeneratedSuiteSurvivesSerialization)
{
    const Trace &t = ciSuite()[1]; // shock2
    std::ostringstream oss(std::ios::binary);
    writeTrace(t, oss);
    std::istringstream iss(oss.str(), std::ios::binary);
    const Trace copy = readTrace(iss);
    EXPECT_EQ(t, copy);

    // The subset built from the deserialized copy is identical.
    const WorkloadSubset a = buildWorkloadSubset(t, SubsetConfig{});
    const WorkloadSubset b = buildWorkloadSubset(copy, SubsetConfig{});
    EXPECT_EQ(a.units.size(), b.units.size());
    EXPECT_EQ(a.subsetDraws(), b.subsetDraws());
}

TEST(Integration, SubsetPricingIsDeterministic)
{
    const Trace &t = ciSuite()[0];
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    const GpuSimulator sim(makeGpuPreset("baseline"));
    EXPECT_DOUBLE_EQ(s.predictTotalNs(t, sim), s.predictTotalNs(t, sim));
}

TEST(Integration, SubsetPredictionConsistentAcrossPresets)
{
    // The subset never predicts a negative or absurd cost under any
    // preset, and preserves the slowest-design identity (mobile).
    const Trace &t = ciSuite()[4]; // vanguard
    const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
    double baseline_ns = 0.0, mobile_ns = 0.0;
    for (const auto &name : gpuPresetNames()) {
        const GpuSimulator sim(makeGpuPreset(name));
        const double ns = s.predictTotalNs(t, sim);
        EXPECT_GT(ns, 0.0) << name;
        if (name == "baseline")
            baseline_ns = ns;
        if (name == "mobile")
            mobile_ns = ns;
    }
    EXPECT_GT(mobile_ns, baseline_ns);
}

TEST(Integration, WorkScaledPipelineAlsoHoldsShape)
{
    const auto &suite = ciSuite();
    SubsetConfig cfg;
    cfg.draws.prediction = PredictionMode::WorkScaled;
    const Trace &t = suite[2]; // shockinf
    const WorkloadSubset s = buildWorkloadSubset(t, cfg);
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const SubsetEvaluation eval = evaluateSubset(t, s, sim);
    EXPECT_LT(eval.relError(), 0.15);
}

} // namespace
} // namespace gws
