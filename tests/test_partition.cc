/**
 * @file
 * Tests of the multilevel graph partitioner and its two consumers:
 * the cost-balanced shard planner feeding the sweep/simulate hot
 * paths (determinism, imbalance bounds, degenerate inputs, and the
 * bit-identity of naive vs balanced sharding at several thread and
 * shard counts) and the graph-partition clustering family (valid
 * clusterings at every k, all four cost functions).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cluster/graph_partition.hh"
#include "core/sweep.hh"
#include "gpusim/draw_work_cache.hh"
#include "gpusim/gpu_simulator.hh"
#include "gpusim/work_trace.hh"
#include "partition/graph.hh"
#include "partition/multilevel.hh"
#include "partition/shards.hh"
#include "runtime/runtime.hh"
#include "synth/generator.hh"
#include "util/rng.hh"

namespace gws {
namespace {

/** A skewed cost chain: the first quarter `skew`-times heavier. */
std::vector<double>
skewedCosts(std::size_t n, double skew)
{
    std::vector<double> costs(n);
    for (std::size_t i = 0; i < n; ++i)
        costs[i] = i < n / 4 ? skew : 1.0;
    return costs;
}

/** Deterministic pseudo-random points in feature space. */
std::vector<FeatureVector>
testPoints(std::size_t n, std::uint64_t seed = 42)
{
    Rng rng(seed);
    std::vector<FeatureVector> points(n);
    for (auto &p : points)
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            p.at(d) = rng.uniform(0.0, 1.0);
    return points;
}

bool
sameSweepResult(const SweepResult &a, const SweepResult &b)
{
    return a.configCount == b.configCount &&
           a.groupCount == b.groupCount && a.drawCount == b.drawCount &&
           a.totalNs == b.totalNs && a.groupNs == b.groupNs &&
           a.bottleneckNs == b.bottleneckNs &&
           a.bottleneckCount == b.bottleneckCount && a.drawNs == b.drawNs;
}

bool
sameTraceCost(const TraceCost &a, const TraceCost &b)
{
    if (a.totalNs != b.totalNs ||
        a.drawsSimulated != b.drawsSimulated ||
        a.frames.size() != b.frames.size())
        return false;
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        const FrameCost &fa = a.frames[i];
        const FrameCost &fb = b.frames[i];
        if (fa.frameIndex != fb.frameIndex ||
            fa.totalNs != fb.totalNs || fa.drawNs != fb.drawNs ||
            fa.bottleneckNs != fb.bottleneckNs ||
            fa.bottleneckCount != fb.bottleneckCount)
            return false;
    }
    return true;
}

/** Switch thread counts per call and restore on teardown. */
class PartitionTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = runtimeConfig(); }

    void TearDown() override
    {
        setRuntimeConfig(saved);
        setDefaultPartitionPath(PartitionPath::Auto);
        shutdownGlobalThreadPool();
    }

    template <typename Fn>
    auto
    at(std::size_t threads, Fn &&fn)
    {
        RuntimeConfig cfg = saved;
        cfg.threads = threads;
        setRuntimeConfig(cfg);
        return fn();
    }

    RuntimeConfig saved;
};

// ------------------------------------------------------------ cost fns --

TEST(PartitionCostFnTest, ParseRoundTripsAndRejects)
{
    for (PartitionCostFn fn :
         {PartitionCostFn::Balanced, PartitionCostFn::CriticalPath,
          PartitionCostFn::Greedy, PartitionCostFn::MinMaxWorkloads}) {
        PartitionCostFn parsed = PartitionCostFn::Balanced;
        EXPECT_TRUE(parsePartitionCostFn(toString(fn), &parsed));
        EXPECT_EQ(parsed, fn);
    }
    PartitionCostFn parsed = PartitionCostFn::Greedy;
    EXPECT_FALSE(parsePartitionCostFn("metis", &parsed));
    EXPECT_FALSE(parsePartitionCostFn("", &parsed));
    EXPECT_EQ(parsed, PartitionCostFn::Greedy); // untouched on failure
}

// ------------------------------------------------------- chain partitions --

TEST(MultilevelPartitionTest, ChainPartitionsAreContiguousAndDeterministic)
{
    const std::vector<double> costs = skewedCosts(300, 12.0);
    const PartGraph graph = buildChainGraph(costs);
    graph.validate();

    for (PartitionCostFn fn :
         {PartitionCostFn::Balanced, PartitionCostFn::CriticalPath,
          PartitionCostFn::Greedy, PartitionCostFn::MinMaxWorkloads}) {
        PartitionConfig cfg;
        cfg.parts = 7;
        cfg.costFn = fn;
        const PartitionResult a = multilevelPartition(graph, cfg);
        const PartitionResult b = multilevelPartition(graph, cfg);
        EXPECT_EQ(a.assignment, b.assignment) << toString(fn);
        ASSERT_EQ(a.assignment.size(), costs.size());
        EXPECT_EQ(a.parts, 7u);

        // Contiguity: assignments form an ascending staircase.
        EXPECT_EQ(a.assignment.front(), 0u);
        for (std::size_t i = 1; i < a.assignment.size(); ++i) {
            ASSERT_GE(a.assignment[i], a.assignment[i - 1]);
            ASSERT_LE(a.assignment[i], a.assignment[i - 1] + 1);
        }
        EXPECT_EQ(a.assignment.back(), 6u);
    }
}

TEST(MultilevelPartitionTest, BalancedChainMeetsImbalanceBound)
{
    for (std::size_t n : {64u, 300u, 512u}) {
        const std::vector<double> costs = skewedCosts(n, 16.0);
        double total = 0.0;
        double max_cost = 0.0;
        for (double c : costs) {
            total += c;
            max_cost = std::max(max_cost, c);
        }
        for (std::size_t parts : {2u, 3u, 5u, 8u}) {
            // Contiguous shards can't split a unit, so the achievable
            // bound is granularity-limited: a part may exceed the
            // ideal by up to one unit before 1.10 becomes reachable
            // (e.g. 64 units with cost-16 heads against an ideal of
            // 38 bottom out at 48/38 ≈ 1.26).
            const double ideal = total / static_cast<double>(parts);
            const double bound =
                std::max(1.10, 1.0 + max_cost / ideal);
            PartitionConfig cfg;
            cfg.parts = parts;
            cfg.costFn = PartitionCostFn::Balanced;
            const PartitionResult res =
                multilevelPartition(buildChainGraph(costs), cfg);
            EXPECT_LE(res.imbalance, bound + 1e-9)
                << n << " units into " << parts << " parts";
        }
    }
}

TEST(MultilevelPartitionTest, DegenerateShapes)
{
    // Empty graph.
    const PartitionResult empty =
        multilevelPartition(buildChainGraph({}), {});
    EXPECT_EQ(empty.parts, 0u);
    EXPECT_TRUE(empty.assignment.empty());

    // Single node: parts clamp to 1.
    PartitionConfig cfg;
    cfg.parts = 4;
    const PartitionResult one =
        multilevelPartition(buildChainGraph({5.0}), cfg);
    EXPECT_EQ(one.parts, 1u);
    ASSERT_EQ(one.assignment.size(), 1u);
    EXPECT_EQ(one.assignment[0], 0u);

    // parts == n: identity.
    const PartitionResult id =
        multilevelPartition(buildChainGraph({1.0, 2.0, 3.0, 4.0}), cfg);
    EXPECT_EQ(id.parts, 4u);
    EXPECT_EQ(id.assignment,
              (std::vector<std::uint32_t>{0, 1, 2, 3}));
    EXPECT_DOUBLE_EQ(id.cutCost, 3.0); // every chain edge cut
}

// --------------------------------------------------------- general graphs --

TEST(MultilevelPartitionTest, GeneralGraphPartsNonEmptyEveryCostFn)
{
    // Two dense blobs joined by one weak edge; any sane objective
    // should keep each part non-empty and most of each blob together.
    std::vector<GraphEdge> edges;
    const std::size_t half = 20;
    for (std::uint32_t i = 0; i < half; ++i)
        for (std::uint32_t j = i + 1; j < half; ++j) {
            edges.push_back({i, j, 4.0});
            edges.push_back({i + half, j + half, 4.0});
        }
    edges.push_back({0, half, 0.1});
    const PartGraph graph =
        buildGraph(std::vector<double>(2 * half, 1.0), edges);
    graph.validate();

    for (PartitionCostFn fn :
         {PartitionCostFn::Balanced, PartitionCostFn::CriticalPath,
          PartitionCostFn::Greedy, PartitionCostFn::MinMaxWorkloads}) {
        PartitionConfig cfg;
        cfg.parts = 2;
        cfg.costFn = fn;
        const PartitionResult a = multilevelPartition(graph, cfg);
        const PartitionResult b = multilevelPartition(graph, cfg);
        EXPECT_EQ(a.assignment, b.assignment) << toString(fn);
        ASSERT_EQ(a.partWeights.size(), 2u);
        EXPECT_GT(a.partWeights[0], 0.0) << toString(fn);
        EXPECT_GT(a.partWeights[1], 0.0) << toString(fn);
        // The weak bridge is the natural cut.
        EXPECT_LE(a.cutCost, 8.0 + 0.1) << toString(fn);
    }
}

// ------------------------------------------------------------ shard plans --

TEST(ShardPlanTest, EdgeCases)
{
    // Empty input: no shards.
    const ShardPlan empty =
        partitionTraceShards({}, 4, PartitionCostFn::Balanced);
    EXPECT_EQ(empty.shardCount(), 0u);
    EXPECT_EQ(empty.bounds, std::vector<std::size_t>{0});

    // Single unit.
    const ShardPlan one =
        partitionTraceShards({3.0}, 4, PartitionCostFn::Balanced);
    EXPECT_EQ(one.shardCount(), 1u);
    EXPECT_EQ(one.bounds, (std::vector<std::size_t>{0, 1}));
    EXPECT_DOUBLE_EQ(one.imbalance, 1.0);

    // One shard spans everything.
    const ShardPlan single = partitionTraceShards(
        skewedCosts(10, 4.0), 1, PartitionCostFn::Balanced);
    EXPECT_EQ(single.shardCount(), 1u);
    EXPECT_EQ(single.bounds, (std::vector<std::size_t>{0, 10}));

    // More shards than units: clamped to one unit per shard.
    const ShardPlan clamped = partitionTraceShards(
        {1.0, 1.0, 1.0}, 9, PartitionCostFn::Balanced);
    EXPECT_EQ(clamped.shardCount(), 3u);
    EXPECT_EQ(clamped.bounds, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ShardPlanTest, BalancesSkewedCostsWithinBound)
{
    const std::vector<double> costs = skewedCosts(512, 16.0);
    for (std::size_t shards : {2u, 3u, 4u, 8u}) {
        const ShardPlan plan = partitionTraceShards(
            costs, shards, PartitionCostFn::Balanced);
        ASSERT_EQ(plan.shardCount(), shards);
        EXPECT_LE(plan.imbalance, 1.10) << shards << " shards";
        // Bounds tile [0, n) ascending.
        EXPECT_EQ(plan.bounds.front(), 0u);
        EXPECT_EQ(plan.bounds.back(), costs.size());
        for (std::size_t s = 1; s < plan.bounds.size(); ++s)
            EXPECT_LT(plan.bounds[s - 1], plan.bounds[s]);
    }
}

TEST(ShardPlanTest, DeterministicAcrossCalls)
{
    const std::vector<double> costs = skewedCosts(200, 8.0);
    for (PartitionCostFn fn :
         {PartitionCostFn::Balanced, PartitionCostFn::CriticalPath,
          PartitionCostFn::Greedy, PartitionCostFn::MinMaxWorkloads}) {
        const ShardPlan a = partitionTraceShards(costs, 5, fn);
        const ShardPlan b = partitionTraceShards(costs, 5, fn);
        EXPECT_EQ(a.bounds, b.bounds) << toString(fn);
    }
}

// ----------------------------------------------------- clustering family --

TEST(GraphPartitionClusterTest, ProducesValidClusterings)
{
    const auto points = testPoints(60);
    for (std::size_t k : {1u, 2u, 7u, 59u, 60u}) {
        GraphPartitionConfig cfg;
        cfg.targetK = k;
        const Clustering c = graphPartitionCluster(points, cfg);
        EXPECT_EQ(c.k, k);
        EXPECT_EQ(c.items(), points.size());
        // validate() ran inside; spot-check representative coherence.
        for (std::size_t i = 0; i < c.k; ++i)
            EXPECT_EQ(c.assignment[c.representatives[i]], i);
    }
}

TEST(GraphPartitionClusterTest, SinglePointAndEfficiencyTarget)
{
    const Clustering one = graphPartitionCluster(testPoints(1), {});
    EXPECT_EQ(one.k, 1u);
    EXPECT_EQ(one.representatives[0], 0u);

    GraphPartitionConfig cfg;
    cfg.targetEfficiency = 0.75;
    const Clustering c = graphPartitionCluster(testPoints(100), cfg);
    EXPECT_EQ(c.k, 25u); // n * (1 - 0.75)
    EXPECT_NEAR(c.efficiency(), 0.75, 1e-9);
}

TEST(GraphPartitionClusterTest, DeterministicAcrossCalls)
{
    const auto points = testPoints(80, 7);
    GraphPartitionConfig cfg;
    cfg.targetK = 10;
    const Clustering a = graphPartitionCluster(points, cfg);
    const Clustering b = graphPartitionCluster(points, cfg);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.representatives, b.representatives);
}

// ------------------------------------------------- sweep path bit-identity --

TEST_F(PartitionTest, RetimeAllBitIdenticalAcrossShardings)
{
    // A skewed synthetic work trace: heavy first quarter.
    std::vector<std::size_t> sizes(48);
    for (std::size_t g = 0; g < sizes.size(); ++g)
        sizes[g] = g < sizes.size() / 4 ? 160 : 10;
    WorkTrace wt(capacityConfigHash(makeGpuPreset("baseline")), sizes);
    Rng rng(99);
    for (std::size_t i = 0; i < wt.drawCount(); ++i) {
        DrawWork w;
        w.vertices = rng.uniform(10.0, 1000.0);
        w.primitives = w.vertices / 3.0;
        w.pixels = rng.uniform(100.0, 50000.0);
        w.vertexFetchBytes = w.vertices * 32.0;
        w.vsWeightedOps = w.vertices * 40.0;
        w.psWeightedOps = w.pixels * 20.0;
        w.ropPixels = w.pixels;
        w.traffic.texSamples =
            static_cast<std::uint64_t>(w.pixels);
        w.traffic.texDramBytes = w.pixels;
        wt.setRow(i, w);
    }
    const std::vector<GpuConfig> points = clockSweepConfigs(
        makeGpuPreset("baseline"), {0.6, 1.0, 1.4, 1.8});

    SweepConfig naive_cfg;
    naive_cfg.path = SweepPath::Engine;
    naive_cfg.partition = PartitionPath::Naive;
    naive_cfg.perDraw = true;
    const SweepResult reference =
        at(1, [&] { return retimeAll(wt, points, naive_cfg); });

    for (std::size_t threads : {1u, 4u}) {
        for (std::size_t shards : {1u, 3u, 4u}) {
            SweepConfig balanced_cfg = naive_cfg;
            balanced_cfg.partition = PartitionPath::Balanced;
            balanced_cfg.shardCount = shards;
            const SweepResult got = at(threads, [&] {
                return retimeAll(wt, points, balanced_cfg);
            });
            EXPECT_TRUE(sameSweepResult(reference, got))
                << threads << " threads, " << shards << " shards";
        }
    }
}

TEST_F(PartitionTest, RetimeAllEmptyAndSingleGroupTraces)
{
    const std::vector<GpuConfig> points =
        clockSweepConfigs(makeGpuPreset("baseline"), {0.8, 1.2});
    const std::uint64_t key =
        capacityConfigHash(makeGpuPreset("baseline"));

    for (const std::vector<std::size_t> &sizes :
         {std::vector<std::size_t>{}, std::vector<std::size_t>{5}}) {
        WorkTrace wt(key, sizes);
        for (std::size_t i = 0; i < wt.drawCount(); ++i) {
            DrawWork w;
            w.vertices = 100.0;
            w.pixels = 1000.0;
            w.vsWeightedOps = 4000.0;
            w.psWeightedOps = 20000.0;
            wt.setRow(i, w);
        }
        SweepConfig naive_cfg;
        naive_cfg.partition = PartitionPath::Naive;
        SweepConfig balanced_cfg;
        balanced_cfg.partition = PartitionPath::Balanced;
        const SweepResult a = at(4, [&] {
            return retimeAll(wt, points, naive_cfg);
        });
        const SweepResult b = at(4, [&] {
            return retimeAll(wt, points, balanced_cfg);
        });
        EXPECT_TRUE(sameSweepResult(a, b))
            << sizes.size() << " groups";
    }
}

TEST_F(PartitionTest, SimulateTraceBitIdenticalOnBalancedPath)
{
    const Trace trace =
        GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
            .generate();
    const GpuSimulator sim(makeGpuPreset("baseline"));

    setDefaultPartitionPath(PartitionPath::Naive);
    const TraceCost naive =
        at(4, [&] { return sim.simulateTrace(trace); });

    setDefaultPartitionPath(PartitionPath::Balanced);
    for (std::size_t threads : {1u, 4u}) {
        const TraceCost balanced =
            at(threads, [&] { return sim.simulateTrace(trace); });
        EXPECT_TRUE(sameTraceCost(naive, balanced))
            << threads << " threads";
    }
    setDefaultPartitionPath(PartitionPath::Auto);
}

TEST_F(PartitionTest, StreamedSweepBitIdenticalOnBalancedPath)
{
    const Trace trace =
        GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
            .generate();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const std::vector<GpuConfig> points = clockSweepConfigs(
        makeGpuPreset("baseline"), {0.7, 1.0, 1.5});
    const WorkTrace wt = buildWorkTrace(trace, sim);

    SweepConfig naive_cfg;
    naive_cfg.partition = PartitionPath::Naive;
    const SweepResult reference =
        at(1, [&] { return retimeAll(wt, points, naive_cfg); });

    SweepConfig balanced_cfg;
    balanced_cfg.partition = PartitionPath::Balanced;
    const SweepResult streamed = at(4, [&] {
        StreamOptions opt;
        opt.memBudgetBytes = 1 << 20;
        StreamingWorkTrace stream(trace, sim, opt);
        return retimeAllStreamed(stream, points, balanced_cfg);
    });
    EXPECT_TRUE(sameSweepResult(reference, streamed));
}

TEST_F(PartitionTest, DefaultPathPinningResolves)
{
    const PartitionPath original = defaultPartitionPath();

    setDefaultPartitionPath(PartitionPath::Naive);
    EXPECT_TRUE(partitionUsesNaivePath(PartitionPath::Auto));
    EXPECT_EQ(defaultPartitionPath(), PartitionPath::Naive);

    setDefaultPartitionPath(PartitionPath::Balanced);
    EXPECT_FALSE(partitionUsesNaivePath(PartitionPath::Auto));
    EXPECT_EQ(defaultPartitionPath(), PartitionPath::Balanced);

    // Explicit paths ignore the pin.
    EXPECT_TRUE(partitionUsesNaivePath(PartitionPath::Naive));
    EXPECT_FALSE(partitionUsesNaivePath(PartitionPath::Balanced));

    setDefaultPartitionPath(PartitionPath::Auto);
    EXPECT_EQ(defaultPartitionPath(), original);
}

} // namespace
} // namespace gws
