/**
 * @file
 * Unit tests for the observability layer: span nesting and self-time
 * accounting, flow links across parallelFor fan-outs, the metrics
 * registry (types, reset scoping, histogram buckets), both JSON
 * exporters (structural validation with a minimal parser), and the
 * disabled-tracer no-op guarantee.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "runtime/runtime.hh"

namespace gws {
namespace {

// --------------------------------------------- minimal JSON validator --

/**
 * Structural JSON check, enough to catch unbalanced braces, trailing
 * commas, and broken string escaping in the exporters' hand-rolled
 * output. Not a full RFC 8259 parser (no number-grammar pedantry).
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s(text) {}

    bool
    valid()
    {
        i = 0;
        if (!value())
            return false;
        ws();
        return i == s.size();
    }

  private:
    void
    ws()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                                s[i] == '\n' || s[i] == '\r'))
            ++i;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s.compare(i, n, word) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
            }
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '-' || s[i] == '+'))
            ++i;
        return i > start;
    }

    bool
    value()
    {
        ws();
        if (i >= s.size())
            return false;
        switch (s[i]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++i; // '{'
        ws();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return true;
        }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        return true;
    }

    bool
    array()
    {
        ++i; // '['
        ws();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != ']')
            return false;
        ++i;
        return true;
    }

    const std::string &s;
    std::size_t i = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/**
 * Tracer tests leave the tracer off and the runtime configuration as
 * they found it, so the rest of the binary (and ctest siblings run
 * from the same build tree) see pristine global state.
 */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = runtimeConfig(); }

    void TearDown() override
    {
        obs::traceEnd();
        setRuntimeConfig(saved);
        shutdownGlobalThreadPool();
    }

    void
    useThreads(std::size_t threads)
    {
        RuntimeConfig cfg = saved;
        cfg.threads = threads;
        setRuntimeConfig(cfg);
    }

    RuntimeConfig saved;
};

// ------------------------------------------------------------- tracer --

TEST_F(ObsTest, DisabledTracerRecordsNothing)
{
    obs::traceEnd();
    const std::size_t before = obs::traceEventCount();
    {
        obs::SpanScope span("never.recorded");
    }
    obs::traceInstant("never", "recorded");
    obs::traceFlowStart("never", 1);
    EXPECT_EQ(obs::traceEventCount(), before);
}

TEST_F(ObsTest, TraceBeginClearsPriorEvents)
{
    obs::traceBegin();
    {
        obs::SpanScope span("first.run");
    }
    obs::traceEnd();
    EXPECT_GE(obs::traceEventCount(), 1u);

    obs::traceBegin();
    obs::traceEnd();
    EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndSelfTime)
{
    obs::traceBegin();
    {
        obs::SpanScope outer("nest.outer");
        {
            obs::SpanScope inner("nest.inner");
            volatile std::uint64_t sink = 0;
            for (int spin = 0; spin < 50000; ++spin)
                sink = sink + 1;
        }
    }
    obs::traceEnd();

    const std::vector<obs::TraceEvent> events = obs::traceSnapshot();
    const obs::TraceEvent *outer = nullptr, *inner = nullptr;
    std::size_t outerIdx = 0, innerIdx = 0;
    for (std::size_t idx = 0; idx < events.size(); ++idx) {
        if (events[idx].name == "nest.outer") {
            outer = &events[idx];
            outerIdx = idx;
        }
        if (events[idx].name == "nest.inner") {
            inner = &events[idx];
            innerIdx = idx;
        }
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);

    // Spans are appended when they close: inner-before-outer order.
    EXPECT_LT(innerIdx, outerIdx);
    EXPECT_EQ(outer->depth, 0u);
    EXPECT_EQ(inner->depth, 1u);
    EXPECT_EQ(outer->tid, inner->tid);

    // Child interval nests inside the parent interval.
    EXPECT_GE(inner->startNs, outer->startNs);
    EXPECT_LE(inner->startNs + inner->durationNs,
              outer->startNs + outer->durationNs);

    // Self time is duration minus (exactly) the child's duration.
    EXPECT_EQ(outer->selfNs + inner->durationNs, outer->durationNs);
    EXPECT_EQ(inner->selfNs, inner->durationNs);
}

TEST_F(ObsTest, FlowEventsLinkParallelForChunks)
{
    useThreads(2);
    obs::traceBegin();
    std::atomic<int> calls{0};
    parallelFor(0, 100, 10, [&](std::size_t) { ++calls; });
    obs::traceEnd();
    EXPECT_EQ(calls.load(), 100);

    const std::vector<obs::TraceEvent> events = obs::traceSnapshot();
    const obs::TraceEvent *flow = nullptr;
    std::size_t chunks = 0;
    std::uint64_t chunkFlowId = 0;
    for (const auto &e : events) {
        if (e.phase == obs::TracePhase::FlowStart &&
            e.name == "parallelFor")
            flow = &e;
        if (e.phase == obs::TracePhase::Complete &&
            e.name == "runtime.chunk") {
            ++chunks;
            chunkFlowId = e.flowId;
        }
    }
    ASSERT_NE(flow, nullptr);
    EXPECT_NE(flow->flowId, 0u);
    EXPECT_EQ(chunks, 10u);
    EXPECT_EQ(chunkFlowId, flow->flowId);
}

TEST_F(ObsTest, RollupAggregatesByName)
{
    obs::traceBegin();
    for (int round = 0; round < 3; ++round) {
        obs::SpanScope span("rollup.hot");
    }
    {
        obs::SpanScope span("rollup.cold");
    }
    obs::traceEnd();

    const std::vector<obs::SpanRollup> rows = obs::traceRollup();
    const obs::SpanRollup *hot = nullptr, *cold = nullptr;
    for (const auto &r : rows) {
        if (r.name == "rollup.hot")
            hot = &r;
        if (r.name == "rollup.cold")
            cold = &r;
    }
    ASSERT_NE(hot, nullptr);
    ASSERT_NE(cold, nullptr);
    EXPECT_EQ(hot->count, 3u);
    EXPECT_EQ(cold->count, 1u);
    EXPECT_GE(hot->totalNs, hot->selfNs);

    const std::string report = obs::traceRollupReport();
    EXPECT_NE(report.find("rollup.hot"), std::string::npos);
    EXPECT_NE(report.find("rollup.cold"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson)
{
    useThreads(2);
    obs::traceBegin();
    {
        obs::SpanScope span("export.outer");
        obs::SpanScope detail("export \"quoted\" name");
        parallelFor(0, 40, 10, [](std::size_t) {});
    }
    obs::traceInstant("export.instant", "detail \"text\"\n");
    obs::traceEnd();

    const std::string path = "test_obs_trace.json";
    ASSERT_TRUE(obs::writeChromeTrace(path));
    const std::string text = slurp(path);
    std::remove(path.c_str());

    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
    // All four phases present: complete, flow start/finish, instant.
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"f\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
}

// ------------------------------------------------------------ metrics --

TEST_F(ObsTest, CounterAndGaugeBasics)
{
    obs::Counter &c = obs::metricsRegistry().counter("test.obs.counter");
    const std::uint64_t before = c.value();
    c.increment();
    c.add(4);
    EXPECT_EQ(c.value(), before + 5);

    // Same name, same handle: the registry is get-or-create.
    EXPECT_EQ(&obs::metricsRegistry().counter("test.obs.counter"), &c);

    obs::Gauge &g = obs::metricsRegistry().gauge("test.obs.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST_F(ObsTest, HistogramBucketBoundaries)
{
    using H = obs::Histogram;
    EXPECT_EQ(H::bucketIndex(0), 0u);
    EXPECT_EQ(H::bucketIndex(1), 1u);
    EXPECT_EQ(H::bucketIndex(2), 2u);
    EXPECT_EQ(H::bucketIndex(3), 2u);
    EXPECT_EQ(H::bucketIndex(4), 3u);
    EXPECT_EQ(H::bucketIndex(7), 3u);
    EXPECT_EQ(H::bucketIndex(8), 4u);
    EXPECT_EQ(H::bucketIndex(UINT64_MAX), H::numBuckets - 1);

    // Buckets tile the uint64 range: [lower, upper] with no gaps.
    EXPECT_EQ(H::bucketLowerBound(0), 0u);
    EXPECT_EQ(H::bucketUpperBound(0), 0u);
    for (std::size_t i = 1; i < H::numBuckets; ++i) {
        EXPECT_EQ(H::bucketLowerBound(i), H::bucketUpperBound(i - 1) + 1);
        EXPECT_EQ(H::bucketIndex(H::bucketLowerBound(i)), i);
        EXPECT_EQ(H::bucketIndex(H::bucketUpperBound(i)), i);
    }
    EXPECT_EQ(H::bucketUpperBound(H::numBuckets - 1), UINT64_MAX);
}

TEST_F(ObsTest, HistogramRecordsSumCountAndBuckets)
{
    obs::Histogram &h =
        obs::metricsRegistry().histogram("test.obs.hist");
    h.reset();
    h.record(0);
    h.record(1);
    h.record(3);
    h.record(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1004u);
    EXPECT_DOUBLE_EQ(h.mean(), 251.0);
    EXPECT_EQ(h.bucketCount(0), 1u); // the 0
    EXPECT_EQ(h.bucketCount(1), 1u); // the 1
    EXPECT_EQ(h.bucketCount(2), 1u); // the 3
    EXPECT_EQ(h.bucketCount(obs::Histogram::bucketIndex(1000)), 1u);
}

TEST_F(ObsTest, ResetPrefixScopesTheReset)
{
    obs::Counter &mine =
        obs::metricsRegistry().counter("test.reset.mine");
    obs::Counter &other =
        obs::metricsRegistry().counter("test.keep.other");
    mine.add(3);
    other.add(7);
    obs::metricsRegistry().resetPrefix("test.reset.");
    EXPECT_EQ(mine.value(), 0u);
    EXPECT_EQ(other.value(), 7u);
    other.reset();
}

TEST_F(ObsTest, SnapshotPrefixFiltersByName)
{
    obs::metricsRegistry().counter("test.snap.a").increment();
    obs::metricsRegistry().counter("test.snap.b").increment();
    const auto rows =
        obs::metricsRegistry().snapshotPrefix("test.snap.");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "test.snap.a");
    EXPECT_EQ(rows[1].name, "test.snap.b");
    obs::metricsRegistry().resetPrefix("test.snap.");
}

TEST_F(ObsTest, MetricsJsonParsesAndCoversLegacyCounters)
{
    // Every field of the legacy RuntimeCounters struct must appear in
    // the export, even before any work has touched it.
    static const char *const kLegacyNames[] = {
        "runtime.parallelRegions", "runtime.inlineRegions",
        "runtime.chunksExecuted",  "runtime.tasksSubmitted",
        "runtime.submitterWaitNs", "runtime.workerIdleNs",
        "gpusim.drawCache.hits",   "gpusim.drawCache.misses",
        "cluster.kmeans.boundsSkipped", "cluster.kmeans.fullScans",
        "cluster.leader.normRejects",   "cluster.leader.distances",
        "gpusim.workTrace.draws",  "gpusim.workTrace.buildNs",
        "core.sweep.passes",       "core.sweep.configs",
        "core.sweep.drawsRetimed", "core.sweep.retimeNs",
        "gpusim.texBind.hits",     "gpusim.texBind.misses",
    };

    const std::string json = obs::metricsRegistry().toJson();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("gws.metrics.v1"), std::string::npos);
    for (const char *name : kLegacyNames)
        EXPECT_NE(json.find(std::string("\"") + name + "\""),
                  std::string::npos)
            << "missing legacy counter " << name;

    const std::string path = "test_obs_metrics.json";
    ASSERT_TRUE(obs::metricsRegistry().writeJson(path));
    const std::string fileText = slurp(path);
    std::remove(path.c_str());
    EXPECT_TRUE(JsonValidator(fileText).valid());
}

TEST_F(ObsTest, JsonEscapeHandlesControlCharacters)
{
    const std::string escaped =
        obs::jsonEscape("a\"b\\c\nd\te\x01f");
    const std::string wrapped = "\"" + escaped + "\"";
    EXPECT_TRUE(JsonValidator(wrapped).valid()) << wrapped;
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
}

// ----------------------------------------- Prometheus text export --

TEST(MetricsText, PrometheusNameSanitizes)
{
    EXPECT_EQ(obs::prometheusName("gws.serve.query.ns"),
              "gws_serve_query_ns");
    EXPECT_EQ(obs::prometheusName("already_fine:ok"),
              "already_fine:ok");
    EXPECT_EQ(obs::prometheusName("3d.workload"), "_3d_workload");
}

TEST(MetricsText, CounterAndGaugeRows)
{
    std::vector<obs::MetricSnapshot> snapshot(2);
    snapshot[0].name = "gws.test.hits";
    snapshot[0].type = obs::MetricType::Counter;
    snapshot[0].counterValue = 42;
    snapshot[1].name = "gws.test.load";
    snapshot[1].type = obs::MetricType::Gauge;
    snapshot[1].gaugeValue = 1.5;

    const std::string text = obs::metricsPrometheusText(snapshot);
    EXPECT_NE(text.find("# TYPE gws_test_hits_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("gws_test_hits_total 42"),
              std::string::npos);
    EXPECT_NE(text.find("gws_test_load 1.5"), std::string::npos);
}

TEST(MetricsText, HistogramRowsAreCumulativeWithInf)
{
    std::vector<obs::MetricSnapshot> snapshot(1);
    obs::MetricSnapshot &h = snapshot[0];
    h.name = "gws.test.lat";
    h.type = obs::MetricType::Histogram;
    h.histCount = 3;
    h.histSum = 700;
    h.buckets = {{0, 100, 2}, {100, 1000, 1}};

    const std::string text = obs::metricsPrometheusText(snapshot);
    EXPECT_NE(text.find("# TYPE gws_test_lat histogram"),
              std::string::npos);
    EXPECT_NE(text.find("gws_test_lat_bucket{le=\"100\"} 2"),
              std::string::npos);
    // Cumulative: the second bucket includes the first's count.
    EXPECT_NE(text.find("gws_test_lat_bucket{le=\"1000\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("gws_test_lat_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("gws_test_lat_sum 700"), std::string::npos);
    EXPECT_NE(text.find("gws_test_lat_count 3"), std::string::npos);
}

// ------------------------------------------- histogram percentiles --

TEST(MetricsQuantile, EstimateLandsWithinOneBucketOfExact)
{
    obs::metricsRegistry().resetPrefix("test.quant.");
    obs::Histogram &h =
        obs::metricsRegistry().histogram("test.quant.lat");

    // Deterministic values spanning several octaves, skewed the way
    // latency samples are: mostly small, with a heavy tail.
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    std::vector<std::uint64_t> raw;
    for (int i = 0; i < 4096; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        const std::uint64_t v = (state % 1000) * (state % 97) + 1;
        raw.push_back(v);
        h.record(v);
    }
    std::sort(raw.begin(), raw.end());

    const auto rows =
        obs::metricsRegistry().snapshotPrefix("test.quant.");
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].histCount, raw.size());

    for (double q : {0.50, 0.95, 0.99}) {
        // Exact nearest-rank percentile of the raw samples.
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(raw.size())));
        if (rank > 0)
            --rank;
        const std::uint64_t exact = raw[rank];

        const double est = obs::snapshotQuantile(rows[0], q);
        const auto estBucket = obs::Histogram::bucketIndex(
            static_cast<std::uint64_t>(std::llround(est)));
        const auto exactBucket = obs::Histogram::bucketIndex(exact);
        const std::size_t gap = estBucket > exactBucket
                                    ? estBucket - exactBucket
                                    : exactBucket - estBucket;
        EXPECT_LE(gap, 1u)
            << "q=" << q << " exact=" << exact << " est=" << est;
    }

    // The exporters surface the same estimates as first-class rows.
    const std::string prom = obs::metricsPrometheusText(rows);
    EXPECT_NE(prom.find("test_quant_lat_p50 "), std::string::npos);
    EXPECT_NE(prom.find("test_quant_lat_p95 "), std::string::npos);
    EXPECT_NE(prom.find("test_quant_lat_p99 "), std::string::npos);

    const std::string json = obs::metricsRegistry().toJson();
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_TRUE(JsonValidator(json).valid());

    obs::metricsRegistry().resetPrefix("test.quant.");
}

// ------------------------------------------------------ info metrics --

TEST(MetricsInfo, ExportsInJsonAndPrometheus)
{
    obs::metricsRegistry().setInfo("test_info.build",
                                   "v1.2 \"dirty\"");

    const auto rows =
        obs::metricsRegistry().snapshotPrefix("test_info.");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].type, obs::MetricType::Info);
    EXPECT_EQ(rows[0].infoValue, "v1.2 \"dirty\"");

    const std::string json = obs::metricsRegistry().toJson();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"type\": \"info\""), std::string::npos);

    const std::string prom = obs::metricsPrometheusText(rows);
    EXPECT_NE(prom.find("# TYPE test_info_build gauge"),
              std::string::npos);
    // The annotation rides in a `value` label, quotes escaped.
    EXPECT_NE(prom.find("test_info_build{value=\"v1.2 "
                        "\\\"dirty\\\"\"} 1"),
              std::string::npos)
        << prom;
}

// ------------------------------------------------- trace ring buffer --

TEST_F(ObsTest, TraceCapRingKeepsNewestAndCountsDrops)
{
    const std::size_t savedCap = obs::traceCapPerThread();
    obs::metricsRegistry().resetPrefix("gws.trace.");
    obs::setTraceCapPerThread(4);

    obs::traceBegin();
    for (int i = 0; i < 10; ++i) {
        obs::SpanScope span("cap.span." + std::to_string(i));
    }
    obs::traceEnd();

    std::vector<std::string> kept;
    for (const auto &ev : obs::traceSnapshot())
        if (ev.name.rfind("cap.span.", 0) == 0)
            kept.push_back(ev.name);

    ASSERT_EQ(kept.size(), 4u);
    // The ring keeps the newest spans, unwound oldest-first.
    EXPECT_EQ(kept[0], "cap.span.6");
    EXPECT_EQ(kept[1], "cap.span.7");
    EXPECT_EQ(kept[2], "cap.span.8");
    EXPECT_EQ(kept[3], "cap.span.9");
    EXPECT_EQ(obs::metricsRegistry()
                  .counter("gws.trace.dropped_spans")
                  .value(),
              6u);

    obs::setTraceCapPerThread(savedCap);
    obs::metricsRegistry().resetPrefix("gws.trace.");
}

} // namespace
} // namespace gws
