/**
 * @file
 * Tests of the immediate-mode TraceRecorder: bind-then-draw semantics,
 * state stickiness, frame boundaries, validation of bad API usage, and
 * equivalence of recorded traces with hand-built ones.
 */

#include <gtest/gtest.h>

#include "trace/recorder.hh"
#include "trace/trace_io.hh"

#include <sstream>

namespace gws {
namespace {

/** A recorder with one of everything created and bound. */
struct Rig
{
    TraceRecorder rec{"recorded"};
    ShaderId vs;
    ShaderId ps;
    TextureId tex;
    RenderTargetId rt;

    Rig()
        : vs(rec.createVertexShader("vs", InstructionMix{10, 5, 0, 0, 0,
                                                         1})),
          ps(rec.createPixelShader("ps", InstructionMix{20, 8, 1, 2, 6,
                                                        2})),
          tex(rec.createTexture(TextureDesc{256, 256, 4, true})),
          rt(rec.createRenderTarget(RenderTargetDesc{640, 480, 4}))
    {
        rec.bindShaders(vs, ps);
        rec.bindTextures({tex});
        rec.bindRenderTarget(rt);
    }

    TraceRecorder::DrawParams
    params(std::uint64_t pixels = 1000) const
    {
        TraceRecorder::DrawParams p;
        p.vertexCount = 90;
        p.shadedPixels = pixels;
        return p;
    }
};

TEST(TraceRecorder, RecordsFramesAndDraws)
{
    Rig rig;
    rig.rec.draw(rig.params());
    rig.rec.draw(rig.params(2000));
    EXPECT_EQ(rig.rec.pendingDraws(), 2u);
    rig.rec.present();
    EXPECT_EQ(rig.rec.pendingDraws(), 0u);
    rig.rec.draw(rig.params(3000));
    rig.rec.present();

    const Trace t = std::move(rig.rec).finish();
    ASSERT_EQ(t.frameCount(), 2u);
    EXPECT_EQ(t.frame(0).drawCount(), 2u);
    EXPECT_EQ(t.frame(1).drawCount(), 1u);
    EXPECT_EQ(t.frame(1).draws()[0].shadedPixels, 3000u);
}

TEST(TraceRecorder, FinishPresentsTrailingFrame)
{
    Rig rig;
    rig.rec.draw(rig.params());
    const Trace t = std::move(rig.rec).finish();
    EXPECT_EQ(t.frameCount(), 1u);
}

TEST(TraceRecorder, FinishWithoutDrawsYieldsEmptyTrace)
{
    TraceRecorder rec("empty");
    const Trace t = std::move(rec).finish();
    EXPECT_EQ(t.frameCount(), 0u);
}

TEST(TraceRecorder, EmptyFramesAreLegal)
{
    Rig rig;
    rig.rec.present(); // menu frame with no 3D draws
    rig.rec.draw(rig.params());
    rig.rec.present();
    const Trace t = std::move(rig.rec).finish();
    ASSERT_EQ(t.frameCount(), 2u);
    EXPECT_EQ(t.frame(0).drawCount(), 0u);
}

TEST(TraceRecorder, StateIsStickyAcrossDraws)
{
    Rig rig;
    rig.rec.setBlendEnabled(true);
    rig.rec.setDepthWriteEnabled(false);
    rig.rec.draw(rig.params());
    rig.rec.draw(rig.params());
    rig.rec.setBlendEnabled(false);
    rig.rec.draw(rig.params());
    const Trace t = std::move(rig.rec).finish();
    const auto &draws = t.frame(0).draws();
    EXPECT_TRUE(draws[0].state.blendEnabled);
    EXPECT_TRUE(draws[1].state.blendEnabled);
    EXPECT_FALSE(draws[2].state.blendEnabled);
    EXPECT_FALSE(draws[0].state.depthWriteEnabled);
}

TEST(TraceRecorder, RecordedTraceValidatesAndSerializes)
{
    Rig rig;
    for (int f = 0; f < 3; ++f) {
        for (int d = 0; d < 5; ++d)
            rig.rec.draw(rig.params(500 + 100 * d));
        rig.rec.present();
    }
    const Trace t = std::move(rig.rec).finish();
    t.validate();
    std::ostringstream oss(std::ios::binary);
    writeTrace(t, oss);
    std::istringstream iss(oss.str(), std::ios::binary);
    EXPECT_EQ(readTrace(iss), t);
}

TEST(TraceRecorder, DrawWithoutShadersIsFatal)
{
    TraceRecorder rec("bad");
    rec.createRenderTarget(RenderTargetDesc{64, 64, 4});
    rec.bindRenderTarget(0);
    EXPECT_EXIT(rec.draw(TraceRecorder::DrawParams{}),
                ::testing::ExitedWithCode(1), "no shaders bound");
}

TEST(TraceRecorder, DrawWithoutTargetIsFatal)
{
    TraceRecorder rec("bad");
    const ShaderId vs = rec.createVertexShader("v", {});
    const ShaderId ps = rec.createPixelShader("p", {});
    rec.bindShaders(vs, ps);
    EXPECT_EXIT(rec.draw(TraceRecorder::DrawParams{}),
                ::testing::ExitedWithCode(1), "no render target");
}

TEST(TraceRecorder, SwappedShaderStagesAreFatal)
{
    TraceRecorder rec("bad");
    const ShaderId vs = rec.createVertexShader("v", {});
    const ShaderId ps = rec.createPixelShader("p", {});
    EXPECT_EXIT(rec.bindShaders(ps, vs), ::testing::ExitedWithCode(1),
                "not a vertex shader");
}

TEST(TraceRecorder, UnknownResourceIdsAreFatal)
{
    TraceRecorder rec("bad");
    EXPECT_EXIT(rec.bindTextures({7}), ::testing::ExitedWithCode(1),
                "unknown texture");
    EXPECT_EXIT(rec.bindRenderTarget(3), ::testing::ExitedWithCode(1),
                "unknown render target");
}

TEST(TraceRecorder, OversizedCoverageIsFatal)
{
    Rig rig;
    auto p = rig.params();
    p.shadedPixels = 10ull * 640 * 480;
    EXPECT_EXIT(rig.rec.draw(p), ::testing::ExitedWithCode(1), "covers");
}

TEST(TraceRecorder, BadDrawParamsAreFatal)
{
    Rig rig;
    auto zero_inst = rig.params();
    zero_inst.instanceCount = 0;
    EXPECT_EXIT(rig.rec.draw(zero_inst), ::testing::ExitedWithCode(1),
                "instance count");
    auto bad_od = rig.params();
    bad_od.overdraw = 0.5;
    EXPECT_EXIT(rig.rec.draw(bad_od), ::testing::ExitedWithCode(1),
                "overdraw");
    auto bad_loc = rig.params();
    bad_loc.texLocality = 1.5;
    EXPECT_EXIT(rig.rec.draw(bad_loc), ::testing::ExitedWithCode(1),
                "texLocality");
}

TEST(TraceRecorder, EquivalentToHandBuiltTrace)
{
    // Build the same content through the recorder and by hand; the
    // traces must compare equal.
    Rig rig;
    rig.rec.draw(rig.params(1234));
    rig.rec.present();
    const Trace recorded = std::move(rig.rec).finish();

    Trace manual("recorded");
    const ShaderId vs = manual.shaders().add(
        ShaderStage::Vertex, "vs", InstructionMix{10, 5, 0, 0, 0, 1});
    const ShaderId ps = manual.shaders().add(
        ShaderStage::Pixel, "ps", InstructionMix{20, 8, 1, 2, 6, 2});
    const TextureId tex =
        manual.addTexture(TextureDesc{256, 256, 4, true});
    const RenderTargetId rt =
        manual.addRenderTarget(RenderTargetDesc{640, 480, 4});
    Frame f(0);
    DrawCall d;
    d.state.vertexShader = vs;
    d.state.pixelShader = ps;
    d.state.textures = {tex};
    d.state.renderTarget = rt;
    d.vertexCount = 90;
    d.shadedPixels = 1234;
    f.addDraw(d);
    manual.addFrame(std::move(f));

    EXPECT_EQ(recorded, manual);
}

} // namespace
} // namespace gws
