/**
 * @file
 * Fault-injection fuzz run over both binary formats: ten-thousand-plus
 * deterministic mutations per format, asserting the decoder contract
 * (typed error or byte-identical accept, nothing else) and that the
 * harness itself replays bit-identically from its seed.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/subset_io.hh"
#include "synth/generator.hh"
#include "testing/fuzz_harness.hh"
#include "trace/trace_io.hh"
#include "trace/wtrc_io.hh"
#include "util/rng.hh"

namespace gws {
namespace {

Trace
sampleTrace()
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.segments = 2;
    p.segmentFramesMin = 2;
    p.segmentFramesMax = 3;
    p.drawsPerFrame = 20.0;
    return GameGenerator(p).generate();
}

std::string
goodTraceBlob()
{
    std::ostringstream oss(std::ios::binary);
    writeTrace(sampleTrace(), oss);
    return oss.str();
}

std::string
goodSubsetBlob()
{
    const WorkloadSubset s =
        buildWorkloadSubset(sampleTrace(), SubsetConfig{});
    std::ostringstream oss(std::ios::binary);
    writeSubset(s, oss);
    return oss.str();
}

std::string
goodWtrcBlob()
{
    // A three-chunk container with uneven group sizes, column values
    // drawn from the project Rng so the blob is deterministic.
    std::ostringstream oss(std::ios::binary);
    WtrcWriter writer(oss, 0x5eedc0deULL);
    Rng rng(42);
    const std::vector<std::vector<std::uint32_t>> chunk_groups = {
        {3, 1, 4}, {2, 2}, {5},
    };
    for (const auto &sizes : chunk_groups) {
        std::size_t rows = 0;
        for (std::uint32_t s : sizes)
            rows += s;
        std::vector<std::vector<double>> cols(
            wtrcColumnCount, std::vector<double>(rows));
        const double *col_ptrs[wtrcColumnCount];
        for (std::size_t c = 0; c < wtrcColumnCount; ++c) {
            for (std::size_t r = 0; r < rows; ++r)
                cols[c][r] = static_cast<double>(rng.index(1u << 20));
            col_ptrs[c] = cols[c].data();
        }
        writer.appendChunk(sizes, col_ptrs, rows);
    }
    writer.finish();
    return oss.str();
}

fuzz::FuzzConfig
testConfig()
{
    fuzz::FuzzConfig cfg;
    cfg.seed = 0xf00dfaceULL;
    cfg.iterations = 10000;
    cfg.artifactDir = ::testing::TempDir();
    return cfg;
}

void
checkReport(const fuzz::FuzzReport &rep, const fuzz::FuzzConfig &cfg)
{
    SCOPED_TRACE(rep.summary());
    EXPECT_EQ(rep.iterations, cfg.iterations);
    EXPECT_EQ(rep.failures, 0u);
    EXPECT_TRUE(rep.ok());

    // Most mutations must be rejected with the typed error, and the
    // no-op / full-length-truncation cases must be accepted with a
    // byte-identical re-encoding — both classes have to appear.
    EXPECT_GT(rep.typedErrors, cfg.iterations / 2);
    EXPECT_GT(rep.acceptedIdentical, 0u);
    EXPECT_EQ(rep.typedErrors + rep.acceptedIdentical, cfg.iterations);

    // The kind picker must exercise every fault class.
    for (std::size_t k = 0; k < fuzz::numMutationKinds; ++k)
        EXPECT_GT(rep.perKind[k], 0u)
            << "mutation kind never applied: "
            << fuzz::toString(static_cast<fuzz::Mutation>(k));
}

TEST(FuzzIo, TraceFormatSurvivesTenThousandMutations)
{
    const auto cfg = testConfig();
    checkReport(fuzz::fuzzTraceFormat(goodTraceBlob(), cfg), cfg);
}

TEST(FuzzIo, SubsetFormatSurvivesTenThousandMutations)
{
    const auto cfg = testConfig();
    checkReport(fuzz::fuzzSubsetFormat(goodSubsetBlob(), cfg), cfg);
}

TEST(FuzzIo, WtrcFormatSurvivesTenThousandMutations)
{
    const auto cfg = testConfig();
    const auto rep = fuzz::fuzzWtrcFormat(goodWtrcBlob(), cfg);
    SCOPED_TRACE(rep.summary());
    EXPECT_EQ(rep.iterations, cfg.iterations);
    EXPECT_EQ(rep.failures, 0u);
    EXPECT_TRUE(rep.ok());

    // Unlike the single-frame formats, most of a wtrc blob is column
    // doubles where any resealed bit pattern is a valid value, so the
    // acceptance rate is high; assert both outcome classes appear and
    // partition the run, not a specific rejection ratio.
    EXPECT_GT(rep.typedErrors, 0u);
    EXPECT_GT(rep.acceptedIdentical, 0u);
    EXPECT_EQ(rep.typedErrors + rep.acceptedIdentical, cfg.iterations);

    for (std::size_t k = 0; k < fuzz::numMutationKinds; ++k)
        EXPECT_GT(rep.perKind[k], 0u)
            << "mutation kind never applied: "
            << fuzz::toString(static_cast<fuzz::Mutation>(k));

    // Structural faults that survive the per-frame reseal must still
    // be rejected: header-byte damage and raw truncation cannot be
    // accepted whatever the resealing does.
    EXPECT_GT(rep.perKindTyped[static_cast<std::size_t>(
                  fuzz::Mutation::HeaderByte)],
              0u);
    EXPECT_GT(rep.perKindTyped[static_cast<std::size_t>(
                  fuzz::Mutation::TruncateHeader)],
              0u);
}

TEST(FuzzIo, ChunkedResealIsIdempotentOnGoodBlobs)
{
    const std::string good = goodWtrcBlob();
    std::string resealed = good;
    fuzz::resealChunked(resealed);
    EXPECT_EQ(resealed, good);
}

TEST(FuzzIo, WtrcRunsAreDeterministic)
{
    fuzz::FuzzConfig cfg = testConfig();
    cfg.iterations = 500;
    const std::string good = goodWtrcBlob();
    const auto a = fuzz::fuzzWtrcFormat(good, cfg);
    const auto b = fuzz::fuzzWtrcFormat(good, cfg);
    EXPECT_EQ(a.typedErrors, b.typedErrors);
    EXPECT_EQ(a.acceptedIdentical, b.acceptedIdentical);
    EXPECT_EQ(a.failures, b.failures);
}

TEST(FuzzIo, RunsAreDeterministic)
{
    fuzz::FuzzConfig cfg = testConfig();
    cfg.iterations = 500;
    const std::string good = goodTraceBlob();
    const auto a = fuzz::fuzzTraceFormat(good, cfg);
    const auto b = fuzz::fuzzTraceFormat(good, cfg);
    EXPECT_EQ(a.typedErrors, b.typedErrors);
    EXPECT_EQ(a.acceptedIdentical, b.acceptedIdentical);
    EXPECT_EQ(a.failures, b.failures);
    for (std::size_t k = 0; k < fuzz::numMutationKinds; ++k) {
        EXPECT_EQ(a.perKind[k], b.perKind[k]) << k;
        EXPECT_EQ(a.perKindTyped[k], b.perKindTyped[k]) << k;
    }
}

TEST(FuzzIo, ApplyMutationReplaysTheEngine)
{
    // applyMutation(good, kind, seed, i) is the documented reproduction
    // recipe for an artifact; it must regenerate the engine's blob.
    const std::string good = goodTraceBlob();
    const std::uint64_t seed = 0xf00dfaceULL;
    for (std::uint64_t i = 0; i < 64; ++i) {
        Rng rng = Rng(seed).fork(i);
        const auto kind = static_cast<fuzz::Mutation>(
            rng.index(fuzz::numMutationKinds));
        const std::string blob = fuzz::applyMutation(good, kind, seed, i);
        EXPECT_EQ(blob, fuzz::applyMutation(good, kind, seed, i)) << i;
    }
}

TEST(FuzzIo, ResealProducesStructurallyReachablePayloads)
{
    // A resealed single-byte change must get past magic/version/size/
    // checksum, i.e. if it throws, it throws with a payload offset.
    std::string blob = goodTraceBlob();
    blob[blob.size() - 1] = static_cast<char>(blob[blob.size() - 1] + 1);
    fuzz::resealFramed(blob);
    std::istringstream iss(blob, std::ios::binary);
    try {
        const Trace t = readTrace(iss);
        (void)t;
    } catch (const TraceIoError &e) {
        EXPECT_GE(e.byteOffset(), 0);
    }
}

TEST(FuzzIo, ResealIsIdempotentOnGoodBlobs)
{
    const std::string good = goodSubsetBlob();
    std::string resealed = good;
    fuzz::resealFramed(resealed);
    EXPECT_EQ(resealed, good);
}

} // namespace
} // namespace gws
