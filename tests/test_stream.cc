/**
 * @file
 * Bit-identity tests of the out-of-core streaming sweep path: a
 * StreamingWorkTrace must hand back chunks bitwise equal to the
 * corresponding rows of the flattened WorkTrace (on the build pass
 * and again when re-loaded from the gws.wtrc.v1 spill file), and
 * retimeAllStreamed must reproduce retimeAll exactly — totals,
 * per-group costs, bottleneck histograms — at every chunk size
 * (1-frame chunks, odd mid-size chunks, one whole-trace chunk) and
 * every thread count. The three rewired studies must produce
 * identical figures on the streamed path under a tiny budget.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "core/energy_study.hh"
#include "core/freq_scaling.hh"
#include "core/pathfinding.hh"
#include "core/subset_pipeline.hh"
#include "core/sweep.hh"
#include "gpusim/draw_work_cache.hh"
#include "gpusim/streaming_work_trace.hh"
#include "gpusim/work_trace.hh"
#include "runtime/runtime.hh"
#include "synth/generator.hh"

namespace gws {
namespace {

/** One CI-scale playthrough shared by every test in this suite. */
const Trace &
testTrace()
{
    static const Trace t =
        GameGenerator(builtinProfile("shock1", SuiteScale::Ci))
            .generate();
    return t;
}

/** The trace's workload subset (built once). */
const WorkloadSubset &
testSubset()
{
    static const WorkloadSubset s =
        buildWorkloadSubset(testTrace(), SubsetConfig{});
    return s;
}

/** The sweep points every retiming test uses. */
std::vector<GpuConfig>
sweepPoints()
{
    return clockSweepConfigs(makeGpuPreset("baseline"),
                             {0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0});
}

bool
sameSweepResult(const SweepResult &a, const SweepResult &b)
{
    return a.configCount == b.configCount &&
           a.groupCount == b.groupCount && a.drawCount == b.drawCount &&
           a.totalNs == b.totalNs && a.groupNs == b.groupNs &&
           a.bottleneckNs == b.bottleneckNs &&
           a.bottleneckCount == b.bottleneckCount && a.drawNs == b.drawNs;
}

/**
 * Budgets that force the three chunk shapes the determinism argument
 * must survive: 1 = one frame per chunk (row budget rounds to zero),
 * an odd mid-size window, and a budget big enough that the whole
 * trace is one chunk.
 */
std::vector<std::size_t>
chunkShapeBudgets(std::size_t total_rows)
{
    return {1, 2 * WorkTrace::residentBytes(total_rows / 7 + 3),
            2 * WorkTrace::residentBytes(total_rows) + (1u << 20)};
}

class StreamTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = runtimeConfig(); }

    void TearDown() override
    {
        setMemBudgetBytes(0);
        setRuntimeConfig(saved);
        shutdownGlobalThreadPool();
    }

    /** Run fn() under an explicit thread count. */
    template <typename Fn>
    auto
    at(std::size_t threads, Fn &&fn)
    {
        RuntimeConfig cfg = saved;
        cfg.threads = threads;
        setRuntimeConfig(cfg);
        return fn();
    }

    RuntimeConfig saved;
};

// ------------------------------------------------------------- layout -----

TEST_F(StreamTest, ChunkLayoutIsFrameAlignedAndExhaustive)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));

    for (const std::size_t budget :
         chunkShapeBudgets(trace.totalDraws())) {
        StreamOptions opt;
        opt.memBudgetBytes = budget;
        StreamingWorkTrace stream(trace, sim, opt);

        ASSERT_GT(stream.chunkCount(), 0u);
        EXPECT_EQ(stream.drawCount(), trace.totalDraws());
        EXPECT_EQ(stream.groupCount(), trace.frameCount());
        EXPECT_EQ(stream.capacityKey(), capacityConfigHash(sim.config()));

        std::size_t next_group = 0;
        std::size_t rows = 0;
        std::size_t max_rows = 0;
        for (std::size_t ci = 0; ci < stream.chunkCount(); ++ci) {
            EXPECT_EQ(stream.chunkFirstGroup(ci), next_group);
            ASSERT_GT(stream.chunkGroupCount(ci), 0u);
            std::size_t chunk_rows = 0;
            for (std::size_t g = 0; g < stream.chunkGroupCount(ci); ++g)
                chunk_rows += trace.frame(next_group + g).drawCount();
            EXPECT_EQ(stream.chunkRows(ci), chunk_rows);
            next_group += stream.chunkGroupCount(ci);
            rows += chunk_rows;
            max_rows = std::max(max_rows, chunk_rows);
        }
        EXPECT_EQ(next_group, trace.frameCount());
        EXPECT_EQ(rows, trace.totalDraws());
        EXPECT_EQ(stream.maxChunkRows(), max_rows);
    }

    // One-frame chunks at the floor budget; one chunk at the ceiling.
    StreamOptions tiny;
    tiny.memBudgetBytes = 1;
    EXPECT_EQ(StreamingWorkTrace(trace, sim, tiny).chunkCount(),
              trace.frameCount());
    StreamOptions huge;
    huge.memBudgetBytes =
        2 * WorkTrace::residentBytes(trace.totalDraws()) + (1u << 20);
    EXPECT_EQ(StreamingWorkTrace(trace, sim, huge).chunkCount(), 1u);
}

// ------------------------------------------------- chunk bit-identity -----

/** Compare every chunk row against the flattened reference trace. */
void
expectChunksMatchFlat(StreamingWorkTrace &stream, const WorkTrace &flat)
{
    stream.forEachChunk([&](std::size_t, std::size_t first_group,
                            const WorkTrace &chunk) {
        const std::size_t base = flat.groupBegin(first_group);
        ASSERT_LE(base + chunk.drawCount(), flat.drawCount());
        for (std::size_t i = 0; i < chunk.drawCount(); ++i) {
            const DrawWork a = chunk.work(i);
            const DrawWork b = flat.work(base + i);
            ASSERT_EQ(a.vertices, b.vertices);
            ASSERT_EQ(a.primitives, b.primitives);
            ASSERT_EQ(a.pixels, b.pixels);
            ASSERT_EQ(a.vertexFetchBytes, b.vertexFetchBytes);
            ASSERT_EQ(a.vsWeightedOps, b.vsWeightedOps);
            ASSERT_EQ(a.psWeightedOps, b.psWeightedOps);
            ASSERT_EQ(a.ropPixels, b.ropPixels);
            ASSERT_EQ(a.traffic.texSamples, b.traffic.texSamples);
            ASSERT_EQ(a.traffic.texL2FillBytes, b.traffic.texL2FillBytes);
            ASSERT_EQ(a.traffic.texDramBytes, b.traffic.texDramBytes);
            ASSERT_EQ(a.traffic.vertexDramBytes,
                      b.traffic.vertexDramBytes);
            ASSERT_EQ(a.traffic.rtDramBytes, b.traffic.rtDramBytes);
        }
    });
}

TEST_F(StreamTest, ChunksMatchFlatTraceOnBuildAndReload)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const WorkTrace flat = buildWorkTrace(trace, sim);

    StreamOptions opt;
    opt.memBudgetBytes =
        2 * WorkTrace::residentBytes(trace.totalDraws() / 5 + 1);
    StreamingWorkTrace stream(trace, sim, opt);
    ASSERT_GT(stream.chunkCount(), 1u);

    // Build pass, then a second pass re-loaded from the spill file:
    // the reconstructed rows (derived columns recomputed via setRow)
    // must be indistinguishable from the spilled ones.
    expectChunksMatchFlat(stream, flat);
    EXPECT_EQ(stream.passCount(), 1u);
    expectChunksMatchFlat(stream, flat);
    EXPECT_EQ(stream.passCount(), 2u);
}

TEST_F(StreamTest, TotalDramBytesMatchesInMemory)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const WorkTrace flat = buildWorkTrace(trace, sim);

    for (const std::size_t budget :
         chunkShapeBudgets(trace.totalDraws())) {
        StreamOptions opt;
        opt.memBudgetBytes = budget;
        StreamingWorkTrace stream(trace, sim, opt);
        EXPECT_EQ(stream.totalDramBytes(), flat.totalDramBytes());
    }
}

TEST_F(StreamTest, SpillFileLifetimeFollowsKeepSpill)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));

    std::string path;
    {
        StreamingWorkTrace stream(trace, sim);
        stream.totalDramBytes();
        path = stream.spillFilePath();
        ASSERT_FALSE(path.empty());
        FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fclose(f);
    }
    EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr);
}

// ------------------------------------------------- sweep bit-identity -----

TEST_F(StreamTest, StreamedSweepMatchesEngineAtEveryChunkSize)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const WorkTrace flat = buildWorkTrace(trace, sim);
    const std::vector<GpuConfig> points = sweepPoints();

    SweepConfig engine_cfg;
    engine_cfg.path = SweepPath::Engine;
    const SweepResult engine = retimeAll(flat, points, engine_cfg);

    SweepConfig streamed_cfg;
    streamed_cfg.path = SweepPath::Streamed;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        for (const std::size_t budget :
             chunkShapeBudgets(trace.totalDraws())) {
            const SweepResult streamed = at(threads, [&] {
                StreamOptions opt;
                opt.memBudgetBytes = budget;
                StreamingWorkTrace stream(trace, sim, opt);
                return retimeAllStreamed(stream, points, streamed_cfg);
            });
            EXPECT_TRUE(sameSweepResult(streamed, engine))
                << "threads=" << threads << " budget=" << budget;
        }
    }
}

TEST_F(StreamTest, StreamedSweepSecondPassIsIdentical)
{
    const Trace &trace = testTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const std::vector<GpuConfig> points = sweepPoints();

    StreamOptions opt;
    opt.memBudgetBytes =
        2 * WorkTrace::residentBytes(trace.totalDraws() / 3 + 1);
    StreamingWorkTrace stream(trace, sim, opt);

    SweepConfig cfg;
    cfg.path = SweepPath::Streamed;
    const SweepResult first = retimeAllStreamed(stream, points, cfg);
    const SweepResult second = retimeAllStreamed(stream, points, cfg);
    EXPECT_GE(stream.passCount(), 2u);
    EXPECT_TRUE(sameSweepResult(first, second));
}

// ------------------------------------------------------ path selection ----

TEST_F(StreamTest, PathSelectionFollowsBudget)
{
    const Trace &trace = testTrace();
    const std::size_t draws = traceDrawCount(trace);
    EXPECT_EQ(draws, trace.totalDraws());

    EXPECT_TRUE(sweepUsesStreamedPath(SweepPath::Streamed, 0));
    EXPECT_FALSE(sweepUsesStreamedPath(SweepPath::Naive, 1u << 30));
    EXPECT_FALSE(sweepUsesStreamedPath(SweepPath::Engine, 1u << 30));

    // Auto follows the budget: a tiny override streams everything, a
    // huge one keeps even this trace in memory.
    setMemBudgetBytes(1);
    EXPECT_TRUE(shouldStreamWorkTrace(draws));
    EXPECT_TRUE(sweepUsesStreamedPath(SweepPath::Auto, draws));
    setMemBudgetBytes(1u << 30);
    EXPECT_FALSE(shouldStreamWorkTrace(draws));
    EXPECT_FALSE(sweepUsesStreamedPath(SweepPath::Auto, draws));
    setMemBudgetBytes(0);
}

// ---------------------------------------------------------------- studies --

TEST_F(StreamTest, FreqScalingStreamedIsBitIdentical)
{
    const Trace &trace = testTrace();
    const WorkloadSubset &subset = testSubset();
    const GpuConfig base = makeGpuPreset("baseline");

    FreqScalingConfig engine_cfg;
    engine_cfg.path = SweepPath::Engine;
    const FreqScalingResult engine =
        runFreqScaling(trace, subset, base, engine_cfg);

    // A tiny budget forces many chunks through the streamed parent
    // sweep; the study's figures must not move a bit.
    setMemBudgetBytes(1u << 20);
    FreqScalingConfig streamed_cfg;
    streamed_cfg.path = SweepPath::Streamed;
    const FreqScalingResult streamed =
        runFreqScaling(trace, subset, base, streamed_cfg);
    setMemBudgetBytes(0);

    EXPECT_EQ(streamed.parentNs, engine.parentNs);
    EXPECT_EQ(streamed.subsetNs, engine.subsetNs);
    EXPECT_EQ(streamed.parentImprovement, engine.parentImprovement);
    EXPECT_EQ(streamed.subsetImprovement, engine.subsetImprovement);
    EXPECT_EQ(streamed.correlation, engine.correlation);
    EXPECT_EQ(streamed.maxImprovementGap, engine.maxImprovementGap);
}

TEST_F(StreamTest, DvfsStreamedIsBitIdentical)
{
    const Trace &trace = testTrace();
    const WorkloadSubset &subset = testSubset();
    const GpuConfig base = makeGpuPreset("baseline");

    DvfsConfig engine_cfg;
    engine_cfg.path = SweepPath::Engine;
    const DvfsResult engine = runDvfsStudy(trace, subset, base, engine_cfg);

    setMemBudgetBytes(1u << 20);
    DvfsConfig streamed_cfg;
    streamed_cfg.path = SweepPath::Streamed;
    const DvfsResult streamed =
        runDvfsStudy(trace, subset, base, streamed_cfg);
    setMemBudgetBytes(0);

    ASSERT_EQ(streamed.points.size(), engine.points.size());
    for (std::size_t i = 0; i < engine.points.size(); ++i) {
        EXPECT_EQ(streamed.points[i].parent.totalJ(),
                  engine.points[i].parent.totalJ());
        EXPECT_EQ(streamed.points[i].parent.energyDelay(),
                  engine.points[i].parent.energyDelay());
        EXPECT_EQ(streamed.points[i].subset.totalJ(),
                  engine.points[i].subset.totalJ());
        EXPECT_EQ(streamed.points[i].subset.energyDelay(),
                  engine.points[i].subset.energyDelay());
    }
    EXPECT_EQ(streamed.parentOptimal, engine.parentOptimal);
    EXPECT_EQ(streamed.subsetOptimal, engine.subsetOptimal);
    EXPECT_EQ(streamed.energyCorrelation, engine.energyCorrelation);
    EXPECT_EQ(streamed.edpCorrelation, engine.edpCorrelation);
}

TEST_F(StreamTest, PathfindingStreamedIsBitIdentical)
{
    const Trace &trace = testTrace();
    const WorkloadSubset &subset = testSubset();
    std::vector<GpuConfig> designs;
    for (const std::string &name : gpuPresetNames())
        designs.push_back(makeGpuPreset(name));

    const PathfindingResult engine =
        runPathfinding(trace, subset, designs, SweepPath::Engine);

    setMemBudgetBytes(1u << 20);
    const PathfindingResult streamed =
        runPathfinding(trace, subset, designs, SweepPath::Streamed);
    setMemBudgetBytes(0);

    ASSERT_EQ(streamed.points.size(), engine.points.size());
    for (std::size_t i = 0; i < engine.points.size(); ++i) {
        EXPECT_EQ(streamed.points[i].parentNs, engine.points[i].parentNs);
        EXPECT_EQ(streamed.points[i].subsetNs, engine.points[i].subsetNs);
        EXPECT_EQ(streamed.points[i].parentSpeedup,
                  engine.points[i].parentSpeedup);
        EXPECT_EQ(streamed.points[i].subsetSpeedup,
                  engine.points[i].subsetSpeedup);
    }
    EXPECT_EQ(streamed.parentRanking, engine.parentRanking);
    EXPECT_EQ(streamed.subsetRanking, engine.subsetRanking);
    EXPECT_EQ(streamed.rankingPreserved, engine.rankingPreserved);
    EXPECT_EQ(streamed.speedupCorrelation, engine.speedupCorrelation);
    EXPECT_EQ(streamed.rankCorrelation, engine.rankCorrelation);
}

} // namespace
} // namespace gws
