/**
 * @file
 * Tests of the clustering library: the Clustering container, k-means
 * invariants (property-tested over sizes and seeds), leader
 * clustering, BIC scoring, k selection, and the quality metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/agglomerative.hh"
#include "cluster/bic.hh"
#include "cluster/kmeans.hh"
#include "cluster/kselect.hh"
#include "cluster/leader.hh"
#include "cluster/quality.hh"
#include "util/rng.hh"

namespace gws {
namespace {

/** n points around k well-separated centers in 2 active dimensions. */
std::vector<FeatureVector>
blobPoints(std::size_t n, std::size_t centers, double spread,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<FeatureVector> points;
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<double>(i % centers);
        FeatureVector v;
        v[FeatureDim::LogPixels] = 10.0 * c + rng.normal(0.0, spread);
        v[FeatureDim::LogVertices] =
            -10.0 * c + rng.normal(0.0, spread);
        points.push_back(v);
    }
    return points;
}

// -------------------------------------------------------------- container --

TEST(Clustering, EfficiencyFormula)
{
    Clustering c;
    c.k = 3;
    c.assignment = {0, 0, 1, 1, 2, 2, 0, 1, 2, 0};
    EXPECT_DOUBLE_EQ(c.efficiency(), 1.0 - 3.0 / 10.0);
}

TEST(Clustering, MembersAndSizes)
{
    Clustering c;
    c.k = 2;
    c.assignment = {0, 1, 0, 1, 1};
    const auto m0 = c.members(0);
    EXPECT_EQ(m0, (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(c.sizes(), (std::vector<std::size_t>{2, 3}));
}

TEST(Clustering, ValidateCatchesBadRep)
{
    Clustering c;
    c.k = 1;
    c.assignment = {0, 0};
    c.centroids.assign(1, FeatureVector());
    c.representatives = {5}; // out of range
    EXPECT_DEATH(c.validate(), "out of range");
}

// ----------------------------------------------------------------- kmeans --

struct KMeansCase
{
    std::size_t n;
    std::size_t k;
    std::uint64_t seed;
    KMeansInit init;
};

class KMeansInvariants : public ::testing::TestWithParam<KMeansCase>
{
};

TEST_P(KMeansInvariants, StructureAndOptimality)
{
    const auto &c = GetParam();
    const auto points = blobPoints(c.n, 4, 0.5, c.seed);
    KMeansConfig cfg;
    cfg.k = c.k;
    cfg.seed = c.seed;
    cfg.init = c.init;
    const Clustering result = kmeans(points, cfg);
    result.validate();
    EXPECT_EQ(result.items(), c.n);
    EXPECT_EQ(result.k, std::min(c.k, c.n));

    // Lloyd fixed point: every point is assigned to its nearest
    // centroid, and each centroid is the mean of its members.
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double own = points[i].squaredDistance(
            result.centroids[result.assignment[i]]);
        for (std::size_t cl = 0; cl < result.k; ++cl)
            ASSERT_GE(points[i].squaredDistance(result.centroids[cl]),
                      own - 1e-9);
    }
    for (std::size_t cl = 0; cl < result.k; ++cl) {
        const auto members = result.members(cl);
        FeatureVector mean;
        for (std::size_t m : members) {
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                mean.at(d) += points[m].at(d);
        }
        for (std::size_t d = 0; d < numFeatureDims; ++d) {
            mean.at(d) /= static_cast<double>(members.size());
            ASSERT_NEAR(mean.at(d), result.centroids[cl].at(d), 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesSeedsInits, KMeansInvariants,
    ::testing::Values(KMeansCase{40, 4, 1, KMeansInit::PlusPlus},
                      KMeansCase{40, 4, 2, KMeansInit::Random},
                      KMeansCase{100, 8, 3, KMeansInit::PlusPlus},
                      KMeansCase{7, 10, 4, KMeansInit::PlusPlus},
                      KMeansCase{1, 1, 5, KMeansInit::PlusPlus},
                      KMeansCase{64, 1, 6, KMeansInit::Random},
                      KMeansCase{200, 16, 7, KMeansInit::PlusPlus},
                      KMeansCase{50, 50, 8, KMeansInit::Random}));

TEST(KMeans, RecoversWellSeparatedBlobs)
{
    const auto points = blobPoints(120, 4, 0.2, 99);
    KMeansConfig cfg;
    cfg.k = 4;
    cfg.restarts = 3;
    const Clustering c = kmeans(points, cfg);
    // All points of one blob (i % 4) must share a cluster.
    for (std::size_t i = 0; i < points.size(); ++i)
        ASSERT_EQ(c.assignment[i], c.assignment[i % 4]);
}

TEST(KMeans, DeterministicForSameSeed)
{
    const auto points = blobPoints(60, 3, 1.0, 11);
    KMeansConfig cfg;
    cfg.k = 5;
    cfg.seed = 42;
    const Clustering a = kmeans(points, cfg);
    const Clustering b = kmeans(points, cfg);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.representatives, b.representatives);
}

TEST(KMeans, DuplicatePointsDoNotCrash)
{
    std::vector<FeatureVector> points(20); // all identical zeros
    KMeansConfig cfg;
    cfg.k = 4;
    const Clustering c = kmeans(points, cfg);
    c.validate();
    EXPECT_EQ(c.items(), 20u);
}

TEST(KMeans, MoreRestartsNeverWorse)
{
    const auto points = blobPoints(150, 6, 2.0, 5);
    KMeansConfig one;
    one.k = 6;
    one.restarts = 1;
    KMeansConfig many = one;
    many.restarts = 5;
    const double i1 = kmeans(points, one).inertia(points);
    const double i5 = kmeans(points, many).inertia(points);
    EXPECT_LE(i5, i1 + 1e-9);
}

// ----------------------------------------------------------------- leader --

TEST(Leader, ZeroRadiusMakesSingletonsPerDistinctPoint)
{
    auto points = blobPoints(12, 3, 0.0, 1); // 3 distinct locations
    LeaderConfig cfg;
    cfg.radius = 0.0;
    const Clustering c = leaderCluster(points, cfg);
    c.validate();
    EXPECT_EQ(c.k, 3u);
}

TEST(Leader, HugeRadiusMakesOneCluster)
{
    const auto points = blobPoints(50, 4, 1.0, 2);
    LeaderConfig cfg;
    cfg.radius = 1e6;
    const Clustering c = leaderCluster(points, cfg);
    EXPECT_EQ(c.k, 1u);
    EXPECT_DOUBLE_EQ(c.efficiency(), 1.0 - 1.0 / 50.0);
}

TEST(Leader, SeparatedBlobsYieldOneClusterEach)
{
    const auto points = blobPoints(80, 4, 0.1, 3);
    LeaderConfig cfg;
    cfg.radius = 3.0; // far below the 10+ blob separation
    const Clustering c = leaderCluster(points, cfg);
    EXPECT_EQ(c.k, 4u);
    for (std::size_t i = 0; i < points.size(); ++i)
        ASSERT_EQ(c.assignment[i], c.assignment[i % 4]);
}

TEST(Leader, SmallerRadiusNeverFewerClusters)
{
    const auto points = blobPoints(100, 5, 1.5, 4);
    LeaderConfig wide, narrow;
    wide.radius = 4.0;
    narrow.radius = 1.0;
    EXPECT_GE(leaderCluster(points, narrow).k,
              leaderCluster(points, wide).k);
}

TEST(Leader, RefinementNeverIncreasesInertia)
{
    const auto points = blobPoints(90, 4, 2.5, 6);
    LeaderConfig raw, refined;
    raw.radius = refined.radius = 2.0;
    raw.refine = false;
    refined.refine = true;
    const double i_raw = leaderCluster(points, raw).inertia(points);
    const double i_ref = leaderCluster(points, refined).inertia(points);
    EXPECT_LE(i_ref, i_raw + 1e-9);
}

TEST(Leader, DeterministicAndOrderDependent)
{
    const auto points = blobPoints(40, 3, 1.0, 7);
    LeaderConfig cfg;
    cfg.radius = 1.0;
    const Clustering a = leaderCluster(points, cfg);
    const Clustering b = leaderCluster(points, cfg);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Leader, SinglePoint)
{
    const Clustering c = leaderCluster({FeatureVector()}, LeaderConfig{});
    EXPECT_EQ(c.k, 1u);
    EXPECT_EQ(c.representatives[0], 0u);
}

// ---------------------------------------------------------- agglomerative --

TEST(Agglomerative, TargetKProducesExactlyK)
{
    const auto points = blobPoints(60, 4, 0.8, 21);
    AgglomerativeConfig cfg;
    cfg.targetK = 7;
    const Clustering c = agglomerativeCluster(points, cfg);
    c.validate();
    EXPECT_EQ(c.k, 7u);
}

TEST(Agglomerative, ThresholdRecoversSeparatedBlobs)
{
    const auto points = blobPoints(80, 4, 0.2, 22);
    AgglomerativeConfig cfg;
    cfg.distanceThreshold = 4.0; // way below the ~14 blob separation
    const Clustering c = agglomerativeCluster(points, cfg);
    EXPECT_EQ(c.k, 4u);
    for (std::size_t i = 0; i < points.size(); ++i)
        ASSERT_EQ(c.assignment[i], c.assignment[i % 4]);
}

TEST(Agglomerative, HugeThresholdMergesEverything)
{
    const auto points = blobPoints(30, 3, 1.0, 23);
    AgglomerativeConfig cfg;
    cfg.distanceThreshold = 1e9;
    EXPECT_EQ(agglomerativeCluster(points, cfg).k, 1u);
}

TEST(Agglomerative, ZeroThresholdKeepsDistinctPointsApart)
{
    const auto points = blobPoints(12, 3, 0.0, 24); // 3 distinct spots
    AgglomerativeConfig cfg;
    cfg.distanceThreshold = 0.0;
    const Clustering c = agglomerativeCluster(points, cfg);
    // Coincident points merge at distance 0; distinct ones stay apart.
    EXPECT_EQ(c.k, 3u);
}

TEST(Agglomerative, OrderIndependent)
{
    // Reversing the input must yield the same partition (up to
    // relabeling) — the property leader clustering lacks.
    const auto points = blobPoints(40, 4, 0.5, 25);
    std::vector<FeatureVector> reversed(points.rbegin(), points.rend());
    AgglomerativeConfig cfg;
    cfg.distanceThreshold = 3.0;
    const Clustering a = agglomerativeCluster(points, cfg);
    const Clustering b = agglomerativeCluster(reversed, cfg);
    ASSERT_EQ(a.k, b.k);
    const std::size_t n = points.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            ASSERT_EQ(a.assignment[i] == a.assignment[j],
                      b.assignment[n - 1 - i] == b.assignment[n - 1 - j])
                << "pair (" << i << "," << j << ")";
        }
    }
}

TEST(Agglomerative, SinglePoint)
{
    const Clustering c =
        agglomerativeCluster({FeatureVector()}, AgglomerativeConfig{});
    EXPECT_EQ(c.k, 1u);
    EXPECT_EQ(c.representatives[0], 0u);
}

TEST(Agglomerative, MatchesKMeansQualityOnBlobs)
{
    // On well-separated blobs, hierarchical and k-means agree.
    const auto points = blobPoints(100, 5, 0.3, 26);
    AgglomerativeConfig ac;
    ac.targetK = 5;
    KMeansConfig kc;
    kc.k = 5;
    kc.restarts = 3;
    const double ia = agglomerativeCluster(points, ac).inertia(points);
    const double ik = kmeans(points, kc).inertia(points);
    EXPECT_NEAR(ia, ik, ik * 0.05 + 1e-9);
}

// -------------------------------------------------------------------- BIC --

TEST(Bic, KneeSitsAtTrueK)
{
    // The BIC curve over k is quasi-monotone (which is exactly why
    // SimPoint picks the smallest k reaching a fraction of the best
    // score rather than the argmax); its *knee* must sit at the true
    // blob count: huge gains up to k=4, marginal gains after.
    const auto points = blobPoints(200, 4, 0.3, 10);
    std::vector<double> score(10, 0.0);
    for (std::size_t k = 1; k <= 9; ++k) {
        KMeansConfig cfg;
        cfg.k = k;
        cfg.restarts = 3;
        score[k] = bicScore(kmeans(points, cfg), points);
    }
    const double gain_to_true = score[4] - score[3];
    const double gain_past_true = score[5] - score[4];
    EXPECT_GT(gain_to_true, 10.0 * std::max(gain_past_true, 1.0));
}

TEST(Bic, PenalizesSaturatedOverfitting)
{
    // At k = n the likelihood saturates and only the parameter
    // penalty remains: a sane clustering must score higher.
    const auto points = blobPoints(60, 2, 0.3, 11);
    KMeansConfig c2, cn;
    c2.k = 2;
    cn.k = 60;
    EXPECT_GT(bicScore(kmeans(points, c2), points),
              bicScore(kmeans(points, cn), points));
}

TEST(Bic, EmptyPointsIsMinusInfinity)
{
    Clustering c;
    EXPECT_EQ(bicScore(c, {}),
              -std::numeric_limits<double>::infinity());
}

// ----------------------------------------------------------------- kselect --

TEST(KSelect, FindsTrueKWithinOne)
{
    const auto points = blobPoints(160, 4, 0.3, 12);
    KSelectConfig cfg;
    cfg.maxK = 10;
    cfg.base.restarts = 3;
    const KSelectResult r = selectK(points, cfg);
    EXPECT_GE(r.chosenK, 3u);
    EXPECT_LE(r.chosenK, 5u);
    EXPECT_EQ(r.clustering.k, r.chosenK);
    EXPECT_EQ(r.triedK.size(), r.bicByK.size());
    r.clustering.validate();
}

TEST(KSelect, StepSkipsKs)
{
    const auto points = blobPoints(60, 3, 0.5, 13);
    KSelectConfig cfg;
    cfg.maxK = 9;
    cfg.step = 2;
    const KSelectResult r = selectK(points, cfg);
    EXPECT_EQ(r.triedK, (std::vector<std::size_t>{1, 3, 5, 7, 9}));
}

TEST(KSelect, LowerFractionPicksSmallerOrEqualK)
{
    const auto points = blobPoints(100, 5, 1.2, 14);
    KSelectConfig strict, loose;
    strict.maxK = loose.maxK = 12;
    strict.bicFraction = 0.95;
    loose.bicFraction = 0.5;
    EXPECT_LE(selectK(points, loose).chosenK,
              selectK(points, strict).chosenK);
}

// ----------------------------------------------------------------- quality --

Clustering
twoClusterFixture()
{
    Clustering c;
    c.k = 2;
    c.assignment = {0, 0, 0, 1, 1};
    c.representatives = {0, 3};
    c.centroids.assign(2, FeatureVector());
    return c;
}

TEST(Quality, UniformPredictionErrors)
{
    const Clustering c = twoClusterFixture();
    // Cluster 0: rep cost 10, members {10, 12, 8} -> errors 0, 2/12, 2/8.
    // Cluster 1: rep cost 100, members {100, 100} -> error 0.
    const std::vector<double> costs{10, 12, 8, 100, 100};
    const ClusterQuality q = assessClusterQuality(c, costs);
    ASSERT_EQ(q.intraError.size(), 2u);
    EXPECT_NEAR(q.intraError[0], (0.0 + 2.0 / 12 + 2.0 / 8) / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(q.intraError[1], 0.0);
    EXPECT_EQ(q.outliers, 0u);
    EXPECT_DOUBLE_EQ(q.outlierFraction, 0.0);
}

TEST(Quality, OutlierDetectionAtThreshold)
{
    const Clustering c = twoClusterFixture();
    // Cluster 0 error: rep 10 vs member 20 -> 0.5 mean over 3 members.
    const std::vector<double> costs{10, 20, 20, 100, 100};
    const ClusterQuality q = assessClusterQuality(c, costs);
    EXPECT_EQ(q.outliers, 1u);
    EXPECT_DOUBLE_EQ(q.outlierFraction, 0.5);
}

TEST(Quality, WorkScaledPerfectWhenCostProportionalToWork)
{
    const Clustering c = twoClusterFixture();
    const std::vector<double> costs{10, 20, 5, 100, 300};
    const std::vector<double> work{1, 2, 0.5, 10, 30};
    const ClusterQuality q = assessClusterQuality(
        c, costs, PredictionMode::WorkScaled, work);
    EXPECT_NEAR(q.meanIntraError, 0.0, 1e-12);
    EXPECT_EQ(q.outliers, 0u);
}

TEST(Quality, PredictItemCostsUniform)
{
    const Clustering c = twoClusterFixture();
    const auto p = predictItemCosts(c, {10.0, 100.0},
                                    PredictionMode::Uniform);
    EXPECT_EQ(p, (std::vector<double>{10, 10, 10, 100, 100}));
}

TEST(Quality, PredictItemCostsWorkScaled)
{
    const Clustering c = twoClusterFixture();
    const std::vector<double> work{1, 2, 0.5, 10, 30};
    const auto p = predictItemCosts(c, {10.0, 100.0},
                                    PredictionMode::WorkScaled, work);
    EXPECT_DOUBLE_EQ(p[1], 20.0);
    EXPECT_DOUBLE_EQ(p[2], 5.0);
    EXPECT_DOUBLE_EQ(p[4], 300.0);
}

TEST(Quality, ModeNames)
{
    EXPECT_STREQ(toString(PredictionMode::Uniform), "uniform");
    EXPECT_STREQ(toString(PredictionMode::WorkScaled), "work_scaled");
}

} // namespace
} // namespace gws
