/**
 * @file
 * Unit tests for the util substrate: RNG, statistics, strings, tables,
 * and the argument parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <cstdlib>

#include "obs/obs.hh"
#include "util/args.hh"
#include "util/codec.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace gws {
namespace {

// ---------------------------------------------------------------- RNG --

TEST(SplitMix64, KnownSequenceIsDeterministic)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.5, 9.25);
        ASSERT_GE(u, -3.5);
        ASSERT_LT(u, 9.25);
    }
}

TEST(Rng, UniformIntCoversFullRangeInclusive)
{
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.uniformInt(0, 5));
    EXPECT_EQ(seen.size(), 6u);
    EXPECT_TRUE(seen.count(0));
    EXPECT_TRUE(seen.count(5));
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(4);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(17, 17), 17);
}

TEST(Rng, UniformIntMeanIsCentered)
{
    Rng rng(5);
    double sum = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.uniformInt(0, 100));
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, BernoulliEdges)
{
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng rng(7);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(8);
    SummaryStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LogNormalMedianIsExpMu)
{
    Rng rng(9);
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i)
        xs.push_back(rng.logNormal(1.0, 0.5));
    EXPECT_NEAR(percentile(xs, 50.0), std::exp(1.0), 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate)
{
    Rng rng(10);
    SummaryStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.exponential(4.0));
    EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ParetoRespectsMinimum)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(12);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonMeanMatchesSmall)
{
    Rng rng(13);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(2.5));
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonMeanMatchesLargeViaNormalApprox)
{
    Rng rng(14);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(80.0));
    EXPECT_NEAR(sum / n, 80.0, 0.5);
}

TEST(Rng, IndexAlwaysInRange)
{
    Rng rng(15);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(rng.index(7), 7u);
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked)
{
    Rng rng(16);
    const std::vector<double> w{0.0, 1.0, 0.0, 2.0};
    for (int i = 0; i < 2000; ++i) {
        const std::size_t pick = rng.weightedIndex(w);
        ASSERT_TRUE(pick == 1 || pick == 3);
    }
}

TEST(Rng, WeightedIndexProportions)
{
    Rng rng(17);
    const std::vector<double> w{1.0, 3.0};
    int count1 = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        count1 += rng.weightedIndex(w) == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.01);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng rng(18);
    const auto perm = rng.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(perm.size(), 100u);
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne)
{
    Rng rng(19);
    EXPECT_TRUE(rng.permutation(0).empty());
    const auto one = rng.permutation(1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 0u);
}

TEST(Rng, ForkIsDeterministicAndIndependent)
{
    Rng parent(20);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    Rng c1_again = Rng(20).fork(1);
    EXPECT_EQ(c1.nextU64(), c1_again.nextU64());
    EXPECT_NE(c1.nextU64(), c2.nextU64());
}

TEST(Rng, ForkDoesNotPerturbParent)
{
    Rng a(21), b(21);
    (void)a.fork(5);
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

// ---------------------------------------------------------------- stats --

TEST(SummaryStats, EmptyIsAllZero)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(SummaryStats, SingleSample)
{
    SummaryStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, KnownMoments)
{
    SummaryStats s;
    s.addAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, SampleVarianceUsesNMinusOne)
{
    SummaryStats s;
    s.addAll({1.0, 3.0});
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 2.0);
}

TEST(Stats, MeanAndStddevOfVector)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0,
                1e-12);
}

TEST(Stats, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({4.0, 4.0, 4.0}), 4.0, 1e-12);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs{4.0, 1.0, 3.0, 2.0}; // unsorted on purpose
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile({5.0}, 75.0), 5.0);
}

TEST(Stats, PearsonPerfectCorrelations)
{
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
    std::vector<double> neg(y.rbegin(), y.rend());
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Stats, PearsonInvariantToAffineTransform)
{
    const std::vector<double> x{1.0, 5.0, 2.0, 8.0, 3.0};
    const std::vector<double> y{2.0, 4.0, 3.0, 9.0, 1.0};
    std::vector<double> y2;
    for (double v : y)
        y2.push_back(3.0 * v + 7.0);
    EXPECT_NEAR(pearson(x, y), pearson(x, y2), 1e-12);
}

TEST(Stats, RanksHandleTies)
{
    const auto r = ranks({10.0, 20.0, 20.0, 30.0});
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotoneNonlinearIsOne)
{
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
    std::vector<double> y;
    for (double v : x)
        y.push_back(std::exp(v)); // monotone but nonlinear
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(9.9);   // bin 4
    h.add(-3.0);  // clamped to bin 0
    h.add(42.0);  // clamped to bin 4
    h.add(5.0);   // bin 2
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.binLo(2), 4.0);
    EXPECT_DOUBLE_EQ(h.binHi(2), 6.0);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.4);
}

// --------------------------------------------------------------- strings --

TEST(Strings, SplitAndJoinRoundTrip)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Strings, TrimAndLower)
{
    EXPECT_EQ(trim("  Hello \t\n"), "Hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(toLower("MiXeD"), "mixed");
}

TEST(Strings, PrefixSuffix)
{
    EXPECT_TRUE(startsWith("gws_trace", "gws"));
    EXPECT_FALSE(startsWith("g", "gws"));
    EXPECT_TRUE(endsWith("trace.cc", ".cc"));
    EXPECT_FALSE(endsWith("cc", "trace.cc"));
}

TEST(Strings, HumanBytesAndCount)
{
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(1536), "1.5 KiB");
    EXPECT_EQ(humanBytes(3.0 * 1024 * 1024), "3.0 MiB");
    EXPECT_EQ(humanCount(999), "999");
    EXPECT_EQ(humanCount(828000), "828.0K");
    EXPECT_EQ(humanCount(2.5e6), "2.5M");
}

TEST(Strings, FormatHelpers)
{
    EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
    EXPECT_EQ(formatPercent(0.658, 1), "65.8%");
}

// ----------------------------------------------------------------- table --

TEST(Table, CellStorageAndAccess)
{
    Table t({"name", "value", "pct"});
    t.newRow();
    t.cell(std::string("shock1"));
    t.cell(static_cast<std::size_t>(42));
    t.cellPercent(0.658);
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.at(0, 0), "shock1");
    EXPECT_EQ(t.at(0, 1), "42");
    EXPECT_EQ(t.at(0, 2), "65.8");
}

TEST(Table, AsciiRenderAlignsColumns)
{
    Table t({"a", "longheader"});
    t.newRow();
    t.cell(std::string("x"));
    t.cell(std::string("y"));
    const std::string out = t.renderAscii();
    EXPECT_NE(out.find("a  longheader"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, MarkdownRenderHasSeparatorRow)
{
    Table t({"h1", "h2"});
    t.newRow();
    t.cell(1.5, 1);
    t.cell(2.0, 1);
    const std::string out = t.renderMarkdown();
    EXPECT_NE(out.find("| h1 | h2 |"), std::string::npos);
    EXPECT_NE(out.find("|---|---|"), std::string::npos);
    EXPECT_NE(out.find("| 1.5 | 2.0 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"k", "v"});
    t.newRow();
    t.cell(std::string("a,b"));
    t.cell(std::string("say \"hi\""));
    const std::string out = t.renderCsv();
    EXPECT_NE(out.find("\"a,b\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

// ------------------------------------------------------------------ args --

TEST(Args, DefaultsApplyWithoutFlags)
{
    ArgParser p("prog", "test");
    p.addString("scale", "ci", "suite scale");
    p.addInt("frames", 72, "frame count");
    p.addDouble("radius", 0.9, "cluster radius");
    p.addFlag("verbose", "chatty output");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(p.parse(1, argv));
    EXPECT_EQ(p.getString("scale"), "ci");
    EXPECT_EQ(p.getInt("frames"), 72);
    EXPECT_DOUBLE_EQ(p.getDouble("radius"), 0.9);
    EXPECT_FALSE(p.getFlag("verbose"));
}

TEST(Args, EqualsAndSpaceForms)
{
    ArgParser p("prog", "test");
    p.addString("scale", "ci", "");
    p.addInt("frames", 1, "");
    const char *argv[] = {"prog", "--scale=paper", "--frames", "717"};
    ASSERT_TRUE(p.parse(4, argv));
    EXPECT_EQ(p.getString("scale"), "paper");
    EXPECT_EQ(p.getInt("frames"), 717);
}

TEST(Args, FlagSetsTrue)
{
    ArgParser p("prog", "test");
    p.addFlag("verbose", "");
    const char *argv[] = {"prog", "--verbose"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_TRUE(p.getFlag("verbose"));
}

TEST(Args, HelpReturnsFalse)
{
    ArgParser p("prog", "test");
    p.addInt("n", 3, "count");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(p.parse(2, argv));
    EXPECT_NE(p.usage().find("--n"), std::string::npos);
    EXPECT_NE(p.usage().find("count"), std::string::npos);
}

TEST(Args, NegativeNumbersParse)
{
    ArgParser p("prog", "test");
    p.addInt("i", 0, "");
    p.addDouble("d", 0.0, "");
    const char *argv[] = {"prog", "--i=-5", "--d=-2.5"};
    ASSERT_TRUE(p.parse(3, argv));
    EXPECT_EQ(p.getInt("i"), -5);
    EXPECT_DOUBLE_EQ(p.getDouble("d"), -2.5);
}

TEST(Args, SpaceFormRejectsOptionLikeValue)
{
    // "--trace-out --threads 4" must not silently eat "--threads" as
    // the filename; the parser rejects an option-shaped value in the
    // space form with a hint to use --name=value.
    ArgParser p("prog", "test");
    p.addString("trace-out", "", "");
    p.addInt("threads", 0, "");
    const char *argv[] = {"prog", "--trace-out", "--threads", "4"};
    EXPECT_EXIT(p.parse(4, argv), ::testing::ExitedWithCode(1),
                "needs a value");
}

TEST(Args, EqualsFormAcceptsDashValue)
{
    // The escape hatch: --name=--literal still works.
    ArgParser p("prog", "test");
    p.addString("trace-out", "", "");
    const char *argv[] = {"prog", "--trace-out=--odd-filename"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_EQ(p.getString("trace-out"), "--odd-filename");
}

TEST(Args, MissingValueAtEndOfLineIsFatal)
{
    ArgParser p("prog", "test");
    p.addString("scale", "ci", "");
    const char *argv[] = {"prog", "--scale"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "needs a value");
}

TEST(Args, IntGarbageIsFatal)
{
    ArgParser p("prog", "test");
    p.addInt("frames", 1, "");
    const char *argv[] = {"prog", "--frames=lots"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "wants an integer");
}

TEST(Args, IntOverflowIsFatal)
{
    // strtoll saturates with ERANGE; a silently-clamped value must not
    // reach the program.
    ArgParser p("prog", "test");
    p.addInt("frames", 1, "");
    const char *argv[] = {"prog", "--frames=99999999999999999999"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "overflows");
}

TEST(Args, DoubleOverflowIsFatal)
{
    ArgParser p("prog", "test");
    p.addDouble("radius", 1.0, "");
    const char *argv[] = {"prog", "--radius=1e999"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "overflows");
}

TEST(Args, UnknownOptionIsFatal)
{
    ArgParser p("prog", "test");
    const char *argv[] = {"prog", "--nope"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(Args, PositionalArgumentIsFatal)
{
    ArgParser p("prog", "test");
    const char *argv[] = {"prog", "stray"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "positional");
}

// -------------------------------------------------------------------- env --

TEST(Env, BoolParsesWordsAndIntegers)
{
    ::setenv("GWS_TEST_BOOL", "yes", 1);
    EXPECT_TRUE(envBool("GWS_TEST_BOOL", false));
    ::setenv("GWS_TEST_BOOL", "OFF", 1);
    EXPECT_FALSE(envBool("GWS_TEST_BOOL", true));
    ::setenv("GWS_TEST_BOOL", " true ", 1);
    EXPECT_TRUE(envBool("GWS_TEST_BOOL", false));
    ::setenv("GWS_TEST_BOOL", "0", 1);
    EXPECT_FALSE(envBool("GWS_TEST_BOOL", true));
    ::setenv("GWS_TEST_BOOL", "2", 1);
    EXPECT_TRUE(envBool("GWS_TEST_BOOL", false));
    ::unsetenv("GWS_TEST_BOOL");
}

TEST(Env, BoolUnsetOrEmptyUsesFallback)
{
    ::unsetenv("GWS_TEST_BOOL");
    EXPECT_TRUE(envBool("GWS_TEST_BOOL", true));
    EXPECT_FALSE(envBool("GWS_TEST_BOOL", false));
    ::setenv("GWS_TEST_BOOL", "", 1);
    EXPECT_TRUE(envBool("GWS_TEST_BOOL", true));
    ::unsetenv("GWS_TEST_BOOL");
}

TEST(Env, BoolGarbageWarnsAndFallsBack)
{
    // The regression this utility exists for: GWS_DRAW_CACHE=yes went
    // through atoi and silently became 0. Garbage now warns (visible
    // in gws.warnings) and keeps the default.
    ::setenv("GWS_TEST_BOOL", "maybe", 1);
    const int before = warnCount();
    EXPECT_TRUE(envBool("GWS_TEST_BOOL", true));
    EXPECT_EQ(warnCount(), before + 1);
    ::unsetenv("GWS_TEST_BOOL");
}

TEST(Env, SizeParsesAndTrims)
{
    ::setenv("GWS_TEST_SIZE", " 4096 ", 1);
    EXPECT_EQ(envSize("GWS_TEST_SIZE", 7), 4096u);
    ::unsetenv("GWS_TEST_SIZE");
    EXPECT_EQ(envSize("GWS_TEST_SIZE", 7), 7u);
}

TEST(Env, StringTrimsAndFallsBack)
{
    ::setenv("GWS_TEST_STRING", " greedy ", 1);
    EXPECT_EQ(envString("GWS_TEST_STRING", "balanced"), "greedy");
    ::setenv("GWS_TEST_STRING", "   ", 1);
    EXPECT_EQ(envString("GWS_TEST_STRING", "balanced"), "balanced");
    ::unsetenv("GWS_TEST_STRING");
    EXPECT_EQ(envString("GWS_TEST_STRING", "balanced"), "balanced");
}

TEST(Env, DoubleParsesAndTrims)
{
    ::setenv("GWS_TEST_DOUBLE", " 0.95 ", 1);
    EXPECT_DOUBLE_EQ(envDouble("GWS_TEST_DOUBLE", 0.5), 0.95);
    ::setenv("GWS_TEST_DOUBLE", "2", 1);
    EXPECT_DOUBLE_EQ(envDouble("GWS_TEST_DOUBLE", 0.5), 2.0);
    ::unsetenv("GWS_TEST_DOUBLE");
    EXPECT_DOUBLE_EQ(envDouble("GWS_TEST_DOUBLE", 0.5), 0.5);
}

TEST(Env, DoubleRejectsGarbageAndNonFinite)
{
    const int before = warnCount();
    ::setenv("GWS_TEST_DOUBLE", "lots", 1);
    EXPECT_DOUBLE_EQ(envDouble("GWS_TEST_DOUBLE", 0.5), 0.5);
    ::setenv("GWS_TEST_DOUBLE", "0.9x", 1);
    EXPECT_DOUBLE_EQ(envDouble("GWS_TEST_DOUBLE", 0.5), 0.5);
    ::setenv("GWS_TEST_DOUBLE", "inf", 1);
    EXPECT_DOUBLE_EQ(envDouble("GWS_TEST_DOUBLE", 0.5), 0.5);
    ::setenv("GWS_TEST_DOUBLE", "nan", 1);
    EXPECT_DOUBLE_EQ(envDouble("GWS_TEST_DOUBLE", 0.5), 0.5);
    EXPECT_EQ(warnCount(), before + 4);
    ::unsetenv("GWS_TEST_DOUBLE");
}

TEST(Env, SizeRejectsGarbageNegativeAndOverflow)
{
    const int before = warnCount();
    ::setenv("GWS_TEST_SIZE", "many", 1);
    EXPECT_EQ(envSize("GWS_TEST_SIZE", 7), 7u);
    ::setenv("GWS_TEST_SIZE", "-4", 1);
    EXPECT_EQ(envSize("GWS_TEST_SIZE", 7), 7u);
    ::setenv("GWS_TEST_SIZE", "99999999999999999999999", 1);
    EXPECT_EQ(envSize("GWS_TEST_SIZE", 7), 7u);
    ::setenv("GWS_TEST_SIZE", "12cores", 1);
    EXPECT_EQ(envSize("GWS_TEST_SIZE", 7), 7u);
    EXPECT_EQ(warnCount(), before + 4);
    ::unsetenv("GWS_TEST_SIZE");
}

// ---------------------------------------------------------------- logging --

TEST(Logging, WarnIncrementsCounter)
{
    const int before = warnCount();
    GWS_WARN("test warning ", 42);
    EXPECT_EQ(warnCount(), before + 1);
}

TEST(Logging, WarnFeedsObservability)
{
    // Warnings must surface in both observability sinks: the
    // gws.warnings counter (--metrics-out) and, while the tracer
    // records, an instant event carrying the message (--trace-out).
    obs::Counter &warnings =
        obs::metricsRegistry().counter("gws.warnings");
    const std::uint64_t before = warnings.value();

    obs::traceBegin();
    GWS_WARN("observable warning ", 7);
    obs::traceEnd();

    EXPECT_EQ(warnings.value(), before + 1);
    bool found = false;
    for (const auto &e : obs::traceSnapshot())
        if (e.phase == obs::TracePhase::Instant && e.name == "warn" &&
            e.detail.find("observable warning 7") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Codec, PayloadCapFromRawPassesPlausibleValues)
{
    EXPECT_EQ(framedPayloadCapFromRaw(1), 1u);
    EXPECT_EQ(framedPayloadCapFromRaw(4096), 4096u);
    EXPECT_EQ(framedPayloadCapFromRaw(maxFramedPayloadBytes),
              maxFramedPayloadBytes);
}

TEST(Codec, PayloadCapFromRawZeroFallsBackToDefault)
{
    // GWS_MAX_PAYLOAD=0 would reject every payload; it warns and
    // keeps the default instead.
    const int before = warnCount();
    EXPECT_EQ(framedPayloadCapFromRaw(0), maxFramedPayloadBytes);
    EXPECT_EQ(warnCount(), before + 1);
}

TEST(Codec, PayloadCapFromRawClampsToU32)
{
    const int before = warnCount();
    EXPECT_EQ(framedPayloadCapFromRaw(1ull << 40), 0xffffffffu);
    EXPECT_EQ(warnCount(), before + 1);
}

TEST(Logging, AssertDeathOnViolation)
{
    EXPECT_DEATH(GWS_ASSERT(1 == 2, "impossible"), "assertion failed");
}

TEST(Logging, PanicDeath)
{
    EXPECT_DEATH(GWS_PANIC("boom ", 7), "boom 7");
}

} // namespace
} // namespace gws
