/**
 * @file
 * Chunked parallel loops over index ranges, built on the global
 * ThreadPool, with a determinism contract the rest of the library
 * leans on:
 *
 *  - Chunk boundaries depend only on (range, grain) — never on the
 *    thread count — so the set of sub-ranges executed is identical on
 *    every machine and configuration.
 *  - parallelMap writes result[i] by index, and parallelReduce
 *    combines chunk partials in ascending chunk order, so
 *    floating-point results are bit-identical at any thread count.
 *  - Exceptions thrown by the body are caught per chunk and the
 *    lowest-index one is rethrown in the calling thread (also
 *    independent of scheduling).
 *
 * Small ranges (a single chunk), threads = 1, and loops entered from
 * inside a pool worker (nested parallelism) all run inline in the
 * calling thread with the same chunk structure.
 *
 * Grain guidance: pass 0 to take RuntimeConfig::grainSize (right for
 * element costs in the ~100 ns..1 us range, e.g. feature-space
 * distance scans); pass an explicit small grain for heavyweight
 * elements (1 for whole frames / subset units, tens for draw-call
 * simulation at ~1 us each). Chunks should cost >= ~10 us so pool
 * overhead stays in the noise.
 */

#ifndef GWS_RUNTIME_PARALLEL_FOR_HH
#define GWS_RUNTIME_PARALLEL_FOR_HH

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/runtime_config.hh"

namespace gws {

/** Chunks a range of n indices splits into at a grain (0 = default). */
std::size_t chunkCountFor(std::size_t n, std::size_t grain);

/**
 * Run body(chunkBegin, chunkEnd) over [begin, end) split into
 * grain-sized chunks (grain 0 = RuntimeConfig::grainSize), in
 * parallel on the global pool. The call returns after every chunk has
 * executed; the lowest-index chunk exception (if any) is rethrown.
 */
void parallelChunks(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>
                        &body);

/**
 * Run body(bounds[s], bounds[s+1]) for every shard s of an explicit,
 * ascending bounds vector (bounds.size() - 1 shards; typically a
 * cost-balanced ShardPlan from partition/shards.hh), in parallel on
 * the global pool. The same determinism contract as parallelChunks
 * applies — shard boundaries come from the caller, never from the
 * thread count — and the same inline path handles threads = 1, a
 * single shard, and nested parallelism.
 */
void parallelShards(const std::vector<std::size_t> &bounds,
                    const std::function<void(std::size_t, std::size_t)>
                        &body);

/** Run fn(i) for every i in [begin, end); see parallelChunks. */
template <typename Fn>
void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            Fn &&fn)
{
    const auto &f = fn;
    parallelChunks(begin, end, grain,
                   [&f](std::size_t b, std::size_t e) {
                       for (std::size_t i = b; i < e; ++i)
                           f(i);
                   });
}

/**
 * Map [begin, end) through fn into a vector, out[i - begin] = fn(i).
 * Results land at their index, so ordering is inherently stable.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::size_t begin, std::size_t end, std::size_t grain,
            Fn &&fn)
{
    std::vector<T> out(end > begin ? end - begin : 0);
    const auto &f = fn;
    parallelChunks(begin, end, grain,
                   [&f, &out, begin](std::size_t b, std::size_t e) {
                       for (std::size_t i = b; i < e; ++i)
                           out[i - begin] = f(i);
                   });
    return out;
}

/**
 * Chunked reduction: chunkFn(chunkBegin, chunkEnd) produces one
 * partial per chunk; partials are combined left-to-right in chunk
 * order via combine(acc, partial) starting from init. The combine
 * order is fixed by index — not completion order — which is what
 * makes floating-point reductions deterministic at any thread count.
 */
template <typename T, typename ChunkFn, typename CombineFn>
T
parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
               T init, ChunkFn &&chunkFn, CombineFn &&combine)
{
    if (end <= begin)
        return init;
    const std::size_t g = resolvedGrain(grain);
    const std::size_t chunks = chunkCountFor(end - begin, g);
    std::vector<T> partials(chunks);
    const auto &cf = chunkFn;
    parallelChunks(begin, end, g,
                   [&cf, &partials, begin, g](std::size_t b,
                                              std::size_t e) {
                       partials[(b - begin) / g] = cf(b, e);
                   });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c)
        acc = combine(std::move(acc), std::move(partials[c]));
    return acc;
}

} // namespace gws

#endif // GWS_RUNTIME_PARALLEL_FOR_HH
