#include "runtime/counters.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <sstream>

namespace gws {

namespace {

std::atomic<std::uint64_t> g_parallel_regions{0};
std::atomic<std::uint64_t> g_inline_regions{0};
std::atomic<std::uint64_t> g_chunks{0};
std::atomic<std::uint64_t> g_tasks{0};
std::atomic<std::uint64_t> g_submitter_wait_ns{0};
std::atomic<std::uint64_t> g_worker_idle_ns{0};
std::atomic<std::uint64_t> g_draw_cache_hits{0};
std::atomic<std::uint64_t> g_draw_cache_misses{0};
std::atomic<std::uint64_t> g_kmeans_bounds_skipped{0};
std::atomic<std::uint64_t> g_kmeans_full_scans{0};
std::atomic<std::uint64_t> g_leader_norm_rejects{0};
std::atomic<std::uint64_t> g_leader_distances{0};
std::atomic<std::uint64_t> g_worktrace_draws{0};
std::atomic<std::uint64_t> g_worktrace_build_ns{0};
std::atomic<std::uint64_t> g_sweep_passes{0};
std::atomic<std::uint64_t> g_sweep_configs{0};
std::atomic<std::uint64_t> g_sweep_draws_retimed{0};
std::atomic<std::uint64_t> g_sweep_retime_ns{0};
std::atomic<std::uint64_t> g_texbind_hits{0};
std::atomic<std::uint64_t> g_texbind_misses{0};

struct RegionAccum
{
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
};

std::mutex g_region_mutex;

std::map<std::string, RegionAccum> &
regionMap()
{
    static std::map<std::string, RegionAccum> m;
    return m;
}

} // namespace

RuntimeCounters
runtimeCounters()
{
    RuntimeCounters c;
    c.parallelRegions = g_parallel_regions.load();
    c.inlineRegions = g_inline_regions.load();
    c.chunksExecuted = g_chunks.load();
    c.tasksSubmitted = g_tasks.load();
    c.submitterWaitNs = g_submitter_wait_ns.load();
    c.workerIdleNs = g_worker_idle_ns.load();
    c.drawCacheHits = g_draw_cache_hits.load();
    c.drawCacheMisses = g_draw_cache_misses.load();
    c.kmeansBoundsSkipped = g_kmeans_bounds_skipped.load();
    c.kmeansFullScans = g_kmeans_full_scans.load();
    c.leaderNormRejects = g_leader_norm_rejects.load();
    c.leaderDistances = g_leader_distances.load();
    c.workTraceDraws = g_worktrace_draws.load();
    c.workTraceBuildNs = g_worktrace_build_ns.load();
    c.sweepPasses = g_sweep_passes.load();
    c.sweepConfigs = g_sweep_configs.load();
    c.sweepDrawsRetimed = g_sweep_draws_retimed.load();
    c.sweepRetimeNs = g_sweep_retime_ns.load();
    c.texBindHits = g_texbind_hits.load();
    c.texBindMisses = g_texbind_misses.load();
    return c;
}

double
RuntimeCounters::sweepConfigsPerPass() const
{
    return sweepPasses == 0 ? 0.0
                            : static_cast<double>(sweepConfigs) /
                                  static_cast<double>(sweepPasses);
}

double
RuntimeCounters::sweepDrawsRetimedPerSec() const
{
    return sweepRetimeNs == 0
               ? 0.0
               : static_cast<double>(sweepDrawsRetimed) /
                     (static_cast<double>(sweepRetimeNs) * 1e-9);
}

double
RuntimeCounters::drawCacheHitRate() const
{
    const std::uint64_t total = drawCacheHits + drawCacheMisses;
    return total == 0
               ? 0.0
               : static_cast<double>(drawCacheHits) /
                     static_cast<double>(total);
}

double
RuntimeCounters::kmeansBoundsSkipRate() const
{
    const std::uint64_t total = kmeansBoundsSkipped + kmeansFullScans;
    return total == 0
               ? 0.0
               : static_cast<double>(kmeansBoundsSkipped) /
                     static_cast<double>(total);
}

void
resetRuntimeCounters()
{
    g_parallel_regions = 0;
    g_inline_regions = 0;
    g_chunks = 0;
    g_tasks = 0;
    g_submitter_wait_ns = 0;
    g_worker_idle_ns = 0;
    g_draw_cache_hits = 0;
    g_draw_cache_misses = 0;
    g_kmeans_bounds_skipped = 0;
    g_kmeans_full_scans = 0;
    g_leader_norm_rejects = 0;
    g_leader_distances = 0;
    g_worktrace_draws = 0;
    g_worktrace_build_ns = 0;
    g_sweep_passes = 0;
    g_sweep_configs = 0;
    g_sweep_draws_retimed = 0;
    g_sweep_retime_ns = 0;
    g_texbind_hits = 0;
    g_texbind_misses = 0;
    std::lock_guard<std::mutex> lock(g_region_mutex);
    regionMap().clear();
}

std::vector<RegionStat>
runtimeRegionStats()
{
    std::vector<RegionStat> out;
    {
        std::lock_guard<std::mutex> lock(g_region_mutex);
        for (const auto &[name, acc] : regionMap())
            out.push_back(RegionStat{name, acc.ns, acc.count});
    }
    std::sort(out.begin(), out.end(),
              [](const RegionStat &a, const RegionStat &b) {
                  return a.ns > b.ns;
              });
    return out;
}

ScopedRegion::ScopedRegion(const char *name)
    : regionName(name), startNs(runtime_detail::nowNs())
{
}

ScopedRegion::~ScopedRegion()
{
    const std::uint64_t elapsed = runtime_detail::nowNs() - startNs;
    std::lock_guard<std::mutex> lock(g_region_mutex);
    RegionAccum &acc = regionMap()[regionName];
    acc.ns += elapsed;
    ++acc.count;
}

std::string
runtimeCountersReport()
{
    const RuntimeCounters c = runtimeCounters();
    std::ostringstream oss;
    oss << "runtime: " << c.parallelRegions << " parallel + "
        << c.inlineRegions << " inline regions, " << c.chunksExecuted
        << " chunks, " << c.tasksSubmitted << " pool tasks\n";
    oss << "runtime: submitter wait "
        << static_cast<double>(c.submitterWaitNs) * 1e-6
        << " ms, worker idle "
        << static_cast<double>(c.workerIdleNs) * 1e-6 << " ms\n";
    if (c.drawCacheHits + c.drawCacheMisses > 0)
        oss << "runtime: draw-work memo cache: " << c.drawCacheHits
            << " hits / " << c.drawCacheMisses << " misses ("
            << c.drawCacheHitRate() * 100.0 << "% hit rate)\n";
    if (c.kmeansBoundsSkipped + c.kmeansFullScans > 0)
        oss << "runtime: kmeans bounds: " << c.kmeansBoundsSkipped
            << " skipped / " << c.kmeansFullScans << " full scans ("
            << c.kmeansBoundsSkipRate() * 100.0 << "% skipped)\n";
    if (c.leaderNormRejects + c.leaderDistances > 0)
        oss << "runtime: leader scan: " << c.leaderNormRejects
            << " norm rejects / " << c.leaderDistances
            << " full distances\n";
    if (c.workTraceDraws > 0)
        oss << "runtime: work trace: " << c.workTraceDraws
            << " draws flattened in "
            << static_cast<double>(c.workTraceBuildNs) * 1e-6
            << " ms\n";
    if (c.sweepPasses > 0)
        oss << "runtime: sweep: " << c.sweepPasses << " passes, "
            << c.sweepConfigsPerPass() << " configs/pass, "
            << c.sweepDrawsRetimed << " draw-configs retimed ("
            << c.sweepDrawsRetimedPerSec() * 1e-6 << " M/s)\n";
    if (c.texBindHits + c.texBindMisses > 0)
        oss << "runtime: tex-bind memo: " << c.texBindHits
            << " hits / " << c.texBindMisses << " descriptor scans\n";
    for (const RegionStat &r : runtimeRegionStats())
        oss << "runtime: region " << r.name << ": "
            << static_cast<double>(r.ns) * 1e-6 << " ms over " << r.count
            << (r.count == 1 ? " entry\n" : " entries\n");
    return oss.str();
}

namespace runtime_detail {

void
noteParallelRegion(std::size_t chunks, std::size_t tasks)
{
    g_parallel_regions.fetch_add(1, std::memory_order_relaxed);
    g_chunks.fetch_add(chunks, std::memory_order_relaxed);
    g_tasks.fetch_add(tasks, std::memory_order_relaxed);
}

void
noteInlineRegion(std::size_t chunks)
{
    g_inline_regions.fetch_add(1, std::memory_order_relaxed);
    g_chunks.fetch_add(chunks, std::memory_order_relaxed);
}

void
noteSubmitterWait(std::uint64_t ns)
{
    g_submitter_wait_ns.fetch_add(ns, std::memory_order_relaxed);
}

void
noteWorkerIdle(std::uint64_t ns)
{
    g_worker_idle_ns.fetch_add(ns, std::memory_order_relaxed);
}

void
noteDrawCache(std::uint64_t hits, std::uint64_t misses)
{
    if (hits)
        g_draw_cache_hits.fetch_add(hits, std::memory_order_relaxed);
    if (misses)
        g_draw_cache_misses.fetch_add(misses, std::memory_order_relaxed);
}

void
noteWorkTraceBuild(std::uint64_t draws, std::uint64_t ns)
{
    g_worktrace_draws.fetch_add(draws, std::memory_order_relaxed);
    g_worktrace_build_ns.fetch_add(ns, std::memory_order_relaxed);
}

void
noteSweepPass(std::uint64_t configs, std::uint64_t drawsRetimed,
              std::uint64_t ns)
{
    g_sweep_passes.fetch_add(1, std::memory_order_relaxed);
    g_sweep_configs.fetch_add(configs, std::memory_order_relaxed);
    g_sweep_draws_retimed.fetch_add(drawsRetimed,
                                    std::memory_order_relaxed);
    g_sweep_retime_ns.fetch_add(ns, std::memory_order_relaxed);
}

void
noteTexBindScan(std::uint64_t hits, std::uint64_t misses)
{
    if (hits)
        g_texbind_hits.fetch_add(hits, std::memory_order_relaxed);
    if (misses)
        g_texbind_misses.fetch_add(misses, std::memory_order_relaxed);
}

void
noteKmeansBounds(std::uint64_t skipped, std::uint64_t fullScans)
{
    if (skipped)
        g_kmeans_bounds_skipped.fetch_add(skipped,
                                          std::memory_order_relaxed);
    if (fullScans)
        g_kmeans_full_scans.fetch_add(fullScans,
                                      std::memory_order_relaxed);
}

void
noteLeaderScan(std::uint64_t rejects, std::uint64_t distances)
{
    if (rejects)
        g_leader_norm_rejects.fetch_add(rejects,
                                        std::memory_order_relaxed);
    if (distances)
        g_leader_distances.fetch_add(distances,
                                     std::memory_order_relaxed);
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace runtime_detail

} // namespace gws
