#include "runtime/counters.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/metrics.hh"

namespace gws {

namespace {

using obs::Counter;
using obs::metricsRegistry;

/** Registry prefix under which ScopedRegion histograms live. */
constexpr const char *kRegionPrefix = "region.";

/**
 * Stable handles to the registry-backed legacy counters. Registered
 * eagerly (see g_legacy_registered) so every RuntimeCounters field is
 * present in `--metrics-out` even when it never fired.
 */
struct LegacyCounters
{
    Counter &parallelRegions;
    Counter &inlineRegions;
    Counter &chunksExecuted;
    Counter &tasksSubmitted;
    Counter &submitterWaitNs;
    Counter &workerIdleNs;
    Counter &drawCacheHits;
    Counter &drawCacheMisses;
    Counter &kmeansBoundsSkipped;
    Counter &kmeansFullScans;
    Counter &leaderNormRejects;
    Counter &leaderDistances;
    Counter &workTraceDraws;
    Counter &workTraceBuildNs;
    Counter &sweepPasses;
    Counter &sweepConfigs;
    Counter &sweepDrawsRetimed;
    Counter &sweepRetimeNs;
    Counter &texBindHits;
    Counter &texBindMisses;
};

LegacyCounters &
legacy()
{
    static LegacyCounters c{
        metricsRegistry().counter("runtime.parallelRegions"),
        metricsRegistry().counter("runtime.inlineRegions"),
        metricsRegistry().counter("runtime.chunksExecuted"),
        metricsRegistry().counter("runtime.tasksSubmitted"),
        metricsRegistry().counter("runtime.submitterWaitNs"),
        metricsRegistry().counter("runtime.workerIdleNs"),
        metricsRegistry().counter("gpusim.drawCache.hits"),
        metricsRegistry().counter("gpusim.drawCache.misses"),
        metricsRegistry().counter("cluster.kmeans.boundsSkipped"),
        metricsRegistry().counter("cluster.kmeans.fullScans"),
        metricsRegistry().counter("cluster.leader.normRejects"),
        metricsRegistry().counter("cluster.leader.distances"),
        metricsRegistry().counter("gpusim.workTrace.draws"),
        metricsRegistry().counter("gpusim.workTrace.buildNs"),
        metricsRegistry().counter("core.sweep.passes"),
        metricsRegistry().counter("core.sweep.configs"),
        metricsRegistry().counter("core.sweep.drawsRetimed"),
        metricsRegistry().counter("core.sweep.retimeNs"),
        metricsRegistry().counter("gpusim.texBind.hits"),
        metricsRegistry().counter("gpusim.texBind.misses"),
    };
    return c;
}

const bool g_legacy_registered = (legacy(), true);

} // namespace

RuntimeCounters
runtimeCounters()
{
    const LegacyCounters &l = legacy();
    RuntimeCounters c;
    c.parallelRegions = l.parallelRegions.value();
    c.inlineRegions = l.inlineRegions.value();
    c.chunksExecuted = l.chunksExecuted.value();
    c.tasksSubmitted = l.tasksSubmitted.value();
    c.submitterWaitNs = l.submitterWaitNs.value();
    c.workerIdleNs = l.workerIdleNs.value();
    c.drawCacheHits = l.drawCacheHits.value();
    c.drawCacheMisses = l.drawCacheMisses.value();
    c.kmeansBoundsSkipped = l.kmeansBoundsSkipped.value();
    c.kmeansFullScans = l.kmeansFullScans.value();
    c.leaderNormRejects = l.leaderNormRejects.value();
    c.leaderDistances = l.leaderDistances.value();
    c.workTraceDraws = l.workTraceDraws.value();
    c.workTraceBuildNs = l.workTraceBuildNs.value();
    c.sweepPasses = l.sweepPasses.value();
    c.sweepConfigs = l.sweepConfigs.value();
    c.sweepDrawsRetimed = l.sweepDrawsRetimed.value();
    c.sweepRetimeNs = l.sweepRetimeNs.value();
    c.texBindHits = l.texBindHits.value();
    c.texBindMisses = l.texBindMisses.value();
    return c;
}

double
RuntimeCounters::sweepConfigsPerPass() const
{
    return sweepPasses == 0 ? 0.0
                            : static_cast<double>(sweepConfigs) /
                                  static_cast<double>(sweepPasses);
}

double
RuntimeCounters::sweepDrawsRetimedPerSec() const
{
    return sweepRetimeNs == 0
               ? 0.0
               : static_cast<double>(sweepDrawsRetimed) /
                     (static_cast<double>(sweepRetimeNs) * 1e-9);
}

double
RuntimeCounters::drawCacheHitRate() const
{
    const std::uint64_t total = drawCacheHits + drawCacheMisses;
    return total == 0
               ? 0.0
               : static_cast<double>(drawCacheHits) /
                     static_cast<double>(total);
}

double
RuntimeCounters::kmeansBoundsSkipRate() const
{
    const std::uint64_t total = kmeansBoundsSkipped + kmeansFullScans;
    return total == 0
               ? 0.0
               : static_cast<double>(kmeansBoundsSkipped) /
                     static_cast<double>(total);
}

void
resetRuntimeCounters()
{
    // The legacy counters live under subsystem prefixes; reset each
    // family plus the ScopedRegion histograms, leaving unrelated
    // metrics (gws.warnings, bench gauges, ...) untouched.
    obs::MetricsRegistry &reg = metricsRegistry();
    reg.resetPrefix("runtime.");
    reg.resetPrefix("gpusim.");
    reg.resetPrefix("cluster.");
    reg.resetPrefix("core.");
    reg.resetPrefix(kRegionPrefix);
}

std::vector<RegionStat>
runtimeRegionStats()
{
    std::vector<RegionStat> out;
    for (const obs::MetricSnapshot &row :
         metricsRegistry().snapshotPrefix(kRegionPrefix)) {
        if (row.histCount == 0)
            continue;
        out.push_back(
            RegionStat{row.name.substr(std::string(kRegionPrefix).size()),
                       row.histSum, row.histCount});
    }
    std::sort(out.begin(), out.end(),
              [](const RegionStat &a, const RegionStat &b) {
                  return a.ns > b.ns;
              });
    return out;
}

ScopedRegion::ScopedRegion(const char *name)
    : span(name), regionName(name), startNs(runtime_detail::nowNs())
{
}

ScopedRegion::~ScopedRegion()
{
    const std::uint64_t elapsed = runtime_detail::nowNs() - startNs;
    metricsRegistry()
        .histogram(std::string(kRegionPrefix) + regionName)
        .record(elapsed);
}

std::string
runtimeCountersReport()
{
    const RuntimeCounters c = runtimeCounters();
    std::ostringstream oss;
    oss << "runtime: " << c.parallelRegions << " parallel + "
        << c.inlineRegions << " inline regions, " << c.chunksExecuted
        << " chunks, " << c.tasksSubmitted << " pool tasks\n";
    oss << "runtime: submitter wait "
        << static_cast<double>(c.submitterWaitNs) * 1e-6
        << " ms, worker idle "
        << static_cast<double>(c.workerIdleNs) * 1e-6 << " ms\n";
    if (c.drawCacheHits + c.drawCacheMisses > 0)
        oss << "runtime: draw-work memo cache: " << c.drawCacheHits
            << " hits / " << c.drawCacheMisses << " misses ("
            << c.drawCacheHitRate() * 100.0 << "% hit rate)\n";
    if (c.kmeansBoundsSkipped + c.kmeansFullScans > 0)
        oss << "runtime: kmeans bounds: " << c.kmeansBoundsSkipped
            << " skipped / " << c.kmeansFullScans << " full scans ("
            << c.kmeansBoundsSkipRate() * 100.0 << "% skipped)\n";
    if (c.leaderNormRejects + c.leaderDistances > 0)
        oss << "runtime: leader scan: " << c.leaderNormRejects
            << " norm rejects / " << c.leaderDistances
            << " full distances\n";
    if (c.workTraceDraws > 0)
        oss << "runtime: work trace: " << c.workTraceDraws
            << " draws flattened in "
            << static_cast<double>(c.workTraceBuildNs) * 1e-6
            << " ms\n";
    if (c.sweepPasses > 0)
        oss << "runtime: sweep: " << c.sweepPasses << " passes, "
            << c.sweepConfigsPerPass() << " configs/pass, "
            << c.sweepDrawsRetimed << " draw-configs retimed ("
            << c.sweepDrawsRetimedPerSec() * 1e-6 << " M/s)\n";
    if (c.texBindHits + c.texBindMisses > 0)
        oss << "runtime: tex-bind memo: " << c.texBindHits
            << " hits / " << c.texBindMisses << " descriptor scans\n";
    for (const obs::MetricSnapshot &m :
         metricsRegistry().snapshotPrefix("gws.part.")) {
        oss << "runtime: " << m.name << ": ";
        if (m.type == obs::MetricType::Gauge)
            oss << m.gaugeValue;
        else
            oss << m.counterValue;
        oss << "\n";
    }
    for (const RegionStat &r : runtimeRegionStats())
        oss << "runtime: region " << r.name << ": "
            << static_cast<double>(r.ns) * 1e-6 << " ms over " << r.count
            << (r.count == 1 ? " entry\n" : " entries\n");
    return oss.str();
}

namespace runtime_detail {

void
noteParallelRegion(std::size_t chunks, std::size_t tasks)
{
    LegacyCounters &l = legacy();
    l.parallelRegions.increment();
    l.chunksExecuted.add(chunks);
    l.tasksSubmitted.add(tasks);
}

void
noteInlineRegion(std::size_t chunks)
{
    LegacyCounters &l = legacy();
    l.inlineRegions.increment();
    l.chunksExecuted.add(chunks);
}

void
noteSubmitterWait(std::uint64_t ns)
{
    legacy().submitterWaitNs.add(ns);
}

void
noteWorkerIdle(std::uint64_t ns)
{
    legacy().workerIdleNs.add(ns);
}

void
noteDrawCache(std::uint64_t hits, std::uint64_t misses)
{
    LegacyCounters &l = legacy();
    if (hits)
        l.drawCacheHits.add(hits);
    if (misses)
        l.drawCacheMisses.add(misses);
}

void
noteWorkTraceBuild(std::uint64_t draws, std::uint64_t ns)
{
    LegacyCounters &l = legacy();
    l.workTraceDraws.add(draws);
    l.workTraceBuildNs.add(ns);
}

void
noteSweepPass(std::uint64_t configs, std::uint64_t drawsRetimed,
              std::uint64_t ns)
{
    LegacyCounters &l = legacy();
    l.sweepPasses.increment();
    l.sweepConfigs.add(configs);
    l.sweepDrawsRetimed.add(drawsRetimed);
    l.sweepRetimeNs.add(ns);
}

void
noteTexBindScan(std::uint64_t hits, std::uint64_t misses)
{
    LegacyCounters &l = legacy();
    if (hits)
        l.texBindHits.add(hits);
    if (misses)
        l.texBindMisses.add(misses);
}

void
noteKmeansBounds(std::uint64_t skipped, std::uint64_t fullScans)
{
    LegacyCounters &l = legacy();
    if (skipped)
        l.kmeansBoundsSkipped.add(skipped);
    if (fullScans)
        l.kmeansFullScans.add(fullScans);
}

void
noteLeaderScan(std::uint64_t rejects, std::uint64_t distances)
{
    LegacyCounters &l = legacy();
    if (rejects)
        l.leaderNormRejects.add(rejects);
    if (distances)
        l.leaderDistances.add(distances);
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace runtime_detail

} // namespace gws
