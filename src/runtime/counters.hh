/**
 * @file
 * Lightweight observability for the parallel runtime: global counters
 * (regions run, chunks executed, tasks submitted, time the submitter
 * spent waiting for stragglers, time workers spent idle) and named
 * per-region wall-time accumulators. Benches print the report after a
 * run (`--runtime-stats`); tests use the counters to assert that a
 * code path actually went parallel (or did not).
 *
 * This header is now a *compatibility shim* over the obs layer: every
 * RuntimeCounters field lives in the process-global MetricsRegistry
 * (src/obs/metrics.hh) under a stable name, so `--metrics-out` exports
 * them on the shared schema, and ScopedRegion both records a
 * `region.<name>` latency histogram and opens a trace span when the
 * tracer is on. The snapshot / reset / report API below is unchanged.
 *
 * Counters are process-global and monotone; resetRuntimeCounters()
 * zeroes them between bench phases. All updates are atomic and cheap
 * enough to stay enabled in release builds — one update per *chunk*,
 * never per element.
 */

#ifndef GWS_RUNTIME_COUNTERS_HH
#define GWS_RUNTIME_COUNTERS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace gws {

/** Snapshot of the global runtime counters. */
struct RuntimeCounters
{
    /** Parallel loops that fanned out to the pool. */
    std::uint64_t parallelRegions = 0;

    /** Parallel loops that ran inline (threads=1, tiny range, nested). */
    std::uint64_t inlineRegions = 0;

    /** Chunks executed across all loops (inline and pooled). */
    std::uint64_t chunksExecuted = 0;

    /** Helper tasks submitted to the pool. */
    std::uint64_t tasksSubmitted = 0;

    /** ns the submitting thread spent waiting on in-flight chunks. */
    std::uint64_t submitterWaitNs = 0;

    /** ns pool workers spent blocked on the queue (idle/steal wait). */
    std::uint64_t workerIdleNs = 0;

    /** Draw-work memo cache hits (GpuSimulator::computeDrawWork). */
    std::uint64_t drawCacheHits = 0;

    /** Draw-work memo cache misses (fresh simulations). */
    std::uint64_t drawCacheMisses = 0;

    /** k-means points whose centroid scan was skipped by bounds. */
    std::uint64_t kmeansBoundsSkipped = 0;

    /** k-means points that needed the full centroid scan. */
    std::uint64_t kmeansFullScans = 0;

    /** Leader-scan candidates rejected by the norm bound. */
    std::uint64_t leaderNormRejects = 0;

    /** Leader-scan candidates that needed a full distance. */
    std::uint64_t leaderDistances = 0;

    /** Draws flattened into work traces (buildWorkTrace rows). */
    std::uint64_t workTraceDraws = 0;

    /** ns spent building work traces (the compute-once pass). */
    std::uint64_t workTraceBuildNs = 0;

    /** Sweep-engine passes (retimeAll calls, either path). */
    std::uint64_t sweepPasses = 0;

    /** Configs evaluated across all sweep passes. */
    std::uint64_t sweepConfigs = 0;

    /** draw × config evaluations across all sweep passes. */
    std::uint64_t sweepDrawsRetimed = 0;

    /** ns spent inside retimeAll (the retime-many pass). */
    std::uint64_t sweepRetimeNs = 0;

    /** Bound-texture scans served from the memo (MemorySystem). */
    std::uint64_t texBindHits = 0;

    /** Bound-texture scans that walked the descriptors. */
    std::uint64_t texBindMisses = 0;

    /** Fraction of draw-work lookups served by the memo cache. */
    double drawCacheHitRate() const;

    /** Fraction of k-means assignment decisions skipped by bounds. */
    double kmeansBoundsSkipRate() const;

    /** Configs per sweep pass (averaged over passes). */
    double sweepConfigsPerPass() const;

    /** Draw × config evaluations per second of retime time. */
    double sweepDrawsRetimedPerSec() const;
};

/** Current counter values. */
RuntimeCounters runtimeCounters();

/** Zero the counters and the per-region accumulators. */
void resetRuntimeCounters();

/** Wall time accumulated under one named region. */
struct RegionStat
{
    /** Region name as passed to ScopedRegion. */
    std::string name;

    /** Total wall nanoseconds across entries. */
    std::uint64_t ns = 0;

    /** Times the region was entered. */
    std::uint64_t count = 0;
};

/** All named regions seen so far, sorted by descending total time. */
std::vector<RegionStat> runtimeRegionStats();

/**
 * RAII wall-clock timer for a named region. Name must be a string
 * literal (the registry stores the pointer's contents once). Each
 * entry records into the `region.<name>` latency histogram and, when
 * the tracer is enabled, opens a trace span of the same name.
 */
class ScopedRegion
{
  public:
    /** Start timing `name`. */
    explicit ScopedRegion(const char *name);

    /** Stop and accumulate. */
    ~ScopedRegion();

    ScopedRegion(const ScopedRegion &) = delete;
    ScopedRegion &operator=(const ScopedRegion &) = delete;

  private:
    obs::SpanScope span;
    const char *regionName;
    std::uint64_t startNs;
};

/** Human-readable multi-line report of counters + regions. */
std::string runtimeCountersReport();

namespace runtime_detail {

/** Record a loop that fanned out (`tasks` helpers over `chunks`). */
void noteParallelRegion(std::size_t chunks, std::size_t tasks);

/** Record a loop that ran inline with `chunks` chunks. */
void noteInlineRegion(std::size_t chunks);

/** Record ns the submitter spent blocked waiting for completion. */
void noteSubmitterWait(std::uint64_t ns);

/** Record ns a worker spent blocked on the empty queue. */
void noteWorkerIdle(std::uint64_t ns);

/** Record draw-work memo cache lookups (aggregated per chunk). */
void noteDrawCache(std::uint64_t hits, std::uint64_t misses);

/** Record k-means bound skips / full scans (aggregated per chunk). */
void noteKmeansBounds(std::uint64_t skipped, std::uint64_t fullScans);

/** Record leader norm rejects / full distances (per point batch). */
void noteLeaderScan(std::uint64_t rejects, std::uint64_t distances);

/** Record one work-trace build: rows flattened and wall ns spent. */
void noteWorkTraceBuild(std::uint64_t draws, std::uint64_t ns);

/** Record one sweep pass: configs, draw × config count, wall ns. */
void noteSweepPass(std::uint64_t configs, std::uint64_t drawsRetimed,
                   std::uint64_t ns);

/** Record bound-texture memo lookups (MemorySystem::drawTraffic). */
void noteTexBindScan(std::uint64_t hits, std::uint64_t misses);

/** Monotonic now() in ns (steady clock). */
std::uint64_t nowNs();

} // namespace runtime_detail

} // namespace gws

#endif // GWS_RUNTIME_COUNTERS_HH
