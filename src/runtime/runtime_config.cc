#include "runtime/runtime_config.hh"

#include <mutex>
#include <thread>

#include "runtime/thread_pool.hh"
#include "util/env.hh"

namespace gws {

namespace {

std::mutex config_mutex;
RuntimeConfig current_config;
bool env_loaded = false;

/** Load GWS_THREADS / GWS_GRAIN once, under config_mutex. */
void
loadEnvLocked()
{
    if (env_loaded)
        return;
    env_loaded = true;
    current_config.threads = envSize("GWS_THREADS",
                                     current_config.threads);
    current_config.grainSize = envSize("GWS_GRAIN",
                                       current_config.grainSize);
    if (current_config.grainSize == 0)
        current_config.grainSize = RuntimeConfig{}.grainSize;
}

} // namespace

RuntimeConfig
runtimeConfig()
{
    std::lock_guard<std::mutex> lock(config_mutex);
    loadEnvLocked();
    return current_config;
}

void
setRuntimeConfig(const RuntimeConfig &config)
{
    std::size_t old_threads;
    {
        std::lock_guard<std::mutex> lock(config_mutex);
        loadEnvLocked();
        old_threads = current_config.threads;
        current_config = config;
        if (current_config.grainSize == 0)
            current_config.grainSize = RuntimeConfig{}.grainSize;
    }
    // Resize lazily: drop the running pool so the next parallel loop
    // restarts it at the new width.
    if (config.threads != old_threads)
        shutdownGlobalThreadPool();
}

std::size_t
hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
resolvedThreadCount()
{
    const std::size_t t = runtimeConfig().threads;
    return t == 0 ? hardwareThreads() : t;
}

std::size_t
resolvedGrain(std::size_t requested)
{
    if (requested > 0)
        return requested;
    const std::size_t g = runtimeConfig().grainSize;
    return g == 0 ? 1 : g;
}

} // namespace gws
