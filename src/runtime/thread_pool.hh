/**
 * @file
 * A lazily-started worker pool with a condition-variable work queue.
 *
 * Threads are not spawned at construction but on the first submit(),
 * so binaries that never hit a parallel loop (or run with threads = 1)
 * pay nothing. shutdown() drains the queue, joins the workers, and
 * leaves the pool restartable: the next submit() spawns a fresh crew.
 *
 * Tasks are plain std::function<void()>; exception handling is the
 * submitter's business (parallelFor wraps every chunk and rethrows the
 * lowest-index exception in the calling thread). Workers mark
 * themselves with a thread-local flag so parallel loops can detect
 * reentrant submission and degrade to inline execution instead of
 * deadlocking on a full queue.
 */

#ifndef GWS_RUNTIME_THREAD_POOL_HH
#define GWS_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gws {

/** Fixed-width worker pool; see the file comment for the lifecycle. */
class ThreadPool
{
  public:
    /** Create a pool of `workers` threads (>= 1), not yet started. */
    explicit ThreadPool(std::size_t workers);

    /** Joins the workers (runs any queued tasks first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task; spawns the workers on first use. Panics if
     * called from inside one of this process's pool workers — nested
     * parallelism must run inline (parallelFor does this for you).
     */
    void submit(std::function<void()> task);

    /** Configured worker count. */
    std::size_t workerCount() const { return targetWorkers; }

    /** True once submit() has spawned the workers. */
    bool started() const;

    /**
     * Drain the queue, join all workers, and reset to the
     * constructed (restartable) state.
     */
    void shutdown();

    /** True when the calling thread is a pool worker (any pool). */
    static bool onWorkerThread();

  private:
    /** Worker loop: pop tasks until told to stop. */
    void workerMain();

    /** Spawn the workers if not yet running (queue mutex held). */
    void startLocked();

    const std::size_t targetWorkers;

    mutable std::mutex mutex;
    std::condition_variable available;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;
};

/**
 * The process-wide pool used by parallelFor and friends, sized to
 * resolvedThreadCount(). Created (not started) on first use.
 */
ThreadPool &globalThreadPool();

/**
 * Tear down the global pool (if any); the next parallel loop creates
 * a fresh one at the then-current configuration. Called automatically
 * by setRuntimeConfig() when the thread count changes.
 */
void shutdownGlobalThreadPool();

} // namespace gws

#endif // GWS_RUNTIME_THREAD_POOL_HH
