/**
 * @file
 * Global configuration of the parallel execution runtime.
 *
 * The runtime is configured once per process — from the command line
 * (`--threads`), from the `GWS_THREADS` / `GWS_GRAIN` environment
 * variables, or programmatically via setRuntimeConfig() — and every
 * parallel loop in the library reads it. Two knobs exist:
 *
 *  - threads:   worker count; 0 means std::thread::hardware_concurrency.
 *  - grainSize: default chunk length (indices per task) used when a
 *               parallel loop does not request an explicit grain.
 *
 * Determinism contract: at a fixed grainSize, every parallel loop in
 * this library produces bit-identical results at *any* thread count,
 * because chunk boundaries depend only on the range and the grain, and
 * reductions combine chunk partials in chunk-index order. Changing the
 * grainSize may change the floating-point rounding shape of chunked
 * reductions (never their meaning); thread count never does.
 */

#ifndef GWS_RUNTIME_RUNTIME_CONFIG_HH
#define GWS_RUNTIME_RUNTIME_CONFIG_HH

#include <cstddef>

namespace gws {

/** Process-wide runtime parameters. */
struct RuntimeConfig
{
    /** Worker threads; 0 selects hardware_concurrency. */
    std::size_t threads = 0;

    /** Default indices per chunk when a loop passes grain = 0. */
    std::size_t grainSize = 256;
};

/**
 * The current runtime configuration. On first access the defaults are
 * overridden from the environment: GWS_THREADS (thread count, 0 =
 * hardware concurrency) and GWS_GRAIN (default grain size).
 */
RuntimeConfig runtimeConfig();

/**
 * Replace the runtime configuration. Safe to call at any time from the
 * main thread; if the global thread pool is already running with a
 * different worker count it is shut down and lazily restarted at the
 * new size on the next parallel loop.
 */
void setRuntimeConfig(const RuntimeConfig &config);

/** The machine's hardware concurrency (never less than 1). */
std::size_t hardwareThreads();

/** Thread count after resolving 0 -> hardwareThreads(). */
std::size_t resolvedThreadCount();

/** Grain after resolving 0 -> runtimeConfig().grainSize (>= 1). */
std::size_t resolvedGrain(std::size_t requested);

} // namespace gws

#endif // GWS_RUNTIME_RUNTIME_CONFIG_HH
