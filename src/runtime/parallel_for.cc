#include "runtime/parallel_for.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "obs/trace.hh"
#include "runtime/counters.hh"
#include "runtime/thread_pool.hh"

namespace gws {

namespace {

/**
 * State of one fan-out, heap-allocated because helper tasks can be
 * dequeued *after* the submitting call has returned (the submitter
 * only waits for all chunks to complete, not for every helper task to
 * start); late helpers find no chunk left and drop their reference.
 */
struct FanOut
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;

    /** Explicit chunk bounds (parallelShards); empty = grain chunks. */
    std::vector<std::size_t> bounds;

    std::function<void(std::size_t, std::size_t)> body;

    /** Trace flow id linking the submitter to its chunks (0 = off). */
    std::uint64_t flowId = 0;

    /** Next chunk to claim. */
    std::atomic<std::size_t> next{0};

    std::mutex mutex;
    std::condition_variable allDone;

    /** Chunks finished (under mutex). */
    std::size_t completed = 0;

    /** Per-chunk exception, rethrown lowest-index-first. */
    std::vector<std::exception_ptr> errors;

    /** Claim and run chunks until none are left. */
    void
    drain()
    {
        for (;;) {
            const std::size_t c =
                next.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunks)
                return;
            const std::size_t b =
                bounds.empty() ? begin + c * grain : bounds[c];
            const std::size_t e = bounds.empty()
                                      ? std::min(end, b + grain)
                                      : bounds[c + 1];
            try {
                obs::SpanScope chunkSpan("runtime.chunk", flowId);
                body(b, e);
            } catch (...) {
                errors[c] = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex);
            if (++completed == chunks)
                allDone.notify_all();
        }
    }
};

/** Fan a prepared FanOut across the pool, wait, rethrow. */
void
runFanOut(const std::shared_ptr<FanOut> &fan)
{
    fan->errors.resize(fan->chunks);
    if (obs::traceEnabled()) {
        fan->flowId = obs::traceNewFlowId();
        obs::traceFlowStart("parallelFor", fan->flowId);
    }

    // One helper per extra thread that can hold a chunk; the caller
    // is the remaining worker.
    const std::size_t helpers =
        std::min(resolvedThreadCount(), fan->chunks) - 1;
    runtime_detail::noteParallelRegion(fan->chunks, helpers);
    ThreadPool &pool = globalThreadPool();
    for (std::size_t h = 0; h < helpers; ++h)
        pool.submit([fan] { fan->drain(); });

    fan->drain();

    {
        std::unique_lock<std::mutex> lock(fan->mutex);
        if (fan->completed != fan->chunks) {
            const std::uint64_t t0 = runtime_detail::nowNs();
            fan->allDone.wait(lock, [&fan] {
                return fan->completed == fan->chunks;
            });
            runtime_detail::noteSubmitterWait(runtime_detail::nowNs() -
                                              t0);
        }
    }

    for (std::size_t c = 0; c < fan->chunks; ++c)
        if (fan->errors[c])
            std::rethrow_exception(fan->errors[c]);
}

} // namespace

std::size_t
chunkCountFor(std::size_t n, std::size_t grain)
{
    if (n == 0)
        return 0;
    const std::size_t g = resolvedGrain(grain);
    return (n + g - 1) / g;
}

void
parallelChunks(std::size_t begin, std::size_t end, std::size_t grain,
               const std::function<void(std::size_t, std::size_t)> &body)
{
    if (end <= begin)
        return;
    const std::size_t n = end - begin;
    const std::size_t g = resolvedGrain(grain);
    const std::size_t chunks = (n + g - 1) / g;
    const std::size_t threads = resolvedThreadCount();

    if (threads <= 1 || chunks <= 1 || ThreadPool::onWorkerThread()) {
        // Inline path: same chunk structure, same execution order as
        // the chunk-index-ordered parallel reduction, so results are
        // identical to the fanned-out path by construction.
        runtime_detail::noteInlineRegion(chunks);
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t b = begin + c * g;
            body(b, std::min(end, b + g));
        }
        return;
    }

    auto fan = std::make_shared<FanOut>();
    fan->begin = begin;
    fan->end = end;
    fan->grain = g;
    fan->chunks = chunks;
    fan->body = body;
    runFanOut(fan);
}

void
parallelShards(const std::vector<std::size_t> &bounds,
               const std::function<void(std::size_t, std::size_t)> &body)
{
    if (bounds.size() <= 1)
        return;
    const std::size_t chunks = bounds.size() - 1;
    const std::size_t threads = resolvedThreadCount();

    if (threads <= 1 || chunks <= 1 || ThreadPool::onWorkerThread()) {
        // Inline path: same shard structure in ascending order, so
        // results match the fanned-out path by construction.
        runtime_detail::noteInlineRegion(chunks);
        for (std::size_t c = 0; c < chunks; ++c)
            body(bounds[c], bounds[c + 1]);
        return;
    }

    auto fan = std::make_shared<FanOut>();
    fan->chunks = chunks;
    fan->bounds = bounds;
    fan->body = body;
    runFanOut(fan);
}

} // namespace gws
