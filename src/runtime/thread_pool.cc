#include "runtime/thread_pool.hh"

#include <memory>
#include <utility>

#include "runtime/counters.hh"
#include "runtime/runtime_config.hh"
#include "util/logging.hh"

namespace gws {

namespace {

/** Set while the current thread is inside workerMain(). */
thread_local bool on_worker = false;

} // namespace

ThreadPool::ThreadPool(std::size_t workers)
    : targetWorkers(workers == 0 ? 1 : workers)
{
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

bool
ThreadPool::started() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return !workers.empty();
}

void
ThreadPool::startLocked()
{
    if (!workers.empty())
        return;
    stopping = false;
    workers.reserve(targetWorkers);
    for (std::size_t i = 0; i < targetWorkers; ++i)
        workers.emplace_back([this] { workerMain(); });
}

void
ThreadPool::submit(std::function<void()> task)
{
    GWS_ASSERT(!onWorkerThread(),
               "ThreadPool::submit from a pool worker; nested parallel "
               "loops must run inline");
    GWS_ASSERT(task, "ThreadPool::submit with an empty task");
    {
        std::lock_guard<std::mutex> lock(mutex);
        GWS_ASSERT(!stopping, "ThreadPool::submit during shutdown");
        startLocked();
        queue.push_back(std::move(task));
    }
    available.notify_one();
}

void
ThreadPool::shutdown()
{
    std::vector<std::thread> crew;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (workers.empty()) {
            queue.clear();
            return;
        }
        stopping = true;
        crew.swap(workers);
    }
    available.notify_all();
    for (std::thread &t : crew)
        t.join();
    std::lock_guard<std::mutex> lock(mutex);
    stopping = false;
}

void
ThreadPool::workerMain()
{
    on_worker = true;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        if (queue.empty() && !stopping) {
            const std::uint64_t t0 = runtime_detail::nowNs();
            available.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            runtime_detail::noteWorkerIdle(runtime_detail::nowNs() - t0);
        }
        if (queue.empty()) {
            // stopping && drained: exit. (Queued work always runs
            // before the pool goes down.)
            break;
        }
        std::function<void()> task = std::move(queue.front());
        queue.pop_front();
        lock.unlock();
        task();
        lock.lock();
    }
    on_worker = false;
}

bool
ThreadPool::onWorkerThread()
{
    return on_worker;
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

ThreadPool &
globalThreadPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    const std::size_t want = resolvedThreadCount();
    if (g_pool && g_pool->workerCount() != want)
        g_pool.reset();
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(want);
    return *g_pool;
}

void
shutdownGlobalThreadPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_pool.reset();
}

} // namespace gws
