/**
 * @file
 * Umbrella header for the parallel execution runtime: configuration,
 * the thread pool, the parallel loop primitives, and the counters.
 */

#ifndef GWS_RUNTIME_RUNTIME_HH
#define GWS_RUNTIME_RUNTIME_HH

#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "runtime/runtime_config.hh"
#include "runtime/thread_pool.hh"

#endif // GWS_RUNTIME_RUNTIME_HH
