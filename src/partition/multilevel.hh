/**
 * @file
 * METIS-style multilevel graph partitioner with pluggable cost
 * functions: coarsen by heavy-edge matching, partition the coarsest
 * graph, then uncoarsen with Fiduccia–Mattheyses-style boundary
 * refinement at every level.
 *
 * The partitioner serves two very different consumers with one
 * algorithm:
 *
 *  - the *load balancer* (partition/shards.hh) partitions a chain
 *    graph of per-group costs into equal-work contiguous shards for
 *    the sweep/simulate hot paths;
 *  - the *clustering family* (cluster/graph_partition.hh) partitions
 *    a k-NN feature-similarity graph into balanced clusters, the
 *    methodology check next to k-means / leader / agglomerative.
 *
 * Cost functions follow the workload-generator family of the
 * npu_compiler pass the ROADMAP cites:
 *
 *  - Balanced:        drive every part toward the ideal weight (sum of
 *                     squared deviations), cut as a tiebreaker.
 *  - CriticalPath:    minimize the heaviest part — the critical path
 *                     of a parallel schedule over the parts.
 *  - Greedy:          classic min-cut refinement under the balance
 *                     tolerance (greedy initial growth, accept only
 *                     cut-improving moves that respect the tolerance).
 *  - MinMaxWorkloads: minimize the spread between the heaviest and
 *                     lightest part.
 *
 * Everything is deterministic: node visits ascend by index, ties break
 * toward the lowest id, and no randomness is involved — equal inputs
 * give bit-equal partitions on every platform and thread count.
 */

#ifndef GWS_PARTITION_MULTILEVEL_HH
#define GWS_PARTITION_MULTILEVEL_HH

#include <string>

#include "partition/graph.hh"

namespace gws {

/** Objective a partition is optimized for. */
enum class PartitionCostFn : std::uint8_t
{
    /** Equalize all part weights (sum of squared deviations). */
    Balanced = 0,

    /** Minimize the heaviest part (the parallel critical path). */
    CriticalPath = 1,

    /** Minimize edge cut under the balance tolerance. */
    Greedy = 2,

    /** Minimize max − min part weight. */
    MinMaxWorkloads = 3,
};

/** Printable cost-function name ("balanced", ...). */
const char *toString(PartitionCostFn fn);

/**
 * Parse a cost-function name ("balanced", "critical_path", "greedy",
 * "minmax"). Returns false (and leaves *out alone) on anything else.
 */
bool parsePartitionCostFn(const std::string &text, PartitionCostFn *out);

/** Multilevel partitioner knobs. */
struct PartitionConfig
{
    /** Target part count (clamped to [1, nodes]). */
    std::size_t parts = 2;

    /** Objective. */
    PartitionCostFn costFn = PartitionCostFn::Balanced;

    /** Max allowed part weight as a multiple of the ideal weight. */
    double balanceTolerance = 1.10;

    /** Stop coarsening below parts × this many nodes. */
    std::size_t coarsenNodesPerPart = 8;

    /** Hard cap on coarsening levels. */
    std::size_t maxCoarsenLevels = 32;

    /** Max refinement passes per level (each stops when no move helps). */
    std::size_t refinePasses = 8;
};

/** One multilevel partition. */
struct PartitionResult
{
    /** Parts actually produced (== clamped config.parts; 0 iff n == 0). */
    std::size_t parts = 0;

    /** Node -> part, every part non-empty; length nodeCount(). */
    std::vector<std::uint32_t> assignment;

    /** Total node weight per part. */
    std::vector<double> partWeights;

    /** Sum of edge weights crossing parts. */
    double cutCost = 0.0;

    /** Max part weight / ideal part weight (1.0 = perfect). */
    double imbalance = 1.0;

    /** Coarsening levels taken. */
    std::size_t coarsenLevels = 0;

    /** Refinement passes run, summed over levels. */
    std::size_t refinePasses = 0;
};

/**
 * Partition `graph` into config.parts parts. Parts are guaranteed
 * non-empty; on a chain graph every part is a contiguous interval.
 * Emits part.coarsen / part.init / part.refine spans and the
 * gws.part.* metrics.
 */
PartitionResult multilevelPartition(const PartGraph &graph,
                                    const PartitionConfig &config);

} // namespace gws

#endif // GWS_PARTITION_MULTILEVEL_HH
