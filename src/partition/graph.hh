/**
 * @file
 * The weighted-graph substrate of the multilevel partitioner.
 *
 * A PartGraph is a plain CSR adjacency structure with double node and
 * edge weights — node weights carry *cost* (draws to simulate, rows to
 * retime, work units), edge weights carry *affinity* (frame adjacency,
 * feature-space similarity). Two builders cover the library's uses:
 *
 *  - buildChainGraph(): a path graph over a cost sequence, the load-
 *    balancer input. Partitioning a chain with contiguity preserved
 *    yields frame-aligned, equal-cost shards (partition/shards.hh).
 *  - buildGraph(): a general graph from an explicit symmetric edge
 *    list, the clustering-family input (cluster/graph_partition.cc
 *    feeds it a k-NN similarity graph over feature vectors).
 *
 * The `chain` flag records that node order is a path; the multilevel
 * partitioner preserves it through coarsening and restricts refinement
 * to interval-endpoint moves, so every part of a chain partition comes
 * out contiguous.
 */

#ifndef GWS_PARTITION_GRAPH_HH
#define GWS_PARTITION_GRAPH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gws {

/** Undirected weighted graph in CSR form. */
struct PartGraph
{
    /** CSR row offsets, nodeCount() + 1 entries ({0} when empty). */
    std::vector<std::size_t> xadj{0};

    /** Neighbor ids, one run per node (each undirected edge twice). */
    std::vector<std::uint32_t> adj;

    /** Edge weights (affinity, >= 0), aligned with `adj`. */
    std::vector<double> ewgt;

    /** Node weights (cost, > 0). */
    std::vector<double> vwgt;

    /**
     * Nodes form a path in index order (edges only between i and
     * i+1), so partitions must stay contiguous intervals.
     */
    bool chain = false;

    /** Number of nodes. */
    std::size_t nodeCount() const { return xadj.size() - 1; }

    /** Number of undirected edges (adjacency entries / 2). */
    std::size_t edgeCount() const { return adj.size() / 2; }

    /** Sum of all node weights. */
    double totalNodeWeight() const;

    /** Panics unless the CSR structure is self-consistent. */
    void validate() const;
};

/**
 * Path graph over a cost sequence: node i weighs costs[i] (clamped up
 * to a tiny positive floor so zero-cost nodes never break balance
 * ratios), with unit-weight edges between consecutive nodes.
 */
PartGraph buildChainGraph(const std::vector<double> &costs);

/** One undirected edge of buildGraph()'s input. */
struct GraphEdge
{
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double weight = 1.0;
};

/**
 * General graph from node weights and an undirected edge list.
 * Duplicate (a, b) pairs accumulate their weights; self-loops are
 * dropped. Deterministic: adjacency runs are sorted by neighbor id.
 */
PartGraph buildGraph(std::vector<double> node_weights,
                     const std::vector<GraphEdge> &edges);

} // namespace gws

#endif // GWS_PARTITION_GRAPH_HH
