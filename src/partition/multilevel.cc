#include "partition/multilevel.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace gws {

const char *
toString(PartitionCostFn fn)
{
    switch (fn) {
      case PartitionCostFn::Balanced:
        return "balanced";
      case PartitionCostFn::CriticalPath:
        return "critical_path";
      case PartitionCostFn::Greedy:
        return "greedy";
      case PartitionCostFn::MinMaxWorkloads:
        return "minmax";
    }
    GWS_PANIC("unknown partition cost fn ", static_cast<int>(fn));
}

bool
parsePartitionCostFn(const std::string &text, PartitionCostFn *out)
{
    if (text == "balanced")
        *out = PartitionCostFn::Balanced;
    else if (text == "critical_path")
        *out = PartitionCostFn::CriticalPath;
    else if (text == "greedy")
        *out = PartitionCostFn::Greedy;
    else if (text == "minmax")
        *out = PartitionCostFn::MinMaxWorkloads;
    else
        return false;
    return true;
}

namespace {

constexpr std::uint32_t kUnassigned =
    std::numeric_limits<std::uint32_t>::max();

/** Largest graph the O(n·E) FM escape pass is worth running on. */
constexpr std::size_t kEscapeMaxNodes = 4096;

/** Forced moves allowed past the best objective before giving up. */
constexpr std::size_t kEscapeSlack = 8;

/** One coarsening level: the coarse graph and the fine->coarse map. */
struct CoarseLevel
{
    PartGraph graph;
    std::vector<std::uint32_t> map;
};

/**
 * Heavy-edge matching + contraction. Nodes are visited in ascending
 * index order; each unmatched node pairs with its heaviest-edge
 * unmatched neighbor (first wins on ties, i.e. the lowest id, because
 * adjacency runs ascend). Coarse ids are issued in visit order, so a
 * chain stays a chain with its node order preserved.
 */
CoarseLevel
coarsen(const PartGraph &fine)
{
    const std::size_t n = fine.nodeCount();
    CoarseLevel level;
    level.map.assign(n, kUnassigned);

    // Strongest incident edge per node: contraction is only allowed
    // along edges comparable to both endpoints' best, so a weakly
    // attached node (e.g. an outlier draw whose similarities are all
    // tiny) survives coarsening as a singleton instead of vanishing
    // into a dense neighbor before the initial partition can see it.
    std::vector<double> max_edge(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t e = fine.xadj[i]; e < fine.xadj[i + 1]; ++e)
            max_edge[i] = std::max(max_edge[i], fine.ewgt[e]);

    std::vector<std::uint32_t> match(n, kUnassigned);
    std::uint32_t coarse_n = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (level.map[i] != kUnassigned)
            continue;
        std::uint32_t best = kUnassigned;
        double best_w = 0.0;
        for (std::size_t e = fine.xadj[i]; e < fine.xadj[i + 1]; ++e) {
            const std::uint32_t nb = fine.adj[e];
            if (level.map[nb] != kUnassigned)
                continue;
            if (best == kUnassigned || fine.ewgt[e] > best_w) {
                best = nb;
                best_w = fine.ewgt[e];
            }
        }
        level.map[i] = coarse_n;
        if (best != kUnassigned &&
            best_w * 2.0 >= std::max(max_edge[i], max_edge[best])) {
            level.map[best] = coarse_n;
            match[i] = best;
        }
        ++coarse_n;
    }

    PartGraph &cg = level.graph;
    cg.chain = fine.chain;
    cg.vwgt.assign(coarse_n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        cg.vwgt[level.map[i]] += fine.vwgt[i];

    // Aggregate edges per coarse node with a dense scratch row; the
    // touched list is sorted so adjacency runs stay ascending (and the
    // build deterministic) regardless of visit order.
    cg.xadj.assign(1, 0);
    cg.xadj.reserve(coarse_n + 1);
    std::vector<double> accum(coarse_n, 0.0);
    std::vector<std::uint32_t> touched;
    std::vector<std::vector<std::uint32_t>> members(coarse_n);
    for (std::size_t i = 0; i < n; ++i)
        members[level.map[i]].push_back(static_cast<std::uint32_t>(i));
    for (std::uint32_t c = 0; c < coarse_n; ++c) {
        touched.clear();
        for (std::uint32_t m : members[c]) {
            for (std::size_t e = fine.xadj[m]; e < fine.xadj[m + 1];
                 ++e) {
                const std::uint32_t cnb = level.map[fine.adj[e]];
                if (cnb == c)
                    continue;
                if (accum[cnb] == 0.0)
                    touched.push_back(cnb);
                accum[cnb] += fine.ewgt[e];
            }
        }
        std::sort(touched.begin(), touched.end());
        for (std::uint32_t cnb : touched) {
            cg.adj.push_back(cnb);
            cg.ewgt.push_back(accum[cnb]);
            accum[cnb] = 0.0;
        }
        cg.xadj.push_back(cg.adj.size());
    }
    return level;
}

/**
 * Contiguous initial partition of a chain: greedy prefix fill toward
 * each part's cumulative target, never leaving later parts without a
 * node. The include/exclude decision takes the boundary closer to the
 * target, so refinement starts near the optimum.
 */
std::vector<std::uint32_t>
initialChain(const PartGraph &g, std::size_t parts)
{
    const std::size_t n = g.nodeCount();
    const double total = g.totalNodeWeight();
    std::vector<std::uint32_t> part(n, 0);
    std::size_t node = 0;
    double cum = 0.0;
    for (std::size_t p = 0; p < parts; ++p) {
        const std::size_t must_leave = parts - p - 1;
        part[node] = static_cast<std::uint32_t>(p);
        cum += g.vwgt[node];
        ++node;
        const double target = total * static_cast<double>(p + 1) /
                              static_cast<double>(parts);
        while (node + must_leave < n) {
            if (std::abs(cum + g.vwgt[node] - target) <=
                std::abs(cum - target)) {
                part[node] = static_cast<std::uint32_t>(p);
                cum += g.vwgt[node];
                ++node;
            } else {
                break;
            }
        }
    }
    while (node < n)
        part[node++] = static_cast<std::uint32_t>(parts - 1);
    return part;
}

/**
 * Greedy graph growing for general graphs. Seeds are chosen by
 * farthest-point sampling: the heaviest node first, then repeatedly
 * the node with the least edge similarity to any seed so far (heavier
 * first on ties). That spreads the seeds across distinct regions of
 * the graph AND gives isolated nodes their own part — with
 * heaviest-only seeding an outlier can never anchor a part and gets
 * folded into whatever dense region it weakly touches. Every other
 * node (heavy first) then joins the part it has the most edge
 * affinity to among parts still under the balance tolerance, falling
 * back to the lightest part.
 */
std::vector<std::uint32_t>
initialGrow(const PartGraph &g, std::size_t parts, double tolerance)
{
    const std::size_t n = g.nodeCount();
    const double ideal =
        g.totalNodeWeight() / static_cast<double>(parts);

    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    std::sort(order.begin(), order.end(),
              [&g](std::uint32_t a, std::uint32_t b) {
                  return g.vwgt[a] != g.vwgt[b] ? g.vwgt[a] > g.vwgt[b]
                                                : a < b;
              });

    std::vector<std::uint32_t> part(n, kUnassigned);
    std::vector<double> weight(parts, 0.0);
    std::vector<double> affinity(parts, 0.0);

    // Farthest-point seed selection. seed_sim[i] is the strongest
    // edge from i to any chosen seed; the next seed minimizes it.
    std::vector<double> seed_sim(n, 0.0);
    std::uint32_t seed = order[0];
    for (std::size_t p = 0; p < parts; ++p) {
        part[seed] = static_cast<std::uint32_t>(p);
        weight[p] = g.vwgt[seed];
        if (p + 1 == parts)
            break;
        for (std::size_t e = g.xadj[seed]; e < g.xadj[seed + 1]; ++e)
            seed_sim[g.adj[e]] =
                std::max(seed_sim[g.adj[e]], g.ewgt[e]);
        std::uint32_t next = kUnassigned;
        for (std::uint32_t i : order) {
            if (part[i] != kUnassigned)
                continue;
            if (next == kUnassigned || seed_sim[i] < seed_sim[next])
                next = i;
        }
        seed = next;
    }

    for (std::uint32_t i : order) {
        if (part[i] != kUnassigned)
            continue;
        std::fill(affinity.begin(), affinity.end(), 0.0);
        for (std::size_t e = g.xadj[i]; e < g.xadj[i + 1]; ++e) {
            const std::uint32_t p = part[g.adj[e]];
            if (p != kUnassigned)
                affinity[p] += g.ewgt[e];
        }
        std::uint32_t best = kUnassigned;
        for (std::size_t p = 0; p < parts; ++p) {
            if (weight[p] + g.vwgt[i] > tolerance * ideal)
                continue;
            if (best == kUnassigned || affinity[p] > affinity[best] ||
                (affinity[p] == affinity[best] &&
                 weight[p] < weight[best]))
                best = static_cast<std::uint32_t>(p);
        }
        if (best == kUnassigned) { // every part full: take the lightest
            best = 0;
            for (std::size_t p = 1; p < parts; ++p)
                if (weight[p] < weight[best])
                    best = static_cast<std::uint32_t>(p);
        }
        part[i] = best;
        weight[best] += g.vwgt[i];
    }
    return part;
}

/** Sum of edge weights crossing parts (each edge counted once). */
double
edgeCut(const PartGraph &g, const std::vector<std::uint32_t> &part)
{
    double cut = 0.0;
    for (std::size_t i = 0; i < g.nodeCount(); ++i)
        for (std::size_t e = g.xadj[i]; e < g.xadj[i + 1]; ++e)
            if (g.adj[e] > i && part[g.adj[e]] != part[i])
                cut += g.ewgt[e];
    return cut;
}

/**
 * FM-style boundary refinement: greedy single-node moves between
 * neighboring parts, accepted when they strictly improve the cost
 * function's objective (Greedy: strictly reduce the normalized cut
 * under the balance tolerance). Moves never empty a part, and on a
 * chain only interval endpoints have out-of-part neighbors, so
 * contiguity is preserved move by move.
 */
class Refiner
{
  public:
    Refiner(const PartGraph &g, const PartitionConfig &cfg,
            std::vector<std::uint32_t> &part)
        : graph(g), config(cfg), assignment(part),
          parts(cfg.parts), weight(parts, 0.0), count(parts, 0)
    {
        for (std::size_t i = 0; i < g.nodeCount(); ++i) {
            weight[assignment[i]] += g.vwgt[i];
            ++count[assignment[i]];
        }
        totalWeight = g.totalNodeWeight();
        ideal = totalWeight / static_cast<double>(parts);
        totalEdgeWeight = 0.0;
        for (double w : g.ewgt)
            totalEdgeWeight += w;
        totalEdgeWeight = std::max(totalEdgeWeight, 1e-12);
        cut = edgeCut(g, assignment);
        sumSquares = 0.0;
        for (double w : weight)
            sumSquares += w * w;
    }

    /**
     * Run greedy passes until one makes no move, then try one FM
     * escape pass (forced moves + rollback); returns passes executed.
     */
    std::size_t
    run()
    {
        std::size_t passes = 0;
        for (std::size_t p = 0; p < config.refinePasses; ++p) {
            ++passes;
            if (pass() > 0)
                continue;
            if (graph.nodeCount() > kEscapeMaxNodes ||
                escapePass() == 0)
                break;
        }
        return passes;
    }

  private:
    /** One ascending-index sweep; returns accepted moves. */
    std::size_t
    pass()
    {
        std::size_t moves = 0;
        std::vector<double> gain(parts, 0.0);
        std::vector<std::uint32_t> touched;
        for (std::size_t i = 0; i < graph.nodeCount(); ++i) {
            const std::uint32_t src = assignment[i];
            if (count[src] <= 1)
                continue; // moving would empty the source part

            // Edge affinity of node i toward each neighboring part.
            touched.clear();
            double internal = 0.0;
            for (std::size_t e = graph.xadj[i]; e < graph.xadj[i + 1];
                 ++e) {
                const std::uint32_t p = assignment[graph.adj[e]];
                if (p == src) {
                    internal += graph.ewgt[e];
                    continue;
                }
                if (gain[p] == 0.0)
                    touched.push_back(p);
                gain[p] += graph.ewgt[e];
            }

            std::uint32_t best = kUnassigned;
            double best_obj = objective();
            for (std::uint32_t dst : touched) {
                const double obj =
                    moveObjective(i, src, dst, internal, gain[dst]);
                if (obj < best_obj - 1e-12) {
                    best_obj = obj;
                    best = dst;
                }
            }
            if (best != kUnassigned) {
                apply(i, src, best, internal, gain[best]);
                ++moves;
            }
            for (std::uint32_t p : touched)
                gain[p] = 0.0;
        }
        return moves;
    }

    /**
     * FM escape for stalled greedy refinement: repeatedly force the
     * globally best candidate move — worsening moves included — lock
     * the moved node for the rest of the pass, and track the best
     * objective seen; stop after `kEscapeSlack` consecutive moves
     * without a new best and roll back to the best prefix. Crossing
     * objective ridges this way recovers pairwise swaps (the classic
     * failure of improving-only refinement: each half of the swap
     * worsens the objective, the pair improves it). The prefix at
     * length 0 is the starting assignment, so the pass never makes
     * the partition worse. Returns the number of moves kept.
     */
    std::size_t
    escapePass()
    {
        const std::size_t n = graph.nodeCount();
        std::vector<char> locked(n, 0);
        struct Step
        {
            std::uint32_t node;
            std::uint32_t from;
        };
        std::vector<Step> log;
        double best_obj = objective();
        std::size_t best_len = 0;
        std::vector<double> gain(parts, 0.0);
        std::vector<std::uint32_t> touched;

        while (log.size() < n && log.size() - best_len <= kEscapeSlack) {
            std::uint32_t mv_node = kUnassigned;
            std::uint32_t mv_dst = 0;
            double mv_obj = std::numeric_limits<double>::infinity();
            double mv_internal = 0.0;
            double mv_external = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                if (locked[i])
                    continue;
                const std::uint32_t src = assignment[i];
                if (count[src] <= 1)
                    continue;
                touched.clear();
                double internal = 0.0;
                for (std::size_t e = graph.xadj[i];
                     e < graph.xadj[i + 1]; ++e) {
                    const std::uint32_t p = assignment[graph.adj[e]];
                    if (p == src) {
                        internal += graph.ewgt[e];
                        continue;
                    }
                    if (gain[p] == 0.0)
                        touched.push_back(p);
                    gain[p] += graph.ewgt[e];
                }
                for (std::uint32_t dst : touched) {
                    const double obj = moveObjective(i, src, dst,
                                                     internal,
                                                     gain[dst]);
                    if (obj < mv_obj - 1e-12) {
                        mv_node = static_cast<std::uint32_t>(i);
                        mv_dst = dst;
                        mv_obj = obj;
                        mv_internal = internal;
                        mv_external = gain[dst];
                    }
                }
                for (std::uint32_t p : touched)
                    gain[p] = 0.0;
            }
            if (mv_node == kUnassigned || !std::isfinite(mv_obj))
                break;
            log.push_back({mv_node, assignment[mv_node]});
            apply(mv_node, assignment[mv_node], mv_dst, mv_internal,
                  mv_external);
            locked[mv_node] = 1;
            if (mv_obj < best_obj - 1e-12) {
                best_obj = mv_obj;
                best_len = log.size();
            }
        }

        while (log.size() > best_len) {
            const Step s = log.back();
            log.pop_back();
            moveBack(s.node, s.from);
        }
        return best_len;
    }

    /** Undo a forced move: return `node` to part `dst`. */
    void
    moveBack(std::uint32_t node, std::uint32_t dst)
    {
        const std::uint32_t src = assignment[node];
        double internal = 0.0;
        double external = 0.0;
        for (std::size_t e = graph.xadj[node]; e < graph.xadj[node + 1];
             ++e) {
            const std::uint32_t p = assignment[graph.adj[e]];
            if (p == src)
                internal += graph.ewgt[e];
            else if (p == dst)
                external += graph.ewgt[e];
        }
        apply(node, src, dst, internal, external);
    }

    /** Objective of the current assignment (the move baseline). */
    double
    objective() const
    {
        const double c = cut / totalEdgeWeight;
        switch (config.costFn) {
          case PartitionCostFn::Balanced:
            return sumSquares / (ideal * ideal *
                                 static_cast<double>(parts)) +
                   0.1 * c;
          case PartitionCostFn::CriticalPath:
            return maxWeight() / ideal + 0.1 * c;
          case PartitionCostFn::Greedy:
            return c;
          case PartitionCostFn::MinMaxWorkloads:
            return (maxWeight() - minWeight()) / ideal + 0.1 * c;
        }
        GWS_PANIC("unknown partition cost fn");
    }

    /** Objective after moving node i from src to dst. */
    double
    moveObjective(std::size_t i, std::uint32_t src, std::uint32_t dst,
                  double internal, double external)
    {
        const double w = graph.vwgt[i];
        const double cut_delta = internal - external;
        const double w_src = weight[src] - w;
        const double w_dst = weight[dst] + w;
        const double c = (cut + cut_delta) / totalEdgeWeight;
        switch (config.costFn) {
          case PartitionCostFn::Balanced: {
            const double ssq = sumSquares - weight[src] * weight[src] -
                               weight[dst] * weight[dst] +
                               w_src * w_src + w_dst * w_dst;
            return ssq / (ideal * ideal *
                          static_cast<double>(parts)) +
                   0.1 * c;
          }
          case PartitionCostFn::CriticalPath:
            return maxWeightWith(src, dst, w_src, w_dst) / ideal +
                   0.1 * c;
          case PartitionCostFn::Greedy:
            // Hard balance constraint instead of a balance term.
            if (w_dst > config.balanceTolerance * ideal)
                return std::numeric_limits<double>::infinity();
            return c;
          case PartitionCostFn::MinMaxWorkloads:
            return (maxWeightWith(src, dst, w_src, w_dst) -
                    minWeightWith(src, dst, w_src, w_dst)) /
                       ideal +
                   0.1 * c;
        }
        GWS_PANIC("unknown partition cost fn");
    }

    void
    apply(std::size_t i, std::uint32_t src, std::uint32_t dst,
          double internal, double external)
    {
        const double w = graph.vwgt[i];
        sumSquares += -weight[src] * weight[src] -
                      weight[dst] * weight[dst];
        weight[src] -= w;
        weight[dst] += w;
        sumSquares += weight[src] * weight[src] +
                      weight[dst] * weight[dst];
        --count[src];
        ++count[dst];
        cut += internal - external;
        assignment[i] = dst;
    }

    double
    maxWeight() const
    {
        double m = weight[0];
        for (double w : weight)
            m = std::max(m, w);
        return m;
    }

    double
    minWeight() const
    {
        double m = weight[0];
        for (double w : weight)
            m = std::min(m, w);
        return m;
    }

    double
    maxWeightWith(std::uint32_t src, std::uint32_t dst, double w_src,
                  double w_dst) const
    {
        double m = std::max(w_src, w_dst);
        for (std::size_t p = 0; p < parts; ++p)
            if (p != src && p != dst)
                m = std::max(m, weight[p]);
        return m;
    }

    double
    minWeightWith(std::uint32_t src, std::uint32_t dst, double w_src,
                  double w_dst) const
    {
        double m = std::min(w_src, w_dst);
        for (std::size_t p = 0; p < parts; ++p)
            if (p != src && p != dst)
                m = std::min(m, weight[p]);
        return m;
    }

    const PartGraph &graph;
    const PartitionConfig &config;
    std::vector<std::uint32_t> &assignment;
    std::size_t parts;
    std::vector<double> weight;
    std::vector<std::size_t> count;
    double totalWeight = 0.0;
    double ideal = 1.0;
    double totalEdgeWeight = 1.0;
    double cut = 0.0;
    double sumSquares = 0.0;
};

} // namespace

PartitionResult
multilevelPartition(const PartGraph &graph, const PartitionConfig &config)
{
    const std::size_t n = graph.nodeCount();
    PartitionResult result;
    if (n == 0)
        return result;

    PartitionConfig cfg = config;
    cfg.parts = std::clamp<std::size_t>(cfg.parts, 1, n);
    cfg.coarsenNodesPerPart = std::max<std::size_t>(
        cfg.coarsenNodesPerPart, 1);
    result.parts = cfg.parts;

    // Trivial shapes need no machinery (and k == n must be exact).
    if (cfg.parts == 1) {
        result.assignment.assign(n, 0);
    } else if (cfg.parts == n) {
        result.assignment.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            result.assignment[i] = static_cast<std::uint32_t>(i);
    } else {
        // Coarsen until the graph is small relative to the part count
        // or matching stops making progress.
        std::vector<CoarseLevel> levels;
        {
            obs::SpanScope span("part.coarsen");
            const PartGraph *cur = &graph;
            const std::size_t stop =
                cfg.parts * cfg.coarsenNodesPerPart;
            while (cur->nodeCount() > stop &&
                   levels.size() < cfg.maxCoarsenLevels) {
                CoarseLevel level = coarsen(*cur);
                const std::size_t coarse_n = level.graph.nodeCount();
                if (coarse_n * 20 > cur->nodeCount() * 19)
                    break; // < 5% shrink: matching has saturated
                levels.push_back(std::move(level));
                cur = &levels.back().graph;
            }
        }

        const PartGraph &coarsest =
            levels.empty() ? graph : levels.back().graph;
        std::vector<std::uint32_t> part;
        {
            obs::SpanScope span("part.init");
            part = coarsest.chain
                       ? initialChain(coarsest, cfg.parts)
                       : initialGrow(coarsest, cfg.parts,
                                     cfg.balanceTolerance);
        }

        // Uncoarsen, refining at every level (coarsest included).
        {
            obs::SpanScope span("part.refine");
            for (std::size_t l = levels.size(); l-- > 0;) {
                const PartGraph &fine =
                    l == 0 ? graph : levels[l - 1].graph;
                result.refinePasses +=
                    Refiner(levels[l].graph, cfg, part).run();
                std::vector<std::uint32_t> fine_part(fine.nodeCount());
                for (std::size_t i = 0; i < fine.nodeCount(); ++i)
                    fine_part[i] = part[levels[l].map[i]];
                part = std::move(fine_part);
            }
            result.refinePasses += Refiner(graph, cfg, part).run();
        }
        result.coarsenLevels = levels.size();
        result.assignment = std::move(part);
    }

    result.partWeights.assign(result.parts, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        result.partWeights[result.assignment[i]] += graph.vwgt[i];
    result.cutCost = edgeCut(graph, result.assignment);
    const double ideal =
        graph.totalNodeWeight() / static_cast<double>(result.parts);
    double max_w = 0.0;
    for (double w : result.partWeights)
        max_w = std::max(max_w, w);
    result.imbalance = ideal > 0.0 ? max_w / ideal : 1.0;

    static auto &partitions =
        obs::metricsRegistry().counter("gws.part.partitions");
    static auto &cut_g = obs::metricsRegistry().gauge("gws.part.cut_cost");
    static auto &imb_g =
        obs::metricsRegistry().gauge("gws.part.imbalance");
    static auto &lvl_g =
        obs::metricsRegistry().gauge("gws.part.coarsen_levels");
    static auto &ref_c =
        obs::metricsRegistry().counter("gws.part.refine_passes");
    partitions.increment();
    cut_g.set(result.cutCost);
    imb_g.set(result.imbalance);
    lvl_g.set(static_cast<double>(result.coarsenLevels));
    ref_c.add(result.refinePasses);
    return result;
}

} // namespace gws
