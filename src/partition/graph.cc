#include "partition/graph.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gws {

namespace {

/**
 * Floor for node weights: a zero-cost node would make balance ratios
 * (max part weight / ideal) degenerate when a part holds only such
 * nodes, and contributes nothing to any cost function. Small enough
 * to never distort a real cost, large enough to stay a normal double.
 */
constexpr double kMinNodeWeight = 1e-9;

} // namespace

double
PartGraph::totalNodeWeight() const
{
    double sum = 0.0;
    for (double w : vwgt)
        sum += w;
    return sum;
}

void
PartGraph::validate() const
{
    const std::size_t n = nodeCount();
    GWS_ASSERT(vwgt.size() == n, "vwgt/xadj length mismatch");
    GWS_ASSERT(xadj.front() == 0, "xadj must start at 0");
    GWS_ASSERT(xadj.back() == adj.size(), "xadj must end at adj size");
    GWS_ASSERT(ewgt.size() == adj.size(), "ewgt/adj length mismatch");
    for (std::size_t i = 0; i < n; ++i) {
        GWS_ASSERT(xadj[i] <= xadj[i + 1], "xadj must be ascending");
        GWS_ASSERT(vwgt[i] > 0.0, "node ", i, " has non-positive weight");
        for (std::size_t e = xadj[i]; e < xadj[i + 1]; ++e) {
            GWS_ASSERT(adj[e] < n, "edge of node ", i,
                       " points out of range");
            GWS_ASSERT(adj[e] != i, "self-loop on node ", i);
            GWS_ASSERT(ewgt[e] >= 0.0, "negative edge weight on node ",
                       i);
        }
    }
}

PartGraph
buildChainGraph(const std::vector<double> &costs)
{
    PartGraph g;
    const std::size_t n = costs.size();
    g.chain = true;
    g.vwgt.reserve(n);
    for (double c : costs)
        g.vwgt.push_back(std::max(c, kMinNodeWeight));

    g.xadj.assign(1, 0);
    g.xadj.reserve(n + 1);
    if (n > 1) {
        g.adj.reserve(2 * (n - 1));
        g.ewgt.reserve(2 * (n - 1));
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0) {
            g.adj.push_back(static_cast<std::uint32_t>(i - 1));
            g.ewgt.push_back(1.0);
        }
        if (i + 1 < n) {
            g.adj.push_back(static_cast<std::uint32_t>(i + 1));
            g.ewgt.push_back(1.0);
        }
        g.xadj.push_back(g.adj.size());
    }
    return g;
}

PartGraph
buildGraph(std::vector<double> node_weights,
           const std::vector<GraphEdge> &edges)
{
    const std::size_t n = node_weights.size();

    // Sort the (doubled) edge list by (source, neighbor) so duplicate
    // pairs coalesce and every adjacency run comes out ascending.
    std::vector<GraphEdge> dir;
    dir.reserve(edges.size() * 2);
    for (const GraphEdge &e : edges) {
        GWS_ASSERT(e.a < n && e.b < n, "edge (", e.a, ", ", e.b,
                   ") out of range for ", n, " nodes");
        if (e.a == e.b)
            continue; // self-loops carry no cut information
        dir.push_back(e);
        dir.push_back({e.b, e.a, e.weight});
    }
    std::sort(dir.begin(), dir.end(),
              [](const GraphEdge &x, const GraphEdge &y) {
                  return x.a != y.a ? x.a < y.a : x.b < y.b;
              });

    PartGraph g;
    g.vwgt = std::move(node_weights);
    for (double &w : g.vwgt)
        w = std::max(w, kMinNodeWeight);
    g.xadj.assign(1, 0);
    g.xadj.reserve(n + 1);
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (cursor < dir.size() && dir[cursor].a == i) {
            const std::uint32_t nb = dir[cursor].b;
            double w = dir[cursor].weight;
            ++cursor;
            while (cursor < dir.size() && dir[cursor].a == i &&
                   dir[cursor].b == nb) {
                w += dir[cursor].weight; // coalesce duplicates
                ++cursor;
            }
            g.adj.push_back(nb);
            g.ewgt.push_back(w);
        }
        g.xadj.push_back(g.adj.size());
    }
    return g;
}

} // namespace gws
