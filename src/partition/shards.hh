/**
 * @file
 * Cost-balanced sharding for the sweep/simulate hot paths.
 *
 * The parallel engines used to split work by *count* — equal-length
 * index ranges — which leaves threads idle whenever cost is skewed
 * (one heavy quarter of the groups pins one shard while the rest
 * finish early). partitionTraceShards() splits by *cost* instead: it
 * partitions the chain graph of per-unit costs with the multilevel
 * partitioner, producing contiguous, equal-work shards.
 *
 * Bit-identity contract: sharding only changes which thread computes
 * which contiguous index range. Every consumer keeps per-unit results
 * index-addressed and folds reductions in ascending index order, so
 * any shard shape — uniform, cost-balanced, or a single shard — gives
 * bit-identical output. The PartitionPath enum mirrors SweepPath as
 * the A/B escape hatch: `GWS_NAIVE_SHARD=1` (or
 * setDefaultPartitionPath(PartitionPath::Naive)) reverts every Auto
 * call site to uniform chunking.
 */

#ifndef GWS_PARTITION_SHARDS_HH
#define GWS_PARTITION_SHARDS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "partition/multilevel.hh"

namespace gws {

/** Which sharding strategy a hot path uses (mirrors SweepPath). */
enum class PartitionPath : std::uint8_t
{
    /** Respect the process default (override, then GWS_NAIVE_SHARD). */
    Auto = 0,

    /** Uniform-count chunking (the pre-partitioner behavior). */
    Naive = 1,

    /** Cost-balanced shards from partitionTraceShards(). */
    Balanced = 2,
};

/** Printable path name ("auto", "naive", "balanced"). */
const char *toString(PartitionPath path);

/**
 * Does `path` resolve to uniform-count chunking? Auto consults the
 * process-wide default: setDefaultPartitionPath() if called, else the
 * GWS_NAIVE_SHARD boolean (read once), else balanced.
 */
bool partitionUsesNaivePath(PartitionPath path);

/**
 * Programmatically pin what PartitionPath::Auto resolves to
 * (process-wide, any thread). Passing Auto clears the pin, returning
 * control to GWS_NAIVE_SHARD. Exists so tests and benches can A/B
 * the paths without re-execing under a different environment.
 */
void setDefaultPartitionPath(PartitionPath path);

/** What Auto currently resolves to: Naive or Balanced, never Auto. */
PartitionPath defaultPartitionPath();

/**
 * The process-default cost function: setDefaultPartitionCostFn() if
 * called, else GWS_PARTITION ("balanced" / "critical_path" /
 * "greedy" / "minmax", read once, unparseable warns), else Balanced.
 */
PartitionCostFn defaultPartitionCostFn();

/** Pin the process-default cost function (process-wide, any thread). */
void setDefaultPartitionCostFn(PartitionCostFn fn);

/**
 * A contiguous sharding of [0, n): shard s covers indices
 * [bounds[s], bounds[s+1]).
 */
struct ShardPlan
{
    /** Ascending shard boundaries; shardCount() + 1 entries. */
    std::vector<std::size_t> bounds{0};

    /** Total input cost per shard. */
    std::vector<double> costs;

    /** Max shard cost / ideal shard cost (1.0 = perfect). */
    double imbalance = 1.0;

    /** Number of shards (0 only for an empty input). */
    std::size_t shardCount() const { return bounds.size() - 1; }
};

/**
 * Split the cost sequence `unit_costs` (one entry per group / frame /
 * chunk unit) into up to `shards` contiguous equal-cost shards via the
 * multilevel chain partitioner. The shard count is clamped to
 * [1, units]; an empty input yields an empty plan (bounds == {0}).
 * Deterministic for equal inputs. Emits a `part.shard` span and the
 * gws.part.shard_* metrics.
 */
ShardPlan partitionTraceShards(const std::vector<double> &unit_costs,
                               std::size_t shards,
                               PartitionCostFn cost_fn);

/**
 * Default shard count for `units` work units: two shards per resolved
 * worker thread (head-room for imperfect balance), clamped to
 * [1, units] (minimum 1 even when units == 0).
 */
std::size_t defaultShardCount(std::size_t units);

} // namespace gws

#endif // GWS_PARTITION_SHARDS_HH
