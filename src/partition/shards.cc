#include "partition/shards.hh"

#include <algorithm>
#include <atomic>

#include "obs/obs.hh"
#include "runtime/runtime_config.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace gws {

namespace {

/** Auto-path pin: -1 = unset (env decides), else a PartitionPath. */
std::atomic<int> pathOverride{-1};

/** Cost-fn pin: -1 = unset (env decides), else a PartitionCostFn. */
std::atomic<int> costFnOverride{-1};

PartitionCostFn
envPartitionCostFn()
{
    static const PartitionCostFn parsed = [] {
        const std::string text = envString("GWS_PARTITION", "");
        if (text.empty())
            return PartitionCostFn::Balanced;
        PartitionCostFn fn = PartitionCostFn::Balanced;
        if (!parsePartitionCostFn(text, &fn))
            GWS_WARN("GWS_PARTITION wants balanced / critical_path / "
                     "greedy / minmax, got '", text,
                     "'; using balanced");
        return fn;
    }();
    return parsed;
}

} // namespace

const char *
toString(PartitionPath path)
{
    switch (path) {
      case PartitionPath::Auto:
        return "auto";
      case PartitionPath::Naive:
        return "naive";
      case PartitionPath::Balanced:
        return "balanced";
    }
    GWS_PANIC("unknown partition path ", static_cast<int>(path));
}

bool
partitionUsesNaivePath(PartitionPath path)
{
    if (path == PartitionPath::Naive)
        return true;
    if (path == PartitionPath::Balanced)
        return false;
    const int pinned = pathOverride.load(std::memory_order_relaxed);
    if (pinned == static_cast<int>(PartitionPath::Naive))
        return true;
    if (pinned == static_cast<int>(PartitionPath::Balanced))
        return false;
    static const bool forced = envBool("GWS_NAIVE_SHARD", false);
    return forced;
}

void
setDefaultPartitionPath(PartitionPath path)
{
    pathOverride.store(path == PartitionPath::Auto
                           ? -1
                           : static_cast<int>(path),
                       std::memory_order_relaxed);
}

PartitionPath
defaultPartitionPath()
{
    return partitionUsesNaivePath(PartitionPath::Auto)
               ? PartitionPath::Naive
               : PartitionPath::Balanced;
}

PartitionCostFn
defaultPartitionCostFn()
{
    const int pinned = costFnOverride.load(std::memory_order_relaxed);
    if (pinned >= 0)
        return static_cast<PartitionCostFn>(pinned);
    return envPartitionCostFn();
}

void
setDefaultPartitionCostFn(PartitionCostFn fn)
{
    costFnOverride.store(static_cast<int>(fn),
                         std::memory_order_relaxed);
}

ShardPlan
partitionTraceShards(const std::vector<double> &unit_costs,
                     std::size_t shards, PartitionCostFn cost_fn)
{
    obs::SpanScope span("part.shard");
    ShardPlan plan;
    const std::size_t n = unit_costs.size();
    if (n == 0)
        return plan;
    shards = std::clamp<std::size_t>(shards, 1, n);

    PartitionConfig cfg;
    cfg.parts = shards;
    cfg.costFn = cost_fn;
    const PartitionResult res =
        multilevelPartition(buildChainGraph(unit_costs), cfg);

    // A chain partition is contiguous with parts numbered in index
    // order, so the assignment is a staircase; its steps are the
    // shard bounds.
    plan.bounds.reserve(shards + 1);
    for (std::size_t i = 1; i < n; ++i) {
        if (res.assignment[i] != res.assignment[i - 1]) {
            GWS_ASSERT(res.assignment[i] == res.assignment[i - 1] + 1,
                       "chain partition not contiguous at unit ", i);
            plan.bounds.push_back(i);
        }
    }
    plan.bounds.push_back(n);
    GWS_ASSERT(plan.shardCount() == shards,
               "chain partition produced ", plan.shardCount(),
               " shards, wanted ", shards);

    // Report costs from the raw inputs, not the floored node weights.
    plan.costs.assign(shards, 0.0);
    double total = 0.0;
    for (std::size_t s = 0; s < shards; ++s)
        for (std::size_t i = plan.bounds[s]; i < plan.bounds[s + 1];
             ++i) {
            plan.costs[s] += unit_costs[i];
            total += unit_costs[i];
        }
    const double ideal = total / static_cast<double>(shards);
    if (ideal > 0.0)
        plan.imbalance =
            *std::max_element(plan.costs.begin(), plan.costs.end()) /
            ideal;

    static auto &plans =
        obs::metricsRegistry().counter("gws.part.shard_plans");
    static auto &imb =
        obs::metricsRegistry().gauge("gws.part.shard_imbalance");
    plans.increment();
    imb.set(plan.imbalance);
    return plan;
}

std::size_t
defaultShardCount(std::size_t units)
{
    const std::size_t want = resolvedThreadCount() * 2;
    return std::max<std::size_t>(1, std::min(units, want));
}

} // namespace gws
