#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace gws {

void
SummaryStats::add(double x)
{
    ++n;
    total += x;
    const double delta = x - runningMean;
    runningMean += delta / static_cast<double>(n);
    m2 += delta * (x - runningMean);
    if (n == 1) {
        minValue = maxValue = x;
    } else {
        minValue = std::min(minValue, x);
        maxValue = std::max(maxValue, x);
    }
}

void
SummaryStats::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

double
SummaryStats::variance() const
{
    return n >= 2 ? m2 / static_cast<double>(n) : 0.0;
}

double
SummaryStats::sampleVariance() const
{
    return n >= 2 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    SummaryStats s;
    s.addAll(xs);
    return s.stddev();
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        GWS_ASSERT(x > 0.0, "geomean needs positive samples, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    GWS_ASSERT(!xs.empty(), "percentile of an empty series");
    GWS_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    GWS_ASSERT(xs.size() == ys.size(),
               "pearson length mismatch: ", xs.size(), " vs ", ys.size());
    GWS_ASSERT(xs.size() >= 2, "pearson needs at least 2 points");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
ranks(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
    std::vector<double> out(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]])
            ++j;
        // Average 1-based rank over the tie group [i, j].
        const double avg_rank =
            (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
        for (std::size_t k = i; k <= j; ++k)
            out[order[k]] = avg_rank;
        i = j + 1;
    }
    return out;
}

double
spearman(const std::vector<double> &xs, const std::vector<double> &ys)
{
    GWS_ASSERT(xs.size() == ys.size(),
               "spearman length mismatch: ", xs.size(), " vs ", ys.size());
    GWS_ASSERT(xs.size() >= 2, "spearman needs at least 2 points");
    return pearson(ranks(xs), ranks(ys));
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0)
{
    GWS_ASSERT(bins >= 1, "histogram needs at least one bin");
    GWS_ASSERT(lo < hi, "histogram range inverted: [", lo, ", ", hi, ")");
}

void
Histogram::add(double x)
{
    const double width = (hi - lo) / static_cast<double>(counts.size());
    auto raw = static_cast<long>(std::floor((x - lo) / width));
    raw = std::clamp<long>(raw, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(raw)];
    ++totalCount;
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    GWS_ASSERT(i < counts.size(), "histogram bin out of range: ", i);
    return counts[i];
}

double
Histogram::binLo(std::size_t i) const
{
    GWS_ASSERT(i < counts.size(), "histogram bin out of range: ", i);
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + width * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i) + (hi - lo) / static_cast<double>(counts.size());
}

double
Histogram::binFraction(std::size_t i) const
{
    if (totalCount == 0)
        return 0.0;
    return static_cast<double>(binCount(i)) /
           static_cast<double>(totalCount);
}

} // namespace gws
