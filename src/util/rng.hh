/**
 * @file
 * Deterministic random-number generation for workload synthesis.
 *
 * Every stochastic decision in this project flows through Rng so that a
 * (profile, seed) pair always regenerates bit-identical traces, which the
 * test suite and the experiment harnesses rely on. The generator is
 * xoshiro256** seeded via SplitMix64; both are implemented here rather
 * than taken from <random> because the standard engines do not guarantee
 * cross-platform distribution reproducibility.
 */

#ifndef GWS_UTIL_RNG_HH
#define GWS_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace gws {

/**
 * SplitMix64 generator. Primarily used to expand a single 64-bit seed
 * into the larger state of xoshiro256**, but usable standalone.
 */
class SplitMix64
{
  public:
    /** Construct from a 64-bit seed. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Produce the next 64-bit value. */
    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * Deterministic random source with the distribution helpers the synthetic
 * workload generator needs. Engine: xoshiro256** (Blackman & Vigna).
 */
class Rng
{
  public:
    /** Construct with an explicit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal: exp(normal(mu, sigma)) of the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Exponential with the given rate (mean 1/rate). */
    double exponential(double rate);

    /**
     * Pareto (heavy-tailed) sample with minimum value x_min and shape
     * alpha. Used to model occasional very expensive effect draws.
     */
    double pareto(double x_min, double alpha);

    /**
     * Poisson sample with the given mean (>= 0). Knuth's method for
     * small means, normal approximation above 30.
     */
    std::uint64_t poisson(double mean);

    /** Uniformly pick an index in [0, n). Requires n > 0. */
    std::size_t index(std::size_t n);

    /**
     * Sample an index according to non-negative weights. Requires at
     * least one strictly positive weight.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /**
     * Derive an independent child stream. Children with distinct tags
     * from the same parent are decorrelated; forking does not perturb
     * the parent stream.
     */
    Rng fork(std::uint64_t tag) const;

  private:
    std::uint64_t s[4];
    std::uint64_t seedValue;
};

} // namespace gws

#endif // GWS_UTIL_RNG_HH
