/**
 * @file
 * Minimal command-line argument parser for the example and bench
 * binaries. Supports "--key=value", "--key value", and boolean
 * "--flag" forms, registered with defaults and help strings.
 */

#ifndef GWS_UTIL_ARGS_HH
#define GWS_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gws {

/**
 * Declarative argument parser. Options are registered first, then
 * parse() consumes argv; unknown options are a user error (fatal()),
 * not a crash.
 */
class ArgParser
{
  public:
    /** Construct with the program name and a one-line description. */
    ArgParser(std::string program, std::string description);

    /** Register a string option with a default value. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register an integer option with a default value. */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);

    /** Register a floating-point option with a default value. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Register a boolean flag (default false; "--name" sets true). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Returns false (after printing usage) when "--help"
     * was requested; exits via fatal() on malformed input.
     */
    bool parse(int argc, const char *const *argv);

    /** Value accessors; panic if the option was never registered. */
    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Human-readable usage text. */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Double, Flag };

    struct Option
    {
        Kind kind;
        std::string value;
        std::string defaultValue;
        std::string help;
    };

    const Option &find(const std::string &name, Kind kind) const;

    std::string programName;
    std::string programDescription;
    std::map<std::string, Option> options;
    std::vector<std::string> order;
};

} // namespace gws

#endif // GWS_UTIL_ARGS_HH
