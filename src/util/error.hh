/**
 * @file
 * Typed error hierarchy for the input boundary.
 *
 * Everything that crosses into the process from outside — binary
 * trace/subset files, CLI flags, environment knobs — fails with a
 * typed exception rooted at IoError, never with undefined behaviour,
 * a panic, or a silently-wrong object. IoError carries the byte
 * offset of the failure when one is known, so a corrupt capture file
 * can be diagnosed with a hex dump. GWS_FATAL/GWS_PANIC remain
 * reserved for unrecoverable user errors and programmer errors
 * respectively (see util/logging.hh).
 */

#ifndef GWS_UTIL_ERROR_HH
#define GWS_UTIL_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace gws {

/**
 * Base of all typed input-boundary errors (trace files, subset files,
 * and future deserializers). Catch this in a main() to turn any
 * malformed-input failure into a clean nonzero exit.
 */
class IoError : public std::runtime_error
{
  public:
    /**
     * Construct with a message and, when known, the byte offset of
     * the failure within the payload (-1 = no position). The offset
     * is appended to what() so it always reaches the user.
     */
    explicit IoError(const std::string &what, std::int64_t byte_offset = -1)
        : std::runtime_error(
              byte_offset >= 0
                  ? what + " (byte " + std::to_string(byte_offset) + ")"
                  : what),
          offset(byte_offset)
    {
    }

    /** Byte offset of the failure, or -1 when not applicable. */
    std::int64_t byteOffset() const { return offset; }

  private:
    std::int64_t offset;
};

} // namespace gws

#endif // GWS_UTIL_ERROR_HH
