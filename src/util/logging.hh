/**
 * @file
 * Diagnostic and error-reporting helpers, following the gem5 idiom:
 *
 *  - panic():  something happened that should never happen regardless of
 *              user input, i.e. an internal bug. Aborts.
 *  - fatal():  the run cannot continue because of a user error (bad
 *              configuration, invalid argument). Exits with status 1.
 *  - warn():   something is questionable but the run continues.
 *  - inform(): plain status output for the user.
 *
 * All of them accept printf-free, iostream-free variadic arguments that
 * are stringified with operator<<.
 */

#ifndef GWS_UTIL_LOGGING_HH
#define GWS_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace gws {

namespace detail {

/** Stringify a pack of arguments by streaming them into an ostringstream. */
template <typename... Args>
std::string
concatToString(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Terminate with an internal-error report (backs panic()). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error report (backs fatal()). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a warning line on stderr. */
void warnImpl(const std::string &msg);

/**
 * Hook invoked (if non-null) for every warning, with the formatted
 * message. Lets higher layers observe warnings without util depending
 * on them; the obs layer installs one at static-init to count and
 * trace warnings. The callback must be safe to call from any thread.
 */
using WarnObserver = void (*)(const char *msg);

/** Install (or clear, with nullptr) the process-wide warn observer. */
void setWarnObserver(WarnObserver observer);

/** Emit an informational line on stdout. */
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Count of warnings emitted so far in this process. Exposed mainly so
 * tests can assert that a code path warned (or did not).
 */
int warnCount();

} // namespace gws

/**
 * Report an internal invariant violation and abort. Use only for
 * conditions that indicate a bug in this library, never for user error.
 */
#define GWS_PANIC(...)                                                      \
    ::gws::detail::panicImpl(__FILE__, __LINE__,                            \
                             ::gws::detail::concatToString(__VA_ARGS__))

/**
 * Report an unrecoverable user error (bad configuration, bad input file)
 * and exit(1).
 */
#define GWS_FATAL(...)                                                      \
    ::gws::detail::fatalImpl(__FILE__, __LINE__,                            \
                             ::gws::detail::concatToString(__VA_ARGS__))

/** Emit a warning; execution continues. */
#define GWS_WARN(...)                                                       \
    ::gws::detail::warnImpl(::gws::detail::concatToString(__VA_ARGS__))

/** Emit a status message; execution continues. */
#define GWS_INFORM(...)                                                     \
    ::gws::detail::informImpl(::gws::detail::concatToString(__VA_ARGS__))

/**
 * Precondition / invariant check that is always compiled in. On failure,
 * panics with the stringified condition and the optional message.
 */
#define GWS_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            GWS_PANIC("assertion failed: ", #cond, " ",                     \
                      ::gws::detail::concatToString(__VA_ARGS__));          \
        }                                                                   \
    } while (0)

#endif // GWS_UTIL_LOGGING_HH
