/**
 * @file
 * Lightweight tabular output used by the experiment harnesses. A Table
 * collects typed rows and renders them as aligned ASCII, Markdown, or
 * CSV so each bench binary can print exactly the rows of the paper
 * table/figure it regenerates.
 */

#ifndef GWS_UTIL_TABLE_HH
#define GWS_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace gws {

/**
 * Column-oriented table with per-cell string storage. Numeric helpers
 * format with a fixed precision at insertion time so rendering is a
 * pure layout concern.
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new (empty) row. */
    void newRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append an integer cell. */
    void cell(long long value);

    /** Append an unsigned cell. */
    void cell(unsigned long long value);

    /** Append a size cell. */
    void cell(std::size_t value);

    /** Append a floating-point cell with the given precision. */
    void cell(double value, int precision = 3);

    /** Append a percentage cell: fraction 0.658 renders as "65.8". */
    void cellPercent(double fraction, int precision = 1);

    /** Number of data rows. */
    std::size_t rows() const { return data.size(); }

    /** Number of columns. */
    std::size_t columns() const { return headerRow.size(); }

    /** Cell accessor (row, col) for tests. */
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Render as aligned monospace text with a header separator. */
    std::string renderAscii() const;

    /** Render as a GitHub-flavored Markdown table. */
    std::string renderMarkdown() const;

    /** Render as RFC-4180-ish CSV (quotes cells containing , " \n). */
    std::string renderCsv() const;

  private:
    /** Per-column display width over header and all rows. */
    std::vector<std::size_t> columnWidths() const;

    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> data;
};

} // namespace gws

#endif // GWS_UTIL_TABLE_HH
