/**
 * @file
 * Shared little-endian byte codec for the versioned binary formats
 * (traces, subsets). One encoder, one bounds-checked decoder, and the
 * common file framing — { magic, version, payload size, FNV-1a-32
 * payload checksum } — so every format fails the same way: a typed
 * error with byte-offset context, never UB, unbounded allocation, or
 * a silently-wrong object.
 *
 * The decoder is templated on the error type it throws so call sites
 * keep their format-specific exception (TraceIoError, SubsetIoError),
 * both rooted at gws::IoError.
 */

#ifndef GWS_UTIL_CODEC_HH
#define GWS_UTIL_CODEC_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "util/env.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace gws {

/** FNV-1a 64 truncated to 32 bits; catches truncation and bit rot. */
inline std::uint32_t
fnv1a32(const std::string &payload)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : payload) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

/** Size of the common file header: magic, version, size, checksum. */
constexpr std::size_t framedHeaderBytes = 16;

/**
 * Default upper bound on a framed payload. The size field is
 * untrusted input: without a cap, a 4-byte lie makes the reader
 * allocate up to 4 GiB before the checksum can catch it. 1 GiB is
 * orders of magnitude above any real capture while still failing
 * fast on lies.
 */
constexpr std::uint32_t maxFramedPayloadBytes = 1u << 30;

/**
 * Sanitize a raw GWS_MAX_PAYLOAD value into a usable cap: zero is
 * rejected (a zero cap would refuse every payload, which can only be
 * a misconfiguration) and values beyond the u32 size field are
 * clamped to it. Pure, for testability; callers use
 * framedPayloadCap().
 */
inline std::uint32_t
framedPayloadCapFromRaw(std::size_t raw)
{
    if (raw == 0) {
        GWS_WARN("GWS_MAX_PAYLOAD=0 would reject every payload; "
                 "using the default of ",
                 maxFramedPayloadBytes, " bytes");
        return maxFramedPayloadBytes;
    }
    constexpr std::size_t u32_max = 0xffffffffu;
    if (raw > u32_max) {
        GWS_WARN("GWS_MAX_PAYLOAD ", raw,
                 " exceeds the 32-bit size field; clamping to ",
                 u32_max);
        return static_cast<std::uint32_t>(u32_max);
    }
    return static_cast<std::uint32_t>(raw);
}

/**
 * The effective framed-payload cap: GWS_MAX_PAYLOAD (bytes, read once
 * through the checked envSize parser), defaulting to
 * maxFramedPayloadBytes. Applies to every framed format — files and
 * serve-protocol messages alike.
 */
inline std::uint32_t
framedPayloadCap()
{
    static const std::uint32_t cap = framedPayloadCapFromRaw(
        envSize("GWS_MAX_PAYLOAD", maxFramedPayloadBytes));
    return cap;
}

/** Append-only little-endian encoder into a string buffer. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /**
     * Append `n` doubles as consecutive little-endian f64 values.
     * Bulk path for the column formats (wtrc): one append on
     * little-endian hosts, bitwise identical to n f64() calls.
     */
    void
    f64Array(const double *v, std::size_t n)
    {
        if constexpr (std::endian::native == std::endian::little) {
            buf.append(reinterpret_cast<const char *>(v),
                       n * sizeof(double));
        } else {
            for (std::size_t i = 0; i < n; ++i)
                f64(v[i]);
        }
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf.append(s);
    }

    const std::string &data() const { return buf; }

  private:
    std::string buf;
};

/**
 * Bounds-checked little-endian decoder over a string buffer. Every
 * primitive read verifies the remaining length first; count fields
 * that drive allocations must additionally pass checkCount() so a
 * length-field lie cannot trigger a multi-gigabyte reserve before
 * the per-item reads would fail.
 */
template <typename ErrorT>
class ByteReader
{
  public:
    /** Decode `data`; `label` names the format in error messages. */
    ByteReader(std::string data, const char *label)
        : buf(std::move(data)), what(label)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(buf[pos++]);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(buf[pos++]))
                 << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[pos++]))
                 << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    /**
     * A strict boolean byte: 0 or 1 only. Rejecting 2..255 keeps the
     * encoding canonical — an accepted payload always re-encodes to
     * the exact same bytes, which the fuzz harness asserts.
     */
    bool
    boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw ErrorT(std::string(what) + " has invalid boolean byte " +
                             std::to_string(v),
                         static_cast<std::int64_t>(pos - 1));
        return v != 0;
    }

    /**
     * Read `n` consecutive little-endian f64 values into `dst`. One
     * bounds check and one copy on little-endian hosts; bitwise
     * identical to n f64() calls (NaN payloads included).
     */
    void
    f64Array(double *dst, std::size_t n)
    {
        need(n * sizeof(double));
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(dst, buf.data() + pos, n * sizeof(double));
            pos += n * sizeof(double);
        } else {
            for (std::size_t i = 0; i < n; ++i)
                dst[i] = f64();
        }
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }

    /**
     * Validate an untrusted element count before reserving memory for
     * it: `count` items of at least `min_bytes_each` must fit in the
     * remaining buffer. Throws a typed error naming `field` if not.
     */
    void
    checkCount(std::uint64_t count, std::uint64_t min_bytes_each,
               const char *field)
    {
        if (count * min_bytes_each > remaining())
            throw ErrorT(std::string(what) + " " + field + " count " +
                             std::to_string(count) + " exceeds the " +
                             std::to_string(remaining()) +
                             " bytes left in the payload",
                         static_cast<std::int64_t>(pos));
    }

    /** True once every byte has been consumed. */
    bool exhausted() const { return pos == buf.size(); }

    /** Current read position (byte offset into the buffer). */
    std::size_t offset() const { return pos; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return buf.size() - pos; }

    /** Throw a typed structural error at the current offset. */
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ErrorT(msg, static_cast<std::int64_t>(pos));
    }

  private:
    void
    need(std::size_t n)
    {
        if (pos + n > buf.size())
            throw ErrorT(std::string(what) + " payload truncated: need " +
                             std::to_string(n) + " bytes, have " +
                             std::to_string(buf.size() - pos),
                         static_cast<std::int64_t>(pos));
    }

    std::string buf;
    std::size_t pos = 0;
    const char *what;
};

/**
 * Write the common 16-byte header plus `payload` to `os`. `context`
 * names the object for the error message (e.g. the trace name).
 */
template <typename ErrorT>
void
writeFramed(std::ostream &os, std::uint32_t magic, std::uint32_t version,
            const std::string &payload, const char *label,
            const std::string &context)
{
    ByteWriter header;
    header.u32(magic);
    header.u32(version);
    header.u32(static_cast<std::uint32_t>(payload.size()));
    header.u32(fnv1a32(payload));
    os.write(header.data().data(),
             static_cast<std::streamsize>(header.data().size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!os)
        throw ErrorT(std::string("stream write failed for ") + label +
                     " '" + context + "'");
}

/**
 * Read and validate the common header from `is`, then return the
 * checksummed payload. Throws ErrorT (with the byte offset of the
 * offending field) on truncation, bad magic, version skew, an
 * implausible size field, or a checksum mismatch.
 */
template <typename ErrorT>
std::string
readFramed(std::istream &is, std::uint32_t magic, std::uint32_t version,
           const char *label)
{
    char raw_header[framedHeaderBytes];
    is.read(raw_header, sizeof(raw_header));
    if (is.gcount() != static_cast<std::streamsize>(sizeof(raw_header)))
        throw ErrorT(std::string(label) + " header truncated: got " +
                         std::to_string(is.gcount()) + " of " +
                         std::to_string(sizeof(raw_header)) + " bytes",
                     is.gcount());
    ByteReader<ErrorT> header(std::string(raw_header, sizeof(raw_header)),
                              label);
    if (header.u32() != magic)
        throw ErrorT(std::string("bad magic: not a gws ") + label, 0);
    const std::uint32_t ver = header.u32();
    if (ver != version)
        throw ErrorT(std::string("unsupported ") + label +
                         " format version " + std::to_string(ver) +
                         " (expected " + std::to_string(version) + ")",
                     4);
    const std::uint32_t size = header.u32();
    if (size > framedPayloadCap())
        throw ErrorT(std::string("implausible ") + label +
                         " payload size " + std::to_string(size),
                     8);
    const std::uint32_t expect_sum = header.u32();

    std::string payload(size, '\0');
    is.read(payload.data(), static_cast<std::streamsize>(size));
    if (static_cast<std::uint32_t>(is.gcount()) != size)
        throw ErrorT(std::string(label) + " payload truncated: got " +
                         std::to_string(is.gcount()) + " of " +
                         std::to_string(size) + " bytes",
                     static_cast<std::int64_t>(framedHeaderBytes) +
                         is.gcount());
    if (fnv1a32(payload) != expect_sum)
        throw ErrorT(std::string(label) +
                     " checksum mismatch (corrupt file)");
    return payload;
}

} // namespace gws

#endif // GWS_UTIL_CODEC_HH
