#include "util/table.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strings.hh"

namespace gws {

namespace {

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

} // namespace

Table::Table(std::vector<std::string> headers)
    : headerRow(std::move(headers))
{
    GWS_ASSERT(!headerRow.empty(), "table needs at least one column");
}

void
Table::newRow()
{
    if (!data.empty()) {
        GWS_ASSERT(data.back().size() == headerRow.size(),
                   "previous row has ", data.back().size(), " cells, want ",
                   headerRow.size());
    }
    data.emplace_back();
}

void
Table::cell(const std::string &value)
{
    GWS_ASSERT(!data.empty(), "cell() before newRow()");
    GWS_ASSERT(data.back().size() < headerRow.size(),
               "row already has ", headerRow.size(), " cells");
    data.back().push_back(value);
}

void
Table::cell(long long value)
{
    cell(std::to_string(value));
}

void
Table::cell(unsigned long long value)
{
    cell(std::to_string(value));
}

void
Table::cell(std::size_t value)
{
    cell(std::to_string(value));
}

void
Table::cell(double value, int precision)
{
    cell(formatDouble(value, precision));
}

void
Table::cellPercent(double fraction, int precision)
{
    cell(formatDouble(fraction * 100.0, precision));
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    GWS_ASSERT(row < data.size(), "row out of range: ", row);
    GWS_ASSERT(col < data[row].size(), "col out of range: ", col);
    return data[row][col];
}

std::vector<std::size_t>
Table::columnWidths() const
{
    std::vector<std::size_t> widths(headerRow.size(), 0);
    for (std::size_t c = 0; c < headerRow.size(); ++c)
        widths[c] = headerRow[c].size();
    for (const auto &row : data) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    return widths;
}

std::string
Table::renderAscii() const
{
    const auto widths = columnWidths();
    std::string out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headerRow.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            out += v;
            if (c + 1 < headerRow.size())
                out += std::string(widths[c] - v.size() + 2, ' ');
        }
        out += '\n';
    };
    emit_row(headerRow);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(rule, '-') + '\n';
    for (const auto &row : data)
        emit_row(row);
    return out;
}

std::string
Table::renderMarkdown() const
{
    std::string out = "|";
    for (const auto &h : headerRow)
        out += " " + h + " |";
    out += "\n|";
    for (std::size_t c = 0; c < headerRow.size(); ++c)
        out += "---|";
    out += "\n";
    for (const auto &row : data) {
        out += "|";
        for (std::size_t c = 0; c < headerRow.size(); ++c) {
            out += " ";
            out += c < row.size() ? row[c] : std::string();
            out += " |";
        }
        out += "\n";
    }
    return out;
}

std::string
Table::renderCsv() const
{
    std::string out;
    for (std::size_t c = 0; c < headerRow.size(); ++c) {
        if (c)
            out += ',';
        out += csvEscape(headerRow[c]);
    }
    out += '\n';
    for (const auto &row : data) {
        for (std::size_t c = 0; c < headerRow.size(); ++c) {
            if (c)
                out += ',';
            out += csvEscape(c < row.size() ? row[c] : std::string());
        }
        out += '\n';
    }
    return out;
}

} // namespace gws
