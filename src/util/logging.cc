#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gws {

namespace {

std::atomic<int> warnCounter{0};

std::atomic<detail::WarnObserver> warnObserver{nullptr};

} // namespace

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    if (WarnObserver observer =
            warnObserver.load(std::memory_order_acquire)) {
        observer(msg.c_str());
    }
}

void
setWarnObserver(WarnObserver observer)
{
    warnObserver.store(observer, std::memory_order_release);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

int
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

} // namespace gws
