/**
 * @file
 * Checked environment-knob readers. Every GWS_* environment variable
 * goes through these helpers so a typo ("GWS_DRAW_CACHE=yes" when the
 * parser wanted an integer) warns loudly via GWS_WARN and falls back
 * to the default, instead of being silently misread the way a bare
 * std::atoi would ("yes" -> 0).
 */

#ifndef GWS_UTIL_ENV_HH
#define GWS_UTIL_ENV_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace gws {

/**
 * Read a boolean knob. Accepts 0/1, true/false, yes/no, on/off
 * (case-insensitive) and any integer (nonzero = true). Unset or empty
 * returns `fallback`; anything unparseable warns and returns
 * `fallback`.
 */
bool envBool(const char *name, bool fallback);

/**
 * Read a non-negative integer knob. Unset or empty returns
 * `fallback`; garbage, a leading '-', or a value that overflows
 * std::size_t warns and returns `fallback`.
 */
std::size_t envSize(const char *name, std::size_t fallback);

/**
 * Read a finite floating-point knob. Unset or empty returns
 * `fallback`; garbage, trailing junk, overflow, or a non-finite value
 * (nan/inf) warns and returns `fallback`.
 */
double envDouble(const char *name, double fallback);

/**
 * Read a string knob, trimmed of surrounding whitespace. Unset or
 * empty (after trimming) returns `fallback`. Validation is the
 * caller's job — only the caller knows the accepted vocabulary — but
 * callers are expected to GWS_WARN and fall back on unparseable
 * values, like the readers above do.
 */
std::string envString(const char *name, const std::string &fallback);

} // namespace gws

#endif // GWS_UTIL_ENV_HH
