#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace gws {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seedValue(seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    GWS_ASSERT(lo <= hi, "uniform bounds inverted: ", lo, " > ", hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    GWS_ASSERT(lo <= hi, "uniformInt bounds inverted: ", lo, " > ", hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    // Box-Muller; draws two uniforms per sample and discards the pair's
    // second value to keep the stream position deterministic per call.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    GWS_ASSERT(stddev >= 0.0, "negative stddev: ", stddev);
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    GWS_ASSERT(rate > 0.0, "exponential rate must be positive: ", rate);
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return -std::log(u) / rate;
}

double
Rng::pareto(double x_min, double alpha)
{
    GWS_ASSERT(x_min > 0.0 && alpha > 0.0,
               "pareto parameters must be positive: ", x_min, ", ", alpha);
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return x_min / std::pow(u, 1.0 / alpha);
}

std::uint64_t
Rng::poisson(double mean)
{
    GWS_ASSERT(mean >= 0.0, "poisson mean must be non-negative: ", mean);
    if (mean == 0.0)
        return 0;
    if (mean > 30.0) {
        const double v = normal(mean, std::sqrt(mean));
        return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
    }
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t k = 0;
    while (product > limit) {
        ++k;
        product *= uniform();
    }
    return k;
}

std::size_t
Rng::index(std::size_t n)
{
    GWS_ASSERT(n > 0, "index() over an empty range");
    return static_cast<std::size_t>(
        uniformInt(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    GWS_ASSERT(!weights.empty(), "weightedIndex() with no weights");
    double total = 0.0;
    for (double w : weights) {
        GWS_ASSERT(w >= 0.0, "negative weight: ", w);
        total += w;
    }
    GWS_ASSERT(total > 0.0, "weightedIndex() needs a positive weight");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    // Floating-point slop: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    GWS_PANIC("unreachable: no positive weight found");
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = index(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

Rng
Rng::fork(std::uint64_t tag) const
{
    // Mix the original seed with the tag through SplitMix64 so children
    // with adjacent tags are still decorrelated.
    SplitMix64 sm(seedValue ^ (tag * 0xd1342543de82ef95ULL +
                               0x2545f4914f6cdd1dULL));
    return Rng(sm.next());
}

} // namespace gws
