/**
 * @file
 * Small string helpers shared by the CLI tools, table writers, and
 * serialization code.
 */

#ifndef GWS_UTIL_STRINGS_HH
#define GWS_UTIL_STRINGS_HH

#include <string>
#include <vector>

namespace gws {

/** Split on a delimiter character; adjacent delimiters yield empties. */
std::vector<std::string> split(const std::string &s, char delim);

/** Join pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 const std::string &sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** ASCII lower-case copy. */
std::string toLower(const std::string &s);

/** True if s starts with the given prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True if s ends with the given suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Format a byte count with a binary suffix, e.g. "1.5 MiB". */
std::string humanBytes(double bytes);

/** Format a large count with an SI suffix, e.g. "828.1K". */
std::string humanCount(double count);

/** Fixed-precision decimal formatting, e.g. formatDouble(1.234, 2). */
std::string formatDouble(double value, int precision);

/** Percentage formatting: formatPercent(0.658, 1) -> "65.8%". */
std::string formatPercent(double fraction, int precision);

} // namespace gws

#endif // GWS_UTIL_STRINGS_HH
