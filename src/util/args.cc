#include "util/args.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/strings.hh"

namespace gws {

ArgParser::ArgParser(std::string program, std::string description)
    : programName(std::move(program)),
      programDescription(std::move(description))
{
}

void
ArgParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    GWS_ASSERT(!options.count(name), "duplicate option --", name);
    options[name] = Option{Kind::String, def, def, help};
    order.push_back(name);
}

void
ArgParser::addInt(const std::string &name, std::int64_t def,
                  const std::string &help)
{
    GWS_ASSERT(!options.count(name), "duplicate option --", name);
    options[name] =
        Option{Kind::Int, std::to_string(def), std::to_string(def), help};
    order.push_back(name);
}

void
ArgParser::addDouble(const std::string &name, double def,
                     const std::string &help)
{
    GWS_ASSERT(!options.count(name), "duplicate option --", name);
    const std::string text = formatDouble(def, 6);
    options[name] = Option{Kind::Double, text, text, help};
    order.push_back(name);
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    GWS_ASSERT(!options.count(name), "duplicate option --", name);
    options[name] = Option{Kind::Flag, "0", "0", help};
    order.push_back(name);
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (!startsWith(arg, "--"))
            GWS_FATAL("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);

        std::string name = arg;
        std::string value;
        bool have_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            have_value = true;
        }

        auto it = options.find(name);
        if (it == options.end())
            GWS_FATAL("unknown option '--", name, "'\n", usage());

        Option &opt = it->second;
        if (opt.kind == Kind::Flag) {
            if (have_value)
                GWS_FATAL("flag '--", name, "' does not take a value");
            opt.value = "1";
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc)
                GWS_FATAL("option '--", name, "' needs a value");
            // A following token that is itself an option is almost
            // certainly a forgotten value ("--trace-out --threads 4"
            // must not eat "--threads" as the filename). The --name=
            // form still accepts literal values that start with "--".
            const std::string next = argv[i + 1];
            if (startsWith(next, "--"))
                GWS_FATAL("option '--", name, "' needs a value, but the "
                          "next argument is the option-like '", next,
                          "'; use --", name, "=", next,
                          " if that value is intentional");
            value = argv[++i];
        }
        if (opt.kind == Kind::Int) {
            char *end = nullptr;
            errno = 0;
            std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                GWS_FATAL("option '--", name, "' wants an integer, got '",
                          value, "'");
            if (errno == ERANGE)
                GWS_FATAL("option '--", name, "' value '", value,
                          "' overflows a 64-bit integer");
        } else if (opt.kind == Kind::Double) {
            char *end = nullptr;
            errno = 0;
            const double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                GWS_FATAL("option '--", name, "' wants a number, got '",
                          value, "'");
            if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
                GWS_FATAL("option '--", name, "' value '", value,
                          "' overflows a double");
        }
        opt.value = value;
    }
    return true;
}

const ArgParser::Option &
ArgParser::find(const std::string &name, Kind kind) const
{
    auto it = options.find(name);
    GWS_ASSERT(it != options.end(), "option --", name, " never registered");
    GWS_ASSERT(it->second.kind == kind, "option --", name,
               " accessed with the wrong type");
    return it->second;
}

std::string
ArgParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 10);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return find(name, Kind::Flag).value == "1";
}

std::string
ArgParser::usage() const
{
    std::string out = programName + " — " + programDescription + "\n\n";
    out += "options:\n";
    for (const auto &name : order) {
        const Option &opt = options.at(name);
        out += "  --" + name;
        if (opt.kind != Kind::Flag)
            out += "=<" + std::string(opt.kind == Kind::String
                                          ? "str"
                                          : opt.kind == Kind::Int ? "int"
                                                                  : "num") +
                   ">";
        out += "\n      " + opt.help;
        if (opt.kind != Kind::Flag)
            out += " (default: " + opt.defaultValue + ")";
        out += "\n";
    }
    out += "  --help\n      print this message\n";
    return out;
}

} // namespace gws
