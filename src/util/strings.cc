#include "util/strings.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace gws {

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &pieces, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
humanBytes(double bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int idx = 0;
    double v = bytes;
    while (std::fabs(v) >= 1024.0 && idx < 4) {
        v /= 1024.0;
        ++idx;
    }
    char buf[64];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%.0f %s", v, suffixes[idx]);
    else
        std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffixes[idx]);
    return buf;
}

std::string
humanCount(double count)
{
    static const char *suffixes[] = {"", "K", "M", "G", "T"};
    int idx = 0;
    double v = count;
    while (std::fabs(v) >= 1000.0 && idx < 4) {
        v /= 1000.0;
        ++idx;
    }
    char buf[64];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffixes[idx]);
    return buf;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatPercent(double fraction, int precision)
{
    return formatDouble(fraction * 100.0, precision) + "%";
}

} // namespace gws
