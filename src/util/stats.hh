/**
 * @file
 * Summary statistics, correlation measures, and histograms used by the
 * clustering-quality metrics and the experiment harnesses.
 */

#ifndef GWS_UTIL_STATS_HH
#define GWS_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace gws {

/**
 * Streaming accumulator for count / mean / variance / min / max using
 * Welford's algorithm (numerically stable for long streams).
 */
class SummaryStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Fold a whole range of samples. */
    void addAll(const std::vector<double> &xs);

    /** Number of samples seen. */
    std::size_t count() const { return n; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n ? runningMean : 0.0; }

    /** Population variance; 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample (n-1) variance; 0 for fewer than 2 samples. */
    double sampleVariance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const { return n ? minValue : 0.0; }

    /** Largest sample; 0 when empty. */
    double max() const { return n ? maxValue : 0.0; }

    /** Sum of all samples. */
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
    double total = 0.0;
};

/** Arithmetic mean of a vector; 0 when empty. */
double mean(const std::vector<double> &xs);

/** Population standard deviation of a vector; 0 when empty. */
double stddev(const std::vector<double> &xs);

/**
 * Geometric mean of strictly positive samples. Panics if any sample is
 * not positive; returns 0 when empty.
 */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, p in [0, 100]. The input need not be
 * sorted. Panics on an empty input or p outside [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/**
 * Pearson product-moment correlation coefficient of two equal-length
 * series. Returns 0 when either series has zero variance. Panics on
 * length mismatch or fewer than 2 points.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Spearman rank correlation (Pearson of the rank transforms, average
 * ranks for ties). Same preconditions as pearson().
 */
double spearman(const std::vector<double> &xs,
                const std::vector<double> &ys);

/**
 * Fixed-width histogram over [lo, hi) with the given number of bins.
 * Samples outside the range are clamped into the first / last bin.
 */
class Histogram
{
  public:
    /** Construct with range [lo, hi) and bins >= 1. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Insert one sample. */
    void add(double x);

    /** Count in bin i. */
    std::size_t binCount(std::size_t i) const;

    /** Inclusive lower edge of bin i. */
    double binLo(std::size_t i) const;

    /** Exclusive upper edge of bin i. */
    double binHi(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** Total number of samples inserted. */
    std::size_t total() const { return totalCount; }

    /** Fraction of samples in bin i; 0 when empty. */
    double binFraction(std::size_t i) const;

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t totalCount = 0;
};

/** Average ranks (1-based, ties averaged) of a series. */
std::vector<double> ranks(const std::vector<double> &xs);

} // namespace gws

#endif // GWS_UTIL_STATS_HH
