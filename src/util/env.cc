#include "util/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

#include "util/logging.hh"
#include "util/strings.hh"

namespace gws {

bool
envBool(const char *name, bool fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    const std::string v = toLower(trim(raw));
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    char *end = nullptr;
    errno = 0;
    const long long n = std::strtoll(v.c_str(), &end, 10);
    if (end != v.c_str() && *end == '\0' && errno != ERANGE)
        return n != 0;
    GWS_WARN(name, " wants a boolean (0/1/true/false/yes/no/on/off), "
             "got '", raw, "'; using default ", fallback ? "1" : "0");
    return fallback;
}

std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    const std::string v = trim(raw);
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0' ||
        errno == ERANGE) {
        GWS_WARN(name, " must be a non-negative integer, got '", raw,
                 "'; using default ", fallback);
        return fallback;
    }
    return static_cast<std::size_t>(n);
}

double
envDouble(const char *name, double fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    const std::string v = trim(raw);
    char *end = nullptr;
    errno = 0;
    const double d = std::strtod(v.c_str(), &end);
    if (v.empty() || end == v.c_str() || *end != '\0' ||
        errno == ERANGE || !std::isfinite(d)) {
        GWS_WARN(name, " must be a finite number, got '", raw,
                 "'; using default ", fallback);
        return fallback;
    }
    return d;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr)
        return fallback;
    std::string v{trim(raw)};
    if (v.empty())
        return fallback;
    return v;
}

} // namespace gws
