#include "trace/topology.hh"

#include "util/logging.hh"

namespace gws {

const char *
toString(PrimitiveTopology topology)
{
    switch (topology) {
      case PrimitiveTopology::PointList:
        return "point_list";
      case PrimitiveTopology::LineList:
        return "line_list";
      case PrimitiveTopology::LineStrip:
        return "line_strip";
      case PrimitiveTopology::TriangleList:
        return "triangle_list";
      case PrimitiveTopology::TriangleStrip:
        return "triangle_strip";
    }
    GWS_PANIC("unknown topology ", static_cast<int>(topology));
}

std::uint64_t
primitiveCount(PrimitiveTopology topology, std::uint64_t vertex_count)
{
    switch (topology) {
      case PrimitiveTopology::PointList:
        return vertex_count;
      case PrimitiveTopology::LineList:
        return vertex_count / 2;
      case PrimitiveTopology::LineStrip:
        return vertex_count >= 2 ? vertex_count - 1 : 0;
      case PrimitiveTopology::TriangleList:
        return vertex_count / 3;
      case PrimitiveTopology::TriangleStrip:
        return vertex_count >= 3 ? vertex_count - 2 : 0;
    }
    GWS_PANIC("unknown topology ", static_cast<int>(topology));
}

std::uint32_t
verticesPerPrimitive(PrimitiveTopology topology)
{
    switch (topology) {
      case PrimitiveTopology::PointList:
        return 1;
      case PrimitiveTopology::LineList:
        return 2;
      case PrimitiveTopology::LineStrip:
        return 1;
      case PrimitiveTopology::TriangleList:
        return 3;
      case PrimitiveTopology::TriangleStrip:
        return 1;
    }
    GWS_PANIC("unknown topology ", static_cast<int>(topology));
}

} // namespace gws
