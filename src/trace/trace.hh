/**
 * @file
 * A trace: a named sequence of frames plus the shader / texture /
 * render-target tables those frames reference. This is the on-disk and
 * in-memory unit a capture tool would produce for one game run.
 */

#ifndef GWS_TRACE_TRACE_HH
#define GWS_TRACE_TRACE_HH

#include <string>
#include <vector>

#include "shader/shader_library.hh"
#include "trace/frame.hh"
#include "trace/resources.hh"

namespace gws {

/** A complete captured (or synthesized) 3D workload. */
class Trace
{
  public:
    /** Construct an empty trace with a name. */
    explicit Trace(std::string name = "unnamed") : traceName(std::move(name)) {}

    /** Workload name, e.g. "shock1". */
    const std::string &name() const { return traceName; }

    /** Rename (used by subset extraction). */
    void setName(std::string name) { traceName = std::move(name); }

    /** Shader table. */
    const ShaderLibrary &shaders() const { return shaderTable; }
    ShaderLibrary &shaders() { return shaderTable; }

    /** Register a texture; returns its id. */
    TextureId addTexture(TextureDesc desc);

    /** Register a render target; returns its id. */
    RenderTargetId addRenderTarget(RenderTargetDesc desc);

    /** Texture lookup; panics when out of range. */
    const TextureDesc &texture(TextureId id) const;

    /** Render-target lookup; panics when out of range. */
    const RenderTargetDesc &renderTarget(RenderTargetId id) const;

    /** All textures. */
    const std::vector<TextureDesc> &textures() const { return textureTable; }

    /** All render targets. */
    const std::vector<RenderTargetDesc> &
    renderTargets() const
    {
        return renderTargetTable;
    }

    /** Append a frame (its index must equal frameCount()). */
    void addFrame(Frame frame);

    /** All frames in order. */
    const std::vector<Frame> &frames() const { return frameList; }

    /** Frame by index. */
    const Frame &frame(std::size_t i) const;

    /** Number of frames. */
    std::size_t frameCount() const { return frameList.size(); }

    /** Total draw calls over all frames. */
    std::uint64_t totalDraws() const;

    /** Total bytes bound as textures by any draw (sum of table). */
    std::uint64_t textureBytes() const;

    /**
     * Process-unique identity of the texture table's current state.
     * Refreshed by addTexture(), shared by copies (their tables are
     * identical), and excluded from equality — it identifies *this*
     * table instance, not its content. Memo caches keyed on texture
     * descriptors (see MemorySystem's bound-texture memo) use it to
     * stay valid across trace copies without risking stale hits when
     * an address or id is reused by a different trace.
     */
    std::uint64_t textureEpoch() const { return texEpoch; }

    /**
     * Cross-checks internal consistency: every shader / texture /
     * render-target id referenced by any draw resolves, shader stages
     * match their binding points, frame indices are dense, and counts
     * are sane. Panics on the first violation (these are generator or
     * deserializer bugs, not user errors).
     */
    void validate() const;

    /** Equality over all content (serialization round-trip tests). */
    bool operator==(const Trace &other) const;

  private:
    std::string traceName;
    ShaderLibrary shaderTable;
    std::vector<TextureDesc> textureTable;
    std::vector<RenderTargetDesc> renderTargetTable;
    std::vector<Frame> frameList;
    std::uint64_t texEpoch = nextTextureEpoch();

    /** Fresh process-unique epoch value (atomic counter). */
    static std::uint64_t nextTextureEpoch();
};

} // namespace gws

#endif // GWS_TRACE_TRACE_HH
