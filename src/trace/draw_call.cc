#include "trace/draw_call.hh"

#include <cmath>

namespace gws {

std::uint64_t
DrawCall::vertices() const
{
    return static_cast<std::uint64_t>(vertexCount) * instanceCount;
}

std::uint64_t
DrawCall::primitives() const
{
    return primitiveCount(topology, vertexCount) * instanceCount;
}

std::uint64_t
DrawCall::vertexFetchBytes() const
{
    return vertices() * vertexStrideBytes;
}

std::uint64_t
DrawCall::coveredPixels() const
{
    if (overdraw <= 1.0)
        return shadedPixels;
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(shadedPixels) / overdraw));
}

} // namespace gws
