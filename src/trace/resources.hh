/**
 * @file
 * GPU resource descriptors referenced by draw calls: textures and
 * render targets. Like shaders, resources are stored in dense per-trace
 * tables and referenced by index.
 */

#ifndef GWS_TRACE_RESOURCES_HH
#define GWS_TRACE_RESOURCES_HH

#include <cstdint>
#include <string>

namespace gws {

/** Index of a texture in a trace's texture table. */
using TextureId = std::uint32_t;

/** Index of a render target in a trace's render-target table. */
using RenderTargetId = std::uint32_t;

/** Sentinel for "no resource". */
constexpr std::uint32_t invalidResourceId = UINT32_MAX;

/** Immutable description of a texture resource. */
struct TextureDesc
{
    /** Texel width. */
    std::uint32_t width = 0;

    /** Texel height. */
    std::uint32_t height = 0;

    /** Bytes per texel of the storage format. */
    std::uint32_t bytesPerTexel = 4;

    /** Whether a full mip chain is present (adds ~1/3 storage). */
    bool mipmapped = true;

    /** Total storage footprint in bytes (incl. mip chain when present). */
    std::uint64_t sizeBytes() const;

    /** Equality over all fields. */
    bool operator==(const TextureDesc &other) const = default;
};

/** Immutable description of a render target (color or depth). */
struct RenderTargetDesc
{
    /** Pixel width. */
    std::uint32_t width = 0;

    /** Pixel height. */
    std::uint32_t height = 0;

    /** Bytes per pixel of the attachment format. */
    std::uint32_t bytesPerPixel = 4;

    /** Pixel area. */
    std::uint64_t pixels() const
    {
        return static_cast<std::uint64_t>(width) * height;
    }

    /** Storage footprint in bytes. */
    std::uint64_t sizeBytes() const { return pixels() * bytesPerPixel; }

    /** Equality over all fields. */
    bool operator==(const RenderTargetDesc &other) const = default;
};

} // namespace gws

#endif // GWS_TRACE_RESOURCES_HH
