#include "trace/trace_stats.hh"

namespace gws {

TraceStats
computeTraceStats(const Trace &trace)
{
    TraceStats s;
    s.frames = trace.frameCount();
    s.shaderPrograms = trace.shaders().size();
    s.pixelShaderPrograms = trace.shaders().countStage(ShaderStage::Pixel);
    s.textureBytes = trace.textureBytes();

    double overdraw_weighted = 0.0;
    double ps_per_frame_sum = 0.0;
    for (const auto &frame : trace.frames()) {
        s.draws += frame.drawCount();
        s.vertices += frame.totalVertices();
        s.shadedPixels += frame.totalShadedPixels();
        ps_per_frame_sum += static_cast<double>(
            frame.pixelShaderSet().size());
        for (const auto &d : frame.draws())
            overdraw_weighted += d.overdraw *
                                 static_cast<double>(d.shadedPixels);
    }
    if (s.frames > 0) {
        s.drawsPerFrame = static_cast<double>(s.draws) /
                          static_cast<double>(s.frames);
        s.pixelShadersPerFrame = ps_per_frame_sum /
                                 static_cast<double>(s.frames);
    }
    if (s.shadedPixels > 0)
        s.meanOverdraw = overdraw_weighted /
                         static_cast<double>(s.shadedPixels);
    return s;
}

} // namespace gws
