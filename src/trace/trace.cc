#include "trace/trace.hh"

#include <atomic>

#include "util/logging.hh"

namespace gws {

std::uint64_t
Trace::nextTextureEpoch()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

bool
Trace::operator==(const Trace &other) const
{
    // Content equality only: texEpoch identifies a table instance, not
    // its content, so a serialization round trip stays equal.
    return traceName == other.traceName &&
           shaderTable == other.shaderTable &&
           textureTable == other.textureTable &&
           renderTargetTable == other.renderTargetTable &&
           frameList == other.frameList;
}

TextureId
Trace::addTexture(TextureDesc desc)
{
    const auto id = static_cast<TextureId>(textureTable.size());
    GWS_ASSERT(id != invalidResourceId, "texture table full");
    textureTable.push_back(desc);
    // The table changed: divorce this trace from any memo entries
    // recorded against its previous state (see textureEpoch()).
    texEpoch = nextTextureEpoch();
    return id;
}

RenderTargetId
Trace::addRenderTarget(RenderTargetDesc desc)
{
    const auto id = static_cast<RenderTargetId>(renderTargetTable.size());
    GWS_ASSERT(id != invalidResourceId, "render-target table full");
    renderTargetTable.push_back(desc);
    return id;
}

const TextureDesc &
Trace::texture(TextureId id) const
{
    GWS_ASSERT(id < textureTable.size(), "texture id out of range: ", id);
    return textureTable[id];
}

const RenderTargetDesc &
Trace::renderTarget(RenderTargetId id) const
{
    GWS_ASSERT(id < renderTargetTable.size(),
               "render-target id out of range: ", id);
    return renderTargetTable[id];
}

void
Trace::addFrame(Frame frame)
{
    GWS_ASSERT(frame.index() == frameList.size(),
               "frame index ", frame.index(), " appended at position ",
               frameList.size());
    frameList.push_back(std::move(frame));
}

const Frame &
Trace::frame(std::size_t i) const
{
    GWS_ASSERT(i < frameList.size(), "frame index out of range: ", i);
    return frameList[i];
}

std::uint64_t
Trace::totalDraws() const
{
    std::uint64_t total = 0;
    for (const auto &f : frameList)
        total += f.drawCount();
    return total;
}

std::uint64_t
Trace::textureBytes() const
{
    std::uint64_t total = 0;
    for (const auto &t : textureTable)
        total += t.sizeBytes();
    return total;
}

void
Trace::validate() const
{
    for (std::size_t fi = 0; fi < frameList.size(); ++fi) {
        const Frame &f = frameList[fi];
        GWS_ASSERT(f.index() == fi, "frame ", fi, " carries index ",
                   f.index());
        for (std::size_t di = 0; di < f.draws().size(); ++di) {
            const DrawCall &d = f.draws()[di];
            const RenderState &s = d.state;
            GWS_ASSERT(shaderTable.contains(s.vertexShader),
                       "frame ", fi, " draw ", di,
                       ": dangling vertex shader ", s.vertexShader);
            GWS_ASSERT(shaderTable.contains(s.pixelShader),
                       "frame ", fi, " draw ", di,
                       ": dangling pixel shader ", s.pixelShader);
            GWS_ASSERT(shaderTable.get(s.vertexShader).stage() ==
                           ShaderStage::Vertex,
                       "frame ", fi, " draw ", di,
                       ": VS slot bound to a non-vertex shader");
            GWS_ASSERT(shaderTable.get(s.pixelShader).stage() ==
                           ShaderStage::Pixel,
                       "frame ", fi, " draw ", di,
                       ": PS slot bound to a non-pixel shader");
            for (TextureId t : s.textures) {
                GWS_ASSERT(t < textureTable.size(), "frame ", fi, " draw ",
                           di, ": dangling texture ", t);
            }
            GWS_ASSERT(s.renderTarget < renderTargetTable.size(),
                       "frame ", fi, " draw ", di,
                       ": dangling render target ", s.renderTarget);
            GWS_ASSERT(d.instanceCount >= 1, "frame ", fi, " draw ", di,
                       ": zero instance count");
            GWS_ASSERT(d.overdraw >= 1.0, "frame ", fi, " draw ", di,
                       ": overdraw below 1: ", d.overdraw);
            GWS_ASSERT(d.texLocality >= 0.0 && d.texLocality <= 1.0,
                       "frame ", fi, " draw ", di,
                       ": texLocality out of [0,1]: ", d.texLocality);
            const auto rt_pixels = renderTargetTable[s.renderTarget].pixels();
            GWS_ASSERT(d.coveredPixels() <= rt_pixels,
                       "frame ", fi, " draw ", di, ": covers ",
                       d.coveredPixels(), " pixels but target has only ",
                       rt_pixels);
        }
    }
}

} // namespace gws
