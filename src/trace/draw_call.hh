/**
 * @file
 * The draw call — the unit of work the whole methodology operates on.
 *
 * A DrawCall records the API-visible render state plus the
 * micro-architecture-independent execution statistics that a capture
 * tool with GPU counters would attach (shaded-pixel count, overdraw,
 * texture locality). It deliberately records nothing that depends on a
 * particular GPU configuration.
 */

#ifndef GWS_TRACE_DRAW_CALL_HH
#define GWS_TRACE_DRAW_CALL_HH

#include <cstdint>
#include <vector>

#include "shader/shader_program.hh"
#include "trace/resources.hh"
#include "trace/topology.hh"

namespace gws {

/**
 * The pipeline state bound for one draw call (the subset of D3D10/GL3
 * state that affects per-draw cost).
 */
struct RenderState
{
    /** Bound vertex shader. */
    ShaderId vertexShader = invalidShaderId;

    /** Bound pixel shader. */
    ShaderId pixelShader = invalidShaderId;

    /** Bound texture resources (pixel-shader stage). */
    std::vector<TextureId> textures;

    /** Color render target. */
    RenderTargetId renderTarget = invalidResourceId;

    /** Alpha blending enabled (render target is read-modify-write). */
    bool blendEnabled = false;

    /** Depth test enabled (depth buffer is read). */
    bool depthTestEnabled = true;

    /** Depth writes enabled (depth buffer is written). */
    bool depthWriteEnabled = true;

    /** Equality over all fields. */
    bool operator==(const RenderState &other) const = default;
};

/**
 * One draw call: render state, geometry submission, and capture-side
 * execution statistics.
 */
struct DrawCall
{
    /** Bound pipeline state. */
    RenderState state;

    /** Vertices submitted per instance. */
    std::uint32_t vertexCount = 0;

    /** Instance count (>= 1). */
    std::uint32_t instanceCount = 1;

    /** Primitive topology. */
    PrimitiveTopology topology = PrimitiveTopology::TriangleList;

    /** Vertex size in bytes (attribute fetch traffic per vertex). */
    std::uint32_t vertexStrideBytes = 32;

    /**
     * Pixel-shader invocations this draw produced (includes overdraw;
     * excludes pixels culled before shading). A capture tool reads this
     * from pipeline statistics queries.
     */
    std::uint64_t shadedPixels = 0;

    /**
     * Average shaded-samples-per-covered-pixel (>= 1); 1 means no
     * overdraw within this draw.
     */
    double overdraw = 1.0;

    /**
     * Spatial locality of this draw's texture accesses in [0, 1];
     * higher values mean nearby fragments fetch nearby texels. Micro-
     * architecture independent (a property of UVs, not of any cache).
     */
    double texLocality = 0.85;

    /**
     * Generator-side material tag. Ground truth for validation only —
     * the subsetting methodology itself never reads it.
     */
    std::uint32_t materialId = 0;

    /** Total vertex-shader invocations: vertexCount x instanceCount. */
    std::uint64_t vertices() const;

    /** Primitives assembled across all instances. */
    std::uint64_t primitives() const;

    /** Vertex attribute bytes fetched. */
    std::uint64_t vertexFetchBytes() const;

    /** Covered pixels net of overdraw (shadedPixels / overdraw). */
    std::uint64_t coveredPixels() const;

    /** Equality over all fields. */
    bool operator==(const DrawCall &other) const = default;
};

} // namespace gws

#endif // GWS_TRACE_DRAW_CALL_HH
