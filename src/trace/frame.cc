#include "trace/frame.hh"

namespace gws {

std::uint64_t
Frame::totalVertices() const
{
    std::uint64_t total = 0;
    for (const auto &d : drawList)
        total += d.vertices();
    return total;
}

std::uint64_t
Frame::totalShadedPixels() const
{
    std::uint64_t total = 0;
    for (const auto &d : drawList)
        total += d.shadedPixels;
    return total;
}

std::set<ShaderId>
Frame::pixelShaderSet() const
{
    std::set<ShaderId> out;
    for (const auto &d : drawList) {
        if (d.state.pixelShader != invalidShaderId)
            out.insert(d.state.pixelShader);
    }
    return out;
}

std::set<ShaderId>
Frame::shaderSet() const
{
    std::set<ShaderId> out;
    for (const auto &d : drawList) {
        if (d.state.vertexShader != invalidShaderId)
            out.insert(d.state.vertexShader);
        if (d.state.pixelShader != invalidShaderId)
            out.insert(d.state.pixelShader);
    }
    return out;
}

} // namespace gws
