/**
 * @file
 * The `gws.wtrc.v1` chunked on-disk work-trace container.
 *
 * A WorkTrace flattened for a multi-million-draw corpus no longer
 * fits the in-RAM SoA image, so the streaming sweep engine spills it
 * through this container: a 16-byte framed file header (magic "GWTC",
 * same { magic, version, size, checksum } shape as every other gws
 * format) whose payload records the capacity hash and the global
 * row/group/chunk totals, followed by one independently framed chunk
 * per bounded window (magic "GWCH"). Chunk boundaries are
 * frame-aligned: every chunk carries whole groups (frames), so a
 * consumer that processes chunks in order and reduces groups in
 * ascending index order reproduces the in-memory engine's accumulation
 * order bit for bit.
 *
 * Each chunk payload is
 *
 *   { chunkIndex, firstGroup, groupCount, groupSizes[groupCount],
 *     rowCount, column-major f64 columns[wtrcColumnCount × rowCount] }
 *
 * storing only the twelve *raw* DrawWork columns; the four derived
 * columns (L2/DRAM totals, weighted-op products) are recomputed at
 * load time with exactly the build-time expressions, so a loaded
 * chunk is bit-identical to the chunk that was spilled.
 *
 * Decoding has the full PR-5 strictness: bounds-checked ByteReader,
 * checkCount() before any count-driven allocation, canonical
 * encoding (redundant sequence fields — chunk index, first group —
 * are validated, never trusted), and a finish() pass that rejects
 * trailing bytes or header totals that disagree with the chunks
 * actually read. Malformed input throws WtrcError (rooted at
 * IoError), never UB or a silently-wrong chunk.
 */

#ifndef GWS_TRACE_WTRC_IO_HH
#define GWS_TRACE_WTRC_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/error.hh"

namespace gws {

/** Error thrown when a wtrc stream or file cannot be decoded. */
class WtrcError : public IoError
{
  public:
    using IoError::IoError;
};

/** Current wtrc container format version. */
constexpr std::uint32_t wtrcFormatVersion = 1;

/** Raw DrawWork columns stored per chunk (derived columns are
 *  recomputed at load time). */
constexpr std::size_t wtrcColumnCount = 12;

/** One decoded chunk: whole groups, column-major raw columns. */
struct WtrcChunk
{
    /** Position of this chunk in the container (validated). */
    std::uint32_t index = 0;

    /** Global index of the chunk's first group (validated). */
    std::uint64_t firstGroup = 0;

    /** Rows per group, in group order. */
    std::vector<std::uint32_t> groupSizes;

    /** Total rows of the chunk (== sum of groupSizes). */
    std::uint64_t rows = 0;

    /** wtrcColumnCount × rows doubles, column-major. */
    std::vector<double> columns;

    /** Start of raw column `c`. */
    const double *
    column(std::size_t c) const
    {
        return columns.data() + c * rows;
    }
};

/**
 * Sequential chunk writer. Writes a placeholder header up front,
 * appends framed chunks, and patches the header (row/group/chunk
 * totals) in finish() — so the stream must be seekable (a file or a
 * stringstream). Append order defines chunk and group order.
 */
class WtrcWriter
{
  public:
    /** Start a container for work computed under `capacity_key`. */
    WtrcWriter(std::ostream &os, std::uint64_t capacity_key);

    /**
     * Append one chunk of whole groups. `columns` holds
     * wtrcColumnCount pointers, each to `rows` doubles (the raw
     * column slices of the resident window). `rows` must equal the
     * sum of `group_sizes`.
     */
    void appendChunk(const std::vector<std::uint32_t> &group_sizes,
                     const double *const columns[], std::size_t rows);

    /** Patch the header totals; no appends afterwards. */
    void finish();

    /** Payload bytes written across all chunk frames so far. */
    std::uint64_t chunkBytesWritten() const { return bytesWritten; }

  private:
    std::ostream &out;
    std::uint64_t capKey = 0;
    std::uint64_t totalRows = 0;
    std::uint64_t totalGroups = 0;
    std::uint32_t chunks = 0;
    std::uint64_t bytesWritten = 0;
    bool finished = false;
};

/**
 * Sequential chunk reader (the bounded-window `ChunkReader`): decodes
 * the header eagerly, then one framed chunk per readChunk() call, so
 * at most one chunk's columns are ever resident. finish() validates
 * the end-of-file invariants. rewind() seeks back to the first chunk
 * for another pass.
 */
class WtrcReader
{
  public:
    /** Decode and validate the file header; throws WtrcError. */
    explicit WtrcReader(std::istream &is);

    /** Capacity hash the spilled work was computed under. */
    std::uint64_t capacityKey() const { return capKey; }

    /** Total rows across all chunks (from the header). */
    std::uint64_t totalRows() const { return headerRows; }

    /** Total groups across all chunks (from the header). */
    std::uint64_t totalGroups() const { return headerGroups; }

    /** Chunks in the container (from the header). */
    std::uint32_t chunkCount() const { return headerChunks; }

    /** Chunks decoded so far. */
    std::uint32_t chunksRead() const { return nextChunk; }

    /** Decode the next chunk; validates the chunk sequence fields. */
    WtrcChunk readChunk();

    /**
     * After the last chunk: reject trailing bytes and header totals
     * that disagree with the decoded chunks. Throws WtrcError.
     */
    void finish();

    /** Seek back to the first chunk for another sequential pass. */
    void rewind();

  private:
    std::istream &in;
    std::uint64_t capKey = 0;
    std::uint64_t headerRows = 0;
    std::uint64_t headerGroups = 0;
    std::uint32_t headerChunks = 0;
    std::uint32_t nextChunk = 0;
    std::uint64_t nextGroup = 0;
    std::uint64_t rowsRead = 0;
};

} // namespace gws

#endif // GWS_TRACE_WTRC_IO_HH
