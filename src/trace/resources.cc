#include "trace/resources.hh"

namespace gws {

std::uint64_t
TextureDesc::sizeBytes() const
{
    const std::uint64_t base =
        static_cast<std::uint64_t>(width) * height * bytesPerTexel;
    // A full mip pyramid adds a geometric series that converges to 1/3
    // of the base level.
    return mipmapped ? base + base / 3 : base;
}

} // namespace gws
