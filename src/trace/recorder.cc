#include "trace/recorder.hh"

#include <cmath>

#include "util/logging.hh"

namespace gws {

TraceRecorder::TraceRecorder(std::string name)
    : trace(std::move(name)), current(0)
{
}

ShaderId
TraceRecorder::createVertexShader(std::string name, InstructionMix mix,
                                  std::uint32_t temp_registers)
{
    return trace.shaders().add(ShaderStage::Vertex, std::move(name), mix,
                               temp_registers);
}

ShaderId
TraceRecorder::createPixelShader(std::string name, InstructionMix mix,
                                 std::uint32_t temp_registers)
{
    return trace.shaders().add(ShaderStage::Pixel, std::move(name), mix,
                               temp_registers);
}

TextureId
TraceRecorder::createTexture(TextureDesc desc)
{
    return trace.addTexture(desc);
}

RenderTargetId
TraceRecorder::createRenderTarget(RenderTargetDesc desc)
{
    return trace.addRenderTarget(desc);
}

void
TraceRecorder::bindShaders(ShaderId vertex, ShaderId pixel)
{
    if (!trace.shaders().contains(vertex))
        GWS_FATAL("bindShaders: unknown vertex shader id ", vertex);
    if (!trace.shaders().contains(pixel))
        GWS_FATAL("bindShaders: unknown pixel shader id ", pixel);
    if (trace.shaders().get(vertex).stage() != ShaderStage::Vertex)
        GWS_FATAL("bindShaders: shader ", vertex,
                  " is not a vertex shader");
    if (trace.shaders().get(pixel).stage() != ShaderStage::Pixel)
        GWS_FATAL("bindShaders: shader ", pixel,
                  " is not a pixel shader");
    boundVs = vertex;
    boundPs = pixel;
}

void
TraceRecorder::bindTextures(std::vector<TextureId> textures)
{
    for (TextureId id : textures) {
        if (id >= trace.textures().size())
            GWS_FATAL("bindTextures: unknown texture id ", id);
    }
    boundTextures = std::move(textures);
}

void
TraceRecorder::bindRenderTarget(RenderTargetId target)
{
    if (target >= trace.renderTargets().size())
        GWS_FATAL("bindRenderTarget: unknown render target id ", target);
    boundTarget = target;
}

void
TraceRecorder::setBlendEnabled(bool enabled)
{
    blendEnabled = enabled;
}

void
TraceRecorder::setDepthTestEnabled(bool enabled)
{
    depthTestEnabled = enabled;
}

void
TraceRecorder::setDepthWriteEnabled(bool enabled)
{
    depthWriteEnabled = enabled;
}

void
TraceRecorder::draw(const DrawParams &params)
{
    if (!boundVs || !boundPs)
        GWS_FATAL("draw: no shaders bound");
    if (!boundTarget)
        GWS_FATAL("draw: no render target bound");
    if (params.instanceCount < 1)
        GWS_FATAL("draw: instance count must be at least 1");
    if (params.overdraw < 1.0)
        GWS_FATAL("draw: overdraw below 1: ", params.overdraw);
    if (params.texLocality < 0.0 || params.texLocality > 1.0)
        GWS_FATAL("draw: texLocality outside [0,1]: ",
                  params.texLocality);

    DrawCall d;
    d.state.vertexShader = *boundVs;
    d.state.pixelShader = *boundPs;
    d.state.textures = boundTextures;
    d.state.renderTarget = *boundTarget;
    d.state.blendEnabled = blendEnabled;
    d.state.depthTestEnabled = depthTestEnabled;
    d.state.depthWriteEnabled = depthWriteEnabled;
    d.vertexCount = params.vertexCount;
    d.instanceCount = params.instanceCount;
    d.topology = params.topology;
    d.vertexStrideBytes = params.vertexStrideBytes;
    d.shadedPixels = params.shadedPixels;
    d.overdraw = params.overdraw;
    d.texLocality = params.texLocality;
    d.materialId = params.materialId;

    const std::uint64_t rt_pixels =
        trace.renderTarget(*boundTarget).pixels();
    if (d.coveredPixels() > rt_pixels) {
        GWS_FATAL("draw: covers ", d.coveredPixels(),
                  " pixels but the bound target has only ", rt_pixels);
    }
    current.addDraw(std::move(d));
}

void
TraceRecorder::present()
{
    const auto next_index =
        static_cast<std::uint32_t>(trace.frameCount() + 1);
    trace.addFrame(std::move(current));
    current = Frame(next_index);
}

std::size_t
TraceRecorder::pendingDraws() const
{
    return current.drawCount();
}

Trace
TraceRecorder::finish() &&
{
    if (current.drawCount() > 0)
        present();
    trace.validate();
    return std::move(trace);
}

} // namespace gws
