/**
 * @file
 * Primitive topology enumeration and vertex-to-primitive math, matching
 * the Direct3D 10 / OpenGL 3 topologies the paper's workloads use.
 */

#ifndef GWS_TRACE_TOPOLOGY_HH
#define GWS_TRACE_TOPOLOGY_HH

#include <cstdint>

namespace gws {

/** Primitive assembly topology of a draw call. */
enum class PrimitiveTopology : std::uint8_t
{
    PointList = 0,
    LineList = 1,
    LineStrip = 2,
    TriangleList = 3,
    TriangleStrip = 4,
};

/** Printable name of a topology. */
const char *toString(PrimitiveTopology topology);

/**
 * Number of primitives assembled from vertex_count vertices under the
 * given topology (0 when there are too few vertices to form one).
 */
std::uint64_t primitiveCount(PrimitiveTopology topology,
                             std::uint64_t vertex_count);

/** Vertices consumed per primitive for list topologies; strip step = 1. */
std::uint32_t verticesPerPrimitive(PrimitiveTopology topology);

} // namespace gws

#endif // GWS_TRACE_TOPOLOGY_HH
