#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace gws {

namespace {

constexpr std::uint32_t traceMagic = 0x54535747; // "GWST" little-endian

std::uint32_t
checksum32(const std::string &payload)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : payload) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

/** Append-only little-endian encoder into a string buffer. */
class Encoder
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf.append(s);
    }

    const std::string &data() const { return buf; }

  private:
    std::string buf;
};

/** Bounds-checked little-endian decoder over a string buffer. */
class Decoder
{
  public:
    explicit Decoder(std::string data) : buf(std::move(data)) {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(buf[pos++]);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(buf[pos++]))
                 << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[pos++]))
                 << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }

    bool exhausted() const { return pos == buf.size(); }

  private:
    void
    need(std::size_t n)
    {
        if (pos + n > buf.size())
            throw TraceIoError("trace payload truncated at byte " +
                               std::to_string(pos));
    }

    std::string buf;
    std::size_t pos = 0;
};

void
encodeDraw(Encoder &e, const DrawCall &d)
{
    e.u32(d.state.vertexShader);
    e.u32(d.state.pixelShader);
    e.u32(static_cast<std::uint32_t>(d.state.textures.size()));
    for (TextureId t : d.state.textures)
        e.u32(t);
    e.u32(d.state.renderTarget);
    e.u8(d.state.blendEnabled ? 1 : 0);
    e.u8(d.state.depthTestEnabled ? 1 : 0);
    e.u8(d.state.depthWriteEnabled ? 1 : 0);
    e.u32(d.vertexCount);
    e.u32(d.instanceCount);
    e.u8(static_cast<std::uint8_t>(d.topology));
    e.u32(d.vertexStrideBytes);
    e.u64(d.shadedPixels);
    e.f64(d.overdraw);
    e.f64(d.texLocality);
    e.u32(d.materialId);
}

DrawCall
decodeDraw(Decoder &dec)
{
    DrawCall d;
    d.state.vertexShader = dec.u32();
    d.state.pixelShader = dec.u32();
    const std::uint32_t n_tex = dec.u32();
    d.state.textures.reserve(n_tex);
    for (std::uint32_t i = 0; i < n_tex; ++i)
        d.state.textures.push_back(dec.u32());
    d.state.renderTarget = dec.u32();
    d.state.blendEnabled = dec.u8() != 0;
    d.state.depthTestEnabled = dec.u8() != 0;
    d.state.depthWriteEnabled = dec.u8() != 0;
    d.vertexCount = dec.u32();
    d.instanceCount = dec.u32();
    const std::uint8_t topo = dec.u8();
    if (topo > static_cast<std::uint8_t>(PrimitiveTopology::TriangleStrip))
        throw TraceIoError("invalid topology value " +
                           std::to_string(topo));
    d.topology = static_cast<PrimitiveTopology>(topo);
    d.vertexStrideBytes = dec.u32();
    d.shadedPixels = dec.u64();
    d.overdraw = dec.f64();
    d.texLocality = dec.f64();
    d.materialId = dec.u32();
    return d;
}

std::string
encodePayload(const Trace &trace)
{
    Encoder e;
    e.str(trace.name());

    e.u32(static_cast<std::uint32_t>(trace.shaders().size()));
    for (const auto &sh : trace.shaders()) {
        e.u8(static_cast<std::uint8_t>(sh.stage()));
        e.str(sh.name());
        const InstructionMix &m = sh.mix();
        e.u32(m.aluOps);
        e.u32(m.maddOps);
        e.u32(m.specialOps);
        e.u32(m.texOps);
        e.u32(m.interpOps);
        e.u32(m.controlOps);
        e.u32(sh.tempRegisters());
    }

    e.u32(static_cast<std::uint32_t>(trace.textures().size()));
    for (const auto &t : trace.textures()) {
        e.u32(t.width);
        e.u32(t.height);
        e.u32(t.bytesPerTexel);
        e.u8(t.mipmapped ? 1 : 0);
    }

    e.u32(static_cast<std::uint32_t>(trace.renderTargets().size()));
    for (const auto &rt : trace.renderTargets()) {
        e.u32(rt.width);
        e.u32(rt.height);
        e.u32(rt.bytesPerPixel);
    }

    e.u32(static_cast<std::uint32_t>(trace.frameCount()));
    for (const auto &frame : trace.frames()) {
        e.u32(static_cast<std::uint32_t>(frame.drawCount()));
        for (const auto &d : frame.draws())
            encodeDraw(e, d);
    }
    return e.data();
}

Trace
decodePayload(const std::string &payload)
{
    Decoder dec(payload);
    Trace trace(dec.str());

    const std::uint32_t n_shaders = dec.u32();
    for (std::uint32_t i = 0; i < n_shaders; ++i) {
        const std::uint8_t stage = dec.u8();
        if (stage > static_cast<std::uint8_t>(ShaderStage::Pixel))
            throw TraceIoError("invalid shader stage " +
                               std::to_string(stage));
        std::string name = dec.str();
        InstructionMix m;
        m.aluOps = dec.u32();
        m.maddOps = dec.u32();
        m.specialOps = dec.u32();
        m.texOps = dec.u32();
        m.interpOps = dec.u32();
        m.controlOps = dec.u32();
        const std::uint32_t regs = dec.u32();
        trace.shaders().add(static_cast<ShaderStage>(stage),
                            std::move(name), m, regs);
    }

    const std::uint32_t n_tex = dec.u32();
    for (std::uint32_t i = 0; i < n_tex; ++i) {
        TextureDesc t;
        t.width = dec.u32();
        t.height = dec.u32();
        t.bytesPerTexel = dec.u32();
        t.mipmapped = dec.u8() != 0;
        trace.addTexture(t);
    }

    const std::uint32_t n_rt = dec.u32();
    for (std::uint32_t i = 0; i < n_rt; ++i) {
        RenderTargetDesc rt;
        rt.width = dec.u32();
        rt.height = dec.u32();
        rt.bytesPerPixel = dec.u32();
        trace.addRenderTarget(rt);
    }

    const std::uint32_t n_frames = dec.u32();
    for (std::uint32_t fi = 0; fi < n_frames; ++fi) {
        Frame frame(fi);
        const std::uint32_t n_draws = dec.u32();
        for (std::uint32_t di = 0; di < n_draws; ++di)
            frame.addDraw(decodeDraw(dec));
        trace.addFrame(std::move(frame));
    }

    if (!dec.exhausted())
        throw TraceIoError("trailing bytes after trace payload");
    return trace;
}

} // namespace

void
writeTrace(const Trace &trace, std::ostream &os)
{
    const std::string payload = encodePayload(trace);
    Encoder header;
    header.u32(traceMagic);
    header.u32(traceFormatVersion);
    header.u32(static_cast<std::uint32_t>(payload.size()));
    header.u32(checksum32(payload));
    os.write(header.data().data(),
             static_cast<std::streamsize>(header.data().size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!os)
        throw TraceIoError("stream write failed for trace '" +
                           trace.name() + "'");
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw TraceIoError("cannot open '" + path + "' for writing");
    writeTrace(trace, ofs);
}

Trace
readTrace(std::istream &is)
{
    char raw_header[16];
    is.read(raw_header, sizeof(raw_header));
    if (is.gcount() != sizeof(raw_header))
        throw TraceIoError("trace header truncated");
    Decoder header(std::string(raw_header, sizeof(raw_header)));
    if (header.u32() != traceMagic)
        throw TraceIoError("bad magic: not a gws trace");
    const std::uint32_t version = header.u32();
    if (version != traceFormatVersion)
        throw TraceIoError("unsupported trace format version " +
                           std::to_string(version));
    const std::uint32_t size = header.u32();
    const std::uint32_t expect_sum = header.u32();

    std::string payload(size, '\0');
    is.read(payload.data(), static_cast<std::streamsize>(size));
    if (static_cast<std::uint32_t>(is.gcount()) != size)
        throw TraceIoError("trace payload truncated");
    if (checksum32(payload) != expect_sum)
        throw TraceIoError("trace checksum mismatch (corrupt file)");
    return decodePayload(payload);
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throw TraceIoError("cannot open '" + path + "' for reading");
    return readTrace(ifs);
}

} // namespace gws
