#include "trace/trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/codec.hh"

namespace gws {

namespace {

constexpr std::uint32_t traceMagic = 0x54535747; // "GWST" little-endian

using Reader = ByteReader<TraceIoError>;

void
encodeDraw(ByteWriter &e, const DrawCall &d)
{
    e.u32(d.state.vertexShader);
    e.u32(d.state.pixelShader);
    e.u32(static_cast<std::uint32_t>(d.state.textures.size()));
    for (TextureId t : d.state.textures)
        e.u32(t);
    e.u32(d.state.renderTarget);
    e.u8(d.state.blendEnabled ? 1 : 0);
    e.u8(d.state.depthTestEnabled ? 1 : 0);
    e.u8(d.state.depthWriteEnabled ? 1 : 0);
    e.u32(d.vertexCount);
    e.u32(d.instanceCount);
    e.u8(static_cast<std::uint8_t>(d.topology));
    e.u32(d.vertexStrideBytes);
    e.u64(d.shadedPixels);
    e.f64(d.overdraw);
    e.f64(d.texLocality);
    e.u32(d.materialId);
}

DrawCall
decodeDraw(Reader &dec)
{
    DrawCall d;
    d.state.vertexShader = dec.u32();
    d.state.pixelShader = dec.u32();
    const std::uint32_t n_tex = dec.u32();
    dec.checkCount(n_tex, 4, "texture-binding");
    d.state.textures.reserve(n_tex);
    for (std::uint32_t i = 0; i < n_tex; ++i)
        d.state.textures.push_back(dec.u32());
    d.state.renderTarget = dec.u32();
    d.state.blendEnabled = dec.boolean();
    d.state.depthTestEnabled = dec.boolean();
    d.state.depthWriteEnabled = dec.boolean();
    d.vertexCount = dec.u32();
    d.instanceCount = dec.u32();
    const std::uint8_t topo = dec.u8();
    if (topo > static_cast<std::uint8_t>(PrimitiveTopology::TriangleStrip))
        dec.fail("invalid topology value " + std::to_string(topo));
    d.topology = static_cast<PrimitiveTopology>(topo);
    d.vertexStrideBytes = dec.u32();
    d.shadedPixels = dec.u64();
    d.overdraw = dec.f64();
    d.texLocality = dec.f64();
    d.materialId = dec.u32();
    return d;
}

std::string
encodePayload(const Trace &trace)
{
    ByteWriter e;
    e.str(trace.name());

    e.u32(static_cast<std::uint32_t>(trace.shaders().size()));
    for (const auto &sh : trace.shaders()) {
        e.u8(static_cast<std::uint8_t>(sh.stage()));
        e.str(sh.name());
        const InstructionMix &m = sh.mix();
        e.u32(m.aluOps);
        e.u32(m.maddOps);
        e.u32(m.specialOps);
        e.u32(m.texOps);
        e.u32(m.interpOps);
        e.u32(m.controlOps);
        e.u32(sh.tempRegisters());
    }

    e.u32(static_cast<std::uint32_t>(trace.textures().size()));
    for (const auto &t : trace.textures()) {
        e.u32(t.width);
        e.u32(t.height);
        e.u32(t.bytesPerTexel);
        e.u8(t.mipmapped ? 1 : 0);
    }

    e.u32(static_cast<std::uint32_t>(trace.renderTargets().size()));
    for (const auto &rt : trace.renderTargets()) {
        e.u32(rt.width);
        e.u32(rt.height);
        e.u32(rt.bytesPerPixel);
    }

    e.u32(static_cast<std::uint32_t>(trace.frameCount()));
    for (const auto &frame : trace.frames()) {
        e.u32(static_cast<std::uint32_t>(frame.drawCount()));
        for (const auto &d : frame.draws())
            encodeDraw(e, d);
    }
    return e.data();
}

Trace
decodePayload(const std::string &payload)
{
    Reader dec(payload, "trace");
    Trace trace(dec.str());

    // Per-item minimum sizes below are the fixed-width field bytes of
    // each record; they bound reserve() against length-field lies.
    const std::uint32_t n_shaders = dec.u32();
    dec.checkCount(n_shaders, 33, "shader");
    for (std::uint32_t i = 0; i < n_shaders; ++i) {
        const std::uint8_t stage = dec.u8();
        if (stage > static_cast<std::uint8_t>(ShaderStage::Pixel))
            dec.fail("invalid shader stage " + std::to_string(stage));
        std::string name = dec.str();
        InstructionMix m;
        m.aluOps = dec.u32();
        m.maddOps = dec.u32();
        m.specialOps = dec.u32();
        m.texOps = dec.u32();
        m.interpOps = dec.u32();
        m.controlOps = dec.u32();
        const std::uint32_t regs = dec.u32();
        trace.shaders().add(static_cast<ShaderStage>(stage),
                            std::move(name), m, regs);
    }

    const std::uint32_t n_tex = dec.u32();
    dec.checkCount(n_tex, 13, "texture");
    for (std::uint32_t i = 0; i < n_tex; ++i) {
        TextureDesc t;
        t.width = dec.u32();
        t.height = dec.u32();
        t.bytesPerTexel = dec.u32();
        t.mipmapped = dec.boolean();
        trace.addTexture(t);
    }

    const std::uint32_t n_rt = dec.u32();
    dec.checkCount(n_rt, 12, "render-target");
    for (std::uint32_t i = 0; i < n_rt; ++i) {
        RenderTargetDesc rt;
        rt.width = dec.u32();
        rt.height = dec.u32();
        rt.bytesPerPixel = dec.u32();
        trace.addRenderTarget(rt);
    }

    const std::uint32_t n_frames = dec.u32();
    dec.checkCount(n_frames, 4, "frame");
    for (std::uint32_t fi = 0; fi < n_frames; ++fi) {
        Frame frame(fi);
        const std::uint32_t n_draws = dec.u32();
        dec.checkCount(n_draws, 56, "draw");
        for (std::uint32_t di = 0; di < n_draws; ++di)
            frame.addDraw(decodeDraw(dec));
        trace.addFrame(std::move(frame));
    }

    if (!dec.exhausted())
        dec.fail("trailing bytes after trace payload");
    return trace;
}

} // namespace

void
writeTrace(const Trace &trace, std::ostream &os)
{
    writeFramed<TraceIoError>(os, traceMagic, traceFormatVersion,
                              encodePayload(trace), "trace", trace.name());
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw TraceIoError("cannot open '" + path + "' for writing");
    writeTrace(trace, ofs);
}

Trace
readTrace(std::istream &is)
{
    return decodePayload(readFramed<TraceIoError>(
        is, traceMagic, traceFormatVersion, "trace"));
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throw TraceIoError("cannot open '" + path + "' for reading");
    return readTrace(ifs);
}

} // namespace gws
