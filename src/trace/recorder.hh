/**
 * @file
 * Immediate-mode trace recording API. A capture tool (or an engine
 * integration) drives this the way it drives D3D10/GL3: create
 * resources, bind state, issue draws, present frames. The recorder
 * validates bindings as they happen and assembles a Trace identical in
 * shape to what the synthetic generator produces, so everything
 * downstream (features, clustering, phases, simulation) is agnostic
 * to where a trace came from.
 */

#ifndef GWS_TRACE_RECORDER_HH
#define GWS_TRACE_RECORDER_HH

#include <optional>

#include "trace/trace.hh"

namespace gws {

/**
 * Builder with D3D-style bind-then-draw semantics.
 *
 * Usage:
 *   TraceRecorder rec("mygame");
 *   auto vs = rec.createVertexShader("vs", mix);
 *   auto ps = rec.createPixelShader("ps", mix);
 *   auto tex = rec.createTexture({1024, 1024, 4, true});
 *   auto rt = rec.createRenderTarget({1920, 1080, 4});
 *   rec.bindShaders(vs, ps);
 *   rec.bindTextures({tex});
 *   rec.bindRenderTarget(rt);
 *   rec.draw(draw_params);
 *   rec.present();                      // closes the frame
 *   Trace t = std::move(rec).finish();  // closes a trailing open frame
 */
class TraceRecorder
{
  public:
    /** Geometry and capture statistics of one draw. */
    struct DrawParams
    {
        std::uint32_t vertexCount = 0;
        std::uint32_t instanceCount = 1;
        PrimitiveTopology topology = PrimitiveTopology::TriangleList;
        std::uint32_t vertexStrideBytes = 32;
        std::uint64_t shadedPixels = 0;
        double overdraw = 1.0;
        double texLocality = 0.85;
        std::uint32_t materialId = 0;
    };

    /** Start recording a trace with the given name. */
    explicit TraceRecorder(std::string name);

    /** Register a vertex shader; returns its id. */
    ShaderId createVertexShader(std::string name, InstructionMix mix,
                                std::uint32_t temp_registers = 8);

    /** Register a pixel shader; returns its id. */
    ShaderId createPixelShader(std::string name, InstructionMix mix,
                               std::uint32_t temp_registers = 8);

    /** Register a texture; returns its id. */
    TextureId createTexture(TextureDesc desc);

    /** Register a render target; returns its id. */
    RenderTargetId createRenderTarget(RenderTargetDesc desc);

    /** Bind the shader pair; fatal() on a stage mismatch or bad id. */
    void bindShaders(ShaderId vertex, ShaderId pixel);

    /** Bind the texture set; fatal() on a bad id. */
    void bindTextures(std::vector<TextureId> textures);

    /** Bind the render target; fatal() on a bad id. */
    void bindRenderTarget(RenderTargetId target);

    /** Set the blend / depth state for subsequent draws. */
    void setBlendEnabled(bool enabled);
    void setDepthTestEnabled(bool enabled);
    void setDepthWriteEnabled(bool enabled);

    /**
     * Record one draw with the current bindings. fatal() when a
     * required binding is missing or the coverage exceeds the bound
     * render target.
     */
    void draw(const DrawParams &params);

    /** Close the current frame (even if it recorded no draws). */
    void present();

    /** Draws recorded into the currently open frame. */
    std::size_t pendingDraws() const;

    /** Frames completed so far. */
    std::size_t frameCount() const { return trace.frameCount(); }

    /**
     * Finish recording and take the trace. A trailing frame with
     * pending draws is presented implicitly; the result validates.
     */
    Trace finish() &&;

  private:
    Trace trace;
    Frame current;
    std::optional<ShaderId> boundVs;
    std::optional<ShaderId> boundPs;
    std::vector<TextureId> boundTextures;
    std::optional<RenderTargetId> boundTarget;
    bool blendEnabled = false;
    bool depthTestEnabled = true;
    bool depthWriteEnabled = true;
};

} // namespace gws

#endif // GWS_TRACE_RECORDER_HH
