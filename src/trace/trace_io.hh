/**
 * @file
 * Versioned binary (de)serialization of traces.
 *
 * Format: an 16-byte header { magic "GWST", format version, payload
 * size, payload checksum } followed by the payload. The checksum is
 * FNV-1a 64 truncated to 32 bits; it catches truncation and bit rot.
 * Malformed input throws TraceIoError (recoverable: the caller chose
 * the file), unlike internal invariant violations, which panic.
 */

#ifndef GWS_TRACE_TRACE_IO_HH
#define GWS_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"
#include "util/error.hh"

namespace gws {

/**
 * Error thrown when a trace stream or file cannot be decoded. Carries
 * the byte offset of the failure when known (see IoError).
 */
class TraceIoError : public IoError
{
  public:
    using IoError::IoError;
};

/** Current serialization format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/** Serialize a trace to a binary stream. */
void writeTrace(const Trace &trace, std::ostream &os);

/** Serialize a trace to a file; throws TraceIoError if unwritable. */
void writeTraceFile(const Trace &trace, const std::string &path);

/** Deserialize a trace from a binary stream; throws TraceIoError. */
Trace readTrace(std::istream &is);

/** Deserialize a trace from a file; throws TraceIoError. */
Trace readTraceFile(const std::string &path);

} // namespace gws

#endif // GWS_TRACE_TRACE_IO_HH
