/**
 * @file
 * Aggregate characterization of a trace — the numbers a workload
 * inventory table (paper Table 1 style) reports per game.
 */

#ifndef GWS_TRACE_TRACE_STATS_HH
#define GWS_TRACE_TRACE_STATS_HH

#include <cstdint>

#include "trace/trace.hh"

namespace gws {

/** Aggregate statistics of one trace. */
struct TraceStats
{
    /** Frames in the trace. */
    std::uint64_t frames = 0;

    /** Total draw calls. */
    std::uint64_t draws = 0;

    /** Mean draw calls per frame. */
    double drawsPerFrame = 0.0;

    /** Total vertex-shader invocations. */
    std::uint64_t vertices = 0;

    /** Total pixel-shader invocations. */
    std::uint64_t shadedPixels = 0;

    /** Distinct shader programs in the library. */
    std::uint64_t shaderPrograms = 0;

    /** Distinct pixel-shader programs. */
    std::uint64_t pixelShaderPrograms = 0;

    /** Texture table footprint in bytes. */
    std::uint64_t textureBytes = 0;

    /** Mean distinct pixel shaders bound per frame. */
    double pixelShadersPerFrame = 0.0;

    /** Mean overdraw over all draws (pixel-weighted). */
    double meanOverdraw = 0.0;
};

/** Compute aggregate statistics of a trace. */
TraceStats computeTraceStats(const Trace &trace);

} // namespace gws

#endif // GWS_TRACE_TRACE_STATS_HH
