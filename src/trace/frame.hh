/**
 * @file
 * A frame: the ordered draw calls between two present events.
 */

#ifndef GWS_TRACE_FRAME_HH
#define GWS_TRACE_FRAME_HH

#include <set>
#include <vector>

#include "trace/draw_call.hh"

namespace gws {

/** One rendered frame of a trace. */
class Frame
{
  public:
    /** Construct an empty frame with its index in the trace. */
    explicit Frame(std::uint32_t index = 0) : frameIndex(index) {}

    /** Index of this frame within its trace. */
    std::uint32_t index() const { return frameIndex; }

    /** Append a draw call. */
    void addDraw(DrawCall draw) { drawList.push_back(std::move(draw)); }

    /** Ordered draw calls. */
    const std::vector<DrawCall> &draws() const { return drawList; }

    /** Mutable access for generators. */
    std::vector<DrawCall> &draws() { return drawList; }

    /** Number of draw calls. */
    std::size_t drawCount() const { return drawList.size(); }

    /** Total vertex-shader invocations over all draws. */
    std::uint64_t totalVertices() const;

    /** Total pixel-shader invocations over all draws. */
    std::uint64_t totalShadedPixels() const;

    /** Distinct pixel-shader IDs bound in this frame. */
    std::set<ShaderId> pixelShaderSet() const;

    /** Distinct shader IDs (both stages) bound in this frame. */
    std::set<ShaderId> shaderSet() const;

    /** Equality over index and all draws. */
    bool operator==(const Frame &other) const = default;

  private:
    std::uint32_t frameIndex;
    std::vector<DrawCall> drawList;
};

} // namespace gws

#endif // GWS_TRACE_FRAME_HH
