#include "trace/wtrc_io.hh"

#include <istream>
#include <ostream>

#include "util/codec.hh"
#include "util/logging.hh"

namespace gws {

namespace {

constexpr std::uint32_t wtrcMagic = 0x43545747;  // "GWTC" little-endian
constexpr std::uint32_t chunkMagic = 0x48435747; // "GWCH" little-endian

/** Fixed size of the file-header payload (see encodeHeader). */
constexpr std::uint32_t headerPayloadBytes = 8 + 8 + 8 + 4 + 4;

/** Byte offset of the first chunk frame. */
constexpr std::uint64_t firstChunkOffset =
    framedHeaderBytes + headerPayloadBytes;

std::string
encodeHeader(std::uint64_t cap_key, std::uint64_t rows,
             std::uint64_t groups, std::uint32_t chunks)
{
    ByteWriter w;
    w.u64(cap_key);
    w.u64(rows);
    w.u64(groups);
    w.u32(chunks);
    w.u32(static_cast<std::uint32_t>(wtrcColumnCount));
    return w.data();
}

} // namespace

// ----------------------------------------------------------------- writer --

WtrcWriter::WtrcWriter(std::ostream &os, std::uint64_t capacity_key)
    : out(os), capKey(capacity_key)
{
    // Placeholder header; finish() rewrites it with the real totals.
    writeFramed<WtrcError>(out, wtrcMagic, wtrcFormatVersion,
                           encodeHeader(capKey, 0, 0, 0), "wtrc",
                           "header");
}

void
WtrcWriter::appendChunk(const std::vector<std::uint32_t> &group_sizes,
                        const double *const columns[], std::size_t rows)
{
    GWS_ASSERT(!finished, "appendChunk after finish");
    std::uint64_t size_sum = 0;
    for (std::uint32_t s : group_sizes)
        size_sum += s;
    GWS_ASSERT(size_sum == rows, "chunk group sizes sum to ", size_sum,
               ", not the ", rows, " rows given");

    ByteWriter w;
    w.u32(chunks);
    w.u64(totalGroups);
    w.u32(static_cast<std::uint32_t>(group_sizes.size()));
    for (std::uint32_t s : group_sizes)
        w.u32(s);
    w.u64(rows);
    for (std::size_t c = 0; c < wtrcColumnCount; ++c)
        w.f64Array(columns[c], rows);
    GWS_ASSERT(w.data().size() <= framedPayloadCap(),
               "wtrc chunk payload of ", w.data().size(),
               " bytes exceeds the framed payload cap; lower the chunk "
               "row budget");

    writeFramed<WtrcError>(out, chunkMagic, wtrcFormatVersion, w.data(),
                           "wtrc chunk", std::to_string(chunks));
    totalRows += rows;
    totalGroups += group_sizes.size();
    bytesWritten += w.data().size();
    ++chunks;
}

void
WtrcWriter::finish()
{
    GWS_ASSERT(!finished, "double finish");
    finished = true;
    const std::ostream::pos_type end = out.tellp();
    out.seekp(0);
    writeFramed<WtrcError>(out, wtrcMagic, wtrcFormatVersion,
                           encodeHeader(capKey, totalRows, totalGroups,
                                        chunks),
                           "wtrc", "header");
    out.seekp(end);
    out.flush();
    if (!out)
        throw WtrcError("stream write failed sealing the wtrc header");
}

// ----------------------------------------------------------------- reader --

WtrcReader::WtrcReader(std::istream &is) : in(is)
{
    ByteReader<WtrcError> r(
        readFramed<WtrcError>(in, wtrcMagic, wtrcFormatVersion, "wtrc"),
        "wtrc header");
    capKey = r.u64();
    headerRows = r.u64();
    headerGroups = r.u64();
    headerChunks = r.u32();
    const std::uint32_t columns = r.u32();
    if (columns != wtrcColumnCount)
        r.fail("wtrc header declares " + std::to_string(columns) +
               " columns (expected " + std::to_string(wtrcColumnCount) +
               ")");
    if (!r.exhausted())
        r.fail("wtrc header has trailing bytes");
}

WtrcChunk
WtrcReader::readChunk()
{
    if (nextChunk >= headerChunks)
        throw WtrcError("wtrc read past the " +
                        std::to_string(headerChunks) +
                        " chunks the header declares");

    ByteReader<WtrcError> r(readFramed<WtrcError>(in, chunkMagic,
                                                  wtrcFormatVersion,
                                                  "wtrc chunk"),
                            "wtrc chunk");
    WtrcChunk chunk;
    chunk.index = r.u32();
    if (chunk.index != nextChunk)
        r.fail("wtrc chunk index " + std::to_string(chunk.index) +
               " out of sequence (expected " + std::to_string(nextChunk) +
               ")");
    chunk.firstGroup = r.u64();
    if (chunk.firstGroup != nextGroup)
        r.fail("wtrc chunk first group " +
               std::to_string(chunk.firstGroup) +
               " out of sequence (expected " + std::to_string(nextGroup) +
               ")");
    const std::uint32_t group_count = r.u32();
    r.checkCount(group_count, 4, "group");
    chunk.groupSizes.reserve(group_count);
    std::uint64_t size_sum = 0;
    for (std::uint32_t g = 0; g < group_count; ++g) {
        chunk.groupSizes.push_back(r.u32());
        size_sum += chunk.groupSizes.back();
    }
    chunk.rows = r.u64();
    if (chunk.rows != size_sum)
        r.fail("wtrc chunk row count " + std::to_string(chunk.rows) +
               " disagrees with its group sizes (sum " +
               std::to_string(size_sum) + ")");
    r.checkCount(chunk.rows, wtrcColumnCount * 8, "row");
    chunk.columns.resize(wtrcColumnCount * chunk.rows);
    for (std::size_t c = 0; c < wtrcColumnCount; ++c)
        r.f64Array(chunk.columns.data() + c * chunk.rows, chunk.rows);
    if (!r.exhausted())
        r.fail("wtrc chunk has trailing bytes");

    ++nextChunk;
    nextGroup += group_count;
    rowsRead += chunk.rows;
    return chunk;
}

void
WtrcReader::finish()
{
    if (nextChunk != headerChunks)
        throw WtrcError("wtrc ended after " + std::to_string(nextChunk) +
                        " of " + std::to_string(headerChunks) +
                        " declared chunks");
    if (rowsRead != headerRows)
        throw WtrcError("wtrc chunks carry " + std::to_string(rowsRead) +
                        " rows but the header declares " +
                        std::to_string(headerRows));
    if (nextGroup != headerGroups)
        throw WtrcError("wtrc chunks carry " + std::to_string(nextGroup) +
                        " groups but the header declares " +
                        std::to_string(headerGroups));
    if (in.peek() != std::istream::traits_type::eof())
        throw WtrcError("wtrc has trailing bytes after the last chunk");
}

void
WtrcReader::rewind()
{
    in.clear();
    in.seekg(static_cast<std::istream::off_type>(firstChunkOffset));
    if (!in)
        throw WtrcError("wtrc rewind seek failed");
    nextChunk = 0;
    nextGroup = 0;
    rowsRead = 0;
}

} // namespace gws
