#include "core/draw_subset.hh"

#include "features/extractor.hh"
#include "util/logging.hh"

namespace gws {

const char *
toString(ClusterAlgo algo)
{
    switch (algo) {
      case ClusterAlgo::Leader:
        return "leader";
      case ClusterAlgo::KMeansBic:
        return "kmeans_bic";
      case ClusterAlgo::Agglomerative:
        return "agglomerative";
      case ClusterAlgo::GraphPartition:
        return "graphpart";
    }
    GWS_PANIC("unknown cluster algo ", static_cast<int>(algo));
}

double
drawWorkUnits(const Trace &trace, const DrawCall &draw)
{
    const auto &vs = trace.shaders().get(draw.state.vertexShader);
    const auto &ps = trace.shaders().get(draw.state.pixelShader);
    return static_cast<double>(draw.vertices()) *
               static_cast<double>(vs.mix().totalOps()) +
           static_cast<double>(draw.shadedPixels) *
               static_cast<double>(ps.mix().totalOps()) +
           500.0; // per-draw submission overhead term
}

FrameSubset
buildFrameSubset(const Trace &trace, const Frame &frame,
                 const DrawSubsetConfig &config)
{
    GWS_ASSERT(frame.drawCount() > 0, "cannot subset an empty frame");

    const FeatureExtractor extractor(trace);
    const auto raw = extractor.extractFrame(frame);
    const Normalizer norm = Normalizer::fit(raw);
    // The projection (identity on the naive path) is fitted serially
    // per frame, so the clustered space is bit-reproducible across
    // thread counts.
    const auto points = projectFeatures(norm.applyAll(raw),
                                        config.features);

    FrameSubset out;
    switch (config.algo) {
      case ClusterAlgo::Leader:
        out.clustering = leaderCluster(points, config.leader);
        break;
      case ClusterAlgo::KMeansBic:
        out.clustering = selectK(points, config.kselect).clustering;
        break;
      case ClusterAlgo::Agglomerative:
        out.clustering = agglomerativeCluster(points, config.agglo);
        break;
      case ClusterAlgo::GraphPartition:
        out.clustering = graphPartitionCluster(points, config.graphPart);
        break;
    }

    out.workUnits.reserve(frame.drawCount());
    for (const auto &draw : frame.draws())
        out.workUnits.push_back(drawWorkUnits(trace, draw));
    return out;
}

} // namespace gws
