#include "core/subset_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace gws {

namespace {

constexpr std::uint32_t subsetMagic = 0x53535747; // "GWSS" little-endian

std::uint32_t
checksum32(const std::string &payload)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : payload) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

class Encoder
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf.append(s);
    }

    const std::string &data() const { return buf; }

  private:
    std::string buf;
};

class Decoder
{
  public:
    explicit Decoder(std::string data) : buf(std::move(data)) {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(buf[pos++]);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(buf[pos++]))
                 << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(buf[pos++]))
                 << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }

    bool exhausted() const { return pos == buf.size(); }

  private:
    void
    need(std::size_t n)
    {
        if (pos + n > buf.size())
            throw SubsetIoError("subset payload truncated at byte " +
                                std::to_string(pos));
    }

    std::string buf;
    std::size_t pos = 0;
};

void
encodeClustering(Encoder &e, const Clustering &c)
{
    e.u32(static_cast<std::uint32_t>(c.k));
    e.u32(static_cast<std::uint32_t>(c.assignment.size()));
    for (std::uint32_t a : c.assignment)
        e.u32(a);
    for (std::size_t rep : c.representatives)
        e.u32(static_cast<std::uint32_t>(rep));
    for (const auto &centroid : c.centroids) {
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            e.f64(centroid.at(d));
    }
}

Clustering
decodeClustering(Decoder &dec)
{
    Clustering c;
    c.k = dec.u32();
    const std::uint32_t items = dec.u32();
    c.assignment.reserve(items);
    for (std::uint32_t i = 0; i < items; ++i)
        c.assignment.push_back(dec.u32());
    c.representatives.reserve(c.k);
    for (std::size_t i = 0; i < c.k; ++i)
        c.representatives.push_back(dec.u32());
    c.centroids.resize(c.k);
    for (std::size_t cl = 0; cl < c.k; ++cl) {
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            c.centroids[cl].at(d) = dec.f64();
    }
    if (items == 0 || c.k == 0 || c.k > items)
        throw SubsetIoError("degenerate clustering in subset");
    for (std::uint32_t a : c.assignment) {
        if (a >= c.k)
            throw SubsetIoError("clustering assignment out of range");
    }
    for (std::size_t rep : c.representatives) {
        if (rep >= items)
            throw SubsetIoError("clustering representative out of range");
    }
    return c;
}

void
encodeTimeline(Encoder &e, const PhaseTimeline &tl)
{
    e.u32(tl.phaseCount);
    e.u32(static_cast<std::uint32_t>(tl.intervals.size()));
    for (const auto &iv : tl.intervals) {
        e.u32(iv.beginFrame);
        e.u32(iv.endFrame);
        e.u32(iv.phaseId);
        e.u32(static_cast<std::uint32_t>(iv.shaders.universe()));
        const auto ids = iv.shaders.ids();
        e.u32(static_cast<std::uint32_t>(ids.size()));
        for (ShaderId id : ids)
            e.u32(id);
    }
}

PhaseTimeline
decodeTimeline(Decoder &dec)
{
    PhaseTimeline tl;
    tl.phaseCount = dec.u32();
    const std::uint32_t n = dec.u32();
    tl.phaseIntervals.resize(tl.phaseCount);
    tl.representatives.assign(tl.phaseCount, SIZE_MAX);
    for (std::uint32_t i = 0; i < n; ++i) {
        Interval iv;
        iv.beginFrame = dec.u32();
        iv.endFrame = dec.u32();
        iv.phaseId = dec.u32();
        const std::uint32_t universe = dec.u32();
        iv.shaders = ShaderVector(universe);
        const std::uint32_t bits = dec.u32();
        for (std::uint32_t b = 0; b < bits; ++b) {
            const std::uint32_t id = dec.u32();
            if (id >= universe)
                throw SubsetIoError("shader id outside universe");
            iv.shaders.set(id);
        }
        if (iv.phaseId >= tl.phaseCount)
            throw SubsetIoError("interval phase id out of range");
        if (iv.endFrame <= iv.beginFrame)
            throw SubsetIoError("empty interval in timeline");
        if (tl.representatives[iv.phaseId] == SIZE_MAX)
            tl.representatives[iv.phaseId] = tl.intervals.size();
        tl.phaseIntervals[iv.phaseId].push_back(tl.intervals.size());
        tl.intervals.push_back(std::move(iv));
    }
    for (std::size_t rep : tl.representatives) {
        if (rep == SIZE_MAX)
            throw SubsetIoError("phase with no interval");
    }
    return tl;
}

std::string
encodePayload(const WorkloadSubset &s)
{
    Encoder e;
    e.str(s.parentName);
    e.u8(static_cast<std::uint8_t>(s.prediction));
    e.u64(s.parentFrames);
    e.u64(s.parentDraws);
    encodeTimeline(e, s.timeline);
    e.u32(static_cast<std::uint32_t>(s.units.size()));
    for (const auto &u : s.units) {
        e.u32(u.phaseId);
        e.u32(u.frameIndex);
        e.f64(u.frameWeight);
        encodeClustering(e, u.frameSubset.clustering);
        e.u32(static_cast<std::uint32_t>(u.frameSubset.workUnits.size()));
        for (double w : u.frameSubset.workUnits)
            e.f64(w);
    }
    e.u32(static_cast<std::uint32_t>(s.unitsOfPhase.size()));
    for (const auto &group : s.unitsOfPhase) {
        e.u32(static_cast<std::uint32_t>(group.size()));
        for (std::size_t idx : group)
            e.u32(static_cast<std::uint32_t>(idx));
    }
    return e.data();
}

WorkloadSubset
decodePayload(const std::string &payload)
{
    Decoder dec(payload);
    WorkloadSubset s;
    s.parentName = dec.str();
    const std::uint8_t mode = dec.u8();
    if (mode > static_cast<std::uint8_t>(PredictionMode::WorkScaled))
        throw SubsetIoError("invalid prediction mode");
    s.prediction = static_cast<PredictionMode>(mode);
    s.parentFrames = dec.u64();
    s.parentDraws = dec.u64();
    s.timeline = decodeTimeline(dec);
    const std::uint32_t n_units = dec.u32();
    for (std::uint32_t i = 0; i < n_units; ++i) {
        SubsetUnit u;
        u.phaseId = dec.u32();
        u.frameIndex = dec.u32();
        u.frameWeight = dec.f64();
        u.frameSubset.clustering = decodeClustering(dec);
        const std::uint32_t n_work = dec.u32();
        if (n_work != u.frameSubset.clustering.items())
            throw SubsetIoError("work-unit count does not match "
                                "clustering");
        u.frameSubset.workUnits.reserve(n_work);
        for (std::uint32_t w = 0; w < n_work; ++w)
            u.frameSubset.workUnits.push_back(dec.f64());
        if (u.phaseId >= s.timeline.phaseCount)
            throw SubsetIoError("unit phase id out of range");
        if (u.frameIndex >= s.parentFrames)
            throw SubsetIoError("unit frame index out of range");
        s.units.push_back(std::move(u));
    }
    const std::uint32_t n_groups = dec.u32();
    s.unitsOfPhase.resize(n_groups);
    for (std::uint32_t g = 0; g < n_groups; ++g) {
        const std::uint32_t n = dec.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t idx = dec.u32();
            if (idx >= s.units.size())
                throw SubsetIoError("unit group index out of range");
            s.unitsOfPhase[g].push_back(idx);
        }
    }
    if (!dec.exhausted())
        throw SubsetIoError("trailing bytes after subset payload");
    return s;
}

} // namespace

void
writeSubset(const WorkloadSubset &subset, std::ostream &os)
{
    const std::string payload = encodePayload(subset);
    Encoder header;
    header.u32(subsetMagic);
    header.u32(subsetFormatVersion);
    header.u32(static_cast<std::uint32_t>(payload.size()));
    header.u32(checksum32(payload));
    os.write(header.data().data(),
             static_cast<std::streamsize>(header.data().size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!os)
        throw SubsetIoError("stream write failed for subset of '" +
                            subset.parentName + "'");
}

void
writeSubsetFile(const WorkloadSubset &subset, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw SubsetIoError("cannot open '" + path + "' for writing");
    writeSubset(subset, ofs);
}

WorkloadSubset
readSubset(std::istream &is)
{
    char raw_header[16];
    is.read(raw_header, sizeof(raw_header));
    if (is.gcount() != sizeof(raw_header))
        throw SubsetIoError("subset header truncated");
    Decoder header(std::string(raw_header, sizeof(raw_header)));
    if (header.u32() != subsetMagic)
        throw SubsetIoError("bad magic: not a gws subset");
    const std::uint32_t version = header.u32();
    if (version != subsetFormatVersion)
        throw SubsetIoError("unsupported subset format version " +
                            std::to_string(version));
    const std::uint32_t size = header.u32();
    const std::uint32_t expect_sum = header.u32();

    std::string payload(size, '\0');
    is.read(payload.data(), static_cast<std::streamsize>(size));
    if (static_cast<std::uint32_t>(is.gcount()) != size)
        throw SubsetIoError("subset payload truncated");
    if (checksum32(payload) != expect_sum)
        throw SubsetIoError("subset checksum mismatch (corrupt file)");
    return decodePayload(payload);
}

WorkloadSubset
readSubsetFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throw SubsetIoError("cannot open '" + path + "' for reading");
    return readSubset(ifs);
}

void
checkSubsetAgainst(const WorkloadSubset &subset, const Trace &parent)
{
    if (subset.parentName != parent.name())
        throw SubsetIoError("subset was built from '" +
                            subset.parentName + "', not '" +
                            parent.name() + "'");
    if (subset.parentFrames != parent.frameCount())
        throw SubsetIoError("parent frame count changed");
    if (subset.parentDraws != parent.totalDraws())
        throw SubsetIoError("parent draw count changed");
    for (const auto &u : subset.units) {
        if (u.frameIndex >= parent.frameCount())
            throw SubsetIoError("unit frame index out of range");
        if (u.frameSubset.clustering.items() !=
            parent.frame(u.frameIndex).drawCount()) {
            throw SubsetIoError(
                "unit clustering does not match parent frame " +
                std::to_string(u.frameIndex));
        }
    }
}

} // namespace gws
