#include "core/subset_io.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/codec.hh"

namespace gws {

namespace {

constexpr std::uint32_t subsetMagic = 0x53535747; // "GWSS" little-endian

/**
 * Cap on a shader-vector universe. The universe field sizes a bitset
 * allocation before any per-bit data is read, so it must be bounded
 * against length-field lies; 16M shader programs is orders of
 * magnitude beyond any real trace (thousands).
 */
constexpr std::uint32_t maxShaderUniverse = 1u << 24;

using Reader = ByteReader<SubsetIoError>;

void
encodeClustering(ByteWriter &e, const Clustering &c)
{
    e.u32(static_cast<std::uint32_t>(c.k));
    e.u32(static_cast<std::uint32_t>(c.assignment.size()));
    for (std::uint32_t a : c.assignment)
        e.u32(a);
    for (std::size_t rep : c.representatives)
        e.u32(static_cast<std::uint32_t>(rep));
    for (const auto &centroid : c.centroids) {
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            e.f64(centroid.at(d));
    }
}

Clustering
decodeClustering(Reader &dec)
{
    Clustering c;
    c.k = dec.u32();
    const std::uint32_t items = dec.u32();
    // Validate the shape before any allocation sized by it: a lying
    // k field would otherwise reserve gigabytes up front.
    if (items == 0 || c.k == 0 || c.k > items)
        dec.fail("degenerate clustering in subset (k=" +
                 std::to_string(c.k) + ", items=" +
                 std::to_string(items) + ")");
    dec.checkCount(items, 4, "clustering-assignment");
    dec.checkCount(c.k, 4 + numFeatureDims * 8, "cluster");
    c.assignment.reserve(items);
    for (std::uint32_t i = 0; i < items; ++i) {
        const std::uint32_t a = dec.u32();
        if (a >= c.k)
            dec.fail("clustering assignment " + std::to_string(a) +
                     " out of range (k=" + std::to_string(c.k) + ")");
        c.assignment.push_back(a);
    }
    c.representatives.reserve(c.k);
    for (std::size_t i = 0; i < c.k; ++i) {
        const std::uint32_t rep = dec.u32();
        if (rep >= items)
            dec.fail("clustering representative " + std::to_string(rep) +
                     " out of range (items=" + std::to_string(items) +
                     ")");
        c.representatives.push_back(rep);
    }
    c.centroids.resize(c.k);
    for (std::size_t cl = 0; cl < c.k; ++cl) {
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            c.centroids[cl].at(d) = dec.f64();
    }
    return c;
}

void
encodeTimeline(ByteWriter &e, const PhaseTimeline &tl)
{
    e.u32(tl.phaseCount);
    e.u32(static_cast<std::uint32_t>(tl.intervals.size()));
    for (const auto &iv : tl.intervals) {
        e.u32(iv.beginFrame);
        e.u32(iv.endFrame);
        e.u32(iv.phaseId);
        e.u32(static_cast<std::uint32_t>(iv.shaders.universe()));
        const auto ids = iv.shaders.ids();
        e.u32(static_cast<std::uint32_t>(ids.size()));
        for (ShaderId id : ids)
            e.u32(id);
    }
}

PhaseTimeline
decodeTimeline(Reader &dec)
{
    PhaseTimeline tl;
    tl.phaseCount = dec.u32();
    const std::uint32_t n = dec.u32();
    // Every phase needs at least one interval, so phaseCount > n can
    // only be a lie; check before the phaseCount-sized allocations.
    if (tl.phaseCount > n)
        dec.fail("timeline claims " + std::to_string(tl.phaseCount) +
                 " phases over " + std::to_string(n) + " intervals");
    dec.checkCount(n, 20, "timeline-interval");
    tl.phaseIntervals.resize(tl.phaseCount);
    tl.representatives.assign(tl.phaseCount, SIZE_MAX);
    for (std::uint32_t i = 0; i < n; ++i) {
        Interval iv;
        iv.beginFrame = dec.u32();
        iv.endFrame = dec.u32();
        iv.phaseId = dec.u32();
        const std::uint32_t universe = dec.u32();
        if (universe > maxShaderUniverse)
            dec.fail("implausible shader universe " +
                     std::to_string(universe));
        iv.shaders = ShaderVector(universe);
        const std::uint32_t bits = dec.u32();
        dec.checkCount(bits, 4, "shader-id");
        std::int64_t prev = -1;
        for (std::uint32_t b = 0; b < bits; ++b) {
            const std::uint32_t id = dec.u32();
            if (id >= universe)
                dec.fail("shader id " + std::to_string(id) +
                         " outside universe " + std::to_string(universe));
            // Strictly ascending ids keep the encoding canonical (the
            // writer emits them sorted), so accepted payloads always
            // re-encode byte-identically.
            if (static_cast<std::int64_t>(id) <= prev)
                dec.fail("shader ids not strictly ascending");
            prev = id;
            iv.shaders.set(id);
        }
        if (iv.phaseId >= tl.phaseCount)
            dec.fail("interval phase id " + std::to_string(iv.phaseId) +
                     " out of range (phases=" +
                     std::to_string(tl.phaseCount) + ")");
        if (iv.endFrame <= iv.beginFrame)
            dec.fail("empty interval in timeline");
        if (tl.representatives[iv.phaseId] == SIZE_MAX)
            tl.representatives[iv.phaseId] = tl.intervals.size();
        tl.phaseIntervals[iv.phaseId].push_back(tl.intervals.size());
        tl.intervals.push_back(std::move(iv));
    }
    for (std::size_t rep : tl.representatives) {
        if (rep == SIZE_MAX)
            dec.fail("phase with no interval");
    }
    return tl;
}

std::string
encodePayload(const WorkloadSubset &s)
{
    ByteWriter e;
    e.str(s.parentName);
    e.u8(static_cast<std::uint8_t>(s.prediction));
    e.u64(s.parentFrames);
    e.u64(s.parentDraws);
    encodeTimeline(e, s.timeline);
    e.u32(static_cast<std::uint32_t>(s.units.size()));
    for (const auto &u : s.units) {
        e.u32(u.phaseId);
        e.u32(u.frameIndex);
        e.f64(u.frameWeight);
        encodeClustering(e, u.frameSubset.clustering);
        e.u32(static_cast<std::uint32_t>(u.frameSubset.workUnits.size()));
        for (double w : u.frameSubset.workUnits)
            e.f64(w);
    }
    e.u32(static_cast<std::uint32_t>(s.unitsOfPhase.size()));
    for (const auto &group : s.unitsOfPhase) {
        e.u32(static_cast<std::uint32_t>(group.size()));
        for (std::size_t idx : group)
            e.u32(static_cast<std::uint32_t>(idx));
    }
    return e.data();
}

WorkloadSubset
decodePayload(const std::string &payload)
{
    Reader dec(payload, "subset");
    WorkloadSubset s;
    s.parentName = dec.str();
    const std::uint8_t mode = dec.u8();
    if (mode > static_cast<std::uint8_t>(PredictionMode::WorkScaled))
        dec.fail("invalid prediction mode " + std::to_string(mode));
    s.prediction = static_cast<PredictionMode>(mode);
    s.parentFrames = dec.u64();
    s.parentDraws = dec.u64();
    s.timeline = decodeTimeline(dec);
    const std::uint32_t n_units = dec.u32();
    dec.checkCount(n_units, 28, "subset-unit");
    for (std::uint32_t i = 0; i < n_units; ++i) {
        SubsetUnit u;
        u.phaseId = dec.u32();
        u.frameIndex = dec.u32();
        u.frameWeight = dec.f64();
        u.frameSubset.clustering = decodeClustering(dec);
        const std::uint32_t n_work = dec.u32();
        if (n_work != u.frameSubset.clustering.items())
            dec.fail("work-unit count " + std::to_string(n_work) +
                     " does not match clustering (" +
                     std::to_string(u.frameSubset.clustering.items()) +
                     " items)");
        dec.checkCount(n_work, 8, "work-unit");
        u.frameSubset.workUnits.reserve(n_work);
        for (std::uint32_t w = 0; w < n_work; ++w)
            u.frameSubset.workUnits.push_back(dec.f64());
        if (u.phaseId >= s.timeline.phaseCount)
            dec.fail("unit phase id " + std::to_string(u.phaseId) +
                     " out of range");
        if (u.frameIndex >= s.parentFrames)
            dec.fail("unit frame index " + std::to_string(u.frameIndex) +
                     " out of range");
        s.units.push_back(std::move(u));
    }
    const std::uint32_t n_groups = dec.u32();
    dec.checkCount(n_groups, 4, "unit-group");
    s.unitsOfPhase.resize(n_groups);
    for (std::uint32_t g = 0; g < n_groups; ++g) {
        const std::uint32_t n = dec.u32();
        dec.checkCount(n, 4, "unit-group-index");
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t idx = dec.u32();
            if (idx >= s.units.size())
                dec.fail("unit group index " + std::to_string(idx) +
                         " out of range (units=" +
                         std::to_string(s.units.size()) + ")");
            s.unitsOfPhase[g].push_back(idx);
        }
    }
    if (!dec.exhausted())
        dec.fail("trailing bytes after subset payload");
    return s;
}

} // namespace

void
writeSubset(const WorkloadSubset &subset, std::ostream &os)
{
    writeFramed<SubsetIoError>(os, subsetMagic, subsetFormatVersion,
                               encodePayload(subset), "subset",
                               subset.parentName);
}

void
writeSubsetFile(const WorkloadSubset &subset, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw SubsetIoError("cannot open '" + path + "' for writing");
    writeSubset(subset, ofs);
}

WorkloadSubset
readSubset(std::istream &is)
{
    return decodePayload(readFramed<SubsetIoError>(
        is, subsetMagic, subsetFormatVersion, "subset"));
}

WorkloadSubset
readSubsetFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throw SubsetIoError("cannot open '" + path + "' for reading");
    return readSubset(ifs);
}

void
checkSubsetAgainst(const WorkloadSubset &subset, const Trace &parent)
{
    if (subset.parentName != parent.name())
        throw SubsetIoError("subset was built from '" +
                            subset.parentName + "', not '" +
                            parent.name() + "'");
    if (subset.parentFrames != parent.frameCount())
        throw SubsetIoError("parent frame count changed");
    if (subset.parentDraws != parent.totalDraws())
        throw SubsetIoError("parent draw count changed");
    for (const auto &u : subset.units) {
        if (u.frameIndex >= parent.frameCount())
            throw SubsetIoError("unit frame index out of range");
        if (u.frameSubset.clustering.items() !=
            parent.frame(u.frameIndex).drawCount()) {
            throw SubsetIoError(
                "unit clustering does not match parent frame " +
                std::to_string(u.frameIndex));
        }
    }
}

} // namespace gws
