/**
 * @file
 * Temporal (cross-frame) draw subsetting — an extension beyond the
 * paper. The paper clusters each frame independently; consecutive
 * frames of a 3D workload are however nearly identical, so clusters
 * discovered in frame t remain valid in frame t+1. This module keeps
 * a persistent leader set across the playthrough: a draw joins the
 * nearest existing leader within the radius (simulated once, in its
 * founding frame) or founds a new cluster. Efficiency then counts
 * representatives once per *playthrough* instead of once per frame,
 * typically pushing it from ~65 % to well above 90 %.
 */

#ifndef GWS_CORE_TEMPORAL_SUBSET_HH
#define GWS_CORE_TEMPORAL_SUBSET_HH

#include <cstdint>
#include <vector>

#include "gpusim/gpu_simulator.hh"
#include "trace/trace.hh"

namespace gws {

/** Temporal subsetting parameters. */
struct TemporalSubsetConfig
{
    /**
     * Join radius in normalized feature space (the normalizer is
     * fitted once, on the first frame, so distances are comparable
     * across the playthrough).
     */
    double radius = 0.95;

    /** Process only the first maxFrames frames (0 = the whole trace). */
    std::uint32_t maxFrames = 0;
};

/** Result of a temporal subsetting run. */
struct TemporalReport
{
    /** Frames processed. */
    std::uint64_t frames = 0;

    /** Draws processed. */
    std::uint64_t draws = 0;

    /** Global clusters founded (= representatives simulated). */
    std::uint64_t clusters = 0;

    /** Per-frame relative prediction error. */
    std::vector<double> frameErrors;

    /** Clusters founded in each frame (decays as leaders saturate). */
    std::vector<std::uint64_t> newClustersPerFrame;

    /** 1 - clusters/draws over the whole playthrough. */
    double efficiency() const;

    /** Mean of frameErrors. */
    double meanFrameError() const;

    /** Max of frameErrors. */
    double maxFrameError() const;
};

/**
 * Run temporal subsetting over a trace, predicting every frame from
 * the persistent representative set and comparing against the full
 * simulation. Panics on an empty trace.
 */
TemporalReport runTemporalSubsetting(const Trace &trace,
                                     const GpuSimulator &simulator,
                                     const TemporalSubsetConfig &config);

} // namespace gws

#endif // GWS_CORE_TEMPORAL_SUBSET_HH
