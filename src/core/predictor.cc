#include "core/predictor.hh"

#include <cmath>

#include "util/logging.hh"

namespace gws {

double
FramePredictionReport::relError() const
{
    if (actualNs <= 0.0)
        return 0.0;
    return std::fabs(predictedNs - actualNs) / actualNs;
}

double
predictFrameNs(const Trace &trace, const Frame &frame,
               const FrameSubset &subset, const GpuSimulator &simulator,
               PredictionMode mode)
{
    const Clustering &c = subset.clustering;
    GWS_ASSERT(c.items() == frame.drawCount(),
               "subset does not match frame");
    std::vector<double> rep_costs(c.k, 0.0);
    for (std::size_t cl = 0; cl < c.k; ++cl) {
        const DrawCall &rep = frame.draws()[c.representatives[cl]];
        rep_costs[cl] = simulator.simulateDraw(trace, rep).totalNs;
    }
    const auto predicted =
        predictItemCosts(c, rep_costs, mode, subset.workUnits);
    double total = 0.0;
    for (double ns : predicted)
        total += ns;
    return total + simulator.config().frameOverheadUs * 1e3;
}

FramePredictionReport
evaluateFramePrediction(const Trace &trace, const Frame &frame,
                        const GpuSimulator &simulator,
                        const DrawSubsetConfig &config)
{
    const FrameSubset subset = buildFrameSubset(trace, frame, config);
    const Clustering &c = subset.clustering;

    FramePredictionReport report;
    report.frameIndex = frame.index();
    report.drawsTotal = frame.drawCount();
    report.drawsSimulated = c.k;
    report.efficiency = c.efficiency();

    // Ground truth: full simulation of every draw.
    std::vector<double> costs;
    costs.reserve(frame.drawCount());
    double actual = 0.0;
    for (const auto &draw : frame.draws()) {
        costs.push_back(simulator.simulateDraw(trace, draw).totalNs);
        actual += costs.back();
    }
    const double overhead = simulator.config().frameOverheadUs * 1e3;
    report.actualNs = actual + overhead;

    // Prediction reuses the ground-truth costs of the representatives
    // (identical to re-simulating them: the simulator is per-draw pure).
    std::vector<double> rep_costs(c.k, 0.0);
    for (std::size_t cl = 0; cl < c.k; ++cl)
        rep_costs[cl] = costs[c.representatives[cl]];
    const auto predicted = predictItemCosts(c, rep_costs,
                                            config.prediction,
                                            subset.workUnits);
    double predicted_total = 0.0;
    for (double ns : predicted)
        predicted_total += ns;
    report.predictedNs = predicted_total + overhead;

    report.quality = assessClusterQuality(c, costs, config.prediction,
                                          subset.workUnits);
    return report;
}

double
CorpusPredictionReport::outlierFraction() const
{
    if (clusters == 0)
        return 0.0;
    return static_cast<double>(outlierClusters) /
           static_cast<double>(clusters);
}

void
accumulate(CorpusPredictionReport &aggregate,
           const FramePredictionReport &report)
{
    const double n = static_cast<double>(aggregate.frames);
    aggregate.meanError =
        (aggregate.meanError * n + report.relError()) / (n + 1.0);
    aggregate.meanEfficiency =
        (aggregate.meanEfficiency * n + report.efficiency) / (n + 1.0);
    aggregate.maxError = std::max(aggregate.maxError, report.relError());
    ++aggregate.frames;
    aggregate.draws += report.drawsTotal;
    aggregate.clusters += report.quality.intraError.size();
    aggregate.outlierClusters += report.quality.outliers;
}

} // namespace gws
