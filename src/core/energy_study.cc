#include "core/energy_study.hh"

#include <algorithm>

#include "runtime/counters.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace gws {

bool
DvfsResult::optimumWithinOneStep() const
{
    const std::size_t lo = std::min(parentOptimal, subsetOptimal);
    const std::size_t hi = std::max(parentOptimal, subsetOptimal);
    return hi - lo <= 1;
}

DvfsResult
runDvfsStudy(const Trace &trace, const WorkloadSubset &subset,
             const GpuConfig &base, const DvfsConfig &config)
{
    GWS_ASSERT(!config.scales.empty(), "empty DVFS sweep");
    config.power.validate();
    ScopedRegion region("core.runDvfsStudy");

    // --- compute once: flatten parent and subset work ---------------------
    // DRAM traffic is clock-independent, so both totals come straight
    // off the DRAM column (parent: every draw in row order — carried
    // across chunk boundaries on the streamed path, hence the same
    // addition chain; subset: representative traffic expanded like
    // costs).
    const GpuSimulator base_sim(base);
    const WorkTrace subset_work =
        buildSubsetWorkTrace(trace, subset, base_sim);

    const double *rep_dram_col = subset_work.dramBytes();
    double subset_dram = 0.0;
    std::vector<double> unit_dram(subset.units.size(), 0.0);
    for (std::size_t u = 0; u < subset.units.size(); ++u) {
        const SubsetUnit &unit = subset.units[u];
        std::vector<double> rep_dram;
        rep_dram.reserve(subset_work.groupEnd(u) -
                         subset_work.groupBegin(u));
        for (std::size_t i = subset_work.groupBegin(u);
             i < subset_work.groupEnd(u); ++i)
            rep_dram.push_back(rep_dram_col[i]);
        // Expand per-draw DRAM traffic the same way costs expand.
        const auto predicted = predictItemCosts(
            unit.frameSubset.clustering, rep_dram, subset.prediction,
            unit.frameSubset.workUnits);
        for (double bytes : predicted)
            unit_dram[u] += bytes;
        subset_dram += unit.frameWeight * unit_dram[u];
    }

    // --- retime many: every clock point in one engine pass each -----------
    const std::vector<GpuConfig> points =
        clockSweepConfigs(base, config.scales);
    SweepConfig parent_pass;
    parent_pass.path = config.path;
    SweepConfig subset_pass = parent_pass;
    subset_pass.perDraw = true;

    double parent_dram = 0.0;
    SweepResult parent_sweep;
    if (sweepUsesStreamedPath(config.path, traceDrawCount(trace))) {
        StreamingWorkTrace stream(trace, base_sim);
        parent_sweep = retimeAllStreamed(stream, points, parent_pass);
        parent_dram = stream.totalDramBytes();
    } else {
        const WorkTrace parent_work = buildWorkTrace(trace, base_sim);
        parent_dram = parent_work.totalDramBytes();
        parent_sweep = retimeAll(parent_work, points, parent_pass);
    }
    const SweepResult subset_sweep =
        retimeAll(subset_work, points, subset_pass);

    // --- score every point -------------------------------------------------
    DvfsResult result;
    std::vector<double> parent_energy, subset_energy;
    std::vector<double> parent_edp, subset_edp;
    for (std::size_t c = 0; c < points.size(); ++c) {
        const GpuConfig &cfg = points[c];
        const double overhead = cfg.frameOverheadUs * 1e3;

        const double parent_ns = parent_sweep.totalNs[c];

        double subset_ns = 0.0;
        for (std::size_t u = 0; u < subset.units.size(); ++u) {
            const SubsetUnit &unit = subset.units[u];
            std::vector<double> rep_costs;
            rep_costs.reserve(subset_work.groupEnd(u) -
                              subset_work.groupBegin(u));
            for (std::size_t i = subset_work.groupBegin(u);
                 i < subset_work.groupEnd(u); ++i)
                rep_costs.push_back(subset_sweep.drawNsAt(c, i));
            const auto predicted = predictItemCosts(
                unit.frameSubset.clustering, rep_costs, subset.prediction,
                unit.frameSubset.workUnits);
            double frame_ns = overhead;
            for (double ns : predicted)
                frame_ns += ns;
            subset_ns += unit.frameWeight * frame_ns;
        }

        DvfsPoint point;
        point.scale = config.scales[c];
        point.parent = estimateEnergy({parent_ns, parent_dram}, cfg,
                                      config.power);
        point.subset = estimateEnergy({subset_ns, subset_dram}, cfg,
                                      config.power);
        parent_energy.push_back(point.parent.totalJ());
        subset_energy.push_back(point.subset.totalJ());
        parent_edp.push_back(point.parent.energyDelay());
        subset_edp.push_back(point.subset.energyDelay());
        result.points.push_back(point);
    }

    for (std::size_t i = 1; i < result.points.size(); ++i) {
        if (parent_edp[i] < parent_edp[result.parentOptimal])
            result.parentOptimal = i;
        if (subset_edp[i] < subset_edp[result.subsetOptimal])
            result.subsetOptimal = i;
    }
    if (result.points.size() >= 2) {
        result.energyCorrelation = pearson(parent_energy, subset_energy);
        result.edpCorrelation = pearson(parent_edp, subset_edp);
    }
    return result;
}

} // namespace gws
