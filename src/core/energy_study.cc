#include "core/energy_study.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/stats.hh"

namespace gws {

bool
DvfsResult::optimumWithinOneStep() const
{
    const std::size_t lo = std::min(parentOptimal, subsetOptimal);
    const std::size_t hi = std::max(parentOptimal, subsetOptimal);
    return hi - lo <= 1;
}

DvfsResult
runDvfsStudy(const Trace &trace, const WorkloadSubset &subset,
             const GpuConfig &base, const DvfsConfig &config)
{
    GWS_ASSERT(!config.scales.empty(), "empty DVFS sweep");
    config.power.validate();

    // --- one traffic pass over the parent --------------------------------
    const GpuSimulator base_sim(base);
    std::vector<DrawWork> parent_works;
    parent_works.reserve(trace.totalDraws());
    double parent_dram = 0.0;
    for (const auto &frame : trace.frames()) {
        for (const auto &draw : frame.draws()) {
            parent_works.push_back(base_sim.computeDrawWork(trace, draw));
            parent_dram += parent_works.back().traffic.totalDramBytes();
        }
    }

    // --- one traffic pass over the subset representatives -----------------
    struct UnitWork
    {
        std::vector<DrawWork> repWorks;
        const SubsetUnit *unit;
        double dramBytes = 0.0; // predicted for the whole frame
    };
    std::vector<UnitWork> unit_works;
    double subset_dram = 0.0;
    for (const auto &unit : subset.units) {
        UnitWork uw;
        uw.unit = &unit;
        const Frame &frame = trace.frame(unit.frameIndex);
        const Clustering &c = unit.frameSubset.clustering;
        std::vector<double> rep_dram(c.k, 0.0);
        for (std::size_t cl = 0; cl < c.k; ++cl) {
            uw.repWorks.push_back(base_sim.computeDrawWork(
                trace, frame.draws()[c.representatives[cl]]));
            rep_dram[cl] = uw.repWorks.back().traffic.totalDramBytes();
        }
        // Expand per-draw DRAM traffic the same way costs expand.
        const auto predicted = predictItemCosts(
            c, rep_dram, subset.prediction, unit.frameSubset.workUnits);
        for (double bytes : predicted)
            uw.dramBytes += bytes;
        subset_dram += unit.frameWeight * uw.dramBytes;
        unit_works.push_back(std::move(uw));
    }

    // --- sweep -------------------------------------------------------------
    DvfsResult result;
    std::vector<double> parent_energy, subset_energy;
    std::vector<double> parent_edp, subset_edp;
    for (double scale : config.scales) {
        const GpuConfig cfg = base.withCoreClockScale(scale);
        const GpuSimulator sim(cfg);
        const double overhead = cfg.frameOverheadUs * 1e3;

        double parent_ns =
            overhead * static_cast<double>(trace.frameCount());
        for (const auto &w : parent_works)
            parent_ns += sim.timeDrawWork(w).totalNs;

        double subset_ns = 0.0;
        for (const auto &uw : unit_works) {
            std::vector<double> rep_costs;
            rep_costs.reserve(uw.repWorks.size());
            for (const auto &w : uw.repWorks)
                rep_costs.push_back(sim.timeDrawWork(w).totalNs);
            const auto predicted = predictItemCosts(
                uw.unit->frameSubset.clustering, rep_costs,
                subset.prediction, uw.unit->frameSubset.workUnits);
            double frame_ns = overhead;
            for (double ns : predicted)
                frame_ns += ns;
            subset_ns += uw.unit->frameWeight * frame_ns;
        }

        DvfsPoint point;
        point.scale = scale;
        point.parent = estimateEnergy({parent_ns, parent_dram}, cfg,
                                      config.power);
        point.subset = estimateEnergy({subset_ns, subset_dram}, cfg,
                                      config.power);
        parent_energy.push_back(point.parent.totalJ());
        subset_energy.push_back(point.subset.totalJ());
        parent_edp.push_back(point.parent.energyDelay());
        subset_edp.push_back(point.subset.energyDelay());
        result.points.push_back(point);
    }

    for (std::size_t i = 1; i < result.points.size(); ++i) {
        if (parent_edp[i] < parent_edp[result.parentOptimal])
            result.parentOptimal = i;
        if (subset_edp[i] < subset_edp[result.subsetOptimal])
            result.subsetOptimal = i;
    }
    if (result.points.size() >= 2) {
        result.energyCorrelation = pearson(parent_energy, subset_energy);
        result.edpCorrelation = pearson(parent_edp, subset_edp);
    }
    return result;
}

} // namespace gws
