#include "core/suite_subset.hh"

#include <cmath>
#include <set>

#include "cluster/leader.hh"
#include "features/extractor.hh"
#include "util/logging.hh"

namespace gws {

double
SuiteSubset::frameFraction() const
{
    if (corpusFrames == 0)
        return 0.0;
    return static_cast<double>(frames.size()) /
           static_cast<double>(corpusFrames);
}

double
SuiteSubset::totalWeight() const
{
    double w = 0.0;
    for (const auto &f : frames)
        w += f.weight;
    return w;
}

FeatureVector
frameDescriptor(const Trace &trace, const Frame &frame)
{
    const FeatureExtractor extractor(trace);
    FeatureVector f;
    double draws = 0.0, vertices = 0.0, prims = 0.0, pixels = 0.0;
    double vs_ops = 0.0, ps_ops = 0.0, tex_samples = 0.0;
    double vertex_bytes = 0.0, tex_bytes = 0.0;
    double overdraw_w = 0.0, locality_w = 0.0, ops_pp_w = 0.0;
    double blend_draws = 0.0, depth_write_draws = 0.0;

    for (const auto &d : frame.draws()) {
        const auto &vs = trace.shaders().get(d.state.vertexShader);
        const auto &ps = trace.shaders().get(d.state.pixelShader);
        const auto px = static_cast<double>(d.shadedPixels);
        draws += 1.0;
        vertices += static_cast<double>(d.vertices());
        prims += static_cast<double>(d.primitives());
        pixels += px;
        vs_ops += static_cast<double>(d.vertices()) *
                  static_cast<double>(vs.mix().totalOps());
        ps_ops += px * static_cast<double>(ps.mix().totalOps());
        tex_samples += px * static_cast<double>(ps.mix().texOps);
        vertex_bytes += static_cast<double>(d.vertexFetchBytes());
        for (TextureId id : d.state.textures)
            tex_bytes += static_cast<double>(
                trace.texture(id).sizeBytes());
        overdraw_w += d.overdraw * px;
        locality_w += d.texLocality * px;
        ops_pp_w += static_cast<double>(ps.mix().arithmeticOps()) * px;
        blend_draws += d.state.blendEnabled ? 1.0 : 0.0;
        depth_write_draws += d.state.depthWriteEnabled ? 1.0 : 0.0;
    }

    f[FeatureDim::LogVertices] = std::log1p(vertices);
    f[FeatureDim::LogPrimitives] = std::log1p(prims);
    f[FeatureDim::LogPixels] = std::log1p(pixels);
    f[FeatureDim::LogVsOps] = std::log1p(vs_ops);
    f[FeatureDim::LogPsOps] = std::log1p(ps_ops);
    f[FeatureDim::LogTexSamples] = std::log1p(tex_samples);
    f[FeatureDim::LogTexFootprint] = std::log1p(tex_bytes);
    f[FeatureDim::LogVertexBytes] = std::log1p(vertex_bytes);
    f[FeatureDim::LogRtBytes] = std::log1p(draws); // log draw count
    if (pixels > 0.0) {
        f[FeatureDim::PsOpsPerPixel] = ops_pp_w / pixels;
        f[FeatureDim::Overdraw] = overdraw_w / pixels;
        f[FeatureDim::TexLocality] = locality_w / pixels;
    }
    if (draws > 0.0) {
        f[FeatureDim::BlendFlag] = blend_draws / draws;
        f[FeatureDim::DepthWriteFlag] = depth_write_draws / draws;
    }
    f[FeatureDim::TexPerPixel] =
        pixels > 0.0 ? tex_samples / pixels : 0.0;
    return f;
}

SuiteSubset
buildSuiteSubset(const std::vector<Trace> &suite,
                 const std::vector<CorpusFrame> &corpus,
                 const SuiteSubsetConfig &config)
{
    GWS_ASSERT(!corpus.empty(), "suite subsetting over an empty corpus");
    GWS_ASSERT(config.radius >= 0.0, "negative radius");

    std::vector<FeatureVector> descriptors;
    descriptors.reserve(corpus.size());
    for (const auto &cf : corpus) {
        GWS_ASSERT(cf.traceIndex < suite.size(), "corpus trace index");
        descriptors.push_back(frameDescriptor(
            suite[cf.traceIndex],
            suite[cf.traceIndex].frame(cf.frameIndex)));
    }
    const Normalizer norm = Normalizer::fit(descriptors);
    LeaderConfig lc;
    lc.radius = config.radius;
    const Clustering clusters =
        leaderCluster(norm.applyAll(descriptors), lc);

    SuiteSubset subset;
    subset.corpusFrames = corpus.size();
    subset.assignment = clusters.assignment;
    const auto sizes = clusters.sizes();
    for (std::size_t c = 0; c < clusters.k; ++c) {
        const CorpusFrame &rep = corpus[clusters.representatives[c]];
        subset.frames.push_back({rep.traceIndex, rep.frameIndex,
                                 static_cast<double>(sizes[c])});
        std::set<std::size_t> games;
        for (std::size_t i : clusters.members(c))
            games.insert(corpus[i].traceIndex);
        if (games.size() > 1)
            ++subset.crossGameClusters;
    }
    return subset;
}

double
measureCorpusNs(const std::vector<Trace> &suite,
                const std::vector<CorpusFrame> &corpus,
                const GpuSimulator &simulator)
{
    double total = 0.0;
    for (const auto &cf : corpus) {
        total += simulator
                     .simulateFrame(suite[cf.traceIndex],
                                    suite[cf.traceIndex].frame(
                                        cf.frameIndex))
                     .totalNs;
    }
    return total;
}

double
predictCorpusNs(const std::vector<Trace> &suite, const SuiteSubset &subset,
                const GpuSimulator &simulator)
{
    double total = 0.0;
    for (const auto &ref : subset.frames) {
        GWS_ASSERT(ref.traceIndex < suite.size(), "subset trace index");
        total += ref.weight *
                 simulator
                     .simulateFrame(suite[ref.traceIndex],
                                    suite[ref.traceIndex].frame(
                                        ref.frameIndex))
                     .totalNs;
    }
    return total;
}

} // namespace gws
