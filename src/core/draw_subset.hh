/**
 * @file
 * Per-frame draw-call subsetting: extract micro-architecture-
 * independent features for a frame's draws, normalize them within the
 * frame, and cluster — yielding the representatives that stand in for
 * the whole frame during simulation.
 */

#ifndef GWS_CORE_DRAW_SUBSET_HH
#define GWS_CORE_DRAW_SUBSET_HH

#include "cluster/agglomerative.hh"
#include "cluster/clustering.hh"
#include "cluster/graph_partition.hh"
#include "cluster/kselect.hh"
#include "cluster/leader.hh"
#include "cluster/quality.hh"
#include "features/pca.hh"
#include "trace/trace.hh"

namespace gws {

/** Which clustering algorithm drives the per-frame subsetting. */
enum class ClusterAlgo : std::uint8_t
{
    /** Single-pass leader clustering at a radius (production default). */
    Leader = 0,

    /** k-means with BIC-driven k selection (SimPoint style). */
    KMeansBic = 1,

    /** Bottom-up centroid-linkage merging to a distance threshold. */
    Agglomerative = 2,

    /** Multilevel partitioning of the k-NN similarity graph. */
    GraphPartition = 3,
};

/** Printable algorithm name. */
const char *toString(ClusterAlgo algo);

/** Configuration of the per-frame draw subsetting. */
struct DrawSubsetConfig
{
    /** Algorithm choice. */
    ClusterAlgo algo = ClusterAlgo::Leader;

    /** Leader parameters (used when algo == Leader). */
    LeaderConfig leader;

    /** k-selection parameters (used when algo == KMeansBic). */
    KSelectConfig kselect;

    /** Agglomerative parameters (used when algo == Agglomerative). */
    AgglomerativeConfig agglo;

    /** Graph-partition parameters (used when algo == GraphPartition). */
    GraphPartitionConfig graphPart;

    /** How member costs are predicted from representatives. */
    PredictionMode prediction = PredictionMode::Uniform;

    /**
     * Feature space the clustering runs in: raw normalized features
     * or the PCA-projected space (Auto resolves --pca / GWS_PCA with
     * GWS_NAIVE_FEATURES as the escape hatch). Every algorithm above
     * clusters the same projected points.
     */
    FeatureSpaceConfig features;
};

/** Per-frame subsetting result. */
struct FrameSubset
{
    /** Clustering over the frame's draws (submission order). */
    Clustering clustering;

    /** Per-draw micro-architecture-independent work units. */
    std::vector<double> workUnits;

    /** Draws that must be simulated (= clustering.k). */
    std::size_t representativeCount() const { return clustering.k; }
};

/**
 * Micro-architecture-independent work scalar of a draw: total dynamic
 * shader operations plus a fixed per-draw submission term. Used by
 * WorkScaled prediction.
 */
double drawWorkUnits(const Trace &trace, const DrawCall &draw);

/** Build the subset of one frame. Panics on an empty frame. */
FrameSubset buildFrameSubset(const Trace &trace, const Frame &frame,
                             const DrawSubsetConfig &config);

} // namespace gws

#endif // GWS_CORE_DRAW_SUBSET_HH
