#include "core/sweep.hh"

#include <algorithm>

#include "gpusim/draw_work_cache.hh"
#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace gws {

namespace {

constexpr std::size_t stageIdx(Stage s)
{
    return static_cast<std::size_t>(s);
}

/**
 * Per-config constants of the timing model, hoisted out of the draw
 * loop into contiguous arrays. Every value is computed with exactly
 * the expression timeDrawWork evaluates (or is a plain config field
 * it divides by), so using them changes nothing but where the
 * computation happens.
 */
struct HoistedConfigs
{
    std::vector<double> setupNs;     // drawSetupCycles / coreClockGhz
    std::vector<double> coreGhz;     // coreClockGhz
    std::vector<double> opsPerCyc;   // opsPerCycle()
    std::vector<double> vfRate;      // vertexFetchBytesPerCycle
    std::vector<double> primRate;    // rasterPrimsPerCycle
    std::vector<double> pixRate;     // rasterPixelsPerCycle
    std::vector<double> texRate;     // texSamplesPerCycle
    std::vector<double> ropRate;     // ropPixelsPerCycle
    std::vector<double> l2Rate;      // l2BytesPerCycle
    std::vector<double> dramBw;      // dramBandwidthBytesPerNs()
    std::vector<double> overheadNs;  // frameOverheadUs * 1e3

    explicit HoistedConfigs(std::span<const GpuConfig> configs)
    {
        const std::size_t n = configs.size();
        setupNs.reserve(n);
        coreGhz.reserve(n);
        opsPerCyc.reserve(n);
        vfRate.reserve(n);
        primRate.reserve(n);
        pixRate.reserve(n);
        texRate.reserve(n);
        ropRate.reserve(n);
        l2Rate.reserve(n);
        dramBw.reserve(n);
        overheadNs.reserve(n);
        for (const GpuConfig &cfg : configs) {
            setupNs.push_back(cfg.drawSetupCycles / cfg.coreClockGhz);
            coreGhz.push_back(cfg.coreClockGhz);
            opsPerCyc.push_back(cfg.opsPerCycle());
            vfRate.push_back(cfg.vertexFetchBytesPerCycle);
            primRate.push_back(cfg.rasterPrimsPerCycle);
            pixRate.push_back(cfg.rasterPixelsPerCycle);
            texRate.push_back(cfg.texSamplesPerCycle);
            ropRate.push_back(cfg.ropPixelsPerCycle);
            l2Rate.push_back(cfg.l2BytesPerCycle);
            dramBw.push_back(cfg.dramBandwidthBytesPerNs());
            overheadNs.push_back(cfg.frameOverheadUs * 1e3);
        }
    }
};

/**
 * Per-design serial loops: one GpuSimulator per config walking every
 * row through timeDrawWork — the shape every sweep study had before
 * the engine. Fills groupNs / the per-group histogram slabs / drawNs;
 * the caller reduces them identically for both paths.
 */
void
retimeNaive(const WorkTrace &wt, std::span<const GpuConfig> configs,
            bool per_draw, SweepResult &result,
            std::vector<double> &group_hist_ns,
            std::vector<std::uint64_t> &group_hist_count)
{
    const std::size_t groups = wt.groupCount();
    for (std::size_t c = 0; c < configs.size(); ++c) {
        obs::SpanScope cfgSpan("retime " + configs[c].name);
        const GpuSimulator sim(configs[c]);
        const double overhead = sim.config().frameOverheadUs * 1e3;
        for (std::size_t g = 0; g < groups; ++g) {
            double total = 0.0;
            double *hist_ns = &group_hist_ns[(g * configs.size() + c) *
                                             numStages];
            std::uint64_t *hist_count =
                &group_hist_count[(g * configs.size() + c) * numStages];
            for (std::size_t i = wt.groupBegin(g); i < wt.groupEnd(g);
                 ++i) {
                const DrawCost dc = sim.timeDrawWork(wt.work(i));
                total += dc.totalNs;
                hist_ns[stageIdx(dc.bottleneck)] += dc.totalNs;
                ++hist_count[stageIdx(dc.bottleneck)];
                if (per_draw)
                    result.drawNs[c * wt.drawCount() + i] = dc.totalNs;
            }
            result.groupNs[c * groups + g] = total + overhead;
        }
    }
}

/**
 * Schedule per_group(g) for every group, either over cost-balanced
 * contiguous shards (one shard plan per call, per-group cost = row
 * count + 1 so empty groups still carry scheduling weight) or over
 * uniform groupGrain chunks on the naive partition path. Pure
 * scheduling: every caller keeps per-group state indexed by g and
 * reduces in ascending group order afterwards, so both paths — and
 * any shard count — produce bit-identical results by construction.
 */
template <typename Fn>
void
forEachGroupSharded(const WorkTrace &wt, const SweepConfig &config,
                    Fn &&per_group)
{
    const std::size_t groups = wt.groupCount();
    if (partitionUsesNaivePath(config.partition) ||
        resolvedThreadCount() <= 1) {
        const std::size_t grain =
            config.groupGrain == 0 ? 1 : config.groupGrain;
        parallelFor(0, groups, grain, per_group);
        return;
    }
    std::vector<double> costs(groups);
    for (std::size_t g = 0; g < groups; ++g)
        costs[g] = static_cast<double>(wt.groupEnd(g) -
                                       wt.groupBegin(g)) +
                   1.0;
    const std::size_t shards = config.shardCount == 0
                                   ? defaultShardCount(groups)
                                   : config.shardCount;
    const ShardPlan plan = partitionTraceShards(
        costs, shards, defaultPartitionCostFn());
    const auto &f = per_group;
    parallelShards(plan.bounds, [&f](std::size_t b, std::size_t e) {
        for (std::size_t g = b; g < e; ++g)
            f(g);
    });
}

/**
 * Generic blocked kernel: parallel over groups, and for each draw an
 * inner loop over all configs so the row's columns are loaded once
 * per pass instead of once per design. The arithmetic per draw ×
 * config replicates timeDrawWork operation for operation (same
 * divides, same order, strict-> max scan starting at VertexFetch),
 * so every per-draw total and bottleneck stage is bit-identical to
 * the naive path. Handles configs whose capacity rates differ (e.g.
 * pathfinding groups that share a capacity hash but not widths).
 */
void
retimeEngineGeneric(const WorkTrace &wt,
                    std::span<const GpuConfig> configs,
                    const SweepConfig &config, bool per_draw,
                    SweepResult &result,
                    std::vector<double> &group_hist_ns,
                    std::vector<std::uint64_t> &group_hist_count)
{
    const std::size_t n_cfg = configs.size();
    const std::size_t groups = wt.groupCount();
    const HoistedConfigs h(configs);

    const double *vfetch = wt.vertexFetchBytes();
    const double *vs_ops = wt.vsOpsTotal();
    const double *prims = wt.primitives();
    const double *pixels = wt.pixels();
    const double *ps_ops = wt.psOpsTotal();
    const double *tex = wt.texSamples();
    const double *rop = wt.ropPixels();
    const double *l2 = wt.l2Bytes();
    const double *dram = wt.dramBytes();

    forEachGroupSharded(wt, config, [&](std::size_t g) {
        std::vector<double> acc(n_cfg, 0.0);
        double *hist_ns = &group_hist_ns[g * n_cfg * numStages];
        std::uint64_t *hist_count =
            &group_hist_count[g * n_cfg * numStages];
        for (std::size_t i = wt.groupBegin(g); i < wt.groupEnd(g); ++i) {
            const double d_vfetch = vfetch[i];
            const double d_vs_ops = vs_ops[i];
            const double d_prims = prims[i];
            const double d_pixels = pixels[i];
            const double d_ps_ops = ps_ops[i];
            const double d_tex = tex[i];
            const double d_rop = rop[i];
            const double d_l2 = l2[i];
            const double d_dram = dram[i];
            for (std::size_t c = 0; c < n_cfg; ++c) {
                const double ghz = h.coreGhz[c];
                const double s_vf = d_vfetch / h.vfRate[c] / ghz;
                const double s_vs = d_vs_ops / h.opsPerCyc[c] / ghz;
                const double s_ra =
                    (d_prims / h.primRate[c] + d_pixels / h.pixRate[c]) /
                    ghz;
                const double s_ps = d_ps_ops / h.opsPerCyc[c] / ghz;
                const double s_tx = d_tex / h.texRate[c] / ghz;
                const double s_ro = d_rop / h.ropRate[c] / ghz;
                const double s_l2 = d_l2 / h.l2Rate[c] / ghz;
                const double s_dr = d_dram / h.dramBw[c];

                // timeDrawWork's max scan: enum order, strict >,
                // initial worst 0 / VertexFetch.
                double worst = 0.0;
                std::size_t worst_stage = stageIdx(Stage::VertexFetch);
                if (s_vf > worst) {
                    worst = s_vf;
                    worst_stage = stageIdx(Stage::VertexFetch);
                }
                if (s_vs > worst) {
                    worst = s_vs;
                    worst_stage = stageIdx(Stage::VertexShade);
                }
                if (s_ra > worst) {
                    worst = s_ra;
                    worst_stage = stageIdx(Stage::Raster);
                }
                if (s_ps > worst) {
                    worst = s_ps;
                    worst_stage = stageIdx(Stage::PixelShade);
                }
                if (s_tx > worst) {
                    worst = s_tx;
                    worst_stage = stageIdx(Stage::Texture);
                }
                if (s_ro > worst) {
                    worst = s_ro;
                    worst_stage = stageIdx(Stage::Rop);
                }
                if (s_l2 > worst) {
                    worst = s_l2;
                    worst_stage = stageIdx(Stage::L2);
                }
                if (s_dr > worst) {
                    worst = s_dr;
                    worst_stage = stageIdx(Stage::Dram);
                }

                const double total = h.setupNs[c] + worst;
                const std::size_t bottleneck =
                    worst > h.setupNs[c] ? worst_stage
                                         : stageIdx(Stage::Setup);
                acc[c] += total;
                hist_ns[c * numStages + bottleneck] += total;
                ++hist_count[c * numStages + bottleneck];
                if (per_draw)
                    result.drawNs[c * wt.drawCount() + i] = total;
            }
        }
        for (std::size_t c = 0; c < n_cfg; ++c)
            result.groupNs[c * groups + g] = acc[c] + h.overheadNs[c];
    });
}

/** All values of a hoisted-constant column bitwise equal? */
bool
uniformColumn(const std::vector<double> &v)
{
    for (double x : v)
        if (x != v.front())
            return false;
    return true;
}

/**
 * A clock sweep leaves every throughput rate identical across
 * configs; only coreClockGhz (and therefore setup / overhead) moves.
 * When that holds the per-draw quotients q_s = work / rate are
 * config-independent, and because IEEE division by a positive clock
 * is monotone the max over the seven clocked stages commutes with
 * the division: max_s round(q_s / ghz) == round(max_s q_s / ghz).
 * That shrinks the clocked max scan to ONE divide per draw × config.
 */
bool
clockOnlySweep(const HoistedConfigs &h)
{
    return uniformColumn(h.opsPerCyc) && uniformColumn(h.vfRate) &&
           uniformColumn(h.primRate) && uniformColumn(h.pixRate) &&
           uniformColumn(h.texRate) && uniformColumn(h.ropRate) &&
           uniformColumn(h.l2Rate) && uniformColumn(h.dramBw);
}

/**
 * Exact timeDrawWork max scan from the shared quotients, for the
 * (astronomically rare) draws where two stage quotients land within
 * a few ulps of each other and the divided values could tie. The
 * divides here are the very operations the naive path performs, so
 * the recovered bottleneck stage matches it bitwise.
 */
void
exactClockedScan(const double *q, double s_dr, double ghz, double setup,
                 double &total, std::size_t &bneck)
{
    double worst = 0.0;
    std::size_t worst_stage = stageIdx(Stage::VertexFetch);
    for (std::size_t k = 0; k < 7; ++k) {
        const double s = q[k] / ghz;
        if (s > worst) {
            worst = s;
            worst_stage = stageIdx(Stage::VertexFetch) + k;
        }
    }
    if (s_dr > worst) {
        worst = s_dr;
        worst_stage = stageIdx(Stage::Dram);
    }
    total = setup + worst;
    bneck = worst > setup ? worst_stage : stageIdx(Stage::Setup);
}

/**
 * Fast kernel for clock-only sweeps. Per block of draws: compute the
 * config-independent stage quotients once (vectorizable divides),
 * take their max/argmax once, then each config pays a single divide
 * plus the dram/setup comparisons. The quotients are bitwise the
 * naive path's intermediates (same dividends, same rates), the max
 * value commutes with the positive division, and near-ties fall back
 * to the exact scan above — so the output stays bit-identical.
 */
void
retimeEngineClocked(const WorkTrace &wt,
                    std::span<const GpuConfig> configs,
                    const HoistedConfigs &h, const SweepConfig &config,
                    bool per_draw, SweepResult &result,
                    std::vector<double> &group_hist_ns,
                    std::vector<std::uint64_t> &group_hist_count)
{
    constexpr std::size_t kBlock = 128;
    // A stage quotient this close (relatively) to the block max could
    // round to the same divided value; ~45 quotient ulps of margin
    // over the <= 2 ulp window where a collision is possible.
    constexpr double kNearTie = 1.0 - 1e-14;

    const std::size_t n_cfg = configs.size();
    const std::size_t groups = wt.groupCount();

    const double *vfetch = wt.vertexFetchBytes();
    const double *vs_ops = wt.vsOpsTotal();
    const double *prims = wt.primitives();
    const double *pixels = wt.pixels();
    const double *ps_ops = wt.psOpsTotal();
    const double *tex = wt.texSamples();
    const double *rop = wt.ropPixels();
    const double *l2 = wt.l2Bytes();
    const double *dram = wt.dramBytes();

    const double vf_rate = h.vfRate.front();
    const double ops_rate = h.opsPerCyc.front();
    const double prim_rate = h.primRate.front();
    const double pix_rate = h.pixRate.front();
    const double tex_rate = h.texRate.front();
    const double rop_rate = h.ropRate.front();
    const double l2_rate = h.l2Rate.front();
    const double dram_bw = h.dramBw.front();

    forEachGroupSharded(wt, config, [&](std::size_t g) {
        std::vector<double> acc(n_cfg, 0.0);
        double *hist_base = &group_hist_ns[g * n_cfg * numStages];
        std::uint64_t *count_base =
            &group_hist_count[g * n_cfg * numStages];

        for (std::size_t row = wt.groupBegin(g); row < wt.groupEnd(g);
             row += kBlock) {
            const std::size_t n =
                std::min(kBlock, wt.groupEnd(g) - row);

            // Pass A: config-independent stage quotients, one divide
            // chain per stage, stage-major so each loop vectorizes.
            double q[7][kBlock];
            double s_dr[kBlock];
            for (std::size_t j = 0; j < n; ++j)
                q[0][j] = vfetch[row + j] / vf_rate;
            for (std::size_t j = 0; j < n; ++j)
                q[1][j] = vs_ops[row + j] / ops_rate;
            for (std::size_t j = 0; j < n; ++j)
                q[2][j] = prims[row + j] / prim_rate +
                          pixels[row + j] / pix_rate;
            for (std::size_t j = 0; j < n; ++j)
                q[3][j] = ps_ops[row + j] / ops_rate;
            for (std::size_t j = 0; j < n; ++j)
                q[4][j] = tex[row + j] / tex_rate;
            for (std::size_t j = 0; j < n; ++j)
                q[5][j] = rop[row + j] / rop_rate;
            for (std::size_t j = 0; j < n; ++j)
                q[6][j] = l2[row + j] / l2_rate;
            for (std::size_t j = 0; j < n; ++j)
                s_dr[j] = dram[row + j] / dram_bw;

            // Pass B: max/argmax of the clocked stages (strict >,
            // stage order — first index attaining the max, exactly
            // the tie-break of timeDrawWork's scan) plus a near-tie
            // flag for draws needing the exact fallback.
            double max_q[kBlock];
            std::size_t arg_q[kBlock];
            bool near[kBlock];
            for (std::size_t j = 0; j < n; ++j) {
                double wq = 0.0;
                std::size_t ws = 0;
                for (std::size_t k = 0; k < 7; ++k) {
                    const bool gt = q[k][j] > wq;
                    ws = gt ? k : ws;
                    wq = gt ? q[k][j] : wq;
                }
                bool tie = false;
                for (std::size_t k = 0; k < 7; ++k)
                    tie |= q[k][j] < wq && q[k][j] > wq * kNearTie;
                max_q[j] = wq;
                arg_q[j] = stageIdx(Stage::VertexFetch) + ws;
                near[j] = tie;
            }

            // Pass C: one divide per draw × config, then the dram and
            // setup comparisons of timeDrawWork on identical values.
            for (std::size_t c = 0; c < n_cfg; ++c) {
                const double ghz = h.coreGhz[c];
                const double setup = h.setupNs[c];
                double *hist_ns = hist_base + c * numStages;
                std::uint64_t *hist_count = count_base + c * numStages;
                double *dst =
                    per_draw
                        ? &result.drawNs[c * wt.drawCount() + row]
                        : nullptr;

                double t_total[kBlock];
                std::size_t t_bneck[kBlock];
                for (std::size_t j = 0; j < n; ++j) {
                    const double worst7 = max_q[j] / ghz;
                    const bool dr = s_dr[j] > worst7;
                    const double worst = dr ? s_dr[j] : worst7;
                    const std::size_t ws =
                        dr ? stageIdx(Stage::Dram) : arg_q[j];
                    t_total[j] = setup + worst;
                    t_bneck[j] = worst > setup ? ws
                                               : stageIdx(Stage::Setup);
                }

                double a = acc[c];
                for (std::size_t j = 0; j < n; ++j) {
                    double total = t_total[j];
                    std::size_t bneck = t_bneck[j];
                    if (near[j]) {
                        double qj[7];
                        for (std::size_t k = 0; k < 7; ++k)
                            qj[k] = q[k][j];
                        exactClockedScan(qj, s_dr[j], ghz, setup,
                                         total, bneck);
                    }
                    a += total;
                    hist_ns[bneck] += total;
                    ++hist_count[bneck];
                    if (dst != nullptr)
                        dst[j] = total;
                }
                acc[c] = a;
            }
        }

        for (std::size_t c = 0; c < n_cfg; ++c)
            result.groupNs[c * groups + g] = acc[c] + h.overheadNs[c];
    });
}

/** Engine dispatch: clock-only sweeps take the single-divide kernel. */
void
retimeEngine(const WorkTrace &wt, std::span<const GpuConfig> configs,
             const SweepConfig &config, bool per_draw,
             SweepResult &result, std::vector<double> &group_hist_ns,
             std::vector<std::uint64_t> &group_hist_count)
{
    obs::SpanScope span("core.retimeAll.engine");
    const HoistedConfigs h(configs);
    if (clockOnlySweep(h))
        retimeEngineClocked(wt, configs, h, config, per_draw, result,
                            group_hist_ns, group_hist_count);
    else
        retimeEngineGeneric(wt, configs, config, per_draw, result,
                            group_hist_ns, group_hist_count);
}

} // namespace

bool
sweepUsesNaivePath(SweepPath path)
{
    if (path == SweepPath::Naive)
        return true;
    if (path == SweepPath::Engine)
        return false;
    // Auto and Streamed both honour the forcing knob — for Streamed
    // it picks the per-chunk kernel, keeping the A/B meaningful out
    // of core.
    static const bool forced = envBool("GWS_NAIVE_SWEEP", false);
    return forced;
}

bool
sweepUsesStreamedPath(SweepPath path, std::size_t draw_count)
{
    if (path == SweepPath::Streamed)
        return true;
    if (path != SweepPath::Auto)
        return false;
    return shouldStreamWorkTrace(draw_count);
}

SweepResult
retimeAll(const WorkTrace &trace, std::span<const GpuConfig> configs,
          const SweepConfig &config)
{
    ScopedRegion region("core.retimeAll");
    const std::uint64_t t0 = runtime_detail::nowNs();
    GWS_ASSERT(!configs.empty(), "retimeAll with no configs");
    for (const GpuConfig &cfg : configs)
        GWS_ASSERT(capacityConfigHash(cfg) == trace.capacityKey(),
                   "config '", cfg.name,
                   "' changes capacity parameters; the work trace was "
                   "computed under a different capacity hash");

    const std::size_t n_cfg = configs.size();
    const std::size_t groups = trace.groupCount();

    SweepResult result;
    result.configCount = n_cfg;
    result.groupCount = groups;
    result.drawCount = trace.drawCount();
    result.totalNs.assign(n_cfg, 0.0);
    result.groupNs.assign(n_cfg * groups, 0.0);
    result.bottleneckNs.assign(n_cfg * numStages, 0.0);
    result.bottleneckCount.assign(n_cfg * numStages, 0);
    if (config.perDraw)
        result.drawNs.assign(n_cfg * trace.drawCount(), 0.0);

    // Per-group histogram partials, combined in ascending group order
    // below — the same shape for both paths, so the merge order (and
    // therefore every rounded sum) is identical.
    std::vector<double> group_hist_ns(groups * n_cfg * numStages, 0.0);
    std::vector<std::uint64_t> group_hist_count(
        groups * n_cfg * numStages, 0);

    if (sweepUsesNaivePath(config.path))
        retimeNaive(trace, configs, config.perDraw, result, group_hist_ns,
                    group_hist_count);
    else
        retimeEngine(trace, configs, config, config.perDraw, result,
                     group_hist_ns, group_hist_count);

    for (std::size_t c = 0; c < n_cfg; ++c) {
        double total = 0.0;
        for (std::size_t g = 0; g < groups; ++g)
            total += result.groupNs[c * groups + g];
        result.totalNs[c] = total;
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t slab = (g * n_cfg + c) * numStages;
            for (std::size_t s = 0; s < numStages; ++s) {
                result.bottleneckNs[c * numStages + s] +=
                    group_hist_ns[slab + s];
                result.bottleneckCount[c * numStages + s] +=
                    group_hist_count[slab + s];
            }
        }
    }

    runtime_detail::noteSweepPass(
        n_cfg, n_cfg * trace.drawCount(),
        runtime_detail::nowNs() - t0);
    return result;
}

SweepResult
retimeAllStreamed(StreamingWorkTrace &stream,
                  std::span<const GpuConfig> configs,
                  const SweepConfig &config)
{
    ScopedRegion region("core.retimeAllStreamed");
    const std::uint64_t t0 = runtime_detail::nowNs();
    GWS_ASSERT(!configs.empty(), "retimeAllStreamed with no configs");
    GWS_ASSERT(!config.perDraw,
               "streamed sweeps cannot record per-draw costs; the "
               "configs × draws matrix is the allocation the streamed "
               "path exists to avoid");
    for (const GpuConfig &cfg : configs)
        GWS_ASSERT(capacityConfigHash(cfg) == stream.capacityKey(),
                   "config '", cfg.name,
                   "' changes capacity parameters; the streamed work "
                   "was computed under a different capacity hash");

    const std::size_t n_cfg = configs.size();
    const std::size_t groups = stream.groupCount();

    SweepResult result;
    result.configCount = n_cfg;
    result.groupCount = groups;
    result.drawCount = stream.drawCount();
    result.totalNs.assign(n_cfg, 0.0);
    result.groupNs.assign(n_cfg * groups, 0.0);
    result.bottleneckNs.assign(n_cfg * numStages, 0.0);
    result.bottleneckCount.assign(n_cfg * numStages, 0);

    const bool naive = sweepUsesNaivePath(config.path);

    stream.forEachChunk([&](std::size_t, std::size_t first_group,
                            const WorkTrace &chunk) {
        // Chunk-local pass through the very kernels retimeAll runs:
        // they are group-local, and a chunk's columns are bitwise the
        // flattened trace's rows, so every per-group value comes out
        // identical.
        const std::size_t cg = chunk.groupCount();
        SweepResult local;
        local.configCount = n_cfg;
        local.groupCount = cg;
        local.drawCount = chunk.drawCount();
        local.groupNs.assign(n_cfg * cg, 0.0);
        std::vector<double> hist_ns(cg * n_cfg * numStages, 0.0);
        std::vector<std::uint64_t> hist_count(cg * n_cfg * numStages, 0);
        if (naive)
            retimeNaive(chunk, configs, false, local, hist_ns,
                        hist_count);
        else
            retimeEngine(chunk, configs, config, false, local, hist_ns,
                         hist_count);

        // Fold in the in-memory merge's order: per config, groups
        // ascending. Chunks arrive in ascending group order, so each
        // accumulator (totalNs[c], bottleneck slot [c, s]) sees the
        // exact addition chain of retimeAll's final reduction.
        for (std::size_t c = 0; c < n_cfg; ++c) {
            for (std::size_t g = 0; g < cg; ++g) {
                const double v = local.groupNs[c * cg + g];
                result.groupNs[c * groups + first_group + g] = v;
                result.totalNs[c] += v;
            }
            for (std::size_t g = 0; g < cg; ++g) {
                const std::size_t slab = (g * n_cfg + c) * numStages;
                for (std::size_t s = 0; s < numStages; ++s) {
                    result.bottleneckNs[c * numStages + s] +=
                        hist_ns[slab + s];
                    result.bottleneckCount[c * numStages + s] +=
                        hist_count[slab + s];
                }
            }
        }
    });

    runtime_detail::noteSweepPass(
        n_cfg, n_cfg * stream.drawCount(),
        runtime_detail::nowNs() - t0);
    return result;
}

WorkTrace
buildSubsetWorkTrace(const Trace &trace, const WorkloadSubset &subset,
                     const GpuSimulator &simulator)
{
    ScopedRegion region("core.buildSubsetWorkTrace");
    const std::uint64_t t0 = runtime_detail::nowNs();

    std::vector<std::size_t> sizes;
    sizes.reserve(subset.units.size());
    for (const SubsetUnit &unit : subset.units)
        sizes.push_back(unit.frameSubset.clustering.k);

    WorkTrace wt(capacityConfigHash(simulator.config()), sizes);
    parallelFor(0, subset.units.size(), 1, [&](std::size_t u) {
        const SubsetUnit &unit = subset.units[u];
        const Frame &frame = trace.frame(unit.frameIndex);
        std::size_t row = wt.groupBegin(u);
        for (std::size_t rep : unit.frameSubset.clustering.representatives)
            wt.setRow(row++, simulator.computeDrawWork(
                                 trace, frame.draws()[rep]));
    });

    runtime_detail::noteWorkTraceBuild(wt.drawCount(),
                                       runtime_detail::nowNs() - t0);
    return wt;
}

std::vector<GpuConfig>
clockSweepConfigs(const GpuConfig &base, const std::vector<double> &scales)
{
    std::vector<GpuConfig> configs;
    configs.reserve(scales.size());
    for (double scale : scales)
        configs.push_back(base.withCoreClockScale(scale));
    return configs;
}

} // namespace gws
