#include "core/subset_pipeline.hh"

#include <cmath>

#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"

namespace gws {

std::uint64_t
WorkloadSubset::subsetDraws() const
{
    std::uint64_t n = 0;
    for (const auto &u : units)
        n += u.frameSubset.clustering.k;
    return n;
}

double
WorkloadSubset::drawFraction() const
{
    if (parentDraws == 0)
        return 0.0;
    return static_cast<double>(subsetDraws()) /
           static_cast<double>(parentDraws);
}

double
WorkloadSubset::totalFrameWeight() const
{
    double w = 0.0;
    for (const auto &u : units)
        w += u.frameWeight;
    return w;
}

double
WorkloadSubset::predictTotalNs(const Trace &parent,
                               const GpuSimulator &simulator) const
{
    // Each unit prices its own representative draws, so units fan out
    // one per chunk; the weighted terms are then summed in unit order,
    // matching the serial accumulation bit for bit.
    const std::vector<double> terms = parallelMap<double>(
        0, units.size(), 1, [&](std::size_t i) {
            const SubsetUnit &u = units[i];
            const Frame &frame = parent.frame(u.frameIndex);
            return u.frameWeight *
                   predictFrameNs(parent, frame, u.frameSubset,
                                  simulator, prediction);
        });
    double total = 0.0;
    for (double t : terms)
        total += t;
    return total;
}

const char *
toString(PhaseMethod method)
{
    switch (method) {
      case PhaseMethod::ShaderVector:
        return "shader_vector";
      case PhaseMethod::FeatureCluster:
        return "feature_cluster";
    }
    GWS_PANIC("unknown phase method ", static_cast<int>(method));
}

WorkloadSubset
buildWorkloadSubset(const Trace &trace, const SubsetConfig &config)
{
    ScopedRegion region("core.buildWorkloadSubset");
    WorkloadSubset subset;
    subset.parentName = trace.name();
    subset.prediction = config.draws.prediction;
    subset.parentFrames = trace.frameCount();
    subset.parentDraws = trace.totalDraws();
    subset.timeline =
        config.phaseMethod == PhaseMethod::ShaderVector
            ? detectPhases(trace, config.phase)
            : detectPhasesByFeatures(trace, config.featurePhase);

    GWS_ASSERT(config.framesPerPhase >= 1,
               "framesPerPhase must be at least 1");
    GWS_ASSERT(config.occurrencesPerPhase >= 1,
               "occurrencesPerPhase must be at least 1");
    // Pass 1 (serial, cheap): walk the timeline and decide every
    // representative frame and its weight. Pass 2 (parallel): run the
    // per-frame draw clustering — the expensive step — one unit per
    // chunk. Assembly stays in pass-1 order, so the subset is
    // identical to a serial build.
    const auto occurrence = subset.timeline.occurrenceCounts();
    subset.unitsOfPhase.resize(subset.timeline.phaseCount);
    for (std::uint32_t p = 0; p < subset.timeline.phaseCount; ++p) {
        const auto &phase_ivs = subset.timeline.phaseIntervals[p];
        GWS_ASSERT(occurrence[p] >= 1, "phase with no occurrence");

        // Weight: every parent frame in any interval of this phase,
        // split evenly across the phase's representative frames.
        double weight = 0.0;
        for (std::size_t iv : phase_ivs)
            weight += static_cast<double>(
                subset.timeline.intervals[iv].frames());

        // Occurrences: spread evenly across the phase's occurrence
        // list (the single-occurrence case is the first one — the
        // paper's capture-once choice).
        const std::uint32_t n_occ = std::min<std::uint32_t>(
            config.occurrencesPerPhase,
            static_cast<std::uint32_t>(phase_ivs.size()));
        std::vector<const Interval *> chosen;
        if (n_occ == 1) {
            chosen.push_back(
                &subset.timeline
                     .intervals[subset.timeline.representatives[p]]);
        } else {
            for (std::uint32_t s = 0; s < n_occ; ++s) {
                const std::size_t pick =
                    static_cast<std::size_t>(s) *
                    (phase_ivs.size() - 1) / (n_occ - 1);
                chosen.push_back(
                    &subset.timeline.intervals[phase_ivs[pick]]);
            }
        }

        // Representative frames: spread evenly across each chosen
        // interval (the single-frame case lands in the middle, away
        // from interval edges that may straddle transitions).
        std::vector<std::uint32_t> frames;
        for (const Interval *iv : chosen) {
            const std::uint32_t n_frames =
                std::min(config.framesPerPhase, iv->frames());
            for (std::uint32_t s = 0; s < n_frames; ++s) {
                frames.push_back(iv->beginFrame + (2 * s + 1) *
                                                      iv->frames() /
                                                      (2 * n_frames));
            }
        }
        GWS_ASSERT(!frames.empty(), "no representative frames for phase");
        for (std::uint32_t rep_frame : frames) {
            SubsetUnit unit;
            unit.phaseId = p;
            unit.frameIndex = rep_frame;
            unit.frameWeight =
                weight / static_cast<double>(frames.size());
            subset.unitsOfPhase[p].push_back(subset.units.size());
            subset.units.push_back(std::move(unit));
        }
    }

    // Pass 2: cluster every representative frame's draws in parallel.
    parallelFor(0, subset.units.size(), 1, [&](std::size_t i) {
        SubsetUnit &unit = subset.units[i];
        unit.frameSubset = buildFrameSubset(
            trace, trace.frame(unit.frameIndex), config.draws);
    });

    GWS_ASSERT(std::llround(subset.totalFrameWeight()) ==
                   static_cast<long long>(trace.frameCount()),
               "subset weights do not cover the parent: ",
               subset.totalFrameWeight(), " vs ", trace.frameCount());
    return subset;
}

double
SubsetEvaluation::relError() const
{
    if (parentNs <= 0.0)
        return 0.0;
    return std::fabs(predictedNs - parentNs) / parentNs;
}

SubsetEvaluation
evaluateSubset(const Trace &trace, const WorkloadSubset &subset,
               const GpuSimulator &simulator)
{
    SubsetEvaluation eval;
    eval.parentNs = simulator.simulateTrace(trace).totalNs;
    eval.predictedNs = subset.predictTotalNs(trace, simulator);
    return eval;
}

} // namespace gws
