/**
 * @file
 * Suite-level (cross-workload) subsetting — an extension aimed at the
 * paper's opening motivation: pathfinding suffers from an explosion in
 * the *number* of workloads, not just their length. Beyond subsetting
 * each game, the corpus itself is redundant: different games render
 * frames with similar aggregate behavior. This module characterizes
 * whole frames by micro-architecture-independent totals, clusters them
 * across the entire suite, and keeps one representative frame per
 * cluster — so a pathfinding sweep prices a handful of frames instead
 * of the whole corpus.
 */

#ifndef GWS_CORE_SUITE_SUBSET_HH
#define GWS_CORE_SUITE_SUBSET_HH

#include "features/feature_vector.hh"
#include "gpusim/gpu_simulator.hh"
#include "synth/suite.hh"

namespace gws {

/** Suite-subsetting parameters. */
struct SuiteSubsetConfig
{
    /** Leader radius over normalized frame descriptors. */
    double radius = 1.0;
};

/** One representative frame of a suite subset. */
struct SuiteFrameRef
{
    /** Trace the frame lives in. */
    std::size_t traceIndex = 0;

    /** Frame index within that trace. */
    std::uint32_t frameIndex = 0;

    /** Corpus frames this representative stands for. */
    double weight = 1.0;
};

/** A cross-workload frame subset. */
struct SuiteSubset
{
    /** Representative frames with weights. */
    std::vector<SuiteFrameRef> frames;

    /** Corpus frames the subset was built from. */
    std::size_t corpusFrames = 0;

    /** Frame id -> cluster id over the corpus (corpus order). */
    std::vector<std::uint32_t> assignment;

    /** Clusters whose members span more than one game. */
    std::size_t crossGameClusters = 0;

    /** Representative frames / corpus frames. */
    double frameFraction() const;

    /** Sum of weights (equals corpusFrames). */
    double totalWeight() const;
};

/**
 * Frame descriptor: log-scaled micro-architecture-independent totals
 * (draws, vertices, pixels, shader ops, texture samples, bytes) plus
 * coverage-weighted means (ops/pixel, overdraw, locality, blend
 * fraction). Reuses the FeatureVector container; dimensions hold
 * frame-level aggregates rather than per-draw values.
 */
FeatureVector frameDescriptor(const Trace &trace, const Frame &frame);

/**
 * Build a suite subset over the given corpus frames. Deterministic;
 * representatives are chosen nearest each cluster centroid.
 */
SuiteSubset buildSuiteSubset(const std::vector<Trace> &suite,
                             const std::vector<CorpusFrame> &corpus,
                             const SuiteSubsetConfig &config);

/** Fully-simulated total cost of the corpus frames. */
double measureCorpusNs(const std::vector<Trace> &suite,
                       const std::vector<CorpusFrame> &corpus,
                       const GpuSimulator &simulator);

/**
 * Subset-predicted total cost of the corpus: weighted sum of fully
 * simulated representative frames.
 */
double predictCorpusNs(const std::vector<Trace> &suite,
                       const SuiteSubset &subset,
                       const GpuSimulator &simulator);

} // namespace gws

#endif // GWS_CORE_SUITE_SUBSET_HH
