/**
 * @file
 * The architecture-pathfinding use case from the paper's title:
 * evaluate a set of candidate GPU design points on a workload subset
 * and check that the ranking (and the relative gaps) match a full
 * simulation of the parent workload.
 */

#ifndef GWS_CORE_PATHFINDING_HH
#define GWS_CORE_PATHFINDING_HH

#include <string>
#include <vector>

#include "core/subset_pipeline.hh"
#include "core/sweep.hh"
#include "gpusim/gpu_config.hh"

namespace gws {

/** One design point's scores. */
struct DesignPointScore
{
    /** Design-point name. */
    std::string name;

    /** Fully-simulated parent cost. */
    double parentNs = 0.0;

    /** Subset-predicted cost. */
    double subsetNs = 0.0;

    /** Parent speedup vs the first design point. */
    double parentSpeedup = 1.0;

    /** Subset speedup vs the first design point. */
    double subsetSpeedup = 1.0;
};

/** Result of a pathfinding study. */
struct PathfindingResult
{
    /** Scores per design point, in input order. */
    std::vector<DesignPointScore> points;

    /** Rank (0 = fastest) of each point by parent cost. */
    std::vector<std::size_t> parentRanking;

    /** Rank of each point by subset cost. */
    std::vector<std::size_t> subsetRanking;

    /** True when the two rankings are identical. */
    bool rankingPreserved = false;

    /** Pearson correlation of the speedup vectors. */
    double speedupCorrelation = 0.0;

    /** Spearman rank correlation of the cost vectors. */
    double rankCorrelation = 0.0;
};

/**
 * Run the study: price every design point on the full parent and on
 * the subset, then compare rankings. Requires >= 2 design points.
 *
 * On the engine path, designs differing only in clocks (same capacity
 * hash — e.g. the baseline/wide/fastmem presets) share one WorkTrace
 * and are retimed in a single sweep pass; capacity-changing designs
 * each get their own compute-once pass. The naive path prices every
 * design with its own full simulateTrace walk.
 */
PathfindingResult runPathfinding(const Trace &trace,
                                 const WorkloadSubset &subset,
                                 const std::vector<GpuConfig> &designs,
                                 SweepPath path = SweepPath::Auto);

} // namespace gws

#endif // GWS_CORE_PATHFINDING_HH
