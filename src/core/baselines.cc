#include "core/baselines.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gws {

const char *
toString(BaselineKind kind)
{
    switch (kind) {
      case BaselineKind::Random:
        return "random";
      case BaselineKind::Uniform:
        return "uniform";
      case BaselineKind::StratifiedShader:
        return "stratified";
    }
    GWS_PANIC("unknown baseline kind ", static_cast<int>(kind));
}

std::vector<BaselineKind>
allBaselineKinds()
{
    return {BaselineKind::Random, BaselineKind::Uniform,
            BaselineKind::StratifiedShader};
}

BaselineSample
selectBaselineSample(const Frame &frame, std::size_t budget,
                     BaselineKind kind, std::uint64_t seed)
{
    const std::size_t n = frame.drawCount();
    GWS_ASSERT(n > 0, "baseline sample of an empty frame");
    const std::size_t k = std::clamp<std::size_t>(budget, 1, n);

    BaselineSample sample;
    switch (kind) {
      case BaselineKind::Random: {
        Rng rng(seed);
        auto perm = rng.permutation(n);
        perm.resize(k);
        std::sort(perm.begin(), perm.end());
        sample.draws = std::move(perm);
        sample.weights.assign(k, static_cast<double>(n) /
                                     static_cast<double>(k));
        break;
      }
      case BaselineKind::Uniform: {
        for (std::size_t i = 0; i < k; ++i)
            sample.draws.push_back(i * n / k);
        sample.weights.assign(k, static_cast<double>(n) /
                                     static_cast<double>(k));
        break;
      }
      case BaselineKind::StratifiedShader: {
        // Strata by bound pixel shader, proportional allocation with
        // at least one sample per stratum (bounded by budget order).
        std::map<ShaderId, std::vector<std::size_t>> strata;
        for (std::size_t i = 0; i < n; ++i)
            strata[frame.draws()[i].state.pixelShader].push_back(i);

        Rng rng(seed);
        for (const auto &[shader, members] : strata) {
            std::size_t quota = std::max<std::size_t>(
                1, members.size() * k / n);
            quota = std::min(quota, members.size());
            auto perm = rng.permutation(members.size());
            perm.resize(quota);
            std::sort(perm.begin(), perm.end());
            const double w = static_cast<double>(members.size()) /
                             static_cast<double>(quota);
            for (std::size_t idx : perm) {
                sample.draws.push_back(members[idx]);
                sample.weights.push_back(w);
            }
        }
        break;
      }
    }
    GWS_ASSERT(!sample.draws.empty(), "baseline produced no sample");
    return sample;
}

double
predictFrameFromSample(const Trace &trace, const Frame &frame,
                       const GpuSimulator &simulator,
                       const BaselineSample &sample)
{
    GWS_ASSERT(sample.draws.size() == sample.weights.size(),
               "sample draws/weights length mismatch");
    double total = simulator.config().frameOverheadUs * 1e3;
    for (std::size_t i = 0; i < sample.draws.size(); ++i) {
        GWS_ASSERT(sample.draws[i] < frame.drawCount(),
                   "sampled draw out of range");
        total += sample.weights[i] *
                 simulator
                     .simulateDraw(trace, frame.draws()[sample.draws[i]])
                     .totalNs;
    }
    return total;
}

} // namespace gws
