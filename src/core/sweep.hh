/**
 * @file
 * The retime-many half of the compute-once / retime-many sweep
 * engine: evaluate all draws of a WorkTrace under many GPU configs in
 * one pass.
 *
 * The paper's headline experiments are sweeps — frequency scaling,
 * design-point pathfinding, the DVFS energy study — that re-time the
 * same per-draw work at every design point. retimeAll() replaces the
 * per-design serial loops with a blocked kernel: parallel over draw
 * groups (frames / subset units), inner loop over configs with the
 * per-config clock and throughput constants hoisted into contiguous
 * arrays, producing per-group and per-trace totals plus per-config
 * bottleneck histograms.
 *
 * Hard bit-identity contract (guarded by tests/test_sweep.cc and
 * re-measured by bench_micro_sweep):
 *
 *  - Every per-draw cost is computed with exactly the operations of
 *    GpuSimulator::timeDrawWork, in the same order — only constants
 *    that are themselves per-config pure (setup ns, ops/cycle, DRAM
 *    bandwidth) are hoisted, never re-associated arithmetic.
 *  - A group's cost is the serial left-to-right chain of its draw
 *    costs in submission order plus the config's frame overhead —
 *    the accumulation order of GpuSimulator::simulateFrame.
 *  - The trace total chains group costs in ascending group order —
 *    the accumulation order of GpuSimulator::simulateTrace.
 *  - Bottleneck histograms accumulate per group in draw order and
 *    combine group partials in ascending group order.
 *
 * Both SweepPath::Naive (a per-design GpuSimulator walking the rows
 * serially through timeDrawWork — the pre-engine loop shape) and
 * SweepPath::Engine follow that contract, so their outputs are
 * bit-identical and A/B-comparable; GWS_NAIVE_SWEEP=1 forces the
 * naive path process-wide for SweepPath::Auto callers.
 *
 * SweepPath::Streamed is the out-of-core variant: retimeAllStreamed()
 * runs the same kernels chunk by chunk over a StreamingWorkTrace
 * (fused with the build/spill/load of the bounded window) and folds
 * every accumulator — trace totals, histogram slabs — in ascending
 * group order, chunk by chunk. Because chunks carry whole groups in
 * ascending order, each accumulator sees the exact addition chain of
 * the in-memory merge, so the streamed results are bit-identical to
 * retimeAll() at any chunk size and thread count. Auto-path callers
 * switch to it when the flattened trace would exceed the memory
 * budget (sweepUsesStreamedPath).
 */

#ifndef GWS_CORE_SWEEP_HH
#define GWS_CORE_SWEEP_HH

#include <span>
#include <vector>

#include "core/subset_pipeline.hh"
#include "gpusim/streaming_work_trace.hh"
#include "gpusim/work_trace.hh"
#include "partition/shards.hh"

namespace gws {

/** Which retiming implementation retimeAll() runs. */
enum class SweepPath : std::uint8_t
{
    /** Engine unless the GWS_NAIVE_SWEEP environment variable forces
     *  the naive path (read once at first use). */
    Auto = 0,

    /** Per-design GpuSimulator + serial timeDrawWork loops (the A/B
     *  reference — the pre-engine shape of the sweep studies). */
    Naive = 1,

    /** Blocked multi-config kernel over the SoA columns. */
    Engine = 2,

    /** Out-of-core chunked path (retimeAllStreamed); Auto callers
     *  take it when the trace exceeds the memory budget. */
    Streamed = 3,
};

/**
 * Resolve a path against GWS_NAIVE_SWEEP (read once per process).
 * For SweepPath::Streamed this selects the *inner* per-chunk kernel,
 * so the naive/engine A/B extends to the out-of-core path.
 */
bool sweepUsesNaivePath(SweepPath path);

/**
 * True when a sweep over `draw_count` draws should run out of core:
 * always for SweepPath::Streamed, never for the forced in-memory
 * paths, and for Auto exactly when the flattened trace would exceed
 * the memory budget (shouldStreamWorkTrace).
 */
bool sweepUsesStreamedPath(SweepPath path, std::size_t draw_count);

/** retimeAll() options. */
struct SweepConfig
{
    /** Implementation selection. */
    SweepPath path = SweepPath::Auto;

    /**
     * Also record every per-draw cost (configs × draws doubles).
     * Needed when the caller expands representative costs through a
     * prediction mode (subset sweeps); off for parent sweeps where
     * only group/trace totals matter.
     */
    bool perDraw = false;

    /** Groups per parallel chunk (0 = 1, one frame/unit per chunk).
     *  Only the naive partition path chunks by count; the balanced
     *  path derives cost-balanced shard bounds instead. */
    std::size_t groupGrain = 0;

    /**
     * How groups are sharded across threads: Balanced uses
     * cost-balanced contiguous shards from partitionTraceShards()
     * (equal per-shard draw work, so skewed traces keep every thread
     * busy), Naive the uniform groupGrain chunking, Auto the process
     * default (GWS_NAIVE_SHARD / setDefaultPartitionPath). Sharding
     * is pure scheduling — results are bit-identical on every path.
     */
    PartitionPath partition = PartitionPath::Auto;

    /** Shard count for the balanced path (0 = defaultShardCount). */
    std::size_t shardCount = 0;
};

/** All totals of one retimeAll() pass. */
struct SweepResult
{
    /** Configs evaluated (the span's size, in order). */
    std::size_t configCount = 0;

    /** Groups in the work trace. */
    std::size_t groupCount = 0;

    /** Draws in the work trace. */
    std::size_t drawCount = 0;

    /** Per-config trace total (chain of group costs). */
    std::vector<double> totalNs;

    /** Per-config, per-group cost incl. frame overhead; [c × groups + g]. */
    std::vector<double> groupNs;

    /** Per-config bottleneck time by stage; [c × numStages + s]. */
    std::vector<double> bottleneckNs;

    /** Per-config bottleneck draw count by stage; [c × numStages + s]. */
    std::vector<std::uint64_t> bottleneckCount;

    /** Per-config per-draw cost when SweepConfig::perDraw; [c × draws + i]. */
    std::vector<double> drawNs;

    /** Cost of group g under config c. */
    double groupNsAt(std::size_t c, std::size_t g) const
    {
        return groupNs[c * groupCount + g];
    }

    /** Cost of draw i under config c (perDraw runs only). */
    double drawNsAt(std::size_t c, std::size_t i) const
    {
        return drawNs[c * drawCount + i];
    }

    /** Bottleneck time of stage s under config c. */
    double bottleneckNsAt(std::size_t c, Stage s) const
    {
        return bottleneckNs[c * numStages + static_cast<std::size_t>(s)];
    }

    /** Draws bottlenecked on stage s under config c. */
    std::uint64_t bottleneckCountAt(std::size_t c, Stage s) const
    {
        return bottleneckCount[c * numStages +
                               static_cast<std::size_t>(s)];
    }
};

/**
 * Evaluate all draws × all configs. Every config must share the work
 * trace's capacity hash (clock / throughput changes only) — capacity
 * changes need a fresh WorkTrace. Panics otherwise.
 */
SweepResult retimeAll(const WorkTrace &trace,
                      std::span<const GpuConfig> configs,
                      const SweepConfig &config = {});

/**
 * Out-of-core retimeAll: evaluate all draws × all configs chunk by
 * chunk over a streaming work trace, fused with the stream's
 * build→spill (first pass) or load (later passes) so no full derived
 * column is ever materialised. Same capacity-hash contract as
 * retimeAll; SweepConfig::perDraw is rejected (a per-draw matrix is
 * exactly the allocation the streamed path exists to avoid). Results
 * are bit-identical to retimeAll on the flattened trace.
 */
SweepResult retimeAllStreamed(StreamingWorkTrace &stream,
                              std::span<const GpuConfig> configs,
                              const SweepConfig &config = {});

/**
 * Flatten a subset's representative draws: one group per SubsetUnit,
 * rows in cluster order (the order predictItemCosts expects its
 * representative costs in). Built in parallel like buildWorkTrace.
 */
WorkTrace buildSubsetWorkTrace(const Trace &trace,
                               const WorkloadSubset &subset,
                               const GpuSimulator &simulator);

/** base with every scale applied to the core clock, in sweep order. */
std::vector<GpuConfig> clockSweepConfigs(const GpuConfig &base,
                                         const std::vector<double> &scales);

} // namespace gws

#endif // GWS_CORE_SWEEP_HH
