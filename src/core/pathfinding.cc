#include "core/pathfinding.hh"

#include <algorithm>
#include <numeric>

#include "gpusim/draw_work_cache.hh"
#include "runtime/counters.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace gws {

namespace {

/** rank[i] = position of item i when sorted ascending by cost. */
std::vector<std::size_t>
rankOf(const std::vector<double> &costs)
{
    std::vector<std::size_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return costs[a] < costs[b];
    });
    std::vector<std::size_t> rank(costs.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos)
        rank[order[pos]] = pos;
    return rank;
}

/**
 * Parent cost of every design through the sweep engine: designs are
 * grouped by capacity hash (first-seen order), each group computes
 * its WorkTrace once and retimes all of its members in one pass. The
 * engine's accumulation contract matches simulateTrace, so the costs
 * are bit-identical to the naive per-design walk.
 */
std::vector<double>
parentCostsEngine(const Trace &trace,
                  const std::vector<GpuConfig> &designs, SweepPath path)
{
    std::vector<std::uint64_t> group_keys;
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const std::uint64_t key = capacityConfigHash(designs[i]);
        std::size_t g = 0;
        while (g < group_keys.size() && group_keys[g] != key)
            ++g;
        if (g == group_keys.size()) {
            group_keys.push_back(key);
            groups.emplace_back();
        }
        groups[g].push_back(i);
    }

    // The streamed decision is per capacity group: each group flattens
    // the whole trace under its own capacity config, so each one
    // independently goes out of core when that image would exceed the
    // memory budget.
    const bool streamed = sweepUsesStreamedPath(path, traceDrawCount(trace));

    std::vector<double> costs(designs.size(), 0.0);
    for (const std::vector<std::size_t> &members : groups) {
        const GpuSimulator sim(designs[members.front()]);
        std::vector<GpuConfig> configs;
        configs.reserve(members.size());
        for (std::size_t i : members)
            configs.push_back(designs[i]);
        SweepConfig pass;
        pass.path = path;
        SweepResult sweep;
        if (streamed) {
            StreamingWorkTrace stream(trace, sim);
            sweep = retimeAllStreamed(stream, configs, pass);
        } else {
            const WorkTrace work = buildWorkTrace(trace, sim);
            sweep = retimeAll(work, configs, pass);
        }
        for (std::size_t m = 0; m < members.size(); ++m)
            costs[members[m]] = sweep.totalNs[m];
    }
    return costs;
}

} // namespace

PathfindingResult
runPathfinding(const Trace &trace, const WorkloadSubset &subset,
               const std::vector<GpuConfig> &designs, SweepPath path)
{
    GWS_ASSERT(designs.size() >= 2,
               "pathfinding needs at least two design points");
    ScopedRegion region("core.runPathfinding");

    std::vector<double> parent_costs;
    if (sweepUsesNaivePath(path)) {
        for (const auto &design : designs) {
            const GpuSimulator sim(design);
            parent_costs.push_back(sim.simulateTrace(trace).totalNs);
        }
    } else {
        parent_costs = parentCostsEngine(trace, designs, path);
    }

    PathfindingResult result;
    std::vector<double> subset_costs;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const GpuSimulator sim(designs[i]);
        DesignPointScore score;
        score.name = designs[i].name;
        score.parentNs = parent_costs[i];
        score.subsetNs = subset.predictTotalNs(trace, sim);
        subset_costs.push_back(score.subsetNs);
        result.points.push_back(std::move(score));
    }

    for (auto &score : result.points) {
        score.parentSpeedup = parent_costs[0] / score.parentNs;
        score.subsetSpeedup = subset_costs[0] / score.subsetNs;
    }

    result.parentRanking = rankOf(parent_costs);
    result.subsetRanking = rankOf(subset_costs);
    result.rankingPreserved =
        result.parentRanking == result.subsetRanking;

    std::vector<double> parent_speedups, subset_speedups;
    for (const auto &score : result.points) {
        parent_speedups.push_back(score.parentSpeedup);
        subset_speedups.push_back(score.subsetSpeedup);
    }
    result.speedupCorrelation = pearson(parent_speedups, subset_speedups);
    result.rankCorrelation = spearman(parent_costs, subset_costs);
    return result;
}

} // namespace gws
