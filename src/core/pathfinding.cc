#include "core/pathfinding.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"
#include "util/stats.hh"

namespace gws {

namespace {

/** rank[i] = position of item i when sorted ascending by cost. */
std::vector<std::size_t>
rankOf(const std::vector<double> &costs)
{
    std::vector<std::size_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return costs[a] < costs[b];
    });
    std::vector<std::size_t> rank(costs.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos)
        rank[order[pos]] = pos;
    return rank;
}

} // namespace

PathfindingResult
runPathfinding(const Trace &trace, const WorkloadSubset &subset,
               const std::vector<GpuConfig> &designs)
{
    GWS_ASSERT(designs.size() >= 2,
               "pathfinding needs at least two design points");

    PathfindingResult result;
    std::vector<double> parent_costs, subset_costs;
    for (const auto &design : designs) {
        const GpuSimulator sim(design);
        DesignPointScore score;
        score.name = design.name;
        score.parentNs = sim.simulateTrace(trace).totalNs;
        score.subsetNs = subset.predictTotalNs(trace, sim);
        parent_costs.push_back(score.parentNs);
        subset_costs.push_back(score.subsetNs);
        result.points.push_back(std::move(score));
    }

    for (auto &score : result.points) {
        score.parentSpeedup = parent_costs[0] / score.parentNs;
        score.subsetSpeedup = subset_costs[0] / score.subsetNs;
    }

    result.parentRanking = rankOf(parent_costs);
    result.subsetRanking = rankOf(subset_costs);
    result.rankingPreserved =
        result.parentRanking == result.subsetRanking;

    std::vector<double> parent_speedups, subset_speedups;
    for (const auto &score : result.points) {
        parent_speedups.push_back(score.parentSpeedup);
        subset_speedups.push_back(score.subsetSpeedup);
    }
    result.speedupCorrelation = pearson(parent_speedups, subset_speedups);
    result.rankCorrelation = spearman(parent_costs, subset_costs);
    return result;
}

} // namespace gws
