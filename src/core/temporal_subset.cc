#include "core/temporal_subset.hh"

#include <cmath>
#include <limits>

#include "features/extractor.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace gws {

double
TemporalReport::efficiency() const
{
    if (draws == 0)
        return 0.0;
    return 1.0 - static_cast<double>(clusters) /
                     static_cast<double>(draws);
}

double
TemporalReport::meanFrameError() const
{
    return mean(frameErrors);
}

double
TemporalReport::maxFrameError() const
{
    double worst = 0.0;
    for (double e : frameErrors)
        worst = std::max(worst, e);
    return worst;
}

TemporalReport
runTemporalSubsetting(const Trace &trace, const GpuSimulator &simulator,
                      const TemporalSubsetConfig &config)
{
    GWS_ASSERT(trace.frameCount() > 0,
               "temporal subsetting on an empty trace");
    GWS_ASSERT(config.radius >= 0.0, "negative radius");
    const double r2 = config.radius * config.radius;

    const std::uint64_t n_frames =
        config.maxFrames == 0
            ? trace.frameCount()
            : std::min<std::uint64_t>(config.maxFrames,
                                      trace.frameCount());

    const FeatureExtractor extractor(trace);
    // Fit the normalizer once so feature-space distances mean the
    // same thing in every frame of the playthrough.
    const Normalizer norm =
        Normalizer::fit(extractor.extractFrame(trace.frame(0)));

    struct Leader
    {
        FeatureVector center;
        double costNs; // simulated once, in the founding frame
    };
    std::vector<Leader> leaders;

    TemporalReport report;
    const double overhead = simulator.config().frameOverheadUs * 1e3;
    for (std::uint64_t fi = 0; fi < n_frames; ++fi) {
        const Frame &frame = trace.frame(fi);
        std::uint64_t founded = 0;
        double predicted = overhead;
        double actual = overhead;
        for (const auto &draw : frame.draws()) {
            const FeatureVector point =
                norm.apply(extractor.extract(draw));
            double best_d = std::numeric_limits<double>::infinity();
            std::size_t best = SIZE_MAX;
            for (std::size_t l = 0; l < leaders.size(); ++l) {
                const double d =
                    point.squaredDistance(leaders[l].center);
                if (d < best_d) {
                    best_d = d;
                    best = l;
                }
            }
            const double true_cost =
                simulator.simulateDraw(trace, draw).totalNs;
            actual += true_cost;
            if (best != SIZE_MAX && best_d <= r2) {
                predicted += leaders[best].costNs;
            } else {
                // Founding draw: it is the representative, so its
                // (single) simulation is also its prediction.
                leaders.push_back({point, true_cost});
                predicted += true_cost;
                ++founded;
            }
            ++report.draws;
        }
        report.clusters += founded;
        report.newClustersPerFrame.push_back(founded);
        report.frameErrors.push_back(
            actual > 0.0 ? std::fabs(predicted - actual) / actual : 0.0);
        ++report.frames;
    }
    return report;
}

} // namespace gws
