/**
 * @file
 * Serialization of workload subsets. A subset is the artifact a
 * pathfinding team distributes: for each phase, the representative
 * frame indices into the parent trace, per-frame clusterings, and
 * weights — everything needed to price the parent on any architecture
 * without redoing phase detection or clustering. Same framing
 * (magic, version, size, checksum) as the trace format.
 */

#ifndef GWS_CORE_SUBSET_IO_HH
#define GWS_CORE_SUBSET_IO_HH

#include <iosfwd>
#include <string>

#include "core/subset_pipeline.hh"
#include "util/error.hh"

namespace gws {

/**
 * Error thrown when a subset stream or file cannot be decoded. Carries
 * the byte offset of the failure when known (see IoError).
 */
class SubsetIoError : public IoError
{
  public:
    using IoError::IoError;
};

/** Current subset serialization format version. */
constexpr std::uint32_t subsetFormatVersion = 1;

/** Serialize a subset to a binary stream. */
void writeSubset(const WorkloadSubset &subset, std::ostream &os);

/** Serialize a subset to a file; throws SubsetIoError if unwritable. */
void writeSubsetFile(const WorkloadSubset &subset,
                     const std::string &path);

/** Deserialize a subset; throws SubsetIoError on malformed input. */
WorkloadSubset readSubset(std::istream &is);

/** Deserialize a subset from a file; throws SubsetIoError. */
WorkloadSubset readSubsetFile(const std::string &path);

/**
 * Cross-check a loaded subset against the parent trace it claims to
 * represent: name, frame/draw totals, frame indices in range, and
 * per-unit clustering sizes matching the referenced frames. Throws
 * SubsetIoError on the first mismatch (user error: wrong pairing).
 */
void checkSubsetAgainst(const WorkloadSubset &subset, const Trace &parent);

} // namespace gws

#endif // GWS_CORE_SUBSET_IO_HH
