/**
 * @file
 * The frequency-scaling validation study: sweep the GPU core clock,
 * price the parent workload (full simulation) and the subset
 * (weighted representative simulation) at every point, and correlate
 * their performance-improvement curves. The paper reports correlation
 * coefficients of 99.7 %+ for subsets below 1 % of the parent.
 *
 * Because cache behavior is clock-independent, the study computes
 * per-draw work once (a parallel WorkTrace build) and re-times it at
 * every clock point in one sweep-engine pass — see core/sweep.hh for
 * the engine and its bit-identity contract against the per-design
 * naive loops.
 */

#ifndef GWS_CORE_FREQ_SCALING_HH
#define GWS_CORE_FREQ_SCALING_HH

#include <vector>

#include "core/subset_pipeline.hh"
#include "core/sweep.hh"
#include "gpusim/gpu_simulator.hh"

namespace gws {

/** Clock sweep configuration. */
struct FreqScalingConfig
{
    /** Core-clock multipliers applied to the base config. */
    std::vector<double> scales{0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0};

    /** Index of the normalization point (scale treated as baseline). */
    std::size_t baselineIndex = 2;

    /** Retiming implementation (Auto honors GWS_NAIVE_SWEEP). */
    SweepPath path = SweepPath::Auto;
};

/** Result of one frequency-scaling study. */
struct FreqScalingResult
{
    /** The swept multipliers. */
    std::vector<double> scales;

    /** Parent total cost at each point (full simulation). */
    std::vector<double> parentNs;

    /** Subset-predicted total cost at each point. */
    std::vector<double> subsetNs;

    /** Parent speedup vs the baseline point. */
    std::vector<double> parentImprovement;

    /** Subset speedup vs the baseline point. */
    std::vector<double> subsetImprovement;

    /** Pearson correlation of the improvement curves. */
    double correlation = 0.0;

    /** Largest |subset - parent| improvement gap across points. */
    double maxImprovementGap = 0.0;
};

/**
 * Run the study for one trace and its subset on top of a base
 * architecture configuration.
 */
FreqScalingResult runFreqScaling(const Trace &trace,
                                 const WorkloadSubset &subset,
                                 const GpuConfig &base,
                                 const FreqScalingConfig &config);

} // namespace gws

#endif // GWS_CORE_FREQ_SCALING_HH
