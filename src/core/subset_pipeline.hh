/**
 * @file
 * The end-to-end workload subsetting pipeline — the paper's headline
 * contribution. Phase detection picks one representative interval per
 * phase; within it one representative frame; within that frame the
 * draw-call clustering picks representative draws. The resulting
 * WorkloadSubset is typically well under 1 % of the parent workload's
 * draws yet reconstructs the parent's total cost (and its response to
 * architecture changes) through its weights.
 */

#ifndef GWS_CORE_SUBSET_PIPELINE_HH
#define GWS_CORE_SUBSET_PIPELINE_HH

#include <string>
#include <vector>

#include "core/draw_subset.hh"
#include "core/predictor.hh"
#include "phase/feature_phases.hh"
#include "phase/phase_detect.hh"

namespace gws {

/** How frame intervals are grouped into phases. */
enum class PhaseMethod : std::uint8_t
{
    /** Shader-vector equality (the paper's technique). */
    ShaderVector = 0,

    /** SimPoint-style interval feature clustering (prior art). */
    FeatureCluster = 1,
};

/** Printable method name. */
const char *toString(PhaseMethod method);

/** Pipeline configuration: phase layer + draw layer. */
struct SubsetConfig
{
    /** Interval-grouping technique. */
    PhaseMethod phaseMethod = PhaseMethod::ShaderVector;

    /** Phase-detection parameters (ShaderVector method). */
    PhaseConfig phase;

    /** Phase-detection parameters (FeatureCluster method). */
    FeaturePhaseConfig featurePhase;

    /** Per-frame draw clustering parameters. */
    DrawSubsetConfig draws;

    /**
     * Representative frames sampled per selected interval (spread
     * evenly across it, clamped to its length). 1 reproduces the
     * paper; larger values trade subset size for lower total-time
     * error by averaging out intra-interval variation (camera swings)
     * — see the frames-per-phase ablation bench.
     */
    std::uint32_t framesPerPhase = 1;

    /**
     * Occurrences sampled per phase (spread evenly across the phase's
     * occurrence list, clamped to its occurrence count). 1 reproduces
     * the paper (first occurrence only); larger values average out
     * *inter-occurrence* drift — revisits of an environment differ in
     * camera state from the first visit — which the F10 ablation
     * shows is the dominant residual at full scale.
     */
    std::uint32_t occurrencesPerPhase = 1;
};

/** One weighted representative frame of a workload subset. */
struct SubsetUnit
{
    /** Phase this unit represents. */
    std::uint32_t phaseId = 0;

    /** Representative frame index in the parent trace. */
    std::uint32_t frameIndex = 0;

    /** Parent frames this unit stands for (its weight). */
    double frameWeight = 1.0;

    /** Draw-level subset of the representative frame. */
    FrameSubset frameSubset;
};

/** A workload subset with everything needed to price it. */
struct WorkloadSubset
{
    /** Parent trace name. */
    std::string parentName;

    /** Prediction mode the subset was built for. */
    PredictionMode prediction = PredictionMode::Uniform;

    /** Weighted representative frames, one per phase. */
    std::vector<SubsetUnit> units;

    /** Parent totals for bookkeeping. */
    std::uint64_t parentFrames = 0;
    std::uint64_t parentDraws = 0;

    /** The phase timeline the subset was derived from. */
    PhaseTimeline timeline;

    /** Units grouped by phase id (indices into units). */
    std::vector<std::vector<std::size_t>> unitsOfPhase;

    /** Draws that must be simulated to price the subset. */
    std::uint64_t subsetDraws() const;

    /** subsetDraws / parentDraws — the paper's "< 1 %" metric. */
    double drawFraction() const;

    /** Sum of unit weights (should cover every parent frame). */
    double totalFrameWeight() const;

    /**
     * Predicted total cost of the parent workload: each unit's
     * predicted frame cost times its weight. Simulates only the
     * representative draws.
     */
    double predictTotalNs(const Trace &parent,
                          const GpuSimulator &simulator) const;
};

/** Build the subset of a trace. */
WorkloadSubset buildWorkloadSubset(const Trace &trace,
                                   const SubsetConfig &config);

/** Evaluation of a subset against the fully-simulated parent. */
struct SubsetEvaluation
{
    /** Fully-simulated parent cost. */
    double parentNs = 0.0;

    /** Subset-predicted parent cost. */
    double predictedNs = 0.0;

    /** |predicted - parent| / parent. */
    double relError() const;
};

/** Price the parent both ways and report the error. */
SubsetEvaluation evaluateSubset(const Trace &trace,
                                const WorkloadSubset &subset,
                                const GpuSimulator &simulator);

} // namespace gws

#endif // GWS_CORE_SUBSET_PIPELINE_HH
