#include "core/freq_scaling.hh"

#include <cmath>

#include "runtime/counters.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace gws {

FreqScalingResult
runFreqScaling(const Trace &trace, const WorkloadSubset &subset,
               const GpuConfig &base, const FreqScalingConfig &config)
{
    GWS_ASSERT(!config.scales.empty(), "empty clock sweep");
    GWS_ASSERT(config.baselineIndex < config.scales.size(),
               "baseline index out of range");
    ScopedRegion region("core.runFreqScaling");

    FreqScalingResult result;
    result.scales = config.scales;

    // --- compute once, retime many -----------------------------------------
    // The parent trace goes out of core when flattening it would
    // exceed the memory budget; the subset is small by construction
    // and always stays in memory (prediction needs its per-draw
    // costs). Both paths are bit-identical.
    const GpuSimulator base_sim(base);
    const std::vector<GpuConfig> points =
        clockSweepConfigs(base, config.scales);
    SweepConfig parent_pass;
    parent_pass.path = config.path;
    SweepConfig subset_pass = parent_pass;
    subset_pass.perDraw = true; // representative costs feed prediction

    SweepResult parent_sweep;
    if (sweepUsesStreamedPath(config.path, traceDrawCount(trace))) {
        StreamingWorkTrace stream(trace, base_sim);
        parent_sweep = retimeAllStreamed(stream, points, parent_pass);
    } else {
        const WorkTrace parent_work = buildWorkTrace(trace, base_sim);
        parent_sweep = retimeAll(parent_work, points, parent_pass);
    }

    const WorkTrace subset_work =
        buildSubsetWorkTrace(trace, subset, base_sim);
    const SweepResult subset_sweep =
        retimeAll(subset_work, points, subset_pass);

    for (std::size_t c = 0; c < points.size(); ++c) {
        result.parentNs.push_back(parent_sweep.totalNs[c]);

        // Expand each unit's representative costs through the
        // prediction mode, weight by the frames the unit stands for.
        const double overhead = points[c].frameOverheadUs * 1e3;
        double subset_total = 0.0;
        for (std::size_t u = 0; u < subset.units.size(); ++u) {
            const SubsetUnit &unit = subset.units[u];
            std::vector<double> rep_costs;
            rep_costs.reserve(subset_work.groupEnd(u) -
                              subset_work.groupBegin(u));
            for (std::size_t i = subset_work.groupBegin(u);
                 i < subset_work.groupEnd(u); ++i)
                rep_costs.push_back(subset_sweep.drawNsAt(c, i));
            const auto predicted = predictItemCosts(
                unit.frameSubset.clustering, rep_costs, subset.prediction,
                unit.frameSubset.workUnits);
            double frame_ns = overhead;
            for (double ns : predicted)
                frame_ns += ns;
            subset_total += unit.frameWeight * frame_ns;
        }
        result.subsetNs.push_back(subset_total);
    }

    // --- improvement curves & correlation ----------------------------------
    const double parent_base = result.parentNs[config.baselineIndex];
    const double subset_base = result.subsetNs[config.baselineIndex];
    GWS_ASSERT(parent_base > 0.0 && subset_base > 0.0,
               "degenerate baseline cost");
    for (std::size_t i = 0; i < config.scales.size(); ++i) {
        result.parentImprovement.push_back(parent_base /
                                           result.parentNs[i]);
        result.subsetImprovement.push_back(subset_base /
                                           result.subsetNs[i]);
        result.maxImprovementGap = std::max(
            result.maxImprovementGap,
            std::fabs(result.parentImprovement.back() -
                      result.subsetImprovement.back()));
    }
    result.correlation =
        pearson(result.parentImprovement, result.subsetImprovement);
    return result;
}

} // namespace gws
