#include "core/freq_scaling.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace gws {

FreqScalingResult
runFreqScaling(const Trace &trace, const WorkloadSubset &subset,
               const GpuConfig &base, const FreqScalingConfig &config)
{
    GWS_ASSERT(!config.scales.empty(), "empty clock sweep");
    GWS_ASSERT(config.baselineIndex < config.scales.size(),
               "baseline index out of range");

    FreqScalingResult result;
    result.scales = config.scales;

    // --- one traffic pass over the parent --------------------------------
    const GpuSimulator base_sim(base);
    std::vector<std::vector<DrawWork>> parent_works;
    parent_works.reserve(trace.frameCount());
    for (const auto &frame : trace.frames()) {
        std::vector<DrawWork> works;
        works.reserve(frame.drawCount());
        for (const auto &draw : frame.draws())
            works.push_back(base_sim.computeDrawWork(trace, draw));
        parent_works.push_back(std::move(works));
    }

    // --- one traffic pass over the subset representatives ----------------
    struct UnitWork
    {
        std::vector<DrawWork> repWorks; // one per cluster
        const SubsetUnit *unit;
    };
    std::vector<UnitWork> unit_works;
    for (const auto &unit : subset.units) {
        UnitWork uw;
        uw.unit = &unit;
        const Frame &frame = trace.frame(unit.frameIndex);
        for (std::size_t rep : unit.frameSubset.clustering.representatives)
            uw.repWorks.push_back(
                base_sim.computeDrawWork(trace, frame.draws()[rep]));
        unit_works.push_back(std::move(uw));
    }

    // --- re-time per clock point ------------------------------------------
    for (double scale : config.scales) {
        const GpuSimulator sim(base.withCoreClockScale(scale));
        const double overhead = sim.config().frameOverheadUs * 1e3;

        double parent_total = 0.0;
        for (const auto &works : parent_works) {
            for (const auto &w : works)
                parent_total += sim.timeDrawWork(w).totalNs;
            parent_total += overhead;
        }
        result.parentNs.push_back(parent_total);

        double subset_total = 0.0;
        for (const auto &uw : unit_works) {
            std::vector<double> rep_costs;
            rep_costs.reserve(uw.repWorks.size());
            for (const auto &w : uw.repWorks)
                rep_costs.push_back(sim.timeDrawWork(w).totalNs);
            const auto predicted = predictItemCosts(
                uw.unit->frameSubset.clustering, rep_costs,
                subset.prediction, uw.unit->frameSubset.workUnits);
            double frame_ns = overhead;
            for (double ns : predicted)
                frame_ns += ns;
            subset_total += uw.unit->frameWeight * frame_ns;
        }
        result.subsetNs.push_back(subset_total);
    }

    // --- improvement curves & correlation ----------------------------------
    const double parent_base = result.parentNs[config.baselineIndex];
    const double subset_base = result.subsetNs[config.baselineIndex];
    GWS_ASSERT(parent_base > 0.0 && subset_base > 0.0,
               "degenerate baseline cost");
    for (std::size_t i = 0; i < config.scales.size(); ++i) {
        result.parentImprovement.push_back(parent_base /
                                           result.parentNs[i]);
        result.subsetImprovement.push_back(subset_base /
                                           result.subsetNs[i]);
        result.maxImprovementGap = std::max(
            result.maxImprovementGap,
            std::fabs(result.parentImprovement.back() -
                      result.subsetImprovement.back()));
    }
    result.correlation =
        pearson(result.parentImprovement, result.subsetImprovement);
    return result;
}

} // namespace gws
