/**
 * @file
 * DVFS energy study — the perf/W side of pathfinding. Sweeps the core
 * clock like the frequency-scaling study, but scores each point with
 * the power model: total energy, average power, and the energy-delay
 * product (EDP). The question the subset must answer correctly is not
 * just "how much faster" but "which frequency is EDP-optimal" — a
 * non-trivial target because raising the clock shortens leakage/board
 * time while raising dynamic power superlinearly through the V-f
 * curve.
 */

#ifndef GWS_CORE_ENERGY_STUDY_HH
#define GWS_CORE_ENERGY_STUDY_HH

#include "core/subset_pipeline.hh"
#include "core/sweep.hh"
#include "gpusim/power.hh"

namespace gws {

/** DVFS sweep configuration. */
struct DvfsConfig
{
    /** Core-clock multipliers applied to the base design. */
    std::vector<double> scales{0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0};

    /** Power model parameters. */
    PowerConfig power;

    /** Retiming implementation (Auto honors GWS_NAIVE_SWEEP). */
    SweepPath path = SweepPath::Auto;
};

/** One sweep point's scores, parent vs subset-predicted. */
struct DvfsPoint
{
    /** Core-clock multiplier. */
    double scale = 1.0;

    /** Energy from the fully-simulated parent. */
    EnergyReport parent;

    /** Energy from the subset prediction. */
    EnergyReport subset;
};

/** Result of one DVFS study. */
struct DvfsResult
{
    /** Sweep points in scale order. */
    std::vector<DvfsPoint> points;

    /** Index of the parent's EDP-optimal point. */
    std::size_t parentOptimal = 0;

    /** Index of the subset's EDP-optimal point. */
    std::size_t subsetOptimal = 0;

    /** Pearson correlation of the total-energy curves. */
    double energyCorrelation = 0.0;

    /** Pearson correlation of the EDP curves. */
    double edpCorrelation = 0.0;

    /** True when both pick the same EDP-optimal frequency. */
    bool optimumAgrees() const { return parentOptimal == subsetOptimal; }

    /**
     * True when the subset's EDP optimum is within one sweep step of
     * the parent's — the meaningful criterion when the EDP curve is
     * flat around its minimum and adjacent points are near-ties.
     */
    bool optimumWithinOneStep() const;
};

/**
 * Run the study: one traffic pass over parent and subset, then
 * re-time and re-price energy at every clock point.
 */
DvfsResult runDvfsStudy(const Trace &trace, const WorkloadSubset &subset,
                        const GpuConfig &base, const DvfsConfig &config);

} // namespace gws

#endif // GWS_CORE_ENERGY_STUDY_HH
