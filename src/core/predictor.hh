/**
 * @file
 * Frame-level performance prediction from draw-call subsets, and the
 * evaluation harness that compares predictions against the full
 * simulation (the paper's per-frame prediction error and clustering
 * efficiency metrics).
 */

#ifndef GWS_CORE_PREDICTOR_HH
#define GWS_CORE_PREDICTOR_HH

#include "core/draw_subset.hh"
#include "gpusim/gpu_simulator.hh"

namespace gws {

/**
 * Predicted cost of one frame from its subset: simulate only the
 * representatives, expand via the prediction mode, add the frame
 * overhead. This is the production path — no full simulation.
 */
double predictFrameNs(const Trace &trace, const Frame &frame,
                      const FrameSubset &subset,
                      const GpuSimulator &simulator,
                      PredictionMode mode);

/** Evaluation of one frame's prediction against ground truth. */
struct FramePredictionReport
{
    /** Frame index. */
    std::uint32_t frameIndex = 0;

    /** Fully-simulated frame time. */
    double actualNs = 0.0;

    /** Subset-predicted frame time. */
    double predictedNs = 0.0;

    /** Draws in the frame. */
    std::size_t drawsTotal = 0;

    /** Representatives simulated. */
    std::size_t drawsSimulated = 0;

    /** Clustering efficiency (1 - simulated/total). */
    double efficiency = 0.0;

    /** Cluster-quality metrics (intra errors, outliers). */
    ClusterQuality quality;

    /** |predicted - actual| / actual. */
    double relError() const;
};

/**
 * Fully evaluate one frame: build the subset, simulate everything,
 * and report prediction error, efficiency, and cluster quality.
 */
FramePredictionReport
evaluateFramePrediction(const Trace &trace, const Frame &frame,
                        const GpuSimulator &simulator,
                        const DrawSubsetConfig &config);

/** Aggregate of per-frame reports (one corpus row of the paper). */
struct CorpusPredictionReport
{
    /** Frames evaluated. */
    std::size_t frames = 0;

    /** Total draws across frames. */
    std::uint64_t draws = 0;

    /** Mean per-frame relative prediction error. */
    double meanError = 0.0;

    /** Worst per-frame relative prediction error. */
    double maxError = 0.0;

    /** Mean clustering efficiency. */
    double meanEfficiency = 0.0;

    /** Total clusters across frames. */
    std::uint64_t clusters = 0;

    /** Total outlier clusters across frames. */
    std::uint64_t outlierClusters = 0;

    /** Outlier clusters / clusters. */
    double outlierFraction() const;
};

/** Fold one frame report into the aggregate. */
void accumulate(CorpusPredictionReport &aggregate,
                const FramePredictionReport &report);

} // namespace gws

#endif // GWS_CORE_PREDICTOR_HH
