/**
 * @file
 * Baseline frame-subsetting strategies the clustering methodology is
 * compared against at equal simulation budget: random sampling,
 * uniform (every n/k-th draw) sampling, and stratified-by-pixel-shader
 * sampling with proportional allocation.
 */

#ifndef GWS_CORE_BASELINES_HH
#define GWS_CORE_BASELINES_HH

#include <cstdint>
#include <vector>

#include "gpusim/gpu_simulator.hh"
#include "trace/trace.hh"

namespace gws {

/** Baseline selector kinds. */
enum class BaselineKind : std::uint8_t
{
    /** Uniform random sample without replacement. */
    Random = 0,

    /** Every (n/k)-th draw in submission order. */
    Uniform = 1,

    /** Per-pixel-shader strata, proportional allocation. */
    StratifiedShader = 2,
};

/** Printable kind name. */
const char *toString(BaselineKind kind);

/** All baseline kinds in canonical order. */
std::vector<BaselineKind> allBaselineKinds();

/** A baseline frame sample: chosen draws and their expansion weights. */
struct BaselineSample
{
    /** Sampled draw indices within the frame. */
    std::vector<std::size_t> draws;

    /** Expansion weight of each sampled draw (sums to drawCount). */
    std::vector<double> weights;
};

/**
 * Select a baseline sample of the given budget from a frame. The
 * budget is clamped to [1, drawCount]. Deterministic for a given seed.
 */
BaselineSample selectBaselineSample(const Frame &frame,
                                    std::size_t budget, BaselineKind kind,
                                    std::uint64_t seed);

/**
 * Predicted frame cost from a baseline sample: weighted sum of the
 * sampled draws' simulated costs plus the frame overhead.
 */
double predictFrameFromSample(const Trace &trace, const Frame &frame,
                              const GpuSimulator &simulator,
                              const BaselineSample &sample);

} // namespace gws

#endif // GWS_CORE_BASELINES_HH
