#include "serve/protocol.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gws {
namespace serve {

const char *
toString(MsgKind kind)
{
    switch (kind) {
    case MsgKind::Ping: return "Ping";
    case MsgKind::OpenSession: return "OpenSession";
    case MsgKind::UploadFrames: return "UploadFrames";
    case MsgKind::Query: return "Query";
    case MsgKind::Stats: return "Stats";
    case MsgKind::CloseSession: return "CloseSession";
    case MsgKind::MetricsScrape: return "MetricsScrape";
    case MsgKind::Pong: return "Pong";
    case MsgKind::SessionOpened: return "SessionOpened";
    case MsgKind::FramesAccepted: return "FramesAccepted";
    case MsgKind::Representatives: return "Representatives";
    case MsgKind::StatsReply: return "StatsReply";
    case MsgKind::Closed: return "Closed";
    case MsgKind::MetricsReply: return "MetricsReply";
    case MsgKind::ErrorReply: return "ErrorReply";
    }
    return "unknown";
}

const char *
toString(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadRequest: return "BadRequest";
    case ErrorCode::ServerBusy: return "ServerBusy";
    case ErrorCode::UnknownSession: return "UnknownSession";
    case ErrorCode::SessionEvicted: return "SessionEvicted";
    case ErrorCode::ShuttingDown: return "ShuttingDown";
    case ErrorCode::Internal: return "Internal";
    }
    return "unknown";
}

namespace {

using Reader = ByteReader<ServeError>;

bool
knownKind(std::uint8_t v)
{
    return v <= static_cast<std::uint8_t>(MsgKind::MetricsScrape) ||
           (v >= static_cast<std::uint8_t>(MsgKind::Pong) &&
            v <= static_cast<std::uint8_t>(MsgKind::MetricsReply)) ||
           v == static_cast<std::uint8_t>(MsgKind::ErrorReply);
}

/** Start a reader over `payload` and consume the expected kind byte. */
Reader
openBody(const std::string &payload, MsgKind expect)
{
    Reader r(payload, "serve message");
    const std::uint8_t kind = r.u8();
    if (kind != static_cast<std::uint8_t>(expect))
        r.fail(std::string("serve message kind ") + std::to_string(kind) +
               " where " + toString(expect) + " was expected");
    return r;
}

/** Enforce canonical strictness: every byte consumed. */
template <typename T>
T
closeBody(Reader &r, T msg)
{
    if (!r.exhausted())
        r.fail("serve message has " + std::to_string(r.remaining()) +
               " trailing bytes");
    return msg;
}

ByteWriter
openWriter(MsgKind kind)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(kind));
    return w;
}

} // namespace

std::string
encode(const PingMsg &)
{
    return openWriter(MsgKind::Ping).data();
}

std::string
encode(const PongMsg &m)
{
    ByteWriter w = openWriter(MsgKind::Pong);
    w.str(m.protocol);
    w.u64(m.uptimeNs);
    w.u64(m.sessions);
    return w.data();
}

std::string
encode(const OpenSessionMsg &m)
{
    ByteWriter w = openWriter(MsgKind::OpenSession);
    w.str(m.name);
    return w.data();
}

std::string
encode(const SessionOpenedMsg &m)
{
    ByteWriter w = openWriter(MsgKind::SessionOpened);
    w.u64(m.sessionId);
    return w.data();
}

std::string
encode(const UploadFramesMsg &m)
{
    ByteWriter w = openWriter(MsgKind::UploadFrames);
    w.u64(m.sessionId);
    w.str(m.traceBlob);
    return w.data();
}

std::string
encode(const FramesAcceptedMsg &m)
{
    ByteWriter w = openWriter(MsgKind::FramesAccepted);
    w.u64(m.totalFrames);
    w.u64(m.totalDraws);
    w.u32(m.onlineClusters);
    w.u32(m.refinements);
    return w.data();
}

std::string
encode(const QueryMsg &m)
{
    ByteWriter w = openWriter(MsgKind::Query);
    w.u64(m.sessionId);
    return w.data();
}

std::string
encode(const RepresentativesMsg &m)
{
    ByteWriter w = openWriter(MsgKind::Representatives);
    w.str(m.subsetBlob);
    return w.data();
}

std::string
encode(const StatsMsg &m)
{
    ByteWriter w = openWriter(MsgKind::Stats);
    w.u64(m.sessionId);
    return w.data();
}

std::string
encode(const StatsReplyMsg &m)
{
    ByteWriter w = openWriter(MsgKind::StatsReply);
    w.u64(m.frames);
    w.u64(m.draws);
    w.u64(m.residentBytes);
    w.u32(m.onlineClusters);
    w.u32(m.refinements);
    w.f64(m.drift);
    w.f64(m.efficiency);
    return w.data();
}

std::string
encode(const CloseSessionMsg &m)
{
    ByteWriter w = openWriter(MsgKind::CloseSession);
    w.u64(m.sessionId);
    return w.data();
}

std::string
encode(const ClosedMsg &)
{
    return openWriter(MsgKind::Closed).data();
}

std::string
encode(const MetricsScrapeMsg &m)
{
    ByteWriter w = openWriter(MsgKind::MetricsScrape);
    w.u8(static_cast<std::uint8_t>(m.format));
    return w.data();
}

std::string
encode(const MetricsReplyMsg &m)
{
    ByteWriter w = openWriter(MsgKind::MetricsReply);
    w.str(m.text);
    return w.data();
}

std::string
encode(const ErrorReplyMsg &m)
{
    ByteWriter w = openWriter(MsgKind::ErrorReply);
    w.u8(static_cast<std::uint8_t>(m.code));
    w.str(m.message);
    return w.data();
}

MsgKind
peekKind(const std::string &payload)
{
    if (payload.empty())
        throw ServeError("serve message payload is empty", 0);
    const std::uint8_t v = static_cast<std::uint8_t>(payload[0]);
    if (!knownKind(v))
        throw ServeError("unknown serve message kind " +
                             std::to_string(v),
                         0);
    return static_cast<MsgKind>(v);
}

PingMsg
decodePing(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::Ping);
    return closeBody(r, PingMsg{});
}

PongMsg
decodePong(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::Pong);
    PongMsg m;
    m.protocol = r.str();
    m.uptimeNs = r.u64();
    m.sessions = r.u64();
    return closeBody(r, std::move(m));
}

OpenSessionMsg
decodeOpenSession(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::OpenSession);
    OpenSessionMsg m;
    m.name = r.str();
    if (m.name.empty())
        r.fail("OpenSession name must not be empty");
    return closeBody(r, std::move(m));
}

SessionOpenedMsg
decodeSessionOpened(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::SessionOpened);
    SessionOpenedMsg m;
    m.sessionId = r.u64();
    return closeBody(r, m);
}

UploadFramesMsg
decodeUploadFrames(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::UploadFrames);
    UploadFramesMsg m;
    m.sessionId = r.u64();
    m.traceBlob = r.str();
    if (m.traceBlob.empty())
        r.fail("UploadFrames trace blob must not be empty");
    return closeBody(r, std::move(m));
}

FramesAcceptedMsg
decodeFramesAccepted(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::FramesAccepted);
    FramesAcceptedMsg m;
    m.totalFrames = r.u64();
    m.totalDraws = r.u64();
    m.onlineClusters = r.u32();
    m.refinements = r.u32();
    return closeBody(r, m);
}

QueryMsg
decodeQuery(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::Query);
    QueryMsg m;
    m.sessionId = r.u64();
    return closeBody(r, m);
}

RepresentativesMsg
decodeRepresentatives(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::Representatives);
    RepresentativesMsg m;
    m.subsetBlob = r.str();
    return closeBody(r, std::move(m));
}

StatsMsg
decodeStats(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::Stats);
    StatsMsg m;
    m.sessionId = r.u64();
    return closeBody(r, m);
}

StatsReplyMsg
decodeStatsReply(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::StatsReply);
    StatsReplyMsg m;
    m.frames = r.u64();
    m.draws = r.u64();
    m.residentBytes = r.u64();
    m.onlineClusters = r.u32();
    m.refinements = r.u32();
    m.drift = r.f64();
    m.efficiency = r.f64();
    return closeBody(r, m);
}

CloseSessionMsg
decodeCloseSession(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::CloseSession);
    CloseSessionMsg m;
    m.sessionId = r.u64();
    return closeBody(r, m);
}

ClosedMsg
decodeClosed(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::Closed);
    return closeBody(r, ClosedMsg{});
}

MetricsScrapeMsg
decodeMetricsScrape(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::MetricsScrape);
    MetricsScrapeMsg m;
    const std::uint8_t fmt = r.u8();
    if (fmt > static_cast<std::uint8_t>(MetricsFormat::PrometheusText))
        r.fail("MetricsScrape format " + std::to_string(fmt) +
               " is out of range");
    m.format = static_cast<MetricsFormat>(fmt);
    return closeBody(r, m);
}

MetricsReplyMsg
decodeMetricsReply(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::MetricsReply);
    MetricsReplyMsg m;
    m.text = r.str();
    return closeBody(r, std::move(m));
}

ErrorReplyMsg
decodeErrorReply(const std::string &payload)
{
    Reader r = openBody(payload, MsgKind::ErrorReply);
    ErrorReplyMsg m;
    const std::uint8_t code = r.u8();
    if (code > static_cast<std::uint8_t>(ErrorCode::Internal))
        r.fail("ErrorReply code " + std::to_string(code) +
               " is out of range");
    m.code = static_cast<ErrorCode>(code);
    m.message = r.str();
    return closeBody(r, std::move(m));
}

// ------------------------------------------------ socket framing ----

namespace {

/** Write all of buf, retrying EINTR and short writes. */
void
writeAll(int fd, const char *buf, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ServeError(std::string("serve socket write failed: ") +
                             std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
}

/**
 * Read exactly len bytes. Returns the bytes read, which is < len only
 * on EOF (so the caller can tell a clean close from truncation).
 */
std::size_t
readUpTo(int fd, char *buf, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::recv(fd, buf + done, len - done, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ServeError(std::string("serve socket read failed: ") +
                             std::strerror(errno));
        }
        if (n == 0)
            break;
        done += static_cast<std::size_t>(n);
    }
    return done;
}

} // namespace

void
sendFrame(int fd, const std::string &payload)
{
    ByteWriter header;
    header.u32(serveMagic);
    header.u32(serveProtocolVersion);
    header.u32(static_cast<std::uint32_t>(payload.size()));
    header.u32(fnv1a32(payload));
    std::string frame = header.data();
    frame += payload;
    writeAll(fd, frame.data(), frame.size());
}

bool
recvFrame(int fd, std::string &payload)
{
    char raw_header[framedHeaderBytes];
    const std::size_t got = readUpTo(fd, raw_header, sizeof(raw_header));
    if (got == 0)
        return false; // clean EOF at a frame boundary
    if (got != sizeof(raw_header))
        throw ServeError("serve frame header truncated: got " +
                             std::to_string(got) + " of " +
                             std::to_string(sizeof(raw_header)) + " bytes",
                         static_cast<std::int64_t>(got));

    ByteReader<ServeError> header(
        std::string(raw_header, sizeof(raw_header)), "serve frame");
    if (header.u32() != serveMagic)
        throw ServeError("bad magic: not a gws serve frame", 0);
    const std::uint32_t ver = header.u32();
    if (ver != serveProtocolVersion)
        throw ServeError("unsupported serve protocol version " +
                             std::to_string(ver) + " (expected " +
                             std::to_string(serveProtocolVersion) + ")",
                         4);
    const std::uint32_t size = header.u32();
    if (size > framedPayloadCap())
        throw ServeError("implausible serve frame payload size " +
                             std::to_string(size),
                         8);
    const std::uint32_t expect_sum = header.u32();

    payload.assign(size, '\0');
    const std::size_t body = readUpTo(fd, payload.data(), size);
    if (body != size)
        throw ServeError("serve frame payload truncated: got " +
                             std::to_string(body) + " of " +
                             std::to_string(size) + " bytes",
                         static_cast<std::int64_t>(framedHeaderBytes +
                                                   body));
    if (fnv1a32(payload) != expect_sum)
        throw ServeError("serve frame checksum mismatch (corrupt frame)");
    return true;
}

} // namespace serve
} // namespace gws
