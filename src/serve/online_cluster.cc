#include "serve/online_cluster.hh"

#include <limits>

#include "cluster/feature_matrix.hh"
#include "cluster/kmeans.hh"
#include "obs/metrics.hh"

namespace gws {
namespace serve {

namespace {

obs::Counter &
refinementCounter()
{
    static obs::Counter &c =
        obs::metricsRegistry().counter("gws.serve.online.refinements");
    return c;
}

} // namespace

OnlineClusterer::OnlineClusterer(OnlineClusterConfig config)
    : cfg(config)
{
}

double
OnlineClusterer::efficiency() const
{
    if (points.empty())
        return 0.0;
    return 1.0 - static_cast<double>(centroids.size()) /
                     static_cast<double>(points.size());
}

std::size_t
OnlineClusterer::residentBytes() const
{
    // Points dominate; centroids and assignments ride along.
    return (points.size() + centroids.size()) * sizeof(FeatureVector) +
           assign.size() * sizeof(std::uint32_t);
}

void
OnlineClusterer::addFrame(const FeatureVector &feature)
{
    const double r2 = cfg.radius * cfg.radius;
    std::size_t best = centroids.size();
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d2 = feature.squaredDistance(centroids[c]);
        if (d2 < best_d2) {
            best_d2 = d2;
            best = c;
        }
    }

    points.push_back(feature);
    if (best == centroids.size() || best_d2 > r2) {
        // Found a new cluster led by this frame.
        assign.push_back(static_cast<std::uint32_t>(centroids.size()));
        centroids.push_back(feature);
        counts.push_back(1);
    } else {
        // Join: centroid moves to the incremental member mean.
        assign.push_back(static_cast<std::uint32_t>(best));
        counts[best] += 1;
        const double inv = 1.0 / static_cast<double>(counts[best]);
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            centroids[best].at(d) +=
                (feature.at(d) - centroids[best].at(d)) * inv;
    }

    ++framesSinceRefine;
    const bool count_trip = framesSinceRefine >= cfg.refineEveryFrames;
    bool drift_trip = false;
    if (!count_trip && cfg.driftCheckEvery > 0 &&
        framesSinceRefine % cfg.driftCheckEvery == 0) {
        drift = computeDrift();
        drift_trip = drift > cfg.driftThreshold;
    }
    if (count_trip || drift_trip)
        refine();
}

double
OnlineClusterer::computeDrift() const
{
    if (points.empty())
        return 0.0;
    const std::size_t n = points.size();
    const double r2 = cfg.radius * cfg.radius;

    // One SoA pass per centroid through the shared batch kernel; a
    // point only consults the column of its own cluster.
    FeatureMatrix matrix(points);
    std::vector<double> dist(n);
    std::size_t outside = 0;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
        matrix.squaredDistanceBatch(0, n, centroids[c], dist.data());
        for (std::size_t i = 0; i < n; ++i)
            if (assign[i] == c && dist[i] > r2)
                ++outside;
    }
    return static_cast<double>(outside) / static_cast<double>(n);
}

void
OnlineClusterer::refine()
{
    framesSinceRefine = 0;
    if (points.size() < 2 || centroids.size() < 2) {
        drift = 0.0;
        return;
    }

    KMeansConfig kc;
    kc.k = centroids.size();
    kc.maxIterations = cfg.refineMaxIterations;
    kc.restarts = 1;
    kc.seed = cfg.seed;
    const Clustering refined = kmeans(points, kc);

    assign = refined.assignment;
    centroids = refined.centroids;
    counts.assign(refined.k, 0);
    for (std::uint32_t a : assign)
        counts[a] += 1;
    ++refineCount;
    refinementCounter().increment();
    drift = computeDrift();
}

} // namespace serve
} // namespace gws
