/**
 * @file
 * The gws_served daemon binary: bind a Unix-domain or loopback TCP
 * socket, serve gws.serve.v1 until SIGINT/SIGTERM, drain, and flush
 * any armed observability exports.
 *
 * The listen endpoint is printed to stdout as "LISTENING <endpoint>"
 * once the socket is bound, so scripts driving an ephemeral TCP port
 * (--port=0) can discover it.
 */

#include <cstdio>
#include <exception>

#include "obs/obs.hh"
#include "runtime/runtime.hh"
#include "serve/server.hh"
#include "util/args.hh"
#include "util/env.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace gws;
    using namespace gws::serve;

    ArgParser args("gws_served",
                   "multi-tenant workload-subsetting daemon "
                   "(gws.serve.v1 over a stream socket)");
    args.addString("unix", "",
                   "unix-domain socket path (preferred transport)");
    args.addInt("port", 0,
                "loopback TCP port, 0 = ephemeral; used when --unix "
                "is empty");
    args.addInt("threads",
                static_cast<std::int64_t>(envSize("GWS_THREADS", 0)),
                "worker threads of the runtime pool, 0 = hardware "
                "concurrency (default from GWS_THREADS)");
    args.addInt("max-connections", 16,
                "concurrent connection cap (ServerBusy beyond)");
    args.addInt("max-inflight", 8,
                "concurrent upload/query cap (ServerBusy beyond)");
    args.addInt("max-resident-mb", 256,
                "LRU bound on resident session bytes, in MiB");
    args.addInt("idle-ttl-s", 300,
                "evict sessions idle longer than this, in seconds");
    args.addInt("max-sessions", 64, "hard cap on live sessions");
    args.addString("trace-out", "",
                   "record a Chrome/Perfetto trace to this file "
                   "(flushed on drain)");
    args.addString("metrics-out", "",
                   "export the metrics registry as JSON on drain");
    args.addString("metrics-text-out", "",
                   "export the metrics registry as Prometheus text "
                   "exposition on drain");
    if (!args.parse(argc, argv))
        return 0;

    RuntimeConfig rc = runtimeConfig();
    const std::int64_t threads = args.getInt("threads");
    rc.threads =
        threads <= 0 ? 0 : static_cast<std::size_t>(threads);
    setRuntimeConfig(rc);

    const std::string trace_out = args.getString("trace-out");
    if (!trace_out.empty()) {
        obs::setTraceOutputPath(trace_out);
        if (!obs::traceEnabled())
            obs::traceBegin();
    }
    const std::string metrics_out = args.getString("metrics-out");
    if (!metrics_out.empty())
        obs::setMetricsOutputPath(metrics_out);
    const std::string metrics_text_out =
        args.getString("metrics-text-out");
    if (!metrics_text_out.empty())
        obs::setMetricsTextOutputPath(metrics_text_out);

    ServerConfig cfg;
    cfg.unixPath = args.getString("unix");
    cfg.tcpPort = static_cast<std::uint16_t>(args.getInt("port"));
    cfg.maxConnections =
        static_cast<std::size_t>(args.getInt("max-connections"));
    cfg.maxInflightWork =
        static_cast<std::size_t>(args.getInt("max-inflight"));
    cfg.registry.maxResidentBytes =
        static_cast<std::size_t>(args.getInt("max-resident-mb"))
        << 20;
    cfg.registry.idleTtlNs =
        static_cast<std::uint64_t>(args.getInt("idle-ttl-s")) *
        1000ull * 1000ull * 1000ull;
    cfg.registry.maxSessions =
        static_cast<std::size_t>(args.getInt("max-sessions"));

    try {
        Server server(cfg);
        server.start();
        std::printf("LISTENING %s\n", server.endpoint().c_str());
        std::fflush(stdout);
        return server.runUntilSignal();
    } catch (const ServeError &e) {
        GWS_FATAL("gws_served: ", e.what());
    } catch (const std::exception &e) {
        GWS_FATAL("gws_served: unexpected: ", e.what());
    }
}
