/**
 * @file
 * Client side of gws.serve.v1: a blocking request/reply handle over a
 * connected stream socket, plus trace-chunking helpers for streaming
 * a workload to the daemon frame-range by frame-range.
 *
 * Error model: transport/framing failures throw ServeError; a typed
 * ErrorReply from the server throws ServeRemoteError, which carries
 * the server's ErrorCode so callers can branch on ServerBusy /
 * SessionEvicted without string matching.
 */

#ifndef GWS_SERVE_CLIENT_HH
#define GWS_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "serve/protocol.hh"
#include "trace/trace.hh"

namespace gws {
namespace serve {

/** A typed error reply from the server. */
class ServeRemoteError : public ServeError
{
  public:
    ServeRemoteError(ErrorCode code, const std::string &message)
        : ServeError(std::string(toString(code)) + ": " + message),
          errorCode(code)
    {
    }

    /** The server-assigned error code. */
    ErrorCode code() const { return errorCode; }

  private:
    ErrorCode errorCode;
};

/** A connected gws_served client (move-only; closes on destruction). */
class ServeClient
{
  public:
    /** Connect to a Unix-domain socket; throws ServeError. */
    static ServeClient connectUnix(const std::string &path);

    /** Connect to loopback TCP; throws ServeError. */
    static ServeClient connectTcp(std::uint16_t port);

    ~ServeClient();
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Liveness probe; returns the server's identity and uptime. */
    PongMsg ping();

    /** Open a session; returns the server-issued id. */
    std::uint64_t open(const std::string &name);

    /** Upload one chunk (a complete writeTrace image). */
    FramesAcceptedMsg uploadFrames(std::uint64_t sessionId,
                                   const std::string &traceBlob);

    /** Upload one chunk given as a trace (serialized internally). */
    FramesAcceptedMsg uploadFrames(std::uint64_t sessionId,
                                   const Trace &chunk);

    /**
     * Query the representative set; returns the serialized subset
     * image (readSubset-compatible, bit-identical to the batch
     * pipeline over the session's frames).
     */
    std::string query(std::uint64_t sessionId);

    /** Live session statistics. */
    StatsReplyMsg stats(std::uint64_t sessionId);

    /** Close the session. */
    void close(std::uint64_t sessionId);

    /** Scrape the server's metrics registry. */
    std::string scrapeMetrics(MetricsFormat format);

  private:
    explicit ServeClient(int fd) : fd(fd) {}

    /** Send a request, receive the reply; throws on ErrorReply. */
    std::string roundTrip(const std::string &payload);

    int fd = -1;
};

/**
 * Copy frames [beginFrame, endFrame) of `trace` into a standalone
 * chunk trace that shares the resource tables and renumbers the
 * frames from zero — the upload unit the serve protocol expects.
 */
Trace sliceTrace(const Trace &trace, std::size_t beginFrame,
                 std::size_t endFrame);

/** Serialize a trace to a writeTrace image in memory. */
std::string traceToBlob(const Trace &trace);

} // namespace serve
} // namespace gws

#endif // GWS_SERVE_CLIENT_HH
