/**
 * @file
 * The gws_served serving core: a long-lived multi-tenant daemon that
 * answers "which representative frames should I simulate" over a
 * stream socket (Unix-domain or loopback TCP).
 *
 * Request flow: an accept thread polls the listen socket; each
 * accepted connection gets a handler thread (bounded — beyond the
 * connection cap the server replies ServerBusy and closes, the
 * accept-queue backpressure) that reads framed gws.serve.v1 requests
 * and dispatches them. Heavy requests (uploads, queries) additionally
 * take one of a bounded set of work permits — the work-queue
 * backpressure — and the pipeline work inside them (feature
 * extraction, clustering, phase detection) fans out on the process
 * runtime thread pool exactly as the batch binaries do.
 *
 * Query contract: the Representatives reply is bit-identical to
 * running the batch subset pipeline (buildWorkloadSubset, default
 * config) over the session's full frame sequence, memoized per frame
 * count so repeat queries are cheap.
 *
 * Shutdown: stop() (or SIGINT/SIGTERM in runUntilSignal()) stops
 * accepting, lets in-flight requests finish, joins every handler,
 * and flushes the armed observability exports.
 */

#ifndef GWS_SERVE_SERVER_HH
#define GWS_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/subset_pipeline.hh"
#include "serve/protocol.hh"
#include "serve/session_registry.hh"

namespace gws {
namespace serve {

/** Daemon configuration. */
struct ServerConfig
{
    /** Unix-domain socket path; non-empty selects AF_UNIX. */
    std::string unixPath;

    /**
     * Loopback TCP port; used when unixPath is empty (0 = ephemeral,
     * see Server::boundPort()).
     */
    std::uint16_t tcpPort = 0;

    /** Concurrent connection cap (accept backpressure). */
    std::size_t maxConnections = 16;

    /** Concurrent heavy-request cap (work backpressure). */
    std::size_t maxInflightWork = 8;

    /** Session registry bounds (resident bytes, TTL, count). */
    RegistryConfig registry;

    /** Online clustering knobs applied to new sessions. */
    OnlineClusterConfig online;

    /** The batch pipeline configuration queries reproduce. */
    SubsetConfig subset;
};

/** The serving daemon; one instance per process. */
class Server
{
  public:
    explicit Server(ServerConfig config);

    /** Stops and joins everything still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and start the accept thread. Throws ServeError
     * when the socket cannot be set up.
     */
    void start();

    /**
     * Graceful drain: stop accepting, finish in-flight requests,
     * join every handler thread, flush observability exports.
     * Idempotent.
     */
    void stop();

    /**
     * start(), then block until SIGINT or SIGTERM, then stop().
     * Returns 0. Call from the main thread of a daemon binary.
     */
    int runUntilSignal();

    /** Resolved TCP port (after start(), TCP mode only). */
    std::uint16_t boundPort() const { return port; }

    /** Printable listen endpoint (after start()). */
    std::string endpoint() const;

    /** Live sessions (forwarded from the registry). */
    std::size_t sessionCount() const { return registry.sessionCount(); }

    /** Total resident session bytes (forwarded from the registry). */
    std::size_t residentBytes() const
    {
        return registry.residentBytes();
    }

  private:
    struct Connection
    {
        std::thread thread;
        std::atomic<bool> done{false};
    };

    /** Accept loop body (accept thread). */
    void acceptLoop();

    /** Per-connection request loop (handler thread). */
    void handleConnection(int fd);

    /** Decode + dispatch one request payload; returns the reply. */
    std::string dispatch(const std::string &payload);

    std::string handleOpen(const std::string &payload);
    std::string handleUpload(const std::string &payload);
    std::string handleQuery(const std::string &payload);
    std::string handleStats(const std::string &payload);
    std::string handleClose(const std::string &payload);
    std::string handleScrape(const std::string &payload);
    std::string handlePing();

    /** Map a lookup failure to its typed error reply. */
    static std::string lookupError(LookupStatus status);

    /** Join finished connection threads (accept thread only). */
    void reapConnections(bool all);

    ServerConfig cfg;
    SessionRegistry registry;

    int listenFd = -1;
    int wakePipe[2] = {-1, -1};
    std::uint16_t port = 0;
    std::uint64_t startedAtNs = 0;

    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    std::atomic<std::size_t> activeConnections{0};
    std::atomic<std::size_t> inflightWork{0};

    std::thread acceptThread;
    std::mutex connectionsMutex;
    std::list<std::unique_ptr<Connection>> connections;
};

} // namespace serve
} // namespace gws

#endif // GWS_SERVE_SERVER_HH
