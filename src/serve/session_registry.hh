/**
 * @file
 * The multi-tenant session registry: every client workload the
 * daemon is tracking, with idle-TTL eviction and an LRU bound on
 * total resident bytes (accumulated frame features + assembled trace
 * chunks + the cached representative set).
 *
 * Locking: the registry mutex guards the id map, LRU bookkeeping,
 * and the resident-bytes total; each session carries its own mutex
 * for its trace/clusterer/cache so two sessions' uploads proceed in
 * parallel. Lock order is registry -> session, and the registry lock
 * is never held across session work. Eviction removes the session
 * from the map while in-flight holders keep their shared_ptr — they
 * observe the `evicted` flag and fail with the typed SessionEvicted
 * reply instead of touching freed state.
 */

#ifndef GWS_SERVE_SESSION_REGISTRY_HH
#define GWS_SERVE_SESSION_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "serve/online_cluster.hh"
#include "trace/trace.hh"

namespace gws {
namespace serve {

/** One client workload the daemon is tracking. */
struct Session
{
    /** Guards everything below. */
    std::mutex mutex;

    /** Workload name (from OpenSession; names the session trace). */
    std::string name;

    /** The frame sequence assembled from uploaded chunks. */
    Trace trace{std::string("unnamed")};

    /** True once the first chunk's resource tables were adopted. */
    bool hasTables = false;

    /** Incremental frame clustering (see online_cluster.hh). */
    OnlineClusterer online;

    /** Memoized batch-pipeline output (writeSubset image), valid
     *  while cachedAtFrames == trace.frameCount(). */
    std::string cachedSubsetBlob;
    std::uint64_t cachedAtFrames = ~0ull;

    /** Total bytes of accepted upload blobs (resident accounting). */
    std::size_t uploadedBytes = 0;

    /** Set under the registry lock when the session is evicted;
     *  in-flight holders check it after locking the session. */
    std::atomic<bool> evicted{false};

    /** Bytes this session currently pins. Unlike the fields above,
     *  this is registry accounting: read and written only under the
     *  REGISTRY mutex (handlers report new sizes through
     *  SessionRegistry::updateResident after releasing the session
     *  mutex, preserving the registry -> session lock order). */
    std::size_t residentBytes = 0;
};

/** Why a session lookup failed. */
enum class LookupStatus : std::uint8_t
{
    Found = 0,
    Unknown = 1,
    Evicted = 2,
};

/** Registry configuration. */
struct RegistryConfig
{
    /** LRU bound on total resident bytes across sessions. */
    std::size_t maxResidentBytes = 256u << 20;

    /** Idle TTL in ns; sessions untouched longer are evicted. */
    std::uint64_t idleTtlNs = 300ull * 1000 * 1000 * 1000;

    /** Hard cap on live sessions (opens beyond it are rejected). */
    std::size_t maxSessions = 64;
};

/** The id -> session table with TTL/LRU eviction. */
class SessionRegistry
{
  public:
    explicit SessionRegistry(RegistryConfig config = {});

    /**
     * Create a session. Returns 0 (an id never issued) when the
     * session cap is reached; else the new session's id.
     */
    std::uint64_t open(const std::string &name, std::uint64_t nowNs);

    /**
     * Look up a session and touch its LRU slot. On Found, `out`
     * holds the session.
     */
    LookupStatus acquire(std::uint64_t id, std::uint64_t nowNs,
                         std::shared_ptr<Session> &out);

    /**
     * Record a session's new resident size and evict
     * least-recently-used *other* sessions until the total fits the
     * bound again. Call after any mutation that grew the session.
     */
    void updateResident(std::uint64_t id, std::size_t bytes);

    /** Close (forget) a session. Returns the lookup outcome. */
    LookupStatus close(std::uint64_t id);

    /** Evict sessions idle past the TTL. Returns evictions made. */
    std::size_t sweepIdle(std::uint64_t nowNs);

    /** Live session count. */
    std::size_t sessionCount() const;

    /** Total resident bytes across live sessions. */
    std::size_t residentBytes() const;

  private:
    struct Entry
    {
        std::shared_ptr<Session> session;
        std::uint64_t lastUsedNs = 0;
    };

    /** Evict `id` (map lock held). */
    void evictLocked(std::uint64_t id);

    RegistryConfig cfg;
    mutable std::mutex mutex;
    std::map<std::uint64_t, Entry> sessions;
    std::set<std::uint64_t> evictedIds;
    std::uint64_t nextId = 1;
    std::size_t residentTotal = 0;
};

} // namespace serve
} // namespace gws

#endif // GWS_SERVE_SESSION_REGISTRY_HH
