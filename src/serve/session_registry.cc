#include "serve/session_registry.hh"

#include "obs/metrics.hh"

namespace gws {
namespace serve {

namespace {

obs::Counter &
evictionCounter()
{
    static obs::Counter &c =
        obs::metricsRegistry().counter("gws.serve.evictions");
    return c;
}

obs::Gauge &
sessionsGauge()
{
    static obs::Gauge &g =
        obs::metricsRegistry().gauge("gws.serve.sessions");
    return g;
}

obs::Gauge &
residentGauge()
{
    static obs::Gauge &g =
        obs::metricsRegistry().gauge("gws.serve.resident_bytes");
    return g;
}

} // namespace

SessionRegistry::SessionRegistry(RegistryConfig config) : cfg(config) {}

std::uint64_t
SessionRegistry::open(const std::string &name, std::uint64_t nowNs)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (sessions.size() >= cfg.maxSessions)
        return 0;
    const std::uint64_t id = nextId++;
    Entry entry;
    entry.session = std::make_shared<Session>();
    entry.session->name = name;
    entry.session->trace.setName(name);
    entry.lastUsedNs = nowNs;
    sessions.emplace(id, std::move(entry));
    sessionsGauge().set(static_cast<double>(sessions.size()));
    return id;
}

LookupStatus
SessionRegistry::acquire(std::uint64_t id, std::uint64_t nowNs,
                         std::shared_ptr<Session> &out)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = sessions.find(id);
    if (it == sessions.end())
        return evictedIds.count(id) != 0 ? LookupStatus::Evicted
                                         : LookupStatus::Unknown;
    it->second.lastUsedNs = nowNs;
    out = it->second.session;
    return LookupStatus::Found;
}

void
SessionRegistry::evictLocked(std::uint64_t id)
{
    auto it = sessions.find(id);
    if (it == sessions.end())
        return;
    it->second.session->evicted.store(true, std::memory_order_release);
    residentTotal -= it->second.session->residentBytes;
    sessions.erase(it);
    evictedIds.insert(id);
    evictionCounter().increment();
    sessionsGauge().set(static_cast<double>(sessions.size()));
    residentGauge().set(static_cast<double>(residentTotal));
}

void
SessionRegistry::updateResident(std::uint64_t id, std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = sessions.find(id);
    if (it == sessions.end())
        return;
    residentTotal -= it->second.session->residentBytes;
    it->second.session->residentBytes = bytes;
    residentTotal += bytes;

    // Evict the least-recently-used other sessions until the total
    // fits. The session being grown is exempt: evicting the tenant
    // mid-request would turn its own upload into a SessionEvicted.
    while (residentTotal > cfg.maxResidentBytes) {
        std::uint64_t victim = 0;
        std::uint64_t oldest = ~0ull;
        for (const auto &[sid, entry] : sessions) {
            if (sid == id)
                continue;
            if (entry.lastUsedNs < oldest) {
                oldest = entry.lastUsedNs;
                victim = sid;
            }
        }
        if (victim == 0)
            break; // only the exempt session remains
        evictLocked(victim);
    }
    residentGauge().set(static_cast<double>(residentTotal));
}

LookupStatus
SessionRegistry::close(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = sessions.find(id);
    if (it == sessions.end())
        return evictedIds.count(id) != 0 ? LookupStatus::Evicted
                                         : LookupStatus::Unknown;
    it->second.session->evicted.store(true, std::memory_order_release);
    residentTotal -= it->second.session->residentBytes;
    sessions.erase(it);
    sessionsGauge().set(static_cast<double>(sessions.size()));
    residentGauge().set(static_cast<double>(residentTotal));
    return LookupStatus::Found;
}

std::size_t
SessionRegistry::sweepIdle(std::uint64_t nowNs)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t evictions = 0;
    for (auto it = sessions.begin(); it != sessions.end();) {
        const std::uint64_t idle = nowNs - it->second.lastUsedNs;
        const std::uint64_t id = it->first;
        ++it; // advance before evictLocked erases
        if (idle > cfg.idleTtlNs) {
            evictLocked(id);
            ++evictions;
        }
    }
    return evictions;
}

std::size_t
SessionRegistry::sessionCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return sessions.size();
}

std::size_t
SessionRegistry::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return residentTotal;
}

} // namespace serve
} // namespace gws
