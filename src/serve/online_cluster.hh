/**
 * @file
 * Per-session online clustering over frame-level features.
 *
 * The batch pipeline clusters a finished corpus in one shot; a
 * serving session's frames arrive one at a time and the session's
 * cluster structure must stay current without re-running the corpus
 * clustering per upload ("Characterizing and Subsetting Big Data
 * Workloads" shows subset quality decays when the corpus grows past
 * its clustering). The online clusterer keeps a two-speed structure:
 *
 *  - arrival path: each frame (summarized as the mean of its draws'
 *    micro-arch-independent feature vectors) joins the nearest
 *    existing leader within a radius or founds a new cluster, with
 *    the leader centroid updated as an incremental mean — O(k) per
 *    frame;
 *  - refinement path: once the session has grown by a frame-count
 *    threshold, or the drift check (batch distances through the SoA
 *    FeatureMatrix kernel) finds too many frames outside their
 *    cluster radius, the accumulated points are re-clustered with
 *    k-means at the current k — the Hamerly-bounded fast path, one
 *    restart, fixed seed.
 *
 * This structure powers the Stats reply and the staleness signal for
 * the cached representative set; the representative *query* itself
 * always reflects the batch pipeline bit-identically (the server
 * memoizes it per frame count).
 */

#ifndef GWS_SERVE_ONLINE_CLUSTER_HH
#define GWS_SERVE_ONLINE_CLUSTER_HH

#include <cstdint>
#include <vector>

#include "features/feature_vector.hh"

namespace gws {
namespace serve {

/** Knobs of the online frame clustering. */
struct OnlineClusterConfig
{
    /**
     * Join radius in (unnormalized) frame-feature distance. Frame
     * features are means of per-draw log-scale features, so
     * like-phase frames sit well inside 1.0 of each other.
     */
    double radius = 1.0;

    /** Frame-count refinement threshold: refine after this many new
     *  frames since the last refinement. */
    std::size_t refineEveryFrames = 48;

    /** Drift threshold: refine when more than this fraction of
     *  frames sit outside their cluster's radius. */
    double driftThreshold = 0.25;

    /** How often (in frames) the drift check runs. */
    std::size_t driftCheckEvery = 16;

    /** Max Lloyd iterations per refinement. */
    std::size_t refineMaxIterations = 25;

    /** Seed of the refinement k-means. */
    std::uint64_t seed = 0x9e55u;
};

/** Incremental leader clustering with periodic k-means refinement. */
class OnlineClusterer
{
  public:
    explicit OnlineClusterer(OnlineClusterConfig config = {});

    /**
     * Assign one arriving frame feature: join the nearest leader
     * within the radius (updating its centroid as an incremental
     * mean) or found a new cluster; then run the drift check /
     * refinement if a threshold tripped.
     */
    void addFrame(const FeatureVector &feature);

    /** Frames assigned so far. */
    std::size_t frames() const { return points.size(); }

    /** Current cluster count. */
    std::size_t clusters() const { return centroids.size(); }

    /** k-means refinements run so far. */
    std::uint32_t refinements() const { return refineCount; }

    /** Last measured drift (fraction of frames outside the radius). */
    double lastDrift() const { return drift; }

    /** Online clustering efficiency, 1 - k/n (0 when empty). */
    double efficiency() const;

    /** Frame index -> cluster index. */
    const std::vector<std::uint32_t> &assignment() const
    {
        return assign;
    }

    /** Approximate bytes pinned by the accumulated features. */
    std::size_t residentBytes() const;

  private:
    /** Fraction of points outside their centroid's radius. */
    double computeDrift() const;

    /** Re-cluster all points at the current k (Hamerly fast path). */
    void refine();

    OnlineClusterConfig cfg;
    std::vector<FeatureVector> points;
    std::vector<FeatureVector> centroids;
    std::vector<std::size_t> counts;
    std::vector<std::uint32_t> assign;
    std::size_t framesSinceRefine = 0;
    std::uint32_t refineCount = 0;
    double drift = 0.0;
};

} // namespace serve
} // namespace gws

#endif // GWS_SERVE_ONLINE_CLUSTER_HH
