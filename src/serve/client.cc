#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <utility>

#include "trace/trace_io.hh"

namespace gws {
namespace serve {

ServeClient
ServeClient::connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw ServeError("client: socket(AF_UNIX) failed: " +
                         std::string(std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw ServeError("client: unix socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        throw ServeError("client: connect(" + path +
                         ") failed: " + what);
    }
    return ServeClient(fd);
}

ServeClient
ServeClient::connectTcp(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw ServeError("client: socket(AF_INET) failed: " +
                         std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        throw ServeError("client: connect(127.0.0.1:" +
                         std::to_string(port) + ") failed: " + what);
    }
    return ServeClient(fd);
}

ServeClient::~ServeClient()
{
    if (fd >= 0)
        ::close(fd);
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd(std::exchange(other.fd, -1))
{
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        if (fd >= 0)
            ::close(fd);
        fd = std::exchange(other.fd, -1);
    }
    return *this;
}

std::string
ServeClient::roundTrip(const std::string &payload)
{
    sendFrame(fd, payload);
    std::string reply;
    if (!recvFrame(fd, reply))
        throw ServeError(
            "client: server closed the connection mid-request");
    if (peekKind(reply) == MsgKind::ErrorReply) {
        const ErrorReplyMsg err = decodeErrorReply(reply);
        throw ServeRemoteError(err.code, err.message);
    }
    return reply;
}

PongMsg
ServeClient::ping()
{
    return decodePong(roundTrip(encode(PingMsg{})));
}

std::uint64_t
ServeClient::open(const std::string &name)
{
    OpenSessionMsg msg;
    msg.name = name;
    return decodeSessionOpened(roundTrip(encode(msg))).sessionId;
}

FramesAcceptedMsg
ServeClient::uploadFrames(std::uint64_t sessionId,
                          const std::string &traceBlob)
{
    UploadFramesMsg msg;
    msg.sessionId = sessionId;
    msg.traceBlob = traceBlob;
    return decodeFramesAccepted(roundTrip(encode(msg)));
}

FramesAcceptedMsg
ServeClient::uploadFrames(std::uint64_t sessionId, const Trace &chunk)
{
    return uploadFrames(sessionId, traceToBlob(chunk));
}

std::string
ServeClient::query(std::uint64_t sessionId)
{
    QueryMsg msg;
    msg.sessionId = sessionId;
    return decodeRepresentatives(roundTrip(encode(msg))).subsetBlob;
}

StatsReplyMsg
ServeClient::stats(std::uint64_t sessionId)
{
    StatsMsg msg;
    msg.sessionId = sessionId;
    return decodeStatsReply(roundTrip(encode(msg)));
}

void
ServeClient::close(std::uint64_t sessionId)
{
    CloseSessionMsg msg;
    msg.sessionId = sessionId;
    decodeClosed(roundTrip(encode(msg)));
}

std::string
ServeClient::scrapeMetrics(MetricsFormat format)
{
    MetricsScrapeMsg msg;
    msg.format = format;
    return decodeMetricsReply(roundTrip(encode(msg))).text;
}

Trace
sliceTrace(const Trace &trace, std::size_t beginFrame,
           std::size_t endFrame)
{
    Trace chunk(trace.name());
    chunk.shaders() = trace.shaders();
    for (const TextureDesc &t : trace.textures())
        chunk.addTexture(t);
    for (const RenderTargetDesc &r : trace.renderTargets())
        chunk.addRenderTarget(r);
    for (std::size_t i = beginFrame;
         i < endFrame && i < trace.frameCount(); ++i) {
        Frame copy(chunk.frameCount());
        copy.draws() = trace.frames()[i].draws();
        chunk.addFrame(std::move(copy));
    }
    return chunk;
}

std::string
traceToBlob(const Trace &trace)
{
    std::ostringstream out;
    writeTrace(trace, out);
    return out.str();
}

} // namespace serve
} // namespace gws
