/**
 * @file
 * The gws.serve.v1 wire protocol: framed request/reply messages
 * exchanged between gws_served and its clients over a stream socket
 * (Unix-domain or TCP).
 *
 * Every message uses the shared 16-byte framing from util/codec.hh —
 * { magic "GWSV", protocol version, payload size, FNV-1a-32 payload
 * checksum } — so serve traffic fails exactly the way the file
 * formats do: a typed ServeError with byte-offset context, never UB
 * or an unbounded allocation. Payloads decode through the same
 * bounds-checked ByteReader the fuzz harness hammers, with canonical
 * strictness (range-checked enums, exhaustion checks); trace chunks
 * and subset replies embed the existing fuzz-hardened trace/subset
 * codecs wholesale.
 *
 * Payload layout: one message-kind byte followed by kind-specific
 * fields. Requests occupy 0..127, replies 128..255.
 */

#ifndef GWS_SERVE_PROTOCOL_HH
#define GWS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "util/codec.hh"
#include "util/error.hh"

namespace gws {
namespace serve {

/**
 * Error thrown when a serve-protocol frame or payload cannot be
 * decoded, or when socket I/O fails mid-message. Rooted at IoError
 * like the file-format errors.
 */
class ServeError : public IoError
{
  public:
    using IoError::IoError;
};

/** Frame magic: "GWSV" little-endian. */
constexpr std::uint32_t serveMagic = 0x56535747u;

/** Wire protocol version. */
constexpr std::uint32_t serveProtocolVersion = 1;

/** Message kinds (first payload byte). */
enum class MsgKind : std::uint8_t
{
    // Requests.
    Ping = 0,
    OpenSession = 1,
    UploadFrames = 2,
    Query = 3,
    Stats = 4,
    CloseSession = 5,
    MetricsScrape = 6,

    // Replies.
    Pong = 128,
    SessionOpened = 129,
    FramesAccepted = 130,
    Representatives = 131,
    StatsReply = 132,
    Closed = 133,
    MetricsReply = 134,
    ErrorReply = 255,
};

/** Printable kind name. */
const char *toString(MsgKind kind);

/** Typed error codes carried by ErrorReply. */
enum class ErrorCode : std::uint8_t
{
    /** Malformed or semantically invalid request. */
    BadRequest = 0,

    /** The server's work bound is exceeded; retry later. */
    ServerBusy = 1,

    /** The session id was never issued (or already closed). */
    UnknownSession = 2,

    /** The session was evicted (idle TTL or memory pressure). */
    SessionEvicted = 3,

    /** The server is draining for shutdown. */
    ShuttingDown = 4,

    /** Unexpected server-side failure. */
    Internal = 5,
};

/** Printable error-code name. */
const char *toString(ErrorCode code);

/** Requested format of a MetricsScrape. */
enum class MetricsFormat : std::uint8_t
{
    /** gws.metrics.v1 JSON. */
    Json = 0,

    /** Prometheus text exposition (obs/metrics_text.hh). */
    PrometheusText = 1,
};

// ------------------------------------------------ message structs ----

/** Ping request (empty body). */
struct PingMsg
{
};

/** Pong reply. */
struct PongMsg
{
    /** Protocol identifier, "gws.serve.v1". */
    std::string protocol;

    /** Nanoseconds since the server started. */
    std::uint64_t uptimeNs = 0;

    /** Live session count. */
    std::uint64_t sessions = 0;
};

/** OpenSession request. */
struct OpenSessionMsg
{
    /** Workload name; becomes the session trace's name. */
    std::string name;
};

/** SessionOpened reply. */
struct SessionOpenedMsg
{
    /** Server-issued session id. */
    std::uint64_t sessionId = 0;
};

/** UploadFrames request: a chunk of the session's frame sequence. */
struct UploadFramesMsg
{
    std::uint64_t sessionId = 0;

    /**
     * A complete serialized trace image (writeTrace) whose frames are
     * the next frames of the session, in order, and whose resource
     * tables must match every earlier chunk's. Decoded server-side by
     * the fuzz-hardened trace codec.
     */
    std::string traceBlob;
};

/** FramesAccepted reply. */
struct FramesAcceptedMsg
{
    /** Session frame total after this upload. */
    std::uint64_t totalFrames = 0;

    /** Session draw total after this upload. */
    std::uint64_t totalDraws = 0;

    /** Online frame-cluster count after incremental assignment. */
    std::uint32_t onlineClusters = 0;

    /** k-means refinements run so far in this session. */
    std::uint32_t refinements = 0;
};

/** Query request: the representative set for a session. */
struct QueryMsg
{
    std::uint64_t sessionId = 0;
};

/** Representatives reply. */
struct RepresentativesMsg
{
    /**
     * A complete serialized subset image (writeSubset) of the batch
     * pipeline's output over the session's frame sequence —
     * bit-identical to running buildWorkloadSubset on the same frames
     * locally (the A/B contract test_serve enforces).
     */
    std::string subsetBlob;
};

/** Stats request. */
struct StatsMsg
{
    std::uint64_t sessionId = 0;
};

/** StatsReply: one session's live state. */
struct StatsReplyMsg
{
    std::uint64_t frames = 0;
    std::uint64_t draws = 0;

    /** Bytes this session pins in the registry's resident bound. */
    std::uint64_t residentBytes = 0;

    std::uint32_t onlineClusters = 0;
    std::uint32_t refinements = 0;

    /** Fraction of frames drifted outside their cluster radius. */
    double drift = 0.0;

    /** Online clustering efficiency, 1 - k/n. */
    double efficiency = 0.0;
};

/** CloseSession request. */
struct CloseSessionMsg
{
    std::uint64_t sessionId = 0;
};

/** Closed reply (empty body). */
struct ClosedMsg
{
};

/** MetricsScrape request. */
struct MetricsScrapeMsg
{
    MetricsFormat format = MetricsFormat::Json;
};

/** MetricsReply: the serialized registry. */
struct MetricsReplyMsg
{
    std::string text;
};

/** ErrorReply: a typed failure. */
struct ErrorReplyMsg
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

// ------------------------------------------------ encode / decode ----

/** Encode one message into a frame payload (kind byte + body). */
std::string encode(const PingMsg &m);
std::string encode(const PongMsg &m);
std::string encode(const OpenSessionMsg &m);
std::string encode(const SessionOpenedMsg &m);
std::string encode(const UploadFramesMsg &m);
std::string encode(const FramesAcceptedMsg &m);
std::string encode(const QueryMsg &m);
std::string encode(const RepresentativesMsg &m);
std::string encode(const StatsMsg &m);
std::string encode(const StatsReplyMsg &m);
std::string encode(const CloseSessionMsg &m);
std::string encode(const ClosedMsg &m);
std::string encode(const MetricsScrapeMsg &m);
std::string encode(const MetricsReplyMsg &m);
std::string encode(const ErrorReplyMsg &m);

/** Peek the kind byte of a payload; throws ServeError when empty or
 *  the byte is not a known MsgKind. */
MsgKind peekKind(const std::string &payload);

/**
 * Decode one message body. The payload must carry the matching kind
 * byte and decode exhaustively (trailing bytes are an error — the
 * same canonical strictness as the file formats). Throws ServeError.
 */
PingMsg decodePing(const std::string &payload);
PongMsg decodePong(const std::string &payload);
OpenSessionMsg decodeOpenSession(const std::string &payload);
SessionOpenedMsg decodeSessionOpened(const std::string &payload);
UploadFramesMsg decodeUploadFrames(const std::string &payload);
FramesAcceptedMsg decodeFramesAccepted(const std::string &payload);
QueryMsg decodeQuery(const std::string &payload);
RepresentativesMsg decodeRepresentatives(const std::string &payload);
StatsMsg decodeStats(const std::string &payload);
StatsReplyMsg decodeStatsReply(const std::string &payload);
CloseSessionMsg decodeCloseSession(const std::string &payload);
ClosedMsg decodeClosed(const std::string &payload);
MetricsScrapeMsg decodeMetricsScrape(const std::string &payload);
MetricsReplyMsg decodeMetricsReply(const std::string &payload);
ErrorReplyMsg decodeErrorReply(const std::string &payload);

// ------------------------------------------------ socket framing ----

/**
 * Write one framed payload to a connected stream socket, retrying
 * short writes. Throws ServeError on socket failure.
 */
void sendFrame(int fd, const std::string &payload);

/**
 * Read one framed payload from a connected stream socket: header,
 * magic/version/size-cap validation (the size cap is the shared
 * framedPayloadCap()), payload, checksum. Returns false on a clean
 * EOF at a frame boundary; throws ServeError on truncation,
 * corruption, or socket failure.
 */
bool recvFrame(int fd, std::string &payload);

} // namespace serve
} // namespace gws

#endif // GWS_SERVE_PROTOCOL_HH
