/**
 * @file
 * gws_ctl: command-line client of gws_served. One request per
 * invocation (--mode=ping|open|upload|query|stats|close|metrics),
 * plus --mode=demo, which drives a complete session lifecycle with a
 * synthetic workload and A/B-checks the returned representative set
 * against the local batch pipeline — the smoke test CI runs against a
 * live daemon.
 */

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "core/subset_io.hh"
#include "core/subset_pipeline.hh"
#include "serve/client.hh"
#include "synth/generator.hh"
#include "trace/trace_io.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace {

using namespace gws;
using namespace gws::serve;

ServeClient
connect(const ArgParser &args)
{
    const std::string unixPath = args.getString("unix");
    if (!unixPath.empty())
        return ServeClient::connectUnix(unixPath);
    const std::int64_t port = args.getInt("port");
    if (port <= 0 || port > 65535)
        GWS_FATAL("gws_ctl: pass --unix=<path> or --port=<port>");
    return ServeClient::connectTcp(
        static_cast<std::uint16_t>(port));
}

std::uint64_t
sessionArg(const ArgParser &args)
{
    const std::int64_t id = args.getInt("session");
    if (id <= 0)
        GWS_FATAL("gws_ctl: this mode needs --session=<id>");
    return static_cast<std::uint64_t>(id);
}

void
printStats(const StatsReplyMsg &stats)
{
    std::printf("frames=%llu draws=%llu resident_bytes=%llu "
                "online_clusters=%u refinements=%u drift=%.4f "
                "efficiency=%.4f\n",
                static_cast<unsigned long long>(stats.frames),
                static_cast<unsigned long long>(stats.draws),
                static_cast<unsigned long long>(stats.residentBytes),
                stats.onlineClusters, stats.refinements, stats.drift,
                stats.efficiency);
}

/** Upload a trace in chunks of `chunkFrames` (0 = one chunk). */
std::uint64_t
uploadTrace(ServeClient &client, std::uint64_t id,
            const Trace &trace, std::size_t chunkFrames)
{
    const std::size_t step =
        chunkFrames == 0 ? trace.frameCount() : chunkFrames;
    std::uint64_t total = 0;
    for (std::size_t begin = 0; begin < trace.frameCount();
         begin += step) {
        const FramesAcceptedMsg accepted = client.uploadFrames(
            id, sliceTrace(trace, begin, begin + step));
        total = accepted.totalFrames;
    }
    return total;
}

int
runDemo(const ArgParser &args)
{
    // A complete lifecycle against a live daemon: open, stream the
    // synthetic workload chunk by chunk, query, A/B the reply against
    // the local batch pipeline, close.
    GameProfile profile =
        builtinProfile(args.getString("profile"), SuiteScale::Ci);
    const Trace trace = GameGenerator(profile).generate();

    ServeClient client = connect(args);
    // The session name becomes the assembled trace's name, which the
    // subset blob embeds as parentName — open with the exact trace
    // name or the bit-identity A/B fails on that field alone.
    const std::uint64_t id = client.open(trace.name());
    const std::uint64_t frames = uploadTrace(
        client, id, trace,
        static_cast<std::size_t>(args.getInt("chunk-frames")));

    const std::string remoteBlob = client.query(id);
    std::ostringstream localStream;
    writeSubset(buildWorkloadSubset(trace, SubsetConfig{}),
                localStream);
    const bool identical = remoteBlob == localStream.str();

    const StatsReplyMsg stats = client.stats(id);
    client.close(id);

    std::printf("DEMO %s frames=%llu subset_bytes=%zu "
                "online_clusters=%u refinements=%u\n",
                identical ? "OK" : "MISMATCH",
                static_cast<unsigned long long>(frames),
                remoteBlob.size(), stats.onlineClusters,
                stats.refinements);
    return identical ? 0 : 1;
}

int
run(const ArgParser &args)
{
    const std::string mode = args.getString("mode");
    if (mode == "demo")
        return runDemo(args);

    ServeClient client = connect(args);
    if (mode == "ping") {
        const PongMsg pong = client.ping();
        std::printf("%s uptime_ns=%llu sessions=%llu\n",
                    pong.protocol.c_str(),
                    static_cast<unsigned long long>(pong.uptimeNs),
                    static_cast<unsigned long long>(pong.sessions));
    } else if (mode == "open") {
        const std::uint64_t id = client.open(args.getString("name"));
        std::printf("session=%llu\n",
                    static_cast<unsigned long long>(id));
    } else if (mode == "upload") {
        const std::string path = args.getString("trace");
        if (path.empty())
            GWS_FATAL("gws_ctl: upload needs --trace=<file>");
        const Trace trace = readTraceFile(path);
        const std::uint64_t frames = uploadTrace(
            client, sessionArg(args), trace,
            static_cast<std::size_t>(args.getInt("chunk-frames")));
        std::printf("frames=%llu\n",
                    static_cast<unsigned long long>(frames));
    } else if (mode == "query") {
        const std::string blob = client.query(sessionArg(args));
        const std::string out = args.getString("out");
        if (out.empty()) {
            // No output path: report the decoded subset's shape.
            std::istringstream in(blob);
            const WorkloadSubset subset = readSubset(in);
            std::printf("representatives=%zu subset_bytes=%zu\n",
                        subset.units.size(), blob.size());
        } else {
            std::ofstream os(out, std::ios::binary);
            os.write(blob.data(),
                     static_cast<std::streamsize>(blob.size()));
            if (!os)
                GWS_FATAL("gws_ctl: cannot write ", out);
            std::printf("wrote %zu bytes to %s\n", blob.size(),
                        out.c_str());
        }
    } else if (mode == "stats") {
        printStats(client.stats(sessionArg(args)));
    } else if (mode == "close") {
        client.close(sessionArg(args));
        std::printf("closed\n");
    } else if (mode == "metrics") {
        const std::string format = args.getString("format");
        if (format != "json" && format != "text")
            GWS_FATAL("gws_ctl: --format must be json or text");
        std::fputs(client
                       .scrapeMetrics(format == "text"
                                          ? MetricsFormat::PrometheusText
                                          : MetricsFormat::Json)
                       .c_str(),
                   stdout);
    } else {
        GWS_FATAL("gws_ctl: unknown --mode=", mode,
                  " (ping|open|upload|query|stats|close|metrics|"
                  "demo)");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("gws_ctl", "gws_served command-line client");
    args.addString("mode", "ping",
                   "ping|open|upload|query|stats|close|metrics|demo");
    args.addString("unix", "",
                   "unix-domain socket path of the daemon");
    args.addInt("port", 0, "loopback TCP port of the daemon");
    args.addString("name", "workload",
                   "workload name (--mode=open)");
    args.addInt("session", 0, "session id (upload/query/stats/close)");
    args.addString("trace", "",
                   "trace file to upload (--mode=upload)");
    args.addInt("chunk-frames", 8,
                "frames per upload chunk, 0 = one chunk");
    args.addString("out", "",
                   "write the queried subset image here "
                   "(--mode=query)");
    args.addString("format", "json",
                   "metrics scrape format: json or text");
    args.addString("profile", "circuit",
                   "builtin game profile (--mode=demo)");
    if (!args.parse(argc, argv))
        return 0;

    try {
        return run(args);
    } catch (const ServeRemoteError &e) {
        GWS_FATAL("gws_ctl: server replied ", e.what());
    } catch (const gws::IoError &e) {
        GWS_FATAL("gws_ctl: ", e.what());
    } catch (const std::exception &e) {
        GWS_FATAL("gws_ctl: unexpected: ", e.what());
    }
}
