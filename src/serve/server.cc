#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <sstream>

#include "core/subset_io.hh"
#include "features/extractor.hh"
#include "obs/metrics.hh"
#include "obs/metrics_text.hh"
#include "obs/trace.hh"
#include "runtime/counters.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"

namespace gws {
namespace serve {

namespace {

obs::Counter &
requestCounter()
{
    static obs::Counter &c =
        obs::metricsRegistry().counter("gws.serve.requests");
    return c;
}

obs::Counter &
busyCounter()
{
    static obs::Counter &c =
        obs::metricsRegistry().counter("gws.serve.busy");
    return c;
}

obs::Counter &
protocolErrorCounter()
{
    static obs::Counter &c =
        obs::metricsRegistry().counter("gws.serve.protocol_errors");
    return c;
}

obs::Histogram &
uploadNsHistogram()
{
    static obs::Histogram &h =
        obs::metricsRegistry().histogram("gws.serve.upload.ns");
    return h;
}

obs::Histogram &
queryNsHistogram()
{
    static obs::Histogram &h =
        obs::metricsRegistry().histogram("gws.serve.query.ns");
    return h;
}

obs::Gauge &
connectionsGauge()
{
    static obs::Gauge &g =
        obs::metricsRegistry().gauge("gws.serve.connections");
    return g;
}

std::string
errorReply(ErrorCode code, const std::string &message)
{
    ErrorReplyMsg err;
    err.code = code;
    err.message = message;
    return encode(err);
}

/** RAII work permit against the bounded inflight-work budget. */
class WorkPermit
{
  public:
    WorkPermit(std::atomic<std::size_t> &inflight, std::size_t bound)
        : counter(inflight)
    {
        const std::size_t prev =
            counter.fetch_add(1, std::memory_order_acq_rel);
        granted = prev < bound;
        if (!granted)
            counter.fetch_sub(1, std::memory_order_acq_rel);
    }

    ~WorkPermit()
    {
        if (granted)
            counter.fetch_sub(1, std::memory_order_acq_rel);
    }

    WorkPermit(const WorkPermit &) = delete;
    WorkPermit &operator=(const WorkPermit &) = delete;

    bool ok() const { return granted; }

  private:
    std::atomic<std::size_t> &counter;
    bool granted = false;
};

/** Self-pipe the signal handlers write to (runUntilSignal). */
std::atomic<int> g_signal_wake_fd{-1};

extern "C" void
serveSignalHandler(int)
{
    const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = 1;
        // Best effort; the poll timeout backstops a full pipe.
        (void)!::write(fd, &byte, 1);
    }
}

/**
 * The per-frame feature the online clusterer consumes: the mean of
 * the frame's per-draw feature vectors. Frames are the arrival unit
 * of the serve protocol, so the session-level cluster structure
 * tracks frames, not draws.
 */
FeatureVector
frameFeature(const FeatureExtractor &extractor, const Frame &frame)
{
    const std::vector<FeatureVector> draws =
        extractor.extractFrame(frame);
    FeatureVector mean;
    const double inv = 1.0 / static_cast<double>(draws.size());
    for (const FeatureVector &v : draws)
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            mean.at(d) += v.at(d) * inv;
    return mean;
}

std::uint64_t
traceDrawCount(const Trace &trace)
{
    std::uint64_t draws = 0;
    for (const Frame &frame : trace.frames())
        draws += frame.draws().size();
    return draws;
}

} // namespace

Server::Server(ServerConfig config)
    : cfg(std::move(config)), registry(cfg.registry)
{
}

Server::~Server() { stop(); }

void
Server::start()
{
    if (running.load(std::memory_order_acquire))
        return;
    stopping.store(false, std::memory_order_release);

    if (!cfg.unixPath.empty()) {
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0)
            throw ServeError("serve: socket(AF_UNIX) failed: " +
                             std::string(std::strerror(errno)));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (cfg.unixPath.size() >= sizeof(addr.sun_path))
            throw ServeError("serve: unix socket path too long: " +
                             cfg.unixPath);
        std::strncpy(addr.sun_path, cfg.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(cfg.unixPath.c_str());
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            throw ServeError("serve: bind(" + cfg.unixPath +
                             ") failed: " +
                             std::string(std::strerror(errno)));
    } else {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            throw ServeError("serve: socket(AF_INET) failed: " +
                             std::string(std::strerror(errno)));
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(cfg.tcpPort);
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            throw ServeError("serve: bind(loopback TCP) failed: " +
                             std::string(std::strerror(errno)));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0)
            throw ServeError("serve: getsockname failed: " +
                             std::string(std::strerror(errno)));
        port = ntohs(bound.sin_port);
    }

    if (::listen(listenFd, 16) != 0)
        throw ServeError("serve: listen failed: " +
                         std::string(std::strerror(errno)));
    if (::pipe(wakePipe) != 0)
        throw ServeError("serve: pipe failed: " +
                         std::string(std::strerror(errno)));

    startedAtNs = runtime_detail::nowNs();
    running.store(true, std::memory_order_release);
    acceptThread = std::thread([this] { acceptLoop(); });
    GWS_INFORM("gws_served listening on ", endpoint());
}

void
Server::stop()
{
    if (!running.load(std::memory_order_acquire))
        return;
    stopping.store(true, std::memory_order_release);
    const char byte = 1;
    (void)!::write(wakePipe[1], &byte, 1);

    if (acceptThread.joinable())
        acceptThread.join();
    reapConnections(true);

    ::close(listenFd);
    listenFd = -1;
    ::close(wakePipe[0]);
    ::close(wakePipe[1]);
    wakePipe[0] = wakePipe[1] = -1;
    if (!cfg.unixPath.empty())
        ::unlink(cfg.unixPath.c_str());

    running.store(false, std::memory_order_release);
    obs::flushObservability();
    GWS_INFORM("gws_served drained and stopped");
}

int
Server::runUntilSignal()
{
    start();

    int signalPipe[2];
    if (::pipe(signalPipe) != 0)
        throw ServeError("serve: signal pipe failed: " +
                         std::string(std::strerror(errno)));
    g_signal_wake_fd.store(signalPipe[1], std::memory_order_relaxed);

    struct sigaction action{};
    action.sa_handler = serveSignalHandler;
    sigemptyset(&action.sa_mask);
    struct sigaction oldInt{};
    struct sigaction oldTerm{};
    ::sigaction(SIGINT, &action, &oldInt);
    ::sigaction(SIGTERM, &action, &oldTerm);

    // Block until a signal writes the self-pipe (EINTR also suffices
    // to fall through to the stopping check).
    pollfd pfd{};
    pfd.fd = signalPipe[0];
    pfd.events = POLLIN;
    while (true) {
        const int rc = ::poll(&pfd, 1, -1);
        if (rc > 0 || (rc < 0 && errno != EINTR))
            break;
    }

    ::sigaction(SIGINT, &oldInt, nullptr);
    ::sigaction(SIGTERM, &oldTerm, nullptr);
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
    ::close(signalPipe[0]);
    ::close(signalPipe[1]);

    GWS_INFORM("gws_served caught shutdown signal; draining");
    stop();
    return 0;
}

std::string
Server::endpoint() const
{
    if (!cfg.unixPath.empty())
        return "unix:" + cfg.unixPath;
    return "tcp:127.0.0.1:" + std::to_string(port);
}

void
Server::acceptLoop()
{
    pollfd fds[2];
    fds[0].fd = listenFd;
    fds[0].events = POLLIN;
    fds[1].fd = wakePipe[0];
    fds[1].events = POLLIN;

    while (!stopping.load(std::memory_order_acquire)) {
        fds[0].revents = fds[1].revents = 0;
        const int rc = ::poll(fds, 2, 200);
        registry.sweepIdle(runtime_detail::nowNs());
        reapConnections(false);
        if (rc <= 0 || (fds[0].revents & POLLIN) == 0)
            continue;

        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;

        if (activeConnections.load(std::memory_order_acquire) >=
            cfg.maxConnections) {
            // Accept backpressure: a typed reply, then close.
            busyCounter().increment();
            try {
                sendFrame(fd, errorReply(ErrorCode::ServerBusy,
                                         "connection limit reached"));
            } catch (const ServeError &) {
                // The peer is gone; nothing to report to.
            }
            ::close(fd);
            continue;
        }

        activeConnections.fetch_add(1, std::memory_order_acq_rel);
        connectionsGauge().set(static_cast<double>(
            activeConnections.load(std::memory_order_acquire)));
        auto conn = std::make_unique<Connection>();
        Connection *raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(connectionsMutex);
            connections.push_back(std::move(conn));
        }
        raw->thread = std::thread([this, fd, raw] {
            handleConnection(fd);
            activeConnections.fetch_sub(1, std::memory_order_acq_rel);
            connectionsGauge().set(static_cast<double>(
                activeConnections.load(std::memory_order_acquire)));
            raw->done.store(true, std::memory_order_release);
        });
    }
}

void
Server::handleConnection(int fd)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;

    while (!stopping.load(std::memory_order_acquire)) {
        pfd.revents = 0;
        const int rc = ::poll(&pfd, 1, 200);
        if (rc <= 0)
            continue; // timeout: re-check stopping
        if ((pfd.revents & (POLLERR | POLLNVAL)) != 0)
            break;

        std::string payload;
        try {
            if (!recvFrame(fd, payload))
                break; // clean EOF
        } catch (const ServeError &e) {
            // Corrupt frame: the stream is unsynchronized beyond
            // repair, so reply (best effort) and drop the peer.
            protocolErrorCounter().increment();
            try {
                sendFrame(fd, errorReply(ErrorCode::BadRequest,
                                         e.what()));
            } catch (const ServeError &) {
            }
            break;
        }

        std::string reply;
        if (stopping.load(std::memory_order_acquire)) {
            reply = errorReply(ErrorCode::ShuttingDown,
                               "server is draining");
        } else {
            reply = dispatch(payload);
        }
        try {
            sendFrame(fd, reply);
        } catch (const ServeError &) {
            break;
        }
    }
    ::close(fd);
}

std::string
Server::dispatch(const std::string &payload)
{
    requestCounter().increment();
    try {
        switch (peekKind(payload)) {
        case MsgKind::Ping:
            decodePing(payload);
            return handlePing();
        case MsgKind::OpenSession:
            return handleOpen(payload);
        case MsgKind::UploadFrames:
            return handleUpload(payload);
        case MsgKind::Query:
            return handleQuery(payload);
        case MsgKind::Stats:
            return handleStats(payload);
        case MsgKind::CloseSession:
            return handleClose(payload);
        case MsgKind::MetricsScrape:
            return handleScrape(payload);
        default:
            protocolErrorCounter().increment();
            return errorReply(ErrorCode::BadRequest,
                              "not a request kind: " +
                                  std::string(toString(
                                      peekKind(payload))));
        }
    } catch (const IoError &e) {
        // Malformed payloads and embedded trace images land here
        // (ServeError, TraceIoError); client data must never take the
        // daemon down.
        protocolErrorCounter().increment();
        return errorReply(ErrorCode::BadRequest, e.what());
    } catch (const std::exception &e) {
        return errorReply(ErrorCode::Internal, e.what());
    }
}

std::string
Server::handlePing()
{
    PongMsg pong;
    pong.protocol = "gws.serve.v1";
    pong.uptimeNs = runtime_detail::nowNs() - startedAtNs;
    pong.sessions = registry.sessionCount();
    return encode(pong);
}

std::string
Server::handleOpen(const std::string &payload)
{
    const OpenSessionMsg msg = decodeOpenSession(payload);
    const std::uint64_t id =
        registry.open(msg.name, runtime_detail::nowNs());
    if (id == 0) {
        busyCounter().increment();
        return errorReply(ErrorCode::ServerBusy,
                          "session limit reached");
    }
    SessionOpenedMsg reply;
    reply.sessionId = id;
    return encode(reply);
}

std::string
Server::lookupError(LookupStatus status)
{
    if (status == LookupStatus::Evicted)
        return errorReply(ErrorCode::SessionEvicted,
                          "session was evicted (idle TTL or memory "
                          "pressure); re-open and re-upload");
    return errorReply(ErrorCode::UnknownSession,
                      "no such session id");
}

std::string
Server::handleUpload(const std::string &payload)
{
    const UploadFramesMsg msg = decodeUploadFrames(payload);
    WorkPermit permit(inflightWork, cfg.maxInflightWork);
    if (!permit.ok()) {
        busyCounter().increment();
        return errorReply(ErrorCode::ServerBusy,
                          "inflight-work limit reached; retry");
    }

    obs::SpanScope span("serve.upload");
    const std::uint64_t t0 = runtime_detail::nowNs();
    obs::metricsRegistry().counter("gws.serve.uploads").increment();

    // Decode the chunk through the fuzz-hardened trace codec before
    // touching the session; a throw here becomes BadRequest upstream.
    std::istringstream blobStream(msg.traceBlob);
    const Trace chunk = readTrace(blobStream);
    if (blobStream.peek() != std::istream::traits_type::eof())
        throw ServeError(
            "upload: trailing bytes after the trace image");
    if (chunk.frameCount() == 0)
        throw ServeError("upload: chunk has no frames");
    for (const Frame &frame : chunk.frames())
        if (frame.draws().empty())
            throw ServeError(
                "upload: chunk contains an empty frame");

    std::shared_ptr<Session> session;
    const LookupStatus status =
        registry.acquire(msg.sessionId, runtime_detail::nowNs(),
                         session);
    if (status != LookupStatus::Found)
        return lookupError(status);

    FramesAcceptedMsg reply;
    std::size_t newResident = 0;
    {
        std::lock_guard<std::mutex> lock(session->mutex);
        if (session->evicted.load(std::memory_order_acquire))
            return lookupError(LookupStatus::Evicted);

        if (!session->hasTables) {
            // First chunk: adopt its resource tables wholesale.
            session->trace.shaders() = chunk.shaders();
            for (const TextureDesc &t : chunk.textures())
                session->trace.addTexture(t);
            for (const RenderTargetDesc &r : chunk.renderTargets())
                session->trace.addRenderTarget(r);
            session->hasTables = true;
        } else {
            // Later chunks must reference identical tables, or draw
            // resource ids would silently rebind across chunks.
            if (!(chunk.shaders() == session->trace.shaders()) ||
                chunk.textures() != session->trace.textures() ||
                chunk.renderTargets() !=
                    session->trace.renderTargets())
                throw ServeError("upload: chunk resource tables "
                                 "differ from the session's");
        }

        // Append the chunk's frames at the session's global frame
        // indices and feed each one to the online clusterer.
        const FeatureExtractor extractor(session->trace);
        for (const Frame &frame : chunk.frames()) {
            Frame copy(session->trace.frameCount());
            copy.draws() = frame.draws();
            session->online.addFrame(frameFeature(extractor, copy));
            session->trace.addFrame(std::move(copy));
        }
        session->uploadedBytes += msg.traceBlob.size();

        reply.totalFrames = session->trace.frameCount();
        reply.totalDraws = traceDrawCount(session->trace);
        reply.onlineClusters =
            static_cast<std::uint32_t>(session->online.clusters());
        reply.refinements = session->online.refinements();

        newResident = session->uploadedBytes +
                      session->online.residentBytes() +
                      session->cachedSubsetBlob.size();
    }
    registry.updateResident(msg.sessionId, newResident);

    uploadNsHistogram().record(runtime_detail::nowNs() - t0);
    return encode(reply);
}

std::string
Server::handleQuery(const std::string &payload)
{
    const QueryMsg msg = decodeQuery(payload);
    WorkPermit permit(inflightWork, cfg.maxInflightWork);
    if (!permit.ok()) {
        busyCounter().increment();
        return errorReply(ErrorCode::ServerBusy,
                          "inflight-work limit reached; retry");
    }

    obs::SpanScope span("serve.query");
    const std::uint64_t t0 = runtime_detail::nowNs();
    obs::metricsRegistry().counter("gws.serve.queries").increment();

    std::shared_ptr<Session> session;
    const LookupStatus status =
        registry.acquire(msg.sessionId, runtime_detail::nowNs(),
                         session);
    if (status != LookupStatus::Found)
        return lookupError(status);

    RepresentativesMsg reply;
    std::size_t newResident = 0;
    {
        std::lock_guard<std::mutex> lock(session->mutex);
        if (session->evicted.load(std::memory_order_acquire))
            return lookupError(LookupStatus::Evicted);
        if (session->trace.frameCount() == 0)
            throw ServeError("query: session has no frames yet");

        if (session->cachedAtFrames != session->trace.frameCount()) {
            // The bit-identity contract: the reply IS the batch
            // pipeline over the session's full frame sequence.
            const WorkloadSubset subset =
                buildWorkloadSubset(session->trace, cfg.subset);
            std::ostringstream out;
            writeSubset(subset, out);
            session->cachedSubsetBlob = out.str();
            session->cachedAtFrames = session->trace.frameCount();
        }
        reply.subsetBlob = session->cachedSubsetBlob;

        newResident = session->uploadedBytes +
                      session->online.residentBytes() +
                      session->cachedSubsetBlob.size();
    }
    registry.updateResident(msg.sessionId, newResident);

    queryNsHistogram().record(runtime_detail::nowNs() - t0);
    return encode(reply);
}

std::string
Server::handleStats(const std::string &payload)
{
    const StatsMsg msg = decodeStats(payload);
    std::shared_ptr<Session> session;
    const LookupStatus status =
        registry.acquire(msg.sessionId, runtime_detail::nowNs(),
                         session);
    if (status != LookupStatus::Found)
        return lookupError(status);

    StatsReplyMsg reply;
    {
        std::lock_guard<std::mutex> lock(session->mutex);
        if (session->evicted.load(std::memory_order_acquire))
            return lookupError(LookupStatus::Evicted);
        reply.frames = session->trace.frameCount();
        reply.draws = traceDrawCount(session->trace);
        reply.residentBytes = session->uploadedBytes +
                              session->online.residentBytes() +
                              session->cachedSubsetBlob.size();
        reply.onlineClusters =
            static_cast<std::uint32_t>(session->online.clusters());
        reply.refinements = session->online.refinements();
        reply.drift = session->online.lastDrift();
        reply.efficiency = session->online.efficiency();
    }
    return encode(reply);
}

std::string
Server::handleClose(const std::string &payload)
{
    const CloseSessionMsg msg = decodeCloseSession(payload);
    const LookupStatus status = registry.close(msg.sessionId);
    if (status != LookupStatus::Found)
        return lookupError(status);
    return encode(ClosedMsg{});
}

std::string
Server::handleScrape(const std::string &payload)
{
    const MetricsScrapeMsg msg = decodeMetricsScrape(payload);
    // Scrape metadata, refreshed per request so every snapshot a
    // dashboard polls carries fresh uptime and the producing build.
    obs::metricsRegistry()
        .gauge("gws.serve.uptime_seconds")
        .set(static_cast<double>(runtime_detail::nowNs() -
                                 startedAtNs) *
             1e-9);
    obs::metricsRegistry().setInfo("gws.serve.build_info",
                                   GWS_GIT_DESCRIBE);
    MetricsReplyMsg reply;
    if (msg.format == MetricsFormat::PrometheusText)
        reply.text = obs::metricsPrometheusText();
    else
        reply.text = obs::metricsRegistry().toJson();
    return encode(reply);
}

void
Server::reapConnections(bool all)
{
    std::lock_guard<std::mutex> lock(connectionsMutex);
    for (auto it = connections.begin(); it != connections.end();) {
        Connection &conn = **it;
        if (all || conn.done.load(std::memory_order_acquire)) {
            if (conn.thread.joinable())
                conn.thread.join();
            it = connections.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace serve
} // namespace gws
