/**
 * @file
 * Prometheus text-exposition converter for the metrics registry
 * (`gws.metrics.v1` -> text/plain version 0.0.4). Metric names are
 * sanitized to the Prometheus charset (dots become underscores),
 * counters gain the conventional `_total` suffix, and log2-bucketed
 * histograms export as cumulative `_bucket{le="..."}` series plus
 * `_sum` / `_count` and `_p50` / `_p95` / `_p99` quantile estimates —
 * so the serving daemon's scrape reply (and the `--metrics-text-out`
 * bench option) can feed a stock Prometheus scraper without an
 * adapter. Info metrics render as a constant-1 sample carrying their
 * annotation in a `value` label.
 */

#ifndef GWS_OBS_METRICS_TEXT_HH
#define GWS_OBS_METRICS_TEXT_HH

#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace gws {
namespace obs {

/**
 * A metric name mapped to the Prometheus charset
 * [a-zA-Z_:][a-zA-Z0-9_:]*: every other character becomes '_', and a
 * leading digit gains a '_' prefix.
 */
std::string prometheusName(const std::string &name);

/** Render a snapshot as Prometheus text exposition format. */
std::string metricsPrometheusText(
    const std::vector<MetricSnapshot> &snapshot);

/** Render the whole process-global registry. */
std::string metricsPrometheusText();

/**
 * Write metricsPrometheusText() to `path`. Returns false (after a
 * warning) when the file cannot be opened.
 */
bool writeMetricsText(const std::string &path);

} // namespace obs
} // namespace gws

#endif // GWS_OBS_METRICS_TEXT_HH
