#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/mem.hh"
#include "obs/metrics.hh"
#include "obs/metrics_text.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace gws {
namespace obs {

namespace {

/** Monotonic now() in ns (steady clock; obs owns its own copy so the
 *  obs layer stays below the runtime). */
std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** An open span on a thread's stack. */
struct OpenSpan
{
    std::string name;
    std::uint64_t startNs = 0;
    std::uint64_t childNs = 0;
    std::uint64_t flowId = 0;
};

/**
 * One thread's recording state. Owned by the global registry (so
 * events survive pool shutdown) and written only by its thread; the
 * quiescence contract makes reads from the exporting thread safe.
 */
struct ThreadBuffer
{
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
    std::vector<OpenSpan> stack;

    /** Oldest retained event once `events` has wrapped as a ring. */
    std::size_t head = 0;
};

/** Per-thread retained-event cap (0 = unbounded), from GWS_TRACE_CAP. */
std::atomic<std::size_t> &
traceCap()
{
    static std::atomic<std::size_t> cap{
        envSize("GWS_TRACE_CAP", std::size_t{1} << 20)};
    return cap;
}

/**
 * Append an event to a thread's buffer, overwriting the oldest
 * retained event (and counting the loss) once the buffer has grown to
 * the cap — the bounded-memory contract for long streaming runs.
 */
void
pushEvent(ThreadBuffer &buf, TraceEvent ev)
{
    const std::size_t cap =
        traceCap().load(std::memory_order_relaxed);
    if (cap == 0 || buf.events.size() < cap) {
        buf.events.push_back(std::move(ev));
        return;
    }
    static Counter &dropped =
        metricsRegistry().counter("gws.trace.dropped_spans");
    dropped.increment();
    buf.events[buf.head] = std::move(ev);
    buf.head = (buf.head + 1) % buf.events.size();
}

struct BufferRegistry
{
    std::mutex mutex;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

BufferRegistry &
bufferRegistry()
{
    // Leaked on purpose: the armed atexit export runs after static
    // destruction would have torn a function-local static down, so
    // the registry must outlive every destructor in the process.
    static BufferRegistry *registry = new BufferRegistry;
    return *registry;
}

/** Trace epoch: event timestamps are relative to the last traceBegin. */
std::atomic<std::uint64_t> g_trace_t0{0};

std::atomic<std::uint64_t> g_next_flow_id{1};

/** This thread's buffer, registered on first use. */
ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBuffer *buffer = [] {
        BufferRegistry &reg = bufferRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        auto owned = std::make_unique<ThreadBuffer>();
        owned->tid = static_cast<std::uint32_t>(reg.buffers.size());
        ThreadBuffer *raw = owned.get();
        reg.buffers.push_back(std::move(owned));
        return raw;
    }();
    return *buffer;
}

std::uint64_t
sinceT0(std::uint64_t ns)
{
    const std::uint64_t t0 = g_trace_t0.load(std::memory_order_relaxed);
    return ns >= t0 ? ns - t0 : 0;
}

// ------------------------------------------------- armed exports ----

std::mutex g_export_mutex;
std::string g_trace_path;
std::string g_metrics_path;
std::string g_metrics_text_path;
bool g_atexit_registered = false;

void
armAtexitLocked()
{
    if (g_atexit_registered)
        return;
    g_atexit_registered = true;
    std::atexit(flushObservability);
}

} // namespace

namespace trace_detail {

std::atomic<bool> enabled{false};

bool
spanBegin(std::string name, std::uint64_t flowId)
{
    ThreadBuffer &buf = threadBuffer();
    buf.stack.push_back(
        OpenSpan{std::move(name), nowNs(), 0, flowId});
    return true;
}

void
spanEnd()
{
    ThreadBuffer &buf = threadBuffer();
    if (buf.stack.empty())
        return; // tracing was restarted mid-span; drop silently
    OpenSpan span = std::move(buf.stack.back());
    buf.stack.pop_back();

    const std::uint64_t end = nowNs();
    const std::uint64_t dur =
        end >= span.startNs ? end - span.startNs : 0;
    if (!buf.stack.empty())
        buf.stack.back().childNs += dur;

    TraceEvent ev;
    ev.name = std::move(span.name);
    ev.phase = TracePhase::Complete;
    ev.startNs = sinceT0(span.startNs);
    ev.durationNs = dur;
    ev.selfNs = dur >= span.childNs ? dur - span.childNs : 0;
    ev.depth = static_cast<std::uint32_t>(buf.stack.size());
    ev.tid = buf.tid;
    ev.flowId = span.flowId;
    pushEvent(buf, std::move(ev));
}

} // namespace trace_detail

void
traceBegin()
{
    trace_detail::enabled.store(false, std::memory_order_relaxed);
    // Touch the cap while tracing is off: its first read parses
    // GWS_TRACE_CAP, and a malformed value warns — which records a
    // trace instant through the observer hook. If that first read
    // happened inside pushEvent() the warning would re-enter the
    // cap's own static initializer.
    traceCap().load(std::memory_order_relaxed);
    BufferRegistry &reg = bufferRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &buf : reg.buffers) {
        buf->events.clear();
        buf->stack.clear();
        buf->head = 0;
    }
    g_trace_t0.store(nowNs(), std::memory_order_relaxed);
    trace_detail::enabled.store(true, std::memory_order_relaxed);
}

void
traceEnd()
{
    trace_detail::enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t
traceNewFlowId()
{
    return g_next_flow_id.fetch_add(1, std::memory_order_relaxed);
}

void
traceFlowStart(const char *name, std::uint64_t flowId)
{
    if (!traceEnabled())
        return;
    ThreadBuffer &buf = threadBuffer();
    TraceEvent ev;
    ev.name = name;
    ev.phase = TracePhase::FlowStart;
    ev.startNs = sinceT0(nowNs());
    ev.depth = static_cast<std::uint32_t>(buf.stack.size());
    ev.tid = buf.tid;
    ev.flowId = flowId;
    pushEvent(buf, std::move(ev));
}

void
traceInstant(const char *name, const std::string &detail)
{
    if (!traceEnabled())
        return;
    ThreadBuffer &buf = threadBuffer();
    TraceEvent ev;
    ev.name = name;
    ev.detail = detail;
    ev.phase = TracePhase::Instant;
    ev.startNs = sinceT0(nowNs());
    ev.depth = static_cast<std::uint32_t>(buf.stack.size());
    ev.tid = buf.tid;
    pushEvent(buf, std::move(ev));
}

std::size_t
traceEventCount()
{
    BufferRegistry &reg = bufferRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::size_t n = 0;
    for (const auto &buf : reg.buffers)
        n += buf->events.size();
    return n;
}

std::vector<TraceEvent>
traceSnapshot()
{
    BufferRegistry &reg = bufferRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<TraceEvent> out;
    for (const auto &buf : reg.buffers) {
        // A wrapped ring buffer's oldest event sits at `head`; emit
        // oldest-first so timelines stay monotone per thread.
        const auto begin = buf->events.begin();
        out.insert(out.end(), begin + static_cast<std::ptrdiff_t>(
                                          buf->head),
                   buf->events.end());
        out.insert(out.end(), begin,
                   begin + static_cast<std::ptrdiff_t>(buf->head));
    }
    return out;
}

void
setTraceCapPerThread(std::size_t cap)
{
    traceCap().store(cap, std::memory_order_relaxed);
}

std::size_t
traceCapPerThread()
{
    return traceCap().load(std::memory_order_relaxed);
}

std::vector<SpanRollup>
traceRollup()
{
    std::map<std::string, SpanRollup> by_name;
    for (const TraceEvent &ev : traceSnapshot()) {
        if (ev.phase != TracePhase::Complete)
            continue;
        SpanRollup &r = by_name[ev.name];
        r.name = ev.name;
        ++r.count;
        r.totalNs += ev.durationNs;
        r.selfNs += ev.selfNs;
    }
    std::vector<SpanRollup> out;
    out.reserve(by_name.size());
    for (auto &[name, rollup] : by_name)
        out.push_back(std::move(rollup));
    std::sort(out.begin(), out.end(),
              [](const SpanRollup &a, const SpanRollup &b) {
                  return a.selfNs > b.selfNs;
              });
    return out;
}

std::string
traceRollupReport()
{
    const std::vector<SpanRollup> rollup = traceRollup();
    if (rollup.empty())
        return "";
    std::ostringstream oss;
    char line[160];
    std::snprintf(line, sizeof(line), "trace: %-32s %10s %10s %8s\n",
                  "span", "self ms", "total ms", "count");
    oss << line;
    for (const SpanRollup &r : rollup) {
        std::snprintf(line, sizeof(line),
                      "trace: %-32s %10.2f %10.2f %8llu\n",
                      r.name.c_str(),
                      static_cast<double>(r.selfNs) * 1e-6,
                      static_cast<double>(r.totalNs) * 1e-6,
                      static_cast<unsigned long long>(r.count));
        oss << line;
    }
    return oss.str();
}

bool
writeChromeTrace(const std::string &path)
{
    FILE *fp = std::fopen(path.c_str(), "w");
    if (fp == nullptr) {
        GWS_WARN("cannot write trace JSON to ", path);
        return false;
    }

    const std::vector<TraceEvent> events = traceSnapshot();
    std::ostringstream oss;
    oss << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    auto emit = [&](const std::string &body) {
        oss << (first ? "\n" : ",\n") << "  {" << body << "}";
        first = false;
    };
    auto common = [&](const TraceEvent &ev) {
        std::ostringstream c;
        c << "\"name\": \"" << jsonEscape(ev.name)
          << "\", \"pid\": 1, \"tid\": " << ev.tid << ", \"ts\": "
          << static_cast<double>(ev.startNs) * 1e-3;
        return c.str();
    };

    for (const TraceEvent &ev : events) {
        switch (ev.phase) {
          case TracePhase::Complete:
            emit(common(ev) + ", \"ph\": \"X\", \"cat\": \"gws\"" +
                 ", \"dur\": " +
                 std::to_string(
                     static_cast<double>(ev.durationNs) * 1e-3));
            // A chunk span that belongs to a fan-out also terminates
            // the fan-out's flow arrow on this thread's track.
            if (ev.flowId != 0)
                emit(common(ev) +
                     ", \"ph\": \"f\", \"bp\": \"e\", \"cat\": "
                     "\"flow\", \"id\": " +
                     std::to_string(ev.flowId));
            break;
          case TracePhase::FlowStart:
            emit(common(ev) + ", \"ph\": \"s\", \"cat\": \"flow\""
                 ", \"id\": " + std::to_string(ev.flowId));
            break;
          case TracePhase::Instant:
            emit(common(ev) + ", \"ph\": \"i\", \"s\": \"t\", \"cat\": "
                 "\"gws\", \"args\": {\"detail\": \"" +
                 jsonEscape(ev.detail) + "\"}");
            break;
        }
    }
    oss << "\n]}\n";

    const std::string json = oss.str();
    std::fwrite(json.data(), 1, json.size(), fp);
    std::fclose(fp);
    return true;
}

void
setTraceOutputPath(const std::string &tracePath)
{
    std::lock_guard<std::mutex> lock(g_export_mutex);
    g_trace_path = tracePath;
    if (!tracePath.empty())
        armAtexitLocked();
}

void
setMetricsOutputPath(const std::string &metricsPath)
{
    std::lock_guard<std::mutex> lock(g_export_mutex);
    g_metrics_path = metricsPath;
    if (!metricsPath.empty())
        armAtexitLocked();
}

void
setMetricsTextOutputPath(const std::string &metricsTextPath)
{
    std::lock_guard<std::mutex> lock(g_export_mutex);
    g_metrics_text_path = metricsTextPath;
    if (!metricsTextPath.empty())
        armAtexitLocked();
}

void
flushObservability()
{
    // Final peak-RSS sample so every export carries the high-water
    // mark of the whole run.
    updatePeakRssGauge();
    std::string trace_path, metrics_path, metrics_text_path;
    {
        std::lock_guard<std::mutex> lock(g_export_mutex);
        trace_path.swap(g_trace_path);
        metrics_path.swap(g_metrics_path);
        metrics_text_path.swap(g_metrics_text_path);
    }
    if (!trace_path.empty() && writeChromeTrace(trace_path))
        GWS_INFORM("wrote trace to ", trace_path);
    if (!metrics_path.empty() &&
        metricsRegistry().writeJson(metrics_path))
        GWS_INFORM("wrote metrics to ", metrics_path);
    if (!metrics_text_path.empty() &&
        writeMetricsText(metrics_text_path))
        GWS_INFORM("wrote metrics text to ", metrics_text_path);
}

namespace {

/** Warn observability: count every warning in the metrics registry
 *  and drop an instant event into the trace so stray warn() calls are
 *  visible in exported timelines. Installed at load time. */
void
warnObserver(const char *msg)
{
    static Counter &warnings = metricsRegistry().counter("gws.warnings");
    warnings.increment();
    traceInstant("warn", msg);
}

const bool g_warn_hook_installed = [] {
    detail::setWarnObserver(&warnObserver);
    return true;
}();

} // namespace

} // namespace obs
} // namespace gws
