#include "obs/mem.hh"

#include <cstdio>
#include <cstring>

#include "obs/metrics.hh"

namespace gws {
namespace obs {

std::size_t
peakRssBytes()
{
#if defined(__linux__)
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (f == nullptr)
        return 0;
    std::size_t bytes = 0;
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        // "VmHWM:      123456 kB" — the peak resident set size.
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            unsigned long long kb = 0;
            if (std::sscanf(line + 6, "%llu", &kb) == 1)
                bytes = static_cast<std::size_t>(kb) * 1024;
            break;
        }
    }
    std::fclose(f);
    return bytes;
#else
    return 0;
#endif
}

void
updatePeakRssGauge()
{
    static Gauge &gauge =
        metricsRegistry().gauge("gws.mem.peak_rss_bytes");
    gauge.set(static_cast<double>(peakRssBytes()));
}

} // namespace obs
} // namespace gws
