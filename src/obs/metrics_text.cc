#include "obs/metrics_text.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace gws {
namespace obs {

std::string
prometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

namespace {

/** Shortest round-trippable decimal for a gauge value. */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Escape a Prometheus label value (backslash, quote, newline). */
std::string
labelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

void
renderOne(std::ostringstream &os, const MetricSnapshot &m)
{
    const std::string base = prometheusName(m.name);
    switch (m.type) {
    case MetricType::Counter:
        os << "# TYPE " << base << "_total counter\n";
        os << base << "_total " << m.counterValue << "\n";
        break;
    case MetricType::Gauge:
        os << "# TYPE " << base << " gauge\n";
        os << base << " " << formatDouble(m.gaugeValue) << "\n";
        break;
    case MetricType::Histogram: {
        os << "# TYPE " << base << " histogram\n";
        // Prometheus buckets are cumulative; the snapshot's are not.
        std::uint64_t cum = 0;
        for (const MetricSnapshot::Bucket &b : m.buckets) {
            cum += b.count;
            os << base << "_bucket{le=\"" << b.hi << "\"} " << cum
               << "\n";
        }
        os << base << "_bucket{le=\"+Inf\"} " << m.histCount << "\n";
        os << base << "_sum " << m.histSum << "\n";
        os << base << "_count " << m.histCount << "\n";
        // Log2-bucket quantile estimates as plain samples, so a
        // dashboard can plot latency percentiles without re-deriving
        // them from the cumulative bucket series.
        os << base << "_p50 " << formatDouble(snapshotQuantile(m, 0.50))
           << "\n";
        os << base << "_p95 " << formatDouble(snapshotQuantile(m, 0.95))
           << "\n";
        os << base << "_p99 " << formatDouble(snapshotQuantile(m, 0.99))
           << "\n";
        break;
    }
    case MetricType::Info:
        // The conventional identity-metric shape: constant 1 with
        // the annotation carried in a label.
        os << "# TYPE " << base << " gauge\n";
        os << base << "{value=\"" << labelEscape(m.infoValue)
           << "\"} 1\n";
        break;
    }
}

} // namespace

std::string
metricsPrometheusText(const std::vector<MetricSnapshot> &snapshot)
{
    std::ostringstream os;
    for (const MetricSnapshot &m : snapshot)
        renderOne(os, m);
    return os.str();
}

std::string
metricsPrometheusText()
{
    return metricsPrometheusText(metricsRegistry().snapshot());
}

bool
writeMetricsText(const std::string &path)
{
    FILE *fp = std::fopen(path.c_str(), "w");
    if (fp == nullptr) {
        GWS_WARN("cannot write metrics text to ", path);
        return false;
    }
    const std::string text = metricsPrometheusText();
    std::fwrite(text.data(), 1, text.size(), fp);
    std::fclose(fp);
    return true;
}

} // namespace obs
} // namespace gws
