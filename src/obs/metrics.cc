#include "obs/metrics.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/logging.hh"

namespace gws {
namespace obs {

const char *
toString(MetricType type)
{
    switch (type) {
      case MetricType::Counter:
        return "counter";
      case MetricType::Gauge:
        return "gauge";
      case MetricType::Histogram:
        return "histogram";
      case MetricType::Info:
        return "info";
    }
    GWS_PANIC("unknown metric type ", static_cast<int>(type));
}

std::size_t
Histogram::bucketIndex(std::uint64_t value)
{
    return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t
Histogram::bucketLowerBound(std::size_t i)
{
    GWS_ASSERT(i < numBuckets, "bucket index out of range: ", i);
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
Histogram::bucketUpperBound(std::size_t i)
{
    GWS_ASSERT(i < numBuckets, "bucket index out of range: ", i);
    if (i == 0)
        return 0;
    if (i == numBuckets - 1)
        return UINT64_MAX;
    return (std::uint64_t{1} << i) - 1;
}

void
Histogram::record(std::uint64_t value)
{
    buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    totalSum.fetch_add(value, std::memory_order_relaxed);
    observations.fetch_add(1, std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
    totalSum.store(0, std::memory_order_relaxed);
    observations.store(0, std::memory_order_relaxed);
}

/** One registered metric: its type tag plus the live instance. */
struct MetricsRegistry::Entry
{
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;

    /** Info annotation (guarded by the registry mutex, not atomic). */
    std::string infoValue;
};

/** Name -> entry map behind one mutex (lookups only; updates are
 *  atomic on the instances themselves). */
struct MetricsRegistry::Impl
{
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;
};

MetricsRegistry::MetricsRegistry() : impl(new Impl) {}

MetricsRegistry &
metricsRegistry()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry &
MetricsRegistry::entryFor(const std::string &name, MetricType type)
{
    GWS_ASSERT(!name.empty(), "metric with an empty name");
    std::lock_guard<std::mutex> lock(impl->mutex);
    auto [it, inserted] = impl->entries.try_emplace(name);
    Entry &entry = it->second;
    if (inserted) {
        entry.type = type;
        switch (type) {
          case MetricType::Counter:
            entry.counter.reset(new Counter);
            break;
          case MetricType::Gauge:
            entry.gauge.reset(new Gauge);
            break;
          case MetricType::Histogram:
            entry.histogram.reset(new Histogram);
            break;
          case MetricType::Info:
            break; // the annotation string lives in the entry itself
        }
    }
    GWS_ASSERT(entry.type == type, "metric '", name,
               "' re-registered as ", toString(type), " but is a ",
               toString(entry.type));
    return entry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *entryFor(name, MetricType::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *entryFor(name, MetricType::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *entryFor(name, MetricType::Histogram).histogram;
}

void
MetricsRegistry::setInfo(const std::string &name,
                         const std::string &value)
{
    // entryFor() drops the registry mutex on return, and the
    // annotation string is not atomic, so the find-or-create and the
    // write must share one locked section.
    GWS_ASSERT(!name.empty(), "metric with an empty name");
    std::lock_guard<std::mutex> lock(impl->mutex);
    auto [it, inserted] = impl->entries.try_emplace(name);
    Entry &entry = it->second;
    if (inserted)
        entry.type = MetricType::Info;
    GWS_ASSERT(entry.type == MetricType::Info, "metric '", name,
               "' re-registered as info but is a ",
               toString(entry.type));
    entry.infoValue = value;
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    return snapshotPrefix("");
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshotPrefix(const std::string &prefix) const
{
    std::vector<MetricSnapshot> out;
    std::lock_guard<std::mutex> lock(impl->mutex);
    for (const auto &[name, entry] : impl->entries) {
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        MetricSnapshot row;
        row.name = name;
        row.type = entry.type;
        switch (entry.type) {
          case MetricType::Counter:
            row.counterValue = entry.counter->value();
            break;
          case MetricType::Gauge:
            row.gaugeValue = entry.gauge->value();
            break;
          case MetricType::Histogram:
            row.histCount = entry.histogram->count();
            row.histSum = entry.histogram->sum();
            for (std::size_t b = 0; b < Histogram::numBuckets; ++b) {
                const std::uint64_t n = entry.histogram->bucketCount(b);
                if (n == 0)
                    continue;
                row.buckets.push_back(
                    {Histogram::bucketLowerBound(b),
                     Histogram::bucketUpperBound(b), n});
            }
            break;
          case MetricType::Info:
            row.infoValue = entry.infoValue;
            break;
        }
        out.push_back(std::move(row));
    }
    return out;
}

void
MetricsRegistry::resetAll()
{
    resetPrefix("");
}

void
MetricsRegistry::resetPrefix(const std::string &prefix)
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    for (auto &[name, entry] : impl->entries) {
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        switch (entry.type) {
          case MetricType::Counter:
            entry.counter->reset();
            break;
          case MetricType::Gauge:
            entry.gauge->reset();
            break;
          case MetricType::Histogram:
            entry.histogram->reset();
            break;
          case MetricType::Info:
            entry.infoValue.clear();
            break;
        }
    }
}

double
snapshotQuantile(const MetricSnapshot &row, double q)
{
    const std::uint64_t n = row.histCount;
    if (n == 0)
        return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);

    // Nearest rank, 1-based: the smallest r with r >= q * n.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;

    std::uint64_t cumulative = 0;
    for (const MetricSnapshot::Bucket &b : row.buckets) {
        if (cumulative + b.count < rank) {
            cumulative += b.count;
            continue;
        }
        // The rank'th observation lies in this bucket; place it at
        // its midpoint position among the bucket's occupants. The
        // open-ended top bucket interpolates over one octave.
        const std::uint64_t hi =
            b.hi == UINT64_MAX && b.lo > 0 ? b.lo * 2 - 1 : b.hi;
        const double inBucket =
            (static_cast<double>(rank - cumulative) - 0.5) /
            static_cast<double>(b.count);
        return static_cast<double>(b.lo) +
               inBucket * static_cast<double>(hi - b.lo);
    }
    // Snapshot counts disagree with the bucket list (torn concurrent
    // read); report the top of the recorded range.
    return row.buckets.empty()
               ? 0.0
               : static_cast<double>(row.buckets.back().hi);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
    return out;
}

std::string
MetricsRegistry::toJson() const
{
    const std::vector<MetricSnapshot> rows = snapshot();
    std::ostringstream oss;
    oss << "{\n  \"schema\": \"gws.metrics.v1\",\n  \"metrics\": [";
    bool first = true;
    for (const MetricSnapshot &row : rows) {
        oss << (first ? "\n" : ",\n");
        first = false;
        oss << "    {\"name\": \"" << jsonEscape(row.name)
            << "\", \"type\": \"" << toString(row.type) << "\", ";
        switch (row.type) {
          case MetricType::Counter:
            oss << "\"value\": " << row.counterValue << "}";
            break;
          case MetricType::Gauge:
            oss << "\"value\": " << row.gaugeValue << "}";
            break;
          case MetricType::Histogram: {
            oss << "\"count\": " << row.histCount
                << ", \"sum\": " << row.histSum;
            char quant[96];
            std::snprintf(quant, sizeof(quant),
                          ", \"p50\": %.3f, \"p95\": %.3f, "
                          "\"p99\": %.3f",
                          snapshotQuantile(row, 0.50),
                          snapshotQuantile(row, 0.95),
                          snapshotQuantile(row, 0.99));
            oss << quant << ", \"buckets\": [";
            for (std::size_t b = 0; b < row.buckets.size(); ++b) {
                if (b > 0)
                    oss << ", ";
                oss << "{\"lo\": " << row.buckets[b].lo
                    << ", \"hi\": " << row.buckets[b].hi
                    << ", \"count\": " << row.buckets[b].count << "}";
            }
            oss << "]}";
            break;
          }
          case MetricType::Info:
            oss << "\"value\": \"" << jsonEscape(row.infoValue)
                << "\"}";
            break;
        }
    }
    oss << "\n  ]\n}\n";
    return oss.str();
}

bool
MetricsRegistry::writeJson(const std::string &path) const
{
    FILE *fp = std::fopen(path.c_str(), "w");
    if (fp == nullptr) {
        GWS_WARN("cannot write metrics JSON to ", path);
        return false;
    }
    const std::string json = toJson();
    std::fwrite(json.data(), 1, json.size(), fp);
    std::fclose(fp);
    return true;
}

} // namespace obs
} // namespace gws
