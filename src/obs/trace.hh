/**
 * @file
 * Hierarchical span tracer with Perfetto/Chrome trace-event export.
 *
 * Each thread records completed spans into its own buffer (plain
 * thread-local appends — no locks, no atomics on the hot path beyond
 * the single enabled-flag load), nested via a thread-local span stack
 * that also accumulates child time so every span knows its self time.
 * Cross-thread fan-outs (parallelFor) are stitched together with flow
 * events: the submitting thread emits a flow start, every chunk span
 * carries the flow id, and the exporter emits the matching flow
 * finish on the worker's track, so Perfetto draws the arrows from the
 * submitting call to the chunks it spawned.
 *
 * Lifecycle contract: the tracer is disabled by default; a disabled
 * SpanScope is one relaxed atomic load. traceBegin() / traceEnd()
 * toggle recording. Snapshot, export, and traceBegin's buffer clear
 * require quiescence — call them only when no parallel work is in
 * flight (the loop-completion handshake in parallelChunks orders all
 * worker-side writes before the submitting thread returns, which is
 * what makes the quiescent read race-free).
 *
 * Export format: Chrome trace-event JSON ("X" complete events with
 * microsecond timestamps, "s"/"f" flow events, "i" instants),
 * loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 */

#ifndef GWS_OBS_TRACE_HH
#define GWS_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gws {
namespace obs {

namespace trace_detail {

/** The global recording flag (read via traceEnabled()). */
extern std::atomic<bool> enabled;

/** Open a span; returns false when tracing is disabled. */
bool spanBegin(std::string name, std::uint64_t flowId);

/** Close the innermost span opened by this thread. */
void spanEnd();

} // namespace trace_detail

/** True while the tracer records spans. */
inline bool
traceEnabled()
{
    return trace_detail::enabled.load(std::memory_order_relaxed);
}

/** Clear all buffers and start recording. Requires quiescence. */
void traceBegin();

/** Stop recording (already-recorded spans stay exportable). */
void traceEnd();

/**
 * Bound each thread's event buffer to `cap` retained events (0 =
 * unbounded). Once a buffer is full it becomes a ring: the newest
 * event overwrites the oldest, and every overwrite increments the
 * `gws.trace.dropped_spans` counter — so a long streaming run keeps
 * the tail of its timeline at a fixed memory cost instead of growing
 * without bound. The default comes from the GWS_TRACE_CAP environment
 * variable (1M events per thread when unset). Requires quiescence.
 */
void setTraceCapPerThread(std::size_t cap);

/** The current per-thread retained-event cap (0 = unbounded). */
std::size_t traceCapPerThread();

/** Phase of a recorded trace event. */
enum class TracePhase : std::uint8_t {
    Complete,   ///< a span with start + duration ("X")
    Instant,    ///< a point event, e.g. a warning ("i")
    FlowStart,  ///< fan-out source ("s")
};

/** One recorded event, as exposed by traceSnapshot(). */
struct TraceEvent
{
    /** Span / event name. */
    std::string name;

    /** Free-form detail (warning text, ...); may be empty. */
    std::string detail;

    /** Event kind. */
    TracePhase phase = TracePhase::Complete;

    /** Start time, ns since traceBegin(). */
    std::uint64_t startNs = 0;

    /** Wall duration (Complete spans only). */
    std::uint64_t durationNs = 0;

    /** Duration minus time spent in child spans. */
    std::uint64_t selfNs = 0;

    /** Nesting depth on its thread (0 = top level). */
    std::uint32_t depth = 0;

    /** Tracer-assigned dense thread id (0 = first recording thread). */
    std::uint32_t tid = 0;

    /** Flow id linking fan-outs to chunks (0 = none). */
    std::uint64_t flowId = 0;
};

/**
 * RAII span. Constructing with tracing disabled records nothing and
 * costs one relaxed load; name strings are only materialised when
 * enabled.
 */
class SpanScope
{
  public:
    /** Open a span named by a literal. */
    explicit SpanScope(const char *name)
        : active(traceEnabled() &&
                 trace_detail::spanBegin(name, 0))
    {
    }

    /** Open a span with a dynamic name (e.g. per-config labels). */
    explicit SpanScope(std::string name)
        : active(traceEnabled() &&
                 trace_detail::spanBegin(std::move(name), 0))
    {
    }

    /** Open a chunk span bound to a fan-out's flow id. */
    SpanScope(const char *name, std::uint64_t flowId)
        : active(traceEnabled() &&
                 trace_detail::spanBegin(name, flowId))
    {
    }

    ~SpanScope()
    {
        if (active)
            trace_detail::spanEnd();
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    bool active;
};

/** Allocate a fresh flow id (never 0). */
std::uint64_t traceNewFlowId();

/**
 * Record a flow-start event on the calling thread (the fan-out
 * source); chunk spans carrying the same id become its targets.
 * No-op when tracing is disabled.
 */
void traceFlowStart(const char *name, std::uint64_t flowId);

/**
 * Record an instant event (a point in time, rendered as a marker).
 * Used for warnings so stray warn() calls show up in traces. No-op
 * when tracing is disabled.
 */
void traceInstant(const char *name, const std::string &detail);

/** Total recorded events across all threads. Requires quiescence. */
std::size_t traceEventCount();

/**
 * Copy out every recorded event (all threads, thread-major order).
 * Requires quiescence.
 */
std::vector<TraceEvent> traceSnapshot();

/**
 * Write the recorded events as Chrome trace-event JSON. Returns
 * false (after a warning) when the file cannot be opened. Requires
 * quiescence.
 */
bool writeChromeTrace(const std::string &path);

/** Per-span-name rollup row (total vs self time). */
struct SpanRollup
{
    /** Span name. */
    std::string name;

    /** Times the span was entered. */
    std::uint64_t count = 0;

    /** Total wall ns across entries. */
    std::uint64_t totalNs = 0;

    /** Total ns minus time attributed to child spans. */
    std::uint64_t selfNs = 0;
};

/** Rollup of all Complete spans, sorted by descending self time. */
std::vector<SpanRollup> traceRollup();

/** Human-readable rollup table (empty string when nothing traced). */
std::string traceRollupReport();

/**
 * Arm automatic export: writeChromeTrace(tracePath) and the metrics
 * registry's writeJson(metricsPath) run at flushObservability() (or
 * atexit, whichever comes first; the write happens once). Empty
 * paths disarm the corresponding export.
 */
void setTraceOutputPath(const std::string &tracePath);
void setMetricsOutputPath(const std::string &metricsPath);

/**
 * Arm Prometheus text-exposition export (metrics_text.hh) alongside
 * the JSON exports; same flush-once lifecycle.
 */
void setMetricsTextOutputPath(const std::string &metricsTextPath);

/** Write any armed exports now (idempotent). */
void flushObservability();

} // namespace obs
} // namespace gws

#endif // GWS_OBS_TRACE_HH
