/**
 * @file
 * Umbrella header for the observability layer: span tracer (trace.hh),
 * metrics registry (metrics.hh), and the Prometheus text exporter
 * (metrics_text.hh).
 */

#ifndef GWS_OBS_OBS_HH
#define GWS_OBS_OBS_HH

#include "obs/metrics.hh"
#include "obs/metrics_text.hh"
#include "obs/trace.hh"

#endif // GWS_OBS_OBS_HH
