/**
 * @file
 * Umbrella header for the observability layer: span tracer (trace.hh)
 * plus metrics registry (metrics.hh).
 */

#ifndef GWS_OBS_OBS_HH
#define GWS_OBS_OBS_HH

#include "obs/metrics.hh"
#include "obs/trace.hh"

#endif // GWS_OBS_OBS_HH
