/**
 * @file
 * Umbrella header for the observability layer: span tracer (trace.hh),
 * metrics registry (metrics.hh), the Prometheus text exporter
 * (metrics_text.hh), and the peak-RSS probe (mem.hh).
 */

#ifndef GWS_OBS_OBS_HH
#define GWS_OBS_OBS_HH

#include "obs/mem.hh"
#include "obs/metrics.hh"
#include "obs/metrics_text.hh"
#include "obs/trace.hh"

#endif // GWS_OBS_OBS_HH
