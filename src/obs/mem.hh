/**
 * @file
 * Process peak-RSS probe for the out-of-core memory story: reads the
 * kernel's resident-set high-water mark (Linux: VmHWM from
 * /proc/self/status) and publishes it as the `gws.mem.peak_rss_bytes`
 * gauge. Every bench reports it in the gws.bench.v1 envelope, and the
 * streamed-sweep CI smoke job asserts it stays under the enforced cap
 * — the flat-RSS proof the streaming engine exists for.
 *
 * On platforms without the procfs counter the probe degrades to 0
 * (never a guess), so callers can gate on a zero value.
 */

#ifndef GWS_OBS_MEM_HH
#define GWS_OBS_MEM_HH

#include <cstddef>

namespace gws {
namespace obs {

/**
 * Peak resident set size of this process in bytes (VmHWM), or 0 when
 * the platform offers no counter. Monotone over the process lifetime:
 * freeing memory never lowers it.
 */
std::size_t peakRssBytes();

/**
 * Sample peakRssBytes() into the `gws.mem.peak_rss_bytes` gauge.
 * Called by flushObservability() so every export carries the final
 * high-water mark; cheap enough to call at any checkpoint.
 */
void updatePeakRssGauge();

} // namespace obs
} // namespace gws

#endif // GWS_OBS_MEM_HH
