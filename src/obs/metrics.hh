/**
 * @file
 * Unified metrics registry: typed Counter / Gauge / Histogram metrics
 * registered by name, one process-global registry, one JSON export
 * schema (`gws.metrics.v1`). This replaces the hand-grown
 * field-per-stat pattern of RuntimeCounters — new stats register
 * themselves here and show up in `--metrics-out` and the
 * `--runtime-stats` report without touching a central struct.
 *
 * Hot-path contract: metric *lookup* (by name) takes the registry
 * mutex and is expected to happen once, at first use, behind a
 * function-local static; metric *updates* are single relaxed atomic
 * operations and are safe from any thread. Handles returned by the
 * registry are stable for the life of the process.
 *
 * Histograms are log2-bucketed (bucket i covers [2^(i-1), 2^i - 1],
 * bucket 0 is the exact value 0), sized for nanosecond magnitudes but
 * usable for any uint64 quantity; exact sum and count ride along so
 * means stay precise.
 */

#ifndef GWS_OBS_METRICS_HH
#define GWS_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gws {
namespace obs {

/** Kind of a registered metric (drives the export schema). */
enum class MetricType { Counter, Gauge, Histogram, Info };

/** Printable name of a metric type ("counter", ...). */
const char *toString(MetricType type);

/** Monotone event count. */
class Counter
{
  public:
    /** Add `delta` to the counter. */
    void
    add(std::uint64_t delta)
    {
        total.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Add one. */
    void increment() { add(1); }

    /** Current value. */
    std::uint64_t
    value() const
    {
        return total.load(std::memory_order_relaxed);
    }

    /** Zero the counter (registry reset). */
    void reset() { total.store(0, std::memory_order_relaxed); }

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

  private:
    friend class MetricsRegistry;
    Counter() = default;

    std::atomic<std::uint64_t> total{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    /** Set the gauge. */
    void
    set(double v)
    {
        current.store(v, std::memory_order_relaxed);
    }

    /** Current value. */
    double
    value() const
    {
        return current.load(std::memory_order_relaxed);
    }

    /** Zero the gauge (registry reset). */
    void reset() { set(0.0); }

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

  private:
    friend class MetricsRegistry;
    Gauge() = default;

    std::atomic<double> current{0.0};
};

/** Log2-bucketed distribution with exact sum and count. */
class Histogram
{
  public:
    /** Bucket slots: value 0, then one per power of two up to 2^63. */
    static constexpr std::size_t numBuckets = 65;

    /** Bucket a value lands in: 0 for 0, else floor(log2 v) + 1. */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Smallest value of bucket `i` (0, 1, 2, 4, 8, ...). */
    static std::uint64_t bucketLowerBound(std::size_t i);

    /** Largest value of bucket `i` (0, 1, 3, 7, 15, ...). */
    static std::uint64_t bucketUpperBound(std::size_t i);

    /** Record one observation. */
    void record(std::uint64_t value);

    /** Observations recorded. */
    std::uint64_t
    count() const
    {
        return observations.load(std::memory_order_relaxed);
    }

    /** Exact sum of all observations. */
    std::uint64_t
    sum() const
    {
        return totalSum.load(std::memory_order_relaxed);
    }

    /** Mean observation (0.0 when empty). */
    double mean() const;

    /** Observations that landed in bucket `i`. */
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets[i].load(std::memory_order_relaxed);
    }

    /** Zero every bucket, the sum, and the count (registry reset). */
    void reset();

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

  private:
    friend class MetricsRegistry;
    Histogram() = default;

    std::atomic<std::uint64_t> buckets[numBuckets] = {};
    std::atomic<std::uint64_t> totalSum{0};
    std::atomic<std::uint64_t> observations{0};
};

/** One row of a registry snapshot (export / report plumbing). */
struct MetricSnapshot
{
    /** Registered name. */
    std::string name;

    /** Metric kind. */
    MetricType type = MetricType::Counter;

    /** Counter value (counters only). */
    std::uint64_t counterValue = 0;

    /** Gauge value (gauges only). */
    double gaugeValue = 0.0;

    /** Histogram count / sum (histograms only). */
    std::uint64_t histCount = 0;
    std::uint64_t histSum = 0;

    /** Non-empty histogram buckets as (lowerBound, upperBound, count). */
    struct Bucket
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        std::uint64_t count = 0;
    };
    std::vector<Bucket> buckets;

    /** Annotation text (info metrics only). */
    std::string infoValue;
};

/**
 * Quantile estimate from a histogram snapshot's log2 buckets: the
 * bucket holding the nearest-rank observation, interpolated linearly
 * at the rank's midpoint position within the bucket. Exact up to the
 * bucket's width — the estimate always lands in the same log2 bucket
 * as the true nearest-rank percentile of the raw samples. `q` is
 * clamped to [0, 1]; an empty histogram yields 0.0.
 */
double snapshotQuantile(const MetricSnapshot &row, double q);

/**
 * The process-global name -> metric table. Names are registered on
 * first use (get-or-create); re-requesting a name with a different
 * type is an internal error (panic).
 */
class MetricsRegistry
{
  public:
    /** Get or create the counter `name`. */
    Counter &counter(const std::string &name);

    /** Get or create the gauge `name`. */
    Gauge &gauge(const std::string &name);

    /** Get or create the histogram `name`. */
    Histogram &histogram(const std::string &name);

    /**
     * Set the info metric `name` to an annotation string (build
     * revision, protocol identity, ...). Info metrics export as
     * `{"type": "info", "value": "..."}` in JSON and as a
     * constant-1 sample with a `value` label in Prometheus text, the
     * conventional shape for identity metrics.
     */
    void setInfo(const std::string &name, const std::string &value);

    /** Snapshot every metric, sorted by name. */
    std::vector<MetricSnapshot> snapshot() const;

    /** Snapshot only metrics whose name starts with `prefix`. */
    std::vector<MetricSnapshot>
    snapshotPrefix(const std::string &prefix) const;

    /** Zero every registered metric (entries stay registered). */
    void resetAll();

    /** Zero metrics whose name starts with `prefix` (others keep
     *  their values; entries stay registered). */
    void resetPrefix(const std::string &prefix);

    /**
     * Serialize the whole registry to the `gws.metrics.v1` JSON
     * schema (one object, `metrics` array sorted by name).
     */
    std::string toJson() const;

    /**
     * Write toJson() to `path`. Returns false (after a warning) when
     * the file cannot be opened.
     */
    bool writeJson(const std::string &path) const;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  private:
    friend MetricsRegistry &metricsRegistry();

    MetricsRegistry();

    struct Entry;
    struct Impl;

    /** Find-or-create `name` with `type` (panics on a type clash). */
    Entry &entryFor(const std::string &name, MetricType type);

    /** Heap pimpl (never freed: the registry lives forever). */
    Impl *impl;
};

/** The process-global registry. */
MetricsRegistry &metricsRegistry();

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace obs
} // namespace gws

#endif // GWS_OBS_METRICS_HH
