/**
 * @file
 * Shader vectors: the paper's frame-interval signature. A shader
 * vector is the set of shader programs bound by any draw inside a
 * frame interval; two intervals with equal shader vectors render the
 * same environment and belong to the same phase.
 *
 * Stored as a fixed-universe bitset (shader IDs are dense per trace),
 * so equality, intersection, and Jaccard similarity are word-parallel.
 */

#ifndef GWS_PHASE_SHADER_VECTOR_HH
#define GWS_PHASE_SHADER_VECTOR_HH

#include <cstdint>
#include <vector>

#include "shader/shader_program.hh"
#include "trace/frame.hh"

namespace gws {

/** Bitset over a trace's shader IDs. */
class ShaderVector
{
  public:
    /** Empty vector over a universe of the given size. */
    explicit ShaderVector(std::size_t universe = 0);

    /** Mark a shader as present; panics if out of universe. */
    void set(ShaderId id);

    /** True if the shader is present. */
    bool test(ShaderId id) const;

    /** Number of shaders present. */
    std::size_t count() const;

    /** Universe size the vector was constructed with. */
    std::size_t universe() const { return universeSize; }

    /** Present shader IDs, ascending. */
    std::vector<ShaderId> ids() const;

    /** |a AND b|. */
    std::size_t intersectionCount(const ShaderVector &other) const;

    /** |a OR b|. */
    std::size_t unionCount(const ShaderVector &other) const;

    /**
     * Jaccard similarity |a AND b| / |a OR b|; 1 when both are empty.
     * Panics on universe mismatch.
     */
    double jaccard(const ShaderVector &other) const;

    /** Exact set equality (requires equal universes). */
    bool operator==(const ShaderVector &other) const = default;

  private:
    std::size_t universeSize;
    std::vector<std::uint64_t> words;
};

/**
 * Shader vector of one frame. When pixel_only is set (the paper's
 * choice), only pixel shaders are recorded — pixel-shader pools are
 * what distinguishes environments; vertex shaders are widely shared.
 */
ShaderVector frameShaderVector(const Frame &frame, std::size_t universe,
                               bool pixel_only);

} // namespace gws

#endif // GWS_PHASE_SHADER_VECTOR_HH
