/**
 * @file
 * Phase detection over a playthrough trace: partition the frame
 * sequence into fixed-length intervals, characterize each interval by
 * its shader vector, and group intervals whose shader vectors match
 * (exact equality by default, optional Jaccard threshold). Recurring
 * phase IDs expose the repetitive behavior the paper exploits.
 */

#ifndef GWS_PHASE_PHASE_DETECT_HH
#define GWS_PHASE_PHASE_DETECT_HH

#include <cstdint>
#include <vector>

#include "phase/shader_vector.hh"
#include "trace/trace.hh"

namespace gws {

/** Phase-detection parameters. */
struct PhaseConfig
{
    /** Frames per interval (the paper's granularity knob). */
    std::uint32_t intervalFrames = 10;

    /** Record only pixel shaders in the shader vector. */
    bool pixelShadersOnly = true;

    /**
     * Minimum Jaccard similarity to an existing phase's signature for
     * an interval to join it; 1.0 means exact shader-vector equality.
     */
    double similarityThreshold = 1.0;
};

/** One frame interval with its signature and phase label. */
struct Interval
{
    /** First frame of the interval (inclusive). */
    std::uint32_t beginFrame = 0;

    /** One past the last frame (exclusive). */
    std::uint32_t endFrame = 0;

    /** Shader vector of the interval. */
    ShaderVector shaders;

    /** Assigned phase id (dense, in order of first appearance). */
    std::uint32_t phaseId = 0;

    /** Frames covered. */
    std::uint32_t frames() const { return endFrame - beginFrame; }
};

/** The phase structure of one trace. */
struct PhaseTimeline
{
    /** Intervals in playthrough order. */
    std::vector<Interval> intervals;

    /** Number of distinct phases. */
    std::uint32_t phaseCount = 0;

    /** Phase id -> interval indices belonging to it, in order. */
    std::vector<std::vector<std::size_t>> phaseIntervals;

    /**
     * Phase id -> representative interval index (the phase's first
     * occurrence, the natural choice for capture-once workflows).
     */
    std::vector<std::size_t> representatives;

    /** Phase id sequence over intervals (the "timeline string"). */
    std::vector<std::uint32_t> phaseSequence() const;

    /** Occurrence count of each phase. */
    std::vector<std::size_t> occurrenceCounts() const;

    /**
     * True when some phase recurs (occurs in two or more intervals) —
     * the paper's "phases exist" condition that makes subsetting pay.
     */
    bool hasRecurringPhase() const;

    /**
     * Fraction of intervals covered by representative intervals:
     * phaseCount / intervals. Lower is better for subsetting.
     */
    double representativeFraction() const;
};

/**
 * Detect phases in a trace. The last partial interval (fewer than
 * intervalFrames frames) is kept as its own interval. Panics on an
 * empty trace or a zero interval length.
 */
PhaseTimeline detectPhases(const Trace &trace, const PhaseConfig &config);

} // namespace gws

#endif // GWS_PHASE_PHASE_DETECT_HH
