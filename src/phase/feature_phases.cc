#include "phase/feature_phases.hh"

#include "cluster/leader.hh"
#include "features/extractor.hh"
#include "runtime/counters.hh"
#include "util/logging.hh"

namespace gws {

PhaseTimeline
detectPhasesByFeatures(const Trace &trace,
                       const FeaturePhaseConfig &config)
{
    GWS_ASSERT(trace.frameCount() > 0,
               "feature-phase detection on empty trace");
    GWS_ASSERT(config.intervalFrames >= 1,
               "interval length must be >= 1");
    ScopedRegion region("phase.detectByFeatures");

    const std::size_t universe = trace.shaders().size();
    const FeatureExtractor extractor(trace);

    PhaseTimeline timeline;
    std::vector<FeatureVector> centroids;

    // Partition into intervals; centroid = mean draw feature vector.
    const auto n_frames = static_cast<std::uint32_t>(trace.frameCount());
    for (std::uint32_t begin = 0; begin < n_frames;
         begin += config.intervalFrames) {
        Interval iv;
        iv.beginFrame = begin;
        iv.endFrame = std::min(begin + config.intervalFrames, n_frames);
        iv.shaders = ShaderVector(universe);

        FeatureVector centroid;
        std::uint64_t draws = 0;
        for (std::uint32_t f = iv.beginFrame; f < iv.endFrame; ++f) {
            const Frame &frame = trace.frame(f);
            for (const auto &draw : frame.draws()) {
                const FeatureVector v = extractor.extract(draw);
                for (std::size_t d = 0; d < numFeatureDims; ++d)
                    centroid.at(d) += v.at(d);
                ++draws;
                if (draw.state.pixelShader != invalidShaderId)
                    iv.shaders.set(draw.state.pixelShader);
            }
        }
        if (draws > 0) {
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                centroid.at(d) /= static_cast<double>(draws);
        }
        centroids.push_back(centroid);
        timeline.intervals.push_back(std::move(iv));
    }

    // Normalize across intervals, then leader-cluster the centroids.
    const Normalizer norm = Normalizer::fit(centroids);
    LeaderConfig lc;
    lc.radius = config.radius;
    const Clustering clusters =
        leaderCluster(norm.applyAll(centroids), lc);

    // Relabel clusters in first-appearance order (the refinement pass
    // can move an interval ahead of its cluster's founder, so leader
    // IDs alone do not guarantee that).
    std::vector<std::uint32_t> relabel(clusters.k, UINT32_MAX);
    timeline.phaseCount = 0;
    for (std::size_t i = 0; i < timeline.intervals.size(); ++i) {
        const std::uint32_t raw = clusters.assignment[i];
        if (relabel[raw] == UINT32_MAX) {
            relabel[raw] = timeline.phaseCount++;
            timeline.phaseIntervals.emplace_back();
            timeline.representatives.push_back(i);
        }
        const std::uint32_t phase = relabel[raw];
        timeline.intervals[i].phaseId = phase;
        timeline.phaseIntervals[phase].push_back(i);
    }
    return timeline;
}

} // namespace gws
