#include "phase/phase_detect.hh"

#include "runtime/counters.hh"

#include "util/logging.hh"

namespace gws {

std::vector<std::uint32_t>
PhaseTimeline::phaseSequence() const
{
    std::vector<std::uint32_t> out;
    out.reserve(intervals.size());
    for (const auto &iv : intervals)
        out.push_back(iv.phaseId);
    return out;
}

std::vector<std::size_t>
PhaseTimeline::occurrenceCounts() const
{
    std::vector<std::size_t> out(phaseCount, 0);
    for (const auto &iv : intervals)
        ++out[iv.phaseId];
    return out;
}

bool
PhaseTimeline::hasRecurringPhase() const
{
    for (std::size_t n : occurrenceCounts()) {
        if (n >= 2)
            return true;
    }
    return false;
}

double
PhaseTimeline::representativeFraction() const
{
    if (intervals.empty())
        return 0.0;
    return static_cast<double>(phaseCount) /
           static_cast<double>(intervals.size());
}

PhaseTimeline
detectPhases(const Trace &trace, const PhaseConfig &config)
{
    GWS_ASSERT(trace.frameCount() > 0, "phase detection on empty trace");
    GWS_ASSERT(config.intervalFrames >= 1, "interval length must be >= 1");
    GWS_ASSERT(config.similarityThreshold > 0.0 &&
                   config.similarityThreshold <= 1.0,
               "similarity threshold out of (0,1]");
    ScopedRegion region("phase.detect");

    const std::size_t universe = trace.shaders().size();
    PhaseTimeline timeline;

    // Signature of each phase = shader vector of its first interval.
    std::vector<ShaderVector> signatures;

    const auto n_frames = static_cast<std::uint32_t>(trace.frameCount());
    for (std::uint32_t begin = 0; begin < n_frames;
         begin += config.intervalFrames) {
        Interval iv;
        iv.beginFrame = begin;
        iv.endFrame = std::min(begin + config.intervalFrames, n_frames);
        iv.shaders = ShaderVector(universe);
        for (std::uint32_t f = iv.beginFrame; f < iv.endFrame; ++f) {
            const ShaderVector fv = frameShaderVector(
                trace.frame(f), universe, config.pixelShadersOnly);
            for (ShaderId id : fv.ids())
                iv.shaders.set(id);
        }

        // Match against existing phases in first-appearance order.
        std::uint32_t phase = timeline.phaseCount;
        for (std::size_t p = 0; p < signatures.size(); ++p) {
            const bool match =
                config.similarityThreshold >= 1.0
                    ? iv.shaders == signatures[p]
                    : iv.shaders.jaccard(signatures[p]) >=
                          config.similarityThreshold;
            if (match) {
                phase = static_cast<std::uint32_t>(p);
                break;
            }
        }
        iv.phaseId = phase;
        if (phase == timeline.phaseCount) {
            signatures.push_back(iv.shaders);
            timeline.phaseIntervals.emplace_back();
            timeline.representatives.push_back(timeline.intervals.size());
            ++timeline.phaseCount;
        }
        timeline.phaseIntervals[phase].push_back(
            timeline.intervals.size());
        timeline.intervals.push_back(std::move(iv));
    }
    return timeline;
}

} // namespace gws
