#include "phase/shader_vector.hh"

#include <bit>

#include "util/logging.hh"

namespace gws {

ShaderVector::ShaderVector(std::size_t universe)
    : universeSize(universe), words((universe + 63) / 64, 0)
{
}

void
ShaderVector::set(ShaderId id)
{
    GWS_ASSERT(id < universeSize, "shader id ", id,
               " outside universe of ", universeSize);
    words[id / 64] |= std::uint64_t{1} << (id % 64);
}

bool
ShaderVector::test(ShaderId id) const
{
    if (id >= universeSize)
        return false;
    return (words[id / 64] >> (id % 64)) & 1;
}

std::size_t
ShaderVector::count() const
{
    std::size_t n = 0;
    for (std::uint64_t w : words)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

std::vector<ShaderId>
ShaderVector::ids() const
{
    std::vector<ShaderId> out;
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            const int bit = std::countr_zero(w);
            out.push_back(static_cast<ShaderId>(wi * 64 + bit));
            w &= w - 1;
        }
    }
    return out;
}

std::size_t
ShaderVector::intersectionCount(const ShaderVector &other) const
{
    GWS_ASSERT(universeSize == other.universeSize,
               "shader-vector universe mismatch");
    std::size_t n = 0;
    for (std::size_t i = 0; i < words.size(); ++i)
        n += static_cast<std::size_t>(
            std::popcount(words[i] & other.words[i]));
    return n;
}

std::size_t
ShaderVector::unionCount(const ShaderVector &other) const
{
    GWS_ASSERT(universeSize == other.universeSize,
               "shader-vector universe mismatch");
    std::size_t n = 0;
    for (std::size_t i = 0; i < words.size(); ++i)
        n += static_cast<std::size_t>(
            std::popcount(words[i] | other.words[i]));
    return n;
}

double
ShaderVector::jaccard(const ShaderVector &other) const
{
    const std::size_t u = unionCount(other);
    if (u == 0)
        return 1.0;
    return static_cast<double>(intersectionCount(other)) /
           static_cast<double>(u);
}

ShaderVector
frameShaderVector(const Frame &frame, std::size_t universe,
                  bool pixel_only)
{
    ShaderVector v(universe);
    for (const auto &draw : frame.draws()) {
        if (draw.state.pixelShader != invalidShaderId)
            v.set(draw.state.pixelShader);
        if (!pixel_only && draw.state.vertexShader != invalidShaderId)
            v.set(draw.state.vertexShader);
    }
    return v;
}

} // namespace gws
