/**
 * @file
 * SimPoint-style alternative to shader-vector phase detection.
 *
 * SimPoint groups CPU execution intervals by clustering basic-block
 * vectors; the analogue here characterizes each frame interval by the
 * mean micro-architecture-independent feature vector of its draws and
 * leader-clusters those centroids. The paper's insight is that for 3D
 * workloads the *shader vector* is a cheaper and sharper signature;
 * this module exists so the ablation bench can quantify that claim
 * against the established prior technique.
 */

#ifndef GWS_PHASE_FEATURE_PHASES_HH
#define GWS_PHASE_FEATURE_PHASES_HH

#include "phase/phase_detect.hh"

namespace gws {

/** Feature-clustering phase detection parameters. */
struct FeaturePhaseConfig
{
    /** Frames per interval (same knob as PhaseConfig). */
    std::uint32_t intervalFrames = 10;

    /**
     * Leader radius over normalized interval centroids. Centroids are
     * z-scored across the trace's intervals before clustering.
     */
    double radius = 1.0;
};

/**
 * Detect phases by clustering interval feature centroids. The result
 * uses the same PhaseTimeline structure as detectPhases() (intervals
 * still carry their shader vectors for reference), so the subsetting
 * pipeline can consume either method interchangeably. Phase IDs are
 * dense in order of first appearance.
 */
PhaseTimeline detectPhasesByFeatures(const Trace &trace,
                                     const FeaturePhaseConfig &config);

} // namespace gws

#endif // GWS_PHASE_FEATURE_PHASES_HH
