#include "features/extractor.hh"

#include <cmath>

#include "util/logging.hh"

namespace gws {

FeatureVector
FeatureExtractor::extract(const DrawCall &draw) const
{
    const auto &vs = trace.shaders().get(draw.state.vertexShader);
    const auto &ps = trace.shaders().get(draw.state.pixelShader);

    const auto vertices = static_cast<double>(draw.vertices());
    const auto prims = static_cast<double>(draw.primitives());
    const auto pixels = static_cast<double>(draw.shadedPixels);

    std::uint64_t tex_bytes = 0;
    for (TextureId id : draw.state.textures)
        tex_bytes += trace.texture(id).sizeBytes();

    const auto &rt = trace.renderTarget(draw.state.renderTarget);
    double rt_bytes = pixels * rt.bytesPerPixel *
                      (draw.state.blendEnabled ? 2.0 : 1.0);
    if (draw.state.depthTestEnabled)
        rt_bytes += pixels * 4.0;
    if (draw.state.depthWriteEnabled)
        rt_bytes += static_cast<double>(draw.coveredPixels()) * 4.0;

    FeatureVector f;
    f[FeatureDim::LogVertices] = std::log1p(vertices);
    f[FeatureDim::LogPrimitives] = std::log1p(prims);
    f[FeatureDim::LogPixels] = std::log1p(pixels);
    f[FeatureDim::LogVsOps] = std::log1p(
        vertices * static_cast<double>(vs.mix().totalOps()));
    f[FeatureDim::LogPsOps] = std::log1p(
        pixels * static_cast<double>(ps.mix().totalOps()));
    f[FeatureDim::LogTexSamples] = std::log1p(
        pixels * static_cast<double>(ps.mix().texOps));
    f[FeatureDim::LogTexFootprint] = std::log1p(
        static_cast<double>(tex_bytes));
    f[FeatureDim::LogVertexBytes] = std::log1p(
        static_cast<double>(draw.vertexFetchBytes()));
    f[FeatureDim::LogRtBytes] = std::log1p(rt_bytes);
    f[FeatureDim::PsOpsPerPixel] = static_cast<double>(
        ps.mix().arithmeticOps());
    f[FeatureDim::TexPerPixel] = static_cast<double>(ps.mix().texOps);
    f[FeatureDim::Overdraw] = draw.overdraw;
    f[FeatureDim::TexLocality] = draw.texLocality;
    f[FeatureDim::BlendFlag] = draw.state.blendEnabled ? 1.0 : 0.0;
    f[FeatureDim::DepthWriteFlag] = draw.state.depthWriteEnabled ? 1.0
                                                                 : 0.0;
    return f;
}

std::vector<FeatureVector>
FeatureExtractor::extractFrame(const Frame &frame) const
{
    std::vector<FeatureVector> out;
    out.reserve(frame.drawCount());
    for (const auto &draw : frame.draws())
        out.push_back(extract(draw));
    return out;
}

Normalizer
Normalizer::fit(const std::vector<FeatureVector> &sample)
{
    GWS_ASSERT(!sample.empty(), "cannot fit a normalizer on no samples");
    Normalizer n;
    const double count = static_cast<double>(sample.size());
    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        double sum = 0.0;
        for (std::size_t s = 0; s < sample.size(); ++s) {
            const double x = sample[s].at(d);
            if (!std::isfinite(x))
                throw FeatureError(
                    "non-finite feature value " + std::to_string(x) +
                    " in dimension '" +
                    toString(static_cast<FeatureDim>(d)) +
                    "' of sample " + std::to_string(s));
            sum += x;
        }
        n.means[d] = sum / count;
        double var = 0.0;
        for (const auto &v : sample) {
            const double delta = v.at(d) - n.means[d];
            var += delta * delta;
        }
        n.stddevs[d] = std::sqrt(var / count);
    }
    return n;
}

FeatureVector
Normalizer::apply(const FeatureVector &v) const
{
    FeatureVector out;
    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        // Degenerate (constant) dimensions carry no information for
        // this sample; map them to 0 instead of dividing by ~0.
        out.at(d) = stddevs[d] > 1e-12
                        ? (v.at(d) - means[d]) / stddevs[d]
                        : 0.0;
    }
    return out;
}

std::vector<FeatureVector>
Normalizer::applyAll(const std::vector<FeatureVector> &vs) const
{
    std::vector<FeatureVector> out;
    out.reserve(vs.size());
    for (const auto &v : vs)
        out.push_back(apply(v));
    return out;
}

} // namespace gws
