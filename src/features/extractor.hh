/**
 * @file
 * Feature extraction from draw calls. The extractor reads only the
 * trace (API state + capture statistics); it cannot observe any GPU
 * configuration, making the features micro-architecture independent by
 * construction.
 */

#ifndef GWS_FEATURES_EXTRACTOR_HH
#define GWS_FEATURES_EXTRACTOR_HH

#include <vector>

#include "features/feature_vector.hh"
#include "trace/trace.hh"
#include "util/error.hh"

namespace gws {

/**
 * Typed failure of the feature pipeline: a non-finite feature value
 * (NaN/inf from a degenerate draw) reached Normalizer::fit, where it
 * would silently poison every mean, stddev and downstream distance.
 * Derives from IoError so runGuardedMain turns it into a clean exit.
 */
class FeatureError : public IoError
{
  public:
    using IoError::IoError;
};

/** Extracts feature vectors from draws of one trace. */
class FeatureExtractor
{
  public:
    /** Bind to the trace whose resource tables the draws reference. */
    explicit FeatureExtractor(const Trace &trace) : trace(trace) {}

    /** Features of one draw. */
    FeatureVector extract(const DrawCall &draw) const;

    /** Features of every draw in a frame, in submission order. */
    std::vector<FeatureVector> extractFrame(const Frame &frame) const;

  private:
    const Trace &trace;
};

/**
 * Per-dimension affine normalization fitted on a sample (z-score with
 * degenerate dimensions mapped to 0). Fit once per frame, then apply
 * to that frame's draws, so clustering radii are scale-free.
 */
class Normalizer
{
  public:
    /**
     * Fit mean/stddev per dimension; requires at least one sample.
     * Throws FeatureError if any input feature is non-finite — a NaN
     * or inf here would otherwise propagate into every normalized
     * vector and make clustering distances meaningless.
     */
    static Normalizer fit(const std::vector<FeatureVector> &sample);

    /** Normalized copy of one vector. */
    FeatureVector apply(const FeatureVector &v) const;

    /** Normalized copies of a batch. */
    std::vector<FeatureVector>
    applyAll(const std::vector<FeatureVector> &vs) const;

    /** Fitted mean of a dimension. */
    double mean(FeatureDim d) const
    {
        return means[static_cast<std::size_t>(d)];
    }

    /** Fitted standard deviation of a dimension. */
    double stddev(FeatureDim d) const
    {
        return stddevs[static_cast<std::size_t>(d)];
    }

  private:
    std::array<double, numFeatureDims> means{};
    std::array<double, numFeatureDims> stddevs{};
};

} // namespace gws

#endif // GWS_FEATURES_EXTRACTOR_HH
