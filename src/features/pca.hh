/**
 * @file
 * Principal-component decorrelation of normalized feature vectors.
 *
 * The per-frame pipeline is Normalizer (z-score) -> PcaTransform
 * (rotate into the eigenbasis of the sample covariance, optionally
 * whiten and truncate to a cumulative-variance fraction). The
 * eigendecomposition is a cyclic Jacobi solver with a fixed sweep
 * order and no data-dependent pivoting, so a given sample produces
 * bit-identical transforms on every platform and thread count — the
 * same reproducibility contract the rest of the pipeline carries.
 *
 * Feature-space selection follows the A/B escape-hatch pattern of
 * GWS_NAIVE_KMEANS: `GWS_NAIVE_FEATURES=1` forces the raw normalized
 * space regardless of any other knob, `--pca=<frac>` / `GWS_PCA`
 * opt into the projected space. The default is the raw space, so
 * existing outputs stay byte-identical unless PCA is requested.
 */

#ifndef GWS_FEATURES_PCA_HH
#define GWS_FEATURES_PCA_HH

#include <array>
#include <cstddef>
#include <vector>

#include "features/feature_vector.hh"

namespace gws {

/** Eigendecomposition of a small dense symmetric matrix. */
struct EigenDecomposition
{
    /** Eigenvalues, sorted descending (ties broken by input index). */
    std::vector<double> values;

    /**
     * Unit eigenvectors, one per eigenvalue, matching order. Each is
     * sign-canonicalized: the largest-magnitude component (first such
     * index on ties) is made positive, so the decomposition is unique
     * and platform-independent.
     */
    std::vector<std::vector<double>> vectors;
};

/**
 * Eigendecomposition of the n x n symmetric matrix `m` (row-major,
 * upper triangle trusted) by cyclic Jacobi rotations. The sweep
 * order is fixed (p < q in row-major order) and convergence is a
 * deterministic off-diagonal-norm threshold, so identical inputs
 * give bit-identical outputs everywhere.
 */
EigenDecomposition jacobiEigenSymmetric(const std::vector<double> &m,
                                        std::size_t n);

/** Tuning knobs for PcaTransform::fit. */
struct PcaConfig
{
    /**
     * Keep the smallest leading set of components whose cumulative
     * variance reaches this fraction of the total. Values >= 1.0
     * select the exact identity transform (no rotation, no
     * whitening), which is the documented A/B anchor: clustering at
     * --pca=1.0 matches the naive feature space bit for bit.
     */
    double varianceFraction = 1.0;

    /** Scale each kept component to unit variance. */
    bool whiten = true;
};

/**
 * A fitted PCA projection: rotate into the covariance eigenbasis,
 * whiten, truncate. Kept coordinates land in dimensions
 * [0, componentCount()); the rest of the FeatureVector is zero, so
 * downstream distance math needs no new vector type.
 */
class PcaTransform
{
  public:
    /**
     * Fit on a normalized sample. A varianceFraction >= 1.0 or a
     * (near-)zero total variance yields the identity transform.
     */
    static PcaTransform fit(const std::vector<FeatureVector> &sample,
                            const PcaConfig &config = PcaConfig{});

    /** Project one vector. */
    FeatureVector apply(const FeatureVector &v) const;

    /** Project a batch. */
    std::vector<FeatureVector>
    applyAll(const std::vector<FeatureVector> &vs) const;

    /** Number of kept components (numFeatureDims when identity). */
    std::size_t componentCount() const { return components; }

    /** Eigenvalue of kept component `i` (descending order). */
    double eigenvalue(std::size_t i) const { return values.at(i); }

    /** True when apply() is the exact identity. */
    bool isIdentity() const { return identity; }

  private:
    bool identity = true;
    std::size_t components = numFeatureDims;
    std::vector<double> values;
    /** Row j = eigenvector of component j, pre-scaled for whitening. */
    std::vector<std::array<double, numFeatureDims>> basis;
};

/** Which feature space the clustering stages see. */
enum class FeaturePath
{
    /** Resolve from GWS_NAIVE_FEATURES / --pca / GWS_PCA. */
    Auto,
    /** Raw normalized features (the historical behaviour). */
    Naive,
    /** PCA-projected features. */
    Pca,
};

/** Printable name of a feature path. */
const char *toString(FeaturePath path);

/** Sentinel for FeatureSpaceConfig::dropDim: drop nothing. */
constexpr std::size_t noDropDim = static_cast<std::size_t>(-1);

/** Per-pipeline feature-space selection. */
struct FeatureSpaceConfig
{
    /** Explicit path wins; Auto consults env knobs and the default. */
    FeaturePath path = FeaturePath::Auto;

    /** Cumulative-variance fraction when path is Pca. */
    double pcaVariance = 1.0;

    /**
     * Ablation hook: zero this normalized dimension before any
     * projection, removing its information from clustering while
     * keeping vector shapes intact. noDropDim = keep everything.
     */
    std::size_t dropDim = noDropDim;
};

/**
 * Set the process-global default feature space that Auto resolves to
 * (what `--pca` installs). Overrides GWS_PCA but not
 * GWS_NAIVE_FEATURES, which always wins as the escape hatch.
 */
void setDefaultFeatureSpace(const FeatureSpaceConfig &config);

/** Resolve Auto against env knobs and the process default. */
FeatureSpaceConfig resolveFeatureSpace(const FeatureSpaceConfig &config);

/**
 * Apply the configured feature-space transform to one frame's
 * normalized points: resolve Auto, zero dropDim if set, then fit and
 * apply PCA when the resolved path asks for it. Serial and
 * deterministic — safe to call from any pipeline stage.
 */
std::vector<FeatureVector>
projectFeatures(std::vector<FeatureVector> points,
                const FeatureSpaceConfig &config);

} // namespace gws

#endif // GWS_FEATURES_PCA_HH
