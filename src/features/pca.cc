#include "features/pca.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "obs/metrics.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace gws {

namespace {

/** Relative off-diagonal threshold that counts as converged. */
constexpr double kJacobiTolerance = 1e-14;

/** Hard cap on cyclic sweeps; 15x15 converges in well under 10. */
constexpr std::size_t kMaxSweeps = 64;

double
offDiagonalNorm(const std::vector<double> &a, std::size_t n)
{
    double sum = 0.0;
    for (std::size_t p = 0; p < n; ++p)
        for (std::size_t q = p + 1; q < n; ++q)
            sum += a[p * n + q] * a[p * n + q];
    return std::sqrt(sum);
}

} // namespace

EigenDecomposition
jacobiEigenSymmetric(const std::vector<double> &m, std::size_t n)
{
    GWS_ASSERT(m.size() == n * n, "matrix size mismatch");
    GWS_ASSERT(n > 0, "empty matrix");

    // Work on a symmetrized copy so only the upper triangle of the
    // input is trusted, and accumulate rotations into v (row-major,
    // columns are eigenvectors).
    std::vector<double> a(n * n, 0.0);
    for (std::size_t p = 0; p < n; ++p)
        for (std::size_t q = p; q < n; ++q)
            a[p * n + q] = a[q * n + p] = m[p * n + q];
    std::vector<double> v(n * n, 0.0);
    for (std::size_t p = 0; p < n; ++p)
        v[p * n + p] = 1.0;

    double scale = 0.0;
    for (std::size_t p = 0; p < n; ++p)
        for (std::size_t q = 0; q < n; ++q)
            scale = std::max(scale, std::fabs(a[p * n + q]));
    const double tol = kJacobiTolerance * std::max(scale, 1.0);

    // Cyclic sweeps in fixed (p, q) row-major order: no data-dependent
    // pivot selection, so the rotation sequence — and therefore every
    // rounding decision — is identical on every platform.
    for (std::size_t sweep = 0; sweep < kMaxSweeps; ++sweep) {
        if (offDiagonalNorm(a, n) <= tol)
            break;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a[p * n + q];
                if (std::fabs(apq) <= tol)
                    continue;
                const double app = a[p * n + p];
                const double aqq = a[q * n + q];
                const double theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle (Golub & Van
                // Loan): the smaller root of t^2 + 2*theta*t - 1 = 0.
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a[k * n + p];
                    const double akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a[p * n + k];
                    const double aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v[k * n + p];
                    const double vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort by eigenvalue descending; equal values keep input-column
    // order so the decomposition is unique.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                  const double ex = a[x * n + x];
                  const double ey = a[y * n + y];
                  if (ex != ey)
                      return ex > ey;
                  return x < y;
              });

    EigenDecomposition out;
    out.values.reserve(n);
    out.vectors.reserve(n);
    for (std::size_t j : order) {
        out.values.push_back(a[j * n + j]);
        std::vector<double> vec(n);
        for (std::size_t k = 0; k < n; ++k)
            vec[k] = v[k * n + j];
        // Sign canonicalization: flip so the largest-magnitude
        // component (first such index on ties) is positive.
        std::size_t arg = 0;
        for (std::size_t k = 1; k < n; ++k)
            if (std::fabs(vec[k]) > std::fabs(vec[arg]))
                arg = k;
        if (vec[arg] < 0.0)
            for (double &x : vec)
                x = -x;
        out.vectors.push_back(std::move(vec));
    }
    return out;
}

PcaTransform
PcaTransform::fit(const std::vector<FeatureVector> &sample,
                  const PcaConfig &config)
{
    PcaTransform t;
    // The documented A/B anchor: a full variance fraction means "do
    // not touch the space at all", so --pca=1.0 clusters bit-identically
    // to the naive path.
    if (config.varianceFraction >= 1.0 || sample.empty())
        return t;

    const std::size_t n = numFeatureDims;
    const double count = static_cast<double>(sample.size());
    std::array<double, numFeatureDims> mean{};
    for (const auto &s : sample)
        for (std::size_t d = 0; d < n; ++d)
            mean[d] += s.at(d);
    for (std::size_t d = 0; d < n; ++d)
        mean[d] /= count;

    std::vector<double> cov(n * n, 0.0);
    for (const auto &s : sample)
        for (std::size_t p = 0; p < n; ++p) {
            const double dp = s.at(p) - mean[p];
            for (std::size_t q = p; q < n; ++q)
                cov[p * n + q] += dp * (s.at(q) - mean[q]);
        }
    double total = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = p; q < n; ++q)
            cov[p * n + q] /= count;
        total += cov[p * n + p];
    }
    if (total <= 1e-18)
        return t; // constant sample: nothing to rotate

    const EigenDecomposition eig = jacobiEigenSymmetric(cov, n);

    const double target = config.varianceFraction * total;
    std::size_t keep = 0;
    double kept_var = 0.0;
    while (keep < n && kept_var < target) {
        kept_var += std::max(eig.values[keep], 0.0);
        ++keep;
    }
    keep = std::max<std::size_t>(keep, 1);

    t.identity = false;
    t.components = keep;
    t.values.assign(eig.values.begin(), eig.values.begin() + keep);
    t.basis.resize(keep);
    for (std::size_t j = 0; j < keep; ++j) {
        // Fold the whitening scale into the basis row; components
        // with (numerically) zero variance map to 0, mirroring the
        // Normalizer's degenerate-dimension convention.
        double w = 1.0;
        if (config.whiten)
            w = eig.values[j] > 1e-12
                    ? 1.0 / std::sqrt(eig.values[j])
                    : 0.0;
        for (std::size_t d = 0; d < n; ++d)
            t.basis[j][d] = eig.vectors[j][d] * w;
    }

    auto &registry = obs::metricsRegistry();
    static obs::Counter &fits =
        registry.counter("gws.features.pca.fits");
    static obs::Histogram &kept =
        registry.histogram("gws.features.pca.components");
    fits.increment();
    kept.record(keep);
    return t;
}

FeatureVector
PcaTransform::apply(const FeatureVector &v) const
{
    if (identity)
        return v;
    FeatureVector out;
    for (std::size_t j = 0; j < components; ++j) {
        double dot = 0.0;
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            dot += basis[j][d] * v.at(d);
        out.at(j) = dot;
    }
    return out;
}

std::vector<FeatureVector>
PcaTransform::applyAll(const std::vector<FeatureVector> &vs) const
{
    if (identity)
        return vs;
    std::vector<FeatureVector> out;
    out.reserve(vs.size());
    for (const auto &v : vs)
        out.push_back(apply(v));
    return out;
}

const char *
toString(FeaturePath path)
{
    switch (path) {
    case FeaturePath::Auto:
        return "auto";
    case FeaturePath::Naive:
        return "naive";
    case FeaturePath::Pca:
        return "pca";
    }
    return "?";
}

namespace {

/** Process default installed by --pca: path (as int, -1 unset). */
std::atomic<int> defaultPath{-1};
/** Variance fraction that rides along with the default path. */
std::atomic<double> defaultVariance{1.0};

/** GWS_PCA, parsed once: 0 = off, else a fraction in (0, 1]. */
double
envPcaVariance()
{
    double frac = envDouble("GWS_PCA", 0.0);
    if (frac < 0.0 || frac > 1.0) {
        GWS_WARN("GWS_PCA must be a variance fraction in (0, 1], got ",
                 frac, "; ignoring");
        frac = 0.0;
    }
    return frac;
}

} // namespace

void
setDefaultFeatureSpace(const FeatureSpaceConfig &config)
{
    GWS_ASSERT(config.path != FeaturePath::Auto,
               "the default feature space must be concrete");
    defaultVariance.store(config.pcaVariance, std::memory_order_relaxed);
    defaultPath.store(static_cast<int>(config.path),
                      std::memory_order_release);
}

FeatureSpaceConfig
resolveFeatureSpace(const FeatureSpaceConfig &config)
{
    FeatureSpaceConfig out = config;
    if (out.path != FeaturePath::Auto)
        return out;
    // The escape hatch wins over everything, like GWS_NAIVE_KMEANS:
    // latched once so mid-run environment edits cannot change paths.
    static const bool naive_forced = envBool("GWS_NAIVE_FEATURES", false);
    if (naive_forced) {
        out.path = FeaturePath::Naive;
        return out;
    }
    const int installed = defaultPath.load(std::memory_order_acquire);
    if (installed >= 0) {
        out.path = static_cast<FeaturePath>(installed);
        out.pcaVariance =
            defaultVariance.load(std::memory_order_relaxed);
        return out;
    }
    static const double env_frac = envPcaVariance();
    if (env_frac > 0.0) {
        out.path = FeaturePath::Pca;
        out.pcaVariance = env_frac;
    } else {
        out.path = FeaturePath::Naive;
    }
    return out;
}

std::vector<FeatureVector>
projectFeatures(std::vector<FeatureVector> points,
                const FeatureSpaceConfig &config)
{
    const FeatureSpaceConfig cfg = resolveFeatureSpace(config);
    if (cfg.dropDim != noDropDim) {
        GWS_ASSERT(cfg.dropDim < numFeatureDims,
                   "dropDim out of range");
        for (auto &p : points)
            p.at(cfg.dropDim) = 0.0;
    }
    if (cfg.path == FeaturePath::Pca && !points.empty()) {
        PcaConfig pc;
        pc.varianceFraction = cfg.pcaVariance;
        const PcaTransform t = PcaTransform::fit(points, pc);
        if (!t.isIdentity())
            points = t.applyAll(points);
    }
    return points;
}

} // namespace gws
