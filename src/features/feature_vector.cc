#include "features/feature_vector.hh"

#include "util/logging.hh"

namespace gws {

const char *
toString(FeatureDim dim)
{
    switch (dim) {
      case FeatureDim::LogVertices:
        return "log_vertices";
      case FeatureDim::LogPrimitives:
        return "log_primitives";
      case FeatureDim::LogPixels:
        return "log_pixels";
      case FeatureDim::LogVsOps:
        return "log_vs_ops";
      case FeatureDim::LogPsOps:
        return "log_ps_ops";
      case FeatureDim::LogTexSamples:
        return "log_tex_samples";
      case FeatureDim::LogTexFootprint:
        return "log_tex_footprint";
      case FeatureDim::LogVertexBytes:
        return "log_vertex_bytes";
      case FeatureDim::LogRtBytes:
        return "log_rt_bytes";
      case FeatureDim::PsOpsPerPixel:
        return "ps_ops_per_pixel";
      case FeatureDim::TexPerPixel:
        return "tex_per_pixel";
      case FeatureDim::Overdraw:
        return "overdraw";
      case FeatureDim::TexLocality:
        return "tex_locality";
      case FeatureDim::BlendFlag:
        return "blend";
      case FeatureDim::DepthWriteFlag:
        return "depth_write";
      case FeatureDim::NumDims:
        break;
    }
    GWS_PANIC("unknown feature dim ", static_cast<int>(dim));
}

double
FeatureVector::squaredDistance(const FeatureVector &other) const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < numFeatureDims; ++i) {
        const double d = values[i] - other.values[i];
        sum += d * d;
    }
    return sum;
}

} // namespace gws
