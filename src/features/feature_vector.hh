/**
 * @file
 * The micro-architecture-independent feature space draw calls are
 * clustered in. Every dimension is a property of the draw and its
 * bound API state alone — nothing here depends on a GpuConfig, which
 * the test suite verifies by construction (the extractor has no access
 * to one).
 */

#ifndef GWS_FEATURES_FEATURE_VECTOR_HH
#define GWS_FEATURES_FEATURE_VECTOR_HH

#include <array>
#include <cstddef>
#include <string>

namespace gws {

/** Named dimensions of the feature space. */
enum class FeatureDim : std::size_t
{
    LogVertices = 0,      ///< log1p(vertex-shader invocations)
    LogPrimitives,        ///< log1p(primitives assembled)
    LogPixels,            ///< log1p(pixel-shader invocations)
    LogVsOps,             ///< log1p(total VS dynamic ops)
    LogPsOps,             ///< log1p(total PS dynamic ops)
    LogTexSamples,        ///< log1p(texture samples issued)
    LogTexFootprint,      ///< log1p(bound texture bytes)
    LogVertexBytes,       ///< log1p(vertex attribute bytes)
    LogRtBytes,           ///< log1p(color+depth bytes touched)
    PsOpsPerPixel,        ///< PS arithmetic ops per invocation
    TexPerPixel,          ///< PS texture ops per invocation
    Overdraw,             ///< shaded samples per covered pixel
    TexLocality,          ///< spatial locality of texture access
    BlendFlag,            ///< 1 when blending is enabled
    DepthWriteFlag,       ///< 1 when depth writes are enabled
    NumDims,
};

/** Number of feature dimensions. */
constexpr std::size_t numFeatureDims =
    static_cast<std::size_t>(FeatureDim::NumDims);

/** Printable name of a dimension. */
const char *toString(FeatureDim dim);

/** A point in feature space. */
class FeatureVector
{
  public:
    /** Zero-initialized vector. */
    FeatureVector() { values.fill(0.0); }

    /** Component accessors. */
    double &operator[](FeatureDim d)
    {
        return values[static_cast<std::size_t>(d)];
    }
    double operator[](FeatureDim d) const
    {
        return values[static_cast<std::size_t>(d)];
    }
    double &at(std::size_t i) { return values[i]; }
    double at(std::size_t i) const { return values[i]; }

    /** Raw storage (for distance kernels). */
    const std::array<double, numFeatureDims> &raw() const { return values; }

    /** Squared Euclidean distance to another vector. */
    double squaredDistance(const FeatureVector &other) const;

    /** Equality (exact; used in determinism tests). */
    bool operator==(const FeatureVector &other) const = default;

  private:
    std::array<double, numFeatureDims> values;
};

} // namespace gws

#endif // GWS_FEATURES_FEATURE_VECTOR_HH
