/**
 * @file
 * Suite-level helpers: generate the built-in game suite and sample
 * the fixed-size characterization corpus (the paper's 717 frames /
 * ~828K draw calls at paper scale) from the playthroughs.
 */

#ifndef GWS_SYNTH_SUITE_HH
#define GWS_SYNTH_SUITE_HH

#include <vector>

#include "synth/game_profile.hh"
#include "synth/generator.hh"
#include "trace/trace.hh"

namespace gws {

/** Reference into one frame of one trace of a suite. */
struct CorpusFrame
{
    /** Index of the trace within the suite. */
    std::size_t traceIndex = 0;

    /** Frame index within that trace. */
    std::uint32_t frameIndex = 0;
};

/** Number of corpus frames at paper scale (from the paper's abstract). */
constexpr std::uint64_t paperCorpusFrames = 717;

/** Generate playthrough traces for every built-in game. */
std::vector<Trace> generateSuite(SuiteScale scale);

/**
 * Evenly sample target_frames frames across a suite, proportionally to
 * each trace's length, preserving playthrough order within each trace.
 * If the suite has fewer frames than requested, every frame is used.
 * The result always holds exactly min(target_frames, total frames)
 * entries, in the same deterministic order on every platform.
 */
std::vector<CorpusFrame> sampleCorpus(const std::vector<Trace> &suite,
                                      std::uint64_t target_frames);

/**
 * Largest-remainder apportionment of target_frames across traces with
 * the given frame counts: per-trace quotas proportional to length,
 * each capped at the trace's frame count, with any capped surplus
 * redistributed to traces that still have headroom. Deterministic —
 * equal remainders are broken by trace index — and exact: the quotas
 * sum to min(target_frames, total frames). Exposed for regression
 * tests; sampleCorpus is the production caller.
 */
std::vector<std::uint64_t>
corpusQuotas(const std::vector<std::uint64_t> &frame_counts,
             std::uint64_t target_frames);

/** Default corpus size for a scale (717 at paper scale, 72 at CI). */
std::uint64_t defaultCorpusFrames(SuiteScale scale);

/** Total draw calls across the referenced corpus frames. */
std::uint64_t corpusDraws(const std::vector<Trace> &suite,
                          const std::vector<CorpusFrame> &corpus);

} // namespace gws

#endif // GWS_SYNTH_SUITE_HH
