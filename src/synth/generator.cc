#include "synth/generator.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gws {

namespace {

/** RNG fork tags; fixed so streams never shift as code evolves. */
enum : std::uint64_t
{
    tagSchedule = 1,
    tagContent = 2,
    tagFrames = 3,
};

/** One material's generation parameters (internal). */
struct Material
{
    std::uint32_t id = 0;
    ShaderId vs = invalidShaderId;
    ShaderId ps = invalidShaderId;
    std::vector<TextureId> textures;
    PrimitiveTopology topology = PrimitiveTopology::TriangleList;
    std::uint32_t strideBytes = 32;
    std::uint32_t instanceCount = 1;
    double medianPixels = 3000.0;
    double medianVerts = 320.0;
    double pixelSigma = 0.16;
    double vertSigma = 0.08;
    double overdraw = 1.3;
    double texLocality = 0.85;
    bool blend = false;
    bool depthTest = true;
    bool depthWrite = true;
    bool effect = false;
    double drawRate = 1.0; // mean draws per frame when visible
    double visPhase = 0.0;
    double visFreq = 0.01;
};

/** Per-level generated content (internal). */
struct Level
{
    std::vector<Material> materials; // includes the sky material at [0]
};

/** Synthesize one pixel shader's instruction mix. */
InstructionMix
makePixelMix(Rng &rng)
{
    InstructionMix m;
    m.aluOps = static_cast<std::uint32_t>(rng.uniformInt(8, 56));
    m.maddOps = static_cast<std::uint32_t>(rng.uniformInt(4, 40));
    m.specialOps = static_cast<std::uint32_t>(rng.uniformInt(0, 6));
    m.texOps = static_cast<std::uint32_t>(rng.uniformInt(1, 4));
    m.interpOps = static_cast<std::uint32_t>(rng.uniformInt(4, 12));
    m.controlOps = static_cast<std::uint32_t>(rng.uniformInt(0, 6));
    return m;
}

/** Synthesize one vertex shader's instruction mix. */
InstructionMix
makeVertexMix(Rng &rng)
{
    InstructionMix m;
    m.aluOps = static_cast<std::uint32_t>(rng.uniformInt(12, 40));
    m.maddOps = static_cast<std::uint32_t>(rng.uniformInt(8, 30));
    m.specialOps = static_cast<std::uint32_t>(rng.uniformInt(0, 2));
    m.texOps = 0;
    m.interpOps = 0;
    m.controlOps = static_cast<std::uint32_t>(rng.uniformInt(0, 4));
    return m;
}

/**
 * Synthesize a compute/dispatch-style "pixel" shader mix: ALU/MADD
 * dense, at most one texture (buffer) read, no interpolation — the
 * instruction profile of an ML-style pass run through the raster
 * pipe as a full-screen dispatch.
 */
InstructionMix
makeComputeMix(Rng &rng)
{
    InstructionMix m;
    m.aluOps = static_cast<std::uint32_t>(rng.uniformInt(48, 160));
    m.maddOps = static_cast<std::uint32_t>(rng.uniformInt(64, 200));
    m.specialOps = static_cast<std::uint32_t>(rng.uniformInt(0, 4));
    m.texOps = static_cast<std::uint32_t>(rng.uniformInt(0, 1));
    m.interpOps = 0;
    m.controlOps = static_cast<std::uint32_t>(rng.uniformInt(2, 10));
    return m;
}

/** Visibility modulation of a material at a playthrough frame. */
double
visibility(const Material &m, std::uint64_t frame)
{
    const double s =
        std::sin(2.0 * M_PI * m.visFreq * static_cast<double>(frame) +
                 m.visPhase);
    if (m.effect) {
        // Effects are bursty: mostly quiet, occasionally very active.
        return s > 0.35 ? 1.8 : 0.15;
    }
    return std::max(0.15, 1.0 + 0.35 * s);
}

} // namespace

GameGenerator::GameGenerator(GameProfile profile) : prof(std::move(profile))
{
    prof.validate();
}

std::vector<std::uint32_t>
GameGenerator::levelSchedule() const
{
    Rng rng = Rng(prof.seed).fork(tagSchedule);
    std::vector<std::uint32_t> schedule;
    schedule.reserve(prof.segments);
    std::uint32_t next_unvisited = 0;
    for (std::uint32_t s = 0; s < prof.segments; ++s) {
        const bool all_visited = next_unvisited >= prof.levels;
        // Bias early segments toward introducing new levels so every
        // level appears when segments >= levels; later segments revisit.
        const bool revisit =
            all_visited ||
            (next_unvisited > 0 &&
             rng.bernoulli(0.45) &&
             prof.segments - s >
                 prof.levels - next_unvisited);
        if (revisit) {
            schedule.push_back(static_cast<std::uint32_t>(
                rng.index(next_unvisited)));
        } else {
            schedule.push_back(next_unvisited++);
        }
    }
    return schedule;
}

std::vector<std::uint32_t>
GameGenerator::segmentFrames() const
{
    Rng rng = Rng(prof.seed).fork(tagSchedule).fork(7);
    std::vector<std::uint32_t> frames;
    frames.reserve(prof.segments);
    for (std::uint32_t s = 0; s < prof.segments; ++s) {
        frames.push_back(static_cast<std::uint32_t>(
            rng.uniformInt(prof.segmentFramesMin, prof.segmentFramesMax)));
    }
    return frames;
}

Trace
GameGenerator::generate() const
{
    Trace trace(prof.name);
    Rng content_rng = Rng(prof.seed).fork(tagContent);

    const RenderTargetId rt = trace.addRenderTarget(
        RenderTargetDesc{prof.rtWidth, prof.rtHeight, 4});
    const double rt_pixels = static_cast<double>(
        trace.renderTarget(rt).pixels());

    // ---- HUD content shared by all levels -------------------------------
    std::vector<Material> hud;
    {
        Rng rng = content_rng.fork(1000);
        const ShaderId hud_vs = trace.shaders().add(
            ShaderStage::Vertex, "vs_hud", makeVertexMix(rng));
        const ShaderId hud_ps = trace.shaders().add(
            ShaderStage::Pixel, "ps_hud", makePixelMix(rng));
        for (std::uint32_t i = 0; i < prof.hudMaterials; ++i) {
            Material m;
            m.id = i; // HUD ids occupy [0, hudMaterials)
            m.vs = hud_vs;
            m.ps = hud_ps;
            m.textures = {trace.addTexture(
                TextureDesc{256, 256, 4, false})};
            m.topology = PrimitiveTopology::TriangleStrip;
            m.strideBytes = 20;
            m.medianVerts = 4.0;
            m.medianPixels = rng.uniform(1500.0, 12000.0);
            m.pixelSigma = 0.03;
            m.vertSigma = 0.0;
            m.overdraw = 1.0;
            m.blend = true;
            m.depthTest = false;
            m.depthWrite = false;
            m.drawRate = 1.0;
            hud.push_back(m);
        }
    }

    // ---- per-level content ------------------------------------------------
    std::uint32_t next_material_id = prof.hudMaterials;
    std::vector<Level> levels(prof.levels);
    for (std::uint32_t li = 0; li < prof.levels; ++li) {
        Rng rng = content_rng.fork(li + 1);
        Level &level = levels[li];

        std::vector<ShaderId> vs_pool;
        for (std::uint32_t i = 0; i < prof.vertexShadersPerLevel; ++i) {
            vs_pool.push_back(trace.shaders().add(
                ShaderStage::Vertex,
                "vs_l" + std::to_string(li) + "_" + std::to_string(i),
                makeVertexMix(rng)));
        }
        std::vector<ShaderId> ps_pool;
        for (std::uint32_t i = 0; i < prof.pixelShadersPerLevel; ++i) {
            ps_pool.push_back(trace.shaders().add(
                ShaderStage::Pixel,
                "ps_l" + std::to_string(li) + "_" + std::to_string(i),
                makePixelMix(rng)));
        }
        // Compute genre: a dedicated dispatch-shader pool and its own
        // RNG stream (fork, so the legacy streams above never shift).
        Rng compute_rng = content_rng.fork(3000 + li);
        std::vector<ShaderId> compute_pool;
        for (std::uint32_t i = 0; i < prof.computeShadersPerLevel; ++i) {
            compute_pool.push_back(trace.shaders().add(
                ShaderStage::Pixel,
                "ps_comp_l" + std::to_string(li) + "_" +
                    std::to_string(i),
                makeComputeMix(compute_rng)));
        }
        std::vector<TextureId> tex_pool;
        for (std::uint32_t i = 0; i < prof.texturesPerLevel; ++i) {
            const std::uint32_t dim = 128u << rng.uniformInt(1, 4);
            tex_pool.push_back(trace.addTexture(
                TextureDesc{dim, dim,
                            rng.bernoulli(0.2) ? 8u : 4u, true}));
        }

        // Sky: one full-screen cheap draw per frame.
        {
            Material sky;
            sky.id = next_material_id++;
            sky.vs = vs_pool[0];
            sky.ps = ps_pool[0];
            sky.textures = {tex_pool[0]};
            sky.strideBytes = 16;
            sky.medianVerts = 8.0;
            sky.medianPixels = rt_pixels;
            sky.pixelSigma = 0.0;
            sky.vertSigma = 0.0;
            sky.overdraw = 1.0;
            sky.texLocality = 0.97;
            sky.depthWrite = false;
            sky.drawRate = 1.0;
            level.materials.push_back(sky);
        }

        // Scene materials with a log-normal popularity distribution.
        std::vector<double> weights;
        for (std::uint32_t mi = 0; mi < prof.materialsPerLevel; ++mi)
            weights.push_back(rng.logNormal(0.0, 0.5));
        const double weight_sum =
            std::accumulate(weights.begin(), weights.end(), 0.0);
        // Scene draw budget: total minus sky and HUD, minus the share
        // streamed content takes, spread over the expected number of
        // active users. Both factors are exactly 1.0 for the legacy
        // games, so their budgets are bit-identical.
        const double active_users =
            1.0 + static_cast<double>(prof.concurrentUsers - 1) *
                      (1.0 - prof.userIdleProbability);
        const double scene_rate =
            std::max(1.0, prof.drawsPerFrame - 1.0 -
                              static_cast<double>(prof.hudMaterials)) *
            (1.0 - prof.streamedDrawShare) / active_users;

        for (std::uint32_t mi = 0; mi < prof.materialsPerLevel; ++mi) {
            Material m;
            m.id = next_material_id++;
            m.vs = vs_pool[rng.index(vs_pool.size())];
            m.ps = ps_pool[rng.index(ps_pool.size())];
            const std::size_t n_tex =
                static_cast<std::size_t>(rng.uniformInt(1, 4));
            for (std::size_t t = 0; t < n_tex; ++t)
                m.textures.push_back(
                    tex_pool[rng.index(tex_pool.size())]);
            m.topology = rng.bernoulli(0.12)
                             ? PrimitiveTopology::TriangleStrip
                             : PrimitiveTopology::TriangleList;
            m.strideBytes =
                static_cast<std::uint32_t>(rng.uniformInt(6, 12)) * 4;
            m.instanceCount = rng.bernoulli(0.1)
                                  ? static_cast<std::uint32_t>(
                                        rng.uniformInt(2, 6))
                                  : 1;
            m.medianPixels =
                prof.medianPixelsPerDraw * rng.logNormal(0.0, 0.9);
            m.medianVerts =
                prof.medianVertsPerDraw * rng.logNormal(0.0, 0.8);
            m.effect = rng.bernoulli(prof.effectMaterialFraction);
            m.pixelSigma = m.effect ? prof.effectPixelSigma
                                    : prof.pixelSigma;
            m.vertSigma = m.effect ? prof.vertSigma * 3.0
                                   : prof.vertSigma;
            m.overdraw = std::clamp(1.0 + rng.exponential(2.5), 1.0, 4.0);
            m.texLocality = m.effect ? rng.uniform(0.5, 0.8)
                                     : rng.uniform(0.7, 0.95);
            m.blend = m.effect || rng.bernoulli(prof.blendFraction);
            m.depthWrite = !m.blend;
            m.drawRate = scene_rate * weights[mi] / weight_sum;
            m.visPhase = rng.uniform(0.0, 2.0 * M_PI);
            m.visFreq = rng.uniform(0.002, 0.02);

            // Compute genre: rewrite a fraction of materials into
            // dispatch proxies — 3 vertices, a huge pixel grid, dense
            // arithmetic, no blend or depth. Decisions come from the
            // forked compute stream, and the short-circuit keeps it
            // untouched for every other genre.
            if (prof.computeMaterialFraction > 0.0 &&
                compute_rng.bernoulli(prof.computeMaterialFraction)) {
                m.ps = compute_pool[compute_rng.index(
                    compute_pool.size())];
                m.topology = PrimitiveTopology::TriangleList;
                m.strideBytes = 16;
                m.instanceCount = 1;
                m.medianVerts = 3.0;
                m.vertSigma = 0.0;
                m.medianPixels = prof.medianPixelsPerDraw *
                                 compute_rng.uniform(24.0, 96.0);
                m.pixelSigma = 0.05;
                m.overdraw = 1.0;
                m.texLocality = 0.97;
                m.effect = false;
                m.blend = false;
                m.depthTest = false;
                m.depthWrite = false;
            }
            level.materials.push_back(m);
        }
    }

    // ---- streamed content (streaming genre only) -----------------------
    // Each playthrough segment streams an asset pack — new shaders,
    // textures and materials — into the resident pool, which only ever
    // grows: the trace's shader population is unbounded in segment
    // count, unlike the fixed per-level pools above. Every pack draws
    // from its own content fork, so legacy streams never shift.
    std::vector<std::vector<Material>> streamed(prof.segments);
    const double stream_budget =
        std::max(1.0, prof.drawsPerFrame - 1.0 -
                          static_cast<double>(prof.hudMaterials)) *
        prof.streamedDrawShare;
    if (prof.streamedMaterialsPerSegment > 0) {
        for (std::uint32_t seg = 0; seg < prof.segments; ++seg) {
            Rng rng = content_rng.fork(2000 + seg);
            const ShaderId svs = trace.shaders().add(
                ShaderStage::Vertex,
                "vs_stream_s" + std::to_string(seg),
                makeVertexMix(rng));
            std::vector<ShaderId> sps;
            for (std::uint32_t i = 0;
                 i < prof.streamedPixelShadersPerSegment; ++i) {
                sps.push_back(trace.shaders().add(
                    ShaderStage::Pixel,
                    "ps_stream_s" + std::to_string(seg) + "_" +
                        std::to_string(i),
                    makePixelMix(rng)));
            }
            std::vector<TextureId> stex;
            for (std::uint32_t i = 0;
                 i < prof.streamedTexturesPerSegment; ++i) {
                const std::uint32_t dim = 128u << rng.uniformInt(1, 4);
                stex.push_back(trace.addTexture(
                    TextureDesc{dim, dim,
                                rng.bernoulli(0.2) ? 8u : 4u, true}));
            }
            for (std::uint32_t mi = 0;
                 mi < prof.streamedMaterialsPerSegment; ++mi) {
                Material m;
                m.id = next_material_id++;
                m.vs = svs;
                m.ps = sps[rng.index(sps.size())];
                const std::size_t n_tex =
                    static_cast<std::size_t>(rng.uniformInt(1, 3));
                for (std::size_t t = 0; t < n_tex; ++t)
                    m.textures.push_back(
                        stex[rng.index(stex.size())]);
                m.strideBytes = static_cast<std::uint32_t>(
                                    rng.uniformInt(6, 12)) *
                                4;
                m.medianPixels = prof.medianPixelsPerDraw *
                                 rng.logNormal(0.0, 0.9);
                m.medianVerts = prof.medianVertsPerDraw *
                                rng.logNormal(0.0, 0.8);
                m.pixelSigma = prof.pixelSigma;
                m.vertSigma = prof.vertSigma;
                m.overdraw =
                    std::clamp(1.0 + rng.exponential(2.5), 1.0, 4.0);
                m.texLocality = rng.uniform(0.7, 0.95);
                m.blend = rng.bernoulli(prof.blendFraction);
                m.depthWrite = !m.blend;
                m.drawRate = 1.0; // set per frame from the pack count
                m.visPhase = rng.uniform(0.0, 2.0 * M_PI);
                m.visFreq = rng.uniform(0.002, 0.02);
                streamed[seg].push_back(m);
            }
        }
    }

    // ---- playthrough ---------------------------------------------------
    const auto schedule = levelSchedule();
    const auto seg_frames = segmentFrames();
    Rng frame_rng = Rng(prof.seed).fork(tagFrames);
    std::uint64_t global_frame = 0;
    std::uint32_t frame_index = 0;
    const double max_covered = rt_pixels;

    auto emit_draw = [&](Frame &frame, const Material &m, Rng &rng,
                         double zoom) {
        DrawCall d;
        d.state.vertexShader = m.vs;
        d.state.pixelShader = m.ps;
        d.state.textures = m.textures;
        d.state.renderTarget = rt;
        d.state.blendEnabled = m.blend;
        d.state.depthTestEnabled = m.depthTest;
        d.state.depthWriteEnabled = m.depthWrite;
        d.topology = m.topology;
        d.vertexStrideBytes = m.strideBytes;
        d.instanceCount = m.instanceCount;

        const double verts = m.medianVerts *
                             (m.vertSigma > 0.0
                                  ? rng.logNormal(0.0, m.vertSigma)
                                  : 1.0);
        d.vertexCount = static_cast<std::uint32_t>(
            std::clamp(verts, 3.0, 2.0e6));

        d.overdraw = std::max(
            1.0, m.overdraw * (m.pixelSigma > 0.0
                                   ? rng.logNormal(0.0, 0.05)
                                   : 1.0));
        double pixels = m.medianPixels * zoom *
                        (m.pixelSigma > 0.0
                             ? rng.logNormal(0.0, m.pixelSigma)
                             : 1.0);
        pixels = std::clamp(pixels, 1.0, max_covered * d.overdraw);
        d.shadedPixels = static_cast<std::uint64_t>(std::llround(pixels));

        d.texLocality = std::clamp(
            m.texLocality + rng.normal(0.0, 0.01), 0.0, 1.0);
        d.materialId = m.id;
        frame.addDraw(std::move(d));
    };

    for (std::size_t seg = 0; seg < schedule.size(); ++seg) {
        const Level &level = levels[schedule[seg]];
        for (std::uint32_t f = 0; f < seg_frames[seg]; ++f) {
            Rng rng = frame_rng.fork(global_frame + 1);
            Frame frame(frame_index++);
            const double zoom = std::exp(
                0.18 * std::sin(2.0 * M_PI *
                                static_cast<double>(global_frame) /
                                97.0));

            // Cloud-gaming genre: a per-frame load multiplier models
            // variable-framerate capture (encode deadlines modulate
            // how much of the scene is drawn) plus rare congestion
            // bursts. Legacy games take neither branch, so their
            // frame streams consume no extra draws.
            double load = 1.0;
            if (prof.frameLoadSigma > 0.0)
                load *= rng.logNormal(0.0, prof.frameLoadSigma);
            if (prof.burstFrameFraction > 0.0 &&
                rng.bernoulli(prof.burstFrameFraction))
                load *= prof.burstLoadMultiplier;

            // Scene (sky first, then materials in table order — the
            // state-sorted submission order a real engine produces).
            // A material's draw count is Poisson in rate x visibility
            // x load; multiplying by load == 1.0 is exact, keeping
            // legacy frames bit-identical.
            auto emit_level = [&](const Level &lv) {
                for (const Material &m : lv.materials) {
                    const double rate =
                        m.drawRate * visibility(m, global_frame) * load;
                    std::uint64_t n =
                        &m == &lv.materials.front()
                            ? 1
                            : rng.poisson(rate);
                    for (std::uint64_t k = 0; k < n; ++k)
                        emit_draw(frame, m, rng, zoom);
                }
            };
            if (prof.concurrentUsers == 1) {
                emit_level(level);
            } else {
                // Multi-user genre: composite every active user's
                // view; user u looks at its own level, secondaries
                // idle at random, so frames mix material pools.
                for (std::uint32_t u = 0; u < prof.concurrentUsers;
                     ++u) {
                    if (u > 0 && prof.userIdleProbability > 0.0 &&
                        rng.bernoulli(prof.userIdleProbability))
                        continue;
                    emit_level(levels[(schedule[seg] + u) %
                                      prof.levels]);
                }
            }

            // Streamed packs: everything streamed up to the current
            // segment is resident; the stream budget spreads over the
            // whole resident set, so old packs fade but never vanish.
            if (prof.streamedMaterialsPerSegment > 0) {
                const double resident = static_cast<double>(
                    (seg + 1) * prof.streamedMaterialsPerSegment);
                const double per_material = stream_budget / resident;
                for (std::size_t s2 = 0; s2 <= seg; ++s2) {
                    for (const Material &m : streamed[s2]) {
                        const double rate =
                            per_material *
                            visibility(m, global_frame) * load;
                        const std::uint64_t n = rng.poisson(rate);
                        for (std::uint64_t k = 0; k < n; ++k)
                            emit_draw(frame, m, rng, zoom);
                    }
                }
            }

            // HUD overlay last.
            for (const Material &m : hud)
                emit_draw(frame, m, rng, 1.0);

            ++global_frame;
            trace.addFrame(std::move(frame));
        }
    }
    return trace;
}

} // namespace gws
