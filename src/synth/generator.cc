#include "synth/generator.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gws {

namespace {

/** RNG fork tags; fixed so streams never shift as code evolves. */
enum : std::uint64_t
{
    tagSchedule = 1,
    tagContent = 2,
    tagFrames = 3,
};

/** One material's generation parameters (internal). */
struct Material
{
    std::uint32_t id = 0;
    ShaderId vs = invalidShaderId;
    ShaderId ps = invalidShaderId;
    std::vector<TextureId> textures;
    PrimitiveTopology topology = PrimitiveTopology::TriangleList;
    std::uint32_t strideBytes = 32;
    std::uint32_t instanceCount = 1;
    double medianPixels = 3000.0;
    double medianVerts = 320.0;
    double pixelSigma = 0.16;
    double vertSigma = 0.08;
    double overdraw = 1.3;
    double texLocality = 0.85;
    bool blend = false;
    bool depthTest = true;
    bool depthWrite = true;
    bool effect = false;
    double drawRate = 1.0; // mean draws per frame when visible
    double visPhase = 0.0;
    double visFreq = 0.01;
};

/** Per-level generated content (internal). */
struct Level
{
    std::vector<Material> materials; // includes the sky material at [0]
};

/** Synthesize one pixel shader's instruction mix. */
InstructionMix
makePixelMix(Rng &rng)
{
    InstructionMix m;
    m.aluOps = static_cast<std::uint32_t>(rng.uniformInt(8, 56));
    m.maddOps = static_cast<std::uint32_t>(rng.uniformInt(4, 40));
    m.specialOps = static_cast<std::uint32_t>(rng.uniformInt(0, 6));
    m.texOps = static_cast<std::uint32_t>(rng.uniformInt(1, 4));
    m.interpOps = static_cast<std::uint32_t>(rng.uniformInt(4, 12));
    m.controlOps = static_cast<std::uint32_t>(rng.uniformInt(0, 6));
    return m;
}

/** Synthesize one vertex shader's instruction mix. */
InstructionMix
makeVertexMix(Rng &rng)
{
    InstructionMix m;
    m.aluOps = static_cast<std::uint32_t>(rng.uniformInt(12, 40));
    m.maddOps = static_cast<std::uint32_t>(rng.uniformInt(8, 30));
    m.specialOps = static_cast<std::uint32_t>(rng.uniformInt(0, 2));
    m.texOps = 0;
    m.interpOps = 0;
    m.controlOps = static_cast<std::uint32_t>(rng.uniformInt(0, 4));
    return m;
}

/** Visibility modulation of a material at a playthrough frame. */
double
visibility(const Material &m, std::uint64_t frame)
{
    const double s =
        std::sin(2.0 * M_PI * m.visFreq * static_cast<double>(frame) +
                 m.visPhase);
    if (m.effect) {
        // Effects are bursty: mostly quiet, occasionally very active.
        return s > 0.35 ? 1.8 : 0.15;
    }
    return std::max(0.15, 1.0 + 0.35 * s);
}

} // namespace

GameGenerator::GameGenerator(GameProfile profile) : prof(std::move(profile))
{
    prof.validate();
}

std::vector<std::uint32_t>
GameGenerator::levelSchedule() const
{
    Rng rng = Rng(prof.seed).fork(tagSchedule);
    std::vector<std::uint32_t> schedule;
    schedule.reserve(prof.segments);
    std::uint32_t next_unvisited = 0;
    for (std::uint32_t s = 0; s < prof.segments; ++s) {
        const bool all_visited = next_unvisited >= prof.levels;
        // Bias early segments toward introducing new levels so every
        // level appears when segments >= levels; later segments revisit.
        const bool revisit =
            all_visited ||
            (next_unvisited > 0 &&
             rng.bernoulli(0.45) &&
             prof.segments - s >
                 prof.levels - next_unvisited);
        if (revisit) {
            schedule.push_back(static_cast<std::uint32_t>(
                rng.index(next_unvisited)));
        } else {
            schedule.push_back(next_unvisited++);
        }
    }
    return schedule;
}

std::vector<std::uint32_t>
GameGenerator::segmentFrames() const
{
    Rng rng = Rng(prof.seed).fork(tagSchedule).fork(7);
    std::vector<std::uint32_t> frames;
    frames.reserve(prof.segments);
    for (std::uint32_t s = 0; s < prof.segments; ++s) {
        frames.push_back(static_cast<std::uint32_t>(
            rng.uniformInt(prof.segmentFramesMin, prof.segmentFramesMax)));
    }
    return frames;
}

Trace
GameGenerator::generate() const
{
    Trace trace(prof.name);
    Rng content_rng = Rng(prof.seed).fork(tagContent);

    const RenderTargetId rt = trace.addRenderTarget(
        RenderTargetDesc{prof.rtWidth, prof.rtHeight, 4});
    const double rt_pixels = static_cast<double>(
        trace.renderTarget(rt).pixels());

    // ---- HUD content shared by all levels -------------------------------
    std::vector<Material> hud;
    {
        Rng rng = content_rng.fork(1000);
        const ShaderId hud_vs = trace.shaders().add(
            ShaderStage::Vertex, "vs_hud", makeVertexMix(rng));
        const ShaderId hud_ps = trace.shaders().add(
            ShaderStage::Pixel, "ps_hud", makePixelMix(rng));
        for (std::uint32_t i = 0; i < prof.hudMaterials; ++i) {
            Material m;
            m.id = i; // HUD ids occupy [0, hudMaterials)
            m.vs = hud_vs;
            m.ps = hud_ps;
            m.textures = {trace.addTexture(
                TextureDesc{256, 256, 4, false})};
            m.topology = PrimitiveTopology::TriangleStrip;
            m.strideBytes = 20;
            m.medianVerts = 4.0;
            m.medianPixels = rng.uniform(1500.0, 12000.0);
            m.pixelSigma = 0.03;
            m.vertSigma = 0.0;
            m.overdraw = 1.0;
            m.blend = true;
            m.depthTest = false;
            m.depthWrite = false;
            m.drawRate = 1.0;
            hud.push_back(m);
        }
    }

    // ---- per-level content ------------------------------------------------
    std::uint32_t next_material_id = prof.hudMaterials;
    std::vector<Level> levels(prof.levels);
    for (std::uint32_t li = 0; li < prof.levels; ++li) {
        Rng rng = content_rng.fork(li + 1);
        Level &level = levels[li];

        std::vector<ShaderId> vs_pool;
        for (std::uint32_t i = 0; i < prof.vertexShadersPerLevel; ++i) {
            vs_pool.push_back(trace.shaders().add(
                ShaderStage::Vertex,
                "vs_l" + std::to_string(li) + "_" + std::to_string(i),
                makeVertexMix(rng)));
        }
        std::vector<ShaderId> ps_pool;
        for (std::uint32_t i = 0; i < prof.pixelShadersPerLevel; ++i) {
            ps_pool.push_back(trace.shaders().add(
                ShaderStage::Pixel,
                "ps_l" + std::to_string(li) + "_" + std::to_string(i),
                makePixelMix(rng)));
        }
        std::vector<TextureId> tex_pool;
        for (std::uint32_t i = 0; i < prof.texturesPerLevel; ++i) {
            const std::uint32_t dim = 128u << rng.uniformInt(1, 4);
            tex_pool.push_back(trace.addTexture(
                TextureDesc{dim, dim,
                            rng.bernoulli(0.2) ? 8u : 4u, true}));
        }

        // Sky: one full-screen cheap draw per frame.
        {
            Material sky;
            sky.id = next_material_id++;
            sky.vs = vs_pool[0];
            sky.ps = ps_pool[0];
            sky.textures = {tex_pool[0]};
            sky.strideBytes = 16;
            sky.medianVerts = 8.0;
            sky.medianPixels = rt_pixels;
            sky.pixelSigma = 0.0;
            sky.vertSigma = 0.0;
            sky.overdraw = 1.0;
            sky.texLocality = 0.97;
            sky.depthWrite = false;
            sky.drawRate = 1.0;
            level.materials.push_back(sky);
        }

        // Scene materials with a log-normal popularity distribution.
        std::vector<double> weights;
        for (std::uint32_t mi = 0; mi < prof.materialsPerLevel; ++mi)
            weights.push_back(rng.logNormal(0.0, 0.5));
        const double weight_sum =
            std::accumulate(weights.begin(), weights.end(), 0.0);
        // Scene draw budget: total minus sky and HUD.
        const double scene_rate =
            std::max(1.0, prof.drawsPerFrame - 1.0 -
                              static_cast<double>(prof.hudMaterials));

        for (std::uint32_t mi = 0; mi < prof.materialsPerLevel; ++mi) {
            Material m;
            m.id = next_material_id++;
            m.vs = vs_pool[rng.index(vs_pool.size())];
            m.ps = ps_pool[rng.index(ps_pool.size())];
            const std::size_t n_tex =
                static_cast<std::size_t>(rng.uniformInt(1, 4));
            for (std::size_t t = 0; t < n_tex; ++t)
                m.textures.push_back(
                    tex_pool[rng.index(tex_pool.size())]);
            m.topology = rng.bernoulli(0.12)
                             ? PrimitiveTopology::TriangleStrip
                             : PrimitiveTopology::TriangleList;
            m.strideBytes =
                static_cast<std::uint32_t>(rng.uniformInt(6, 12)) * 4;
            m.instanceCount = rng.bernoulli(0.1)
                                  ? static_cast<std::uint32_t>(
                                        rng.uniformInt(2, 6))
                                  : 1;
            m.medianPixels =
                prof.medianPixelsPerDraw * rng.logNormal(0.0, 0.9);
            m.medianVerts =
                prof.medianVertsPerDraw * rng.logNormal(0.0, 0.8);
            m.effect = rng.bernoulli(prof.effectMaterialFraction);
            m.pixelSigma = m.effect ? prof.effectPixelSigma
                                    : prof.pixelSigma;
            m.vertSigma = m.effect ? prof.vertSigma * 3.0
                                   : prof.vertSigma;
            m.overdraw = std::clamp(1.0 + rng.exponential(2.5), 1.0, 4.0);
            m.texLocality = m.effect ? rng.uniform(0.5, 0.8)
                                     : rng.uniform(0.7, 0.95);
            m.blend = m.effect || rng.bernoulli(prof.blendFraction);
            m.depthWrite = !m.blend;
            m.drawRate = scene_rate * weights[mi] / weight_sum;
            m.visPhase = rng.uniform(0.0, 2.0 * M_PI);
            m.visFreq = rng.uniform(0.002, 0.02);
            level.materials.push_back(m);
        }
    }

    // ---- playthrough ---------------------------------------------------
    const auto schedule = levelSchedule();
    const auto seg_frames = segmentFrames();
    Rng frame_rng = Rng(prof.seed).fork(tagFrames);
    std::uint64_t global_frame = 0;
    std::uint32_t frame_index = 0;
    const double max_covered = rt_pixels;

    auto emit_draw = [&](Frame &frame, const Material &m, Rng &rng,
                         double zoom) {
        DrawCall d;
        d.state.vertexShader = m.vs;
        d.state.pixelShader = m.ps;
        d.state.textures = m.textures;
        d.state.renderTarget = rt;
        d.state.blendEnabled = m.blend;
        d.state.depthTestEnabled = m.depthTest;
        d.state.depthWriteEnabled = m.depthWrite;
        d.topology = m.topology;
        d.vertexStrideBytes = m.strideBytes;
        d.instanceCount = m.instanceCount;

        const double verts = m.medianVerts *
                             (m.vertSigma > 0.0
                                  ? rng.logNormal(0.0, m.vertSigma)
                                  : 1.0);
        d.vertexCount = static_cast<std::uint32_t>(
            std::clamp(verts, 3.0, 2.0e6));

        d.overdraw = std::max(
            1.0, m.overdraw * (m.pixelSigma > 0.0
                                   ? rng.logNormal(0.0, 0.05)
                                   : 1.0));
        double pixels = m.medianPixels * zoom *
                        (m.pixelSigma > 0.0
                             ? rng.logNormal(0.0, m.pixelSigma)
                             : 1.0);
        pixels = std::clamp(pixels, 1.0, max_covered * d.overdraw);
        d.shadedPixels = static_cast<std::uint64_t>(std::llround(pixels));

        d.texLocality = std::clamp(
            m.texLocality + rng.normal(0.0, 0.01), 0.0, 1.0);
        d.materialId = m.id;
        frame.addDraw(std::move(d));
    };

    for (std::size_t seg = 0; seg < schedule.size(); ++seg) {
        const Level &level = levels[schedule[seg]];
        for (std::uint32_t f = 0; f < seg_frames[seg]; ++f) {
            Rng rng = frame_rng.fork(global_frame + 1);
            Frame frame(frame_index++);
            const double zoom = std::exp(
                0.18 * std::sin(2.0 * M_PI *
                                static_cast<double>(global_frame) /
                                97.0));

            // Scene (sky first, then materials in table order — the
            // state-sorted submission order a real engine produces).
            for (const Material &m : level.materials) {
                const double rate =
                    m.drawRate * visibility(m, global_frame);
                std::uint64_t n =
                    &m == &level.materials.front()
                        ? 1
                        : rng.poisson(rate);
                for (std::uint64_t k = 0; k < n; ++k)
                    emit_draw(frame, m, rng, zoom);
            }
            // HUD overlay last.
            for (const Material &m : hud)
                emit_draw(frame, m, rng, 1.0);

            ++global_frame;
            trace.addFrame(std::move(frame));
        }
    }
    return trace;
}

} // namespace gws
