/**
 * @file
 * Declarative description of a synthetic game used to generate traces.
 *
 * A profile captures the structural properties the subsetting
 * methodology keys on: how many distinct level environments exist
 * (phase structure), how rich each level's material and shader pool is
 * (clustering structure), how much per-draw jitter materials exhibit
 * (intra-cluster error), and how often heavy-tailed effect draws occur
 * (cluster outliers).
 */

#ifndef GWS_SYNTH_GAME_PROFILE_HH
#define GWS_SYNTH_GAME_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gws {

/** Scale of a generated suite. */
enum class SuiteScale : std::uint8_t
{
    /** Small and fast: unit tests and default bench runs. */
    Ci = 0,

    /** Full scale: 717-frame / ~828K-draw characterization corpus. */
    Paper = 1,
};

/** Printable scale name ("ci" / "paper"). */
const char *toString(SuiteScale scale);

/** Parse "ci" / "paper"; fatal() on anything else (user input). */
SuiteScale parseSuiteScale(const std::string &text);

/** Parameters of one synthetic game. */
struct GameProfile
{
    /** Game name, e.g. "shock1". */
    std::string name = "game";

    /**
     * Workload genre tag, used by the benches to aggregate the
     * subset-quality contract per genre: "corridor", "openworld",
     * "arena", "racing", "streaming", "cloudgaming", "compute" or
     * "multiuser".
     */
    std::string genre = "corridor";

    /** Master seed; every stream derives from it. */
    std::uint64_t seed = 1;

    // --- world structure -------------------------------------------------
    /** Distinct level environments (phase alphabet size). */
    std::uint32_t levels = 4;

    /** Playthrough segments (levels are revisited when > levels). */
    std::uint32_t segments = 10;

    /** Frames per segment: uniform in [min, max]. */
    std::uint32_t segmentFramesMin = 24;
    std::uint32_t segmentFramesMax = 60;

    // --- per-level content -------------------------------------------------
    /** Materials per level (upper bound on clusters per frame). */
    std::uint32_t materialsPerLevel = 40;

    /** Pixel shaders per level pool. */
    std::uint32_t pixelShadersPerLevel = 14;

    /** Vertex shaders per level pool. */
    std::uint32_t vertexShadersPerLevel = 4;

    /** Textures per level pool. */
    std::uint32_t texturesPerLevel = 48;

    /** HUD/UI materials shared by every level. */
    std::uint32_t hudMaterials = 6;

    // --- per-frame workload -------------------------------------------------
    /** Mean draw calls per frame (before camera modulation). */
    double drawsPerFrame = 120.0;

    /** Median shaded pixels of a scene draw. */
    double medianPixelsPerDraw = 3000.0;

    /** Median vertices of a scene draw. */
    double medianVertsPerDraw = 320.0;

    /** Log-normal sigma of per-draw pixel jitter within a material. */
    double pixelSigma = 0.16;

    /** Log-normal sigma of per-draw vertex jitter within a material. */
    double vertSigma = 0.08;

    /** Fraction of materials that are heavy-tailed effects. */
    double effectMaterialFraction = 0.05;

    /** Log-normal sigma of effect-draw pixel jitter (heavy tail). */
    double effectPixelSigma = 0.9;

    /** Fraction of materials with blending enabled. */
    double blendFraction = 0.18;

    // --- genre mechanics (all default off: legacy games unchanged) --------
    /**
     * Streaming genre: materials streamed into the resident pool per
     * playthrough segment. Unlike the static level pools, streamed
     * content accumulates — the shader pool grows without bound over
     * the playthrough, which deliberately breaks exact shader-vector
     * phase recurrence. 0 disables streaming.
     */
    std::uint32_t streamedMaterialsPerSegment = 0;

    /** Streaming: new pixel shaders per streamed segment. */
    std::uint32_t streamedPixelShadersPerSegment = 0;

    /** Streaming: new textures per streamed segment. */
    std::uint32_t streamedTexturesPerSegment = 0;

    /** Streaming: share of the scene draw budget streamed content takes. */
    double streamedDrawShare = 0.0;

    /**
     * Cloud-gaming genre: log-normal sigma of a per-frame load
     * multiplier, modeling variable-framerate capture where encode
     * deadlines modulate how much of the scene gets drawn. 0 disables.
     */
    double frameLoadSigma = 0.0;

    /** Cloud gaming: probability a frame is a congestion burst. */
    double burstFrameFraction = 0.0;

    /** Cloud gaming: load multiplier applied to burst frames. */
    double burstLoadMultiplier = 1.0;

    /**
     * Compute genre: fraction of scene materials that are
     * dispatch-style passes (ALU/MADD-heavy shaders, a handful of
     * vertices, huge pixel counts, no blending or depth). 0 disables.
     */
    double computeMaterialFraction = 0.0;

    /** Compute: dedicated compute-mix pixel shaders per level pool. */
    std::uint32_t computeShadersPerLevel = 0;

    /**
     * Multi-user genre: concurrent user streams composited into each
     * frame, each user viewing a (generally different) level. 1 =
     * single player.
     */
    std::uint32_t concurrentUsers = 1;

    /** Multi-user: probability a secondary user idles a given frame. */
    double userIdleProbability = 0.0;

    // --- output surface ---------------------------------------------------
    /** Render-target width. */
    std::uint32_t rtWidth = 1920;

    /** Render-target height. */
    std::uint32_t rtHeight = 1080;

    /** Panics if any parameter is out of range. */
    void validate() const;
};

/**
 * The built-in ten-game suite: three BioShock-series analogues
 * (shock1, shock2, shockinf), three genre-diversity games (frontier,
 * vanguard, circuit), and four stress genres (nomad: open-world
 * streaming, skylink: cloud-gaming capture, tensor: compute/dispatch
 * passes, legion: bursty multi-user mixes), at the requested scale.
 */
std::vector<GameProfile> builtinSuite(SuiteScale scale);

/** Profile of one built-in game by name; fatal() if unknown. */
GameProfile builtinProfile(const std::string &name, SuiteScale scale);

/** Names of the built-in games in canonical order. */
std::vector<std::string> builtinGameNames();

} // namespace gws

#endif // GWS_SYNTH_GAME_PROFILE_HH
