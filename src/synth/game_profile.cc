#include "synth/game_profile.hh"

#include "util/logging.hh"

namespace gws {

const char *
toString(SuiteScale scale)
{
    switch (scale) {
      case SuiteScale::Ci:
        return "ci";
      case SuiteScale::Paper:
        return "paper";
    }
    GWS_PANIC("unknown suite scale ", static_cast<int>(scale));
}

SuiteScale
parseSuiteScale(const std::string &text)
{
    if (text == "ci")
        return SuiteScale::Ci;
    if (text == "paper")
        return SuiteScale::Paper;
    GWS_FATAL("unknown scale '", text, "' (expected 'ci' or 'paper')");
}

void
GameProfile::validate() const
{
    GWS_ASSERT(levels >= 1, "need at least one level");
    GWS_ASSERT(segments >= 1, "need at least one segment");
    GWS_ASSERT(segmentFramesMin >= 1 &&
                   segmentFramesMax >= segmentFramesMin,
               "bad segment frame range");
    GWS_ASSERT(materialsPerLevel >= 1, "need materials");
    GWS_ASSERT(pixelShadersPerLevel >= 1, "need pixel shaders");
    GWS_ASSERT(vertexShadersPerLevel >= 1, "need vertex shaders");
    GWS_ASSERT(texturesPerLevel >= 1, "need textures");
    GWS_ASSERT(drawsPerFrame >= 1.0, "need at least ~1 draw per frame");
    GWS_ASSERT(medianPixelsPerDraw > 0.0, "pixel median must be positive");
    GWS_ASSERT(medianVertsPerDraw > 0.0, "vertex median must be positive");
    GWS_ASSERT(pixelSigma >= 0.0 && vertSigma >= 0.0 &&
                   effectPixelSigma >= 0.0,
               "sigmas must be non-negative");
    GWS_ASSERT(effectMaterialFraction >= 0.0 &&
                   effectMaterialFraction <= 1.0,
               "effect fraction out of [0,1]");
    GWS_ASSERT(blendFraction >= 0.0 && blendFraction <= 1.0,
               "blend fraction out of [0,1]");
    GWS_ASSERT(rtWidth >= 64 && rtHeight >= 64, "render target too small");
    GWS_ASSERT(streamedDrawShare >= 0.0 && streamedDrawShare < 1.0,
               "streamed draw share out of [0,1)");
    GWS_ASSERT(streamedMaterialsPerSegment == 0 ||
                   (streamedPixelShadersPerSegment >= 1 &&
                    streamedTexturesPerSegment >= 1 &&
                    streamedDrawShare > 0.0),
               "streaming needs shaders, textures and a draw share");
    GWS_ASSERT(frameLoadSigma >= 0.0, "frame load sigma negative");
    GWS_ASSERT(burstFrameFraction >= 0.0 && burstFrameFraction <= 1.0,
               "burst fraction out of [0,1]");
    GWS_ASSERT(burstLoadMultiplier >= 1.0, "burst multiplier < 1");
    GWS_ASSERT(computeMaterialFraction >= 0.0 &&
                   computeMaterialFraction <= 1.0,
               "compute fraction out of [0,1]");
    GWS_ASSERT(computeMaterialFraction == 0.0 ||
                   computeShadersPerLevel >= 1,
               "compute passes need a compute shader pool");
    GWS_ASSERT(concurrentUsers >= 1, "need at least one user");
    GWS_ASSERT(userIdleProbability >= 0.0 && userIdleProbability <= 1.0,
               "idle probability out of [0,1]");
}

namespace {

/**
 * Apply the scale knobs. CI keeps every game small; Paper sizes the
 * suite so the sampled characterization corpus reaches 717 frames and
 * ~828K draw calls (~1155 draws/frame on average).
 */
GameProfile
scaled(GameProfile p, SuiteScale scale, double paper_dpf,
       std::uint32_t paper_materials)
{
    if (scale == SuiteScale::Paper) {
        p.drawsPerFrame = paper_dpf;
        p.materialsPerLevel = paper_materials;
        p.segmentFramesMin *= 3;
        p.segmentFramesMax *= 3;
        p.texturesPerLevel *= 3;
        p.pixelShadersPerLevel += p.pixelShadersPerLevel / 2;
        p.hudMaterials += 4;
        // Genre pools grow with the same factors as the static pools
        // (all no-ops for the legacy games, whose knobs are 0).
        p.streamedMaterialsPerSegment *= 4;
        p.streamedPixelShadersPerSegment +=
            p.streamedPixelShadersPerSegment / 2;
        p.streamedTexturesPerSegment *= 3;
        p.computeShadersPerLevel += p.computeShadersPerLevel / 2;
    }
    p.validate();
    return p;
}

} // namespace

std::vector<GameProfile>
builtinSuite(SuiteScale scale)
{
    std::vector<GameProfile> suite;
    for (const auto &name : builtinGameNames())
        suite.push_back(builtinProfile(name, scale));
    return suite;
}

GameProfile
builtinProfile(const std::string &name, SuiteScale scale)
{
    GameProfile p;
    p.name = name;
    if (name == "shock1") {
        // Corridor FPS with strong level revisits (the series' first
        // game: fewer environments, dense atmosphere shaders).
        p.seed = 0x5110c701;
        p.levels = 4;
        p.segments = 10;
        p.segmentFramesMin = 10;
        p.segmentFramesMax = 20;
        p.materialsPerLevel = 38;
        p.pixelShadersPerLevel = 14;
        p.vertexShadersPerLevel = 4;
        p.texturesPerLevel = 44;
        p.drawsPerFrame = 110.0;
        p.blendFraction = 0.20;
        p.effectMaterialFraction = 0.035;
        return scaled(p, scale, 1030.0, 340);
    }
    if (name == "shock2") {
        p.seed = 0x5110c702;
        p.levels = 5;
        p.segments = 11;
        p.segmentFramesMin = 9;
        p.segmentFramesMax = 19;
        p.materialsPerLevel = 42;
        p.pixelShadersPerLevel = 16;
        p.vertexShadersPerLevel = 5;
        p.texturesPerLevel = 50;
        p.drawsPerFrame = 120.0;
        p.blendFraction = 0.22;
        p.effectMaterialFraction = 0.04;
        return scaled(p, scale, 1153.0, 380);
    }
    if (name == "shockinf") {
        // The third game: open skyline environments, biggest shader
        // pools, most pixels on screen.
        p.seed = 0x5110c703;
        p.levels = 6;
        p.segments = 12;
        p.segmentFramesMin = 8;
        p.segmentFramesMax = 18;
        p.materialsPerLevel = 46;
        p.pixelShadersPerLevel = 20;
        p.vertexShadersPerLevel = 6;
        p.texturesPerLevel = 56;
        p.drawsPerFrame = 132.0;
        p.medianPixelsPerDraw = 3600.0;
        p.blendFraction = 0.24;
        p.effectMaterialFraction = 0.045;
        return scaled(p, scale, 1267.0, 420);
    }
    if (name == "frontier") {
        // Open-world: few distinct biomes, many draws, long segments.
        p.genre = "openworld";
        p.seed = 0xf4011713;
        p.levels = 3;
        p.segments = 8;
        p.segmentFramesMin = 13;
        p.segmentFramesMax = 26;
        p.materialsPerLevel = 52;
        p.pixelShadersPerLevel = 17;
        p.vertexShadersPerLevel = 6;
        p.texturesPerLevel = 60;
        p.drawsPerFrame = 150.0;
        p.medianVertsPerDraw = 420.0;
        p.blendFraction = 0.15;
        p.effectMaterialFraction = 0.03;
        return scaled(p, scale, 1421.0, 465);
    }
    if (name == "vanguard") {
        // Sci-fi arena shooter: mid-size pools, lots of effects.
        p.genre = "arena";
        p.seed = 0x7a267a2d;
        p.levels = 4;
        p.segments = 9;
        p.segmentFramesMin = 10;
        p.segmentFramesMax = 20;
        p.materialsPerLevel = 36;
        p.pixelShadersPerLevel = 13;
        p.vertexShadersPerLevel = 4;
        p.texturesPerLevel = 40;
        p.drawsPerFrame = 100.0;
        p.blendFraction = 0.26;
        p.effectMaterialFraction = 0.05;
        return scaled(p, scale, 989.0, 330);
    }
    if (name == "circuit") {
        // Racer: high overdraw (foliage, fences), repetitive track
        // sections, strong frame-to-frame coherence.
        p.genre = "racing";
        p.seed = 0xc12c0171;
        p.levels = 3;
        p.segments = 8;
        p.segmentFramesMin = 11;
        p.segmentFramesMax = 22;
        p.materialsPerLevel = 40;
        p.pixelShadersPerLevel = 12;
        p.vertexShadersPerLevel = 4;
        p.texturesPerLevel = 46;
        p.drawsPerFrame = 115.0;
        p.medianPixelsPerDraw = 4200.0;
        p.blendFraction = 0.28;
        p.effectMaterialFraction = 0.03;
        return scaled(p, scale, 1112.0, 370);
    }
    if (name == "nomad") {
        // Open-world streaming: content streams into the resident
        // pool every segment, so the shader pool grows without bound
        // over the playthrough. Exact shader-vector phase recurrence
        // breaks by design; fuzzy (Jaccard) matching still finds the
        // level revisits underneath.
        p.genre = "streaming";
        p.seed = 0x401ad001;
        p.levels = 3;
        p.segments = 12;
        p.segmentFramesMin = 9;
        p.segmentFramesMax = 18;
        p.materialsPerLevel = 40;
        p.pixelShadersPerLevel = 17;
        p.vertexShadersPerLevel = 5;
        p.texturesPerLevel = 48;
        p.drawsPerFrame = 125.0;
        p.blendFraction = 0.18;
        p.effectMaterialFraction = 0.03;
        p.streamedMaterialsPerSegment = 6;
        p.streamedPixelShadersPerSegment = 2;
        p.streamedTexturesPerSegment = 4;
        p.streamedDrawShare = 0.25;
        return scaled(p, scale, 1350.0, 430);
    }
    if (name == "skylink") {
        // Cloud-gaming capture: a per-frame load multiplier models
        // variable-framerate encode deadlines, with occasional
        // congestion bursts — frame cost variance far above any
        // locally-rendered game.
        p.genre = "cloudgaming";
        p.seed = 0x5c1e0a0d;
        p.levels = 4;
        p.segments = 10;
        p.segmentFramesMin = 9;
        p.segmentFramesMax = 18;
        p.materialsPerLevel = 38;
        p.pixelShadersPerLevel = 14;
        p.vertexShadersPerLevel = 4;
        p.texturesPerLevel = 44;
        p.drawsPerFrame = 105.0;
        p.blendFraction = 0.20;
        p.effectMaterialFraction = 0.04;
        p.frameLoadSigma = 0.35;
        p.burstFrameFraction = 0.08;
        p.burstLoadMultiplier = 2.2;
        return scaled(p, scale, 980.0, 330);
    }
    if (name == "tensor") {
        // Compute/dispatch-heavy ML-style passes: nearly half the
        // scene materials are dispatch proxies (ALU/MADD-dense
        // shaders, 3 vertices, huge pixel counts, no blend/depth).
        p.genre = "compute";
        p.seed = 0x7e450001;
        p.levels = 3;
        p.segments = 8;
        p.segmentFramesMin = 9;
        p.segmentFramesMax = 18;
        p.materialsPerLevel = 36;
        p.pixelShadersPerLevel = 10;
        p.vertexShadersPerLevel = 3;
        p.texturesPerLevel = 36;
        p.drawsPerFrame = 115.0;
        p.medianPixelsPerDraw = 2800.0;
        p.blendFraction = 0.12;
        p.effectMaterialFraction = 0.02;
        p.computeMaterialFraction = 0.45;
        p.computeShadersPerLevel = 6;
        return scaled(p, scale, 1200.0, 360);
    }
    if (name == "legion") {
        // Bursty multi-user mix: two user streams composited per
        // frame, each viewing its own level, secondaries idling at
        // random — frames blend the material pools of several levels.
        p.genre = "multiuser";
        p.seed = 0x1e610001;
        p.levels = 4;
        p.segments = 9;
        p.segmentFramesMin = 10;
        p.segmentFramesMax = 20;
        p.materialsPerLevel = 36;
        p.pixelShadersPerLevel = 13;
        p.vertexShadersPerLevel = 4;
        p.texturesPerLevel = 40;
        p.drawsPerFrame = 120.0;
        p.blendFraction = 0.22;
        p.effectMaterialFraction = 0.04;
        p.concurrentUsers = 2;
        p.userIdleProbability = 0.35;
        return scaled(p, scale, 1240.0, 380);
    }
    GWS_FATAL("unknown built-in game '", name, "' (have: shock1, shock2, "
              "shockinf, frontier, vanguard, circuit, nomad, skylink, "
              "tensor, legion)");
}

std::vector<std::string>
builtinGameNames()
{
    return {"shock1", "shock2", "shockinf", "frontier", "vanguard",
            "circuit", "nomad", "skylink", "tensor", "legion"};
}

} // namespace gws
