/**
 * @file
 * The synthetic game generator: turns a GameProfile into a full
 * playthrough Trace. Generation is a pure function of the profile
 * (including its seed) — regenerating a profile always yields a
 * bit-identical trace.
 *
 * Structure produced:
 *  - one color render target, per-level texture and shader pools;
 *  - per-level material tables; each material fixes its shaders,
 *    textures, topology, blending, median geometry/coverage, and
 *    per-draw jitter (tight for scene materials, heavy-tailed for
 *    effect materials);
 *  - a playthrough schedule of segments that revisits levels (the
 *    source of recurring phases);
 *  - per frame: a sky draw, Poisson-sampled draws per active material
 *    with camera-driven coverage modulation, then HUD overlay draws.
 */

#ifndef GWS_SYNTH_GENERATOR_HH
#define GWS_SYNTH_GENERATOR_HH

#include <vector>

#include "synth/game_profile.hh"
#include "trace/trace.hh"

namespace gws {

/** Generates traces from game profiles. */
class GameGenerator
{
  public:
    /** Construct for a validated profile. */
    explicit GameGenerator(GameProfile profile);

    /** Generate the full playthrough trace. */
    Trace generate() const;

    /**
     * Ground-truth level id of each playthrough segment, in order.
     * Used only to validate phase detection, never by the methodology.
     */
    std::vector<std::uint32_t> levelSchedule() const;

    /** Frames in each segment, aligned with levelSchedule(). */
    std::vector<std::uint32_t> segmentFrames() const;

    /** The profile being generated. */
    const GameProfile &profile() const { return prof; }

  private:
    GameProfile prof;
};

} // namespace gws

#endif // GWS_SYNTH_GENERATOR_HH
