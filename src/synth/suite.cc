#include "synth/suite.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace gws {

std::vector<Trace>
generateSuite(SuiteScale scale)
{
    std::vector<Trace> suite;
    for (const auto &profile : builtinSuite(scale))
        suite.push_back(GameGenerator(profile).generate());
    return suite;
}

std::vector<std::uint64_t>
corpusQuotas(const std::vector<std::uint64_t> &frame_counts,
             std::uint64_t target_frames)
{
    std::uint64_t total = 0;
    for (std::uint64_t c : frame_counts)
        total += c;
    if (total <= target_frames)
        return frame_counts;

    // Largest-remainder apportionment, with each floor capped at the
    // trace's length so a short trace can never be asked for more
    // frames than it has.
    std::vector<std::uint64_t> quota(frame_counts.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::uint64_t assigned = 0;
    for (std::size_t ti = 0; ti < frame_counts.size(); ++ti) {
        const double exact =
            static_cast<double>(target_frames) *
            static_cast<double>(frame_counts[ti]) /
            static_cast<double>(total);
        quota[ti] = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(exact), frame_counts[ti]);
        assigned += quota[ti];
        remainders.push_back(
            {exact - static_cast<double>(
                         static_cast<std::uint64_t>(exact)),
             ti});
    }

    // Distribute the deficit by remainder, largest first; equal
    // remainders fall back to trace index so the corpus is identical
    // across toolchains (std::sort is not stable and the old
    // remainder-only comparator left ties platform-ordered). Traces
    // already at their frame count are skipped — their surplus lands
    // on whoever still has headroom.
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    for (const auto &r : remainders) {
        if (assigned == target_frames)
            break;
        if (quota[r.second] < frame_counts[r.second]) {
            ++quota[r.second];
            ++assigned;
        }
    }
    // A capped surplus can exceed one-frame-per-trace; sweep in index
    // order until the target is met (total > target guarantees the
    // headroom exists).
    while (assigned < target_frames) {
        bool progressed = false;
        for (std::size_t ti = 0;
             ti < frame_counts.size() && assigned < target_frames; ++ti) {
            if (quota[ti] < frame_counts[ti]) {
                ++quota[ti];
                ++assigned;
                progressed = true;
            }
        }
        GWS_ASSERT(progressed, "quota redistribution stalled");
    }
    GWS_ASSERT(assigned == target_frames, "quotas must sum to target");
    return quota;
}

std::vector<CorpusFrame>
sampleCorpus(const std::vector<Trace> &suite, std::uint64_t target_frames)
{
    GWS_ASSERT(target_frames >= 1, "corpus must have at least one frame");
    std::uint64_t total = 0;
    std::vector<std::uint64_t> frame_counts;
    frame_counts.reserve(suite.size());
    for (const auto &t : suite) {
        frame_counts.push_back(t.frameCount());
        total += t.frameCount();
    }
    GWS_ASSERT(total > 0, "suite has no frames");

    const std::vector<std::uint64_t> quota =
        corpusQuotas(frame_counts, target_frames);

    // Even stride within each trace, preserving playthrough order.
    std::vector<CorpusFrame> corpus;
    for (std::size_t ti = 0; ti < suite.size(); ++ti) {
        for (std::uint64_t k = 0; k < quota[ti]; ++k) {
            const auto fi = static_cast<std::uint32_t>(
                k * frame_counts[ti] / quota[ti]);
            corpus.push_back({ti, fi});
        }
    }
    GWS_ASSERT(corpus.size() ==
                   std::min<std::uint64_t>(target_frames, total),
               "corpus size must be exactly min(target, total)");
    return corpus;
}

std::uint64_t
defaultCorpusFrames(SuiteScale scale)
{
    return scale == SuiteScale::Paper ? paperCorpusFrames : 72;
}

std::uint64_t
corpusDraws(const std::vector<Trace> &suite,
            const std::vector<CorpusFrame> &corpus)
{
    std::uint64_t draws = 0;
    for (const auto &cf : corpus) {
        GWS_ASSERT(cf.traceIndex < suite.size(), "corpus trace index");
        draws += suite[cf.traceIndex].frame(cf.frameIndex).drawCount();
    }
    return draws;
}

} // namespace gws
