#include "synth/suite.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace gws {

std::vector<Trace>
generateSuite(SuiteScale scale)
{
    std::vector<Trace> suite;
    for (const auto &profile : builtinSuite(scale))
        suite.push_back(GameGenerator(profile).generate());
    return suite;
}

std::vector<CorpusFrame>
sampleCorpus(const std::vector<Trace> &suite, std::uint64_t target_frames)
{
    GWS_ASSERT(target_frames >= 1, "corpus must have at least one frame");
    std::uint64_t total = 0;
    for (const auto &t : suite)
        total += t.frameCount();
    GWS_ASSERT(total > 0, "suite has no frames");

    std::vector<CorpusFrame> corpus;
    if (total <= target_frames) {
        for (std::size_t ti = 0; ti < suite.size(); ++ti) {
            for (std::uint32_t fi = 0; fi < suite[ti].frameCount(); ++fi)
                corpus.push_back({ti, fi});
        }
        return corpus;
    }

    // Largest-remainder apportionment of the target across traces,
    // then an even stride within each trace.
    std::vector<std::uint64_t> quota(suite.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::uint64_t assigned = 0;
    for (std::size_t ti = 0; ti < suite.size(); ++ti) {
        const double exact =
            static_cast<double>(target_frames) *
            static_cast<double>(suite[ti].frameCount()) /
            static_cast<double>(total);
        quota[ti] = static_cast<std::uint64_t>(exact);
        assigned += quota[ti];
        remainders.push_back({exact - static_cast<double>(quota[ti]), ti});
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (std::size_t i = 0; assigned < target_frames && i < remainders.size();
         ++i, ++assigned)
        ++quota[remainders[i].second];

    for (std::size_t ti = 0; ti < suite.size(); ++ti) {
        const std::uint64_t n = std::min<std::uint64_t>(
            quota[ti], suite[ti].frameCount());
        for (std::uint64_t k = 0; k < n; ++k) {
            const auto fi = static_cast<std::uint32_t>(
                k * suite[ti].frameCount() / n);
            corpus.push_back({ti, fi});
        }
    }
    return corpus;
}

std::uint64_t
defaultCorpusFrames(SuiteScale scale)
{
    return scale == SuiteScale::Paper ? paperCorpusFrames : 72;
}

std::uint64_t
corpusDraws(const std::vector<Trace> &suite,
            const std::vector<CorpusFrame> &corpus)
{
    std::uint64_t draws = 0;
    for (const auto &cf : corpus) {
        GWS_ASSERT(cf.traceIndex < suite.size(), "corpus trace index");
        draws += suite[cf.traceIndex].frame(cf.frameIndex).drawCount();
    }
    return draws;
}

} // namespace gws
