#include "gpusim/gpu_simulator.hh"

#include <algorithm>

#include "gpusim/draw_work_cache.hh"
#include "partition/shards.hh"
#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"

namespace gws {

const char *
toString(Stage stage)
{
    switch (stage) {
      case Stage::Setup:
        return "setup";
      case Stage::VertexFetch:
        return "vfetch";
      case Stage::VertexShade:
        return "vshade";
      case Stage::Raster:
        return "raster";
      case Stage::PixelShade:
        return "pshade";
      case Stage::Texture:
        return "texture";
      case Stage::Rop:
        return "rop";
      case Stage::L2:
        return "l2";
      case Stage::Dram:
        return "dram";
      case Stage::NumStages:
        break;
    }
    GWS_PANIC("unknown stage ", static_cast<int>(stage));
}

double
TraceCost::meanFrameMs() const
{
    if (frames.empty())
        return 0.0;
    return totalNs / static_cast<double>(frames.size()) * 1e-6;
}

double
TraceCost::fps() const
{
    const double ms = meanFrameMs();
    return ms > 0.0 ? 1000.0 / ms : 0.0;
}

GpuSimulator::GpuSimulator(GpuConfig config)
    : cfg(std::move(config)), memory(cfg),
      capacityKey(capacityConfigHash(cfg))
{
    cfg.validate();
}

double
GpuSimulator::weightedOps(const InstructionMix &mix) const
{
    // Special-function ops occupy the SIMD unit for specialOpWeight
    // cycles; a texture op costs one issue slot (the filtering itself
    // is priced by the texture stage).
    return static_cast<double>(mix.aluOps) + mix.maddOps + mix.interpOps +
           mix.controlOps + mix.texOps +
           cfg.specialOpWeight * mix.specialOps;
}

DrawWork
GpuSimulator::computeDrawWork(const Trace &trace,
                              const DrawCall &draw) const
{
    if (!drawWorkCacheEnabled())
        return computeDrawWorkUncached(trace, draw);
    const DrawWorkKey key = drawWorkKey(trace, draw, capacityKey);
    DrawWork work;
    if (drawWorkCacheLookup(key, &work)) {
        runtime_detail::noteDrawCache(1, 0);
        return work;
    }
    work = computeDrawWorkUncached(trace, draw);
    drawWorkCacheInsert(key, work);
    runtime_detail::noteDrawCache(0, 1);
    return work;
}

DrawWork
GpuSimulator::computeDrawWorkUncached(const Trace &trace,
                                      const DrawCall &draw) const
{
    const auto &vs = trace.shaders().get(draw.state.vertexShader);
    const auto &ps = trace.shaders().get(draw.state.pixelShader);
    GWS_ASSERT(vs.stage() == ShaderStage::Vertex,
               "draw binds non-vertex shader in VS slot");
    GWS_ASSERT(ps.stage() == ShaderStage::Pixel,
               "draw binds non-pixel shader in PS slot");

    DrawWork work;
    work.vertices = static_cast<double>(draw.vertices());
    work.primitives = static_cast<double>(draw.primitives());
    work.pixels = static_cast<double>(draw.shadedPixels);
    work.vertexFetchBytes = static_cast<double>(draw.vertexFetchBytes());
    work.vsWeightedOps = weightedOps(vs.mix());
    work.psWeightedOps = weightedOps(ps.mix());
    work.ropPixels = work.pixels * (draw.state.blendEnabled ? 2.0 : 1.0);
    work.traffic = memory.drawTraffic(trace, draw);
    return work;
}

DrawCost
GpuSimulator::timeDrawWork(const DrawWork &work) const
{
    DrawCost cost;
    cost.traffic = work.traffic;
    const double core_ghz = cfg.coreClockGhz;

    auto set = [&](Stage s, double ns) {
        cost.stageNs[static_cast<std::size_t>(s)] = ns;
    };

    // Command-processor setup: serial, not overlapped with the rest.
    const double setup_ns = cfg.drawSetupCycles / core_ghz;
    set(Stage::Setup, setup_ns);

    // Core-domain throughput stages (cycles -> ns at the core clock).
    set(Stage::VertexFetch,
        work.vertexFetchBytes / cfg.vertexFetchBytesPerCycle / core_ghz);
    set(Stage::VertexShade,
        work.vertices * work.vsWeightedOps / cfg.opsPerCycle() /
            core_ghz);
    set(Stage::Raster,
        (work.primitives / cfg.rasterPrimsPerCycle +
         work.pixels / cfg.rasterPixelsPerCycle) /
            core_ghz);
    set(Stage::PixelShade,
        work.pixels * work.psWeightedOps / cfg.opsPerCycle() / core_ghz);
    set(Stage::Texture,
        static_cast<double>(work.traffic.texSamples) /
            cfg.texSamplesPerCycle / core_ghz);
    set(Stage::Rop, work.ropPixels / cfg.ropPixelsPerCycle / core_ghz);
    set(Stage::L2,
        work.traffic.totalL2Bytes() / cfg.l2BytesPerCycle / core_ghz);

    // Memory-domain stage: scales with the memory clock only.
    set(Stage::Dram,
        work.traffic.totalDramBytes() / cfg.dramBandwidthBytesPerNs());

    // Fully-pipelined overlap: wall time = setup + slowest stage.
    double worst = 0.0;
    Stage worst_stage = Stage::VertexFetch;
    for (std::size_t s = static_cast<std::size_t>(Stage::VertexFetch);
         s < numStages; ++s) {
        if (cost.stageNs[s] > worst) {
            worst = cost.stageNs[s];
            worst_stage = static_cast<Stage>(s);
        }
    }
    cost.totalNs = setup_ns + worst;
    cost.bottleneck = worst > setup_ns ? worst_stage : Stage::Setup;
    return cost;
}

DrawCost
GpuSimulator::simulateDraw(const Trace &trace, const DrawCall &draw) const
{
    return timeDrawWork(computeDrawWork(trace, draw));
}

FrameCost
GpuSimulator::simulateFrame(const Trace &trace, const Frame &frame) const
{
    // Draws are priced in parallel (the model is per-draw pure) into
    // index-addressed vectors; the accumulation below then runs
    // serially in submission order, so every sum is bit-identical to
    // a single-threaded run regardless of thread count.
    const auto &draws = frame.draws();
    const std::size_t n = draws.size();

    obs::SpanScope span("gpusim.simulateFrame");
    FrameCost fc;
    fc.frameIndex = frame.index();
    fc.drawNs.resize(n);
    std::vector<Stage> bottlenecks(n);
    parallelFor(0, n, drawGrain, [&](std::size_t i) {
        const DrawCost dc = simulateDraw(trace, draws[i]);
        fc.drawNs[i] = dc.totalNs;
        bottlenecks[i] = dc.bottleneck;
    });

    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += fc.drawNs[i];
        const auto b = static_cast<std::size_t>(bottlenecks[i]);
        fc.bottleneckNs[b] += fc.drawNs[i];
        ++fc.bottleneckCount[b];
    }
    fc.totalNs = total + cfg.frameOverheadUs * 1e3;
    return fc;
}

TraceCost
GpuSimulator::simulateTrace(const Trace &trace) const
{
    // Frames are independent, so the whole trace fans out across
    // threads; a frame simulated on a pool worker prices its draws
    // inline (nested loops degrade gracefully). On the balanced
    // partition path frames are grouped into equal-draw-count shards
    // (skewed traces leave no thread pinned to one heavy chunk); the
    // naive path keeps one frame per chunk. Either way frame costs
    // land at their index and the totals are reduced in frame order
    // afterwards, so the paths are bit-identical.
    ScopedRegion region("gpusim.simulateTrace");
    TraceCost tc;
    const std::size_t n = trace.frameCount();
    if (!partitionUsesNaivePath(PartitionPath::Auto) && n > 1 &&
        resolvedThreadCount() > 1) {
        std::vector<double> costs(n);
        for (std::size_t i = 0; i < n; ++i)
            costs[i] =
                static_cast<double>(trace.frame(i).draws().size()) +
                1.0;
        const ShardPlan plan = partitionTraceShards(
            costs, defaultShardCount(n), defaultPartitionCostFn());
        tc.frames.resize(n);
        parallelShards(plan.bounds,
                       [&](std::size_t b, std::size_t e) {
                           for (std::size_t i = b; i < e; ++i)
                               tc.frames[i] = simulateFrame(
                                   trace, trace.frame(i));
                       });
    } else {
        tc.frames = parallelMap<FrameCost>(
            0, n, 1, [&](std::size_t i) {
                return simulateFrame(trace, trace.frame(i));
            });
    }
    for (const FrameCost &fc : tc.frames) {
        tc.totalNs += fc.totalNs;
        tc.drawsSimulated += fc.drawNs.size();
    }
    return tc;
}

} // namespace gws
