#include "gpusim/memory_system.hh"

#include <algorithm>

#include "gpusim/access_stream.hh"

namespace gws {

double
MemoryTraffic::totalL2Bytes() const
{
    // Texture fills plus the vertex stream and the DRAM-bound RT
    // traffic all cross the L2 data paths.
    return texL2FillBytes + vertexDramBytes + rtDramBytes;
}

double
MemoryTraffic::totalDramBytes() const
{
    return texDramBytes + vertexDramBytes + rtDramBytes;
}

MemorySystem::MemorySystem(const GpuConfig &config) : cfg(config)
{
    cfg.validate();
}

MemoryTraffic
MemorySystem::drawTraffic(const Trace &trace, const DrawCall &draw) const
{
    MemoryTraffic t;

    // --- vertex stream (compulsory, streaming) --------------------------
    t.vertexDramBytes = static_cast<double>(draw.vertexFetchBytes());

    // --- render target + depth ------------------------------------------
    const auto &rt = trace.renderTarget(draw.state.renderTarget);
    double rt_bytes =
        static_cast<double>(draw.shadedPixels) * rt.bytesPerPixel;
    if (draw.state.blendEnabled)
        rt_bytes *= 2.0; // read-modify-write
    double depth_bytes = 0.0;
    constexpr double depth_bpp = 4.0;
    if (draw.state.depthTestEnabled)
        depth_bytes += static_cast<double>(draw.shadedPixels) * depth_bpp;
    if (draw.state.depthWriteEnabled)
        depth_bytes +=
            static_cast<double>(draw.coveredPixels()) * depth_bpp;
    t.rtDramBytes = (rt_bytes + depth_bytes) * cfg.rtTrafficDramFraction;

    // --- textures ---------------------------------------------------------
    const auto &ps = trace.shaders().get(draw.state.pixelShader);
    t.texSamples = draw.shadedPixels * ps.mix().texOps;
    if (t.texSamples == 0 || draw.state.textures.empty())
        return t;

    std::uint64_t bound_bytes = 0;
    std::uint64_t bpt_sum = 0;
    for (TextureId id : draw.state.textures) {
        const TextureDesc &tex = trace.texture(id);
        bound_bytes += tex.sizeBytes();
        bpt_sum += tex.bytesPerTexel;
    }
    const double avg_bpt = static_cast<double>(bpt_sum) /
                           static_cast<double>(draw.state.textures.size());

    StreamParams params;
    params.totalAccesses = t.texSamples;
    // Thanks to mip selection the touched texel count tracks the sample
    // count, bounded by what is actually bound.
    params.footprintBytes = std::min<std::uint64_t>(
        bound_bytes,
        std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                static_cast<double>(t.texSamples) * avg_bpt),
            cfg.texL1.lineBytes));
    params.locality = draw.texLocality;
    params.seed = mixSeed(draw.materialId,
                          (static_cast<std::uint64_t>(
                               draw.state.pixelShader)
                           << 32) |
                              draw.state.vertexShader,
                          draw.shadedPixels ^ bound_bytes);

    const StreamResult sr = runTextureStream(
        params, cfg.texL1, cfg.l2, cfg.maxSampledTexAccesses);
    t.texL1HitRate = sr.l1HitRate;
    t.texL2HitRate = sr.l2HitRate;
    t.texL2FillBytes = sr.l1Misses * cfg.texL1.lineBytes;
    t.texDramBytes = sr.l2Misses * cfg.l2.lineBytes;
    return t;
}

} // namespace gws
