#include "gpusim/memory_system.hh"

#include <algorithm>
#include <mutex>

#include "gpusim/access_stream.hh"
#include "runtime/counters.hh"

namespace gws {

namespace {

/** splitmix64 finalizer — the same mixer the draw-work cache uses. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Hash of (texture-table epoch, bound id list), order-sensitive. */
std::uint64_t
texBindKey(const Trace &trace, const DrawCall &draw)
{
    std::uint64_t key = mix64(trace.textureEpoch());
    for (TextureId id : draw.state.textures)
        key = mix64(key ^ id);
    return key;
}

} // namespace

double
MemoryTraffic::totalL2Bytes() const
{
    // Texture fills plus the vertex stream and the DRAM-bound RT
    // traffic all cross the L2 data paths.
    return texL2FillBytes + vertexDramBytes + rtDramBytes;
}

double
MemoryTraffic::totalDramBytes() const
{
    return texDramBytes + vertexDramBytes + rtDramBytes;
}

MemorySystem::MemorySystem(const GpuConfig &config) : cfg(config)
{
    cfg.validate();
}

MemorySystem::TexBindScan
MemorySystem::boundTextureScan(const Trace &trace,
                               const DrawCall &draw) const
{
    const std::uint64_t key = texBindKey(trace, draw);
    {
        std::shared_lock<std::shared_mutex> lock(texBindMutex);
        const auto it = texBindMemo.find(key);
        if (it != texBindMemo.end()) {
            runtime_detail::noteTexBindScan(1, 0);
            return it->second;
        }
    }

    TexBindScan scan;
    for (TextureId id : draw.state.textures) {
        const TextureDesc &tex = trace.texture(id);
        scan.boundBytes += tex.sizeBytes();
        scan.bytesPerTexelSum += tex.bytesPerTexel;
    }
    runtime_detail::noteTexBindScan(0, 1);

    std::unique_lock<std::shared_mutex> lock(texBindMutex);
    texBindMemo.emplace(key, scan);
    return scan;
}

MemoryTraffic
MemorySystem::drawTraffic(const Trace &trace, const DrawCall &draw) const
{
    MemoryTraffic t;

    // --- vertex stream (compulsory, streaming) --------------------------
    t.vertexDramBytes = static_cast<double>(draw.vertexFetchBytes());

    // --- render target + depth ------------------------------------------
    const auto &rt = trace.renderTarget(draw.state.renderTarget);
    double rt_bytes =
        static_cast<double>(draw.shadedPixels) * rt.bytesPerPixel;
    if (draw.state.blendEnabled)
        rt_bytes *= 2.0; // read-modify-write
    double depth_bytes = 0.0;
    constexpr double depth_bpp = 4.0;
    if (draw.state.depthTestEnabled)
        depth_bytes += static_cast<double>(draw.shadedPixels) * depth_bpp;
    if (draw.state.depthWriteEnabled)
        depth_bytes +=
            static_cast<double>(draw.coveredPixels()) * depth_bpp;
    t.rtDramBytes = (rt_bytes + depth_bytes) * cfg.rtTrafficDramFraction;

    // --- textures ---------------------------------------------------------
    const auto &ps = trace.shaders().get(draw.state.pixelShader);
    t.texSamples = draw.shadedPixels * ps.mix().texOps;
    if (t.texSamples == 0 || draw.state.textures.empty())
        return t;

    const TexBindScan scan = boundTextureScan(trace, draw);
    const std::uint64_t bound_bytes = scan.boundBytes;
    const double avg_bpt = static_cast<double>(scan.bytesPerTexelSum) /
                           static_cast<double>(draw.state.textures.size());

    StreamParams params;
    params.totalAccesses = t.texSamples;
    // Thanks to mip selection the touched texel count tracks the sample
    // count, bounded by what is actually bound.
    params.footprintBytes = std::min<std::uint64_t>(
        bound_bytes,
        std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                static_cast<double>(t.texSamples) * avg_bpt),
            cfg.texL1.lineBytes));
    params.locality = draw.texLocality;
    params.seed = mixSeed(draw.materialId,
                          (static_cast<std::uint64_t>(
                               draw.state.pixelShader)
                           << 32) |
                              draw.state.vertexShader,
                          draw.shadedPixels ^ bound_bytes);

    const StreamResult sr = runTextureStream(
        params, cfg.texL1, cfg.l2, cfg.maxSampledTexAccesses);
    t.texL1HitRate = sr.l1HitRate;
    t.texL2HitRate = sr.l2HitRate;
    t.texL2FillBytes = sr.l1Misses * cfg.texL1.lineBytes;
    t.texDramBytes = sr.l2Misses * cfg.l2.lineBytes;
    return t;
}

} // namespace gws
