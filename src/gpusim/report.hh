/**
 * @file
 * Bottleneck characterization of workloads: which pipeline stage
 * limits each draw, aggregated over frames and traces. Architects use
 * this to read a workload's compute/memory balance — and it explains
 * *why* frequency-scaling curves bend (DRAM-bottlenecked time does
 * not scale with the core clock).
 */

#ifndef GWS_GPUSIM_REPORT_HH
#define GWS_GPUSIM_REPORT_HH

#include "gpusim/gpu_simulator.hh"

namespace gws {

/** Aggregated bottleneck distribution of a workload. */
struct BottleneckProfile
{
    /** Fraction of draw calls bottlenecked on each stage. */
    std::array<double, numStages> drawFraction{};

    /** Fraction of total draw time spent in draws bottlenecked there. */
    std::array<double, numStages> timeFraction{};

    /** Draws profiled. */
    std::uint64_t draws = 0;

    /** Total draw time (ns) profiled. */
    double totalNs = 0.0;

    /** The stage holding the largest time fraction. */
    Stage dominant() const;

    /**
     * Fraction of draw time bottlenecked on the memory domain (DRAM);
     * the part of the workload core-frequency scaling cannot help.
     */
    double memoryBoundTimeFraction() const;

    /** Accessors by stage. */
    double drawShare(Stage s) const
    {
        return drawFraction[static_cast<std::size_t>(s)];
    }
    double timeShare(Stage s) const
    {
        return timeFraction[static_cast<std::size_t>(s)];
    }
};

/** Profile one frame (already-simulated cost). */
BottleneckProfile profileFrame(const FrameCost &frame);

/** Simulate and profile a whole trace. */
BottleneckProfile profileTrace(const GpuSimulator &simulator,
                               const Trace &trace);

/** Merge two profiles (weighted by time and draw counts). */
BottleneckProfile merge(const BottleneckProfile &a,
                        const BottleneckProfile &b);

} // namespace gws

#endif // GWS_GPUSIM_REPORT_HH
