#include "gpusim/draw_work_cache.hh"

#include <atomic>
#include <bit>
#include <mutex>
#include <unordered_map>

#include "gpusim/gpu_simulator.hh"
#include "util/env.hh"

namespace gws {

namespace {

/** SplitMix64 finalizer: the avalanche step both key lanes use. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Two independently seeded mix chains over the same word stream. */
class KeyBuilder
{
  public:
    void add(std::uint64_t w)
    {
        lane_a = mix64(lane_a ^ w);
        lane_b = mix64(lane_b + w * 0x9e3779b97f4a7c15ULL + 1);
    }

    void addDouble(double d) { add(std::bit_cast<std::uint64_t>(d)); }

    DrawWorkKey key() const { return DrawWorkKey{lane_a, lane_b}; }

    std::uint64_t single() const { return lane_a; }

  private:
    std::uint64_t lane_a = 0x243f6a8885a308d3ULL;
    std::uint64_t lane_b = 0x13198a2e03707344ULL;
};

struct KeyHash
{
    std::size_t operator()(const DrawWorkKey &k) const
    {
        return static_cast<std::size_t>(k.lo);
    }
};

constexpr std::size_t numShards = 64;

struct Shard
{
    std::mutex mutex;
    std::unordered_map<DrawWorkKey, DrawWork, KeyHash> map;
};

Shard &
shardFor(const DrawWorkKey &key)
{
    static Shard shards[numShards];
    return shards[key.lo % numShards];
}

// Touch every shard once so shardFor's static array outlives callers.
struct ShardInit
{
    ShardInit()
    {
        for (std::uint64_t s = 0; s < numShards; ++s)
            shardFor(DrawWorkKey{s, 0});
    }
} g_shard_init;

std::atomic<std::size_t> g_entries{0};

std::size_t
maxEntries()
{
    static const std::size_t cap =
        envSize("GWS_DRAW_CACHE_ENTRIES", 256 * 1024);
    return cap;
}

} // namespace

std::uint64_t
capacityConfigHash(const GpuConfig &config)
{
    KeyBuilder kb;
    kb.addDouble(config.specialOpWeight);
    kb.add(config.texL1.sizeBytes);
    kb.add(config.texL1.lineBytes);
    kb.add(config.texL1.ways);
    kb.add(config.l2.sizeBytes);
    kb.add(config.l2.lineBytes);
    kb.add(config.l2.ways);
    kb.addDouble(config.rtTrafficDramFraction);
    kb.add(config.maxSampledTexAccesses);
    return kb.single();
}

DrawWorkKey
drawWorkKey(const Trace &trace, const DrawCall &draw,
            std::uint64_t capacityHash)
{
    KeyBuilder kb;
    kb.add(capacityHash);
    kb.add(draw.vertexCount);
    kb.add(draw.instanceCount);
    kb.add(static_cast<std::uint64_t>(draw.topology));
    kb.add(draw.vertexStrideBytes);
    kb.add(draw.shadedPixels);
    kb.addDouble(draw.overdraw);
    kb.addDouble(draw.texLocality);
    kb.add(draw.materialId);
    // Shader ids seed the texture stream, so they are key material in
    // their own right, beyond the mixes they resolve to.
    kb.add(draw.state.vertexShader);
    kb.add(draw.state.pixelShader);
    kb.add((draw.state.blendEnabled ? 1ULL : 0ULL) |
           (draw.state.depthTestEnabled ? 2ULL : 0ULL) |
           (draw.state.depthWriteEnabled ? 4ULL : 0ULL));

    const auto addMix = [&kb](const InstructionMix &mix) {
        kb.add(mix.aluOps);
        kb.add(mix.maddOps);
        kb.add(mix.specialOps);
        kb.add(mix.texOps);
        kb.add(mix.interpOps);
        kb.add(mix.controlOps);
    };
    addMix(trace.shaders().get(draw.state.vertexShader).mix());
    addMix(trace.shaders().get(draw.state.pixelShader).mix());

    kb.add(trace.renderTarget(draw.state.renderTarget).bytesPerPixel);

    kb.add(draw.state.textures.size());
    for (TextureId id : draw.state.textures) {
        const TextureDesc &tex = trace.texture(id);
        kb.add(tex.sizeBytes());
        kb.add(tex.bytesPerTexel);
    }
    return kb.key();
}

bool
drawWorkCacheEnabled()
{
    static const bool enabled = envBool("GWS_DRAW_CACHE", true);
    return enabled;
}

bool
drawWorkCacheLookup(const DrawWorkKey &key, DrawWork *out)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end())
        return false;
    *out = it->second;
    return true;
}

void
drawWorkCacheInsert(const DrawWorkKey &key, const DrawWork &work)
{
    if (g_entries.load(std::memory_order_relaxed) >= maxEntries())
        return;
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.emplace(key, work).second)
        g_entries.fetch_add(1, std::memory_order_relaxed);
}

std::size_t
drawWorkCacheSize()
{
    return g_entries.load(std::memory_order_relaxed);
}

void
drawWorkCacheClear()
{
    for (std::uint64_t s = 0; s < numShards; ++s) {
        Shard &shard = shardFor(DrawWorkKey{s, 0});
        std::lock_guard<std::mutex> lock(shard.mutex);
        g_entries.fetch_sub(shard.map.size(),
                            std::memory_order_relaxed);
        shard.map.clear();
    }
}

} // namespace gws
