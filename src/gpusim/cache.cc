#include "gpusim/cache.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gws {

std::uint64_t
CacheConfig::sets() const
{
    GWS_ASSERT(lineBytes > 0 && ways > 0, "degenerate cache geometry");
    const std::uint64_t raw = sizeBytes / (static_cast<std::uint64_t>(
                                               lineBytes) *
                                           ways);
    return std::max<std::uint64_t>(raw, 1);
}

CacheConfig
CacheConfig::scaledDown(double factor) const
{
    GWS_ASSERT(factor >= 1.0, "scale-down factor below 1: ", factor);
    CacheConfig mini = *this;
    const double scaled =
        static_cast<double>(sizeBytes) / factor;
    const std::uint64_t min_size =
        static_cast<std::uint64_t>(lineBytes) * ways;
    mini.sizeBytes = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(std::llround(scaled)), min_size);
    return mini;
}

double
CacheStats::hitRate() const
{
    if (accesses == 0)
        return 1.0;
    return static_cast<double>(hits) / static_cast<double>(accesses);
}

Cache::Cache(const CacheConfig &config)
    : geometry(config), numSets(config.sets()),
      lines(numSets * config.ways)
{
    GWS_ASSERT((geometry.lineBytes & (geometry.lineBytes - 1)) == 0,
               "line size must be a power of two: ", geometry.lineBytes);
}

std::uint64_t
Cache::setIndex(std::uint64_t address) const
{
    return (address / geometry.lineBytes) % numSets;
}

std::uint64_t
Cache::tagOf(std::uint64_t address) const
{
    return (address / geometry.lineBytes) / numSets;
}

bool
Cache::access(std::uint64_t address)
{
    ++statistics.accesses;
    ++useCounter;
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    Line *base = &lines[set * geometry.ways];

    Line *victim = base;
    for (std::uint32_t w = 0; w < geometry.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useCounter;
            ++statistics.hits;
            return true;
        }
        if (!line.valid) {
            victim = &line; // prefer an invalid way
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useCounter;
    return false;
}

bool
Cache::probe(std::uint64_t address) const
{
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    const Line *base = &lines[set * geometry.ways];
    for (std::uint32_t w = 0; w < geometry.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    std::fill(lines.begin(), lines.end(), Line{});
    useCounter = 0;
    statistics = CacheStats{};
}

} // namespace gws
