#include "gpusim/clock.hh"

#include "util/logging.hh"

namespace gws {

ClockDomain::ClockDomain(double ghz_) : ghz(ghz_)
{
    GWS_ASSERT(ghz > 0.0, "clock frequency must be positive: ", ghz);
}

ClockDomain
ClockDomain::scaled(double factor) const
{
    GWS_ASSERT(factor > 0.0, "clock scale must be positive: ", factor);
    return ClockDomain(ghz * factor);
}

} // namespace gws
