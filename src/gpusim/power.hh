/**
 * @file
 * First-order GPU power and energy model. Architecture pathfinding
 * ultimately optimizes performance per watt, so the frequency-scaling
 * study has a natural energy extension: dynamic power follows
 * C_eff * V(f)^2 * f with a linear voltage-frequency curve, leakage
 * scales with voltage, and DRAM traffic is charged per byte. Energy
 * integrates those powers over the simulated execution time.
 */

#ifndef GWS_GPUSIM_POWER_HH
#define GWS_GPUSIM_POWER_HH

#include "gpusim/gpu_config.hh"

namespace gws {

/** Parameters of the power model. */
struct PowerConfig
{
    /** Supply voltage at a 1.0 GHz core clock (volts). */
    double voltageAt1Ghz = 0.90;

    /** Additional volts per GHz of core clock (linear V-f curve). */
    double voltageSlopePerGhz = 0.25;

    /** Minimum supply voltage the process supports (volts). */
    double minVoltage = 0.65;

    /**
     * Effective switched capacitance of the core domain in nanofarads;
     * dynamic watts = C_eff(nF) * V^2 * f(GHz).
     */
    double switchedCapacitanceNf = 18.0;

    /** Leakage watts per volt of supply. */
    double leakagePerVolt = 6.0;

    /** DRAM access energy in picojoules per byte. */
    double dramPicojoulesPerByte = 20.0;

    /** Constant board/aux power in watts. */
    double boardWatts = 3.0;

    /** Supply voltage at the given core clock (GHz). */
    double voltageAt(double core_ghz) const;

    /** Core dynamic power (watts) at the given clock. */
    double dynamicWatts(double core_ghz) const;

    /** Leakage power (watts) at the given clock's voltage. */
    double leakageWatts(double core_ghz) const;

    /** Panics on non-physical parameters. */
    void validate() const;
};

/** Time-and-traffic summary of a (full or predicted) execution. */
struct WorkloadEstimate
{
    /** Execution time in nanoseconds. */
    double ns = 0.0;

    /** DRAM bytes moved. */
    double dramBytes = 0.0;
};

/** Energy breakdown of one execution at one design point. */
struct EnergyReport
{
    /** Core dynamic energy (joules). */
    double dynamicJ = 0.0;

    /** Leakage energy (joules). */
    double leakageJ = 0.0;

    /** DRAM access energy (joules). */
    double dramJ = 0.0;

    /** Board/aux energy (joules). */
    double boardJ = 0.0;

    /** Execution time (seconds). */
    double seconds = 0.0;

    /** Total energy (joules). */
    double totalJ() const;

    /** Average power (watts). */
    double averageWatts() const;

    /** Energy-delay product (joule-seconds) — the DVFS figure of merit. */
    double energyDelay() const;
};

/**
 * Energy of executing the given workload estimate on the given design
 * point under the power model.
 */
EnergyReport estimateEnergy(const WorkloadEstimate &workload,
                            const GpuConfig &config,
                            const PowerConfig &power);

} // namespace gws

#endif // GWS_GPUSIM_POWER_HH
