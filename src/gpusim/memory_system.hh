/**
 * @file
 * Per-draw memory behavior: texture accesses filtered through the
 * two-level cache hierarchy, plus vertex and render-target traffic,
 * reduced to L2 and DRAM byte counts the timing model prices.
 */

#ifndef GWS_GPUSIM_MEMORY_SYSTEM_HH
#define GWS_GPUSIM_MEMORY_SYSTEM_HH

#include <shared_mutex>
#include <unordered_map>

#include "gpusim/gpu_config.hh"
#include "trace/trace.hh"

namespace gws {

/** Memory traffic of one draw call, by source. */
struct MemoryTraffic
{
    /** Texture samples issued. */
    std::uint64_t texSamples = 0;

    /** Texture L1 hit rate over sampled stream. */
    double texL1HitRate = 1.0;

    /** Texture L2 hit rate over L1 misses. */
    double texL2HitRate = 1.0;

    /** Bytes filled from L2 into the texture L1. */
    double texL2FillBytes = 0.0;

    /** Texture bytes fetched from DRAM (L2 misses). */
    double texDramBytes = 0.0;

    /** Vertex attribute bytes streamed from DRAM. */
    double vertexDramBytes = 0.0;

    /** Color + depth traffic reaching DRAM (after ROP-cache absorption). */
    double rtDramBytes = 0.0;

    /** All bytes crossing the L2 (both directions, all clients). */
    double totalL2Bytes() const;

    /** All bytes crossing the DRAM bus. */
    double totalDramBytes() const;
};

/**
 * Memory-hierarchy model bound to one GpuConfig. Stateless across
 * draws by design: a draw's memory cost is a pure function of the draw,
 * so representative draws can be priced in isolation.
 */
class MemorySystem
{
  public:
    /** Construct for a validated configuration. */
    explicit MemorySystem(const GpuConfig &config);

    /** Copies share the config but start with an empty memo. */
    MemorySystem(const MemorySystem &other) : cfg(other.cfg) {}

    MemorySystem &operator=(const MemorySystem &) = delete;

    /** Compute the memory traffic of one draw. */
    MemoryTraffic drawTraffic(const Trace &trace,
                              const DrawCall &draw) const;

  private:
    /**
     * Bound-texture descriptor scan, memoized. Many draws bind the
     * same texture set (repeated state blocks), and the scanned
     * values — total bound bytes and the bytes-per-texel sum — depend
     * only on the texture descriptors, not on the shader or the
     * config. Keyed by the trace's texture-table epoch plus the bound
     * id list, so table edits (and freed/reused Trace objects, which
     * get a fresh epoch) can never serve stale sizes. Thread-safe:
     * drawTraffic runs concurrently on one simulator.
     */
    struct TexBindScan
    {
        std::uint64_t boundBytes = 0;
        std::uint64_t bytesPerTexelSum = 0;
    };

    TexBindScan boundTextureScan(const Trace &trace,
                                 const DrawCall &draw) const;

    const GpuConfig cfg;

    mutable std::shared_mutex texBindMutex;
    mutable std::unordered_map<std::uint64_t, TexBindScan> texBindMemo;
};

} // namespace gws

#endif // GWS_GPUSIM_MEMORY_SYSTEM_HH
