/**
 * @file
 * Per-draw memory behavior: texture accesses filtered through the
 * two-level cache hierarchy, plus vertex and render-target traffic,
 * reduced to L2 and DRAM byte counts the timing model prices.
 */

#ifndef GWS_GPUSIM_MEMORY_SYSTEM_HH
#define GWS_GPUSIM_MEMORY_SYSTEM_HH

#include "gpusim/gpu_config.hh"
#include "trace/trace.hh"

namespace gws {

/** Memory traffic of one draw call, by source. */
struct MemoryTraffic
{
    /** Texture samples issued. */
    std::uint64_t texSamples = 0;

    /** Texture L1 hit rate over sampled stream. */
    double texL1HitRate = 1.0;

    /** Texture L2 hit rate over L1 misses. */
    double texL2HitRate = 1.0;

    /** Bytes filled from L2 into the texture L1. */
    double texL2FillBytes = 0.0;

    /** Texture bytes fetched from DRAM (L2 misses). */
    double texDramBytes = 0.0;

    /** Vertex attribute bytes streamed from DRAM. */
    double vertexDramBytes = 0.0;

    /** Color + depth traffic reaching DRAM (after ROP-cache absorption). */
    double rtDramBytes = 0.0;

    /** All bytes crossing the L2 (both directions, all clients). */
    double totalL2Bytes() const;

    /** All bytes crossing the DRAM bus. */
    double totalDramBytes() const;
};

/**
 * Memory-hierarchy model bound to one GpuConfig. Stateless across
 * draws by design: a draw's memory cost is a pure function of the draw,
 * so representative draws can be priced in isolation.
 */
class MemorySystem
{
  public:
    /** Construct for a validated configuration. */
    explicit MemorySystem(const GpuConfig &config);

    /** Compute the memory traffic of one draw. */
    MemoryTraffic drawTraffic(const Trace &trace,
                              const DrawCall &draw) const;

  private:
    const GpuConfig cfg;
};

} // namespace gws

#endif // GWS_GPUSIM_MEMORY_SYSTEM_HH
