#include "gpusim/work_trace.hh"

#include "gpusim/draw_work_cache.hh"
#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"

namespace gws {

namespace {

/** Round n up to a multiple of the doubles in one alignment unit. */
std::size_t
paddedStride(std::size_t n)
{
    constexpr std::size_t per = WorkTrace::columnAlignment / sizeof(double);
    return (n + per - 1) / per * per;
}

} // namespace

WorkTrace::WorkTrace(std::uint64_t capacity_key,
                     const std::vector<std::size_t> &group_sizes)
    : capKey(capacity_key)
{
    offsets.resize(group_sizes.size() + 1, 0);
    for (std::size_t g = 0; g < group_sizes.size(); ++g)
        offsets[g + 1] = offsets[g] + group_sizes[g];
    rows = offsets.back();
    stride = paddedStride(rows);
    if (rows == 0)
        return;
    const std::size_t doubles = numColumns * stride;
    storage.reset(static_cast<double *>(::operator new[](
        doubles * sizeof(double), std::align_val_t(columnAlignment))));
    for (std::size_t i = 0; i < doubles; ++i)
        storage.get()[i] = 0.0;
}

void
WorkTrace::setRow(std::size_t i, const DrawWork &work)
{
    GWS_ASSERT(i < rows, "work-trace row ", i, " out of range ", rows);
    mutableCol(0)[i] = work.vertices;
    mutableCol(1)[i] = work.primitives;
    mutableCol(2)[i] = work.pixels;
    mutableCol(3)[i] = work.vertexFetchBytes;
    mutableCol(4)[i] = work.vsWeightedOps;
    mutableCol(5)[i] = work.psWeightedOps;
    mutableCol(6)[i] = work.ropPixels;
    mutableCol(7)[i] = static_cast<double>(work.traffic.texSamples);
    mutableCol(8)[i] = work.traffic.texL2FillBytes;
    mutableCol(9)[i] = work.traffic.texDramBytes;
    mutableCol(10)[i] = work.traffic.vertexDramBytes;
    mutableCol(11)[i] = work.traffic.rtDramBytes;
    // Derived columns: the exact expressions the timing model
    // evaluates, computed once (they are config-independent).
    mutableCol(12)[i] = work.traffic.totalL2Bytes();
    mutableCol(13)[i] = work.traffic.totalDramBytes();
    mutableCol(14)[i] = work.vertices * work.vsWeightedOps;
    mutableCol(15)[i] = work.pixels * work.psWeightedOps;
}

DrawWork
WorkTrace::work(std::size_t i) const
{
    GWS_ASSERT(i < rows, "work-trace row ", i, " out of range ", rows);
    DrawWork w;
    w.vertices = vertices()[i];
    w.primitives = primitives()[i];
    w.pixels = pixels()[i];
    w.vertexFetchBytes = vertexFetchBytes()[i];
    w.vsWeightedOps = vsWeightedOps()[i];
    w.psWeightedOps = psWeightedOps()[i];
    w.ropPixels = ropPixels()[i];
    w.traffic.texSamples = static_cast<std::uint64_t>(texSamples()[i]);
    w.traffic.texL2FillBytes = texL2FillBytes()[i];
    w.traffic.texDramBytes = texDramBytes()[i];
    w.traffic.vertexDramBytes = vertexDramBytes()[i];
    w.traffic.rtDramBytes = rtDramBytes()[i];
    return w;
}

std::size_t
WorkTrace::residentBytes(std::size_t rows)
{
    return numColumns * paddedStride(rows) * sizeof(double);
}

double
WorkTrace::totalDramBytes() const
{
    const double *dram = dramBytes();
    double total = 0.0;
    for (std::size_t i = 0; i < rows; ++i)
        total += dram[i];
    return total;
}

WorkTrace
buildWorkTrace(const Trace &trace, const GpuSimulator &simulator)
{
    ScopedRegion region("gpusim.buildWorkTrace");
    const std::uint64_t t0 = runtime_detail::nowNs();

    std::vector<std::size_t> sizes;
    sizes.reserve(trace.frameCount());
    for (const Frame &frame : trace.frames())
        sizes.push_back(frame.drawCount());

    WorkTrace wt(capacityConfigHash(simulator.config()), sizes);
    parallelFor(0, trace.frameCount(), 1, [&](std::size_t f) {
        const Frame &frame = trace.frame(f);
        std::size_t row = wt.groupBegin(f);
        for (const DrawCall &draw : frame.draws())
            wt.setRow(row++, simulator.computeDrawWork(trace, draw));
    });

    runtime_detail::noteWorkTraceBuild(wt.drawCount(),
                                       runtime_detail::nowNs() - t0);
    return wt;
}

} // namespace gws
