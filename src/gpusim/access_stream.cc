#include "gpusim/access_stream.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gws {

std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    SplitMix64 sm(a * 0x9e3779b97f4a7c15ULL ^ b * 0xc2b2ae3d27d4eb4fULL ^
                  c * 0x165667b19e3779f9ULL);
    return sm.next();
}

StreamResult
runTextureStream(const StreamParams &params, const CacheConfig &l1_config,
                 const CacheConfig &l2_config, std::uint64_t max_samples)
{
    GWS_ASSERT(params.locality >= 0.0 && params.locality <= 1.0,
               "locality out of range: ", params.locality);
    StreamResult result;
    if (params.totalAccesses == 0 || params.footprintBytes == 0)
        return result;

    const std::uint64_t n =
        std::min(params.totalAccesses, std::max<std::uint64_t>(
                                           max_samples, 16));
    const double scale = static_cast<double>(params.totalAccesses) /
                         static_cast<double>(n);

    // Set-sample: shrink footprint and caches together so the
    // footprint-to-capacity ratio of the full stream is preserved.
    const std::uint64_t footprint = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(
            std::llround(static_cast<double>(params.footprintBytes) /
                         scale)),
        l1_config.lineBytes);
    Cache l1(scale > 1.0 ? l1_config.scaledDown(scale) : l1_config);
    Cache l2(scale > 1.0 ? l2_config.scaledDown(scale) : l2_config);

    SplitMix64 rng(params.seed);
    std::uint64_t cursor = rng.next() % footprint;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t l2_hits = 0;

    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t r = rng.next();
        // High bits decide local-vs-jump; low bits supply the offset.
        const double u = static_cast<double>(r >> 11) * 0x1.0p-53;
        std::uint64_t addr;
        if (u < params.locality) {
            // Local access: stay within a small window around the
            // cursor (mostly same or adjacent line) and creep forward,
            // emulating rasterization order walking texel space.
            const std::uint64_t window = 2 * l1.config().lineBytes;
            addr = (cursor + (r % window)) % footprint;
            cursor = (cursor + l1.config().lineBytes / 4) % footprint;
        } else {
            // Non-local access: jump anywhere in the footprint
            // (mip transitions, dependent reads, atlas jumps).
            addr = r % footprint;
            cursor = addr;
        }
        if (l1.access(addr)) {
            ++l1_hits;
        } else {
            ++l2_accesses;
            if (l2.access(addr))
                ++l2_hits;
        }
    }

    result.simulatedAccesses = n;
    result.scale = scale;
    result.l1HitRate = static_cast<double>(l1_hits) /
                       static_cast<double>(n);
    result.l2HitRate = l2_accesses
                           ? static_cast<double>(l2_hits) /
                                 static_cast<double>(l2_accesses)
                           : 1.0;
    result.l1Misses = static_cast<double>(n - l1_hits) * scale;
    result.l2Misses = static_cast<double>(l2_accesses - l2_hits) * scale;
    return result;
}

} // namespace gws
